// Extension: many objects sharing the database areas. The paper runs a
// single 10 MB object; real systems store many objects whose allocations
// interleave in the buddy spaces. This bench keeps N objects alive under
// the update mix and reports aggregate utilization and read cost,
// checking that the buddy allocator's fragmentation stays benign when
// segments of many objects mix. Each engine configuration runs as one
// fan-out job with its own private StorageSystem.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

namespace {

struct MultiResult {
  double read_ms = 0;
  double insert_ms = 0;
  double utilization = 0;
};

MultiResult RunMulti(const EngineSpec& spec, uint32_t n_objects,
                     uint64_t per_object, uint32_t total_ops,
                     JobOutput* out) {
  StorageSystem sys;
  auto mgr = spec.make(&sys);
  std::vector<ObjectId> ids;
  uint64_t logical_bytes = 0;
  for (uint32_t i = 0; i < n_objects; ++i) {
    auto id = mgr->Create();
    LOB_CHECK_OK(id.status());
    LOB_CHECK_OK(BuildObject(&sys, mgr.get(), *id, per_object, 100 * 1024,
                             /*seed=*/100 + i)
                     .status());
    ids.push_back(*id);
    logical_bytes += per_object;
  }
  // Interleaved update mix across all objects.
  Rng rng(5);
  std::string buf;
  double read_ms = 0, insert_ms = 0;
  uint32_t reads = 0, inserts = 0;
  uint64_t last_insert = 10000;
  for (uint32_t op = 0; op < total_ops; ++op) {
    LargeObjectManager* m = mgr.get();
    const ObjectId id = ids[rng.Uniform(0, ids.size() - 1)];
    auto size_or = m->Size(id);
    LOB_CHECK_OK(size_or.status());
    const uint64_t size = *size_or;
    const double p = rng.NextDouble();
    const IoStats before = sys.stats();
    if (p < 0.4) {
      uint64_t n = std::min<uint64_t>(rng.Uniform(5000, 15000), size);
      if (n == 0) continue;
      LOB_CHECK_OK(m->Read(id, rng.Uniform(0, size - n), n, &buf));
      read_ms += IoStats::Delta(before, sys.stats()).ms;
      reads++;
    } else if (p < 0.7) {
      const uint64_t n = rng.Uniform(5000, 15000);
      Rng content(rng.Next());
      FillBytes(&content, n, &buf, NoZeroInit{});
      LOB_CHECK_OK(m->Insert(id, rng.Uniform(0, size), buf));
      insert_ms += IoStats::Delta(before, sys.stats()).ms;
      inserts++;
      last_insert = n;
      logical_bytes += n;
    } else {
      const uint64_t n = std::min(last_insert, size);
      if (n == 0) continue;
      LOB_CHECK_OK(m->Delete(id, rng.Uniform(0, size - n), n));
      logical_bytes -= n;
    }
  }
  for (ObjectId id : ids) LOB_CHECK_OK(mgr->Validate(id));
  out->SetModeledMs(sys.stats().ms);
  MultiResult result;
  result.read_ms = reads ? read_ms / reads : 0;
  result.insert_ms = inserts ? insert_ms / inserts : 0;
  result.utilization = static_cast<double>(logical_bytes) /
                       static_cast<double>(sys.AllocatedBytes());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_multi_object: N interleaved objects per area",
              "beyond the paper (single-object study; here allocations "
              "interleave)");
  const uint32_t n_objects =
      static_cast<uint32_t>(FlagValue(argc, argv, "objects", 8));
  const uint64_t per_object = args.object_bytes / n_objects;
  std::printf("%u objects x %.2f MB, 10 K mix, %u ops total\n\n", n_objects,
              static_cast<double>(per_object) / 1048576.0, args.ops);

  std::vector<EngineSpec> specs = {EsmSpecs()[1],
                                   {"EOS T=4",
                                    [](StorageSystem* sys) {
                                      return CreateEosManager(sys, 4);
                                    }},
                                   {"EOS T=16", [](StorageSystem* sys) {
                                      return CreateEosManager(sys, 16);
                                    }}};

  std::vector<std::string> cell_labels;
  for (const auto& spec : specs) cell_labels.push_back(spec.label);
  BenchEngine engine("ext_multi_object", args);
  Mapped<MultiResult> results = engine.Map<MultiResult>(
      cell_labels, [&](size_t i, JobOutput* out) {
        return RunMulti(specs[i], n_objects, per_object, args.ops, out);
      });

  std::printf("%12s  %14s  %14s  %14s\n", "engine", "read [ms]",
              "insert [ms]", "utilization");
  for (size_t k = 0; k < specs.size(); ++k) {
    const MultiResult& r = results.values[k];
    std::printf("%12s  %14.1f  %14.1f  %13.1f%%\n", specs[k].label.c_str(),
                r.read_ms, r.insert_ms, r.utilization * 100);
  }
  std::printf(
      "\nexpected: per-object behaviour carries over - interleaving many\n"
      "objects in shared buddy spaces does not change the ranking.\n");
  engine.Finish();
  return 0;
}
