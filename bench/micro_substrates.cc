// Micro-benchmarks (google-benchmark) for the substrate layers: buddy
// allocation, positional tree search/update, buffer pool fixes, simulated
// disk calls. These measure wall-clock CPU cost of the simulator itself
// (not modeled I/O time) and guard against performance regressions in the
// library.

#include <benchmark/benchmark.h>

#include "buddy/buddy_tree.h"
#include "common/logging.h"
#include "buffer/op_context.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "lobtree/positional_tree.h"
#include "workload/workload.h"

namespace lob {
namespace {

void BM_BuddyAllocateFree(benchmark::State& state) {
  BuddyTree tree(14);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto a = tree.Allocate(n);
    benchmark::DoNotOptimize(a.ok());
    if (a.ok()) {
      benchmark::DoNotOptimize(tree.Free(*a, n));
    }
  }
}
BENCHMARK(BM_BuddyAllocateFree)->Arg(1)->Arg(16)->Arg(256);

void BM_SimDiskReadCall(benchmark::State& state) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  AreaId a = disk.CreateArea();
  std::vector<char> buf(static_cast<size_t>(state.range(0)) * 4096);
  // A failed setup write would silently benchmark reads of unwritten pages.
  Status seeded = disk.Write(a, 0, static_cast<uint32_t>(state.range(0)),
                             buf.data());
  LOB_CHECK(seeded.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        disk.Read(a, 0, static_cast<uint32_t>(state.range(0)), buf.data()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 4096);
}
BENCHMARK(BM_SimDiskReadCall)->Arg(1)->Arg(4)->Arg(64);

void BM_BufferPoolFixHit(benchmark::State& state) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  AreaId a = disk.CreateArea();
  { auto g = pool.FixPage(a, 0, FixMode::kNew); }
  for (auto _ : state) {
    auto g = pool.FixPage(a, 0, FixMode::kRead);
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_BufferPoolFixHit);

void BM_TreeFindLeaf(benchmark::State& state) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  AreaId meta = disk.CreateArea();
  DatabaseArea area(&pool, meta, cfg);
  TreeConfig tc;
  tc.pool = &pool;
  tc.meta_area = &area;
  PositionalTree tree(tc);
  OpContext ctx(&pool);
  auto root = tree.CreateObject(0);
  uint64_t at = 0;
  for (int i = 0; i < state.range(0); ++i) {
    // Dropped errors here would measure FindLeaf over a partially built
    // (or silently empty) tree.
    Status inserted = tree.InsertLeaf(
        *root, at, {4096, static_cast<PageId>(100000 + i)}, &ctx);
    LOB_CHECK(inserted.ok());
    Status finished = ctx.Finish();
    LOB_CHECK(finished.ok());
    at += 4096;
  }
  Rng rng(1);
  for (auto _ : state) {
    auto leaf = tree.FindLeaf(*root, rng.Uniform(0, at - 1));
    benchmark::DoNotOptimize(leaf.ok());
  }
}
BENCHMARK(BM_TreeFindLeaf)->Arg(256)->Arg(2560);

void BM_EndToEndRead10K(benchmark::State& state) {
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  auto built = BuildObject(&sys, mgr.get(), *id, 4 * 1024 * 1024, 100 * 1024);
  LOB_CHECK(built.ok());
  Rng rng(2);
  std::string buf;
  for (auto _ : state) {
    const uint64_t off = rng.Uniform(0, 4 * 1024 * 1024 - 10001);
    benchmark::DoNotOptimize(mgr->Read(*id, off, 10000, &buf));
  }
}
BENCHMARK(BM_EndToEndRead10K);

}  // namespace
}  // namespace lob

BENCHMARK_MAIN();
