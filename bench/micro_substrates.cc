// Micro-benchmarks (google-benchmark) for the substrate layers: buddy
// allocation, positional tree search/update, buffer pool fixes, simulated
// disk calls. These measure wall-clock CPU cost of the simulator itself
// (not modeled I/O time) and guard against performance regressions in the
// library.
//
// Beyond the google-benchmark timers, `--cells=N` switches the binary
// into cell-throughput mode: it runs N full build+update-mix workload
// cells back to back on one thread and reports cells/sec and modeled
// pages/sec. With --bench-json=PATH those counters land under "metrics"
// in BENCH_micro_substrates.json, which is what the CI perf-smoke gate
// compares against the committed baseline (see scripts/bench_wall.sh).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "buddy/buddy_tree.h"
#include "common/logging.h"
#include "buffer/op_context.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "lobtree/positional_tree.h"
#include "workload/workload.h"

namespace lob {
namespace {

void BM_BuddyAllocateFree(benchmark::State& state) {
  BuddyTree tree(14);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto a = tree.Allocate(n);
    benchmark::DoNotOptimize(a.ok());
    if (a.ok()) {
      benchmark::DoNotOptimize(tree.Free(*a, n));
    }
  }
}
BENCHMARK(BM_BuddyAllocateFree)->Arg(1)->Arg(16)->Arg(256);

void BM_SimDiskReadCall(benchmark::State& state) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  AreaId a = disk.CreateArea();
  std::vector<char> buf(static_cast<size_t>(state.range(0)) * 4096);
  // A failed setup write would silently benchmark reads of unwritten pages.
  Status seeded = disk.Write(a, 0, static_cast<uint32_t>(state.range(0)),
                             buf.data());
  LOB_CHECK(seeded.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        disk.Read(a, 0, static_cast<uint32_t>(state.range(0)), buf.data()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 4096);
}
BENCHMARK(BM_SimDiskReadCall)->Arg(1)->Arg(4)->Arg(64);

void BM_BufferPoolFixHit(benchmark::State& state) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  AreaId a = disk.CreateArea();
  { auto g = pool.FixPage(a, 0, FixMode::kNew); }
  for (auto _ : state) {
    auto g = pool.FixPage(a, 0, FixMode::kRead);
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_BufferPoolFixHit);

void BM_TreeFindLeaf(benchmark::State& state) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  AreaId meta = disk.CreateArea();
  DatabaseArea area(&pool, meta, cfg);
  TreeConfig tc;
  tc.pool = &pool;
  tc.meta_area = &area;
  PositionalTree tree(tc);
  OpContext ctx(&pool);
  auto root = tree.CreateObject(0);
  uint64_t at = 0;
  for (int i = 0; i < state.range(0); ++i) {
    // Dropped errors here would measure FindLeaf over a partially built
    // (or silently empty) tree.
    Status inserted = tree.InsertLeaf(
        *root, at, {4096, static_cast<PageId>(100000 + i)}, &ctx);
    LOB_CHECK(inserted.ok());
    Status finished = ctx.Finish();
    LOB_CHECK(finished.ok());
    at += 4096;
  }
  Rng rng(1);
  for (auto _ : state) {
    auto leaf = tree.FindLeaf(*root, rng.Uniform(0, at - 1));
    benchmark::DoNotOptimize(leaf.ok());
  }
}
BENCHMARK(BM_TreeFindLeaf)->Arg(256)->Arg(2560);

void BM_SimDiskAppendGrowth(benchmark::State& state) {
  // One-page-at-a-time appends into a fresh area: the pattern that made
  // the per-page `pages.resize(page + 1)` quadratic-ish before the page
  // vector switched to geometric reserve. Items/sec here is the direct
  // measure of that satellite fix.
  StorageConfig cfg;
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<char> page(cfg.page_size, 'x');
  for (auto _ : state) {
    SimDisk disk(cfg);
    AreaId a = disk.CreateArea();
    for (uint32_t p = 0; p < n; ++p) {
      benchmark::DoNotOptimize(disk.Write(a, p, 1, page.data()));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimDiskAppendGrowth)->Arg(1024)->Arg(16384);

void BM_SimDiskReadRunZeroCopy(benchmark::State& state) {
  // Borrowed-span batched read: one modeled seek + N transfers, no
  // memcpy. Compare bytes/sec against BM_SimDiskReadCall at the same
  // run length to see the zero-copy win.
  StorageConfig cfg;
  SimDisk disk(cfg);
  AreaId a = disk.CreateArea();
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<char> buf(static_cast<size_t>(n) * cfg.page_size);
  Status seeded = disk.Write(a, 0, n, buf.data());
  LOB_CHECK(seeded.ok());
  std::vector<PageRef> refs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.ReadRun(a, 0, n, refs.data()));
    benchmark::DoNotOptimize(refs.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n *
                          cfg.page_size);
}
BENCHMARK(BM_SimDiskReadRunZeroCopy)->Arg(1)->Arg(4)->Arg(64);

void BM_EndToEndRead10K(benchmark::State& state) {
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  auto built = BuildObject(&sys, mgr.get(), *id, 4 * 1024 * 1024, 100 * 1024);
  LOB_CHECK(built.ok());
  Rng rng(2);
  std::string buf;
  for (auto _ : state) {
    const uint64_t off = rng.Uniform(0, 4 * 1024 * 1024 - 10001);
    benchmark::DoNotOptimize(mgr->Read(*id, off, 10000, &buf));
  }
}
BENCHMARK(BM_EndToEndRead10K);

// One cell-throughput workload cell: quick-scale build (2 MB object via
// 100K appends) plus the paper's 40/30/30 update mix (2000 ops). This is
// deliberately the same unit of work the fan-out benches call a "cell",
// so cells/sec measured here speaks for the whole suite.
struct CellResult {
  double wall_ms = 0;
  double pages = 0;  ///< modeled pages transferred by the cell
};

// `agg` accumulates every cell's registry (ledger + histograms + pool
// counters) so the profile can embed one aggregate metrics snapshot
// covering all three engines' op labels.
CellResult RunThroughputCell(const bench::EngineSpec& spec, uint64_t seed,
                             ObsRegistry* agg) {
  // LOBLINT(wallclock): cell-throughput self-timing; the wall clock
  // feeds BENCH_*.json metrics, never modeled output.
  const auto t0 = std::chrono::steady_clock::now();
  StorageSystem sys;
  auto mgr = spec.make(&sys);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  LOB_CHECK_OK(BuildObject(&sys, mgr.get(), *id, 2ull * 1024 * 1024,
                           100 * 1024)
                   .status());
  MixSpec mix;
  mix.mean_op_bytes = 10000;
  mix.total_ops = 2000;
  mix.window_ops = 200;
  mix.seed = 7 + seed;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
  LOB_CHECK_OK(points.status());
  sys.pool()->PublishCounters(sys.obs());
  agg->MergeFrom(*sys.obs());
  // LOBLINT(wallclock): see above.
  const auto t1 = std::chrono::steady_clock::now();
  CellResult r;
  // LOBLINT(wallclock): see above.
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.pages = static_cast<double>(sys.stats().PagesTransferred());
  return r;
}

// Runs `n_cells` cells single-threaded, rotating over the three engines,
// and writes cells/sec + modeled pages/sec into the --bench-json profile.
int RunCellThroughput(uint32_t n_cells, const std::string& json_path) {
  std::vector<bench::EngineSpec> specs;
  specs.push_back(bench::EsmSpecs()[1]);   // ESM leaf=4
  specs.push_back(bench::EosSpecs()[1]);   // EOS T=4
  specs.push_back(bench::StarburstSpec());
  BenchProfile profile("micro_substrates_cells", /*jobs=*/1,
                       std::thread::hardware_concurrency(),
                       BenchProfile::MakeHostNote());
  double wall_ms = 0;
  double pages = 0;
  ObsRegistry agg;
  for (uint32_t i = 0; i < n_cells; ++i) {
    const bench::EngineSpec& spec = specs[i % specs.size()];
    const CellResult r = RunThroughputCell(spec, i, &agg);
    profile.AddCell(spec.label + " #" + std::to_string(i), r.wall_ms, 0);
    wall_ms += r.wall_ms;
    pages += r.pages;
  }
  // Schema v2: one aggregate snapshot over every cell's registry — the
  // per-op percentile table spans all three engines, and the CI
  // bench-diff gate reads its p99_ms columns. Purely modeled state,
  // byte-identical run to run.
  profile.set_snapshot_json(MetricsSnapshot::FromRegistry(agg).ToJson("  "));
  const double secs = wall_ms / 1000.0;
  const double cells_per_sec = secs > 0 ? n_cells / secs : 0;
  const double pages_per_sec = secs > 0 ? pages / secs : 0;
  profile.AddMetric("cells", n_cells);
  profile.AddMetric("cells_per_sec", cells_per_sec);
  profile.AddMetric("pages_per_sec", pages_per_sec);
  profile.set_suite_wall_ms(wall_ms);
  std::printf("cell throughput: %u cells in %.0f ms = %.2f cells/sec, "
              "%.0f modeled pages/sec\n",
              n_cells, wall_ms, cells_per_sec, pages_per_sec);
  if (!json_path.empty() && !profile.WriteJson(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace lob

int main(int argc, char** argv) {
  const uint32_t cells = static_cast<uint32_t>(
      lob::FlagValue(argc, argv, "cells", 0));
  const std::string json =
      lob::FlagValueString(argc, argv, "bench-json", "");
  if (cells > 0) {
    // Throughput mode replaces the google-benchmark run: one process does
    // one job, so the gate's numbers are not polluted by timer warm-up.
    return lob::RunCellThroughput(cells, json);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
