// Extension: the paper's closing comparison (4.6): with a threshold of 64
// blocks, EOS provides the same read and utilization performance as
// Starburst while its update cost is roughly 30x lower. The three engine
// configurations run as parallel fan-out jobs.

#include "bench/bench_common.h"
#include "starburst/starburst_manager.h"

using namespace lob;
using namespace lob::bench;

namespace {

struct Summary {
  double read_ms = 0;
  double insert_ms = 0;
  double utilization = 0;
};

Summary Measure(const EngineSpec& spec, uint64_t object_bytes, uint32_t ops,
                uint32_t window, bool obs, JobOutput* out) {
  // Run the standard 10 K mix; report steady-state read/insert costs and
  // final utilization.
  MixRun run = RunMixFor(spec, object_bytes, 10000, ops, window, obs, out);
  Summary s;
  if (!run.points.empty()) {
    const MixPoint& last = run.points.back();
    s.read_ms = last.avg_read_ms;
    s.insert_ms = last.avg_insert_ms;
    s.utilization = last.utilization;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner(
      "ext_summary_comparison: EOS T=64 vs Starburst vs ESM (10 K mix)",
      "4.6 (EOS T=64 matches Starburst reads/utilization at ~30x lower "
      "update cost)");
  std::printf("object: %.1f MB, ops: %u\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.ops);

  std::vector<EngineSpec> specs = {
      {"EOS T=64",
       [](StorageSystem* sys) { return CreateEosManager(sys, 64); }},
      // Full-copy Starburst, the mode whose update cost matches Table 3.
      {"Starburst",
       [](StorageSystem* sys) -> std::unique_ptr<LargeObjectManager> {
         StarburstOptions opt;
         opt.copy_mode = UpdateCopyMode::kFullCopy;
         return std::make_unique<StarburstManager>(sys, opt);
       }},
      {"ESM leaf=16",
       [](StorageSystem* sys) { return CreateEsmManager(sys, 16); }},
  };

  std::vector<std::string> cell_labels;
  for (const auto& spec : specs) cell_labels.push_back(spec.label);
  BenchEngine engine("ext_summary_comparison", args);
  Mapped<Summary> summaries = engine.Map<Summary>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const EngineSpec& spec = specs[i];
        // Starburst updates are whole-tail copies: run fewer of them.
        const uint32_t ops =
            spec.label == "Starburst" ? std::min(args.ops, 200u) : args.ops;
        return Measure(spec, args.object_bytes, ops, std::max(1u, ops / 4),
                       args.obs, out);
      });

  std::printf("%14s  %12s  %14s  %14s\n", "engine", "read [ms]",
              "insert [ms]", "utilization");
  double starburst_insert = 0, eos_insert = 0;
  for (size_t k = 0; k < specs.size(); ++k) {
    std::fputs(summaries.texts[k].c_str(), stdout);
    const Summary& s = summaries.values[k];
    std::printf("%14s  %12.1f  %14.1f  %13.1f%%\n", specs[k].label.c_str(),
                s.read_ms, s.insert_ms, s.utilization * 100);
    if (specs[k].label == "Starburst") starburst_insert = s.insert_ms;
    if (specs[k].label == "EOS T=64") eos_insert = s.insert_ms;
  }
  if (eos_insert > 0) {
    std::printf("\nStarburst/EOS-64 update cost ratio: %.1fx (paper: ~30x)\n",
                starburst_insert / eos_insert);
  }
  engine.Finish();
  return 0;
}
