// Figure 12: EOS insert I/O cost. Thresholds 1-4 cost the same (new bytes
// land in as few segments as necessary); above 4 the cost rises with the
// extra page shuffling the threshold rule performs.

#include "bench/mix_figure.h"

int main(int argc, char** argv) {
  return lob::bench::RunMixFigure(
      argc, argv, "fig12_eos_insert_cost: EOS insert I/O cost vs ops",
      "Figure 12 a-c (EOS insert I/O cost)", lob::bench::EosSpecs(),
      lob::bench::MixMetric::kInsertMs,
      "T=1 and T=4 equal; cost grows for T>4 (page reshuffling); EOS <= "
      "ESM\n  below 16 pages; mixed at 16/64 (ESM better for small, EOS "
      "for large inserts).");
}
