// Figure 11: ESM insert I/O cost. The best leaf size tracks the insert
// size: 16-page leaves win for 100 K inserts, 4-page for 10 K; 64-page
// leaves pay large rewrites for small inserts; 1-page leaves scatter big
// inserts over many random writes.

#include "bench/mix_figure.h"

int main(int argc, char** argv) {
  return lob::bench::RunMixFigure(
      argc, argv, "fig11_esm_insert_cost: ESM insert I/O cost vs ops",
      "Figure 11 a-c (ESM insert I/O cost)", lob::bench::EsmSpecs(),
      lob::bench::MixMetric::kInsertMs,
      "best leaf ~ insert size (100 K -> leaf=16; 10 K -> leaf=4); leaf=64 "
      "worst\n  for small inserts; leaf=1 poor for 100 K inserts (25 "
      "random page writes).");
}
