// Extension: on-demand reorganization. Starburst pays Table 3 prices on
// every update but keeps a perfect layout; ESM/EOS update cheaply but
// degrade (Figures 7-10). CompactObject closes the loop: after the
// standard update mix, rewrite the object once and measure how much read
// cost and utilization recover, and what the one-time compaction costs.

#include "bench/bench_common.h"
#include "workload/maintenance.h"

using namespace lob;
using namespace lob::bench;

namespace {

double AvgReadMs(StorageSystem* sys, LargeObjectManager* mgr, ObjectId id,
                 uint32_t reads) {
  auto size = mgr->Size(id);
  LOB_CHECK_OK(size.status());
  Rng rng(17);
  std::string buf;
  const IoStats before = sys->stats();
  for (uint32_t i = 0; i < reads; ++i) {
    const uint64_t n = std::min<uint64_t>(10000, *size);
    const uint64_t off = rng.Uniform(0, *size - n);
    LOB_CHECK_OK(mgr->Read(id, off, n, &buf));
  }
  return IoStats::Delta(before, sys->stats()).ms / reads;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_reorganize: read cost recovery through compaction",
              "beyond the paper (on-demand reorganization of degraded "
              "objects)");
  std::printf("object: %.1f MB, %u mix ops, 10 K reads\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.ops);

  std::vector<EngineSpec> specs = {EsmSpecs()[0],
                                   {"EOS T=4",
                                    [](StorageSystem* sys) {
                                      return CreateEosManager(sys, 4);
                                    }},
                                   {"EOS T=16", [](StorageSystem* sys) {
                                      return CreateEosManager(sys, 16);
                                    }}};
  std::printf("%12s  %12s  %12s  %12s  %12s  %12s\n", "engine",
              "degraded ms", "compacted ms", "util before", "util after",
              "compact [s]");
  for (const auto& spec : specs) {
    StorageSystem sys;
    auto mgr = spec.make(&sys);
    auto id = mgr->Create();
    LOB_CHECK_OK(id.status());
    LOB_CHECK_OK(BuildObject(&sys, mgr.get(), *id, args.object_bytes,
                             100 * 1024)
                     .status());
    MixSpec mix;
    mix.mean_op_bytes = 10000;
    mix.total_ops = args.ops;
    mix.window_ops = args.ops;
    LOB_CHECK_OK(RunUpdateMix(&sys, mgr.get(), *id, mix).status());

    const double degraded = AvgReadMs(&sys, mgr.get(), *id, 300);
    auto util_before = CurrentUtilization(&sys, mgr.get(), *id);
    LOB_CHECK_OK(util_before.status());
    auto cost = CompactObject(&sys, mgr.get(), *id);
    LOB_CHECK_OK(cost.status());
    const double compacted = AvgReadMs(&sys, mgr.get(), *id, 300);
    auto util_after = CurrentUtilization(&sys, mgr.get(), *id);
    LOB_CHECK_OK(util_after.status());
    LOB_CHECK_OK(mgr->Validate(*id));

    std::printf("%12s  %12.1f  %12.1f  %11.1f%%  %11.1f%%  %12.1f\n",
                spec.label.c_str(), degraded, compacted,
                *util_before * 100, *util_after * 100, cost->ms / 1000.0);
  }
  std::printf(
      "\nexpected: compaction restores near-built read costs and ~100%%\n"
      "utilization for a one-time cost comparable to one Starburst "
      "update.\n");
  return 0;
}
