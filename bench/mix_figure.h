// Shared driver for Figures 7-12: run the 40/30/30 random update mix over
// a freshly built object for every (engine config, mean operation size)
// pair and print one metric as a per-mark series.
//
// Mean operation sizes are the paper's 100 bytes, 10 K and 100 K, each
// varied +/-50%; marks land every `window` operations and show the average
// cost of the operations in the window that just ended (paper 4.4).
//
// The (mean_op x engine) grid is fanned out across the --jobs thread pool:
// every cell builds its own private StorageSystem and runs independently;
// results and any --obs ledger text come back in submission order, so the
// bytes printed are identical for every worker count.

#ifndef LOB_BENCH_MIX_FIGURE_H_
#define LOB_BENCH_MIX_FIGURE_H_

#include "bench/bench_common.h"

namespace lob::bench {

enum class MixMetric { kUtilization, kReadMs, kInsertMs, kDeleteMs };

inline double GetMetric(const MixPoint& pt, MixMetric metric) {
  switch (metric) {
    case MixMetric::kUtilization:
      return pt.utilization * 100.0;
    case MixMetric::kReadMs:
      return pt.avg_read_ms;
    case MixMetric::kInsertMs:
      return pt.avg_insert_ms;
    case MixMetric::kDeleteMs:
      return pt.avg_delete_ms;
  }
  return 0;
}

inline const char* MetricUnit(MixMetric metric) {
  return metric == MixMetric::kUtilization ? "percent" : "ms per op";
}

/// Short bench name for the profile: everything before the first ':' of
/// the banner title (e.g. "fig9_esm_read_cost").
inline std::string BenchNameFromTitle(const char* title) {
  const std::string t = title;
  const size_t colon = t.find(':');
  return colon == std::string::npos ? t : t.substr(0, colon);
}

inline int RunMixFigure(int argc, char** argv, const char* title,
                        const char* reproduces,
                        const std::vector<EngineSpec>& specs,
                        MixMetric metric, const char* anchors) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const bool csv = FlagPresent(argc, argv, "csv");
  if (!csv) {
    PrintBanner(title, reproduces);
    std::printf("object: %.1f MB, ops: %u (marks every %u)%s\n",
                static_cast<double>(args.object_bytes) / 1048576.0, args.ops,
                args.window, args.quick ? " (--quick)" : "");
  } else {
    std::printf("mean_op,ops,engine,value\n");
  }

  const std::vector<uint64_t> mean_ops = {100, 10000, 100000};

  // Flatten the (mean_op x spec) grid into one job per cell.
  struct Cell {
    uint64_t mean_op;
    size_t spec;
  };
  std::vector<Cell> cells;
  std::vector<std::string> cell_labels;
  for (uint64_t mean_op : mean_ops) {
    for (size_t k = 0; k < specs.size(); ++k) {
      cells.push_back(Cell{mean_op, k});
      cell_labels.push_back("mean_op=" + std::to_string(mean_op) + "/" +
                            specs[k].label);
    }
  }

  // Per-cell trace sessions / timeline samplers: each fan-out job records
  // only into its own slot, and the merge below walks the slots in
  // submission order, so the exported bytes are identical for any --jobs.
  std::vector<std::unique_ptr<TraceSession>> traces;
  std::vector<std::unique_ptr<TimelineSampler>> timelines;
  for (size_t i = 0; i < cells.size(); ++i) {
    traces.push_back(args.trace.empty() ? nullptr
                                        : std::make_unique<TraceSession>());
    timelines.push_back(args.timeline.empty()
                            ? nullptr
                            : std::make_unique<TimelineSampler>(
                                  args.timeline_every));
  }

  BenchEngine engine(BenchNameFromTitle(title), args);
  const size_t first_cell = engine.next_cell_index();
  Mapped<MixRun> runs = engine.Map<MixRun>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const Cell& cell = cells[i];
        return RunMixFor(specs[cell.spec], args.object_bytes, cell.mean_op,
                         args.ops, args.window, args.obs, out,
                         traces[i].get(), timelines[i].get());
      });
  // Schema v2: each cell carries the metrics snapshot its job captured
  // (values come back in submission order, so cell indices line up).
  for (size_t i = 0; i < cells.size(); ++i) {
    engine.SetCellSnapshot(first_cell + i,
                           std::move(runs.values[i].snapshot_json));
  }

  if (!args.trace.empty()) {
    std::vector<std::pair<std::string, const TraceSession*>> sessions;
    for (size_t i = 0; i < cells.size(); ++i) {
      sessions.emplace_back(cell_labels[i], traces[i].get());
    }
    WriteTextFile(args.trace, TraceSession::ChromeTraceJson(sessions));
  }
  if (!args.timeline.empty()) {
    std::string timeline_csv = TimelineSampler::CsvHeader();
    for (size_t i = 0; i < cells.size(); ++i) {
      timelines[i]->AppendCsv(cell_labels[i], &timeline_csv);
    }
    WriteTextFile(args.timeline, timeline_csv);
  }

  // Emit in the exact order the serial loops used: per mean_op group, the
  // section header, each cell's captured --obs text, then the table.
  size_t idx = 0;
  for (uint64_t mean_op : mean_ops) {
    if (!csv) {
      std::printf("\n--- mean operation size: %llu bytes (+/-50%%) ---\n",
                  static_cast<unsigned long long>(mean_op));
    }
    std::vector<std::string> labels;
    std::vector<std::vector<MixPoint>> series;
    for (size_t k = 0; k < specs.size(); ++k, ++idx) {
      std::fputs(runs.texts[idx].c_str(), stdout);
      labels.push_back(specs[k].label);
      series.push_back(runs.values[idx].points);
    }
    if (csv) {
      // Machine-readable long format, one row per (mark, engine).
      for (size_t k = 0; k < series.size(); ++k) {
        for (const MixPoint& pt : series[k]) {
          std::printf("%llu,%u,%s,%.3f\n",
                      static_cast<unsigned long long>(mean_op), pt.ops_done,
                      labels[k].c_str(), GetMetric(pt, metric));
        }
      }
      continue;
    }
    PrintMixSeries(labels, series,
                   [metric](const MixPoint& pt) {
                     return GetMetric(pt, metric);
                   },
                   MetricUnit(metric));
  }
  if (!csv) std::printf("\npaper anchors: %s\n", anchors);
  engine.Finish();
  return 0;
}

}  // namespace lob::bench

#endif  // LOB_BENCH_MIX_FIGURE_H_
