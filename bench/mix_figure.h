// Shared driver for Figures 7-12: run the 40/30/30 random update mix over
// a freshly built object for every (engine config, mean operation size)
// pair and print one metric as a per-mark series.
//
// Mean operation sizes are the paper's 100 bytes, 10 K and 100 K, each
// varied +/-50%; marks land every `window` operations and show the average
// cost of the operations in the window that just ended (paper 4.4).

#ifndef LOB_BENCH_MIX_FIGURE_H_
#define LOB_BENCH_MIX_FIGURE_H_

#include "bench/bench_common.h"

namespace lob::bench {

enum class MixMetric { kUtilization, kReadMs, kInsertMs, kDeleteMs };

inline double GetMetric(const MixPoint& pt, MixMetric metric) {
  switch (metric) {
    case MixMetric::kUtilization:
      return pt.utilization * 100.0;
    case MixMetric::kReadMs:
      return pt.avg_read_ms;
    case MixMetric::kInsertMs:
      return pt.avg_insert_ms;
    case MixMetric::kDeleteMs:
      return pt.avg_delete_ms;
  }
  return 0;
}

inline const char* MetricUnit(MixMetric metric) {
  return metric == MixMetric::kUtilization ? "percent" : "ms per op";
}

inline int RunMixFigure(int argc, char** argv, const char* title,
                        const char* reproduces,
                        const std::vector<EngineSpec>& specs,
                        MixMetric metric, const char* anchors) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const bool csv = FlagPresent(argc, argv, "csv");
  if (!csv) {
    PrintBanner(title, reproduces);
    std::printf("object: %.1f MB, ops: %u (marks every %u)%s\n",
                static_cast<double>(args.object_bytes) / 1048576.0, args.ops,
                args.window, args.quick ? " (--quick)" : "");
  } else {
    std::printf("mean_op,ops,engine,value\n");
  }

  for (uint64_t mean_op : {100ull, 10000ull, 100000ull}) {
    if (!csv) {
      std::printf("\n--- mean operation size: %llu bytes (+/-50%%) ---\n",
                  static_cast<unsigned long long>(mean_op));
    }
    std::vector<std::string> labels;
    std::vector<std::vector<MixPoint>> series;
    for (const auto& spec : specs) {
      labels.push_back(spec.label);
      series.push_back(RunMixFor(spec, args.object_bytes, mean_op, args.ops,
                                 args.window)
                           .points);
    }
    if (csv) {
      // Machine-readable long format, one row per (mark, engine).
      for (size_t k = 0; k < series.size(); ++k) {
        for (const MixPoint& pt : series[k]) {
          std::printf("%llu,%u,%s,%.3f\n",
                      static_cast<unsigned long long>(mean_op), pt.ops_done,
                      labels[k].c_str(), GetMetric(pt, metric));
        }
      }
      continue;
    }
    PrintMixSeries(labels, series,
                   [metric](const MixPoint& pt) {
                     return GetMetric(pt, metric);
                   },
                   MetricUnit(metric));
  }
  if (!csv) std::printf("\npaper anchors: %s\n", anchors);
  return 0;
}

}  // namespace lob::bench

#endif  // LOB_BENCH_MIX_FIGURE_H_
