// Figure 5: time to build a 10 M-byte object by successive fixed-size
// appends, for ESM with 1/4/16/64-page leaves and for Starburst/EOS
// (whose growth pattern is identical, so they are plotted as one curve;
// this bench measures both and reports them separately as a check).
//
// Expected shape (paper 4.2): ESM shows a pronounced sawtooth - appends
// whose size exactly matches the leaf size are locally optimal (e.g. 1-page
// leaves: ~575 s at 3K appends, ~170 s at 4K, back up at 5K) because
// mismatched appends keep redistributing the two rightmost leaves.
// Starburst/EOS appends never reshuffle, so for every append size they
// perform the same as or better than the best ESM configuration. Cost
// scales linearly with the object size.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("fig5_build_time: object creation time vs append size",
              "Figure 5 (10 M-byte object creation time)");
  std::printf("object size: %.1f MB%s\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.quick ? " (--quick)" : "");

  std::vector<EngineSpec> specs = EsmSpecs();
  specs.push_back(StarburstSpec());
  specs.push_back({"EOS", [](StorageSystem* sys) {
                     return CreateEosManager(sys, 4);
                   }});

  std::vector<uint64_t> sizes_kb = PaperAppendSizesKb();
  if (args.quick) sizes_kb = {3, 4, 8, 32, 128, 512};

  std::printf("%10s", "append_kb");
  for (const auto& s : specs) std::printf("  %14s", s.label.c_str());
  std::printf("   [seconds]\n");
  for (uint64_t kb : sizes_kb) {
    std::printf("%10llu", static_cast<unsigned long long>(kb));
    for (const auto& spec : specs) {
      StorageSystem sys;
      auto mgr = spec.make(&sys);
      auto id = mgr->Create();
      LOB_CHECK_OK(id.status());
      auto r = BuildObject(&sys, mgr.get(), *id, args.object_bytes,
                           kb * 1024);
      LOB_CHECK_OK(r.status());
      std::printf("  %14.1f", r->Seconds());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper anchors (10 MB): ESM leaf=1 ~575 s @3K, ~170 s @4K, ~380 s "
      "@5K;\n  best ESM leaf matches the append size; Starburst/EOS <= best "
      "ESM.\n");
  return 0;
}
