// Figure 5: time to build a 10 M-byte object by successive fixed-size
// appends, for ESM with 1/4/16/64-page leaves and for Starburst/EOS
// (whose growth pattern is identical, so they are plotted as one curve;
// this bench measures both and reports them separately as a check).
//
// Expected shape (paper 4.2): ESM shows a pronounced sawtooth - appends
// whose size exactly matches the leaf size are locally optimal (e.g. 1-page
// leaves: ~575 s at 3K appends, ~170 s at 4K, back up at 5K) because
// mismatched appends keep redistributing the two rightmost leaves.
// Starburst/EOS appends never reshuffle, so for every append size they
// perform the same as or better than the best ESM configuration. Cost
// scales linearly with the object size.
//
// The (append size x engine) grid runs as one fan-out job per cell; the
// table prints after the fan-out, row-major in submission order.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("fig5_build_time: object creation time vs append size",
              "Figure 5 (10 M-byte object creation time)");
  std::printf("object size: %.1f MB%s\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.quick ? " (--quick)" : "");

  std::vector<EngineSpec> specs = EsmSpecs();
  specs.push_back(StarburstSpec());
  specs.push_back({"EOS", [](StorageSystem* sys) {
                     return CreateEosManager(sys, 4);
                   }});

  std::vector<uint64_t> sizes_kb = PaperAppendSizesKb();
  if (args.quick) sizes_kb = {3, 4, 8, 32, 128, 512};

  // One job per (append size, engine) cell, row-major.
  std::vector<std::string> cell_labels;
  for (uint64_t kb : sizes_kb) {
    for (const auto& spec : specs) {
      cell_labels.push_back("append_kb=" + std::to_string(kb) + "/" +
                            spec.label);
    }
  }
  BenchEngine engine("fig5_build_time", args);
  Mapped<double> seconds = engine.Map<double>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const uint64_t kb = sizes_kb[i / specs.size()];
        const EngineSpec& spec = specs[i % specs.size()];
        StorageSystem sys;
        auto mgr = spec.make(&sys);
        auto id = mgr->Create();
        LOB_CHECK_OK(id.status());
        auto r = BuildObject(&sys, mgr.get(), *id, args.object_bytes,
                             kb * 1024);
        LOB_CHECK_OK(r.status());
        out->SetModeledMs(r->Ms());
        return r->Seconds();
      });

  std::printf("%10s", "append_kb");
  for (const auto& s : specs) std::printf("  %14s", s.label.c_str());
  std::printf("   [seconds]\n");
  size_t idx = 0;
  for (uint64_t kb : sizes_kb) {
    std::printf("%10llu", static_cast<unsigned long long>(kb));
    for (size_t k = 0; k < specs.size(); ++k, ++idx) {
      std::printf("  %14.1f", seconds.values[idx]);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper anchors (10 MB): ESM leaf=1 ~575 s @3K, ~170 s @4K, ~380 s "
      "@5K;\n  best ESM leaf matches the append size; Starburst/EOS <= best "
      "ESM.\n");
  engine.Finish();
  return 0;
}
