// repro_check: programmatic verification of the paper's claims.
//
// Runs every experiment at reduced scale and asserts the qualitative
// results the paper reports - orderings, flatness, convergence and a few
// quantitative anchors. Prints PASS/FAIL per claim with the measured
// evidence; the exit code is the number of failed claims, so this binary
// doubles as an end-to-end regression test of the whole reproduction
// (registered with ctest).
//
// Scale is configurable: --object-mb / --ops (defaults 4 MB / 1500 ops
// keep the run under a minute); the paper-scale figures live in the
// dedicated fig*/table* binaries.

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "starburst/starburst_manager.h"
#include "workload/maintenance.h"

using namespace lob;
using namespace lob::bench;

namespace {

int g_failures = 0;

void Claim(const char* id, const char* text, bool ok, const std::string& ev) {
  std::printf("[%s] %-8s %s\n         evidence: %s\n", ok ? "PASS" : "FAIL",
              id, text, ev.c_str());
  if (!ok) g_failures++;
}

std::string Fmt(const char* fmt, double a, double b, double c = 0,
                double d = 0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b, c, d);
  return buf;
}

double BuildSeconds(const EngineSpec& spec, uint64_t bytes, uint64_t append) {
  StorageSystem sys;
  auto mgr = spec.make(&sys);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  auto r = BuildObject(&sys, mgr.get(), *id, bytes, append);
  LOB_CHECK_OK(r.status());
  return r->Seconds();
}

double ScanSeconds(const EngineSpec& spec, uint64_t bytes, uint64_t chunk) {
  StorageSystem sys;
  auto mgr = spec.make(&sys);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  LOB_CHECK_OK(BuildObject(&sys, mgr.get(), *id, bytes, chunk).status());
  auto r = SequentialScan(&sys, mgr.get(), *id, chunk);
  LOB_CHECK_OK(r.status());
  return r->Seconds();
}

struct MixResult {
  double util;
  double read_ms;
  double insert_ms;
  double delete_ms;
  double first_read_ms;
};

MixResult Mix(const EngineSpec& spec, uint64_t bytes, uint64_t mean_op,
              uint32_t ops) {
  MixRun run = RunMixFor(spec, bytes, mean_op, ops, std::max(1u, ops / 5));
  MixResult out{};
  LOB_CHECK(!run.points.empty());
  const MixPoint& last = run.points.back();
  out.util = last.utilization;
  out.read_ms = last.avg_read_ms;
  out.insert_ms = last.avg_insert_ms;
  out.delete_ms = last.avg_delete_ms;
  out.first_read_ms = run.points.front().avg_read_ms;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (!FlagPresent(argc, argv, "object-mb")) {
    args.object_bytes = 4ull * 1024 * 1024;  // reduced default for CI
  }
  if (!FlagPresent(argc, argv, "ops")) args.ops = 1500;
  PrintBanner("repro_check: programmatic verification of the paper's claims",
              "all sections; reduced scale");
  std::printf("object: %.1f MB, mix ops: %u\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.ops);

  auto esm = [](uint32_t leaf) -> EngineSpec {
    return {"ESM leaf=" + std::to_string(leaf),
            [leaf](StorageSystem* s) { return CreateEsmManager(s, leaf); }};
  };
  auto eos = [](uint32_t t) -> EngineSpec {
    return {"EOS T=" + std::to_string(t),
            [t](StorageSystem* s) { return CreateEosManager(s, t); }};
  };
  const EngineSpec sb = StarburstSpec();
  const uint64_t MB = args.object_bytes;

  // ---- Figure 5: builds -------------------------------------------------
  {
    const double b3 = BuildSeconds(esm(1), MB, 3 * 1024);
    const double b4 = BuildSeconds(esm(1), MB, 4 * 1024);
    const double b5 = BuildSeconds(esm(1), MB, 5 * 1024);
    Claim("F5.a", "ESM leaf=1 build shows the 3K/4K/5K sawtooth",
          b4 < b3 && b4 < b5,
          Fmt("3K=%.1fs 4K=%.1fs 5K=%.1fs", b3, b4, b5));

    const double l1 = BuildSeconds(esm(1), MB, 16 * 1024);
    const double l4 = BuildSeconds(esm(4), MB, 16 * 1024);
    const double l16 = BuildSeconds(esm(16), MB, 16 * 1024);
    const double l64 = BuildSeconds(esm(64), MB, 16 * 1024);
    Claim("F5.b", "exact-match leaf (4 pages) wins for 16K appends",
          l4 < l1 && l4 < l16 && l4 < l64,
          Fmt("leaf1=%.1f leaf4=%.1f leaf16=%.1f leaf64=%.1f", l1, l4, l16,
              l64));

    const double s = BuildSeconds(sb, MB, 16 * 1024);
    const double e = BuildSeconds(eos(4), MB, 16 * 1024);
    Claim("F5.c", "Starburst and EOS build identically (within 2%)",
          std::fabs(s - e) <= 0.02 * s, Fmt("sb=%.2fs eos=%.2fs", s, e));
    Claim("F5.d", "Starburst/EOS build <= best ESM", s <= l4 * 1.02,
          Fmt("sb=%.2fs best_esm=%.2fs", s, l4));
  }

  // ---- Figure 6: scans --------------------------------------------------
  {
    const double f1 = ScanSeconds(esm(1), MB, 8 * 1024);
    const double f2 = ScanSeconds(esm(1), MB, 64 * 1024);
    const double f3 = ScanSeconds(esm(1), MB, 256 * 1024);
    Claim("F6.a", "ESM leaf=1 scan cost is flat in the scan size",
          std::fabs(f1 - f3) < 0.05 * f1 && std::fabs(f2 - f3) < 0.05 * f2,
          Fmt("8K=%.1f 64K=%.1f 256K=%.1f s", f1, f2, f3));
    const double sb512 = ScanSeconds(sb, MB, 512 * 1024);
    const double floor_s =
        static_cast<double>(MB) / 1024.0 / 1000.0;  // 1 KB/ms
    Claim("F6.b", "Starburst large scans near the transfer bound (<15% over)",
          sb512 < 1.15 * floor_s, Fmt("scan=%.2fs bound=%.2fs", sb512,
                                      floor_s));
    Claim("F6.c", "segment layouts beat block-at-a-time scans",
          sb512 < f3 / 3, Fmt("sb=%.2fs esm1=%.2fs", sb512, f3));
  }

  // ---- Figures 7/8: utilization ----------------------------------------
  {
    const MixResult e1 = Mix(esm(1), MB, 100000, args.ops);
    const MixResult e64 = Mix(esm(64), MB, 100000, args.ops);
    // (At the paper's full scale the gap is ~19 pp; the reduced run has
    // fewer ops for the 64-page case to degrade, so require >5 pp.)
    Claim("F7.a", "100K ops: ESM 1-page leaves pack far better than 64-page",
          e1.util > e64.util + 0.05,
          Fmt("leaf1=%.1f%% leaf64=%.1f%%", e1.util * 100, e64.util * 100));

    const MixResult t1 = Mix(eos(1), MB, 10000, args.ops);
    const MixResult t4 = Mix(eos(4), MB, 10000, args.ops);
    const MixResult t16 = Mix(eos(16), MB, 10000, args.ops);
    const MixResult t64 = Mix(eos(64), MB, 10000, args.ops);
    Claim("F8.a", "EOS utilization rises with the threshold",
          t1.util < t4.util && t4.util < t16.util && t16.util < t64.util,
          Fmt("T1=%.1f T4=%.1f T16=%.1f T64=%.1f %%", t1.util * 100,
              t4.util * 100, t16.util * 100, t64.util * 100));
    Claim("F8.b", "EOS T=64 utilization ~100% (>=98%)", t64.util >= 0.98,
          Fmt("T64=%.1f%%", t64.util * 100, 0));
    const MixResult esm1_small = Mix(esm(1), MB, 10000, args.ops);
    Claim("F8.c", "EOS T=1 utilization comparable to ESM 1-page (+/-10pp)",
          std::fabs(t1.util - esm1_small.util) < 0.10,
          Fmt("eosT1=%.1f%% esm1=%.1f%%", t1.util * 100,
              esm1_small.util * 100));

    // ---- Figures 9/10: reads -------------------------------------------
    Claim("F9.a", "10K reads: ESM leaf=1 costs ~2x leaf=4 or more",
          esm1_small.read_ms > 1.5 * Mix(esm(4), MB, 10000, args.ops).read_ms,
          Fmt("leaf1=%.0fms", esm1_small.read_ms, 0));
    Claim("F10.a", "EOS read cost initially independent of T (first mark)",
          std::fabs(t1.first_read_ms - t64.first_read_ms) <
              0.25 * t64.first_read_ms,
          Fmt("T1=%.0f T64=%.0f ms", t1.first_read_ms, t64.first_read_ms));
    Claim("F10.b", "EOS read cost falls as T grows (final mark)",
          t1.read_ms > t16.read_ms && t16.read_ms >= t64.read_ms * 0.9,
          Fmt("T1=%.0f T4=%.0f T16=%.0f T64=%.0f ms", t1.read_ms, t4.read_ms,
              t16.read_ms, t64.read_ms));

    // ---- Figures 11/12: inserts ----------------------------------------
    Claim("F12.a", "EOS insert: T=1 and T=4 comparable, T=64 clearly worse",
          t64.insert_ms > 1.5 * t4.insert_ms &&
              std::fabs(t1.insert_ms - t4.insert_ms) <
                  0.6 * std::max(t1.insert_ms, t4.insert_ms),
          Fmt("T1=%.0f T4=%.0f T64=%.0f ms", t1.insert_ms, t4.insert_ms,
              t64.insert_ms));
    Claim("R1", "delete cost tracks insert cost ordering (EOS)",
          (t64.delete_ms > t4.delete_ms) == (t64.insert_ms > t4.insert_ms),
          Fmt("del T4=%.0f T64=%.0f ms", t4.delete_ms, t64.delete_ms));
  }

  // ---- Tables 2/3: Starburst -------------------------------------------
  {
    StorageSystem sys;
    auto mgr = CreateStarburstManager(&sys);
    auto id = mgr->Create();
    LOB_CHECK_OK(id.status());
    LOB_CHECK_OK(
        BuildObject(&sys, mgr.get(), *id, MB, 100 * 1024).status());
    Rng rng(1);
    std::string buf;
    double read100 = 0;
    for (int i = 0; i < 200; ++i) {
      const uint64_t off = rng.Uniform(0, MB - 101);
      const IoStats before = sys.stats();
      LOB_CHECK_OK(mgr->Read(*id, off, 100, &buf));
      read100 += IoStats::Delta(before, sys.stats()).ms;
    }
    read100 /= 200;
    Claim("T2.a", "Starburst 100B read ~37 ms (+/-10%)",
          std::fabs(read100 - 37.0) < 3.7, Fmt("read=%.1fms", read100, 0));

    double ins_small = 0, ins_large = 0, del_small = 0;
    for (int i = 0; i < 5; ++i) {
      const uint64_t off = rng.Uniform(0, MB - 1);
      IoStats before = sys.stats();
      LOB_CHECK_OK(mgr->Insert(*id, off, std::string(100, 'x')));
      ins_small += IoStats::Delta(before, sys.stats()).ms;
      before = sys.stats();
      LOB_CHECK_OK(mgr->Delete(*id, off, 100));
      del_small += IoStats::Delta(before, sys.stats()).ms;
      before = sys.stats();
      LOB_CHECK_OK(mgr->Insert(*id, off, std::string(100000, 'x')));
      ins_large += IoStats::Delta(before, sys.stats()).ms;
      LOB_CHECK_OK(mgr->Delete(*id, off, 100000));
    }
    Claim("T3.a", "Starburst insert cost flat in operation size (+/-25%)",
          std::fabs(ins_small - ins_large) <
              0.25 * std::max(ins_small, ins_large),
          Fmt("100B=%.0f 100K=%.0f ms", ins_small / 5, ins_large / 5));
    Claim("T3.b", "Starburst delete costs equal inserts (+/-15%)",
          std::fabs(del_small - ins_small) < 0.15 * ins_small,
          Fmt("ins=%.0f del=%.0f ms", ins_small / 5, del_small / 5));
  }
  {
    const MixResult t4 = Mix(eos(4), MB, 10000, std::min(args.ops, 300u));
    MixRun sbrun = RunMixFor(sb, MB, 10000, 60, 30);
    Claim("S1", "Starburst updates cost orders of magnitude over EOS",
          sbrun.points.back().avg_insert_ms > 5 * t4.insert_ms,
          Fmt("sb=%.0f eos=%.0f ms", sbrun.points.back().avg_insert_ms,
              t4.insert_ms));
  }

  // ---- 3.3 / [Care86] ablations -----------------------------------------
  {
    auto replace_cost = [&](uint32_t leaf, bool shadowing) {
      StorageConfig cfg;
      cfg.shadowing = shadowing;
      StorageSystem sys(cfg);
      auto mgr = CreateEsmManager(&sys, leaf);
      auto id = mgr->Create();
      LOB_CHECK_OK(id.status());
      LOB_CHECK_OK(BuildObject(&sys, mgr.get(), *id, 2 * 1024 * 1024,
                               128 * 1024)
                       .status());
      Rng rng(leaf);
      std::string patch(100, 'x');
      double total = 0;
      for (int i = 0; i < 30; ++i) {
        const IoStats before = sys.stats();
        LOB_CHECK_OK(mgr->Replace(
            *id, rng.Uniform(0, 2 * 1024 * 1024 - 101), patch));
        total += IoStats::Delta(before, sys.stats()).ms;
      }
      return total / 30;
    };
    const double on2 = replace_cost(2, true);
    const double on64 = replace_cost(64, true);
    const double off64 = replace_cost(64, false);
    Claim("A1", "whole-segment shadowing: 64-block >> 2-block update",
          on64 > 3 * on2, Fmt("2pg=%.0f 64pg=%.0f ms", on2, on64));
    Claim("A2", "without shadowing large-segment updates become cheap",
          off64 < on64 / 3, Fmt("on=%.0f off=%.0f ms", on64, off64));
  }

  std::printf("\n%d claim(s) failed\n", g_failures);
  return g_failures;
}
