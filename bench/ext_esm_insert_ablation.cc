// Extension: ESM basic vs improved insert (paper 3.4; Carey et al. 1986).
// The improved algorithm redistributes the new bytes with a neighbor when
// that avoids creating a new leaf; [Care86] reports significant storage
// utilization gains at minimal additional insert cost. This bench
// reproduces that claim; the two algorithm variants run as parallel
// fan-out jobs.

#include "bench/bench_common.h"
#include "esm/esm_manager.h"

using namespace lob;
using namespace lob::bench;

namespace {

struct Outcome {
  double utilization = 0;
  double insert_ms = 0;
  uint32_t segments = 0;
};

Outcome Run(bool improved, uint64_t object_bytes, uint32_t ops,
            JobOutput* out) {
  StorageSystem sys;
  EsmOptions opt;
  opt.leaf_pages = 4;
  opt.improved_insert = improved;
  EsmManager mgr(&sys, opt);
  auto id = mgr.Create();
  LOB_CHECK_OK(id.status());
  LOB_CHECK_OK(
      BuildObject(&sys, &mgr, *id, object_bytes, 100 * 1024).status());
  MixSpec spec;
  spec.mean_op_bytes = 10000;
  spec.total_ops = ops;
  spec.window_ops = std::max(1u, ops / 4);
  auto points = RunUpdateMix(&sys, &mgr, *id, spec);
  LOB_CHECK_OK(points.status());
  Outcome outcome;
  outcome.utilization = points->back().utilization;
  outcome.insert_ms = points->back().avg_insert_ms;
  auto stats = mgr.GetStorageStats(*id);
  LOB_CHECK_OK(stats.status());
  outcome.segments = stats->segments;
  out->SetModeledMs(sys.stats().ms);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_esm_insert_ablation: basic vs improved ESM insert",
              "3.4 / [Care86] (improved insert gains utilization at "
              "minimal insert cost)");
  std::printf("object: %.1f MB, ops: %u, leaf=4 pages, 10 K mix\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.ops);

  BenchEngine engine("ext_esm_insert_ablation", args);
  const std::vector<std::string> cell_labels = {"basic", "improved"};
  Mapped<Outcome> outcomes = engine.Map<Outcome>(
      cell_labels, [&](size_t i, JobOutput* out) {
        return Run(/*improved=*/i == 1, args.object_bytes, args.ops, out);
      });

  std::printf("%12s  %14s  %14s  %10s\n", "algorithm", "utilization",
              "insert [ms]", "leaves");
  for (size_t k = 0; k < cell_labels.size(); ++k) {
    const Outcome& o = outcomes.values[k];
    std::printf("%12s  %13.1f%%  %14.1f  %10u\n", cell_labels[k].c_str(),
                o.utilization * 100, o.insert_ms, o.segments);
  }
  std::printf(
      "\nexpected: improved utilization higher, insert cost within a few "
      "percent.\n");
  engine.Finish();
  return 0;
}
