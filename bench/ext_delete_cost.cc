// Extension (tech-report material): delete I/O cost for ESM and EOS. The
// paper states (4.4.3) that delete trends match insert trends; this bench
// prints the measured delete costs so the claim can be checked.

#include "bench/mix_figure.h"

int main(int argc, char** argv) {
  std::vector<lob::bench::EngineSpec> specs = lob::bench::EsmSpecs();
  for (auto& spec : lob::bench::EosSpecs()) specs.push_back(spec);
  return lob::bench::RunMixFigure(
      argc, argv, "ext_delete_cost: ESM and EOS delete I/O cost vs ops",
      "4.4.3 (delete costs; graphs only in the technical report)", specs,
      lob::bench::MixMetric::kDeleteMs,
      "the trends mentioned for inserts also hold for deletes (paper "
      "4.4.3).");
}
