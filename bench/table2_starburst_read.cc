// Table 2: Starburst read I/O cost for mean operation sizes 100 B, 10 K
// and 100 K (+/-50%), uniformly placed over a 10 M-byte long field.
// Because Starburst completely reorganizes the affected segments on every
// update, read cost does not depend on prior updates; this bench measures
// reads over a freshly built field.
//
// Paper values: 37 ms (100 B), 54 ms (10 K), 201 ms (100 K).

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("table2_starburst_read: Starburst read I/O cost",
              "Table 2 (Starburst read I/O cost)");
  const uint32_t reads = static_cast<uint32_t>(
      FlagValue(argc, argv, "reads", args.quick ? 200 : 2000));
  std::printf("object: %.1f MB, reads per size: %u\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, reads);

  StorageSystem sys;
  auto mgr = CreateStarburstManager(&sys);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  LOB_CHECK_OK(
      BuildObject(&sys, mgr.get(), *id, args.object_bytes, 100 * 1024)
          .status());

  std::printf("%18s  %14s  %14s\n", "mean op size", "measured [ms]",
              "paper [ms]");
  const double paper[] = {37, 54, 201};
  int row = 0;
  for (uint64_t mean : {100ull, 10000ull, 100000ull}) {
    Rng rng(mean);
    std::string buf;
    double total = 0;
    for (uint32_t i = 0; i < reads; ++i) {
      uint64_t n = rng.Uniform(mean / 2, mean * 3 / 2);
      n = std::min<uint64_t>(n, args.object_bytes);
      const uint64_t off = rng.Uniform(0, args.object_bytes - n);
      const IoStats before = sys.stats();
      LOB_CHECK_OK(mgr->Read(*id, off, n, &buf));
      total += IoStats::Delta(before, sys.stats()).ms;
    }
    std::printf("%18llu  %14.1f  %14.0f\n",
                static_cast<unsigned long long>(mean), total / reads,
                paper[row++]);
  }
  return 0;
}
