// Figure 9: ESM read I/O cost (window-averaged) as random updates degrade
// the structure.

#include "bench/mix_figure.h"

int main(int argc, char** argv) {
  return lob::bench::RunMixFigure(
      argc, argv, "fig9_esm_read_cost: ESM read I/O cost vs ops",
      "Figure 9 a-c (ESM read I/O cost)", lob::bench::EsmSpecs(),
      lob::bench::MixMetric::kReadMs,
      "100 B: ~37-40 ms everywhere, leaf=1 slightly worse (more index "
      "pages);\n  10 K: leaf=1 about double the multi-page leaves; 100 K: "
      "larger leaves\n  clearly cheaper.");
}
