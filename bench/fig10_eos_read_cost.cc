// Figure 10: EOS read I/O cost. Fresh objects read the same for every
// threshold (segments start large); as updates accumulate, segments
// degrade toward ~T pages and the curves separate.

#include "bench/mix_figure.h"

int main(int argc, char** argv) {
  return lob::bench::RunMixFigure(
      argc, argv, "fig10_eos_read_cost: EOS read I/O cost vs ops",
      "Figure 10 a-c (EOS read I/O cost)", lob::bench::EosSpecs(),
      lob::bench::MixMetric::kReadMs,
      "initially identical across T; larger T reads cheaper as the object "
      "ages;\n  EOS <= ESM at the same size; T=16 reaches Starburst-level "
      "reads (Table 2).");
}
