// Figure 8: EOS storage utilization for segment size thresholds 1/4/16/64
// pages. Only the last page of a segment can be partially full, so larger
// thresholds mean better utilization regardless of the operation size.

#include "bench/mix_figure.h"

int main(int argc, char** argv) {
  return lob::bench::RunMixFigure(
      argc, argv, "fig8_eos_utilization: EOS storage utilization vs ops",
      "Figure 8 a-c (EOS storage utilization)", lob::bench::EosSpecs(),
      lob::bench::MixMetric::kUtilization,
      "larger T -> better utilization at every operation size; T=16 "
      ">98%,\n  T=64 ~100%; T=1 comparable to ESM 1-page leaves.");
}
