// Extension: object build cost vs object size. The paper (4.2) states the
// cost of creating an object grows linearly with its size ("to obtain the
// time required to build a 100 M-byte object, just multiply the numbers in
// Figure 5 by 10"). This bench reports seconds-per-megabyte at several
// object sizes; a flat column means linear scaling. The (size x engine)
// grid runs as one fan-out job per cell.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_build_scaling: build cost per MB vs object size",
              "4.2 (build cost grows linearly with object size)");
  const uint64_t append = FlagValue(argc, argv, "append-kb", 32) * 1024;
  std::printf("append size: %llu KB\n\n",
              static_cast<unsigned long long>(append / 1024));

  std::vector<EngineSpec> specs = {EsmSpecs()[1], StarburstSpec(),
                                   {"EOS T=4", [](StorageSystem* sys) {
                                      return CreateEosManager(sys, 4);
                                    }}};
  std::vector<uint64_t> sizes_mb = args.quick
                                       ? std::vector<uint64_t>{1, 2, 4}
                                       : std::vector<uint64_t>{1, 5, 10, 20,
                                                               50};

  std::vector<std::string> cell_labels;
  for (uint64_t mb : sizes_mb) {
    for (const auto& spec : specs) {
      cell_labels.push_back("object_mb=" + std::to_string(mb) + "/" +
                            spec.label);
    }
  }
  BenchEngine engine("ext_build_scaling", args);
  Mapped<double> per_mb = engine.Map<double>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const uint64_t mb = sizes_mb[i / specs.size()];
        const EngineSpec& spec = specs[i % specs.size()];
        StorageSystem sys;
        auto mgr = spec.make(&sys);
        auto id = mgr->Create();
        LOB_CHECK_OK(id.status());
        auto r = BuildObject(&sys, mgr.get(), *id, mb * 1024 * 1024, append);
        LOB_CHECK_OK(r.status());
        out->SetModeledMs(r->Ms());
        return r->Seconds() / static_cast<double>(mb);
      });

  std::printf("%10s", "object_mb");
  for (const auto& s : specs) std::printf("  %16s", s.label.c_str());
  std::printf("   [seconds per MB]\n");
  size_t idx = 0;
  for (uint64_t mb : sizes_mb) {
    std::printf("%10llu", static_cast<unsigned long long>(mb));
    for (size_t k = 0; k < specs.size(); ++k, ++idx) {
      std::printf("  %16.2f", per_mb.values[idx]);
    }
    std::printf("\n");
  }
  std::printf("\npaper anchor: per-MB cost is constant (linear scaling).\n");
  engine.Finish();
  return 0;
}
