// Extension beyond the paper: sensitivity to the seek/transfer ratio.
// The study models a 1992 disk (33 ms seek, 1 KB/ms transfer, ratio 33:4
// per page). Modern devices have far lower effective seek-to-transfer
// ratios; this ablation re-runs the 10 K-insert comparison at several
// seek costs to show how the structures' ranking shifts: expensive seeks
// reward large segments, cheap seeks make small-leaf ESM competitive.
// The (seek cost x engine) grid runs as one fan-out job per cell.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

namespace {

struct Costs {
  double build_s;
  double insert_ms;
  double read_ms;
};

Costs Measure(const StorageConfig& cfg, const EngineSpec& spec,
              uint64_t object_bytes, uint32_t ops, JobOutput* out) {
  StorageSystem sys(cfg);
  auto mgr = spec.make(&sys);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  auto build =
      BuildObject(&sys, mgr.get(), *id, object_bytes, 32 * 1024);
  LOB_CHECK_OK(build.status());
  MixSpec mix;
  mix.mean_op_bytes = 10000;
  mix.total_ops = ops;
  mix.window_ops = ops;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
  LOB_CHECK_OK(points.status());
  out->SetModeledMs(sys.stats().ms);
  return {build->Seconds(), points->back().avg_insert_ms,
          points->back().avg_read_ms};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_seek_sensitivity: seek cost ablation",
              "beyond the paper (Table 1 fixes 33 ms seek)");
  std::printf("object: %.1f MB, 32 K appends, 10 K mix, %u ops\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.ops);

  std::vector<EngineSpec> specs = {EsmSpecs()[0], EsmSpecs()[2],
                                   {"EOS T=4", [](StorageSystem* sys) {
                                      return CreateEosManager(sys, 4);
                                    }}};
  const std::vector<double> seeks = {2.0, 10.0, 33.0, 100.0};

  std::vector<std::string> cell_labels;
  for (double seek : seeks) {
    for (const auto& spec : specs) {
      char prefix[64];
      std::snprintf(prefix, sizeof(prefix), "seek_ms=%.0f/", seek);
      cell_labels.push_back(prefix + spec.label);
    }
  }
  BenchEngine engine("ext_seek_sensitivity", args);
  Mapped<Costs> costs = engine.Map<Costs>(
      cell_labels, [&](size_t i, JobOutput* out) {
        StorageConfig cfg;
        cfg.seek_ms = seeks[i / specs.size()];
        return Measure(cfg, specs[i % specs.size()], args.object_bytes,
                       args.ops, out);
      });

  size_t idx = 0;
  for (double seek : seeks) {
    std::printf("--- seek = %.0f ms (transfer 4 ms/page) ---\n", seek);
    std::printf("%14s  %12s  %14s  %12s\n", "engine", "build [s]",
                "insert [ms]", "read [ms]");
    for (size_t k = 0; k < specs.size(); ++k, ++idx) {
      const Costs& c = costs.values[idx];
      std::printf("%14s  %12.1f  %14.1f  %12.1f\n", specs[k].label.c_str(),
                  c.build_s, c.insert_ms, c.read_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "expected: at 33-100 ms seeks, large segments dominate reads; as the\n"
      "seek cost falls toward the transfer cost, the gap between 1-page\n"
      "ESM leaves and segment-based layouts narrows - the study's\n"
      "conclusions are a function of 1992 disk geometry.\n");
  engine.Finish();
  return 0;
}
