// Extension: intra-database concurrency. The paper measures one client
// at a time; this bench runs N logical clients whose interleaved
// operation streams share ONE database and one modeled disk arm (see
// src/workload/multi_client.h). The modeled disk queue charges each op a
// queueing delay separately from seek+transfer service time, so the grid
// shows how per-op latency decomposes as load grows: service cost stays
// flat while queue wait climbs with the client count.
//
// Grid: clients x engine x mix. Every cell is one fan-out job with a
// private StorageSystem; the scheduler and all client streams are
// seeded, so output bytes are identical for any --jobs value. Each cell
// ends with a cross-engine fsck over every client object (clean storage
// is part of the bench's pass condition, not just its numbers).
//
// Extra flags (on top of bench_common.h's):
//   --csv              machine-readable rows instead of tables
//   --clients=CSV      override the client counts (default 1,4,16)
//   --client-kb=N      per-client object size in KB (default 256)

#include <cinttypes>

#include "bench/bench_common.h"
#include "check/fsck.h"
#include "workload/multi_client.h"

using namespace lob;
using namespace lob::bench;

namespace {

struct MixShape {
  const char* name;
  double read_frac;
  double insert_frac;
};

struct CellResult {
  MultiClientResult run;
  double queue_p50_ms = 0;
  double queue_p99_ms = 0;
  bool fsck_clean = false;
  std::string snapshot_json;
};

CellResult RunCell(const EngineSpec& spec, const MixShape& mix,
                   uint32_t clients, uint64_t client_bytes, uint32_t ops,
                   uint32_t window, bool print_obs, JobOutput* out,
                   TraceSession* trace) {
  StorageSystem sys;
  sys.disk()->set_trace(trace);
  auto mgr = spec.make(&sys);

  MultiClientSpec mc;
  mc.clients = clients;
  mc.total_ops = ops;
  mc.window_ops = window;
  mc.object_bytes = client_bytes;
  mc.read_frac = mix.read_frac;
  mc.insert_frac = mix.insert_frac;
  // Seeded per cell shape (not per job index), so the stream is a pure
  // function of the configuration.
  mc.seed = 7 + clients * 31 + (mix.insert_frac > 0.2 ? 1 : 0);

  auto run = RunMultiClient(&sys, mgr.get(), mc);
  LOB_CHECK_OK(run.status());
  sys.disk()->set_trace(nullptr);

  CellResult cell;
  cell.run = *run;
  cell.queue_p50_ms = run->queue_hist.Quantile(0.5);
  cell.queue_p99_ms = run->queue_hist.Quantile(0.99);

  // Storage must come out of the concurrent mix consistent: every client
  // object validates, every extent has exactly one owner, nothing leaks.
  std::vector<std::pair<ObjectId, LargeObjectManager*>> objects;
  for (ObjectId id : run->objects) objects.emplace_back(id, mgr.get());
  auto report = FsckObjects(&sys, objects);
  LOB_CHECK_OK(report.status());
  cell.fsck_clean = report->clean();
  if (!cell.fsck_clean) out->Printf("%s", report->ToString().c_str());

  if (print_obs) PrintOpAttribution(spec.label, &sys, out);
  cell.snapshot_json = MetricsSnapshot::Collect(&sys).ToJson("    ");
  out->SetModeledMs(sys.stats().ms + sys.stats().queue_ms);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const bool csv = FlagPresent(argc, argv, "csv");
  const uint64_t client_kb =
      FlagValue(argc, argv, "client-kb", args.quick ? 128 : 256);
  const uint32_t ops = static_cast<uint32_t>(
      FlagValue(argc, argv, "ops", args.quick ? 600 : 6000));
  const uint32_t window = std::max(1u, ops / 4);

  std::vector<uint32_t> client_counts;
  {
    const std::string s =
        FlagValueString(argc, argv, "clients", "1,4,16");
    size_t pos = 0;
    while (pos < s.size()) {
      client_counts.push_back(
          static_cast<uint32_t>(std::strtoul(s.c_str() + pos, nullptr, 10)));
      const size_t comma = s.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const std::vector<MixShape> mixes = {{"update", 0.4, 0.3},
                                       {"readmost", 0.7, 0.15}};
  const std::vector<EngineSpec> specs = {
      EsmSpecs()[1],  // ESM leaf=4
      StarburstSpec(),
      {"EOS T=4",
       [](StorageSystem* sys) { return CreateEosManager(sys, 4); }}};

  if (!csv) {
    PrintBanner("ext_concurrency: N clients, one database, one disk arm",
                "beyond the paper (single-client study; here interleaved "
                "streams queue on the modeled arm)");
    std::printf("%u ops per cell, %" PRIu64
                " KB per client object, clients x engine x mix\n\n",
                ops, client_kb);
  }

  std::vector<std::string> cell_labels;
  struct CellCfg {
    size_t spec;
    size_t mix;
    uint32_t clients;
  };
  std::vector<CellCfg> cells;
  for (size_t m = 0; m < mixes.size(); ++m) {
    for (size_t s = 0; s < specs.size(); ++s) {
      for (uint32_t n : client_counts) {
        cells.push_back({s, m, n});
        cell_labels.push_back(specs[s].label + " " + mixes[m].name +
                              " N=" + std::to_string(n));
      }
    }
  }

  // Per-cell trace sessions: each job records only into its own slot and
  // the merge walks slots in submission order, so trace bytes are
  // identical for any --jobs (the queue-wait kPhase spans included).
  std::vector<std::unique_ptr<TraceSession>> traces;
  for (size_t i = 0; i < cells.size(); ++i) {
    traces.push_back(args.trace.empty() ? nullptr
                                        : std::make_unique<TraceSession>());
  }

  BenchEngine engine("ext_concurrency", args);
  const size_t cell_base = engine.next_cell_index();
  Mapped<CellResult> results = engine.Map<CellResult>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const CellCfg& c = cells[i];
        return RunCell(specs[c.spec], mixes[c.mix], c.clients,
                       client_kb * 1024, ops, window, args.obs, out,
                       traces[i].get());
      });
  for (size_t i = 0; i < cells.size(); ++i) {
    engine.SetCellSnapshot(cell_base + i,
                           std::move(results.values[i].snapshot_json));
  }
  if (!args.trace.empty()) {
    std::vector<std::pair<std::string, const TraceSession*>> sessions;
    for (size_t i = 0; i < cells.size(); ++i) {
      sessions.emplace_back(cell_labels[i], traces[i].get());
    }
    WriteTextFile(args.trace, TraceSession::ChromeTraceJson(sessions));
  }

  if (csv) {
    std::printf(
        "engine,mix,clients,ops,reads,inserts,deletes,service_ms,"
        "queue_ms,avg_queue_ms,queue_p50_ms,queue_p99_ms,max_queue_ms,"
        "makespan_ms,fsck_clean\n");
  }
  bool all_clean = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellCfg& c = cells[i];
    const CellResult& r = results.values[i];
    all_clean = all_clean && r.fsck_clean;
    if (csv) {
      std::printf("%s,%s,%u,%u,%u,%u,%u,%.1f,%.1f,%.3f,%.1f,%.1f,%.1f,"
                  "%.1f,%d\n",
                  specs[c.spec].label.c_str(), mixes[c.mix].name, c.clients,
                  r.run.ops, r.run.reads, r.run.inserts, r.run.deletes,
                  r.run.service_ms, r.run.queue_ms,
                  r.run.ops ? r.run.queue_ms / r.run.ops : 0.0,
                  r.queue_p50_ms, r.queue_p99_ms, r.run.max_queue_ms,
                  r.run.makespan_ms, r.fsck_clean ? 1 : 0);
    }
    if (!results.texts[i].empty()) {
      std::fputs(results.texts[i].c_str(), stdout);
    }
  }

  if (!csv) {
    for (size_t m = 0; m < mixes.size(); ++m) {
      std::printf("mix %s (%.0f/%.0f/%.0f read/insert/delete)\n",
                  mixes[m].name, mixes[m].read_frac * 100,
                  mixes[m].insert_frac * 100,
                  (1 - mixes[m].read_frac - mixes[m].insert_frac) * 100);
      std::printf("%16s  %8s  %14s  %14s  %14s  %14s  %6s\n", "engine",
                  "clients", "service [ms]", "avg queue [ms]",
                  "queue p99 [ms]", "makespan [ms]", "fsck");
      for (size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].mix != m) continue;
        const CellCfg& c = cells[i];
        const CellResult& r = results.values[i];
        std::printf("%16s  %8u  %14.1f  %14.3f  %14.1f  %14.1f  %6s\n",
                    specs[c.spec].label.c_str(), c.clients, r.run.service_ms,
                    r.run.ops ? r.run.queue_ms / r.run.ops : 0.0,
                    r.queue_p99_ms, r.run.makespan_ms,
                    r.fsck_clean ? "clean" : "DIRTY");
      }
      std::printf("\n");
    }
    std::printf(
        "expected: service cost per op is load-independent; queueing\n"
        "delay is zero for one client and grows with the client count.\n");
  }
  engine.Finish();
  return all_clean ? 0 : 1;
}
