// Extension beyond the paper: sensitivity to the buffer pool parameters.
// The study fixes the pool at 12 pages with a 4-page buffered-segment
// limit (Table 1) and notes in passing that index pages may miss in the
// pool (4.4.2). This ablation varies both knobs and reports 10 K read
// costs after the standard update mix, quantifying how much of each
// structure's read cost is pool pressure rather than data layout.
// The ((pool, limit) x engine) grid runs as one fan-out job per cell.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

namespace {

double MeasureReads(const StorageConfig& cfg, int engine,
                    uint64_t object_bytes, uint32_t ops, JobOutput* out) {
  StorageSystem sys(cfg);
  auto mgr = engine == 0 ? CreateEsmManager(&sys, 1)
                         : CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  LOB_CHECK_OK(
      BuildObject(&sys, mgr.get(), *id, object_bytes, 100 * 1024).status());
  MixSpec mix;
  mix.mean_op_bytes = 10000;
  mix.total_ops = ops;
  mix.window_ops = ops;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
  LOB_CHECK_OK(points.status());
  out->SetModeledMs(sys.stats().ms);
  return points->back().avg_read_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_pool_ablation: buffer pool size sensitivity",
              "beyond the paper (Table 1 fixes 12 pages / 4-page limit)");
  std::printf("object: %.1f MB, 10 K mix, %u ops\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.ops);

  std::printf("%12s %12s  %14s  %14s   [10 K read ms]\n", "pool pages",
              "seg limit", "ESM leaf=1", "EOS T=4");
  const uint32_t pools[] = {12, 32, 128};
  const uint32_t limits[] = {4, 16};
  struct Cell {
    uint32_t pool;
    uint32_t limit;
    int engine;
  };
  std::vector<Cell> cells;
  std::vector<std::string> cell_labels;
  for (uint32_t pool : pools) {
    for (uint32_t limit : limits) {
      if (limit > pool) continue;
      for (int eng : {0, 1}) {
        cells.push_back(Cell{pool, limit, eng});
        cell_labels.push_back("pool=" + std::to_string(pool) + "/limit=" +
                              std::to_string(limit) + "/" +
                              (eng == 0 ? "ESM leaf=1" : "EOS T=4"));
      }
    }
  }
  BenchEngine engine("ext_pool_ablation", args);
  Mapped<double> read_ms = engine.Map<double>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const Cell& cell = cells[i];
        StorageConfig cfg;
        cfg.buffer_pool_pages = cell.pool;
        cfg.max_pool_segment_pages = cell.limit;
        return MeasureReads(cfg, cell.engine, args.object_bytes, args.ops,
                            out);
      });

  for (size_t i = 0; i + 1 < cells.size(); i += 2) {
    std::printf("%12u %12u  %14.1f  %14.1f\n", cells[i].pool,
                cells[i].limit, read_ms.values[i], read_ms.values[i + 1]);
  }
  std::printf(
      "\nexpected: larger pools absorb index-page misses (biggest gain for\n"
      "1-page ESM leaves whose trees have the most index pages); a larger\n"
      "buffered-segment limit helps multi-page reads stay in one call.\n");
  engine.Finish();
  return 0;
}
