// Extension: how update traffic degrades EOS segment sizes toward the
// threshold. Paper 4.4 (Figure 10 discussion): "when the object is
// initially created ... the leaf segments are large at this point.
// However, as more and more updates are performed, these segments
// gradually degrade to about N-page leaves, where N is the segment size
// threshold." This bench prints the mean segment size at each mark, plus
// the final size histogram per threshold.

#include "bench/bench_common.h"
#include "workload/maintenance.h"

using namespace lob;
using namespace lob::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_segment_degradation: EOS segment sizes vs update count",
              "4.4 (segments degrade to about T-page leaves)");
  std::printf("object: %.1f MB, 10 K mix\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0);

  const uint32_t thresholds[] = {1, 4, 16, 64};
  std::printf("%10s", "ops");
  for (uint32_t t : thresholds) std::printf("  %12s%u", "T=", t);
  std::printf("   [mean segment pages]\n");

  struct Run {
    std::unique_ptr<StorageSystem> sys;
    std::unique_ptr<LargeObjectManager> mgr;
    ObjectId id;
  };
  std::vector<Run> runs;
  for (uint32_t t : thresholds) {
    Run run;
    run.sys = std::make_unique<StorageSystem>();
    run.mgr = CreateEosManager(run.sys.get(), t);
    auto id = run.mgr->Create();
    LOB_CHECK_OK(id.status());
    run.id = *id;
    LOB_CHECK_OK(BuildObject(run.sys.get(), run.mgr.get(), run.id,
                             args.object_bytes, 100 * 1024)
                     .status());
    runs.push_back(std::move(run));
  }

  const uint32_t steps = 10;
  const uint32_t per_step = args.ops / steps;
  for (uint32_t step = 0; step <= steps; ++step) {
    std::printf("%10u", step * per_step);
    for (auto& run : runs) {
      auto mean = MeanSegmentPages(run.mgr.get(), run.id);
      LOB_CHECK_OK(mean.status());
      std::printf("  %13.1f", *mean);
    }
    std::printf("\n");
    if (step == steps) break;
    for (auto& run : runs) {
      MixSpec mix;
      mix.mean_op_bytes = 10000;
      mix.total_ops = per_step;
      mix.window_ops = per_step;
      mix.seed = 31 + step;
      LOB_CHECK_OK(
          RunUpdateMix(run.sys.get(), run.mgr.get(), run.id, mix).status());
    }
  }

  std::printf("\nfinal segment-size histograms (pages: count):\n");
  for (size_t k = 0; k < runs.size(); ++k) {
    auto hist = SegmentHistogram(runs[k].mgr.get(), runs[k].id);
    LOB_CHECK_OK(hist.status());
    std::printf("  T=%-3u ", thresholds[k]);
    int shown = 0;
    for (const auto& [pages, count] : *hist) {
      if (shown++ == 8) {
        std::printf("...");
        break;
      }
      std::printf("%u:%u  ", pages, count);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected: every column starts high (doubling build segments) and\n"
      "falls toward roughly its threshold as updates accumulate.\n");
  return 0;
}
