// Figure 7: ESM storage utilization as random inserts/deletes break up the
// initially full leaves, for leaf sizes 1/4/16/64 pages and mean operation
// sizes 100 B / 10 K / 100 K.

#include "bench/mix_figure.h"

int main(int argc, char** argv) {
  return lob::bench::RunMixFigure(
      argc, argv, "fig7_esm_utilization: ESM storage utilization vs ops",
      "Figure 7 a-c (ESM storage utilization)", lob::bench::EsmSpecs(),
      lob::bench::MixMetric::kUtilization,
      "100 B ops: ~low 80% for every leaf size; 10 K: leaf=1 pulls ahead "
      "(~85%);\n  100 K: leaf=1 ~96%, leaf=64 ~75% - larger leaves get "
      "worse as ops grow.");
}
