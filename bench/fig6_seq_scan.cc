// Figure 6: time to sequentially scan the whole 10 M-byte object in
// fixed-size chunks. The n-byte scan runs over the object created by
// n-byte appends (paper 4.3), which matters for Starburst/EOS whose
// segment layout depends on the first append.
//
// Expected shape: with a 1 KB/ms transfer rate the floor is ~10 s. ESM
// with 1-page leaves is worst and flat (every leaf page is a separate
// seek); larger leaves plateau once the scan size exceeds the leaf size;
// Starburst/EOS improve monotonically with scan size and are at least as
// good as the best ESM case.
//
// The (scan size x engine) grid runs as one fan-out job per cell; each
// job builds and scans its own private object.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("fig6_seq_scan: sequential scan time vs scan size",
              "Figure 6 (10 M-byte sequential scan time)");
  std::printf("object size: %.1f MB%s\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, args.quick ? " (--quick)" : "");

  std::vector<EngineSpec> specs = EsmSpecs();
  specs.push_back(StarburstSpec());
  specs.push_back({"EOS", [](StorageSystem* sys) {
                     return CreateEosManager(sys, 4);
                   }});

  std::vector<uint64_t> sizes_kb = PaperAppendSizesKb();
  if (args.quick) sizes_kb = {3, 4, 8, 32, 128, 512};

  std::vector<std::string> cell_labels;
  for (uint64_t kb : sizes_kb) {
    for (const auto& spec : specs) {
      cell_labels.push_back("scan_kb=" + std::to_string(kb) + "/" +
                            spec.label);
    }
  }
  BenchEngine engine("fig6_seq_scan", args);
  Mapped<double> seconds = engine.Map<double>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const uint64_t kb = sizes_kb[i / specs.size()];
        const EngineSpec& spec = specs[i % specs.size()];
        StorageSystem sys;
        auto mgr = spec.make(&sys);
        auto id = mgr->Create();
        LOB_CHECK_OK(id.status());
        LOB_CHECK_OK(BuildObject(&sys, mgr.get(), *id, args.object_bytes,
                                 kb * 1024)
                         .status());
        auto r = SequentialScan(&sys, mgr.get(), *id, kb * 1024);
        LOB_CHECK_OK(r.status());
        out->SetModeledMs(sys.stats().ms);
        return r->Seconds();
      });

  std::printf("%10s", "scan_kb");
  for (const auto& s : specs) std::printf("  %14s", s.label.c_str());
  std::printf("   [seconds]\n");
  size_t idx = 0;
  for (uint64_t kb : sizes_kb) {
    std::printf("%10llu", static_cast<unsigned long long>(kb));
    for (size_t k = 0; k < specs.size(); ++k, ++idx) {
      std::printf("  %14.1f", seconds.values[idx]);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper anchors: transfer-bound floor ~10 s; ESM leaf=1 flat and "
      "worst;\n  larger leaves plateau at scan >= leaf size; Starburst/EOS "
      "<= best ESM.\n");
  engine.Finish();
  return 0;
}
