// Shared scaffolding for the reproduction benches: engine line-ups,
// experiment runners, and table printing.
//
// Every bench binary accepts:
//   --quick            shrink object size and op counts (CI smoke run)
//   --object-mb=N      object size (default 10, as in the paper)
//   --ops=N            operations for update-mix experiments (default 20000)
//   --obs              print the per-operation I/O attribution ledger
//                      (engine x op: count, seeks, pages, modeled ms) after
//                      each configuration run, with a conservation check

#ifndef LOB_BENCH_BENCH_COMMON_H_
#define LOB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/storage_system.h"
#include "workload/workload.h"

namespace lob::bench {

/// One storage structure configuration under test.
struct EngineSpec {
  std::string label;
  std::function<std::unique_ptr<LargeObjectManager>(StorageSystem*)> make;
};

inline std::vector<EngineSpec> EsmSpecs() {
  std::vector<EngineSpec> specs;
  for (uint32_t leaf : {1u, 4u, 16u, 64u}) {
    specs.push_back({"ESM leaf=" + std::to_string(leaf),
                     [leaf](StorageSystem* sys) {
                       return CreateEsmManager(sys, leaf);
                     }});
  }
  return specs;
}

inline std::vector<EngineSpec> EosSpecs() {
  std::vector<EngineSpec> specs;
  for (uint32_t t : {1u, 4u, 16u, 64u}) {
    specs.push_back({"EOS T=" + std::to_string(t),
                     [t](StorageSystem* sys) {
                       return CreateEosManager(sys, t);
                     }});
  }
  return specs;
}

inline EngineSpec StarburstSpec() {
  return {"Starburst",
          [](StorageSystem* sys) { return CreateStarburstManager(sys); }};
}

/// The paper's Figure 5 x-axis (append/scan sizes, kilobytes).
inline std::vector<uint64_t> PaperAppendSizesKb() {
  return {3,  4,  5,  6,  7,  8,   10,  12,  14,  16, 20,
          24, 28, 32, 50, 64, 100, 128, 200, 256, 512};
}

/// Prints the Table 1 banner every bench starts with.
inline void PrintBanner(const char* title, const char* reproduces) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", reproduces);
  std::printf("fixed parameters (paper Table 1): 4K pages, 12-page pool,\n");
  std::printf("  4-page pool segment limit, 33 ms seek, 1 KB/ms transfer\n");
  std::printf("================================================================\n");
}

/// Set by BenchArgs::Parse when --obs is given; RunMixFor then prints the
/// per-operation attribution ledger after every configuration run.
inline bool g_print_obs = false;

/// Prints the per-operation I/O attribution ledger of `sys` (fed by the
/// OpScope tags inside the managers) plus the conservation check against
/// the global counters.
inline void PrintOpAttribution(const std::string& title, StorageSystem* sys) {
  const ObsRegistry* obs = sys->obs();
  std::printf("-- per-op I/O attribution: %s\n", title.c_str());
  std::printf("%-24s %10s %10s %10s %14s\n", "op", "count", "seeks", "pages",
              "ms");
  for (const auto& [label, rec] : obs->ops()) {
    std::printf("%-24s %10llu %10llu %10llu %14.1f\n", label.c_str(),
                static_cast<unsigned long long>(rec.count),
                static_cast<unsigned long long>(rec.io.Seeks()),
                static_cast<unsigned long long>(rec.io.PagesTransferred()),
                rec.io.ms);
  }
  std::printf("conservation (sum attributed == global): %s\n",
              obs->ConservationHolds(sys->stats()) ? "OK" : "VIOLATED");
}

/// Writes the registry's JSON and/or CSV export; empty paths are skipped.
inline void ExportObs(StorageSystem* sys, const std::string& json_path,
                      const std::string& csv_path) {
  auto write = [](const std::string& path, const std::string& content) {
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  };
  write(json_path, sys->obs()->ToJson());
  write(csv_path, sys->obs()->ToCsv());
}

/// Common command line handling.
struct BenchArgs {
  uint64_t object_bytes = 10ull * 1024 * 1024;
  uint32_t ops = 20000;
  uint32_t window = 2000;
  bool quick = false;
  bool obs = false;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    args.quick = FlagPresent(argc, argv, "quick");
    const uint64_t mb = FlagValue(argc, argv, "object-mb",
                                  args.quick ? 2 : 10);
    args.object_bytes = mb * 1024 * 1024;
    args.ops = static_cast<uint32_t>(
        FlagValue(argc, argv, "ops", args.quick ? 2000 : 20000));
    args.window = std::max(1u, args.ops / 10);
    args.obs = FlagPresent(argc, argv, "obs");
    g_print_obs = args.obs;
    return args;
  }
};

/// Result of one update-mix configuration run.
struct MixRun {
  std::vector<MixPoint> points;
  double final_utilization = 0;
};

/// Builds an object (100K appends, mirroring a bulk load) and runs the
/// paper's 40/30/30 mix with the given mean operation size.
inline MixRun RunMixFor(const EngineSpec& spec, uint64_t object_bytes,
                        uint64_t mean_op, uint32_t ops, uint32_t window) {
  StorageSystem sys;
  auto mgr = spec.make(&sys);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  LOB_CHECK_OK(
      BuildObject(&sys, mgr.get(), *id, object_bytes, 100 * 1024).status());
  MixSpec mix;
  mix.mean_op_bytes = mean_op;
  mix.total_ops = ops;
  mix.window_ops = window;
  mix.seed = 7 + mean_op;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
  LOB_CHECK_OK(points.status());
  if (g_print_obs) PrintOpAttribution(spec.label, &sys);
  MixRun run;
  run.points = *points;
  run.final_utilization = points->empty() ? 1.0
                                          : points->back().utilization;
  return run;
}

/// Prints one mix metric (selected by `get`) as a series table: one row per
/// mark, one column per spec.
inline void PrintMixSeries(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<MixPoint>>& series,
    const std::function<double(const MixPoint&)>& get, const char* unit) {
  std::printf("%10s", "ops");
  for (const auto& label : labels) std::printf("  %14s", label.c_str());
  std::printf("   [%s]\n", unit);
  if (series.empty() || series[0].empty()) return;
  for (size_t row = 0; row < series[0].size(); ++row) {
    std::printf("%10u", series[0][row].ops_done);
    for (const auto& s : series) {
      std::printf("  %14.2f", row < s.size() ? get(s[row]) : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace lob::bench

#endif  // LOB_BENCH_BENCH_COMMON_H_
