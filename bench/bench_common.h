// Shared scaffolding for the reproduction benches: engine line-ups,
// experiment runners, parallel fan-out and table printing.
//
// Every bench binary accepts:
//   --quick            shrink object size and op counts (CI smoke run)
//   --object-mb=N      object size (default 10, as in the paper)
//   --ops=N            operations for update-mix experiments (default 20000)
//   --window=N         mark window for update-mix experiments
//                      (default ops/10; validated 1 <= N <= ops)
//   --jobs=N           worker threads for the configuration fan-out
//                      (default hardware_concurrency; 1 reproduces the
//                      serial execution order exactly, 0 runs inline on
//                      the main thread; output bytes are identical for
//                      every value)
//   --bench-json=PATH  write the wall-clock/modeled-ms profile of this
//                      run as JSON (see scripts/bench_wall.sh)
//   --obs              print the per-operation I/O attribution ledger
//                      (engine x op: count, seeks, pages, modeled ms) after
//                      each configuration run, with a conservation check
//   --trace=PATH       (mix benches) record every configuration's span
//                      stream on the modeled clock and write one merged
//                      Chrome trace-event / Perfetto JSON file; per-job
//                      buffers merge in submission order, so the bytes are
//                      identical for every --jobs value. No-op spans when
//                      the build has LOB_TRACING=OFF.
//   --timeline=PATH    (mix benches) write per-configuration storage-state
//                      timelines (utilization, fragmentation histogram,
//                      segment size distribution) as one CSV file
//   --timeline-every=N sample cadence in ops (default: --window)

#ifndef LOB_BENCH_BENCH_COMMON_H_
#define LOB_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.h"
#include "core/metrics_snapshot.h"
#include "core/storage_system.h"
#include "exec/bench_profile.h"
#include "exec/parallel_runner.h"
#include "exec/thread_pool.h"
#include "trace/timeline.h"
#include "trace/trace_session.h"
#include "trace/tracing.h"
#include "workload/workload.h"

namespace lob::bench {

/// One storage structure configuration under test.
struct EngineSpec {
  std::string label;
  std::function<std::unique_ptr<LargeObjectManager>(StorageSystem*)> make;
};

inline std::vector<EngineSpec> EsmSpecs() {
  std::vector<EngineSpec> specs;
  for (uint32_t leaf : {1u, 4u, 16u, 64u}) {
    specs.push_back({"ESM leaf=" + std::to_string(leaf),
                     [leaf](StorageSystem* sys) {
                       return CreateEsmManager(sys, leaf);
                     }});
  }
  return specs;
}

inline std::vector<EngineSpec> EosSpecs() {
  std::vector<EngineSpec> specs;
  for (uint32_t t : {1u, 4u, 16u, 64u}) {
    specs.push_back({"EOS T=" + std::to_string(t),
                     [t](StorageSystem* sys) {
                       return CreateEosManager(sys, t);
                     }});
  }
  return specs;
}

inline EngineSpec StarburstSpec() {
  return {"Starburst",
          [](StorageSystem* sys) { return CreateStarburstManager(sys); }};
}

/// The paper's Figure 5 x-axis (append/scan sizes, kilobytes).
inline std::vector<uint64_t> PaperAppendSizesKb() {
  return {3,  4,  5,  6,  7,  8,   10,  12,  14,  16, 20,
          24, 28, 32, 50, 64, 100, 128, 200, 256, 512};
}

/// Prints the Table 1 banner every bench starts with.
inline void PrintBanner(const char* title, const char* reproduces) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", reproduces);
  std::printf("fixed parameters (paper Table 1): 4K pages, 12-page pool,\n");
  std::printf("  4-page pool segment limit, 33 ms seek, 1 KB/ms transfer\n");
  std::printf("================================================================\n");
}

/// Appends the per-operation I/O attribution ledger of `sys` (fed by the
/// OpScope tags inside the managers) plus the conservation check against
/// the global counters to `out`. Jobs run in parallel, so the ledger goes
/// through the job's output buffer, never straight to stdout.
inline void PrintOpAttribution(const std::string& title, StorageSystem* sys,
                               JobOutput* out) {
  const ObsRegistry* obs = sys->obs();
  out->Printf("-- per-op I/O attribution: %s\n", title.c_str());
  out->Printf("%-24s %10s %10s %10s %14s\n", "op", "count", "seeks", "pages",
              "ms");
  for (const auto& [label, rec] : obs->ops()) {
    out->Printf("%-24s %10llu %10llu %10llu %14.1f\n", label.c_str(),
                static_cast<unsigned long long>(rec.count),
                static_cast<unsigned long long>(rec.io.Seeks()),
                static_cast<unsigned long long>(rec.io.PagesTransferred()),
                rec.io.ms);
  }
  out->Printf("conservation (sum attributed == global): %s\n",
              obs->ConservationHolds(sys->stats()) ? "OK" : "VIOLATED");
}

/// Writes `content` to `path`; empty paths are skipped.
inline void WriteTextFile(const std::string& path,
                          const std::string& content) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

/// Writes the registry's JSON and/or CSV export; empty paths are skipped.
inline void ExportObs(StorageSystem* sys, const std::string& json_path,
                      const std::string& csv_path) {
  WriteTextFile(json_path, sys->obs()->ToJson());
  WriteTextFile(csv_path, sys->obs()->ToCsv());
}

/// Common command line handling.
struct BenchArgs {
  uint64_t object_bytes = 10ull * 1024 * 1024;
  uint32_t ops = 20000;
  uint32_t window = 2000;
  uint32_t jobs = 1;
  bool quick = false;
  bool obs = false;
  std::string bench_json;
  std::string trace;           ///< merged Chrome/Perfetto JSON output path
  std::string timeline;        ///< merged timeline CSV output path
  uint32_t timeline_every = 0; ///< sample cadence in ops (default --window)

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    args.quick = FlagPresent(argc, argv, "quick");
    const uint64_t mb = FlagValue(argc, argv, "object-mb",
                                  args.quick ? 2 : 10);
    args.object_bytes = mb * 1024 * 1024;
    args.ops = static_cast<uint32_t>(
        FlagValue(argc, argv, "ops", args.quick ? 2000 : 20000));
    const uint64_t window = FlagValue(argc, argv, "window",
                                      std::max(1u, args.ops / 10));
    if (window < 1 || window > args.ops) {
      std::fprintf(stderr,
                   "invalid --window=%llu: must satisfy 1 <= window <= "
                   "ops (%u)\n",
                   static_cast<unsigned long long>(window), args.ops);
      std::exit(2);
    }
    args.window = static_cast<uint32_t>(window);
    args.jobs = static_cast<uint32_t>(
        FlagValue(argc, argv, "jobs", ThreadPool::DefaultWorkers()));
    args.obs = FlagPresent(argc, argv, "obs");
    args.bench_json = FlagValueString(argc, argv, "bench-json", "");
    args.trace = FlagValueString(argc, argv, "trace", "");
    args.timeline = FlagValueString(argc, argv, "timeline", "");
    args.timeline_every = static_cast<uint32_t>(
        FlagValue(argc, argv, "timeline-every", args.window));
#if !LOB_TRACING
    if (!args.trace.empty()) {
      std::fprintf(stderr,
                   "warning: --trace: span tracing compiled out "
                   "(LOB_TRACING=OFF); the trace will contain no spans\n");
    }
#endif
    return args;
  }
};

/// The per-bench harness: a thread pool sized by --jobs, the deterministic
/// fan-out runner, and the wall-clock profile exported by --bench-json.
/// One BenchEngine per binary; Map() may be called several times (each
/// grid contributes its cells to the same profile).
class BenchEngine {
 public:
  BenchEngine(std::string name, const BenchArgs& args)
      : pool_(args.jobs),
        runner_(&pool_),
        profile_(std::move(name), args.jobs == 0 ? 1u : args.jobs,
                 std::thread::hardware_concurrency(),
                 BenchProfile::MakeHostNote()),
        json_path_(args.bench_json),
        // LOBLINT(wallclock): bench-profile self-timing measures the
        // simulator's own wall-clock cost; it never reaches modeled output.
        start_(std::chrono::steady_clock::now()) {}

  ThreadPool* pool() { return &pool_; }

  /// Fans one job per cell label out across the pool; returns values,
  /// captured per-job text and timings in submission order and feeds the
  /// wall/modeled milliseconds of every cell into the profile.
  template <typename T>
  Mapped<T> Map(const std::vector<std::string>& cell_labels,
                const std::function<T(size_t, JobOutput*)>& fn) {
    Mapped<T> mapped = runner_.Map<T>(cell_labels.size(), fn);
    for (size_t i = 0; i < cell_labels.size(); ++i) {
      profile_.AddCell(cell_labels[i], mapped.stats[i].wall_ms,
                       mapped.stats[i].modeled_ms);
    }
    return mapped;
  }

  /// Records the total wall clock and writes BENCH_<name>.json when
  /// --bench-json was given. Call once, after all output is printed.
  void Finish() {
    // LOBLINT(wallclock): bench-profile suite timing (BENCH_*.json only).
    const auto end = std::chrono::steady_clock::now();
    profile_.set_suite_wall_ms(
        // LOBLINT(wallclock): wall-ms goes to BENCH_*.json, not bench stdout.
        std::chrono::duration<double, std::milli>(end - start_).count());
    if (!json_path_.empty()) profile_.WriteJson(json_path_);
  }

  const BenchProfile& profile() const { return profile_; }

  /// Index the next Map() call's first cell will get in the profile;
  /// pair with SetCellSnapshot to attach per-cell snapshots afterwards.
  size_t next_cell_index() const { return profile_.cells().size(); }

  /// Attaches a metrics-snapshot JSON block to profile cell `index`.
  void SetCellSnapshot(size_t index, std::string snapshot_json) {
    profile_.SetCellSnapshot(index, std::move(snapshot_json));
  }

 private:
  ThreadPool pool_;
  ParallelRunner runner_;
  BenchProfile profile_;
  std::string json_path_;
  // LOBLINT(wallclock): bench-profile self-timing state.
  std::chrono::steady_clock::time_point start_;
};

/// Result of one update-mix configuration run.
struct MixRun {
  std::vector<MixPoint> points;
  double final_utilization = 0;
  double modeled_ms = 0;  ///< total modeled I/O (build + mix) of the cell
  /// Schema-v2 metrics snapshot of the cell's StorageSystem (percentile
  /// table, pool/allocator/fault state), captured before the system is
  /// torn down. Pure modeled state: byte-identical for any --jobs. The
  /// indentation matches the "cells" nesting of BENCH_*.json.
  std::string snapshot_json;
};

/// Builds an object (100K appends, mirroring a bulk load) and runs the
/// paper's 40/30/30 mix with the given mean operation size. Safe to call
/// from a fan-out job: the StorageSystem is private to this call and all
/// text goes through `out` (pass print_obs=false / out=nullptr when the
/// attribution ledger is not wanted). When `trace` is given it is attached
/// to the cell's SimDisk for the whole run (build phase included); when
/// `timeline` is given the update mix samples storage state into it.
inline MixRun RunMixFor(const EngineSpec& spec, uint64_t object_bytes,
                        uint64_t mean_op, uint32_t ops, uint32_t window,
                        bool print_obs = false, JobOutput* out = nullptr,
                        TraceSession* trace = nullptr,
                        TimelineSampler* timeline = nullptr) {
  StorageSystem sys;
  sys.disk()->set_trace(trace);
  auto mgr = spec.make(&sys);
  auto id = mgr->Create();
  LOB_CHECK_OK(id.status());
  LOB_CHECK_OK(
      BuildObject(&sys, mgr.get(), *id, object_bytes, 100 * 1024).status());
  MixSpec mix;
  mix.mean_op_bytes = mean_op;
  mix.total_ops = ops;
  mix.window_ops = window;
  mix.seed = 7 + mean_op;
  mix.timeline = timeline;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
  LOB_CHECK_OK(points.status());
  sys.disk()->set_trace(nullptr);
  if (print_obs && out != nullptr) PrintOpAttribution(spec.label, &sys, out);
  MixRun run;
  run.points = *points;
  run.final_utilization = points->empty() ? 1.0
                                          : points->back().utilization;
  run.modeled_ms = sys.stats().ms;
  run.snapshot_json = MetricsSnapshot::Collect(&sys).ToJson("    ");
  if (out != nullptr) out->SetModeledMs(run.modeled_ms);
  return run;
}

/// Prints one mix metric (selected by `get`) as a series table: one row per
/// mark, one column per spec.
inline void PrintMixSeries(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<MixPoint>>& series,
    const std::function<double(const MixPoint&)>& get, const char* unit) {
  std::printf("%10s", "ops");
  for (const auto& label : labels) std::printf("  %14s", label.c_str());
  std::printf("   [%s]\n", unit);
  if (series.empty() || series[0].empty()) return;
  for (size_t row = 0; row < series[0].size(); ++row) {
    std::printf("%10u", series[0][row].ops_done);
    for (const auto& s : series) {
      std::printf("  %14.2f", row < s.size() ? get(s[row]) : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace lob::bench

#endif  // LOB_BENCH_BENCH_COMMON_H_
