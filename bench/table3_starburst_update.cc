// Table 3: Starburst insert and delete I/O cost. The cost is dominated by
// copying the long field's segments to new disk locations through the
// 512 K-byte staging buffer, so it is flat in the operation size and the
// same for inserts and deletes.
//
// Paper value: 22.3 s on the 10 M-byte object, for every operation size -
// consistent with copying the whole field (20 x (545 ms read + 545 ms
// write) ~ 21.8 s), which is what kFullCopy models; the 3.5 prototype
// description (copy from the containing segment onward) is kTailCopy.
// Both modes are reported.

#include "bench/bench_common.h"
#include "starburst/starburst_manager.h"

using namespace lob;
using namespace lob::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("table3_starburst_update: Starburst insert/delete I/O cost",
              "Table 3 (Starburst insert and delete I/O cost)");
  const uint32_t ops = static_cast<uint32_t>(
      FlagValue(argc, argv, "update-ops", args.quick ? 10 : 60));
  std::printf("object: %.1f MB, insert+delete pairs per size: %u\n\n",
              static_cast<double>(args.object_bytes) / 1048576.0, ops);

  std::printf("%12s  %12s  %14s  %14s  %12s\n", "copy mode", "mean op",
              "insert [s]", "delete [s]", "paper [s]");
  for (UpdateCopyMode mode :
       {UpdateCopyMode::kTailCopy, UpdateCopyMode::kFullCopy}) {
    for (uint64_t mean : {100ull, 10000ull, 100000ull}) {
      StorageSystem sys;
      StarburstOptions opt;
      opt.copy_mode = mode;
      StarburstManager mgr(&sys, opt);
      auto id = mgr.Create();
      LOB_CHECK_OK(id.status());
      LOB_CHECK_OK(
          BuildObject(&sys, &mgr, *id, args.object_bytes, 100 * 1024)
              .status());
      Rng rng(mean);
      std::string buf;
      double insert_ms = 0, delete_ms = 0;
      for (uint32_t i = 0; i < ops; ++i) {
        const uint64_t n = rng.Uniform(mean / 2, mean * 3 / 2);
        const uint64_t off = rng.Uniform(0, args.object_bytes - 1);
        Rng content(rng.Next());
        FillBytes(&content, n, &buf);
        IoStats before = sys.stats();
        LOB_CHECK_OK(mgr.Insert(*id, off, buf));
        insert_ms += IoStats::Delta(before, sys.stats()).ms;
        // Delete the same number of bytes (paper: delete size = size of
        // the immediately previous insert) to keep the object stable.
        before = sys.stats();
        LOB_CHECK_OK(mgr.Delete(*id, off, n));
        delete_ms += IoStats::Delta(before, sys.stats()).ms;
      }
      std::printf("%12s  %12llu  %14.1f  %14.1f  %12s\n",
                  mode == UpdateCopyMode::kTailCopy ? "tail" : "full",
                  static_cast<unsigned long long>(mean),
                  insert_ms / ops / 1000.0, delete_ms / ops / 1000.0,
                  "22.3");
    }
  }
  std::printf(
      "\npaper anchors: flat across op sizes; equal for inserts and "
      "deletes;\n  ~2.5 minutes on a 100 M-byte object (cost scales with "
      "object size).\n");
  return 0;
}
