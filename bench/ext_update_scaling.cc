// Extension: update cost vs object size (paper 4.4.3). ESM and EOS insert
// costs are independent of the object size; Starburst's cost is
// proportional to it (the whole tail is copied), rising to minutes on a
// 100 M-byte object. The (size x engine) grid runs as one fan-out job per
// cell.

#include "bench/bench_common.h"

using namespace lob;
using namespace lob::bench;

namespace {

double AvgInsertMs(StorageSystem* sys, LargeObjectManager* mgr, ObjectId id,
                   uint64_t object_bytes, uint32_t ops) {
  Rng rng(55);
  // Per-phase buffer: FillBytes overwrites in place once capacity settles.
  std::string buf;
  double total = 0;
  for (uint32_t i = 0; i < ops; ++i) {
    const uint64_t n = rng.Uniform(5000, 15000);
    const uint64_t off = rng.Uniform(0, object_bytes - 1);
    Rng content(rng.Next());
    FillBytes(&content, n, &buf, NoZeroInit{});
    const IoStats before = sys->stats();
    LOB_CHECK_OK(mgr->Insert(id, off, buf));
    total += IoStats::Delta(before, sys->stats()).ms;
    LOB_CHECK_OK(mgr->Delete(id, off, n));
  }
  return total / ops;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_update_scaling: insert cost vs object size",
              "4.4.3 (ESM/EOS flat, Starburst linear in object size)");
  const uint32_t ops = static_cast<uint32_t>(
      FlagValue(argc, argv, "update-ops", args.quick ? 5 : 20));
  std::printf("mean insert: 10 K bytes, %u inserts per point\n\n", ops);

  std::vector<EngineSpec> specs = {EsmSpecs()[1],
                                   {"EOS T=4",
                                    [](StorageSystem* sys) {
                                      return CreateEosManager(sys, 4);
                                    }},
                                   StarburstSpec()};
  std::vector<uint64_t> sizes_mb =
      args.quick ? std::vector<uint64_t>{1, 4}
                 : std::vector<uint64_t>{1, 10, 50, 100};

  std::vector<std::string> cell_labels;
  for (uint64_t mb : sizes_mb) {
    for (const auto& spec : specs) {
      cell_labels.push_back("object_mb=" + std::to_string(mb) + "/" +
                            spec.label);
    }
  }
  BenchEngine engine("ext_update_scaling", args);
  Mapped<double> insert_ms = engine.Map<double>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const uint64_t mb = sizes_mb[i / specs.size()];
        const EngineSpec& spec = specs[i % specs.size()];
        StorageSystem sys;
        auto mgr = spec.make(&sys);
        auto id = mgr->Create();
        LOB_CHECK_OK(id.status());
        const uint64_t bytes = mb * 1024 * 1024;
        LOB_CHECK_OK(
            BuildObject(&sys, mgr.get(), *id, bytes, 100 * 1024).status());
        const double ms = AvgInsertMs(&sys, mgr.get(), *id, bytes, ops);
        out->SetModeledMs(sys.stats().ms);
        return ms;
      });

  std::printf("%10s", "object_mb");
  for (const auto& s : specs) std::printf("  %16s", s.label.c_str());
  std::printf("   [ms per insert]\n");
  size_t idx = 0;
  for (uint64_t mb : sizes_mb) {
    std::printf("%10llu", static_cast<unsigned long long>(mb));
    for (size_t k = 0; k < specs.size(); ++k, ++idx) {
      std::printf("  %16.1f", insert_ms.values[idx]);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper anchors: ESM/EOS columns flat; Starburst grows ~linearly "
      "(22.3 s\n  at 10 MB, ~2.5 min at 100 MB).\n");
  engine.Finish();
  return 0;
}
