// Extension: shadowing cost ablation (paper 3.3). With whole-segment
// shadowing, updating one page of a large segment costs far more than
// updating a page of a small segment, because the entire segment's useful
// bytes are copied to a fresh location; without shadowing the two updates
// cost the same. The paper quotes ~6-7x between a 2-block and a 64-block
// segment. The (leaf size x shadowing mode) grid runs as one fan-out job
// per cell.

#include "bench/bench_common.h"
#include "esm/esm_manager.h"

using namespace lob;
using namespace lob::bench;

namespace {

// Average cost of a 100-byte in-leaf replace on an ESM object with the
// given leaf size, with or without shadowing.
double ReplaceCost(uint32_t leaf_pages, bool shadowing, JobOutput* out) {
  StorageConfig cfg;
  cfg.shadowing = shadowing;
  StorageSystem sys(cfg);
  EsmOptions opt;
  opt.leaf_pages = leaf_pages;
  EsmManager mgr(&sys, opt);
  auto id = mgr.Create();
  LOB_CHECK_OK(id.status());
  // 2 MB keeps every configuration at tree height 1 (root only), so the
  // measurement isolates the segment copy itself.
  const uint64_t object = 2ull * 1024 * 1024;
  LOB_CHECK_OK(BuildObject(&sys, &mgr, *id, object, 128 * 1024).status());
  Rng rng(leaf_pages);
  std::string patch(100, 'x');
  double total = 0;
  const int ops = 50;
  for (int i = 0; i < ops; ++i) {
    const uint64_t off = rng.Uniform(0, object - patch.size());
    const IoStats before = sys.stats();
    LOB_CHECK_OK(mgr.Replace(*id, off, patch));
    total += IoStats::Delta(before, sys.stats()).ms;
  }
  out->SetModeledMs(sys.stats().ms);
  return total / ops;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintBanner("ext_shadowing_ablation: whole-segment shadowing cost",
              "3.3 (shadow granularity is the segment; 2-block vs 64-block "
              "update ~6-7x)");

  const std::vector<uint32_t> leaves = {2, 4, 16, 64};
  std::vector<std::string> cell_labels;
  for (uint32_t leaf : leaves) {
    for (bool shadowing : {true, false}) {
      cell_labels.push_back("leaf=" + std::to_string(leaf) + "/shadowing=" +
                            (shadowing ? "on" : "off"));
    }
  }
  BenchEngine engine("ext_shadowing_ablation", args);
  Mapped<double> ms = engine.Map<double>(
      cell_labels, [&](size_t i, JobOutput* out) {
        const uint32_t leaf = leaves[i / 2];
        const bool shadowing = (i % 2) == 0;
        return ReplaceCost(leaf, shadowing, out);
      });

  std::printf("\n%12s  %18s  %18s  %18s\n", "leaf pages",
              "shadowing on [ms]", "shadowing off [ms]", "pure copy [ms]");
  for (size_t k = 0; k < leaves.size(); ++k) {
    const uint32_t leaf = leaves[k];
    const double on = ms.values[2 * k];
    const double off = ms.values[2 * k + 1];
    // Reading and rewriting the whole segment: 2 x (seek + n x transfer).
    const double copy = 2 * (33.0 + 4.0 * leaf);
    std::printf("%12u  %18.1f  %18.1f  %18.1f\n", leaf, on, off, copy);
  }
  std::printf(
      "\npure copy ratio 64- vs 2-block: %.1fx (paper: ~6-7x). Measured\n"
      "values add pool-churn overhead (root/directory evictions) on top of\n"
      "the copy; without shadowing every update is one page write.\n",
      (2 * (33.0 + 4.0 * 64)) / (2 * (33.0 + 4.0 * 2)));
  engine.Finish();
  return 0;
}
