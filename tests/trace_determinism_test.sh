#!/usr/bin/env bash
# Determinism gate for the modeled-clock trace exporters: the span trace
# and the timeline CSV are deterministic functions of the workload, so
# the exported bytes must be identical for any worker count (the harness
# keeps one TraceSession/TimelineSampler per cell and merges them in
# submission order). Also validates the exported JSON against the
# checked-in schema (tests/trace_schema.json) when python3 is available.
# Usage: trace_determinism_test.sh <fig9_binary> <schema_path>
set -euo pipefail

FIG9="$1"
SCHEMA="$2"

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# 1. --trace bytes must be identical for --jobs 0 (inline), 1 and 4.
for j in 0 1 4; do
  "$FIG9" --quick --csv --jobs="$j" --trace="$tmpdir/trace_j$j.json" \
    --timeline="$tmpdir/timeline_j$j.csv" > "$tmpdir/stdout_j$j.csv"
done
for j in 0 4; do
  cmp "$tmpdir/trace_j1.json" "$tmpdir/trace_j$j.json" \
    || fail "--trace bytes differ between --jobs=1 and --jobs=$j"
  cmp "$tmpdir/timeline_j1.csv" "$tmpdir/timeline_j$j.csv" \
    || fail "--timeline bytes differ between --jobs=1 and --jobs=$j"
  cmp "$tmpdir/stdout_j1.csv" "$tmpdir/stdout_j$j.csv" \
    || fail "stdout differs between --jobs=1 and --jobs=$j with exporters on"
done

# 2. Exporting a trace must not perturb the measured results: stdout with
#    the exporters attached equals stdout without them.
"$FIG9" --quick --csv --jobs=4 > "$tmpdir/stdout_plain.csv"
cmp "$tmpdir/stdout_plain.csv" "$tmpdir/stdout_j4.csv" \
  || fail "--trace/--timeline changed the bench results"

# 3. The timeline CSV has the shared header and one config column per
#    (mean_op x engine) cell.
head -1 "$tmpdir/timeline_j1.csv" | grep -q '^config,ops,modeled_ms' \
  || fail "timeline CSV header missing"
[ "$(wc -l < "$tmpdir/timeline_j1.csv")" -gt 1 ] \
  || fail "timeline CSV has no sample rows"

# 4. The trace is valid JSON and matches the checked-in schema shape.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$tmpdir/trace_j1.json" "$SCHEMA" <<'EOF' \
    || fail "trace JSON does not match tests/trace_schema.json"
import json, sys

trace = json.load(open(sys.argv[1]))
schema = json.load(open(sys.argv[2]))  # keeps the schema itself valid JSON

assert trace["displayTimeUnit"] == "ms", "displayTimeUnit"
events = trace["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
cats = set()
pids = set()
for e in events:
    pids.add(e["pid"])
    if e["ph"] == "M":
        assert e["name"] == "process_name", e
        assert isinstance(e["args"]["name"], str) and e["args"]["name"], e
    elif e["ph"] == "X":
        assert e["cat"] in ("op", "phase", "io"), e
        assert e["ts"] >= 0 and e["dur"] >= 0, e
        assert isinstance(e["name"], str) and e["name"], e
        cats.add(e["cat"])
        if e["cat"] == "io":
            assert e["args"]["rw"] in ("read", "write"), e
            assert e["args"]["pages"] >= 0, e
    else:
        raise AssertionError(f"unexpected ph {e['ph']}")
# A mix-figure run exercises ops, sub-phases and raw I/O in every cell.
assert cats == {"op", "phase", "io"}, cats
assert len(pids) > 1, "expected one pid per merged cell"
EOF
else
  echo "note: python3 unavailable, skipping JSON schema validation" >&2
fi

echo "PASS: trace/timeline exports are byte-deterministic and well-formed"
