#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "buffer/op_context.h"
#include "common/rng.h"
#include "lobtree/positional_tree.h"

namespace lob {
namespace {

// Harness with tiny fan-out so splits/merges are exercised cheaply.
class TreeTest : public ::testing::Test {
 protected:
  explicit TreeTest(uint32_t root_cap = 8, uint32_t internal_cap = 8) {
    cfg_.buddy_space_order = 10;
    disk_ = std::make_unique<SimDisk>(cfg_);
    pool_ = std::make_unique<BufferPool>(disk_.get(), cfg_);
    meta_id_ = disk_->CreateArea();
    meta_ = std::make_unique<DatabaseArea>(pool_.get(), meta_id_, cfg_);
    TreeConfig tc;
    tc.pool = pool_.get();
    tc.meta_area = meta_.get();
    tc.limits.root_capacity = root_cap;
    tc.limits.internal_capacity = internal_cap;
    tc.shadowing = true;
    tree_ = std::make_unique<PositionalTree>(tc);
    ctx_ = std::make_unique<OpContext>(pool_.get());
    auto root = tree_->CreateObject(0);
    LOB_CHECK_OK(root.status());
    root_ = *root;
  }

  // A unique fake leaf page id (the tree never dereferences leaf pages).
  PageId NextLeafPage() { return next_leaf_page_++; }

  // Mirror of the expected leaf sequence.
  struct Ref {
    uint32_t bytes;
    PageId page;
  };

  void CheckAgainst(const std::vector<Ref>& ref) {
    std::vector<Ref> got;
    LOB_CHECK_OK(tree_->VisitLeaves(root_, [&](const auto& leaf) {
      got.push_back({leaf.bytes, leaf.page});
      return Status::OK();
    }));
    ASSERT_EQ(got.size(), ref.size());
    uint64_t total = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].bytes, ref[i].bytes) << "leaf " << i;
      EXPECT_EQ(got[i].page, ref[i].page) << "leaf " << i;
      total += ref[i].bytes;
    }
    auto size = tree_->Size(root_);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, total);
    auto stats = tree_->Validate(root_);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->leaves, ref.size());
    EXPECT_EQ(stats->bytes, total);
  }

  uint64_t RefOffset(const std::vector<Ref>& ref, size_t leaf_index) {
    uint64_t off = 0;
    for (size_t i = 0; i < leaf_index; ++i) off += ref[i].bytes;
    return off;
  }

  Status Insert(uint64_t at, uint32_t bytes, PageId page) {
    Status s = tree_->InsertLeaf(root_, at, {bytes, page}, ctx_.get());
    LOB_CHECK_OK(ctx_->Finish());
    return s;
  }

  StatusOr<LeafEntry> Remove(uint64_t at) {
    auto r = tree_->RemoveLeaf(root_, at, ctx_.get());
    LOB_CHECK_OK(ctx_->Finish());
    return r;
  }

  StorageConfig cfg_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<BufferPool> pool_;
  AreaId meta_id_ = 0;
  std::unique_ptr<DatabaseArea> meta_;
  std::unique_ptr<PositionalTree> tree_;
  std::unique_ptr<OpContext> ctx_;
  PageId root_ = kInvalidPage;
  PageId next_leaf_page_ = 100000;
};

TEST_F(TreeTest, EmptyObject) {
  auto size = tree_->Size(root_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
  EXPECT_EQ(tree_->FindLeaf(root_, 0).status().code(),
            StatusCode::kOutOfRange);
  auto stats = tree_->Validate(root_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 1);
  EXPECT_EQ(stats->index_pages, 1u);
}

TEST_F(TreeTest, EngineTagPersists) {
  auto r2 = tree_->CreateObject(7);
  ASSERT_TRUE(r2.ok());
  auto e = tree_->GetEngine(*r2);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 7);
}

TEST_F(TreeTest, AppendLeavesSequentially) {
  std::vector<Ref> ref;
  uint64_t at = 0;
  for (int i = 0; i < 30; ++i) {
    const uint32_t bytes = 100 + static_cast<uint32_t>(i);
    const PageId page = NextLeafPage();
    ASSERT_TRUE(Insert(at, bytes, page).ok()) << "leaf " << i;
    ref.push_back({bytes, page});
    at += bytes;
  }
  CheckAgainst(ref);
  auto stats = tree_->Validate(root_);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->height, 1) << "30 leaves with fan-out 8 must split";
}

TEST_F(TreeTest, FindLeafReturnsContainingLeaf) {
  ASSERT_TRUE(Insert(0, 100, 11).ok());
  ASSERT_TRUE(Insert(100, 200, 22).ok());
  ASSERT_TRUE(Insert(300, 50, 33).ok());
  auto leaf = tree_->FindLeaf(root_, 0);
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->page, 11u);
  leaf = tree_->FindLeaf(root_, 99);
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->page, 11u);
  leaf = tree_->FindLeaf(root_, 100);
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->page, 22u);
  EXPECT_EQ(leaf->start, 100u);
  EXPECT_EQ(leaf->bytes, 200u);
  leaf = tree_->FindLeaf(root_, 349);
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->page, 33u);
  EXPECT_EQ(tree_->FindLeaf(root_, 350).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(TreeTest, MidInsertShiftsFollowingLeaves) {
  ASSERT_TRUE(Insert(0, 100, 11).ok());
  ASSERT_TRUE(Insert(100, 100, 22).ok());
  // Insert between the two leaves.
  ASSERT_TRUE(Insert(100, 40, 99).ok());
  CheckAgainst({{100, 11}, {40, 99}, {100, 22}});
  auto leaf = tree_->FindLeaf(root_, 180);
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->page, 22u);
  EXPECT_EQ(leaf->start, 140u);
}

TEST_F(TreeTest, InsertOffLeafBoundaryIsRejected) {
  ASSERT_TRUE(Insert(0, 100, 11).ok());
  EXPECT_FALSE(Insert(50, 10, 22).ok());
  EXPECT_EQ(Insert(200, 10, 22).code(), StatusCode::kOutOfRange);
}

TEST_F(TreeTest, RemoveLeafReturnsEntry) {
  ASSERT_TRUE(Insert(0, 100, 11).ok());
  ASSERT_TRUE(Insert(100, 200, 22).ok());
  ASSERT_TRUE(Insert(300, 50, 33).ok());
  auto removed = Remove(100);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->bytes, 200u);
  EXPECT_EQ(removed->page, 22u);
  CheckAgainst({{100, 11}, {50, 33}});
}

TEST_F(TreeTest, RemoveAllLeavesEmptiesObject) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(Insert(RefOffset({}, 0) + static_cast<uint64_t>(i) * 10, 10,
                       NextLeafPage())
                    .ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(Remove(0).ok());
  }
  auto size = tree_->Size(root_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
  auto stats = tree_->Validate(root_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 1);
  EXPECT_EQ(stats->index_pages, 1u) << "tree must collapse back to the root";
}

TEST_F(TreeTest, UpdateLeafAdjustsBytesAndPage) {
  ASSERT_TRUE(Insert(0, 100, 11).ok());
  ASSERT_TRUE(Insert(100, 200, 22).ok());
  ASSERT_TRUE(tree_->UpdateLeaf(root_, 150, +55, 44, ctx_.get()).ok());
  ASSERT_TRUE(ctx_->Finish().ok());
  CheckAgainst({{100, 11}, {255, 44}});
}

TEST_F(TreeTest, UpdateLeafNegativeDelta) {
  ASSERT_TRUE(Insert(0, 100, 11).ok());
  ASSERT_TRUE(tree_->UpdateLeaf(root_, 0, -40, kInvalidPage, ctx_.get()).ok());
  ASSERT_TRUE(ctx_->Finish().ok());
  CheckAgainst({{60, 11}});
}

TEST_F(TreeTest, DeepTreeGrowsAndShrinks) {
  std::vector<Ref> ref;
  uint64_t at = 0;
  for (int i = 0; i < 300; ++i) {
    const PageId p = NextLeafPage();
    ASSERT_TRUE(Insert(at, 10, p).ok());
    ref.push_back({10, p});
    at += 10;
  }
  auto stats = tree_->Validate(root_);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->height, 3) << "300 leaves, fan-out 8";
  CheckAgainst(ref);
  // Remove from the front until only 3 leaves remain.
  while (ref.size() > 3) {
    ASSERT_TRUE(Remove(0).ok());
    ref.erase(ref.begin());
  }
  CheckAgainst(ref);
  stats = tree_->Validate(root_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 1) << "tree must collapse as leaves disappear";
}

TEST_F(TreeTest, ShadowingRelocatesInternalNodesOncePerOp) {
  // Build a height-2 tree, then watch one operation shadow the touched
  // internal node: its page id must change across the operation.
  uint64_t at = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(Insert(at, 10, NextLeafPage()).ok());
    at += 10;
  }
  auto before = tree_->Validate(root_);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->height, 1);

  // Capture current index page count; an update-in-the-middle shadows the
  // path (allocating and freeing one page per internal node touched), so
  // the total page count is unchanged but pages move.
  const uint64_t allocated_before = meta_->allocated_pages();
  ASSERT_TRUE(tree_->UpdateLeaf(root_, 5, +1, kInvalidPage, ctx_.get()).ok());
  ASSERT_TRUE(ctx_->Finish().ok());
  EXPECT_EQ(meta_->allocated_pages(), allocated_before);
  auto after = tree_->Validate(root_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->index_pages, before->index_pages);
}

TEST_F(TreeTest, ShadowedPagesFlushedAtEndOfOp) {
  uint64_t at = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(Insert(at, 10, NextLeafPage()).ok());
    at += 10;
  }
  disk_->ResetStats();
  ASSERT_TRUE(tree_->UpdateLeaf(root_, 5, +1, kInvalidPage, ctx_.get()).ok());
  ASSERT_TRUE(ctx_->Finish().ok());
  // At least one write call: the shadow copy of the internal node on the
  // path (the root itself is not flushed per operation).
  EXPECT_GE(disk_->stats().write_calls, 1u);
}

TEST_F(TreeTest, DestroyObjectFreesAllIndexPages) {
  uint64_t at = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Insert(at, 10, NextLeafPage()).ok());
    at += 10;
  }
  ASSERT_GT(meta_->allocated_pages(), 1u);
  ASSERT_TRUE(tree_->DestroyObject(root_).ok());
  EXPECT_EQ(meta_->allocated_pages(), 0u);
}

TEST_F(TreeTest, AuxWordRoundTrips) {
  ASSERT_TRUE(tree_->SetAux(root_, 12345).ok());
  auto v = tree_->GetAux(root_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 12345u);
}

// Property test: random leaf insert/remove/update against a vector model.
TEST_F(TreeTest, RandomOpsMatchReferenceModel) {
  std::vector<Ref> ref;
  Rng rng(2024);
  for (int step = 0; step < 3000; ++step) {
    const double p = rng.NextDouble();
    if (ref.empty() || p < 0.45) {
      const size_t pos = rng.Uniform(0, ref.size());
      const uint32_t bytes = static_cast<uint32_t>(rng.Uniform(1, 5000));
      const PageId page = NextLeafPage();
      ASSERT_TRUE(Insert(RefOffset(ref, pos), bytes, page).ok())
          << "step " << step;
      ref.insert(ref.begin() + static_cast<long>(pos), {bytes, page});
    } else if (p < 0.8) {
      const size_t pos = rng.Uniform(0, ref.size() - 1);
      auto removed = Remove(RefOffset(ref, pos));
      ASSERT_TRUE(removed.ok()) << "step " << step;
      ASSERT_EQ(removed->bytes, ref[pos].bytes);
      ASSERT_EQ(removed->page, ref[pos].page);
      ref.erase(ref.begin() + static_cast<long>(pos));
    } else {
      const size_t pos = rng.Uniform(0, ref.size() - 1);
      const int64_t delta =
          static_cast<int64_t>(rng.Uniform(0, 200)) -
          std::min<int64_t>(100, ref[pos].bytes - 1);
      ASSERT_TRUE(tree_
                      ->UpdateLeaf(root_, RefOffset(ref, pos), delta,
                                   kInvalidPage, ctx_.get())
                      .ok())
          << "step " << step;
      ASSERT_TRUE(ctx_->Finish().ok());
      ref[pos].bytes = static_cast<uint32_t>(
          static_cast<int64_t>(ref[pos].bytes) + delta);
    }
    if (step % 250 == 0) CheckAgainst(ref);
  }
  CheckAgainst(ref);
}

// Same property test at paper-scale fan-out (507/511) to catch capacity
// arithmetic bugs at realistic sizes.
class BigFanoutTreeTest : public TreeTest {
 protected:
  BigFanoutTreeTest() : TreeTest(507, 511) {}
};

TEST_F(BigFanoutTreeTest, ThousandsOfLeaves) {
  std::vector<Ref> ref;
  uint64_t at = 0;
  // 2560 leaves of 4096 bytes = the paper's 10M-byte object with 1-page
  // ESM leaves; the tree must come out height 2 with about 9-10 internal
  // nodes (paper 4.2).
  for (int i = 0; i < 2560; ++i) {
    const PageId p = NextLeafPage();
    ASSERT_TRUE(Insert(at, 4096, p).ok());
    ref.push_back({4096, p});
    at += 4096;
  }
  auto stats = tree_->Validate(root_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 2);
  EXPECT_GE(stats->index_pages, 1u + 6u);
  EXPECT_LE(stats->index_pages, 1u + 12u);
  EXPECT_EQ(stats->bytes, 2560u * 4096u);
  auto size = tree_->Size(root_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 10u * 1024 * 1024);
}

TEST_F(BigFanoutTreeTest, MassRemovalAtRealFanout) {
  // Exercise borrow/merge/collapse at the paper's 507/511-pair capacities:
  // grow past one node, then remove until nearly empty, validating the
  // half-full invariant along the way.
  std::vector<Ref> ref;
  uint64_t at = 0;
  Rng rng(515151);
  for (int i = 0; i < 1500; ++i) {
    const uint32_t bytes = static_cast<uint32_t>(rng.Uniform(1, 8192));
    const PageId p = NextLeafPage();
    ASSERT_TRUE(Insert(at, bytes, p).ok());
    ref.push_back({bytes, p});
    at += bytes;
  }
  {
    auto stats = tree_->Validate(root_);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->height, 2);
  }
  while (ref.size() > 3) {
    const size_t pos = rng.Uniform(0, ref.size() - 1);
    auto removed = Remove(RefOffset(ref, pos));
    ASSERT_TRUE(removed.ok()) << "at " << ref.size() << " leaves";
    ASSERT_EQ(removed->bytes, ref[pos].bytes);
    ref.erase(ref.begin() + static_cast<long>(pos));
    if (ref.size() % 100 == 0) {
      auto stats = tree_->Validate(root_);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString() << " at "
                              << ref.size() << " leaves";
    }
  }
  CheckAgainst(ref);
  auto stats = tree_->Validate(root_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->height, 1) << "tree must collapse back";
}

TEST_F(BigFanoutTreeTest, AlternatingChurnAtRealFanout) {
  // Insert/remove churn around the capacity boundary where root growth
  // and collapse alternate.
  std::vector<Ref> ref;
  Rng rng(626262);
  for (int round = 0; round < 6; ++round) {
    while (ref.size() < 600) {
      const size_t pos = rng.Uniform(0, ref.size());
      const uint32_t bytes = static_cast<uint32_t>(rng.Uniform(1, 4096));
      const PageId p = NextLeafPage();
      ASSERT_TRUE(Insert(RefOffset(ref, pos), bytes, p).ok());
      ref.insert(ref.begin() + static_cast<long>(pos), {bytes, p});
    }
    while (ref.size() > 450) {
      const size_t pos = rng.Uniform(0, ref.size() - 1);
      ASSERT_TRUE(Remove(RefOffset(ref, pos)).ok());
      ref.erase(ref.begin() + static_cast<long>(pos));
    }
    auto stats = tree_->Validate(root_);
    ASSERT_TRUE(stats.ok()) << "round " << round;
  }
  CheckAgainst(ref);
}

}  // namespace
}  // namespace lob
