// Failure injection: every layer must surface simulated disk errors as
// Status values - never crash, hang, or return success with wrong bytes.
// (Without a write-ahead log, consistency after a *partial* failed update
// is not promised - the paper's systems relied on shadowing plus a
// transaction layer for that - but error propagation must be airtight.)

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

class FailureInjectionTest : public ::testing::TestWithParam<int> {
 protected:
  FailureInjectionTest() {
    switch (GetParam()) {
      case 0:
        mgr_ = CreateEsmManager(&sys_, 4);
        break;
      case 1:
        mgr_ = CreateStarburstManager(&sys_);
        break;
      default:
        mgr_ = CreateEosManager(&sys_, 4);
        break;
    }
    auto id = mgr_->Create();
    LOB_CHECK_OK(id.status());
    id_ = *id;
    LOB_CHECK_OK(mgr_->Append(id_, Pattern(1, 300000)));
    LOB_CHECK_OK(sys_.FlushAll());
  }

  StorageSystem sys_;
  std::unique_ptr<LargeObjectManager> mgr_;
  ObjectId id_ = 0;
};

TEST_P(FailureInjectionTest, ReadFailurePropagates) {
  sys_.disk()->InjectFailureAfter(0);
  std::string out;
  Status s = mgr_->Read(id_, 100000, 50000, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Clearing the fault restores full function.
  sys_.disk()->InjectFailureAfter(-1);
  ASSERT_TRUE(mgr_->Read(id_, 100000, 50000, &out).ok());
  EXPECT_EQ(out, Pattern(1, 300000).substr(100000, 50000));
}

TEST_P(FailureInjectionTest, EveryOperationSurfacesMidOpFailures) {
  // Trip the fault at several depths into each operation; all must return
  // a Status (no crash) and the system must keep working once cleared.
  for (int64_t depth : {0, 1, 2, 5}) {
    for (int op = 0; op < 4; ++op) {
      sys_.disk()->InjectFailureAfter(depth);
      std::string buf = Pattern(7, 20000);
      Status s;
      switch (op) {
        case 0:
          s = mgr_->Append(id_, buf);
          break;
        case 1:
          s = mgr_->Insert(id_, 1234, buf);
          break;
        case 2:
          s = mgr_->Delete(id_, 1234, 1000);
          break;
        default: {
          std::string out;
          s = mgr_->Read(id_, 0, 50000, &out);
          break;
        }
      }
      sys_.disk()->InjectFailureAfter(-1);
      // Depending on caching the operation may complete without I/O; what
      // is forbidden is a crash or a hung state. If it failed, the error
      // must be the injected one.
      if (!s.ok()) {
        EXPECT_EQ(s.code(), StatusCode::kInternal)
            << "op " << op << " depth " << depth << ": " << s.ToString();
      }
    }
  }
  // After all the chaos the object is still readable end to end.
  sys_.disk()->InjectFailureAfter(-1);
  auto size = mgr_->Size(id_);
  ASSERT_TRUE(size.ok());
  std::string out;
  EXPECT_TRUE(mgr_->Read(id_, 0, *size, &out).ok());
}

TEST_P(FailureInjectionTest, FailedAppendDoesNotLoseExistingBytes) {
  // Appends only touch the object's tail; a failed append must leave the
  // prefix intact.
  const std::string before = Pattern(1, 300000);
  sys_.disk()->InjectFailureAfter(1);
  (void)mgr_->Append(id_, Pattern(9, 100000));
  sys_.disk()->InjectFailureAfter(-1);
  std::string out;
  ASSERT_TRUE(mgr_->Read(id_, 0, before.size(), &out).ok());
  EXPECT_EQ(out, before);
}

std::string EngineName4(const ::testing::TestParamInfo<int>& param_info) {
  return param_info.param == 0   ? "Esm"
         : param_info.param == 1 ? "Starburst"
                                 : "Eos";
}

INSTANTIATE_TEST_SUITE_P(Engines, FailureInjectionTest,
                         ::testing::Values(0, 1, 2), EngineName4);

}  // namespace
}  // namespace lob
