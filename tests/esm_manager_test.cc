#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/storage_system.h"
#include "esm/esm_manager.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

class EsmTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  EsmTest() {
    cfg_.buddy_space_order = 12;
    sys_ = std::make_unique<StorageSystem>(cfg_);
    EsmOptions opt;
    opt.leaf_pages = GetParam();
    opt.limits.root_capacity = 16;  // small fan-out: deep trees in tests
    opt.limits.internal_capacity = 16;
    mgr_ = std::make_unique<EsmManager>(sys_.get(), opt);
    auto id = mgr_->Create();
    LOB_CHECK_OK(id.status());
    id_ = *id;
  }

  void ExpectContent(const std::string& oracle) {
    auto size = mgr_->Size(id_);
    ASSERT_TRUE(size.ok());
    ASSERT_EQ(*size, oracle.size());
    std::string got;
    ASSERT_TRUE(mgr_->Read(id_, 0, oracle.size(), &got).ok());
    ASSERT_EQ(got, oracle);
    ASSERT_TRUE(mgr_->Validate(id_).ok());
  }

  StorageConfig cfg_;
  std::unique_ptr<StorageSystem> sys_;
  std::unique_ptr<EsmManager> mgr_;
  ObjectId id_ = 0;
};

TEST_P(EsmTest, EmptyObject) {
  auto size = mgr_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
  std::string out;
  EXPECT_TRUE(mgr_->Read(id_, 0, 0, &out).ok());
  EXPECT_FALSE(mgr_->Read(id_, 0, 1, &out).ok());
}

TEST_P(EsmTest, AppendAndReadBack) {
  std::string oracle;
  for (int i = 0; i < 20; ++i) {
    std::string chunk = Pattern(static_cast<uint64_t>(i), 3000);
    ASSERT_TRUE(mgr_->Append(id_, chunk).ok());
    oracle += chunk;
  }
  ExpectContent(oracle);
}

TEST_P(EsmTest, AppendLargerThanLeaf) {
  const std::string chunk = Pattern(1, 5 * GetParam() * 4096 + 123);
  ASSERT_TRUE(mgr_->Append(id_, chunk).ok());
  ExpectContent(chunk);
}

TEST_P(EsmTest, RandomRangeReads) {
  std::string oracle = Pattern(2, 200000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const uint64_t off = rng.Uniform(0, oracle.size() - 1);
    const uint64_t n = rng.Uniform(1, oracle.size() - off);
    std::string got;
    ASSERT_TRUE(mgr_->Read(id_, off, n, &got).ok());
    ASSERT_EQ(got, oracle.substr(off, n));
  }
}

TEST_P(EsmTest, InsertMiddle) {
  std::string oracle = Pattern(4, 50000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  const std::string ins = Pattern(5, 7777);
  ASSERT_TRUE(mgr_->Insert(id_, 25000, ins).ok());
  oracle.insert(25000, ins);
  ExpectContent(oracle);
}

TEST_P(EsmTest, InsertFront) {
  std::string oracle = Pattern(6, 20000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  const std::string ins = Pattern(7, 100);
  ASSERT_TRUE(mgr_->Insert(id_, 0, ins).ok());
  oracle.insert(0, ins);
  ExpectContent(oracle);
}

TEST_P(EsmTest, InsertAtEndIsAppend) {
  std::string oracle = Pattern(8, 10000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  const std::string ins = Pattern(9, 500);
  ASSERT_TRUE(mgr_->Insert(id_, oracle.size(), ins).ok());
  oracle += ins;
  ExpectContent(oracle);
}

TEST_P(EsmTest, DeleteMiddleRange) {
  std::string oracle = Pattern(10, 80000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  ASSERT_TRUE(mgr_->Delete(id_, 10000, 30000).ok());
  oracle.erase(10000, 30000);
  ExpectContent(oracle);
}

TEST_P(EsmTest, DeleteEverything) {
  std::string oracle = Pattern(11, 60000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  ASSERT_TRUE(mgr_->Delete(id_, 0, oracle.size()).ok());
  ExpectContent("");
  // And the object is reusable afterwards.
  ASSERT_TRUE(mgr_->Append(id_, "hello").ok());
  ExpectContent("hello");
}

TEST_P(EsmTest, ReplaceRange) {
  std::string oracle = Pattern(12, 50000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  const std::string rep = Pattern(13, 9000);
  ASSERT_TRUE(mgr_->Replace(id_, 12345, rep).ok());
  oracle.replace(12345, rep.size(), rep);
  ExpectContent(oracle);
}

TEST_P(EsmTest, RejectsOutOfRange) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(14, 1000)).ok());
  std::string out;
  EXPECT_EQ(mgr_->Read(id_, 500, 600, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr_->Insert(id_, 1001, "x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr_->Delete(id_, 900, 200).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr_->Replace(id_, 999, "xx").code(), StatusCode::kOutOfRange);
}

TEST_P(EsmTest, DestroyFreesEverything) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(15, 300000)).ok());
  ASSERT_GT(sys_->leaf_area()->allocated_pages(), 0u);
  ASSERT_TRUE(mgr_->Destroy(id_).ok());
  EXPECT_EQ(sys_->leaf_area()->allocated_pages(), 0u);
  EXPECT_EQ(sys_->meta_area()->allocated_pages(), 0u);
}

TEST_P(EsmTest, StorageStatsReflectFixedLeaves) {
  // 10 leaves' worth of data: all leaves full except the last two.
  const std::string data = Pattern(16, 10 * GetParam() * 4096 + 500);
  ASSERT_TRUE(mgr_->Append(id_, data).ok());
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_bytes, data.size());
  EXPECT_EQ(stats->leaf_pages, uint64_t{stats->segments} * GetParam());
  EXPECT_GE(stats->index_pages, 1u);
  // Fresh append-built object: high utilization.
  EXPECT_GT(stats->Utilization(4096), 0.7);
}

TEST_P(EsmTest, ExactFitAppendLeavesPriorLeavesAlone) {
  // Appends of exactly the leaf capacity: each append writes one new full
  // leaf; previously written leaves are never rewritten (paper 4.2: best
  // build performance when append size matches the leaf size).
  const uint64_t cap = uint64_t{GetParam()} * 4096;
  ASSERT_TRUE(mgr_->Append(id_, Pattern(17, cap)).ok());
  sys_->ResetStats();
  ASSERT_TRUE(mgr_->Append(id_, Pattern(18, cap)).ok());
  // No leaf reads required: nothing is redistributed.
  auto stats = sys_->stats();
  EXPECT_EQ(stats.pages_read, 0u) << "exact-fit append must not read leaves";
  // Exactly one data-leaf write call (plus index page writes).
  EXPECT_GE(stats.write_calls, 1u);
  ExpectContent(Pattern(17, cap) + Pattern(18, cap));
}

TEST_P(EsmTest, MismatchedAppendRedistributes) {
  // Appends of 3/4 capacity force redistribution involving the rightmost
  // leaf and its left neighbor.
  const uint64_t chunk = uint64_t{GetParam()} * 4096 * 3 / 4;
  std::string oracle;
  for (int i = 0; i < 8; ++i) {
    std::string c = Pattern(static_cast<uint64_t>(20 + i), chunk);
    ASSERT_TRUE(mgr_->Append(id_, c).ok());
    oracle += c;
  }
  ExpectContent(oracle);
  // All leaves except the last two must be full.
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->segments, 3u);
}

// Property test: random op mix against a std::string oracle.
TEST_P(EsmTest, RandomOpsMatchOracle) {
  std::string oracle;
  Rng rng(31337 + GetParam());
  for (int step = 0; step < 300; ++step) {
    const double p = rng.NextDouble();
    if (oracle.empty() || p < 0.35) {
      std::string data =
          Pattern(rng.Next(), rng.Uniform(1, 3 * GetParam() * 4096));
      if (oracle.empty() || rng.Bernoulli(0.5)) {
        ASSERT_TRUE(mgr_->Append(id_, data).ok()) << "step " << step;
        oracle += data;
      } else {
        const uint64_t off = rng.Uniform(0, oracle.size());
        ASSERT_TRUE(mgr_->Insert(id_, off, data).ok()) << "step " << step;
        oracle.insert(off, data);
      }
    } else if (p < 0.6) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n =
          rng.Uniform(1, std::min<uint64_t>(oracle.size() - off,
                                            2 * GetParam() * 4096));
      ASSERT_TRUE(mgr_->Delete(id_, off, n).ok()) << "step " << step;
      oracle.erase(off, n);
    } else if (p < 0.8) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      std::string got;
      ASSERT_TRUE(mgr_->Read(id_, off, n, &got).ok()) << "step " << step;
      ASSERT_EQ(got, oracle.substr(off, n)) << "step " << step;
    } else {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      std::string data = Pattern(rng.Next(), n);
      ASSERT_TRUE(mgr_->Replace(id_, off, data).ok()) << "step " << step;
      oracle.replace(off, n, data);
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(mgr_->Validate(id_).ok()) << "step " << step;
    }
  }
  ExpectContent(oracle);
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, EsmTest,
                         ::testing::Values(1u, 4u, 16u, 64u),
                         [](const auto& param_info) {
                           return "Leaf" + std::to_string(param_info.param);
                         });

// The basic insert algorithm must be byte-correct too (the paper's data
// uses improved; basic exists for the [Care86] comparison).
TEST(EsmInsertAlgorithms, BasicInsertMatchesOracle) {
  StorageConfig cfg;
  cfg.buddy_space_order = 12;
  StorageSystem sys(cfg);
  EsmOptions opt;
  opt.leaf_pages = 2;
  opt.improved_insert = false;
  EsmManager mgr(&sys, opt);
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  std::string oracle;
  Rng rng(555);
  for (int step = 0; step < 200; ++step) {
    if (oracle.empty() || rng.Bernoulli(0.55)) {
      std::string data = Pattern(rng.Next(), rng.Uniform(1, 20000));
      const uint64_t off = oracle.empty() ? 0 : rng.Uniform(0, oracle.size());
      ASSERT_TRUE(mgr.Insert(*id, off, data).ok()) << "step " << step;
      oracle.insert(off, data);
    } else {
      const uint64_t n =
          rng.Uniform(1, std::min<uint64_t>(oracle.size(), 15000));
      const uint64_t off = rng.Uniform(0, oracle.size() - n);
      ASSERT_TRUE(mgr.Delete(*id, off, n).ok()) << "step " << step;
      oracle.erase(off, n);
    }
  }
  std::string got;
  ASSERT_TRUE(mgr.Read(*id, 0, oracle.size(), &got).ok());
  EXPECT_EQ(got, oracle);
  EXPECT_TRUE(mgr.Validate(*id).ok());
}

// Basic vs improved insert: the improved algorithm avoids creating leaves.
TEST(EsmInsertAlgorithms, ImprovedCreatesFewerLeaves) {
  StorageConfig cfg;
  cfg.buddy_space_order = 12;
  auto run = [&](bool improved) -> uint32_t {
    StorageSystem sys(cfg);
    EsmOptions opt;
    opt.leaf_pages = 1;
    opt.improved_insert = improved;
    EsmManager mgr(&sys, opt);
    auto id = mgr.Create();
    LOB_CHECK_OK(id.status());
    LOB_CHECK_OK(mgr.Append(*id, Pattern(40, 400 * 1024)));
    Rng rng(41);
    for (int i = 0; i < 300; ++i) {
      auto size = mgr.Size(*id);
      LOB_CHECK_OK(size.status());
      const uint64_t off = rng.Uniform(0, *size - 1);
      LOB_CHECK_OK(mgr.Insert(*id, off, Pattern(rng.Next(), 300)));
    }
    auto stats = mgr.GetStorageStats(*id);
    LOB_CHECK_OK(stats.status());
    return stats->segments;
  };
  const uint32_t improved = run(true);
  const uint32_t basic = run(false);
  EXPECT_LT(improved, basic)
      << "improved insert should allocate fewer leaves";
}

// Shadowing ablation: with shadowing an in-leaf insert writes a fresh leaf
// segment elsewhere; without it the update happens in place.
TEST(EsmShadowing, InPlaceVersusShadow) {
  for (bool shadowing : {true, false}) {
    StorageConfig cfg;
    cfg.buddy_space_order = 12;
    cfg.shadowing = shadowing;
    StorageSystem sys(cfg);
    EsmOptions opt;
    opt.leaf_pages = 4;
    EsmManager mgr(&sys, opt);
    auto id = mgr.Create();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(mgr.Append(*id, Pattern(50, 8000)).ok());
    auto before = mgr.GetStorageStats(*id);
    ASSERT_TRUE(before.ok());
    // A 100-byte insert that fits in the first leaf.
    ASSERT_TRUE(mgr.Insert(*id, 10, Pattern(51, 100)).ok());
    std::string got;
    ASSERT_TRUE(mgr.Read(*id, 0, 8100, &got).ok());
    std::string expect = Pattern(50, 8000);
    expect.insert(10, Pattern(51, 100).data(), 100);
    EXPECT_EQ(got, expect);
  }
}

}  // namespace
}  // namespace lob
