// Tests for the minimal JSON parser behind `lobtool bench-diff` and the
// gate-file loader. The parser only needs to read what our own exporters
// write (objects, arrays, numbers, strings, bools, null), but it must
// reject malformed input with a line number instead of misreading it.

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace lob {
namespace {

TEST(JsonTest, ParsesScalars) {
  auto v = JsonValue::Parse("42");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_number());
  EXPECT_DOUBLE_EQ(v->as_number(), 42.0);

  v = JsonValue::Parse("-3.5e2");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->as_number(), -350.0);

  v = JsonValue::Parse("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_bool());
  EXPECT_TRUE(v->as_bool());

  v = JsonValue::Parse("false");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->as_bool());

  v = JsonValue::Parse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = JsonValue::Parse("\"hi\"");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_string());
  EXPECT_EQ(v->as_string(), "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  auto v = JsonValue::Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonTest, ParsesNestedObjectsAndArrays) {
  const std::string doc = R"({
    "bench": "micro",
    "metrics": {"cells_per_sec": 12.5, "pages_per_sec": 100},
    "cells": [{"wall_ms": 1.0}, {"wall_ms": 2.0}],
    "ok": true
  })";
  auto v = JsonValue::Parse(doc);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const JsonValue* metrics = v->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->NumberOr("cells_per_sec", 0), 12.5);
  const JsonValue* cells = v->Find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_TRUE(cells->is_array());
  ASSERT_EQ(cells->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(cells->as_array()[1].NumberOr("wall_ms", 0), 2.0);
  EXPECT_EQ(v->Find("missing"), nullptr);
  EXPECT_EQ(v->StringOr("bench", ""), "micro");
}

TEST(JsonTest, RejectsMalformedInputWithLineNumber) {
  for (const char* bad :
       {"{", "[1, 2", "{\"a\": }", "tru", "\"unterminated", "1 2",
        "{\"a\": 1,}", "{'a': 1}", ""}) {
    auto v = JsonValue::Parse(bad);
    EXPECT_FALSE(v.ok()) << "should reject: " << bad;
  }
  // Error on a later line reports that line.
  auto v = JsonValue::Parse("{\n  \"a\": 1,\n  \"b\": }\n}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().ToString().find("line 3"), std::string::npos)
      << v.status().ToString();
}

TEST(JsonTest, RoundTripsOwnExporterOutput) {
  // A miniature of the BENCH_*.json shape our exporters produce.
  const std::string doc =
      "{\n  \"bench\": \"fig9\",\n  \"schema_version\": 2,\n"
      "  \"metrics_snapshot\": {\"ops\": {\"eos.read\": "
      "{\"p99_ms\": 123.456}}},\n"
      "  \"cells\": [\n    {\"config\": \"esm leaf=4\", \"wall_ms\": 0.1}\n"
      "  ]\n}\n";
  auto v = JsonValue::Parse(doc);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* snap = v->Find("metrics_snapshot");
  ASSERT_NE(snap, nullptr);
  const JsonValue* ops = snap->Find("ops");
  ASSERT_NE(ops, nullptr);
  const JsonValue* read = ops->Find("eos.read");
  ASSERT_NE(read, nullptr);
  EXPECT_DOUBLE_EQ(read->NumberOr("p99_ms", 0), 123.456);
}

TEST(JsonTest, ParseFileReportsMissingFile) {
  auto v = JsonValue::ParseFile("/nonexistent/path.json");
  EXPECT_FALSE(v.ok());
}

}  // namespace
}  // namespace lob
