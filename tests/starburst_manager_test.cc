#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/storage_system.h"
#include "starburst/starburst_manager.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

class StarburstTest : public ::testing::Test {
 protected:
  StarburstTest() {
    sys_ = std::make_unique<StorageSystem>(cfg_);
    StarburstOptions opt;
    mgr_ = std::make_unique<StarburstManager>(sys_.get(), opt);
    auto id = mgr_->Create();
    LOB_CHECK_OK(id.status());
    id_ = *id;
  }

  void ExpectContent(const std::string& oracle) {
    auto size = mgr_->Size(id_);
    ASSERT_TRUE(size.ok());
    ASSERT_EQ(*size, oracle.size());
    std::string got;
    ASSERT_TRUE(mgr_->Read(id_, 0, oracle.size(), &got).ok());
    ASSERT_EQ(got, oracle);
    ASSERT_TRUE(mgr_->Validate(id_).ok());
  }

  StorageConfig cfg_;
  std::unique_ptr<StorageSystem> sys_;
  std::unique_ptr<StarburstManager> mgr_;
  ObjectId id_ = 0;
};

TEST_F(StarburstTest, EmptyObject) {
  auto size = mgr_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST_F(StarburstTest, SegmentsDoubleInSize) {
  // Build with 3K appends: the first segment is 1 page, then 2, 4, 8, ...
  // (paper 2.2, Figure 2).
  std::string oracle;
  for (int i = 0; i < 40; ++i) {
    std::string c = Pattern(static_cast<uint64_t>(i), 3000);
    ASSERT_TRUE(mgr_->Append(id_, c).ok());
    oracle += c;
  }
  ExpectContent(oracle);
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  // 120000 bytes need 30 pages: doubling 1+2+4+8+16 = 31 pages over 5
  // segments covers it.
  EXPECT_EQ(stats->segments, 5u);
  EXPECT_EQ(stats->leaf_pages, 31u);
}

TEST_F(StarburstTest, KnownSizeUsesFewSegments) {
  // One big append: first segment = object size (up to the max): a single
  // segment.
  const std::string data = Pattern(1, 1000000);
  ASSERT_TRUE(mgr_->Append(id_, data).ok());
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments, 1u);
  ExpectContent(data);
}

TEST_F(StarburstTest, TrimLastFreesSlack) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(mgr_->Append(id_, Pattern(static_cast<uint64_t>(i), 3000)).ok());
  }
  // 120000 bytes need 30 pages; doubling allocated 31.
  auto before = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(mgr_->TrimLast(id_).ok());
  auto after = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->leaf_pages, before->leaf_pages);
  EXPECT_EQ(after->leaf_pages, 30u);
  ExpectContent([&] {
    std::string oracle;
    for (int i = 0; i < 40; ++i) oracle += Pattern(static_cast<uint64_t>(i), 3000);
    return oracle;
  }());
}

TEST_F(StarburstTest, AppendAfterTrimRebuildsLastSegment) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(mgr_->Append(id_, Pattern(static_cast<uint64_t>(i), 3000)).ok());
  }
  ASSERT_TRUE(mgr_->TrimLast(id_).ok());
  std::string oracle;
  for (int i = 0; i < 40; ++i) oracle += Pattern(static_cast<uint64_t>(i), 3000);
  const std::string more = Pattern(99, 50000);
  ASSERT_TRUE(mgr_->Append(id_, more).ok());
  oracle += more;
  ExpectContent(oracle);
}

TEST_F(StarburstTest, ReadAcrossSegmentBoundaries) {
  std::string oracle;
  for (int i = 0; i < 20; ++i) {
    std::string c = Pattern(static_cast<uint64_t>(i), 10000);
    ASSERT_TRUE(mgr_->Append(id_, c).ok());
    oracle += c;
  }
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    const uint64_t off = rng.Uniform(0, oracle.size() - 1);
    const uint64_t n = rng.Uniform(1, oracle.size() - off);
    std::string got;
    ASSERT_TRUE(mgr_->Read(id_, off, n, &got).ok());
    ASSERT_EQ(got, oracle.substr(off, n));
  }
}

TEST_F(StarburstTest, InsertRewritesTail) {
  std::string oracle = Pattern(2, 300000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  const std::string ins = Pattern(3, 12345);
  ASSERT_TRUE(mgr_->Insert(id_, 150000, ins).ok());
  oracle.insert(150000, ins);
  ExpectContent(oracle);
}

TEST_F(StarburstTest, DeleteRewritesTail) {
  std::string oracle = Pattern(4, 300000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  ASSERT_TRUE(mgr_->Delete(id_, 100000, 50000).ok());
  oracle.erase(100000, 50000);
  ExpectContent(oracle);
}

TEST_F(StarburstTest, DeleteAllBytes) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(5, 100000)).ok());
  ASSERT_TRUE(mgr_->Delete(id_, 0, 100000).ok());
  ExpectContent("");
  EXPECT_EQ(sys_->leaf_area()->allocated_pages(), 0u);
  // The growth pattern restarts with the next append.
  ASSERT_TRUE(mgr_->Append(id_, "fresh start").ok());
  ExpectContent("fresh start");
}

TEST_F(StarburstTest, ReplaceInPlaceKeepsStructure) {
  std::string oracle = Pattern(6, 200000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  auto before = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(before.ok());
  const std::string rep = Pattern(7, 30000);
  ASSERT_TRUE(mgr_->Replace(id_, 50000, rep).ok());
  oracle.replace(50000, rep.size(), rep);
  ExpectContent(oracle);
  auto after = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->segments, before->segments);
  EXPECT_EQ(after->leaf_pages, before->leaf_pages);
}

TEST_F(StarburstTest, InsertCostIndependentOfOperationSize) {
  // Table 3: insert cost is flat in the operation size (the copy
  // dominates).
  ASSERT_TRUE(mgr_->Append(id_, Pattern(8, 2 * 1024 * 1024)).ok());
  auto cost_of_insert = [&](uint64_t n) -> double {
    IoStats before = sys_->stats();
    LOB_CHECK_OK(mgr_->Insert(id_, 1000, Pattern(9, n)));
    IoStats delta = sys_->stats() - before;
    LOB_CHECK_OK(mgr_->Delete(id_, 1000, n));  // restore size
    return delta.ms;
  };
  const double small = cost_of_insert(100);
  const double large = cost_of_insert(100000);
  EXPECT_LT(large / small, 1.25)
      << "insert cost should barely depend on operation size";
}

TEST_F(StarburstTest, FullCopyCostsMoreThanTailCopy) {
  const std::string data = Pattern(10, 2 * 1024 * 1024);
  auto measure = [&](UpdateCopyMode mode) {
    StorageSystem sys(cfg_);
    StarburstOptions opt;
    opt.copy_mode = mode;
    StarburstManager mgr(&sys, opt);
    auto id = mgr.Create();
    LOB_CHECK_OK(id.status());
    // Build in 64K chunks so the field spans several doubling segments;
    // with a single segment, tail copy degenerates to full copy.
    for (size_t at = 0; at < data.size(); at += 64 * 1024) {
      LOB_CHECK_OK(
          mgr.Append(*id, std::string_view(data).substr(at, 64 * 1024)));
    }
    double total = 0;
    Rng rng(11);
    for (int i = 0; i < 10; ++i) {
      const uint64_t off = rng.Uniform(0, data.size() - 1);
      IoStats before = sys.stats();
      LOB_CHECK_OK(mgr.Insert(*id, off, "0123456789"));
      total += (sys.stats() - before).ms;
      LOB_CHECK_OK(mgr.Delete(*id, off, 10));
    }
    return total / 10;
  };
  const double tail = measure(UpdateCopyMode::kTailCopy);
  const double full = measure(UpdateCopyMode::kFullCopy);
  EXPECT_GT(full, tail) << "full copy reads/writes strictly more";
}

TEST_F(StarburstTest, RejectsOutOfRange) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(12, 1000)).ok());
  std::string out;
  EXPECT_EQ(mgr_->Read(id_, 500, 600, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr_->Insert(id_, 1001, "x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr_->Delete(id_, 900, 200).code(), StatusCode::kOutOfRange);
}

TEST_F(StarburstTest, DestroyFreesEverything) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(13, 500000)).ok());
  ASSERT_GT(sys_->leaf_area()->allocated_pages(), 0u);
  ASSERT_TRUE(mgr_->Destroy(id_).ok());
  EXPECT_EQ(sys_->leaf_area()->allocated_pages(), 0u);
  EXPECT_EQ(sys_->meta_area()->allocated_pages(), 0u);
}

// Property test: random op mix against a std::string oracle.
TEST_F(StarburstTest, RandomOpsMatchOracle) {
  std::string oracle;
  Rng rng(777);
  for (int step = 0; step < 200; ++step) {
    const double p = rng.NextDouble();
    if (oracle.empty() || p < 0.35) {
      std::string data = Pattern(rng.Next(), rng.Uniform(1, 60000));
      if (oracle.empty() || rng.Bernoulli(0.5)) {
        ASSERT_TRUE(mgr_->Append(id_, data).ok()) << "step " << step;
        oracle += data;
      } else {
        const uint64_t off = rng.Uniform(0, oracle.size());
        ASSERT_TRUE(mgr_->Insert(id_, off, data).ok()) << "step " << step;
        oracle.insert(off, data);
      }
    } else if (p < 0.55) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n =
          rng.Uniform(1, std::min<uint64_t>(oracle.size() - off, 40000));
      ASSERT_TRUE(mgr_->Delete(id_, off, n).ok()) << "step " << step;
      oracle.erase(off, n);
    } else if (p < 0.8) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      std::string got;
      ASSERT_TRUE(mgr_->Read(id_, off, n, &got).ok()) << "step " << step;
      ASSERT_EQ(got, oracle.substr(off, n)) << "step " << step;
    } else {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      std::string data = Pattern(rng.Next(), n);
      ASSERT_TRUE(mgr_->Replace(id_, off, data).ok()) << "step " << step;
      oracle.replace(off, n, data);
    }
    if (step % 40 == 0) {
      ASSERT_TRUE(mgr_->Validate(id_).ok()) << "step " << step;
    }
  }
  ExpectContent(oracle);
}

}  // namespace
}  // namespace lob
