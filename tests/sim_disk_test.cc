#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "iomodel/sim_disk.h"

namespace lob {
namespace {

StorageConfig TestConfig() { return StorageConfig{}; }

TEST(SimDiskTest, RoundTripSinglePage) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  std::vector<char> out(4096, 'x'), in(4096);
  ASSERT_TRUE(disk.Write(a, 5, 1, out.data()).ok());
  ASSERT_TRUE(disk.Read(a, 5, 1, in.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), 4096), 0);
}

TEST(SimDiskTest, UnwrittenPagesReadAsZeros) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  std::vector<char> in(4096, 'x');
  ASSERT_TRUE(disk.Read(a, 99, 1, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 0);
}

TEST(SimDiskTest, MultiPageCallMovesAllPages) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  std::vector<char> out(3 * 4096);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<char>(i % 251);
  }
  ASSERT_TRUE(disk.Write(a, 10, 3, out.data()).ok());
  std::vector<char> in(3 * 4096);
  ASSERT_TRUE(disk.Read(a, 10, 3, in.data()).ok());
  EXPECT_EQ(out, in);
}

TEST(SimDiskTest, CostModelMatchesPaperExample) {
  // Paper 4.1: reading a 3-block (12K) segment costs 33 + 4*3 = 45 ms;
  // reading the same blocks with 3 calls costs (33+4)*3 = 111 ms.
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  std::vector<char> buf(3 * 4096);
  ASSERT_TRUE(disk.Read(a, 0, 3, buf.data()).ok());
  EXPECT_DOUBLE_EQ(disk.stats().ms, 45.0);
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, 3u);

  disk.ResetStats();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(disk.Read(a, static_cast<PageId>(i), 1, buf.data()).ok());
  }
  EXPECT_DOUBLE_EQ(disk.stats().ms, 111.0);
  EXPECT_EQ(disk.stats().Seeks(), 3u);
}

TEST(SimDiskTest, WritesAreMeteredLikeReads) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  std::vector<char> buf(2 * 4096, 1);
  ASSERT_TRUE(disk.Write(a, 0, 2, buf.data()).ok());
  EXPECT_DOUBLE_EQ(disk.stats().ms, 33.0 + 8.0);
  EXPECT_EQ(disk.stats().write_calls, 1u);
  EXPECT_EQ(disk.stats().pages_written, 2u);
  EXPECT_EQ(disk.stats().read_calls, 0u);
}

TEST(SimDiskTest, StatsSnapshotsSubtract) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  std::vector<char> buf(4096, 1);
  ASSERT_TRUE(disk.Write(a, 0, 1, buf.data()).ok());
  IoStats before = disk.stats();
  ASSERT_TRUE(disk.Read(a, 0, 1, buf.data()).ok());
  IoStats delta = disk.stats() - before;
  EXPECT_EQ(delta.read_calls, 1u);
  EXPECT_EQ(delta.write_calls, 0u);
  EXPECT_DOUBLE_EQ(delta.ms, 37.0);
}

TEST(SimDiskTest, MultipleAreasAreIndependent) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  AreaId b = disk.CreateArea();
  EXPECT_NE(a, b);
  std::vector<char> one(4096, 1), two(4096, 2), in(4096);
  ASSERT_TRUE(disk.Write(a, 0, 1, one.data()).ok());
  ASSERT_TRUE(disk.Write(b, 0, 1, two.data()).ok());
  ASSERT_TRUE(disk.Read(a, 0, 1, in.data()).ok());
  EXPECT_EQ(in[0], 1);
  ASSERT_TRUE(disk.Read(b, 0, 1, in.data()).ok());
  EXPECT_EQ(in[0], 2);
}

TEST(SimDiskTest, RejectsBadArguments) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  std::vector<char> buf(4096);
  EXPECT_FALSE(disk.Read(a + 10, 0, 1, buf.data()).ok());
  EXPECT_FALSE(disk.Read(a, 0, 0, buf.data()).ok());
  EXPECT_FALSE(disk.Read(a, kInvalidPage, 1, buf.data()).ok());
}

TEST(SimDiskTest, HighWaterTracksWrites) {
  SimDisk disk(TestConfig());
  AreaId a = disk.CreateArea();
  EXPECT_EQ(disk.AreaHighWater(a), 0u);
  std::vector<char> buf(4096, 1);
  ASSERT_TRUE(disk.Write(a, 41, 1, buf.data()).ok());
  EXPECT_EQ(disk.AreaHighWater(a), 42u);
}

TEST(IoStatsTest, ArithmeticAndToString) {
  IoStats s;
  s.read_calls = 2;
  s.write_calls = 1;
  s.pages_read = 5;
  s.pages_written = 1;
  s.ms = 10;
  IoStats t = s + s;
  EXPECT_EQ(t.Seeks(), 6u);
  EXPECT_EQ(t.PagesTransferred(), 12u);
  EXPECT_DOUBLE_EQ((t - s).ms, 10.0);
  EXPECT_NE(s.ToString().find("reads=2"), std::string::npos);
}

}  // namespace
}  // namespace lob
