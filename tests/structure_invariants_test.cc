// Structure-level invariant tests: the precise shape rules each paper
// structure promises, checked directly on the page images rather than
// through the byte API.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/storage_system.h"
#include "eos/eos_manager.h"
#include "esm/esm_manager.h"
#include "lobtree/positional_tree.h"
#include "starburst/starburst_manager.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

// Reads the leaf byte counts of a positional-tree object via a fresh tree
// handle (works for ESM and EOS roots).
std::vector<uint64_t> LeafSizes(StorageSystem* sys, ObjectId id) {
  TreeConfig tc;
  tc.pool = sys->pool();
  tc.meta_area = sys->meta_area();
  PositionalTree tree(tc);
  std::vector<uint64_t> out;
  LOB_CHECK_OK(tree.VisitLeaves(id, [&](const auto& leaf) {
    out.push_back(leaf.bytes);
    return Status::OK();
  }));
  return out;
}

// ------------------------------------------------------------------- ESM

TEST(EsmInvariants, AppendKeepsAllButLastTwoLeavesFull) {
  // Paper 4.2: after appends, all but the two rightmost leaves are full
  // and the last two are each at least half full.
  StorageSystem sys;
  EsmOptions opt;
  opt.leaf_pages = 4;
  EsmManager mgr(&sys, opt);
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        mgr.Append(*id, Pattern(rng.Next(), rng.Uniform(1000, 30000))).ok());
  }
  const uint64_t cap = 4 * 4096;
  auto sizes = LeafSizes(&sys, *id);
  ASSERT_GE(sizes.size(), 3u);
  for (size_t i = 0; i + 2 < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], cap) << "leaf " << i << " must be full";
  }
  EXPECT_GE(sizes[sizes.size() - 2], cap / 2);
  EXPECT_GE(sizes[sizes.size() - 1], cap / 2);
}

TEST(EsmInvariants, LeavesStayAtLeastHalfFullUnderDeletes) {
  StorageSystem sys;
  EsmOptions opt;
  opt.leaf_pages = 2;
  EsmManager mgr(&sys, opt);
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  std::string oracle = Pattern(2, 200000);
  ASSERT_TRUE(mgr.Append(*id, oracle).ok());
  Rng rng(3);
  for (int i = 0; i < 120; ++i) {
    const uint64_t n = rng.Uniform(100, 5000);
    if (oracle.size() <= n + 1) break;
    const uint64_t off = rng.Uniform(0, oracle.size() - n);
    ASSERT_TRUE(mgr.Delete(*id, off, n).ok());
    oracle.erase(off, n);
  }
  const uint64_t cap = 2 * 4096;
  auto sizes = LeafSizes(&sys, *id);
  // Every leaf at least half full except possibly at the very edges of
  // update activity (the paper's structure tolerates the last leaf and a
  // freshly deleted boundary being underfull until the next touch; we
  // assert the aggregate is sane: at most 2 underfull leaves).
  int underfull = 0;
  for (uint64_t s : sizes) {
    if (s < cap / 2) underfull++;
  }
  EXPECT_LE(underfull, 2) << "B-tree style occupancy must be maintained";
}

TEST(EsmInvariants, FixedLeafAllocationNeverVaries) {
  StorageSystem sys;
  EsmOptions opt;
  opt.leaf_pages = 16;
  EsmManager mgr(&sys, opt);
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.Append(*id, Pattern(4, 500000)).ok());
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        mgr.Insert(*id, rng.Uniform(0, 400000), Pattern(rng.Next(), 9000))
            .ok());
  }
  auto stats = mgr.GetStorageStats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->leaf_pages, uint64_t{stats->segments} * 16)
      << "every ESM leaf occupies exactly leaf_pages pages";
}

// ------------------------------------------------------------- Starburst

TEST(StarburstInvariants, MiddleSegmentsAlwaysFull) {
  StorageSystem sys;
  StarburstManager mgr(&sys, StarburstOptions());
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  Rng rng(6);
  // Appends, inserts and deletes in arbitrary order; Validate() checks
  // that every non-last segment holds exactly alloc*page_size bytes (the
  // implicit-size invariant the descriptor depends on).
  std::string oracle;
  for (int i = 0; i < 60; ++i) {
    const double p = rng.NextDouble();
    if (oracle.empty() || p < 0.5) {
      std::string data = Pattern(rng.Next(), rng.Uniform(1, 40000));
      ASSERT_TRUE(mgr.Append(*id, data).ok());
      oracle += data;
    } else if (p < 0.75) {
      const uint64_t off = rng.Uniform(0, oracle.size());
      std::string data = Pattern(rng.Next(), rng.Uniform(1, 20000));
      ASSERT_TRUE(mgr.Insert(*id, off, data).ok());
      oracle.insert(off, data);
    } else {
      const uint64_t n =
          rng.Uniform(1, std::min<uint64_t>(oracle.size(), 20000));
      const uint64_t off = rng.Uniform(0, oracle.size() - n);
      ASSERT_TRUE(mgr.Delete(*id, off, n).ok());
      oracle.erase(off, n);
    }
    ASSERT_TRUE(mgr.Validate(*id).ok()) << "op " << i;
  }
}

TEST(StarburstInvariants, SegmentCountIsLogarithmic) {
  // Doubling growth: a 10 MB field built from 3 KB appends uses O(log)
  // segments, not thousands (the reason the pointer array fits in the
  // descriptor).
  StorageSystem sys;
  StarburstManager mgr(&sys, StarburstOptions());
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 3500; ++i) {
    ASSERT_TRUE(mgr.Append(*id, Pattern(static_cast<uint64_t>(i), 3000)).ok());
  }
  auto stats = mgr.GetStorageStats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->segments, 14u) << "1+2+4+... covers 10 MB in ~12 steps";
  EXPECT_EQ(stats->index_pages, 1u) << "one descriptor page";
}

// ------------------------------------------------------------------- EOS

TEST(EosInvariants, SegmentsHaveNoHoles) {
  // "There are no holes in each segment: all of its pages must get filled
  // up except the last one which may be partially full" - equivalently,
  // every leaf's page count is exactly ceil(bytes / page_size); the
  // allocator-level check is that allocated pages equal the sum of those
  // (plus the last leaf's growth slack).
  StorageSystem sys;
  EosOptions opt;
  opt.threshold_pages = 4;
  EosManager mgr(&sys, opt);
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  Rng rng(8);
  std::string oracle;
  for (int i = 0; i < 80; ++i) {
    const double p = rng.NextDouble();
    if (oracle.empty() || p < 0.45) {
      std::string data = Pattern(rng.Next(), rng.Uniform(1, 30000));
      const uint64_t off = oracle.empty() ? 0 : rng.Uniform(0, oracle.size());
      ASSERT_TRUE(mgr.Insert(*id, off, data).ok());
      oracle.insert(off, data);
    } else {
      const uint64_t n =
          rng.Uniform(1, std::min<uint64_t>(oracle.size(), 20000));
      const uint64_t off = rng.Uniform(0, oracle.size() - n);
      ASSERT_TRUE(mgr.Delete(*id, off, n).ok());
      oracle.erase(off, n);
    }
  }
  auto stats = mgr.GetStorageStats(*id);
  ASSERT_TRUE(stats.ok());
  uint64_t expect_pages = 0;
  for (uint64_t s : LeafSizes(&sys, *id)) {
    expect_pages += (s + 4095) / 4096;
  }
  EXPECT_EQ(sys.leaf_area()->allocated_pages(), expect_pages)
      << "allocated pages must equal ceil(bytes/page) per segment";
}

TEST(EosInvariants, TreeStaysLevelOneDuringBuild) {
  // Paper 4.2: for EOS a tree of level greater than 1 needs a >16 GB
  // object; any realistic build keeps the root pointing directly at
  // segments.
  StorageSystem sys;
  EosOptions opt;
  EosManager mgr(&sys, opt);
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        mgr.Append(*id, Pattern(static_cast<uint64_t>(i), 50000)).ok());
  }
  auto stats = mgr.GetStorageStats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tree_height, 1);
}

// ------------------------------------------------------- corruption paths

TEST(CorruptionDetection, TreeRejectsClobberedNodes) {
  StorageSystem sys;
  EsmOptions opt;
  opt.leaf_pages = 1;
  EsmManager mgr(&sys, opt);
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.Append(*id, Pattern(9, 50000)).ok());
  // Scribble over the root page behind the manager's back.
  {
    auto g = sys.pool()->FixPage(sys.meta_area()->id(), *id, FixMode::kRead);
    ASSERT_TRUE(g.ok());
    std::memset(g->mutable_data(), 0xAB, 64);
    g->MarkDirty();
  }
  EXPECT_EQ(mgr.Validate(*id).code(), StatusCode::kCorruption);
  std::string out;
  EXPECT_FALSE(mgr.Read(*id, 0, 10, &out).ok());
}

TEST(CorruptionDetection, StarburstRejectsClobberedDescriptor) {
  StorageSystem sys;
  StarburstManager mgr(&sys, StarburstOptions());
  auto id = mgr.Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr.Append(*id, Pattern(10, 50000)).ok());
  {
    auto g = sys.pool()->FixPage(sys.meta_area()->id(), *id, FixMode::kRead);
    ASSERT_TRUE(g.ok());
    std::memset(g->mutable_data(), 0xCD, 16);
    g->MarkDirty();
  }
  std::string out;
  EXPECT_EQ(mgr.Read(*id, 0, 10, &out).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace lob
