// Tests for the ranked synchronization layer (common/lock_order.h) and the
// latched warn-log sink: the rank table is a contract, out-of-order
// acquisition aborts (death tests), CondVar keeps the held-rank stack
// consistent across waits, and LOB_LOG_WARN lines stay untorn under
// concurrency.
//
// The death tests put this binary under the `death` ctest label: gtest
// death tests fork, which ThreadSanitizer does not support, so TSan runs
// use `ctest -LE death`.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_order.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"

namespace lob {
namespace {

// ------------------------------------------------------------- rank table

TEST(LockRankTableTest, RanksStrictlyIncreaseInTableOrder) {
  int prev = -1;
  for (const LockRankRow& row : kLockRankRows) {
    EXPECT_GT(row.rank, prev)
        << row.name << " breaks the ascending-rank table order";
    prev = row.rank;
  }
}

TEST(LockRankTableTest, IdsAndNamesAreUniqueAndNonEmpty) {
  std::set<std::string> ids;
  std::set<std::string> names;
  for (const LockRankRow& row : kLockRankRows) {
    EXPECT_NE(row.id[0], '\0');
    EXPECT_NE(row.description[0], '\0');
    EXPECT_TRUE(ids.insert(row.id).second) << "duplicate id " << row.id;
    EXPECT_TRUE(names.insert(row.name).second)
        << "duplicate enumerator " << row.name;
  }
}

TEST(LockRankTableTest, LockRankNameResolvesEveryRow) {
  for (const LockRankRow& row : kLockRankRows) {
    EXPECT_STREQ(LockRankName(static_cast<LockRank>(row.rank)), row.id);
  }
  EXPECT_STREQ(LockRankName(static_cast<LockRank>(-12345)), "?");
}

// ------------------------------------------------------ in-order locking

TEST(LockOrderTest, AscendingAcquisitionIsAllowed) {
  Mutex outer{LockRank::kBufferPool};
  Mutex inner{LockRank::kObsRegistry};
  MutexLock a(&outer);
  MutexLock b(&inner);  // 30 -> 40: strictly increasing, fine
  outer.AssertHeld();
  inner.AssertHeld();
}

TEST(LockOrderTest, ReacquireAfterReleaseIsAllowed) {
  Mutex mu{LockRank::kCampaign};
  { MutexLock lock(&mu); }
  { MutexLock lock(&mu); }  // the stack popped; same rank is fine again
}

TEST(LockOrderTest, TryLockSucceedsUncontendedAndTracksHeld) {
  Mutex mu{LockRank::kCampaign};
  ASSERT_TRUE(mu.TryLock());
  mu.AssertHeld();
  mu.Unlock();
}

TEST(LockOrderTest, TryLockFailureLeavesStackIntact) {
  Mutex mu{LockRank::kCampaign};
  MutexLock lock(&mu);
  std::thread contender([&] {
    // Another thread's try-lock fails (we hold it) and must not record a
    // phantom held entry; a subsequent in-order acquire still works.
    EXPECT_FALSE(mu.TryLock());
    Mutex later{LockRank::kBufferPool};
    MutexLock inner(&later);
  });
  contender.join();
}

TEST(LockOrderTest, SharedMutexObeysRanksForReadersAndWriters) {
  SharedMutex rw{LockRank::kBufferPool};
  Mutex inner{LockRank::kTraceSession};
  {
    ReaderMutexLock r(&rw);
    MutexLock i(&inner);  // 30 (shared) -> 50: fine
  }
  {
    WriterMutexLock w(&rw);
    MutexLock i(&inner);
  }
}

TEST(LockOrderTest, HandOverHandReleaseOutOfLifoOrder) {
  // PopHeld scans from the top, so releasing the *outer* lock first (a
  // legal hand-over-hand pattern) must not confuse the stack.
  Mutex a{LockRank::kThreadPool};
  Mutex b{LockRank::kCampaign};
  a.Lock();
  b.Lock();
  a.Unlock();  // out of LIFO order
  b.AssertHeld();
  b.Unlock();
}

TEST(LockOrderTest, RankAccessorReturnsConstructionRank) {
  Mutex mu{LockRank::kLogSink};
  EXPECT_EQ(mu.rank(), LockRank::kLogSink);
  SharedMutex rw{LockRank::kBufferPool};
  EXPECT_EQ(rw.rank(), LockRank::kBufferPool);
}

// ------------------------------------------------------------ cond vars

TEST(CondVarTest, HandshakeAndHeldStackSurviveWait) {
  Mutex mu{LockRank::kCampaign};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // The mutex is re-held after Wait; the rank stack must agree.
    mu.AssertHeld();
    // And the order checker must still see rank 20 as held: acquiring a
    // lower rank here would abort, a higher one is fine.
    Mutex inner{LockRank::kBufferPool};
    MutexLock i(&inner);
  }
  producer.join();
}

// ----------------------------------------------------------- death tests

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, DescendingAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex outer{LockRank::kObsRegistry};
  Mutex inner{LockRank::kBufferPool};
  EXPECT_DEATH(
      {
        MutexLock a(&outer);
        MutexLock b(&inner);  // 40 -> 30: inversion
      },
      "lock-order violation: acquiring \"buffer.pool\" \\(rank 30\\) while "
      "holding \"obs.registry\" \\(rank 40\\)");
}

TEST(LockOrderDeathTest, EqualRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a{LockRank::kTraceSession};
  Mutex b{LockRank::kTraceSession};
  EXPECT_DEATH(
      {
        MutexLock la(&a);
        MutexLock lb(&b);  // equal ranks may not nest
      },
      "lock-order violation");
}

TEST(LockOrderDeathTest, OutOfOrderTryLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex outer{LockRank::kTimeline};
  Mutex inner{LockRank::kThreadPool};
  EXPECT_DEATH(
      {
        MutexLock a(&outer);
        inner.TryLock();  // rank-checked even though it cannot block
      },
      "lock-order violation");
}

TEST(LockOrderDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{LockRank::kBufferPool};
  EXPECT_DEATH(mu.AssertHeld(),
               "Mutex::AssertHeld: \"buffer.pool\" \\(rank 30\\) is not "
               "held by this thread");
}

TEST(LockOrderDeathTest, UnlockOfUnheldMutexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{LockRank::kBufferPool};
  EXPECT_DEATH(mu.Unlock(),
               "lock-order: unlock of a mutex this thread does not hold");
}

// --------------------------------------------------------- warn-log sink

// Redirects fd 2 to a file for the block's lifetime so the test can read
// back what LOB_LOG_WARN wrote.
class StderrCapture {
 public:
  explicit StderrCapture(const std::string& path) {
    std::fflush(stderr);
    saved_fd_ = dup(2);
    int fd = open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    dup2(fd, 2);
    close(fd);
  }
  ~StderrCapture() {
    std::fflush(stderr);
    dup2(saved_fd_, 2);
    close(saved_fd_);
  }

 private:
  int saved_fd_;
};

TEST(LogSinkTest, ConcurrentWarnLinesAreUntorn) {
  const std::string path = ::testing::TempDir() + "/lob_warn_capture.txt";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    StderrCapture capture(path);
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    done.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      done.push_back(pool.Submit([t] {
        for (int i = 0; i < kPerThread; ++i) {
          LOB_LOG_WARN("thread %d message %d payload abcdefghijklmnop", t,
                       i);
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  // Every line must be a complete, untorn warn record; counts per thread
  // must add up. Interleaving order across threads is unconstrained.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int counts[kThreads] = {0};
  int total = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++total;
    int t = -1;
    int i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "[lob:warn] %*[^:]:%*d: thread %d message %d "
                          "payload abcdefghijklmnop",
                          &t, &i),
              2)
        << "torn or malformed line: " << line;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_GE(i, 0);
    EXPECT_LT(i, kPerThread);
    ++counts[t];
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counts[t], kPerThread) << "thread " << t << " lost lines";
  }
}

TEST(LogSinkTest, WarnWhileHoldingEveryOtherRankIsLegal) {
  // kLogSink is the innermost rank precisely so any subsystem can warn
  // while holding its own lock; prove the composition for the deepest
  // legal chain.
  Mutex pool{LockRank::kBufferPool};
  Mutex obs{LockRank::kObsRegistry};
  Mutex trace{LockRank::kTraceSession};
  const std::string path = ::testing::TempDir() + "/lob_warn_nested.txt";
  {
    StderrCapture capture(path);
    MutexLock a(&pool);
    MutexLock b(&obs);
    MutexLock c(&trace);
    LOB_LOG_WARN("warning under ranks 30+40+50");
  }
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("warning under ranks 30+40+50"),
            std::string::npos);
}

// -------------------------------------- ThreadPool shutdown contract

// The illegal sides of the shutdown contract must fail loudly instead of
// silently dropping work (tasks vanishing into a destructed queue was
// the original bug): a Submit from a non-worker thread after Shutdown
// aborts, and a Shutdown from inside a task body (which would self-join)
// aborts. The legal drain-submit side is covered in exec_test.cc.

TEST(ThreadPoolDeathTest, ForeignSubmitAfterShutdownAborts) {
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Shutdown();
        pool.Submit([] {});  // would never run
      },
      "Submit after Shutdown");
}

TEST(ThreadPoolDeathTest, ShutdownFromWorkerThreadAborts) {
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([&pool] { pool.Shutdown(); }).get();
      },
      "self-join");
}

}  // namespace
}  // namespace lob
