// Tests for the modeled-clock span tracing subsystem (src/trace):
//
// * TraceSession mechanics: strict nesting, parent/depth wiring, the
//   negative-duration clamp, name interning and IoMsByOp attribution.
// * Chrome trace-event / Perfetto JSON export shape and determinism.
// * The hook layer (gated on LOB_TRACING): OpScope opens kOp spans with
//   the composed ledger label, SimDisk::AccountCall records kIo leaves,
//   UnmeteredSection suspends recording.
// * The load-bearing invariant, one level below the ObsRegistry ledger:
//   per operation label, the sum of child disk.io span milliseconds
//   equals the milliseconds the attribution ledger charged to that
//   label — for all three engines over a mixed workload.
// * TimelineSampler: the final sample reproduces the final MixPoint's
//   utilization (the paper's Figure 7/8 endpoints), and the CSV exporter
//   escapes labels per RFC 4180.
// * Thread-safety by isolation: per-job sessions through ParallelRunner
//   (run under TSan by scripts/check.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "exec/parallel_runner.h"
#include "exec/thread_pool.h"
#include "obs/obs_registry.h"
#include "obs/op_scope.h"
#include "trace/timeline.h"
#include "trace/trace_session.h"
#include "trace/tracing.h"
#include "workload/workload.h"

namespace lob {
namespace {

// Only referenced by the LOB_TRACING-gated hook tests.
[[maybe_unused]] std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

// ---------------------------------------------------------------------------
// TraceSession mechanics (always compiled; only the hooks are gated)

TEST(TraceSessionTest, SpansNestWithParentAndDepth) {
  TraceSession s;
  const size_t op = s.BeginSpan("eos.insert", SpanKind::kOp, 10.0);
  const size_t phase = s.BeginSpan("tree.descend", SpanKind::kPhase, 12.0);
  s.RecordIo(true, 4, 12.0, 3.0);
  s.EndSpan(phase, 15.0);
  s.EndSpan(op, 20.0);

  ASSERT_EQ(s.events().size(), 3u);
  const auto& events = s.events();
  EXPECT_EQ(s.Name(events[0].name_id), "eos.insert");
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_DOUBLE_EQ(events[0].dur_ms, 10.0);
  EXPECT_EQ(s.Name(events[1].name_id), "tree.descend");
  EXPECT_EQ(events[1].parent, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_DOUBLE_EQ(events[1].dur_ms, 3.0);
  EXPECT_EQ(s.Name(events[2].name_id), "disk.io");
  EXPECT_EQ(events[2].parent, 1);
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_TRUE(events[2].is_read);
  EXPECT_EQ(events[2].pages, 4u);
  EXPECT_EQ(s.open_spans(), 0u);
}

TEST(TraceSessionTest, NegativeDurationClampsToZero) {
  // UnmeteredSection restores the modeled clock, so a span can observe
  // the clock moving backwards; its duration clamps to zero.
  TraceSession s;
  const size_t span = s.BeginSpan("op", SpanKind::kOp, 50.0);
  s.EndSpan(span, 20.0);
  EXPECT_DOUBLE_EQ(s.events()[0].dur_ms, 0.0);
}

TEST(TraceSessionTest, NamesAreInternedOnce) {
  TraceSession s;
  const uint32_t a = s.InternName("buddy.alloc");
  const uint32_t b = s.InternName("buddy.alloc");
  const uint32_t c = s.InternName("buddy.free");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TraceSessionTest, IoMsByOpClimbsToNearestOpSpan) {
  TraceSession s;
  // I/O outside any op span is unattributed.
  s.RecordIo(false, 1, 0.0, 5.0);
  const size_t op = s.BeginSpan("esm.append", SpanKind::kOp, 5.0);
  s.RecordIo(false, 2, 5.0, 7.0);
  const size_t phase = s.BeginSpan("pool.flush", SpanKind::kPhase, 12.0);
  s.RecordIo(false, 1, 12.0, 3.0);  // attributed through the phase
  s.EndSpan(phase, 15.0);
  s.EndSpan(op, 15.0);
  const auto by_op = s.IoMsByOp();
  ASSERT_EQ(by_op.size(), 2u);
  EXPECT_DOUBLE_EQ(by_op.at("esm.append"), 10.0);
  EXPECT_DOUBLE_EQ(by_op.at("(unattributed)"), 5.0);
}

TEST(TraceSessionTest, SummarizeMergesSiblingSpansByName) {
  TraceSession s;
  for (int i = 0; i < 3; ++i) {
    const size_t op = s.BeginSpan("eos.read", SpanKind::kOp, i * 10.0);
    s.RecordIo(true, 2, i * 10.0, 4.0);
    s.EndSpan(op, i * 10.0 + 4.0);
  }
  const TraceSession::SummaryNode root = s.Summarize();
  ASSERT_EQ(root.children.count("eos.read"), 1u);
  const auto& op_node = root.children.at("eos.read");
  EXPECT_EQ(op_node.count, 3u);
  EXPECT_DOUBLE_EQ(op_node.total_ms, 12.0);
  ASSERT_EQ(op_node.children.count("disk.io"), 1u);
  EXPECT_EQ(op_node.children.at("disk.io").io_calls, 3u);
  EXPECT_EQ(op_node.children.at("disk.io").io_pages, 6u);
}

// ---------------------------------------------------------------------------
// Chrome trace-event / Perfetto JSON export

TEST(TraceSessionTest, ChromeTraceJsonShape) {
  TraceSession s;
  const size_t op = s.BeginSpan("eos.insert", SpanKind::kOp, 1.5);
  s.RecordIo(true, 4, 1.5, 2.0);
  s.EndSpan(op, 3.5);
  const std::string json =
      TraceSession::ChromeTraceJson({{"mean_op=100/EOS", &s}});
  // Document shell.
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  // Process-name metadata record for the cell label.
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"mean_op=100/EOS\""), std::string::npos);
  // Complete events with category + microsecond timestamps (1.5 ms op).
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"op\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"io\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1500.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2000.000"), std::string::npos);
  // I/O payload args.
  EXPECT_NE(json.find("\"rw\": \"read\""), std::string::npos);
  EXPECT_NE(json.find("\"pages\": 4"), std::string::npos);
  // Balanced document (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceSessionTest, ChromeTraceJsonMergesSessionsInGivenOrder) {
  TraceSession a;
  const size_t sa = a.BeginSpan("one", SpanKind::kOp, 0.0);
  a.EndSpan(sa, 1.0);
  TraceSession b;
  const size_t sb = b.BeginSpan("two", SpanKind::kOp, 0.0);
  b.EndSpan(sb, 1.0);
  const std::string json =
      TraceSession::ChromeTraceJson({{"cell-a", &a}, {"cell-b", &b}});
  const size_t pos_a = json.find("cell-a");
  const size_t pos_b = json.find("cell-b");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  // pids distinguish the sessions.
  EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  // Same inputs, same bytes: the export is a pure function.
  EXPECT_EQ(json, TraceSession::ChromeTraceJson({{"cell-a", &a},
                                                 {"cell-b", &b}}));
}

// ---------------------------------------------------------------------------
// CSV escaping shared by the timeline exporter and lobtool stats

TEST(CsvEscapeTest, PlainFieldsAreByteStable) {
  EXPECT_EQ(CsvEscape("eos.read"), "eos.read");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, SpecialCharactersQuotePerRfc4180) {
  EXPECT_EQ(CsvEscape("mean_op=100,EOS"), "\"mean_op=100,EOS\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvEscape("a\rb"), "\"a\rb\"");
}

#if LOB_TRACING

// ---------------------------------------------------------------------------
// Hook layer: SimDisk + OpScope recording

TEST(TraceHooksTest, OpScopeOpensOpSpanAndDiskRecordsIo) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  TraceSession session;
  disk.set_trace(&session);
  const AreaId area = disk.CreateArea();
  std::string page(cfg.page_size, 'x');
  {
    OpScope op(&disk, "outer");
    ASSERT_TRUE(disk.Write(area, 0, 1, page.data()).ok());
    {
      OpScope inner(&disk, "inner");
      ASSERT_TRUE(disk.Read(area, 0, 1, page.data()).ok());
    }
  }
  disk.set_trace(nullptr);
  ASSERT_TRUE(disk.Write(area, 1, 1, page.data()).ok());  // not recorded

  ASSERT_EQ(session.events().size(), 4u);
  const auto& ev = session.events();
  EXPECT_EQ(session.Name(ev[0].name_id), "outer");
  EXPECT_EQ(ev[0].kind, SpanKind::kOp);
  EXPECT_EQ(session.Name(ev[1].name_id), "disk.io");
  EXPECT_FALSE(ev[1].is_read);
  EXPECT_EQ(ev[1].parent, 0);
  // The nested scope's span carries the composed ledger label, so span
  // attribution and ledger attribution agree by construction.
  EXPECT_EQ(session.Name(ev[2].name_id), "outer.inner");
  EXPECT_EQ(ev[2].kind, SpanKind::kOp);
  EXPECT_EQ(ev[2].parent, 0);
  EXPECT_TRUE(ev[3].is_read);
  EXPECT_EQ(ev[3].parent, 2);
  // Span durations on the modeled clock: the op span covers its I/O.
  EXPECT_GE(ev[0].dur_ms, ev[1].dur_ms + ev[3].dur_ms - 1e-9);
}

TEST(TraceHooksTest, UnmeteredSectionSuspendsRecording) {
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Append(*id, Pattern(1, 100000)).ok());

  TraceSession session;
  sys.disk()->set_trace(&session);
  {
    StorageSystem::UnmeteredSection unmetered(&sys);
    std::string buf;
    ASSERT_TRUE(mgr->Read(*id, 0, 100000, &buf).ok());
  }
  EXPECT_TRUE(session.empty()) << "unmetered I/O must not produce spans";
  std::string buf;
  ASSERT_TRUE(mgr->Read(*id, 0, 1000, &buf).ok());
  sys.disk()->set_trace(nullptr);
  EXPECT_FALSE(session.empty());
}

// ---------------------------------------------------------------------------
// Conservation one level below the ledger, all three engines

class TraceConservationTest : public ::testing::TestWithParam<int> {
 protected:
  TraceConservationTest() {
    switch (GetParam()) {
      case 0:
        mgr_ = CreateEsmManager(&sys_, 4);
        break;
      case 1:
        mgr_ = CreateStarburstManager(&sys_);
        break;
      default:
        mgr_ = CreateEosManager(&sys_, 4);
        break;
    }
    sys_.disk()->set_trace(&session_);
  }
  ~TraceConservationTest() override { sys_.disk()->set_trace(nullptr); }

  StorageSystem sys_;
  TraceSession session_;
  std::unique_ptr<LargeObjectManager> mgr_;
};

TEST_P(TraceConservationTest, IoSpanMsMatchesLedgerPerOpLabel) {
  auto id = mgr_->Create();
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        mgr_->Append(*id, Pattern(static_cast<uint64_t>(i), 40000)).ok());
  }
  Rng rng(7);
  std::string buf;
  for (int i = 0; i < 24; ++i) {
    auto size = mgr_->Size(*id);
    ASSERT_TRUE(size.ok());
    const uint64_t sz = *size;
    const uint64_t off = sz == 0 ? 0 : rng.Next() % sz;
    switch (i % 4) {
      case 0:
        ASSERT_TRUE(
            mgr_->Read(*id, off, std::min<uint64_t>(8000, sz - off), &buf)
                .ok());
        break;
      case 1:
        ASSERT_TRUE(mgr_->Insert(*id, off, Pattern(rng.Next(), 3000)).ok());
        break;
      case 2:
        ASSERT_TRUE(
            mgr_->Delete(*id, off, std::min<uint64_t>(2500, sz - off)).ok());
        break;
      default: {
        const uint64_t len = std::min<uint64_t>(1500, sz - off);
        ASSERT_TRUE(mgr_->Replace(*id, off, Pattern(rng.Next(), len)).ok());
        break;
      }
    }
  }
  ASSERT_FALSE(session_.empty());
  EXPECT_EQ(session_.open_spans(), 0u);

  // Per label: the sum of disk.io span ms under that op's spans equals
  // the ms the attribution ledger charged to the label.
  const auto by_op = session_.IoMsByOp();
  const ObsRegistry* obs = sys_.obs();
  ASSERT_NE(obs, nullptr);
  double trace_total = 0;
  for (const auto& [label, ms] : by_op) {
    ASSERT_NE(label, "(unattributed)")
        << "all workload I/O runs inside an OpScope";
    ASSERT_EQ(obs->ops().count(label), 1u) << label;
    const double ledger_ms = obs->ops().at(label).io.ms;
    EXPECT_NEAR(ms, ledger_ms, 1e-6 * (1.0 + ledger_ms)) << label;
    trace_total += ms;
  }
  // Labels the ledger saw but the trace did not must have cost zero
  // (ops that never reached the disk).
  for (const auto& [label, rec] : obs->ops()) {
    if (by_op.count(label) == 0) {
      EXPECT_DOUBLE_EQ(rec.io.ms, 0.0) << label;
    }
  }
  // And the grand total matches the global modeled clock.
  const double global_ms = sys_.stats().ms;
  EXPECT_NEAR(trace_total, global_ms, 1e-6 * (1.0 + global_ms));
}

std::string TraceEngineName(const ::testing::TestParamInfo<int>& info) {
  return info.param == 0 ? "Esm" : info.param == 1 ? "Starburst" : "Eos";
}

INSTANTIATE_TEST_SUITE_P(Engines, TraceConservationTest,
                         ::testing::Values(0, 1, 2), TraceEngineName);

// ---------------------------------------------------------------------------
// Thread-safety by isolation: per-job sessions through the fan-out runner
// (scripts/check.sh runs this suite under TSan).

TEST(TraceConcurrencyTest, PerJobSessionsAreIndependentAndDeterministic) {
  ThreadPool pool(4);
  ParallelRunner runner(&pool);
  const size_t kJobs = 8;
  std::vector<std::unique_ptr<TraceSession>> sessions;
  for (size_t i = 0; i < kJobs; ++i) {
    sessions.push_back(std::make_unique<TraceSession>());
  }
  Mapped<double> mapped = runner.Map<double>(
      kJobs, [&sessions](size_t i, JobOutput* out) {
        StorageSystem sys;
        sys.disk()->set_trace(sessions[i].get());
        auto mgr = CreateEosManager(&sys, 4);
        auto id = mgr->Create();
        if (!id.ok()) throw std::runtime_error("create failed");
        MixSpec mix;
        mix.mean_op_bytes = 2000;
        mix.total_ops = 120;
        mix.window_ops = 40;
        auto built = BuildObject(&sys, mgr.get(), *id, 200000, 10000);
        if (!built.ok()) throw std::runtime_error("build failed");
        auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
        if (!points.ok()) throw std::runtime_error("mix failed");
        sys.disk()->set_trace(nullptr);
        out->SetModeledMs(sys.stats().ms);
        return sys.stats().ms;
      });
  // Identical jobs, private state: every job reproduces the same modeled
  // cost and the same trace bytes.
  const std::string first_json =
      TraceSession::ChromeTraceJson({{"job", sessions[0].get()}});
  EXPECT_FALSE(sessions[0]->empty());
  for (size_t i = 1; i < kJobs; ++i) {
    EXPECT_DOUBLE_EQ(mapped.values[i], mapped.values[0]) << i;
    EXPECT_EQ(TraceSession::ChromeTraceJson({{"job", sessions[i].get()}}),
              first_json)
        << i;
  }
}

#endif  // LOB_TRACING

// ---------------------------------------------------------------------------
// TimelineSampler (not compile-time gated)

TEST(TimelineTest, FinalSampleReproducesFinalMixPointUtilization) {
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  auto built = BuildObject(&sys, mgr.get(), *id, 400000, 10000);
  ASSERT_TRUE(built.ok());

  TimelineSampler sampler(100);
  MixSpec mix;
  mix.mean_op_bytes = 2000;
  mix.total_ops = 250;  // not a multiple of every_n: exercises the
  mix.window_ops = 50;  // explicit final-op sample
  mix.timeline = &sampler;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
  ASSERT_TRUE(points.ok());
  ASSERT_FALSE(points->empty());

  const auto& samples = sampler.samples();
  // op 0 baseline, ops 100 and 200, final op 250.
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().ops_done, 0u);
  EXPECT_EQ(samples[1].ops_done, 100u);
  EXPECT_EQ(samples.back().ops_done, 250u);
  // Figure 7/8 endpoint: the last sample's utilization is exactly the
  // last MixPoint's.
  EXPECT_DOUBLE_EQ(samples.back().utilization,
                   points->back().utilization);
  for (const TimelineSample& s : samples) {
    EXPECT_GT(s.object_bytes, 0u);
    EXPECT_GE(s.allocated_bytes, s.object_bytes);
    EXPECT_GT(s.segments, 0u);
    EXPECT_LE(s.seg_bytes_min, s.seg_bytes_max);
    EXPECT_GE(s.seg_bytes_mean, static_cast<double>(s.seg_bytes_min));
    EXPECT_LE(s.seg_bytes_mean, static_cast<double>(s.seg_bytes_max));
    EXPECT_GT(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
  }
  // The modeled clock is monotone across samples (sampling itself is
  // unmetered).
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].modeled_ms, samples[i - 1].modeled_ms);
  }
}

TEST(TimelineTest, SamplingDoesNotPerturbMeasuredCosts) {
  auto run = [](TimelineSampler* sampler) {
    StorageSystem sys;
    auto mgr = CreateEosManager(&sys, 4);
    auto id = mgr->Create();
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(BuildObject(&sys, mgr.get(), *id, 300000, 10000).ok());
    MixSpec mix;
    mix.mean_op_bytes = 2000;
    mix.total_ops = 200;
    mix.window_ops = 50;
    mix.timeline = sampler;
    auto points = RunUpdateMix(&sys, mgr.get(), *id, mix);
    EXPECT_TRUE(points.ok());
    return sys.stats().ms;
  };
  TimelineSampler sampler(25);
  EXPECT_DOUBLE_EQ(run(nullptr), run(&sampler));
}

TEST(TimelineTest, CsvExportEscapesLabelsAndEmitsOneRowPerSample) {
  TimelineSampler sampler(10);
  TimelineSample s;
  s.ops_done = 10;
  s.modeled_ms = 12.5;
  s.object_bytes = 1000;
  s.allocated_bytes = 2000;
  s.utilization = 0.5;
  s.segments = 3;
  s.seg_bytes_min = 100;
  s.seg_bytes_mean = 333.3;
  s.seg_bytes_max = 600;
  s.free_pages = 7;
  s.largest_free_extent = 4;
  s.free_extents[1] = 3;
  s.free_extents[4] = 1;
  sampler.Add(s);
  sampler.Add(s);

  std::string csv = TimelineSampler::CsvHeader();
  EXPECT_EQ(csv.find("config,ops,modeled_ms"), 0u);
  const size_t header_len = csv.size();
  sampler.AppendCsv("mean_op=100,EOS cks", &csv);
  const std::string body = csv.substr(header_len);
  // The comma-bearing label is quoted...
  EXPECT_EQ(body.find("\"mean_op=100,EOS cks\",10,"), 0u) << body;
  // ...one row per sample...
  EXPECT_EQ(std::count(body.begin(), body.end(), '\n'), 2);
  // ...and the free-extent histogram serializes as pages:count pairs.
  EXPECT_NE(body.find("1:3;4:1"), std::string::npos) << body;
}

}  // namespace
}  // namespace lob
