#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/factory.h"
#include "core/storage_system.h"
#include "workload/trace.h"

namespace lob {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/lobstore_" + tag + ".trace";
}

MixSpec SmallMix() {
  MixSpec mix;
  mix.mean_op_bytes = 2000;
  mix.total_ops = 200;
  mix.seed = 99;
  return mix;
}

TEST(TraceTest, GenerationIsDeterministic) {
  Trace a = GenerateUpdateMixTrace(100000, 10000, SmallMix());
  Trace b = GenerateUpdateMixTrace(100000, 10000, SmallMix());
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.ops[i].kind),
              static_cast<int>(b.ops[i].kind));
    EXPECT_EQ(a.ops[i].offset, b.ops[i].offset);
    EXPECT_EQ(a.ops[i].size, b.ops[i].size);
    EXPECT_EQ(a.ops[i].seed, b.ops[i].seed);
  }
  EXPECT_GT(a.BytesWritten(), 100000u);
  EXPECT_GT(a.BytesRead(), 0u);
}

TEST(TraceTest, ReplayMatchesExpectedContent) {
  const Trace trace = GenerateUpdateMixTrace(50000, 5000, SmallMix());
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  auto io = ApplyTrace(&sys, mgr.get(), *id, trace);
  ASSERT_TRUE(io.ok());
  EXPECT_GT(io->ms, 0.0);
  EXPECT_TRUE(VerifyTrace(mgr.get(), *id, trace).ok());
}

TEST(TraceTest, SameTraceSameContentAcrossEngines) {
  const Trace trace = GenerateUpdateMixTrace(80000, 8000, SmallMix());
  const std::string expect = ExpectedContent(trace);
  for (int engine = 0; engine < 3; ++engine) {
    StorageSystem sys;
    auto mgr = engine == 0   ? CreateEsmManager(&sys, 2)
               : engine == 1 ? CreateStarburstManager(&sys)
                             : CreateEosManager(&sys, 8);
    auto id = mgr->Create();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(ApplyTrace(&sys, mgr.get(), *id, trace).ok());
    std::string got;
    ASSERT_TRUE(mgr->Read(*id, 0, expect.size(), &got).ok());
    EXPECT_EQ(got, expect) << "engine " << engine;
  }
}

TEST(TraceTest, ReplayIsCostDeterministic) {
  const Trace trace = GenerateUpdateMixTrace(60000, 6000, SmallMix());
  double ms[2];
  for (int round = 0; round < 2; ++round) {
    StorageSystem sys;
    auto mgr = CreateEsmManager(&sys, 4);
    auto id = mgr->Create();
    ASSERT_TRUE(id.ok());
    auto io = ApplyTrace(&sys, mgr.get(), *id, trace);
    ASSERT_TRUE(io.ok());
    ms[round] = io->ms;
  }
  EXPECT_DOUBLE_EQ(ms[0], ms[1]) << "identical runs must cost identically";
}

TEST(TraceTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip");
  const Trace trace = GenerateUpdateMixTrace(30000, 3000, SmallMix());
  ASSERT_TRUE(SaveTrace(trace, path).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->ops.size(), trace.ops.size());
  EXPECT_EQ(ExpectedContent(*loaded), ExpectedContent(trace));
  std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingOrBadFile) {
  EXPECT_EQ(LoadTrace("/nonexistent/x.trace").status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("bad");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("explode 1 2 3\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadTrace(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceTest, BadTraceOpSurfacesPosition) {
  Trace trace;
  trace.ops.push_back({TraceOp::Kind::kAppend, 0, 100, 7});
  trace.ops.push_back({TraceOp::Kind::kDelete, 500, 100, 0});  // past end
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  Status s = ApplyTrace(&sys, mgr.get(), *id, trace).status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("trace op 1"), std::string::npos);
}

}  // namespace
}  // namespace lob
