// Fault model semantics (iomodel/fault_model.h, SimDisk::ArmFault):
// one-shot / sticky / transient lifetimes, direction, op-label and
// page-range filters, deterministic FaultPlan schedules, and the
// countdown contract (attributed foreground calls only, off-by-one-free,
// fired faults advance no counters).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.h"
#include "core/storage_system.h"
#include "iomodel/fault_model.h"
#include "iomodel/sim_disk.h"

namespace lob {
namespace {

class FaultModelTest : public ::testing::Test {
 protected:
  FaultModelTest() : disk_(cfg_) {
    area_ = disk_.CreateArea();
    buf_.resize(cfg_.page_size * 8);
  }

  Status WritePage(PageId page, uint32_t n_pages = 1) {
    return disk_.Write(area_, page, n_pages, buf_.data());
  }
  Status ReadPage(PageId page, uint32_t n_pages = 1) {
    return disk_.Read(area_, page, n_pages, buf_.data());
  }

  StorageConfig cfg_;
  SimDisk disk_;
  AreaId area_ = 0;
  std::vector<char> buf_;
};

TEST_F(FaultModelTest, OneShotFiresExactlyOnceAtK) {
  // Countdown contract: after_calls == k means exactly k matching calls
  // succeed and the (k+1)-th fails.
  FaultSpec fault;
  fault.kind = FaultKind::kOneShot;
  fault.after_calls = 3;
  fault.message = "boom";
  disk_.ArmFault(fault);
  EXPECT_EQ(disk_.armed_faults(), 1u);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(WritePage(static_cast<PageId>(i)).ok()) << "call " << i;
  }
  Status s = WritePage(3);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "boom");
  // Exhausted: everything works again.
  EXPECT_EQ(disk_.armed_faults(), 0u);
  EXPECT_TRUE(WritePage(4).ok());
}

TEST_F(FaultModelTest, FiredFaultDoesNotAdvanceCounters) {
  // The failed call "never happened": it neither advances the
  // foreground-call clock nor the countdowns of other armed faults.
  FaultSpec first;
  first.after_calls = 1;
  first.message = "first";
  FaultSpec second;
  second.after_calls = 2;
  second.message = "second";
  disk_.ArmFault(first);
  disk_.ArmFault(second);

  ASSERT_TRUE(WritePage(0).ok());
  EXPECT_EQ(disk_.foreground_calls(), 1u);
  Status s = WritePage(1);  // `first` fires
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "first");
  EXPECT_EQ(disk_.foreground_calls(), 1u) << "failed call must not count";

  // `second` still needs one more *successful* matching call before it
  // fires: the failed call did not advance its countdown.
  ASSERT_TRUE(WritePage(2).ok());
  s = WritePage(3);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "second");
}

TEST_F(FaultModelTest, StickyFailsUntilCleared) {
  FaultSpec fault;
  fault.kind = FaultKind::kSticky;
  fault.after_calls = 1;
  disk_.ArmFault(fault);

  ASSERT_TRUE(WritePage(0).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(WritePage(1).ok()) << "sticky fault must keep firing";
  }
  EXPECT_EQ(disk_.armed_faults(), 1u) << "sticky faults never exhaust";
  disk_.ClearFaults();
  EXPECT_EQ(disk_.armed_faults(), 0u);
  EXPECT_TRUE(WritePage(1).ok());
}

TEST_F(FaultModelTest, TransientAutoClearsAfterFailCalls) {
  FaultSpec fault;
  fault.kind = FaultKind::kTransient;
  fault.after_calls = 2;
  fault.fail_calls = 3;
  disk_.ArmFault(fault);

  ASSERT_TRUE(WritePage(0).ok());
  ASSERT_TRUE(WritePage(1).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(WritePage(2).ok()) << "transient failure " << i;
  }
  EXPECT_EQ(disk_.armed_faults(), 0u) << "transient fault auto-clears";
  EXPECT_TRUE(WritePage(2).ok());
}

TEST_F(FaultModelTest, DirectionFilterCountsOnlyMatchingCalls) {
  // A write-only fault: reads neither fire it nor advance its countdown.
  FaultSpec fault;
  fault.after_calls = 1;
  fault.match_reads = false;
  disk_.ArmFault(fault);

  ASSERT_TRUE(WritePage(0).ok());  // matching call #1 succeeds
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ReadPage(0).ok()) << "reads are exempt";
  }
  EXPECT_FALSE(WritePage(0).ok()) << "second write fails";
}

TEST_F(FaultModelTest, OpPrefixFilterMatchesLabeledCallsOnly) {
  FaultSpec fault;
  fault.after_calls = 0;
  fault.op_prefix = "esm.";
  disk_.ArmFault(fault);

  // Unlabeled and differently-labeled calls pass through.
  ASSERT_TRUE(WritePage(0).ok());
  disk_.set_current_op("starburst.append");
  ASSERT_TRUE(WritePage(1).ok());
  // A matching label trips it immediately.
  disk_.set_current_op("esm.append");
  EXPECT_FALSE(WritePage(2).ok());
  disk_.set_current_op(nullptr);
}

TEST_F(FaultModelTest, PageRangeFilterMatchesIntersectingCalls) {
  FaultSpec fault;
  fault.after_calls = 0;
  fault.match_range = true;
  fault.area = area_;
  fault.first_page = 10;
  fault.last_page = 12;
  disk_.ArmFault(fault);

  ASSERT_TRUE(WritePage(0, 4).ok()) << "disjoint run below the range";
  ASSERT_TRUE(WritePage(13, 2).ok()) << "disjoint run above the range";
  const AreaId other = disk_.CreateArea();
  ASSERT_TRUE(disk_.Write(other, 11, 1, buf_.data()).ok())
      << "same pages, different area";
  EXPECT_FALSE(WritePage(8, 4).ok()) << "run [8,12) intersects [10,12]";
}

TEST_F(FaultModelTest, SuspendedCallsNeitherFireNorAdvance) {
  // UnmeteredSection exemption: suspended calls always succeed — even
  // with a due sticky fault armed — and advance no countdown.
  FaultSpec fault;
  fault.kind = FaultKind::kSticky;
  fault.after_calls = 1;
  disk_.ArmFault(fault);

  ASSERT_TRUE(WritePage(0).ok());
  disk_.SuspendAttribution();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(WritePage(1).ok()) << "suspended calls always succeed";
  }
  EXPECT_EQ(disk_.foreground_calls(), 1u)
      << "suspended calls do not advance the foreground clock";
  disk_.ResumeAttribution();
  EXPECT_FALSE(WritePage(1).ok()) << "fault is still due once resumed";
}

TEST_F(FaultModelTest, LegacyClearRemovesOnlyLegacyFaults) {
  FaultSpec keep;
  keep.after_calls = 5;
  disk_.ArmFault(keep);
  disk_.InjectFailureAfter(3);
  EXPECT_EQ(disk_.armed_faults(), 2u);
  disk_.InjectFailureAfter(-1);
  EXPECT_EQ(disk_.armed_faults(), 1u)
      << "ArmFault-armed faults survive the legacy clear";
  disk_.ClearFaults();
  EXPECT_EQ(disk_.armed_faults(), 0u);
}

TEST_F(FaultModelTest, ForegroundCallsCountsSuccessesOnly) {
  ASSERT_TRUE(WritePage(0).ok());
  ASSERT_TRUE(ReadPage(0).ok());
  EXPECT_EQ(disk_.foreground_calls(), 2u);
  // Countdowns are relative to arming, wherever the global clock stands:
  // after_calls == 0 fails the very next call.
  FaultSpec fault;
  fault.after_calls = 0;
  disk_.ArmFault(fault);
  EXPECT_FALSE(WritePage(1).ok());
  EXPECT_EQ(disk_.foreground_calls(), 2u) << "failed calls do not count";
  EXPECT_TRUE(WritePage(1).ok());
  EXPECT_EQ(disk_.foreground_calls(), 3u);
}

TEST(FaultPlanTest, RandomOneShotsIsDeterministic) {
  const FaultPlan a = FaultPlan::RandomOneShots(42, 16, 1000);
  const FaultPlan b = FaultPlan::RandomOneShots(42, 16, 1000);
  ASSERT_EQ(a.faults.size(), 16u);
  for (size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].after_calls, b.faults[i].after_calls) << i;
    EXPECT_EQ(a.faults[i].kind, FaultKind::kOneShot);
    EXPECT_LE(a.faults[i].after_calls, 1000u);
  }
  const FaultPlan c = FaultPlan::RandomOneShots(43, 16, 1000);
  bool any_differs = false;
  for (size_t i = 0; i < c.faults.size(); ++i) {
    any_differs |= c.faults[i].after_calls != a.faults[i].after_calls;
  }
  EXPECT_TRUE(any_differs) << "different seeds should give different plans";
}

TEST(FaultPlanTest, ArmPlanArmsEveryFault) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  disk.ArmPlan(FaultPlan::RandomOneShots(7, 5, 100));
  EXPECT_EQ(disk.armed_faults(), 5u);
  disk.ClearFaults();
  EXPECT_EQ(disk.armed_faults(), 0u);
}

TEST(FaultModelSystemTest, UnmeteredSectionIsExemptEndToEnd) {
  // The StorageSystem-level wrapper used by fsck and the audits: a due
  // sticky fault must not leak into an UnmeteredSection's I/O.
  StorageSystem sys;
  std::vector<char> buf(sys.config().page_size);
  const AreaId area = sys.disk()->num_areas() - 1;
  FaultSpec fault;
  fault.kind = FaultKind::kSticky;
  fault.after_calls = 0;
  sys.disk()->ArmFault(fault);
  {
    StorageSystem::UnmeteredSection unmetered(&sys);
    EXPECT_TRUE(sys.disk()->Write(area, 0, 1, buf.data()).ok());
    EXPECT_TRUE(sys.disk()->Read(area, 0, 1, buf.data()).ok());
  }
  EXPECT_FALSE(sys.disk()->Write(area, 0, 1, buf.data()).ok());
  sys.disk()->ClearFaults();
}

}  // namespace
}  // namespace lob
