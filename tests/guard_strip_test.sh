#!/usr/bin/env bash
# Acceptance guard for the LOB_GUARDED_BY annotations on BufferPool:
# removing any one of them must demonstrably break the build gate.
#
# Under Clang, *deleting* an annotation only relaxes the analysis (the
# compiler cannot miss what is no longer claimed), so the enforced side of
# the contract is lob_lint's LOB009 member check: every mutable member of
# a mutex-holding class must carry a guard annotation. This test strips
# each LOB_GUARDED_BY from a copy of src/buffer/buffer_pool.h, one at a
# time, and asserts the linter reports the now-unguarded member.
#
# Usage: guard_strip_test.sh <repo-root>

set -u
ROOT="$1"
SRC="$ROOT/src/buffer/buffer_pool.h"
LINT="$ROOT/tools/lob_lint.py"
PY="${PYTHON:-python3}"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

n=$(grep -c "LOB_GUARDED_BY" "$SRC")
if [ "$n" -lt 1 ]; then
  echo "FAIL: no LOB_GUARDED_BY annotations found in $SRC"
  exit 1
fi
echo "stripping each of $n LOB_GUARDED_BY annotation(s) in turn"

# Baseline: the unmodified header (re-pinned to its real path) is clean.
base="$TMP/baseline.h"
{
  echo "// LOBLINT-FIXTURE-PATH: src/buffer/buffer_pool.h"
  cat "$SRC"
} >"$base"
if ! "$PY" "$LINT" --root "$ROOT" "$base" >"$TMP/baseline.out" 2>&1; then
  echo "FAIL: pristine buffer_pool.h is not lint-clean:"
  cat "$TMP/baseline.out"
  exit 1
fi

fail=0
for i in $(seq 1 "$n"); do
  stripped="$TMP/stripped_$i.h"
  {
    echo "// LOBLINT-FIXTURE-PATH: src/buffer/buffer_pool.h"
    awk -v k="$i" '
      {
        line = $0
        out = ""
        while (match(line, /LOB_GUARDED_BY\([^)]*\)/)) {
          ++c
          if (c == k) {
            out = out substr(line, 1, RSTART - 1)
          } else {
            out = out substr(line, 1, RSTART + RLENGTH - 1)
          }
          line = substr(line, RSTART + RLENGTH)
        }
        print out line
      }' "$SRC"
  } >"$stripped"
  if "$PY" "$LINT" --root "$ROOT" "$stripped" >"$TMP/out_$i" 2>&1; then
    echo "FAIL: stripping annotation #$i went undetected"
    fail=1
  elif ! grep -q "LOB009" "$TMP/out_$i"; then
    echo "FAIL: stripping annotation #$i tripped something other than" \
         "LOB009:"
    cat "$TMP/out_$i"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "guard-strip: all $n annotation removals were caught by LOB009"
