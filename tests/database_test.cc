// Tests for the catalog, disk image persistence, and the Database shell.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/database.h"
#include "iomodel/disk_image.h"

namespace lob {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/lobstore_" + tag + ".img";
}

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

// ----------------------------------------------------------- ObjectCatalog

TEST(ObjectCatalogTest, PutGetRemove) {
  StorageSystem sys;
  ObjectCatalog cat(&sys);
  ASSERT_TRUE(cat.Create().ok());
  ASSERT_TRUE(cat.Put("alpha", 101).ok());
  ASSERT_TRUE(cat.Put("beta", 202).ok());
  auto id = cat.Get("alpha");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 101u);
  auto has = cat.Contains("beta");
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
  ASSERT_TRUE(cat.Remove("alpha").ok());
  EXPECT_EQ(cat.Get("alpha").status().code(), StatusCode::kNotFound);
  auto size = cat.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1u);
}

TEST(ObjectCatalogTest, RejectsDuplicatesAndBadNames) {
  StorageSystem sys;
  ObjectCatalog cat(&sys);
  ASSERT_TRUE(cat.Create().ok());
  ASSERT_TRUE(cat.Put("x", 1).ok());
  EXPECT_EQ(cat.Put("x", 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.Put("", 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.Put(std::string(300, 'n'), 4).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.Remove("missing").code(), StatusCode::kNotFound);
}

TEST(ObjectCatalogTest, GrowsAcrossPages) {
  StorageSystem sys;
  ObjectCatalog cat(&sys);
  ASSERT_TRUE(cat.Create().ok());
  // Enough long-named entries to overflow several 4K pages.
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    std::string name = "object_with_a_rather_long_name_" + std::to_string(i);
    ASSERT_TRUE(cat.Put(name, static_cast<ObjectId>(1000 + i)).ok()) << i;
  }
  auto size = cat.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += 37) {
    std::string name = "object_with_a_rather_long_name_" + std::to_string(i);
    auto id = cat.Get(name);
    ASSERT_TRUE(id.ok()) << name;
    EXPECT_EQ(*id, static_cast<ObjectId>(1000 + i));
  }
  // Duplicate detection works across chained pages too.
  EXPECT_EQ(cat.Put("object_with_a_rather_long_name_499", 1).code(),
            StatusCode::kInvalidArgument);
  auto list = cat.List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), static_cast<size_t>(n));
}

TEST(ObjectCatalogTest, DropFreesPages) {
  StorageSystem sys;
  ObjectCatalog cat(&sys);
  ASSERT_TRUE(cat.Create().ok());
  const uint64_t before = sys.meta_area()->allocated_pages();
  for (int i = 0; i < 300; ++i) {
    // Long names force the catalog to chain additional pages.
    ASSERT_TRUE(
        cat.Put("a_long_enough_object_name_to_fill_pages_quickly_" +
                    std::to_string(i),
                1)
            .ok());
  }
  ASSERT_GT(sys.meta_area()->allocated_pages(), before);
  ASSERT_TRUE(cat.Drop().ok());
  EXPECT_EQ(sys.meta_area()->allocated_pages(), before - 1)
      << "all catalog pages including the head must be freed";
}

// --------------------------------------------------------------- DiskImage

TEST(DiskImageTest, RoundTripsPages) {
  const std::string path = TempPath("roundtrip");
  StorageConfig cfg;
  {
    SimDisk disk(cfg);
    AreaId a = disk.CreateArea();
    AreaId b = disk.CreateArea();
    std::string page(4096, 'A');
    ASSERT_TRUE(disk.Write(a, 3, 1, page.data()).ok());
    page.assign(4096, 'B');
    ASSERT_TRUE(disk.Write(b, 7, 1, page.data()).ok());
    ASSERT_TRUE(SaveDiskImage(disk, path).ok());
  }
  SimDisk loaded(cfg);
  ASSERT_TRUE(LoadDiskImage(&loaded, path).ok());
  EXPECT_EQ(loaded.num_areas(), 2u);
  ASSERT_NE(loaded.PeekPage(0, 3), nullptr);
  EXPECT_EQ(loaded.PeekPage(0, 3)[0], 'A');
  ASSERT_NE(loaded.PeekPage(1, 7), nullptr);
  EXPECT_EQ(loaded.PeekPage(1, 7)[0], 'B');
  EXPECT_EQ(loaded.PeekPage(0, 0), nullptr) << "sparse pages stay absent";
  EXPECT_EQ(loaded.stats().Seeks(), 0u) << "loading is not simulated I/O";
  std::remove(path.c_str());
}

TEST(DiskImageTest, RejectsGarbage) {
  const std::string path = TempPath("garbage");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an image", f);
    std::fclose(f);
  }
  StorageConfig cfg;
  SimDisk disk(cfg);
  EXPECT_FALSE(LoadDiskImage(&disk, path).ok());
  std::remove(path.c_str());
  SimDisk disk2(cfg);
  EXPECT_EQ(LoadDiskImage(&disk2, "/nonexistent/lob.img").code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Database

TEST(DatabaseTest, CreateNamedObjectsAllEngines) {
  auto db = Database::Create();
  ASSERT_TRUE(db.ok());
  auto esm = (*db)->CreateObject("pic", Engine::kEsm, 4);
  auto sb = (*db)->CreateObject("song", Engine::kStarburst);
  auto eos = (*db)->CreateObject("doc", Engine::kEos, 16);
  ASSERT_TRUE(esm.ok());
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(eos.ok());
  auto e1 = (*db)->ObjectEngine(*esm);
  auto e2 = (*db)->ObjectEngine(*sb);
  auto e3 = (*db)->ObjectEngine(*eos);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(*e1, Engine::kEsm);
  EXPECT_EQ(*e2, Engine::kStarburst);
  EXPECT_EQ(*e3, Engine::kEos);
  auto found = (*db)->Lookup("song");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *sb);
}

TEST(DatabaseTest, DuplicateNameRollsBackObject) {
  auto db = Database::Create();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateObject("x", Engine::kEos).ok());
  const uint64_t pages = (*db)->sys()->meta_area()->allocated_pages();
  EXPECT_FALSE((*db)->CreateObject("x", Engine::kEsm).ok());
  EXPECT_EQ((*db)->sys()->meta_area()->allocated_pages(), pages)
      << "failed create must not leak the object root";
}

TEST(DatabaseTest, DuplicateNameRollbackSurvivesInjectedFailure) {
  // The duplicate-name rollback destroys the freshly created object. If
  // that rollback itself hits an I/O failure, CreateObject must still
  // return the original bind error (never crash, never mask it with the
  // rollback error), and the database must keep working once the fault
  // clears. Sweep the fault depth so the failure lands at every point of
  // the create/bind/rollback sequence at least once.
  for (int64_t depth = 0; depth < 12; ++depth) {
    auto db = Database::Create();
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateObject("x", Engine::kEos).ok());
    (*db)->sys()->disk()->InjectFailureAfter(depth);
    auto dup = (*db)->CreateObject("x", Engine::kEsm);
    EXPECT_FALSE(dup.ok()) << "depth " << depth;
    (*db)->sys()->disk()->InjectFailureAfter(-1);
    // The database stays usable: the original binding is intact and new
    // names can still be created.
    auto found = (*db)->Lookup("x");
    ASSERT_TRUE(found.ok()) << "depth " << depth;
    auto fresh = (*db)->CreateObject("y", Engine::kEos);
    EXPECT_TRUE(fresh.ok()) << "depth " << depth;
  }
}

TEST(DatabaseTest, DropObjectFreesAndUnbinds) {
  auto db = Database::Create();
  ASSERT_TRUE(db.ok());
  auto id = (*db)->CreateObject("blob", Engine::kEos, 4);
  ASSERT_TRUE(id.ok());
  auto mgr = (*db)->ManagerForObject(*id);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE((*mgr)->Append(*id, Pattern(1, 100000)).ok());
  ASSERT_GT((*db)->sys()->leaf_area()->allocated_pages(), 0u);
  ASSERT_TRUE((*db)->DropObject("blob").ok());
  EXPECT_EQ((*db)->sys()->leaf_area()->allocated_pages(), 0u);
  EXPECT_EQ((*db)->Lookup("blob").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, SaveAndReopenPreservesEverything) {
  const std::string path = TempPath("reopen");
  const std::string song = Pattern(10, 300000);
  const std::string doc = Pattern(11, 120000);
  {
    auto db = Database::Create();
    ASSERT_TRUE(db.ok());
    auto sb = (*db)->CreateObject("song", Engine::kStarburst);
    auto eos = (*db)->CreateObject("doc", Engine::kEos, 4);
    ASSERT_TRUE(sb.ok());
    ASSERT_TRUE(eos.ok());
    auto m1 = (*db)->ManagerFor(Engine::kStarburst);
    auto m2 = (*db)->ManagerFor(Engine::kEos, 4);
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(m2.ok());
    ASSERT_TRUE((*m1)->Append(*sb, song).ok());
    ASSERT_TRUE((*m2)->Append(*eos, doc).ok());
    ASSERT_TRUE((*m2)->Insert(*eos, 5000, "EDITED").ok());
    ASSERT_TRUE((*db)->Save(path).ok());
  }
  auto db = Database::Open(path);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto sb = (*db)->Lookup("song");
  auto eos = (*db)->Lookup("doc");
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(eos.ok());
  auto m1 = (*db)->ManagerForObject(*sb);
  auto m2 = (*db)->ManagerForObject(*eos, 4);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  std::string got;
  ASSERT_TRUE((*m1)->Read(*sb, 0, song.size(), &got).ok());
  EXPECT_EQ(got, song);
  std::string expect_doc = doc;
  expect_doc.insert(5000, "EDITED");
  ASSERT_TRUE((*m2)->Read(*eos, 0, expect_doc.size(), &got).ok());
  EXPECT_EQ(got, expect_doc);
  // The reopened database can keep allocating without clobbering old data.
  auto fresh = (*db)->CreateObject("new", Engine::kEsm, 1);
  ASSERT_TRUE(fresh.ok());
  auto m3 = (*db)->ManagerForObject(*fresh, 1);
  ASSERT_TRUE(m3.ok());
  ASSERT_TRUE((*m3)->Append(*fresh, Pattern(12, 50000)).ok());
  ASSERT_TRUE((*m1)->Read(*sb, 0, song.size(), &got).ok());
  EXPECT_EQ(got, song) << "new allocations must not overwrite old objects";
  ASSERT_TRUE((*m2)->Validate(*eos).ok());
  std::remove(path.c_str());
}

TEST(DatabaseTest, ReopenedAllocatorStateMatches) {
  const std::string path = TempPath("alloc");
  uint64_t leaf_pages_before = 0, meta_pages_before = 0;
  {
    auto db = Database::Create();
    ASSERT_TRUE(db.ok());
    auto id = (*db)->CreateObject("o", Engine::kEsm, 4);
    ASSERT_TRUE(id.ok());
    auto mgr = (*db)->ManagerFor(Engine::kEsm, 4);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Append(*id, Pattern(13, 777777)).ok());
    leaf_pages_before = (*db)->sys()->leaf_area()->allocated_pages();
    meta_pages_before = (*db)->sys()->meta_area()->allocated_pages();
    ASSERT_TRUE((*db)->Save(path).ok());
  }
  auto db = Database::Open(path);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->sys()->leaf_area()->allocated_pages(), leaf_pages_before);
  EXPECT_EQ((*db)->sys()->meta_area()->allocated_pages(), meta_pages_before);
  EXPECT_TRUE((*db)->sys()->leaf_area()->CheckInvariants());
  EXPECT_TRUE((*db)->sys()->meta_area()->CheckInvariants());
  std::remove(path.c_str());
}

TEST(DatabaseTest, OpenMissingFileFails) {
  EXPECT_FALSE(Database::Open("/nonexistent/db.img").ok());
}

TEST(DatabaseTest, RejectsZeroParameter) {
  auto db = Database::Create();
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->ManagerFor(Engine::kEsm, 0).ok());
  EXPECT_TRUE((*db)->ManagerFor(Engine::kStarburst, 0).ok());
}

}  // namespace
}  // namespace lob
