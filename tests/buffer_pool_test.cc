#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/rng.h"
#include "iomodel/sim_disk.h"

namespace lob {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(cfg_), pool_(&disk_, cfg_) { area_ = disk_.CreateArea(); }

  // Writes `pages` pages of recognizable content directly to disk.
  void Seed(PageId first, uint32_t pages) {
    std::vector<char> buf(static_cast<size_t>(pages) * 4096);
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<char>('a' + (first * 4096 + i) % 23);
    }
    ASSERT_TRUE(disk_.Write(area_, first, pages, buf.data()).ok());
    disk_.ResetStats();
  }

  char ExpectedByte(uint64_t abs_byte) const {
    return static_cast<char>('a' + abs_byte % 23);
  }

  StorageConfig cfg_;
  SimDisk disk_;
  BufferPool pool_;
  AreaId area_ = 0;
};

TEST_F(BufferPoolTest, FixMissThenHit) {
  Seed(0, 1);
  {
    auto g = pool_.FixPage(area_, 0, FixMode::kRead);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], ExpectedByte(0));
  }
  EXPECT_EQ(disk_.stats().read_calls, 1u);
  {
    auto g = pool_.FixPage(area_, 0, FixMode::kRead);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(disk_.stats().read_calls, 1u) << "second fix must be a hit";
  EXPECT_EQ(pool_.hits(), 1u);
  EXPECT_EQ(pool_.misses(), 1u);
}

TEST_F(BufferPoolTest, NewPageDoesNoRead) {
  auto g = pool_.FixPage(area_, 7, FixMode::kNew);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(disk_.stats().read_calls, 0u);
  EXPECT_EQ(g->data()[100], 0);
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  // Fill the pool with 12 distinct dirty pages, then fix a 13th: the LRU
  // one must be written back.
  for (PageId p = 0; p < 12; ++p) {
    auto g = pool_.FixPage(area_, p, FixMode::kNew);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = static_cast<char>(p + 1);
    g->MarkDirty();
  }
  EXPECT_EQ(disk_.stats().write_calls, 0u);
  auto g = pool_.FixPage(area_, 100, FixMode::kNew);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u);
  std::vector<char> buf(4096);
  ASSERT_TRUE(disk_.Read(area_, 0, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 1) << "page 0 (the LRU victim) must be on disk";
}

TEST_F(BufferPoolTest, CleanVictimsPreferredOverDirty) {
  // 11 dirty pages + 1 clean page; the clean one must be evicted first
  // even though it is not the least recently used.
  Seed(50, 1);
  for (PageId p = 0; p < 11; ++p) {
    auto g = pool_.FixPage(area_, p, FixMode::kNew);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
  }
  { auto g = pool_.FixPage(area_, 50, FixMode::kRead); ASSERT_TRUE(g.ok()); }
  disk_.ResetStats();
  { auto g = pool_.FixPage(area_, 99, FixMode::kNew); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(disk_.stats().write_calls, 0u) << "clean page 50 evicted for free";
  EXPECT_FALSE(pool_.IsCached(area_, 50));
}

TEST_F(BufferPoolTest, AllPinnedFailsGracefully) {
  std::vector<PageGuard> guards;
  for (PageId p = 0; p < 12; ++p) {
    auto g = pool_.FixPage(area_, p, FixMode::kNew);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  auto g = pool_.FixPage(area_, 100, FixMode::kNew);
  EXPECT_EQ(g.status().code(), StatusCode::kNoSpace);
}

TEST_F(BufferPoolTest, SmallSegmentReadIsOneCallAndBuffered) {
  Seed(0, 4);
  std::vector<char> out(4 * 4096);
  // 4-page segment, whole read: at most max_pool_segment_pages -> buffered
  // in a single I/O call.
  ASSERT_TRUE(
      pool_.ReadSegmentRange(area_, 0, 4 * 4096, 0, 4 * 4096, out.data()).ok());
  EXPECT_EQ(disk_.stats().read_calls, 1u);
  EXPECT_EQ(disk_.stats().pages_read, 4u);
  EXPECT_DOUBLE_EQ(disk_.stats().ms, 33 + 16);
  for (uint64_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], ExpectedByte(i));
  }
  // All four pages now cached: re-read costs nothing.
  disk_.ResetStats();
  ASSERT_TRUE(
      pool_.ReadSegmentRange(area_, 0, 4 * 4096, 100, 5000, out.data()).ok());
  EXPECT_EQ(disk_.stats().read_calls, 0u);
}

TEST_F(BufferPoolTest, LargeSegmentReadBypassesPool) {
  Seed(0, 8);
  std::vector<char> out(8 * 4096);
  ASSERT_TRUE(
      pool_.ReadSegmentRange(area_, 0, 8 * 4096, 0, 8 * 4096, out.data()).ok());
  // Aligned large read: one direct call, nothing cached.
  EXPECT_EQ(disk_.stats().read_calls, 1u);
  EXPECT_EQ(disk_.stats().pages_read, 8u);
  for (PageId p = 0; p < 8; ++p) EXPECT_FALSE(pool_.IsCached(area_, p));
  for (uint64_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], ExpectedByte(i));
  }
}

TEST_F(BufferPoolTest, ThreeStepIoOnBoundaryMismatch) {
  // Paper Figure 4: a byte range inside an 8-page segment starting and
  // ending mid-page. First and last blocks travel through the pool; the
  // middle blocks go directly to the caller's buffer.
  Seed(0, 8);
  const uint64_t off = 1000;
  const uint64_t len = 6 * 4096;  // ends mid-page 6
  std::vector<char> out(len);
  ASSERT_TRUE(pool_.ReadSegmentRange(area_, 0, 8 * 4096, off, len, out.data())
                  .ok());
  // 3 calls: page 0 (via pool), pages 1..5 (direct), page 6 (via pool).
  EXPECT_EQ(disk_.stats().read_calls, 3u);
  EXPECT_EQ(disk_.stats().pages_read, 7u);
  EXPECT_TRUE(pool_.IsCached(area_, 0));
  EXPECT_TRUE(pool_.IsCached(area_, 6));
  EXPECT_FALSE(pool_.IsCached(area_, 3));
  for (uint64_t i = 0; i < len; ++i) {
    ASSERT_EQ(out[i], ExpectedByte(off + i));
  }
}

TEST_F(BufferPoolTest, SmallWriteStaysDirtyUntilFlushRun) {
  std::string data(2 * 4096, 'Q');
  ASSERT_TRUE(
      pool_.WriteSegmentRange(area_, 0, 0, 0, data.size(), data.data()).ok());
  EXPECT_EQ(disk_.stats().write_calls, 0u) << "write staged in the pool";
  EXPECT_TRUE(pool_.IsDirty(area_, 0));
  EXPECT_TRUE(pool_.IsDirty(area_, 1));
  ASSERT_TRUE(pool_.FlushRun(area_, 0, 2).ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u) << "one sequential call";
  EXPECT_EQ(disk_.stats().pages_written, 2u);
  std::vector<char> buf(2 * 4096);
  ASSERT_TRUE(disk_.Read(area_, 0, 2, buf.data()).ok());
  EXPECT_EQ(buf[0], 'Q');
  EXPECT_EQ(buf[2 * 4096 - 1], 'Q');
}

TEST_F(BufferPoolTest, LargeWriteGoesDirectInOneCall) {
  std::string data(6 * 4096, 'Z');
  ASSERT_TRUE(
      pool_.WriteSegmentRange(area_, 0, 0, 0, data.size(), data.data()).ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u);
  EXPECT_EQ(disk_.stats().pages_written, 6u);
  std::vector<char> buf(4096);
  ASSERT_TRUE(disk_.Read(area_, 5, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST_F(BufferPoolTest, PartialWritePreservesValidBytes) {
  // Write bytes 100..200 of a page holding 300 valid bytes: a
  // read-modify-write must preserve bytes outside the written interval.
  std::string initial(300, 'A');
  ASSERT_TRUE(
      pool_.WriteSegmentRange(area_, 0, 0, 0, initial.size(), initial.data())
          .ok());
  ASSERT_TRUE(pool_.FlushRun(area_, 0, 1).ok());
  ASSERT_TRUE(pool_.Invalidate(area_, 0, 1).ok());
  disk_.ResetStats();

  std::string patch(100, 'B');
  ASSERT_TRUE(
      pool_.WriteSegmentRange(area_, 0, 300, 100, patch.size(), patch.data())
          .ok());
  EXPECT_EQ(disk_.stats().read_calls, 1u) << "read-modify-write";
  ASSERT_TRUE(pool_.FlushRun(area_, 0, 1).ok());
  std::vector<char> buf(4096);
  ASSERT_TRUE(disk_.Read(area_, 0, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'A');
  EXPECT_EQ(buf[99], 'A');
  EXPECT_EQ(buf[100], 'B');
  EXPECT_EQ(buf[199], 'B');
  EXPECT_EQ(buf[200], 'A');
  EXPECT_EQ(buf[299], 'A');
}

TEST_F(BufferPoolTest, AppendBeyondValidBytesAvoidsRead) {
  // Appending to a segment whose written pages are already flushed and
  // evicted: pages fully past seg_valid_bytes need no read.
  std::string data(4096, 'C');
  ASSERT_TRUE(
      pool_.WriteSegmentRange(area_, 0, 0, 4096, data.size(), data.data())
          .ok());
  EXPECT_EQ(disk_.stats().read_calls, 0u)
      << "page 1 holds no valid bytes -> no read-modify-write";
}

TEST_F(BufferPoolTest, ReadPastValidBytesRejected) {
  std::vector<char> out(10);
  Status s = pool_.ReadSegmentRange(area_, 0, 100, 95, 10, out.data());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST_F(BufferPoolTest, UnbufferedWriteKeepsCachedCopiesCoherent) {
  Seed(0, 8);
  // Cache page 0 via a small read.
  std::vector<char> tmp(4096);
  ASSERT_TRUE(pool_.ReadSegmentRange(area_, 0, 8 * 4096, 0, 4096, tmp.data())
                  .ok());
  ASSERT_TRUE(pool_.IsCached(area_, 0));
  // Large direct write overwrites pages 0..5.
  std::string data(6 * 4096, 'W');
  ASSERT_TRUE(
      pool_.WriteSegmentRange(area_, 0, 8 * 4096, 0, data.size(), data.data())
          .ok());
  // The cached copy of page 0 must now show the new content.
  disk_.ResetStats();
  ASSERT_TRUE(pool_.ReadSegmentRange(area_, 0, 8 * 4096, 0, 4096, tmp.data())
                  .ok());
  EXPECT_EQ(disk_.stats().read_calls, 0u);
  EXPECT_EQ(tmp[0], 'W');
}

TEST_F(BufferPoolTest, DirectReadFlushesOverlappingDirtyPages) {
  // A dirty cached page inside the middle of a large direct read must be
  // written back first so the direct read sees current bytes.
  std::string page(4096, 'D');
  ASSERT_TRUE(
      pool_.WriteSegmentRange(area_, 3, 0, 0, page.size(), page.data()).ok());
  ASSERT_TRUE(pool_.IsDirty(area_, 3));
  std::vector<char> out(8 * 4096);
  ASSERT_TRUE(
      pool_.ReadSegmentRange(area_, 0, 8 * 4096, 0, 8 * 4096, out.data()).ok());
  EXPECT_EQ(out[3 * 4096], 'D');
}

TEST_F(BufferPoolTest, FlushAllWritesEveryDirtyPage) {
  for (PageId p : {2u, 3u, 9u}) {
    auto g = pool_.FixPage(area_, p, FixMode::kNew);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 'F';
    g->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  // Pages 2,3 contiguous -> one call; page 9 -> another.
  EXPECT_EQ(disk_.stats().write_calls, 2u);
  EXPECT_EQ(disk_.stats().pages_written, 3u);
  EXPECT_FALSE(pool_.IsDirty(area_, 2));
}

TEST_F(BufferPoolTest, InvalidateDropsWithoutWriteback) {
  auto g = pool_.FixPage(area_, 4, FixMode::kNew);
  ASSERT_TRUE(g.ok());
  g->MarkDirty();
  g->Release();
  ASSERT_TRUE(pool_.Invalidate(area_, 4, 1).ok());
  EXPECT_EQ(disk_.stats().write_calls, 0u);
  EXPECT_FALSE(pool_.IsCached(area_, 4));
}

TEST_F(BufferPoolTest, RunLoadFallsBackWhenWindowUnavailable) {
  // Pin 10 of the 12 frames with alternating pages so no 4-slot window of
  // unpinned frames exists; a 4-page buffered read must fall back to
  // page-at-a-time fetching (4 seeks) yet still return correct bytes.
  Seed(100, 4);
  std::vector<PageGuard> pins;
  for (PageId p = 0; p < 10; ++p) {
    auto g = pool_.FixPage(area_, 200 + p, FixMode::kNew);
    ASSERT_TRUE(g.ok());
    pins.push_back(std::move(*g));
  }
  disk_.ResetStats();
  std::vector<char> out(4 * 4096);
  ASSERT_TRUE(
      pool_.ReadSegmentRange(area_, 100, 4 * 4096, 0, 4 * 4096, out.data())
          .ok());
  EXPECT_GE(disk_.stats().read_calls, 2u) << "fallback costs extra seeks";
  for (uint64_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], ExpectedByte(100 * 4096 + i));
  }
}

TEST_F(BufferPoolTest, WriteFreshSegmentIsOneCallAndCoherent) {
  // Cache page 7, then write a fresh 3-page segment covering it: one I/O
  // call, and the cached copy must show the new bytes.
  Seed(7, 1);
  { auto g = pool_.FixPage(area_, 7, FixMode::kRead); ASSERT_TRUE(g.ok()); }
  disk_.ResetStats();
  std::string data(3 * 4096 - 100, 'F');
  ASSERT_TRUE(pool_.WriteFreshSegment(area_, 6, data.data(), data.size()).ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u);
  EXPECT_EQ(disk_.stats().pages_written, 3u);
  std::vector<char> out(4096);
  ASSERT_TRUE(pool_.ReadSegmentRange(area_, 7, 4096, 0, 4096, out.data()).ok());
  EXPECT_EQ(disk_.stats().read_calls, 0u) << "still cached";
  EXPECT_EQ(out[0], 'F');
  // Zero padding beyond the content in the final page.
  std::vector<char> page(4096);
  ASSERT_TRUE(disk_.Read(area_, 8, 1, page.data()).ok());
  EXPECT_EQ(page[4095], 0);
}

TEST_F(BufferPoolTest, FlushRunInterleavedCleanAndEvictedPages) {
  // dirty 0,1 | clean cached 2 | dirty 3,4 | uncached 5 | dirty 6:
  // FlushRun over [0,7) must issue exactly three sequential calls covering
  // the three maximal dirty runs and skip the clean/uncached holes.
  for (PageId p : {0u, 1u, 3u, 4u, 6u}) {
    auto g = pool_.FixPage(area_, p, FixMode::kNew);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = static_cast<char>('a' + p);
    g->MarkDirty();
  }
  {
    auto g = pool_.FixPage(area_, 2, FixMode::kNew);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 'c';
    g->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushRun(area_, 2, 1).ok());  // page 2 now clean, cached
  ASSERT_TRUE(pool_.IsCached(area_, 2));
  ASSERT_FALSE(pool_.IsDirty(area_, 2));
  ASSERT_FALSE(pool_.IsCached(area_, 5));
  disk_.ResetStats();

  ASSERT_TRUE(pool_.FlushRun(area_, 0, 7).ok());
  EXPECT_EQ(disk_.stats().write_calls, 3u)
      << "runs {0,1}, {3,4}, {6} -> three seeks";
  EXPECT_EQ(disk_.stats().pages_written, 5u);
  for (PageId p : {0u, 1u, 3u, 4u, 6u}) {
    EXPECT_FALSE(pool_.IsDirty(area_, p)) << "page " << p;
    std::vector<char> buf(4096);
    ASSERT_TRUE(disk_.Read(area_, p, 1, buf.data()).ok());
    EXPECT_EQ(buf[0], static_cast<char>('a' + p)) << "page " << p;
  }
  // A second FlushRun over the same range finds everything clean.
  disk_.ResetStats();
  ASSERT_TRUE(pool_.FlushRun(area_, 0, 7).ok());
  EXPECT_EQ(disk_.stats().write_calls, 0u);
}

TEST_F(BufferPoolTest, FlushRunAllCleanOrUncachedWritesNothing) {
  Seed(30, 2);
  {
    auto g = pool_.FixPage(area_, 30, FixMode::kRead);
    ASSERT_TRUE(g.ok());
  }
  disk_.ResetStats();
  ASSERT_TRUE(pool_.FlushRun(area_, 28, 6).ok());
  EXPECT_EQ(disk_.stats().write_calls, 0u)
      << "clean cached and uncached pages alike cost nothing";
}

// Property: random reads/writes through the pool match a byte-array model.
TEST_F(BufferPoolTest, RandomOpsMatchReferenceModel) {
  const uint64_t kSegPages = 16;
  const uint64_t kBytes = kSegPages * 4096;
  std::string model(kBytes, '\0');
  Rng rng(42);
  uint64_t valid = 0;
  for (int step = 0; step < 400; ++step) {
    const bool do_write = valid == 0 || rng.Bernoulli(0.5);
    if (do_write) {
      // Grow-or-overwrite write at a random offset <= valid.
      uint64_t off = rng.Uniform(0, valid);
      uint64_t len = rng.Uniform(1, 9000);
      if (off + len > kBytes) len = kBytes - off;
      if (len == 0) continue;
      std::string data(len, '\0');
      for (auto& c : data) c = static_cast<char>('A' + rng.Uniform(0, 25));
      ASSERT_TRUE(pool_
                      .WriteSegmentRange(area_, 0, valid, off, len,
                                         data.data())
                      .ok());
      model.replace(off, len, data);
      valid = std::max(valid, off + len);
      ASSERT_TRUE(pool_.FlushRun(area_, 0, kSegPages).ok());
    } else {
      uint64_t off = rng.Uniform(0, valid - 1);
      uint64_t len = rng.Uniform(1, valid - off);
      std::vector<char> out(len);
      ASSERT_TRUE(
          pool_.ReadSegmentRange(area_, 0, valid, off, len, out.data()).ok());
      ASSERT_EQ(std::memcmp(out.data(), model.data() + off, len), 0)
          << "step " << step << " off " << off << " len " << len;
    }
  }
}

// ------------------------------------------------- deterministic iteration
//
// The pool's lookup table is an unordered_map; nothing may let its hash
// order reach observable output. CachedPagesSorted() is the sanctioned
// ordered enumeration: whatever order pages were fixed in, the enumeration
// and the I/O sequence of a subsequent FlushAll must be identical.

TEST_F(BufferPoolTest, CachedEnumerationIndependentOfInsertionOrder) {
  // Distinct (area, page) keys spread over two areas, fixed in several
  // permuted orders into fresh pools. The pool holds 12 frames; 8 pages
  // are fixed so no eviction perturbs the cached set.
  const AreaId area2 = disk_.CreateArea();
  const std::vector<std::pair<AreaId, PageId>> keys = {
      {area_, 7}, {area_, 2}, {area2, 3}, {area_, 11},
      {area2, 0}, {area_, 4}, {area2, 9}, {area_, 0}};
  const std::vector<std::vector<size_t>> orders = {
      {0, 1, 2, 3, 4, 5, 6, 7},
      {7, 6, 5, 4, 3, 2, 1, 0},
      {3, 0, 7, 4, 1, 6, 2, 5},
      {5, 2, 6, 1, 7, 0, 4, 3}};

  std::vector<BufferPool::CachedPage> expected;
  IoStats expected_flush_delta;
  for (size_t variant = 0; variant < orders.size(); ++variant) {
    SimDisk disk(cfg_);
    // Recreate both areas with matching ids on the fresh disk.
    const AreaId a0 = disk.CreateArea();
    const AreaId a1 = disk.CreateArea();
    ASSERT_EQ(a0, area_);
    ASSERT_EQ(a1, area2);
    BufferPool pool(&disk, cfg_);
    for (size_t idx : orders[variant]) {
      auto g = pool.FixPage(keys[idx].first, keys[idx].second, FixMode::kNew);
      ASSERT_TRUE(g.ok());
      // Dirty a deterministic subset (by key, not by insertion position).
      if (keys[idx].second % 2 == 1) g->MarkDirty();
    }
    const std::vector<BufferPool::CachedPage> got = pool.CachedPagesSorted();
    ASSERT_EQ(got.size(), keys.size());
    // Sorted by (area, page); dirty = odd page numbers.
    for (size_t i = 1; i < got.size(); ++i) {
      ASSERT_TRUE(got[i - 1].area < got[i].area ||
                  (got[i - 1].area == got[i].area &&
                   got[i - 1].page < got[i].page));
    }
    for (const auto& cp : got) ASSERT_EQ(cp.dirty, cp.page % 2 == 1);

    // FlushAll's I/O sequence (call count, seeks, pages) must also be a
    // pure function of the dirty set, not of insertion order.
    const IoStats before = disk.stats();
    ASSERT_TRUE(pool.FlushAll().ok());
    const IoStats flush_delta = IoStats::Delta(before, disk.stats());

    if (variant == 0) {
      expected = got;
      expected_flush_delta = flush_delta;
    } else {
      EXPECT_EQ(got, expected)
          << "insertion order leaked into the enumeration (variant "
          << variant << ")";
      EXPECT_EQ(flush_delta.write_calls, expected_flush_delta.write_calls)
          << "variant " << variant;
      EXPECT_EQ(flush_delta.pages_written, expected_flush_delta.pages_written)
          << "variant " << variant;
      EXPECT_EQ(flush_delta.Seeks(), expected_flush_delta.Seeks())
          << "variant " << variant;
    }
  }
}

}  // namespace
}  // namespace lob
