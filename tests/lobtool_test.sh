#!/usr/bin/env bash
# End-to-end test of the lobtool CLI: exercises every subcommand against a
# scratch database image and verifies the bytes that come back.
set -euo pipefail
LOBTOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
DB="$DIR/t.lobdb"

fail() { echo "lobtool_test: FAIL: $1"; exit 1; }

"$LOBTOOL" "$DB" init >/dev/null || fail "init"
"$LOBTOOL" "$DB" create doc eos 8 >/dev/null || fail "create eos"
"$LOBTOOL" "$DB" create pic starburst >/dev/null || fail "create starburst"
"$LOBTOOL" "$DB" create idx esm 4 >/dev/null || fail "create esm"

printf 'hello large objects' > "$DIR/a.txt"
head -c 100000 /dev/urandom > "$DIR/b.bin"

"$LOBTOOL" "$DB" put doc "$DIR/a.txt" >/dev/null || fail "put"
"$LOBTOOL" "$DB" put pic "$DIR/b.bin" >/dev/null || fail "put binary"

[ "$("$LOBTOOL" "$DB" cat doc)" = "hello large objects" ] || fail "cat"
"$LOBTOOL" "$DB" cat pic > "$DIR/b.out" || fail "cat binary"
cmp -s "$DIR/b.bin" "$DIR/b.out" || fail "binary roundtrip"

printf 'BIG ' > "$DIR/ins.txt"
"$LOBTOOL" "$DB" insert doc 6 "$DIR/ins.txt" >/dev/null || fail "insert"
[ "$("$LOBTOOL" "$DB" cat doc)" = "hello BIG large objects" ] || fail "insert content"

"$LOBTOOL" "$DB" delete doc 6 4 >/dev/null || fail "delete"
[ "$("$LOBTOOL" "$DB" cat doc)" = "hello large objects" ] || fail "delete content"

[ "$("$LOBTOOL" "$DB" cat doc 6 5)" = "large" ] || fail "cat range"

"$LOBTOOL" "$DB" ls | grep -q '^doc .*EOS' || fail "ls doc"
"$LOBTOOL" "$DB" ls | grep -q '^pic .*Starburst' || fail "ls pic"
"$LOBTOOL" "$DB" stat pic | grep -q 'engine: *Starburst' || fail "stat"
"$LOBTOOL" "$DB" info | grep -q 'objects: *3' || fail "info"

# stats: per-op attribution ledger. A named scan must produce attributed
# eos.read rows and the conservation invariant must hold.
"$LOBTOOL" "$DB" stats | grep -q 'conservation: OK' || fail "stats conservation"
"$LOBTOOL" "$DB" stats doc | grep -q '^eos.read' || fail "stats attributed read"
"$LOBTOOL" "$DB" stats doc json | grep -q '"eos.read"' || fail "stats json"
"$LOBTOOL" "$DB" stats doc csv | grep -q '^eos.read,' || fail "stats csv"

"$LOBTOOL" "$DB" rm idx >/dev/null || fail "rm"
"$LOBTOOL" "$DB" info | grep -q 'objects: *2' || fail "info after rm"

# error paths: unknown object, unknown command, missing db
"$LOBTOOL" "$DB" cat nosuch >/dev/null 2>&1 && fail "cat nosuch should fail"
"$LOBTOOL" "$DB" frobnicate >/dev/null 2>&1 && fail "unknown cmd should fail"
"$LOBTOOL" "$DIR/absent.lobdb" ls >/dev/null 2>&1 && fail "missing db should fail"

echo "lobtool_test: PASS"
