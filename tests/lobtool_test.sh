#!/usr/bin/env bash
# End-to-end test of the lobtool CLI: exercises every subcommand against a
# scratch database image and verifies the bytes that come back.
set -euo pipefail
LOBTOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
DB="$DIR/t.lobdb"

fail() { echo "lobtool_test: FAIL: $1"; exit 1; }

"$LOBTOOL" "$DB" init >/dev/null || fail "init"
"$LOBTOOL" "$DB" create doc eos 8 >/dev/null || fail "create eos"
"$LOBTOOL" "$DB" create pic starburst >/dev/null || fail "create starburst"
"$LOBTOOL" "$DB" create idx esm 4 >/dev/null || fail "create esm"

printf 'hello large objects' > "$DIR/a.txt"
head -c 100000 /dev/urandom > "$DIR/b.bin"

"$LOBTOOL" "$DB" put doc "$DIR/a.txt" >/dev/null || fail "put"
"$LOBTOOL" "$DB" put pic "$DIR/b.bin" >/dev/null || fail "put binary"

[ "$("$LOBTOOL" "$DB" cat doc)" = "hello large objects" ] || fail "cat"
"$LOBTOOL" "$DB" cat pic > "$DIR/b.out" || fail "cat binary"
cmp -s "$DIR/b.bin" "$DIR/b.out" || fail "binary roundtrip"

printf 'BIG ' > "$DIR/ins.txt"
"$LOBTOOL" "$DB" insert doc 6 "$DIR/ins.txt" >/dev/null || fail "insert"
[ "$("$LOBTOOL" "$DB" cat doc)" = "hello BIG large objects" ] || fail "insert content"

"$LOBTOOL" "$DB" delete doc 6 4 >/dev/null || fail "delete"
[ "$("$LOBTOOL" "$DB" cat doc)" = "hello large objects" ] || fail "delete content"

[ "$("$LOBTOOL" "$DB" cat doc 6 5)" = "large" ] || fail "cat range"

"$LOBTOOL" "$DB" ls | grep -q '^doc .*EOS' || fail "ls doc"
"$LOBTOOL" "$DB" ls | grep -q '^pic .*Starburst' || fail "ls pic"
"$LOBTOOL" "$DB" stat pic | grep -q 'engine: *Starburst' || fail "stat"
"$LOBTOOL" "$DB" info | grep -q 'objects: *3' || fail "info"

# stats: per-op attribution ledger. A named scan must produce attributed
# eos.read rows and the conservation invariant must hold.
"$LOBTOOL" "$DB" stats | grep -q 'conservation: OK' || fail "stats conservation"
"$LOBTOOL" "$DB" stats doc | grep -q '^eos.read' || fail "stats attributed read"
"$LOBTOOL" "$DB" stats doc json | grep -q '"eos.read"' || fail "stats json"
"$LOBTOOL" "$DB" stats doc csv | grep -q '^eos.read,' || fail "stats csv"

# stats json is the combined registry + schema-v2 snapshot: quantile
# columns per op label, pool hit/miss counters, buddy area stats.
"$LOBTOOL" "$DB" stats doc json > "$DIR/stats.json" || fail "stats json run"
grep -q '"registry"' "$DIR/stats.json" || fail "stats json registry block"
grep -q '"snapshot"' "$DIR/stats.json" || fail "stats json snapshot block"
grep -q '"p99_ms"' "$DIR/stats.json" || fail "stats json p99_ms"
grep -q '"pool"' "$DIR/stats.json" || fail "stats json pool block"
grep -q '"schema_version": 2' "$DIR/stats.json" || fail "stats json schema v2"
# --json alias and the percentile columns in the table view.
"$LOBTOOL" "$DB" stats doc --json | grep -q '"p50"' || fail "stats --json alias"
"$LOBTOOL" "$DB" stats doc | grep -q 'p99' || fail "stats table p99 column"

# flame: folded-stack output must be deterministic, parent-prefixed, and
# pass its conservation checks (exit 0).
printf 'append 0 100000 1\ninsert 50000 20000 2\nread 10000 40000 3\ndelete 30000 10000 4\n' \
  > "$DIR/demo.ops"
"$LOBTOOL" flame "$DIR/demo.ops" eos > "$DIR/flame1.folded" \
  || fail "flame eos exit"
"$LOBTOOL" flame "$DIR/demo.ops" eos > "$DIR/flame2.folded" \
  || fail "flame eos rerun"
cmp -s "$DIR/flame1.folded" "$DIR/flame2.folded" || fail "flame determinism"
grep -q '^eos.read ' "$DIR/flame1.folded" || fail "flame has eos.read stack"
grep -qv ' 0$' "$DIR/flame1.folded" || fail "flame has nonzero self cost"
"$LOBTOOL" flame "$DIR/demo.ops" esm --out="$DIR/flame_esm.folded" \
  || fail "flame --out"
[ -s "$DIR/flame_esm.folded" ] || fail "flame --out wrote file"

# bench-diff: self-diff is zero drift (exit 0); a gated regression exits
# 1; unreadable input exits 2.
printf '{"metrics": {"cells_per_sec": 100.0}, "metrics_snapshot": {"ops": {"eos.read": {"p99_ms": 50.0}}}}\n' \
  > "$DIR/base.json"
"$LOBTOOL" bench-diff "$DIR/base.json" "$DIR/base.json" > "$DIR/diff.txt" \
  || fail "bench-diff self-diff exit"
grep -q 'zero drift' "$DIR/diff.txt" || fail "bench-diff zero drift"
printf '{"gates": [{"name": "tput", "metric": "metrics.cells_per_sec", "direction": "higher", "max_regression": 0.20}]}\n' \
  > "$DIR/gates.json"
printf '{"metrics": {"cells_per_sec": 10.0}, "metrics_snapshot": {"ops": {"eos.read": {"p99_ms": 50.0}}}}\n' \
  > "$DIR/slow.json"
set +e
"$LOBTOOL" bench-diff "$DIR/base.json" "$DIR/slow.json" \
  --gate="$DIR/gates.json" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "bench-diff gate violation should exit 1 (got $rc)"
set +e
"$LOBTOOL" bench-diff "$DIR/base.json" "$DIR/absent.json" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "bench-diff bad input should exit 2 (got $rc)"

# locks: the rank-table dump must list every registered lock in strictly
# ascending rank order and stay in sync with common/lock_order.h.
"$LOBTOOL" locks > "$DIR/locks.txt" || fail "locks exit"
for id in exec.thread_pool exec.campaign buffer.pool obs.registry \
          trace.session trace.timeline common.log_sink; do
  grep -q "$id" "$DIR/locks.txt" || fail "locks table missing $id"
done
awk 'NR > 1 { if ($2 + 0 <= prev) exit 1; prev = $2 + 0 }' \
  "$DIR/locks.txt" || fail "locks ranks not strictly increasing"

"$LOBTOOL" "$DB" rm idx >/dev/null || fail "rm"
"$LOBTOOL" "$DB" info | grep -q 'objects: *2' || fail "info after rm"

# error paths: unknown object, unknown command, missing db
"$LOBTOOL" "$DB" cat nosuch >/dev/null 2>&1 && fail "cat nosuch should fail"
"$LOBTOOL" "$DB" frobnicate >/dev/null 2>&1 && fail "unknown cmd should fail"
"$LOBTOOL" "$DIR/absent.lobdb" ls >/dev/null 2>&1 && fail "missing db should fail"

echo "lobtool_test: PASS"
