#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/factory.h"
#include "core/object_stream.h"
#include "core/storage_system.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

class ObjectStreamTest : public ::testing::TestWithParam<int> {
 protected:
  ObjectStreamTest() {
    switch (GetParam()) {
      case 0:
        mgr_ = CreateEsmManager(&sys_, 4);
        break;
      case 1:
        mgr_ = CreateStarburstManager(&sys_);
        break;
      default:
        mgr_ = CreateEosManager(&sys_, 4);
        break;
    }
    auto id = mgr_->Create();
    LOB_CHECK_OK(id.status());
    id_ = *id;
  }

  StorageSystem sys_;
  std::unique_ptr<LargeObjectManager> mgr_;
  ObjectId id_ = 0;
};

TEST_P(ObjectStreamTest, WriterStagesSmallWrites) {
  ObjectWriter writer(mgr_.get(), id_, /*chunk_bytes=*/10000);
  std::string oracle;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::string piece = Pattern(rng.Next(), rng.Uniform(1, 500));
    ASSERT_TRUE(writer.Write(piece).ok());
    oracle += piece;
  }
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(writer.bytes_written(), oracle.size());
  std::string got;
  ASSERT_TRUE(mgr_->Read(id_, 0, oracle.size(), &got).ok());
  EXPECT_EQ(got, oracle);
}

TEST_P(ObjectStreamTest, StagingReducesAppendCalls) {
  // 1000 tiny writes staged into 16 K chunks: far fewer I/O calls than
  // 1000 appends would make.
  sys_.ResetStats();
  {
    ObjectWriter writer(mgr_.get(), id_, 16 * 1024);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(writer.Write(Pattern(static_cast<uint64_t>(i), 100)).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
  }
  EXPECT_LT(sys_.stats().write_calls, 50u) << sys_.stats().ToString();
}

TEST_P(ObjectStreamTest, ReaderStreamsWholeObject) {
  const std::string oracle = Pattern(2, 300000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  ObjectReader reader(mgr_.get(), id_, 32 * 1024);
  std::string assembled, piece;
  while (true) {
    ASSERT_TRUE(reader.Read(7777, &piece).ok());
    if (piece.empty()) break;
    assembled += piece;
  }
  EXPECT_EQ(assembled, oracle);
  auto at_end = reader.AtEnd();
  ASSERT_TRUE(at_end.ok());
  EXPECT_TRUE(*at_end);
}

TEST_P(ObjectStreamTest, ReaderSeekAndTell) {
  const std::string oracle = Pattern(3, 100000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  ObjectReader reader(mgr_.get(), id_);
  ASSERT_TRUE(reader.Seek(50000).ok());
  EXPECT_EQ(reader.Tell(), 50000u);
  std::string piece;
  ASSERT_TRUE(reader.Read(100, &piece).ok());
  EXPECT_EQ(piece, oracle.substr(50000, 100));
  EXPECT_EQ(reader.Tell(), 50100u);
  // Seeking backwards within the buffered window works too.
  ASSERT_TRUE(reader.Seek(50050).ok());
  ASSERT_TRUE(reader.Read(50, &piece).ok());
  EXPECT_EQ(piece, oracle.substr(50050, 50));
  EXPECT_FALSE(reader.Seek(oracle.size() + 1).ok());
}

TEST_P(ObjectStreamTest, ReadPastEndIsShort) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(4, 1000)).ok());
  ObjectReader reader(mgr_.get(), id_);
  std::string piece;
  ASSERT_TRUE(reader.Read(5000, &piece).ok());
  EXPECT_EQ(piece.size(), 1000u);
  ASSERT_TRUE(reader.Read(10, &piece).ok());
  EXPECT_TRUE(piece.empty());
}

TEST_P(ObjectStreamTest, SequentialChunksShareBufferedIo) {
  const std::string oracle = Pattern(5, 256 * 1024);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  ASSERT_TRUE(sys_.FlushAll().ok());
  sys_.ResetStats();
  ObjectReader reader(mgr_.get(), id_, 64 * 1024);
  std::string piece;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(reader.Read(4096, &piece).ok());
  }
  // 256 K consumed in 4 K pieces: only 4 underlying 64 K range reads
  // (each at most a handful of I/O calls across 16-page ESM leaves).
  EXPECT_LE(sys_.stats().read_calls, 20u) << sys_.stats().ToString();
}

TEST_P(ObjectStreamTest, WriterLastStatusIsStickyAcrossFailedFlush) {
  ObjectWriter writer(mgr_.get(), id_, /*chunk_bytes=*/64 * 1024);
  EXPECT_TRUE(writer.last_status().ok());
  const std::string piece = Pattern(6, 5000);
  ASSERT_TRUE(writer.Write(piece).ok()) << "stays staged, no I/O yet";

  sys_.disk()->InjectFailureAfter(0);
  Status failed = writer.Flush();
  EXPECT_FALSE(failed.ok()) << "injected failure must propagate";
  EXPECT_FALSE(writer.last_status().ok())
      << "the failure must be recorded, not just returned";
  sys_.disk()->InjectFailureAfter(-1);

  // The staged bytes were not lost: a retry lands them.
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_FALSE(writer.last_status().ok())
      << "last_status is sticky: later successes do not clear the record";
  std::string got;
  ASSERT_TRUE(mgr_->Read(id_, 0, piece.size(), &got).ok());
  EXPECT_EQ(got, piece);
}

TEST_P(ObjectStreamTest, WriterRecordsFailureFromWriteTriggeredAppend) {
  // A Write large enough to fill the staging buffer triggers an Append
  // inside Write itself; an I/O failure there must surface both as the
  // returned Status and in last_status.
  ObjectWriter writer(mgr_.get(), id_, /*chunk_bytes=*/8 * 1024);
  sys_.disk()->InjectFailureAfter(0);
  Status s = writer.Write(Pattern(7, 16 * 1024));
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(writer.last_status().ok());
  sys_.disk()->InjectFailureAfter(-1);
}

TEST_P(ObjectStreamTest, WriterDoubleFaultPreservesFirstError) {
  // Two distinct one-shot faults across two failing flushes: last_status
  // must keep the *first* error (the root cause), and the writer must
  // stay usable — the staged bytes land once the faults clear.
  ObjectWriter writer(mgr_.get(), id_, /*chunk_bytes=*/64 * 1024);
  const std::string piece = Pattern(8, 5000);
  ASSERT_TRUE(writer.Write(piece).ok());

  FaultSpec first;
  first.kind = FaultKind::kOneShot;
  first.after_calls = 0;  // countdowns are relative to arming
  first.message = "double-fault-one";
  sys_.disk()->ArmFault(first);
  EXPECT_FALSE(writer.Flush().ok());

  FaultSpec second = first;
  second.message = "double-fault-two";
  sys_.disk()->ArmFault(second);
  Status retry = writer.Flush();
  EXPECT_FALSE(retry.ok());
  EXPECT_NE(retry.message().find("double-fault-two"), std::string::npos)
      << "the retry's own failure is the one returned: " << retry.ToString();
  EXPECT_NE(writer.last_status().message().find("double-fault-one"),
            std::string::npos)
      << "last_status must keep the first fault, got: "
      << writer.last_status().ToString();
  sys_.disk()->ClearFaults();

  ASSERT_TRUE(writer.Flush().ok());
  std::string got;
  ASSERT_TRUE(mgr_->Read(id_, 0, piece.size(), &got).ok());
  EXPECT_EQ(got, piece);
  EXPECT_NE(writer.last_status().message().find("double-fault-one"),
            std::string::npos)
      << "success does not clear the sticky first error";
}

std::string EngineName3(const ::testing::TestParamInfo<int>& param_info) {
  return param_info.param == 0   ? "Esm"
         : param_info.param == 1 ? "Starburst"
                                 : "Eos";
}

INSTANTIATE_TEST_SUITE_P(Engines, ObjectStreamTest,
                         ::testing::Values(0, 1, 2), EngineName3);

}  // namespace
}  // namespace lob
