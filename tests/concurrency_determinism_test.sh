#!/usr/bin/env bash
# Determinism gate for the multi-client concurrency bench: the same seed
# must produce byte-identical CSV, --obs ledger and trace output for any
# --jobs value AND across two separate process runs (the modeled queue is
# a pure function of the scheduled issue order, never of host timing).
# Also checks the fsck column: every cell must come out clean.
# Usage: concurrency_determinism_test.sh <ext_concurrency_binary>
set -euo pipefail

BIN="$1"

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

ARGS="--quick --clients=1,4 --ops=200"

# 1. CSV output: --jobs=1 vs --jobs=2 vs --jobs=4 must be byte-identical.
"$BIN" $ARGS --csv --jobs=1 > "$tmpdir/j1.csv"
"$BIN" $ARGS --csv --jobs=2 > "$tmpdir/j2.csv"
"$BIN" $ARGS --csv --jobs=4 > "$tmpdir/j4.csv"
cmp "$tmpdir/j1.csv" "$tmpdir/j2.csv" \
  || fail "csv differs between --jobs=1 and --jobs=2"
cmp "$tmpdir/j1.csv" "$tmpdir/j4.csv" \
  || fail "csv differs between --jobs=1 and --jobs=4"

# 2. Two separate processes, same arguments: byte-identical.
"$BIN" $ARGS --csv --jobs=2 > "$tmpdir/j2_again.csv"
cmp "$tmpdir/j2.csv" "$tmpdir/j2_again.csv" \
  || fail "csv differs between two runs of the same process arguments"

# 3. The --obs attribution ledger interleaved: still byte-identical.
"$BIN" $ARGS --obs --jobs=1 > "$tmpdir/obs_j1.txt"
"$BIN" $ARGS --obs --jobs=4 > "$tmpdir/obs_j4.txt"
cmp "$tmpdir/obs_j1.txt" "$tmpdir/obs_j4.txt" \
  || fail "--obs output differs between --jobs=1 and --jobs=4"

# 4. Trace export (queue-wait spans included): byte-identical for any
# --jobs. With LOB_TRACING=OFF both files are empty skeletons — the
# comparison still holds, so the gate runs in every build flavor.
"$BIN" $ARGS --csv --jobs=1 --trace="$tmpdir/trace_j1.json" > /dev/null
"$BIN" $ARGS --csv --jobs=4 --trace="$tmpdir/trace_j4.json" > /dev/null 2>&1
cmp "$tmpdir/trace_j1.json" "$tmpdir/trace_j4.json" \
  || fail "trace differs between --jobs=1 and --jobs=4"

# 5. Every cell must be fsck-clean (last CSV column == 1).
awk -F, 'NR > 1 && $NF != 1 { exit 1 }' "$tmpdir/j1.csv" \
  || fail "a concurrency cell came out of fsck dirty"

# 6. Queueing delay: zero for one client, positive for four on at least
# one engine/mix cell (the contention signal exists).
python3 - "$tmpdir/j1.csv" <<'EOF'
import csv, sys

rows = list(csv.DictReader(open(sys.argv[1])))
assert rows, "empty csv"
for r in rows:
    q = float(r["queue_ms"])
    assert q >= 0, f"negative queue delay: {r}"
    if int(r["clients"]) == 1:
        assert q == 0, f"single client waited on itself: {r}"
grown = [r for r in rows if int(r["clients"]) > 1
         and float(r["queue_ms"]) > 0]
assert grown, "no multi-client cell shows any queueing delay"
EOF

echo "PASS: multi-client concurrency output is byte-deterministic"
