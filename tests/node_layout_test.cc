#include <gtest/gtest.h>

#include <vector>

#include "lobtree/node_layout.h"

namespace lob {
namespace {

class NodeViewTest : public ::testing::Test {
 protected:
  NodeViewTest() : buf_(4096, '\0') {}
  std::vector<char> buf_;
};

TEST_F(NodeViewTest, RootInitAndHeader) {
  NodeView v(buf_.data(), 4096, /*is_root=*/true);
  v.Init(1, /*engine=*/3);
  EXPECT_TRUE(v.IsValid());
  EXPECT_TRUE(v.is_root());
  EXPECT_EQ(v.height(), 1);
  EXPECT_EQ(v.npairs(), 0);
  EXPECT_EQ(v.engine(), 3);
  EXPECT_EQ(v.aux(), 0u);
  v.set_aux(777);
  EXPECT_EQ(v.aux(), 777u);
  v.set_height(5);
  EXPECT_EQ(v.height(), 5);
}

TEST_F(NodeViewTest, InternalInitAndHeader) {
  NodeView v(buf_.data(), 4096, /*is_root=*/false);
  v.Init(2);
  EXPECT_TRUE(v.IsValid());
  EXPECT_FALSE(v.is_root());
  EXPECT_EQ(v.height(), 2);
  EXPECT_EQ(v.npairs(), 0);
}

TEST_F(NodeViewTest, MagicMismatchDetected) {
  NodeView root(buf_.data(), 4096, true);
  root.Init(1);
  NodeView as_internal(buf_.data(), 4096, false);
  EXPECT_FALSE(as_internal.IsValid());
}

TEST_F(NodeViewTest, PaperCapacities) {
  // Paper 4.1: "we may store up to 507 pairs in the root and 511 pairs in
  // internal index pages" with 4K pages and 4-byte counts/pointers.
  NodeView root(buf_.data(), 4096, true);
  EXPECT_EQ(root.PhysicalCapacity(), 507u);
  NodeView internal(buf_.data(), 4096, false);
  EXPECT_EQ(internal.PhysicalCapacity(), 511u);
}

TEST_F(NodeViewTest, InsertPairMaintainsCumulativeCounts) {
  NodeView v(buf_.data(), 4096, false);
  v.Init(1);
  v.InsertPair(0, 100, 11);
  v.InsertPair(1, 200, 22);
  v.InsertPair(2, 300, 33);
  EXPECT_EQ(v.npairs(), 3);
  EXPECT_EQ(v.Count(0), 100u);
  EXPECT_EQ(v.Count(1), 300u);
  EXPECT_EQ(v.Count(2), 600u);
  EXPECT_EQ(v.SubtreeBytes(1), 200u);
  EXPECT_EQ(v.TotalBytes(), 600u);
  // Insert in the middle shifts following cumulative counts.
  v.InsertPair(1, 50, 44);
  EXPECT_EQ(v.npairs(), 4);
  EXPECT_EQ(v.Count(0), 100u);
  EXPECT_EQ(v.Count(1), 150u);
  EXPECT_EQ(v.Count(2), 350u);
  EXPECT_EQ(v.Count(3), 650u);
  EXPECT_EQ(v.Page(1), 44u);
}

TEST_F(NodeViewTest, RemovePairShiftsCounts) {
  NodeView v(buf_.data(), 4096, false);
  v.Init(1);
  v.InsertPair(0, 100, 11);
  v.InsertPair(1, 200, 22);
  v.InsertPair(2, 300, 33);
  v.RemovePair(1);
  EXPECT_EQ(v.npairs(), 2);
  EXPECT_EQ(v.Count(0), 100u);
  EXPECT_EQ(v.Count(1), 400u);
  EXPECT_EQ(v.Page(1), 33u);
}

TEST_F(NodeViewTest, AddBytesPropagates) {
  NodeView v(buf_.data(), 4096, false);
  v.Init(1);
  v.InsertPair(0, 100, 11);
  v.InsertPair(1, 200, 22);
  v.AddBytes(0, +42);
  EXPECT_EQ(v.Count(0), 142u);
  EXPECT_EQ(v.Count(1), 342u);
  EXPECT_EQ(v.SubtreeBytes(1), 200u) << "only child 0 grew";
  v.AddBytes(1, -50);
  EXPECT_EQ(v.Count(1), 292u);
}

TEST_F(NodeViewTest, FindChildPicksContainingChild) {
  // Paper Figure 1 example: root pairs (900, p1), (1830, p2): offsets 0-899
  // live below the first child, 900-1829 below the second.
  NodeView v(buf_.data(), 4096, true);
  v.Init(2);
  v.InsertPair(0, 900, 100);
  v.InsertPair(1, 930, 200);
  EXPECT_EQ(v.TotalBytes(), 1830u);
  EXPECT_EQ(v.FindChild(0), 0u);
  EXPECT_EQ(v.FindChild(899), 0u);
  EXPECT_EQ(v.FindChild(900), 1u);
  EXPECT_EQ(v.FindChild(1829), 1u);
}

TEST_F(NodeViewTest, PaperFigure3Example) {
  // The EOS structure of Figure 3: right child indexes 600 bytes in two
  // segments of 470 and 130 bytes.
  NodeView right(buf_.data(), 4096, false);
  right.Init(1);
  right.InsertPair(0, 470, 50);
  right.InsertPair(1, 130, 60);
  EXPECT_EQ(right.TotalBytes(), 600u);
  EXPECT_EQ(right.FindChild(469), 0u);
  EXPECT_EQ(right.FindChild(470), 1u);
  EXPECT_EQ(right.SubtreeBytes(1), 130u);
}

TEST(TreeLimitsTest, MinFillIsHalfTheSmallerCapacity) {
  TreeLimits limits;
  EXPECT_EQ(limits.MinFill(), 253u);  // min(507, 511) / 2
  TreeLimits tiny{8, 16};
  EXPECT_EQ(tiny.MinFill(), 4u);
}

}  // namespace
}  // namespace lob
