// Fault-injection campaign: the repo's error-path regression gate.
//
// The standard (demo) trace is replayed against all three engines with a
// one-shot fault at every attributed I/O position. The acceptance bar —
// held by this test — is *zero leak and zero corrupt cells*: every
// possible single-fault prefix must leave each engine either fully
// functional (the fault was absorbed) or cleanly failed with all its
// extents accounted for. The matrix must also be byte-identical for any
// worker count.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "exec/campaign.h"

namespace lob {
namespace {

CampaignOptions WithJobs(uint32_t jobs, uint32_t stride = 1) {
  CampaignOptions options;
  options.jobs = jobs;
  options.stride = stride;
  return options;
}

TEST(CampaignTest, StandardTraceHasNoLeakOrCorruptCells) {
  const Trace trace = DemoCampaignTrace();
  auto result = RunCampaign(trace, WithJobs(4));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The gate: a leak or corrupt cell means some engine error path
  // strands or damages storage under a single injected fault.
  for (const CampaignCell& cell : result->cells) {
    EXPECT_NE(cell.outcome, CellOutcome::kLeak)
        << EngineName(cell.engine) << " k=" << cell.fail_after << " "
        << cell.failed_op << ": " << cell.detail;
    EXPECT_NE(cell.outcome, CellOutcome::kCorrupt)
        << EngineName(cell.engine) << " k=" << cell.fail_after << " "
        << cell.failed_op << ": " << cell.detail;
  }
  EXPECT_FALSE(result->HasLeaks());
  EXPECT_FALSE(result->HasCorruption());

  // Coverage sanity: one cell per (engine, k), k < the engine's baseline.
  ASSERT_EQ(result->baselines.size(), 3u);
  size_t expected_cells = 0;
  for (const auto& [engine, n] : result->baselines) {
    EXPECT_GT(n, 0u) << EngineName(engine);
    expected_cells += n;
  }
  EXPECT_EQ(result->cells.size(), expected_cells);
  std::set<std::pair<Engine, uint64_t>> seen;
  for (const CampaignCell& cell : result->cells) {
    EXPECT_TRUE(seen.emplace(cell.engine, cell.fail_after).second)
        << "duplicate cell";
  }
}

TEST(CampaignTest, MatrixIsIdenticalForAnyWorkerCount) {
  const Trace trace = DemoCampaignTrace();
  auto serial = RunCampaign(trace, WithJobs(1));
  auto parallel = RunCampaign(trace, WithJobs(8));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->ToCsv(), parallel->ToCsv());
  EXPECT_EQ(serial->ToJson(), parallel->ToJson());
}

TEST(CampaignTest, StrideSamplesTheExhaustiveMatrix) {
  const Trace trace = DemoCampaignTrace();
  auto full = RunCampaign(trace, WithJobs(4));
  auto sampled = RunCampaign(trace, WithJobs(4, /*stride=*/5));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  ASSERT_LT(sampled->cells.size(), full->cells.size());
  // Every sampled cell matches the corresponding exhaustive cell.
  auto find = [&](Engine engine, uint64_t k) -> const CampaignCell* {
    for (const CampaignCell& c : full->cells) {
      if (c.engine == engine && c.fail_after == k) return &c;
    }
    return nullptr;
  };
  for (const CampaignCell& c : sampled->cells) {
    const CampaignCell* ref = find(c.engine, c.fail_after);
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(c.outcome, ref->outcome);
    EXPECT_EQ(c.failed_op, ref->failed_op);
    EXPECT_EQ(c.detail, ref->detail);
  }
}

TEST(CampaignTest, ZeroStrideIsRejected) {
  auto result = RunCampaign(DemoCampaignTrace(), WithJobs(1, /*stride=*/0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CampaignTest, CsvIsMachineSplittable) {
  auto result = RunCampaign(DemoCampaignTrace(), WithJobs(4, /*stride=*/7));
  ASSERT_TRUE(result.ok());
  const std::string csv = result->ToCsv();
  ASSERT_FALSE(csv.empty());
  size_t pos = 0;
  bool header = true;
  while (pos < csv.size()) {
    size_t eol = csv.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated row";
    const std::string row = csv.substr(pos, eol - pos);
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 5)
        << (header ? "header" : "row") << ": " << row;
    header = false;
    pos = eol + 1;
  }
}

}  // namespace
}  // namespace lob
