#!/usr/bin/env bash
# Proves the thread-safety gate bites, from both sides:
#
#   1. Every fixture in tests/thread_safety_fixtures/ compiles under the
#      default (non-Clang) compiler — the LOB_* annotation macros must be
#      zero-cost no-ops outside Clang.
#   2. Under clang++ -Wthread-safety -Werror=thread-safety the good_
#      fixture still compiles and every bad_ fixture FAILS with a
#      thread-safety diagnostic.
#
# Usage: thread_safety_compile_test.sh <repo-root>
# Exit: 0 pass, 1 fail, 77 = clang++ unavailable (Clang half skipped;
# ctest maps 77 to SKIPPED via SKIP_RETURN_CODE).

set -u
ROOT="$1"
FIXDIR="$ROOT/tests/thread_safety_fixtures"
FLAGS="-std=c++20 -I$ROOT/src -c -o /dev/null"

CXX_BASE="${CXX:-c++}"
ERR=$(mktemp)
trap 'rm -f "$ERR"' EXIT

fail=0

echo "== pass 1: annotations are no-ops under $CXX_BASE =="
for f in "$FIXDIR"/*.cc; do
  if ! $CXX_BASE $FLAGS "$f" 2>"$ERR"; then
    echo "FAIL: $f does not compile under $CXX_BASE:"
    cat "$ERR"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi

if ! command -v clang++ >/dev/null 2>&1; then
  echo "SKIP: clang++ not on PATH; -Wthread-safety analysis not checked"
  exit 77
fi

echo "== pass 2: clang++ -Wthread-safety enforces the annotations =="
CLANG_FLAGS="$FLAGS -Wthread-safety -Werror=thread-safety"

for f in "$FIXDIR"/good_*.cc; do
  if ! clang++ $CLANG_FLAGS "$f" 2>"$ERR"; then
    echo "FAIL: $f must be clean under -Wthread-safety:"
    cat "$ERR"
    fail=1
  fi
done

for f in "$FIXDIR"/bad_*.cc; do
  if clang++ $CLANG_FLAGS "$f" 2>"$ERR"; then
    echo "FAIL: $f compiled, but -Wthread-safety must reject it"
    fail=1
  elif ! grep -q "thread-safety" "$ERR"; then
    echo "FAIL: $f failed for a reason other than thread-safety:"
    cat "$ERR"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "thread-safety compile fixtures: all checks passed"
