// Cross-engine integration tests: the three storage structures implement
// the same byte-level semantics, so any operation sequence must leave all
// three with identical contents.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "workload/workload.h"

namespace lob {
namespace {

struct EngineUnderTest {
  std::string name;
  std::unique_ptr<StorageSystem> sys;
  std::unique_ptr<LargeObjectManager> mgr;
  ObjectId id;
};

std::vector<EngineUnderTest> AllEngines() {
  std::vector<EngineUnderTest> engines;
  auto add = [&](const std::string& name, auto make) {
    EngineUnderTest e;
    e.name = name;
    e.sys = std::make_unique<StorageSystem>();
    e.mgr = make(e.sys.get());
    auto id = e.mgr->Create();
    LOB_CHECK_OK(id.status());
    e.id = *id;
    engines.push_back(std::move(e));
  };
  add("esm-1", [](StorageSystem* s) { return CreateEsmManager(s, 1); });
  add("esm-4", [](StorageSystem* s) { return CreateEsmManager(s, 4); });
  add("esm-64", [](StorageSystem* s) { return CreateEsmManager(s, 64); });
  add("starburst", [](StorageSystem* s) { return CreateStarburstManager(s); });
  add("eos-1", [](StorageSystem* s) { return CreateEosManager(s, 1); });
  add("eos-4", [](StorageSystem* s) { return CreateEosManager(s, 4); });
  add("eos-64", [](StorageSystem* s) { return CreateEosManager(s, 64); });
  return engines;
}

TEST(CrossEngine, IdenticalContentUnderRandomOps) {
  auto engines = AllEngines();
  std::string oracle;
  Rng rng(20260707);
  std::string buf;
  for (int step = 0; step < 120; ++step) {
    const double p = rng.NextDouble();
    if (oracle.empty() || p < 0.4) {
      buf.clear();
      Rng content(rng.Next());
      FillBytes(&content, rng.Uniform(1, 50000), &buf);
      const uint64_t off =
          oracle.empty() ? 0 : rng.Uniform(0, oracle.size());
      for (auto& e : engines) {
        ASSERT_TRUE(e.mgr->Insert(e.id, off, buf).ok())
            << e.name << " step " << step;
      }
      oracle.insert(off, buf);
    } else if (p < 0.65) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n =
          rng.Uniform(1, std::min<uint64_t>(oracle.size() - off, 30000));
      for (auto& e : engines) {
        ASSERT_TRUE(e.mgr->Delete(e.id, off, n).ok())
            << e.name << " step " << step;
      }
      oracle.erase(off, n);
    } else if (p < 0.85) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      Rng content(rng.Next());
      FillBytes(&content, n, &buf);
      for (auto& e : engines) {
        ASSERT_TRUE(e.mgr->Replace(e.id, off, buf).ok())
            << e.name << " step " << step;
      }
      oracle.replace(off, n, buf);
    } else {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      std::string expect = oracle.substr(off, n);
      for (auto& e : engines) {
        std::string got;
        ASSERT_TRUE(e.mgr->Read(e.id, off, n, &got).ok())
            << e.name << " step " << step;
        ASSERT_EQ(got, expect) << e.name << " step " << step;
      }
    }
  }
  for (auto& e : engines) {
    auto size = e.mgr->Size(e.id);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, oracle.size()) << e.name;
    std::string got;
    ASSERT_TRUE(e.mgr->Read(e.id, 0, oracle.size(), &got).ok()) << e.name;
    EXPECT_EQ(got, oracle) << e.name;
    ASSERT_TRUE(e.mgr->Validate(e.id).ok()) << e.name;
  }
}

TEST(CrossEngine, StarburstAndEosBuildIdenticalLayouts) {
  // Paper 4.6: "when no length-changing updates are applied on the large
  // object, Starburst and EOS perform exactly the same" - the build
  // produces the same segment sizes and the same modeled I/O cost.
  for (uint64_t append : {3000ull, 8192ull, 100000ull}) {
    StorageSystem sb_sys, eos_sys;
    auto sb = CreateStarburstManager(&sb_sys);
    auto eos = CreateEosManager(&eos_sys, 4);
    auto sb_id = sb->Create();
    auto eos_id = eos->Create();
    ASSERT_TRUE(sb_id.ok());
    ASSERT_TRUE(eos_id.ok());
    const uint64_t total = 2 * 1024 * 1024;
    auto sb_build = BuildObject(&sb_sys, sb.get(), *sb_id, total, append);
    auto eos_build = BuildObject(&eos_sys, eos.get(), *eos_id, total, append);
    ASSERT_TRUE(sb_build.ok());
    ASSERT_TRUE(eos_build.ok());
    auto sb_stats = sb->GetStorageStats(*sb_id);
    auto eos_stats = eos->GetStorageStats(*eos_id);
    ASSERT_TRUE(sb_stats.ok());
    ASSERT_TRUE(eos_stats.ok());
    EXPECT_EQ(sb_stats->segments, eos_stats->segments)
        << "append=" << append;
    EXPECT_EQ(sb_stats->leaf_pages, eos_stats->leaf_pages)
        << "append=" << append;
    // Modeled build cost within 2% (descriptor vs root bookkeeping).
    EXPECT_NEAR(sb_build->Ms(), eos_build->Ms(), sb_build->Ms() * 0.02)
        << "append=" << append;
  }
}

TEST(Workload, BuildProducesExactObject) {
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  auto r = BuildObject(&sys, mgr.get(), *id, 1234567, 8000);
  ASSERT_TRUE(r.ok());
  auto size = mgr->Size(*id);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1234567u);
  EXPECT_GT(r->Ms(), 0.0);
}

TEST(Workload, SequentialScanTouchesEveryByte) {
  StorageSystem sys;
  auto mgr = CreateEsmManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(BuildObject(&sys, mgr.get(), *id, 500000, 10000).ok());
  auto scan = SequentialScan(&sys, mgr.get(), *id, 10000);
  ASSERT_TRUE(scan.ok());
  // At least ceil(500000/4096) = 123 pages must be transferred.
  EXPECT_GE(scan->io.pages_read, 123u);
}

TEST(Workload, UpdateMixKeepsSizeStableAndReportsWindows) {
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(BuildObject(&sys, mgr.get(), *id, 1000000, 100000).ok());
  MixSpec spec;
  spec.mean_op_bytes = 1000;
  spec.total_ops = 500;
  spec.window_ops = 100;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, spec);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 5u);
  for (const auto& pt : *points) {
    EXPECT_GT(pt.utilization, 0.0);
    EXPECT_LE(pt.utilization, 1.0);
    EXPECT_GT(pt.reads + pt.inserts + pt.deletes, 0u);
  }
  // Deletes mirror inserts, so the size stays near 1 MB.
  auto size = mgr->Size(*id);
  ASSERT_TRUE(size.ok());
  EXPECT_NEAR(static_cast<double>(*size), 1e6, 2e5);
  ASSERT_TRUE(mgr->Validate(*id).ok());
}

TEST(Workload, MixFractionsRespected) {
  StorageSystem sys;
  auto mgr = CreateEsmManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(BuildObject(&sys, mgr.get(), *id, 1000000, 100000).ok());
  MixSpec spec;
  spec.mean_op_bytes = 500;
  spec.total_ops = 2000;
  spec.window_ops = 2000;
  auto points = RunUpdateMix(&sys, mgr.get(), *id, spec);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 1u);
  const auto& pt = points->front();
  EXPECT_NEAR(pt.reads / 2000.0, 0.4, 0.05);
  EXPECT_NEAR(pt.inserts / 2000.0, 0.3, 0.05);
  EXPECT_NEAR(pt.deletes / 2000.0, 0.3, 0.05);
}

TEST(Workload, FlagParsing) {
  const char* argv[] = {"prog", "--ops=1234", "--quick"};
  EXPECT_EQ(FlagValue(3, const_cast<char**>(argv), "ops", 99), 1234u);
  EXPECT_EQ(FlagValue(3, const_cast<char**>(argv), "missing", 99), 99u);
  EXPECT_TRUE(FlagPresent(3, const_cast<char**>(argv), "quick"));
  EXPECT_FALSE(FlagPresent(3, const_cast<char**>(argv), "slow"));
}

}  // namespace
}  // namespace lob
