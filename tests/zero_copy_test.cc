// Contract tests for zero-copy page I/O (ISSUE 7): borrowed PageRef /
// frame views must alias the live disk image, materialize on mutation
// (copy-on-write), survive eviction and SaveState/RestoreState, keep
// fault injection firing on the batched ReadRun/WriteRun entry points,
// and produce byte-identical images and modeled costs with the zero-copy
// path disabled (StorageConfig::pool_zero_copy = false).

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "buffer/page_table.h"
#include "iomodel/sim_disk.h"

namespace lob {
namespace {

StorageConfig SmallConfig() {
  StorageConfig cfg;
  cfg.buffer_pool_pages = 4;
  return cfg;
}

std::vector<char> PageOf(const StorageConfig& cfg, char fill) {
  return std::vector<char>(cfg.page_size, fill);
}

// ---- SimDisk borrowed-view contract ----

TEST(SimDiskZeroCopy, ReadRunAliasesLiveImage) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  const AreaId a = disk.CreateArea();
  auto page = PageOf(cfg, 'a');
  ASSERT_TRUE(disk.Write(a, 0, 1, page.data()).ok());

  PageRef ref;
  ASSERT_TRUE(disk.ReadRun(a, 0, 1, &ref).ok());
  ASSERT_NE(ref.data, nullptr);
  EXPECT_EQ(ref.data, disk.PeekPage(a, 0));  // borrowed, not copied
  EXPECT_EQ(ref.data[0], 'a');

  // The view is live: a later write shows through it.
  page.assign(cfg.page_size, 'b');
  ASSERT_TRUE(disk.Write(a, 0, 1, page.data()).ok());
  EXPECT_EQ(ref.data[0], 'b');
}

TEST(SimDiskZeroCopy, ReadRunNeverWrittenPageIsNull) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  const AreaId a = disk.CreateArea();
  auto page = PageOf(cfg, 'x');
  ASSERT_TRUE(disk.Write(a, 2, 1, page.data()).ok());

  PageRef refs[3];
  ASSERT_TRUE(disk.ReadRun(a, 0, 3, refs).ok());
  EXPECT_EQ(refs[0].data, nullptr);  // reads as zeros
  EXPECT_EQ(refs[1].data, nullptr);
  ASSERT_NE(refs[2].data, nullptr);
  EXPECT_EQ(refs[2].data[0], 'x');
}

TEST(SimDiskZeroCopy, ReadRunMeteredLikeRead) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  SimDisk plain(cfg);
  const AreaId a = disk.CreateArea();
  const AreaId b = plain.CreateArea();
  auto buf = std::vector<char>(4 * cfg.page_size, 'm');
  ASSERT_TRUE(disk.Write(a, 0, 4, buf.data()).ok());
  ASSERT_TRUE(plain.Write(b, 0, 4, buf.data()).ok());

  PageRef refs[4];
  ASSERT_TRUE(disk.ReadRun(a, 0, 4, refs).ok());
  ASSERT_TRUE(plain.Read(b, 0, 4, buf.data()).ok());
  EXPECT_EQ(disk.stats().ms, plain.stats().ms);
  EXPECT_EQ(disk.stats().Seeks(), plain.stats().Seeks());
  EXPECT_EQ(disk.stats().PagesTransferred(), plain.stats().PagesTransferred());
}

TEST(SimDiskZeroCopy, WriteRunGatherZeroFillAndSelfView) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  const AreaId a = disk.CreateArea();
  auto p0 = PageOf(cfg, 'p');
  auto p1 = PageOf(cfg, 'q');
  const char* srcs[2] = {p0.data(), p1.data()};
  MutPageRef imgs[2];
  ASSERT_TRUE(disk.WriteRun(a, 0, 2, srcs, imgs).ok());
  ASSERT_NE(imgs[0].data, nullptr);
  EXPECT_EQ(imgs[0].data, disk.PeekPage(a, 0));
  EXPECT_EQ(imgs[0].data[0], 'p');
  EXPECT_EQ(imgs[1].data[0], 'q');

  // null src = zero-fill; a src aliasing the page's own image = no-op.
  const char* srcs2[2] = {nullptr, imgs[1].data};
  ASSERT_TRUE(disk.WriteRun(a, 0, 2, srcs2).ok());
  EXPECT_EQ(disk.PeekPage(a, 0)[0], '\0');
  EXPECT_EQ(disk.PeekPage(a, 1)[0], 'q');
}

TEST(SimDiskZeroCopy, FaultsFireOnRunCallsWithSameCountdown) {
  // after_calls == 2: exactly two matching calls succeed, the third
  // fails — where a run of N pages is ONE call, exactly as Read/Write.
  StorageConfig cfg;
  SimDisk disk(cfg);
  const AreaId a = disk.CreateArea();
  auto buf = std::vector<char>(2 * cfg.page_size, 'f');
  const char* srcs[2] = {buf.data(), buf.data() + cfg.page_size};

  FaultSpec spec;
  spec.kind = FaultKind::kOneShot;
  spec.after_calls = 2;
  disk.ArmFault(spec);

  ASSERT_TRUE(disk.WriteRun(a, 0, 2, srcs).ok());  // call 1
  PageRef refs[2];
  ASSERT_TRUE(disk.ReadRun(a, 0, 2, refs).ok());   // call 2
  EXPECT_FALSE(disk.ReadRun(a, 0, 2, refs).ok());  // call 3: fault fires
  ASSERT_TRUE(disk.ReadRun(a, 0, 2, refs).ok());   // one-shot: healed
}

TEST(SimDiskZeroCopy, WriteFaultLeavesImageUntouched) {
  StorageConfig cfg;
  SimDisk disk(cfg);
  const AreaId a = disk.CreateArea();
  auto page = PageOf(cfg, 'o');
  ASSERT_TRUE(disk.Write(a, 0, 1, page.data()).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kOneShot;
  spec.match_reads = false;
  disk.ArmFault(spec);
  auto next = PageOf(cfg, 'n');
  const char* srcs[1] = {next.data()};
  ASSERT_FALSE(disk.WriteRun(a, 0, 1, srcs).ok());
  EXPECT_EQ(disk.PeekPage(a, 0)[0], 'o');  // failed write changed nothing
}

// ---- BufferPool copy-on-write contract ----

TEST(BufferPoolZeroCopy, CleanFrameBorrowsDiskImage) {
  StorageConfig cfg = SmallConfig();
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  const AreaId a = disk.CreateArea();
  auto page = PageOf(cfg, 'z');
  ASSERT_TRUE(disk.Write(a, 0, 1, page.data()).ok());

  auto g = pool.FixPage(a, 0, FixMode::kRead);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->data(), disk.PeekPage(a, 0));  // aliases the image
}

TEST(BufferPoolZeroCopy, MutableViewMaterializesBeforeWriting) {
  StorageConfig cfg = SmallConfig();
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  const AreaId a = disk.CreateArea();
  auto page = PageOf(cfg, 'c');
  ASSERT_TRUE(disk.Write(a, 0, 1, page.data()).ok());

  auto g = pool.FixPage(a, 0, FixMode::kRead);
  ASSERT_TRUE(g.ok());
  char* m = g->mutable_data();
  EXPECT_NE(m, disk.PeekPage(a, 0));  // private pool copy now
  EXPECT_EQ(m[0], 'c');               // with the image's bytes
  m[0] = 'd';
  g->MarkDirty();
  // Dirty content lives only in the pool until flushed.
  EXPECT_EQ(disk.PeekPage(a, 0)[0], 'c');
  ASSERT_TRUE(pool.FlushRun(a, 0, 1).ok());
  EXPECT_EQ(disk.PeekPage(a, 0)[0], 'd');
}

TEST(BufferPoolZeroCopy, InjectedFlushFaultCannotLeakDirtyBytes) {
  StorageConfig cfg = SmallConfig();
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  const AreaId a = disk.CreateArea();
  auto page = PageOf(cfg, 'k');
  ASSERT_TRUE(disk.Write(a, 0, 1, page.data()).ok());

  {
    auto g = pool.FixPage(a, 0, FixMode::kRead);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 'L';
    g->MarkDirty();
  }
  FaultSpec spec;
  spec.kind = FaultKind::kSticky;
  spec.match_reads = false;
  disk.ArmFault(spec);
  EXPECT_FALSE(pool.FlushRun(a, 0, 1).ok());
  // The failed flush must not have leaked the unflushed byte.
  EXPECT_EQ(disk.PeekPage(a, 0)[0], 'k');
  disk.ClearFaults();
  ASSERT_TRUE(pool.FlushRun(a, 0, 1).ok());
  EXPECT_EQ(disk.PeekPage(a, 0)[0], 'L');
}

TEST(BufferPoolZeroCopy, BorrowSurvivesSaveRestoreAcrossEvictions) {
  StorageConfig cfg = SmallConfig();
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  const AreaId a = disk.CreateArea();
  for (PageId p = 0; p < 8; ++p) {
    auto page = PageOf(cfg, static_cast<char>('A' + p));
    ASSERT_TRUE(disk.Write(a, p, 1, page.data()).ok());
  }
  // Fill the pool with borrowed frames 0..3.
  for (PageId p = 0; p < 4; ++p) {
    auto g = pool.FixPage(a, p, FixMode::kRead);
    ASSERT_TRUE(g.ok());
  }
  BufferPool::State saved = pool.SaveState();

  // A read-only audit walk cycles other pages through the pool,
  // evicting every saved frame.
  for (PageId p = 4; p < 8; ++p) {
    auto g = pool.FixPage(a, p, FixMode::kRead);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], 'A' + static_cast<char>(p));
  }
  pool.RestoreState(saved);

  // The restored borrowed frames still serve the right bytes, as hits.
  for (PageId p = 0; p < 4; ++p) {
    EXPECT_TRUE(pool.IsCached(a, p));
    auto g = pool.FixPage(a, p, FixMode::kRead);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], 'A' + static_cast<char>(p));
    EXPECT_EQ(g->data(), disk.PeekPage(a, p));
  }
}

TEST(BufferPoolZeroCopy, InvalidateDropsBorrowedFrame) {
  StorageConfig cfg = SmallConfig();
  SimDisk disk(cfg);
  BufferPool pool(&disk, cfg);
  const AreaId a = disk.CreateArea();
  auto page = PageOf(cfg, 'v');
  ASSERT_TRUE(disk.Write(a, 0, 1, page.data()).ok());
  { auto g = pool.FixPage(a, 0, FixMode::kRead); ASSERT_TRUE(g.ok()); }
  ASSERT_TRUE(pool.IsCached(a, 0));
  ASSERT_TRUE(pool.Invalidate(a, 0, 1).ok());
  EXPECT_FALSE(pool.IsCached(a, 0));
}

// ---- Differential: pool_zero_copy on vs off ----

// Drives an identical segment-I/O workload through two pools that differ
// only in pool_zero_copy and demands byte-identical disk images and
// identical modeled costs: borrow-vs-copy must be a wall-clock-only
// concern.
TEST(BufferPoolZeroCopy, DifferentialZeroCopyOnOff) {
  StorageConfig on = SmallConfig();
  on.pool_zero_copy = true;
  StorageConfig off = SmallConfig();
  off.pool_zero_copy = false;

  SimDisk disk_on(on), disk_off(off);
  BufferPool pool_on(&disk_on, on), pool_off(&disk_off, off);
  const AreaId a_on = disk_on.CreateArea();
  const AreaId a_off = disk_off.CreateArea();

  auto drive = [&](SimDisk* disk, BufferPool* pool, AreaId area) {
    const uint32_t P = disk->page_size();
    std::vector<char> buf(16 * P);
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<char>('0' + (i * 7) % 64);
    }
    // Fresh segment write, bypassing the pool.
    ASSERT_TRUE(
        pool->WriteFreshSegment(area, 0, buf.data(), 10 * P + 123).ok());
    // Buffered read-modify-write of an unaligned range.
    ASSERT_TRUE(pool->WriteSegmentRange(area, 0, 10 * P + 123, P / 2,
                                        P + 17, buf.data())
                    .ok());
    // Large unbuffered write crossing many pages.
    ASSERT_TRUE(pool->WriteSegmentRange(area, 0, 10 * P + 123, 2 * P + 5,
                                        7 * P, buf.data())
                    .ok());
    // Reads: buffered window and unbuffered 3-step.
    std::vector<char> out(9 * P);
    ASSERT_TRUE(pool->ReadSegmentRange(area, 0, 10 * P + 123, P - 9,
                                       2 * P, out.data())
                    .ok());
    ASSERT_TRUE(pool->ReadSegmentRange(area, 0, 10 * P + 123, 3,
                                       8 * P + 200, out.data())
                    .ok());
    ASSERT_TRUE(pool->FlushRun(area, 0, 16).ok());
  };
  drive(&disk_on, &pool_on, a_on);
  drive(&disk_off, &pool_off, a_off);

  EXPECT_EQ(disk_on.stats().ms, disk_off.stats().ms);
  EXPECT_EQ(disk_on.stats().Seeks(), disk_off.stats().Seeks());
  EXPECT_EQ(disk_on.stats().PagesTransferred(),
            disk_off.stats().PagesTransferred());
  ASSERT_EQ(disk_on.AreaHighWater(a_on), disk_off.AreaHighWater(a_off));
  for (PageId p = 0; p < disk_on.AreaHighWater(a_on); ++p) {
    const char* img_on = disk_on.PeekPage(a_on, p);
    const char* img_off = disk_off.PeekPage(a_off, p);
    if (img_on == nullptr || img_off == nullptr) {
      EXPECT_EQ(img_on == nullptr, img_off == nullptr) << "page " << p;
      continue;
    }
    EXPECT_EQ(0, std::memcmp(img_on, img_off, on.page_size)) << "page " << p;
  }
}

// ---- PageTable unit coverage ----

TEST(PageTableTest, InsertFindEraseOverwrite) {
  PageTable t;
  EXPECT_EQ(t.Find(42), -1);
  t.Insert(42, 7);
  EXPECT_EQ(t.Find(42), 7);
  t.Insert(42, 9);  // overwrite, not duplicate
  EXPECT_EQ(t.Find(42), 9);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Erase(42));
  EXPECT_FALSE(t.Erase(42));
  EXPECT_EQ(t.Find(42), -1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(PageTableTest, GrowsPastInitialCapacityAndBackShifts) {
  PageTable t;
  // Hundreds of inserts force several rehashes past the 16-bucket floor.
  for (uint64_t k = 0; k < 500; ++k) t.Insert(k * 0x9E3779B97F4A7C15ULL, 1);
  EXPECT_EQ(t.size(), 500u);
  // Erase every other key; the survivors must all stay findable
  // (backward-shift deletion leaves no tombstones to stumble over).
  for (uint64_t k = 0; k < 500; k += 2) {
    EXPECT_TRUE(t.Erase(k * 0x9E3779B97F4A7C15ULL));
  }
  for (uint64_t k = 1; k < 500; k += 2) {
    EXPECT_EQ(t.Find(k * 0x9E3779B97F4A7C15ULL), 1) << k;
  }
  for (uint64_t k = 0; k < 500; k += 2) {
    EXPECT_EQ(t.Find(k * 0x9E3779B97F4A7C15ULL), -1) << k;
  }
}

TEST(PageTableTest, MatchesReferenceMapUnderChurn) {
  PageTable t;
  std::vector<std::pair<uint64_t, uint32_t>> ref;
  uint64_t rng = 12345;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = next() % 257;  // small key space: heavy churn
    if (next() % 3 == 0) {
      t.Erase(key);
      for (auto it = ref.begin(); it != ref.end(); ++it) {
        if (it->first == key) { ref.erase(it); break; }
      }
    } else {
      const uint32_t slot = static_cast<uint32_t>(next() % 1000);
      t.Insert(key, slot);
      bool found = false;
      for (auto& kv : ref) {
        if (kv.first == key) { kv.second = slot; found = true; break; }
      }
      if (!found) ref.emplace_back(key, slot);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& kv : ref) {
    EXPECT_EQ(t.Find(kv.first), static_cast<int>(kv.second)) << kv.first;
  }
}

}  // namespace
}  // namespace lob
