// Tests for bench-diff: JSON flattening, glob matching, drift
// classification, gate evaluation (including the rotted-gate rule), and
// the zero-drift self-diff contract the CI perf gate relies on.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/json.h"
#include "obs/bench_diff.h"

namespace lob {
namespace {

JsonValue MustParse(const std::string& text) {
  auto v = JsonValue::Parse(text);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : JsonValue();
}

TEST(FlattenJsonTest, FlattensNumbersBoolsAndArrays) {
  const JsonValue v = MustParse(
      R"({"a": 1, "b": {"c": 2.5, "d": true}, "e": [10, 20], "s": "skip"})");
  std::map<std::string, double> out;
  FlattenJsonNumbers(v, "", &out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out.at("a"), 1.0);
  EXPECT_DOUBLE_EQ(out.at("b.c"), 2.5);
  EXPECT_DOUBLE_EQ(out.at("b.d"), 1.0);
  EXPECT_DOUBLE_EQ(out.at("e.0"), 10.0);
  EXPECT_DOUBLE_EQ(out.at("e.1"), 20.0);
  EXPECT_EQ(out.count("s"), 0u);
}

TEST(GlobMatchTest, StarCrossesDots) {
  EXPECT_TRUE(GlobMatch("metrics.cells_per_sec", "metrics.cells_per_sec"));
  EXPECT_TRUE(GlobMatch("metrics_snapshot.ops.*.p99_ms",
                        "metrics_snapshot.ops.esm.append.p99_ms"));
  EXPECT_TRUE(GlobMatch("*", "anything.at.all"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_FALSE(GlobMatch("metrics.*", "other.cells_per_sec"));
  EXPECT_TRUE(GlobMatch("*.p99_ms", "x.p99_ms"));
  EXPECT_FALSE(GlobMatch("*.p99_ms", "x.p50_ms"));
}

TEST(BenchDiffTest, SelfDiffIsZeroDriftAndExitsClean) {
  const JsonValue a = MustParse(
      R"({"metrics": {"cells_per_sec": 10.0}, "cells": [{"wall_ms": 3.0}]})");
  auto d = BenchDiff::Compare(a, a, nullptr);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->ZeroDrift());
  EXPECT_FALSE(d->HasViolations());
  for (const auto& row : d->rows()) {
    EXPECT_DOUBLE_EQ(row.abs_delta, 0.0) << row.metric;
    EXPECT_EQ(row.cls, BenchDiff::Class::kNeutral) << row.metric;
  }
  EXPECT_NE(d->ToTable().find("zero drift"), std::string::npos);
}

TEST(BenchDiffTest, ClassifiesByDirectionHeuristic) {
  const JsonValue a = MustParse(
      R"({"cells_per_sec": 10.0, "read.p99_ms": 100.0, "pool.misses": 50})");
  const JsonValue b = MustParse(
      R"({"cells_per_sec": 5.0, "read.p99_ms": 50.0, "pool.misses": 100})");
  auto d = BenchDiff::Compare(a, b, nullptr);
  ASSERT_TRUE(d.ok());
  std::map<std::string, BenchDiff::Class> by_metric;
  for (const auto& row : d->rows()) by_metric[row.metric] = row.cls;
  // Throughput halved: regression. Latency halved: improvement.
  // Misses doubled: regression.
  EXPECT_EQ(by_metric.at("cells_per_sec"), BenchDiff::Class::kRegression);
  EXPECT_EQ(by_metric.at("read.p99_ms"), BenchDiff::Class::kImprovement);
  EXPECT_EQ(by_metric.at("pool.misses"), BenchDiff::Class::kRegression);
}

TEST(BenchDiffTest, NeutralBandSuppressesSmallDrift) {
  const JsonValue a = MustParse(R"({"cells_per_sec": 100.0})");
  const JsonValue b = MustParse(R"({"cells_per_sec": 99.5})");
  auto d = BenchDiff::Compare(a, b, nullptr, /*neutral_band=*/0.01);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rows()[0].cls, BenchDiff::Class::kNeutral);
  auto tight = BenchDiff::Compare(a, b, nullptr, /*neutral_band=*/0.001);
  ASSERT_TRUE(tight.ok());
  EXPECT_EQ(tight->rows()[0].cls, BenchDiff::Class::kRegression);
}

TEST(BenchDiffTest, GateViolationOnRegressionPastThreshold) {
  const JsonValue gates = MustParse(
      R"({"gates": [{"name": "tput", "metric": "metrics.cells_per_sec",
                     "direction": "higher", "max_regression": 0.20}]})");
  const JsonValue a = MustParse(R"({"metrics": {"cells_per_sec": 100.0}})");
  const JsonValue ok_b = MustParse(R"({"metrics": {"cells_per_sec": 85.0}})");
  const JsonValue bad_b = MustParse(R"({"metrics": {"cells_per_sec": 70.0}})");

  auto ok = BenchDiff::Compare(a, ok_b, &gates);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->gates_checked(), 1);
  EXPECT_FALSE(ok->HasViolations());

  auto bad = BenchDiff::Compare(a, bad_b, &gates);
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->HasViolations());
  ASSERT_FALSE(bad->violations().empty());
  EXPECT_NE(bad->violations()[0].find("tput"), std::string::npos);
}

TEST(BenchDiffTest, LowerBetterGateAndGlobFanout) {
  const JsonValue gates = MustParse(
      R"({"gates": [{"name": "p99", "metric": "ops.*.p99_ms",
                     "direction": "lower", "max_regression": 0.05}]})");
  const JsonValue a = MustParse(
      R"({"ops": {"esm.read": {"p99_ms": 100.0}, "eos.read": {"p99_ms": 200.0}}})");
  const JsonValue b = MustParse(
      R"({"ops": {"esm.read": {"p99_ms": 103.0}, "eos.read": {"p99_ms": 230.0}}})");
  auto d = BenchDiff::Compare(a, b, &gates);
  ASSERT_TRUE(d.ok());
  // Both leaves are gated; only the +15% one violates the 5% ceiling.
  EXPECT_TRUE(d->HasViolations());
  ASSERT_EQ(d->violations().size(), 1u);
  EXPECT_NE(d->violations()[0].find("eos.read"), std::string::npos);
}

TEST(BenchDiffTest, RottedGateIsAViolation) {
  const JsonValue gates = MustParse(
      R"({"gates": [{"name": "gone", "metric": "metrics.no_such_metric",
                     "direction": "higher", "max_regression": 0.2}]})");
  const JsonValue a = MustParse(R"({"metrics": {"cells_per_sec": 1.0}})");
  auto d = BenchDiff::Compare(a, a, &gates);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->HasViolations());
  ASSERT_FALSE(d->violations().empty());
  EXPECT_NE(d->violations()[0].find("gone"), std::string::npos);
}

// A report_only gate is evaluated like an enforcing one, but every
// finding — regression, one-sided metric, rotted pattern — lands in
// notes() and never fails the diff. This is how a gate rides along
// before the pinned baseline carries its metric (e.g. queue-wait p99).
TEST(BenchDiffTest, ReportOnlyGateNeverViolates) {
  const JsonValue gates = MustParse(
      R"({"gates": [{"name": "q99", "metric": "ops.*.queue_p99_ms",
                     "direction": "lower", "max_regression": 0.1,
                     "report_only": true}]})");
  // Regression beyond the ceiling plus a metric absent from baseline:
  // both would be violations for an enforcing gate.
  const JsonValue a = MustParse(
      R"({"ops": {"read": {"queue_p99_ms": 10.0}}})");
  const JsonValue b = MustParse(
      R"({"ops": {"read": {"queue_p99_ms": 20.0},
                  "insert": {"queue_p99_ms": 5.0}}})");
  auto d = BenchDiff::Compare(a, b, &gates);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->HasViolations());
  EXPECT_TRUE(d->violations().empty());
  ASSERT_EQ(d->notes().size(), 2u);
  EXPECT_NE(d->notes()[0].find("missing from baseline"), std::string::npos);
  EXPECT_NE(d->notes()[1].find("read"), std::string::npos);
  for (const auto& row : d->rows()) EXPECT_FALSE(row.violation);
  // Notes render in the table ("REPORT:") and JSON ("notes") outputs.
  EXPECT_NE(d->ToTable().find("REPORT: "), std::string::npos);
  EXPECT_NE(d->ToJson().find("\"notes\""), std::string::npos);

  // Rotted report_only gate: a note, not a violation.
  const JsonValue rotted = MustParse(
      R"({"gates": [{"name": "gone", "metric": "no.such.leaf",
                     "direction": "lower", "max_regression": 0.1,
                     "report_only": true}]})");
  auto r = BenchDiff::Compare(a, a, &rotted);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->HasViolations());
  ASSERT_EQ(r->notes().size(), 1u);
  EXPECT_NE(r->notes()[0].find("rotted gate"), std::string::npos);
}

TEST(BenchDiffTest, OneSidedMetricsAreReported) {
  const JsonValue a = MustParse(R"({"old_only": 1.0, "both": 2.0})");
  const JsonValue b = MustParse(R"({"new_only": 3.0, "both": 2.0})");
  auto d = BenchDiff::Compare(a, b, nullptr);
  ASSERT_TRUE(d.ok());
  std::map<std::string, const BenchDiff::Row*> by_metric;
  for (const auto& row : d->rows()) by_metric[row.metric] = &row;
  ASSERT_EQ(by_metric.size(), 3u);
  EXPECT_TRUE(by_metric.at("old_only")->in_a);
  EXPECT_FALSE(by_metric.at("old_only")->in_b);
  EXPECT_FALSE(by_metric.at("new_only")->in_a);
  EXPECT_TRUE(by_metric.at("new_only")->in_b);
  // A gated one-sided metric is a violation.
  const JsonValue gates = MustParse(
      R"({"gates": [{"name": "g", "metric": "old_only",
                     "direction": "higher", "max_regression": 0.1}]})");
  auto gated = BenchDiff::Compare(a, b, &gates);
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated->HasViolations());
}

TEST(BenchDiffTest, BadGateFileIsAnError) {
  const JsonValue a = MustParse(R"({"m": 1.0})");
  const JsonValue no_metric =
      MustParse(R"({"gates": [{"name": "g", "direction": "higher"}]})");
  EXPECT_FALSE(BenchDiff::Compare(a, a, &no_metric).ok());
  const JsonValue bad_dir = MustParse(
      R"({"gates": [{"name": "g", "metric": "m", "direction": "sideways"}]})");
  EXPECT_FALSE(BenchDiff::Compare(a, a, &bad_dir).ok());
  const JsonValue neg = MustParse(
      R"({"gates": [{"name": "g", "metric": "m", "direction": "higher",
                     "max_regression": -0.5}]})");
  EXPECT_FALSE(BenchDiff::Compare(a, a, &neg).ok());
}

TEST(BenchDiffTest, OutputFormatsAreWellFormed) {
  const JsonValue a = MustParse(R"({"x.ms": 10.0})");
  const JsonValue b = MustParse(R"({"x.ms": 20.0})");
  auto d = BenchDiff::Compare(a, b, nullptr);
  ASSERT_TRUE(d.ok());
  const std::string csv = d->ToCsv();
  EXPECT_EQ(csv.find("metric,in_baseline,in_new,baseline,new,abs_delta,"
                     "rel_delta,class,gate,violation"),
            0u)
      << csv;
  EXPECT_NE(csv.find("x.ms"), std::string::npos);
  // The JSON report must parse with our own parser.
  auto round = JsonValue::Parse(d->ToJson());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const JsonValue* rows = round->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->as_array().size(), 1u);
  EXPECT_EQ(rows->as_array()[0].StringOr("class", ""), "regression");
  const JsonValue* zd = round->Find("zero_drift");
  ASSERT_NE(zd, nullptr);
  EXPECT_FALSE(zd->as_bool());
}

}  // namespace
}  // namespace lob
