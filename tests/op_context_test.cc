#include <gtest/gtest.h>

#include "buffer/op_context.h"

#include "common/logging.h"
#include "iomodel/sim_disk.h"

namespace lob {
namespace {

class OpContextTest : public ::testing::Test {
 protected:
  OpContextTest() : disk_(cfg_), pool_(&disk_, cfg_) {
    area_ = disk_.CreateArea();
  }

  void StageDirty(PageId page, char fill) {
    auto g = pool_.FixPage(area_, page, FixMode::kNew);
    LOB_CHECK_OK(g.status());
    g->mutable_data()[0] = fill;
    g->MarkDirty();
  }

  StorageConfig cfg_;
  SimDisk disk_;
  BufferPool pool_;
  AreaId area_ = 0;
};

TEST_F(OpContextTest, FinishFlushesDeferredRanges) {
  OpContext ctx(&pool_);
  StageDirty(0, 'a');
  StageDirty(1, 'b');
  ctx.DeferFlush(area_, 0, 2);
  EXPECT_EQ(disk_.stats().write_calls, 0u);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u)
      << "contiguous dirty run flushes in one sequential call";
  EXPECT_EQ(disk_.stats().pages_written, 2u);
}

TEST_F(OpContextTest, FinishSkipsCleanPages) {
  OpContext ctx(&pool_);
  auto g = pool_.FixPage(area_, 5, FixMode::kNew);
  ASSERT_TRUE(g.ok());
  g->Release();
  ctx.DeferFlush(area_, 5, 1);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 0u) << "clean pages are not written";
}

TEST_F(OpContextTest, DuplicateDefersAreHarmless) {
  OpContext ctx(&pool_);
  StageDirty(3, 'x');
  ctx.DeferFlush(area_, 3, 1);
  ctx.DeferFlush(area_, 3, 1);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u)
      << "second flush finds the page clean";
}

TEST_F(OpContextTest, ShadowTrackingResetsOnFinish) {
  OpContext ctx(&pool_);
  EXPECT_FALSE(ctx.AlreadyShadowed(area_, 9));
  ctx.NoteShadowed(area_, 9);
  EXPECT_TRUE(ctx.AlreadyShadowed(area_, 9));
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_FALSE(ctx.AlreadyShadowed(area_, 9))
      << "a new operation may shadow the page again";
}

TEST_F(OpContextTest, ContextIsReusableAcrossOperations) {
  OpContext ctx(&pool_);
  for (int op = 0; op < 3; ++op) {
    StageDirty(static_cast<PageId>(10 + op), 'y');
    ctx.DeferFlush(area_, static_cast<PageId>(10 + op), 1);
    ASSERT_TRUE(ctx.Finish().ok());
  }
  EXPECT_EQ(disk_.stats().write_calls, 3u);
}

TEST_F(OpContextTest, NonContiguousDirtyRunsSplitCalls) {
  OpContext ctx(&pool_);
  StageDirty(20, 'a');
  StageDirty(22, 'b');  // hole at 21
  ctx.DeferFlush(area_, 20, 3);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 2u)
      << "a hole in the dirty run costs a second seek";
}

TEST_F(OpContextTest, FailedFinishClearsDeferredState) {
  // Seed-code regression: a Finish that failed mid-flush returned early,
  // leaving the deferred ranges in place; the next operation on the same
  // context re-flushed the stale ranges. After the fix, state is cleared
  // on every exit path.
  OpContext ctx(&pool_);
  StageDirty(0, 'a');
  ctx.DeferFlush(area_, 0, 1);
  disk_.InjectFailureAfter(0);
  EXPECT_FALSE(ctx.Finish().ok()) << "injected I/O failure must propagate";
  disk_.InjectFailureAfter(-1);
  EXPECT_FALSE(ctx.has_pending())
      << "a failed Finish must still clear the context";

  // Next operation: only its own range may be flushed. Page 0 is still
  // dirty in the pool (its flush failed), so a leaked deferred range
  // would cost an extra write call here.
  StageDirty(7, 'b');
  ctx.DeferFlush(area_, 7, 1);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u)
      << "stale ranges from the failed operation must not be re-flushed";
  EXPECT_EQ(disk_.stats().pages_written, 1u);
}

TEST_F(OpContextTest, FailedFinishClearsShadowMarks) {
  OpContext ctx(&pool_);
  StageDirty(0, 'a');
  ctx.DeferFlush(area_, 0, 1);
  ctx.NoteShadowed(area_, 3);
  disk_.InjectFailureAfter(0);
  ASSERT_FALSE(ctx.Finish().ok());
  disk_.InjectFailureAfter(-1);
  EXPECT_FALSE(ctx.AlreadyShadowed(area_, 3))
      << "the next operation must be allowed to shadow the page again";
}

TEST_F(OpContextTest, FinishAttemptsRemainingRangesAfterFailure) {
  // Best-effort durability: a failure on the first range must not skip
  // the later ones.
  OpContext ctx(&pool_);
  StageDirty(0, 'a');
  StageDirty(5, 'b');
  ctx.DeferFlush(area_, 0, 1);
  ctx.DeferFlush(area_, 5, 1);
  disk_.InjectFailureAfter(1);  // first flush fails, second succeeds
  EXPECT_FALSE(ctx.Finish().ok());
  disk_.InjectFailureAfter(-1);
  EXPECT_EQ(disk_.stats().write_calls, 1u)
      << "the second range still flushed after the first failed";
}

TEST_F(OpContextTest, DoubleFaultPreservesFirstErrorAndClearsState) {
  // Two distinct injected faults during one Finish: the *first* error's
  // Status must be the one returned (later failures must not overwrite
  // it) and the context must still come out cleared.
  OpContext ctx(&pool_);
  StageDirty(0, 'a');
  StageDirty(5, 'b');
  StageDirty(9, 'c');
  ctx.DeferFlush(area_, 0, 1);
  ctx.DeferFlush(area_, 5, 1);
  ctx.DeferFlush(area_, 9, 1);

  FaultSpec first;
  first.after_calls = 0;
  first.message = "fault-one";
  disk_.ArmFault(first);
  FaultSpec second;
  second.after_calls = 0;  // fires on the next call after `first` fired
  second.message = "fault-two";
  disk_.ArmFault(second);

  Status s = ctx.Finish();
  disk_.ClearFaults();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "fault-one")
      << "the first fault's Status must be preserved, got: " << s.ToString();
  EXPECT_FALSE(ctx.has_pending())
      << "a doubly-failed Finish must still clear the context";
  // Third range still flushed (best-effort past both faults).
  EXPECT_EQ(disk_.stats().write_calls, 1u);

  // The context stays usable: the next op flushes only its own range.
  StageDirty(20, 'd');
  ctx.DeferFlush(area_, 20, 1);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 2u);
}

TEST_F(OpContextTest, AbortDropsPendingWorkWithoutWriting) {
  OpContext ctx(&pool_);
  StageDirty(11, 'z');
  ctx.DeferFlush(area_, 11, 1);
  ctx.NoteShadowed(area_, 12);
  EXPECT_TRUE(ctx.has_pending());
  ctx.Abort();
  EXPECT_FALSE(ctx.has_pending());
  EXPECT_FALSE(ctx.AlreadyShadowed(area_, 12));
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 0u)
      << "aborted ranges are never written";
}

}  // namespace
}  // namespace lob
