#include <gtest/gtest.h>

#include "buffer/op_context.h"

#include "common/logging.h"
#include "iomodel/sim_disk.h"

namespace lob {
namespace {

class OpContextTest : public ::testing::Test {
 protected:
  OpContextTest() : disk_(cfg_), pool_(&disk_, cfg_) {
    area_ = disk_.CreateArea();
  }

  void StageDirty(PageId page, char fill) {
    auto g = pool_.FixPage(area_, page, FixMode::kNew);
    LOB_CHECK_OK(g.status());
    g->data()[0] = fill;
    g->MarkDirty();
  }

  StorageConfig cfg_;
  SimDisk disk_;
  BufferPool pool_;
  AreaId area_ = 0;
};

TEST_F(OpContextTest, FinishFlushesDeferredRanges) {
  OpContext ctx(&pool_);
  StageDirty(0, 'a');
  StageDirty(1, 'b');
  ctx.DeferFlush(area_, 0, 2);
  EXPECT_EQ(disk_.stats().write_calls, 0u);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u)
      << "contiguous dirty run flushes in one sequential call";
  EXPECT_EQ(disk_.stats().pages_written, 2u);
}

TEST_F(OpContextTest, FinishSkipsCleanPages) {
  OpContext ctx(&pool_);
  auto g = pool_.FixPage(area_, 5, FixMode::kNew);
  ASSERT_TRUE(g.ok());
  g->Release();
  ctx.DeferFlush(area_, 5, 1);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 0u) << "clean pages are not written";
}

TEST_F(OpContextTest, DuplicateDefersAreHarmless) {
  OpContext ctx(&pool_);
  StageDirty(3, 'x');
  ctx.DeferFlush(area_, 3, 1);
  ctx.DeferFlush(area_, 3, 1);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 1u)
      << "second flush finds the page clean";
}

TEST_F(OpContextTest, ShadowTrackingResetsOnFinish) {
  OpContext ctx(&pool_);
  EXPECT_FALSE(ctx.AlreadyShadowed(area_, 9));
  ctx.NoteShadowed(area_, 9);
  EXPECT_TRUE(ctx.AlreadyShadowed(area_, 9));
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_FALSE(ctx.AlreadyShadowed(area_, 9))
      << "a new operation may shadow the page again";
}

TEST_F(OpContextTest, ContextIsReusableAcrossOperations) {
  OpContext ctx(&pool_);
  for (int op = 0; op < 3; ++op) {
    StageDirty(static_cast<PageId>(10 + op), 'y');
    ctx.DeferFlush(area_, static_cast<PageId>(10 + op), 1);
    ASSERT_TRUE(ctx.Finish().ok());
  }
  EXPECT_EQ(disk_.stats().write_calls, 3u);
}

TEST_F(OpContextTest, NonContiguousDirtyRunsSplitCalls) {
  OpContext ctx(&pool_);
  StageDirty(20, 'a');
  StageDirty(22, 'b');  // hole at 21
  ctx.DeferFlush(area_, 20, 3);
  ASSERT_TRUE(ctx.Finish().ok());
  EXPECT_EQ(disk_.stats().write_calls, 2u)
      << "a hole in the dirty run costs a second seek";
}

}  // namespace
}  // namespace lob
