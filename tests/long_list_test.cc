#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "common/rng.h"
#include "core/factory.h"
#include "core/long_list.h"
#include "core/storage_system.h"

namespace lob {
namespace {

struct Sample {
  uint64_t key;
  uint64_t value;
  bool operator==(const Sample&) const = default;
};

class LongListTest : public ::testing::TestWithParam<int> {
 protected:
  LongListTest() : sys_() {
    switch (GetParam()) {
      case 0:
        mgr_ = CreateEsmManager(&sys_, 4);
        break;
      case 1:
        mgr_ = CreateStarburstManager(&sys_);
        break;
      default:
        mgr_ = CreateEosManager(&sys_, 4);
        break;
    }
    list_ = std::make_unique<LongList>(mgr_.get(), sizeof(Sample));
    auto id = list_->Create();
    LOB_CHECK_OK(id.status());
    id_ = *id;
  }

  StorageSystem sys_;
  std::unique_ptr<LargeObjectManager> mgr_;
  std::unique_ptr<LongList> list_;
  ObjectId id_ = 0;
};

TEST_P(LongListTest, EmptyList) {
  auto size = list_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
  Sample out;
  EXPECT_FALSE(list_->Get(id_, 0, &out).ok());
}

TEST_P(LongListTest, PushBackAndGet) {
  for (uint64_t i = 0; i < 100; ++i) {
    Sample s{i, i * i};
    ASSERT_TRUE(list_->PushBack(id_, &s).ok());
  }
  auto size = list_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 100u);
  Sample out;
  ASSERT_TRUE(list_->Get(id_, 42, &out).ok());
  EXPECT_EQ(out, (Sample{42, 42 * 42}));
}

TEST_P(LongListTest, AppendManyAndGetRange) {
  std::vector<Sample> batch(5000);
  for (uint64_t i = 0; i < batch.size(); ++i) batch[i] = {i, 2 * i};
  ASSERT_TRUE(list_->AppendMany(id_, batch.data(), batch.size()).ok());
  std::vector<Sample> out(100);
  ASSERT_TRUE(list_->GetRange(id_, 2000, 100, out.data()).ok());
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], (Sample{2000 + i, 2 * (2000 + i)}));
  }
}

TEST_P(LongListTest, InsertShiftsElements) {
  for (uint64_t i = 0; i < 10; ++i) {
    Sample s{i, i};
    ASSERT_TRUE(list_->PushBack(id_, &s).ok());
  }
  Sample mid{999, 999};
  ASSERT_TRUE(list_->Insert(id_, 5, &mid).ok());
  Sample out;
  ASSERT_TRUE(list_->Get(id_, 5, &out).ok());
  EXPECT_EQ(out.key, 999u);
  ASSERT_TRUE(list_->Get(id_, 6, &out).ok());
  EXPECT_EQ(out.key, 5u);
  auto size = list_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST_P(LongListTest, RemoveShiftsElements) {
  for (uint64_t i = 0; i < 10; ++i) {
    Sample s{i, i};
    ASSERT_TRUE(list_->PushBack(id_, &s).ok());
  }
  ASSERT_TRUE(list_->Remove(id_, 3).ok());
  Sample out;
  ASSERT_TRUE(list_->Get(id_, 3, &out).ok());
  EXPECT_EQ(out.key, 4u);
  auto size = list_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 9u);
}

TEST_P(LongListTest, SetOverwritesInPlace) {
  for (uint64_t i = 0; i < 10; ++i) {
    Sample s{i, i};
    ASSERT_TRUE(list_->PushBack(id_, &s).ok());
  }
  Sample repl{7, 70};
  ASSERT_TRUE(list_->Set(id_, 7, &repl).ok());
  Sample out;
  ASSERT_TRUE(list_->Get(id_, 7, &out).ok());
  EXPECT_EQ(out.value, 70u);
  auto size = list_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 10u);
}

TEST_P(LongListTest, OutOfRangeRejected) {
  Sample s{1, 1};
  ASSERT_TRUE(list_->PushBack(id_, &s).ok());
  EXPECT_FALSE(list_->Insert(id_, 2, &s).ok());
  EXPECT_FALSE(list_->Remove(id_, 1).ok());
  EXPECT_FALSE(list_->Set(id_, 1, &s).ok());
  Sample out;
  EXPECT_FALSE(list_->Get(id_, 1, &out).ok());
}

TEST_P(LongListTest, DestroyFreesStorage) {
  std::vector<Sample> batch(10000);
  for (uint64_t i = 0; i < batch.size(); ++i) batch[i] = {i, i};
  ASSERT_TRUE(list_->AppendMany(id_, batch.data(), batch.size()).ok());
  ASSERT_GT(sys_.leaf_area()->allocated_pages(), 0u);
  ASSERT_TRUE(list_->Destroy(id_).ok());
  EXPECT_EQ(sys_.leaf_area()->allocated_pages(), 0u);
}

// Property test against std::deque.
TEST_P(LongListTest, RandomOpsMatchDeque) {
  std::deque<Sample> model;
  Rng rng(123 + static_cast<uint64_t>(GetParam()));
  const int ops = GetParam() == 1 ? 120 : 400;  // Starburst updates cost
  for (int step = 0; step < ops; ++step) {
    const double p = rng.NextDouble();
    if (model.empty() || p < 0.4) {
      Sample s{rng.Next(), rng.Next()};
      const uint64_t at = rng.Uniform(0, model.size());
      ASSERT_TRUE(list_->Insert(id_, at, &s).ok()) << "step " << step;
      model.insert(model.begin() + static_cast<long>(at), s);
    } else if (p < 0.6) {
      const uint64_t at = rng.Uniform(0, model.size() - 1);
      ASSERT_TRUE(list_->Remove(id_, at).ok()) << "step " << step;
      model.erase(model.begin() + static_cast<long>(at));
    } else if (p < 0.8) {
      const uint64_t at = rng.Uniform(0, model.size() - 1);
      Sample s{rng.Next(), rng.Next()};
      ASSERT_TRUE(list_->Set(id_, at, &s).ok()) << "step " << step;
      model[at] = s;
    } else {
      const uint64_t at = rng.Uniform(0, model.size() - 1);
      Sample out;
      ASSERT_TRUE(list_->Get(id_, at, &out).ok()) << "step " << step;
      ASSERT_EQ(out, model[at]) << "step " << step;
    }
  }
  auto size = list_->Size(id_);
  ASSERT_TRUE(size.ok());
  ASSERT_EQ(*size, model.size());
  for (size_t i = 0; i < model.size(); i += 7) {
    Sample out;
    ASSERT_TRUE(list_->Get(id_, i, &out).ok());
    ASSERT_EQ(out, model[i]) << "index " << i;
  }
}

std::string EngineParamName(
    const ::testing::TestParamInfo<int>& param_info) {
  return param_info.param == 0   ? "Esm"
         : param_info.param == 1 ? "Starburst"
                                 : "Eos";
}

INSTANTIATE_TEST_SUITE_P(Engines, LongListTest, ::testing::Values(0, 1, 2),
                         EngineParamName);

}  // namespace
}  // namespace lob
