// Fsck self-tests: clean systems report clean, and each seeded
// corruption class is detected with a precise diagnostic. Corruptions
// are planted by editing page images through the buffer pool (the same
// path the engines use), never through engine APIs — fsck must catch
// damage the engines did not inflict themselves.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "check/fsck.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "lobtree/node_layout.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

uint32_t LoadU32At(const char* p, size_t off) {
  uint32_t v;
  std::memcpy(&v, p + off, 4);
  return v;
}

class FsckTest : public ::testing::Test {
 protected:
  std::unique_ptr<LargeObjectManager> MakeManager(int engine) {
    switch (engine) {
      case 0:
        return CreateEsmManager(&sys_, 4);
      case 1:
        return CreateStarburstManager(&sys_);
      default:
        return CreateEosManager(&sys_, 4);
    }
  }

  /// Creates an object and loads it with a multi-segment byte pattern.
  ObjectId Build(LargeObjectManager* mgr) {
    auto id = mgr->Create();
    LOB_CHECK_OK(id.status());
    LOB_CHECK_OK(mgr->Append(*id, Pattern(11, 3000)));
    LOB_CHECK_OK(mgr->Append(*id, Pattern(12, 9000)));
    LOB_CHECK_OK(mgr->Append(*id, Pattern(13, 20000)));
    LOB_CHECK_OK(sys_.FlushAll());
    return *id;
  }

  /// Edits `n` bytes at `off` within a meta-area page image, through the
  /// pool (the same path the engines write through).
  void PokePage(PageId page, size_t off, const void* bytes, size_t n) {
    auto g = sys_.pool()->FixPage(sys_.meta_area()->id(), page, FixMode::kRead);
    LOB_CHECK_OK(g.status());
    std::memcpy(g->mutable_data() + off, bytes, n);
    g->MarkDirty();
    g->Release();
    LOB_CHECK_OK(sys_.pool()->FlushRun(sys_.meta_area()->id(), page, 1));
  }

  void PokeU32(PageId page, size_t off, uint32_t v) {
    PokePage(page, off, &v, 4);
  }

  uint32_t PeekU32(PageId page, size_t off) {
    auto g = sys_.pool()->FixPage(sys_.meta_area()->id(), page, FixMode::kRead);
    LOB_CHECK_OK(g.status());
    return LoadU32At(g->data(), off);
  }

  StorageSystem sys_;
};

TEST_F(FsckTest, CleanSystemsReportClean) {
  for (int engine = 0; engine < 3; ++engine) {
    StorageSystem sys;
    std::unique_ptr<LargeObjectManager> mgr;
    switch (engine) {
      case 0:
        mgr = CreateEsmManager(&sys, 4);
        break;
      case 1:
        mgr = CreateStarburstManager(&sys);
        break;
      default:
        mgr = CreateEosManager(&sys, 4);
        break;
    }
    auto id = mgr->Create();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(mgr->Append(*id, Pattern(1, 50000)).ok());
    ASSERT_TRUE(mgr->Insert(*id, 7000, Pattern(2, 5000)).ok());
    ASSERT_TRUE(mgr->Delete(*id, 20000, 8000).ok());
    ASSERT_TRUE(mgr->Replace(*id, 100, Pattern(3, 4000)).ok());

    auto report = FsckObjects(&sys, {{*id, mgr.get()}});
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean())
        << "engine " << engine << ":\n" << report->ToString();
  }
}

// Fixture 1: an extent the allocator holds but no object references.
TEST_F(FsckTest, OrphanedExtentReportedAsLeak) {
  auto mgr = MakeManager(0);
  const ObjectId id = Build(mgr.get());

  auto orphan = sys_.leaf_area()->Allocate(4);
  ASSERT_TRUE(orphan.ok());

  auto report = FsckObjects(&sys_, {{id, mgr.get()}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasLeaks());
  EXPECT_FALSE(report->HasCorruption())
      << "a leak is waste, not structural damage:\n" << report->ToString();
  ASSERT_EQ(report->issues.size(), 1u) << report->ToString();
  const FsckIssue& issue = report->issues[0];
  EXPECT_EQ(issue.kind, FsckIssueKind::kLeakedExtent);
  EXPECT_EQ(issue.area, sys_.leaf_area()->id());
  EXPECT_EQ(issue.page, orphan->first_page) << "diagnostic names the extent";
  EXPECT_EQ(issue.pages, orphan->pages);

  // Freeing the orphan restores a clean report.
  ASSERT_TRUE(sys_.leaf_area()->Free(*orphan).ok());
  report = FsckObjects(&sys_, {{id, mgr.get()}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

// Fixture 2: two objects claiming the same page. Planted by repointing
// object B's first descriptor slot at object A's first segment.
TEST_F(FsckTest, DoubleAllocatedPageDetected) {
  auto mgr = MakeManager(1);
  const ObjectId a = Build(mgr.get());
  const ObjectId b = Build(mgr.get());

  // Starburst descriptor layout: magic, used_bytes, first_pages,
  // last_alloc_pages, nsegs, then the pointer array at byte 20.
  const uint32_t a_seg0 = PeekU32(a, 20);
  PokeU32(b, 20, a_seg0);

  auto report = FsckObjects(&sys_, {{a, mgr.get()}, {b, mgr.get()}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasCorruption());
  bool found = false;
  for (const FsckIssue& issue : report->issues) {
    if (issue.kind != FsckIssueKind::kDoubleAllocated) continue;
    found = true;
    EXPECT_EQ(issue.page, a_seg0);
    EXPECT_NE(issue.detail.find("claimed by"), std::string::npos)
        << issue.detail;
  }
  EXPECT_TRUE(found) << "expected a double-allocated issue:\n"
                     << report->ToString();
  // B's original first segment is now unreferenced: also a leak.
  EXPECT_TRUE(report->HasLeaks()) << report->ToString();
}

// Fixture 3: Starburst descriptor whose byte count violates the
// last-segment allocation bound (the "last segment is trimmed" rule;
// middle-segment sizes are implicit in the doubling pattern, so the
// descriptor's seedable lie is the last-segment bound).
TEST_F(FsckTest, StarburstLastSegmentBoundViolationDetected) {
  auto mgr = MakeManager(1);
  const ObjectId id = Build(mgr.get());

  // Inflate used_bytes past what the last segment's allocation can hold.
  const uint32_t used = PeekU32(id, 4);
  const uint32_t last_alloc = PeekU32(id, 12);
  PokeU32(id, 4, used + last_alloc * sys_.config().page_size + 1);

  auto report = FsckObjects(&sys_, {{id, mgr.get()}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasCorruption());
  ASSERT_FALSE(report->issues.empty());
  const FsckIssue& issue = report->issues[0];
  EXPECT_EQ(issue.kind, FsckIssueKind::kStructure);
  EXPECT_EQ(issue.object, id);
  EXPECT_NE(issue.detail.find("last segment bytes exceed allocation"),
            std::string::npos)
      << issue.detail;
}

// Fixture 4: EOS threshold-T violation. A freshly appended object
// legitimately carries sub-threshold doubling segments, so the audit is
// opt-in: default options stay clean, the threshold audit flags the
// small adjacent pair.
TEST_F(FsckTest, EosThresholdAuditIsOptIn) {
  auto mgr = MakeManager(2);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  // Doubling appends: segments of 1, 2, 4 pages — the (1, 2) pair is
  // mergeable and below T = 4 pages.
  const uint32_t ps = sys_.config().page_size;
  ASSERT_TRUE(mgr->Append(*id, Pattern(21, ps)).ok());
  ASSERT_TRUE(mgr->Append(*id, Pattern(22, 2 * ps)).ok());
  ASSERT_TRUE(mgr->Append(*id, Pattern(23, 4 * ps)).ok());

  auto report = FsckObjects(&sys_, {{*id, mgr.get()}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean())
      << "default options must not audit thresholds:\n" << report->ToString();

  FsckOptions options;
  options.eos_threshold_pages = 4;
  report = FsckObjects(&sys_, {{*id, mgr.get()}}, {}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasCorruption());
  ASSERT_FALSE(report->issues.empty());
  EXPECT_EQ(report->issues[0].kind, FsckIssueKind::kStructure);
  EXPECT_NE(report->issues[0].detail.find("threshold"), std::string::npos)
      << report->issues[0].detail;
}

// Fixture 5: wrong tree count. An ESM root whose rightmost cumulative
// count lies about the last leaf's bytes.
TEST_F(FsckTest, WrongEsmTreeCountDetected) {
  auto mgr = MakeManager(0);
  const ObjectId id = Build(mgr.get());

  {
    auto g =
        sys_.pool()->FixPage(sys_.meta_area()->id(), id, FixMode::kRead);
    ASSERT_TRUE(g.ok());
    NodeView root(g->mutable_data(), sys_.config().page_size, /*is_root=*/true);
    ASSERT_GT(root.npairs(), 0u);
    const uint32_t last = root.npairs() - 1;
    // Push the last leaf's implied byte count past the leaf capacity
    // (4 pages): the counts no longer match the leaf contents.
    root.SetCount(last, root.Count(last) + 5 * sys_.config().page_size);
    g->MarkDirty();
    g->Release();
    ASSERT_TRUE(sys_.pool()->FlushRun(sys_.meta_area()->id(), id, 1).ok());
  }

  auto report = FsckObjects(&sys_, {{id, mgr.get()}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasCorruption());
  bool found = false;
  for (const FsckIssue& issue : report->issues) {
    if (issue.kind != FsckIssueKind::kStructure) continue;
    found = true;
    EXPECT_EQ(issue.object, id);
    EXPECT_NE(issue.detail.find("ESM"), std::string::npos) << issue.detail;
  }
  EXPECT_TRUE(found) << "expected a structure issue:\n" << report->ToString();
}

TEST_F(FsckTest, ReportToStringIsOneLinePerIssue) {
  auto mgr = MakeManager(0);
  const ObjectId id = Build(mgr.get());
  auto orphan = sys_.leaf_area()->Allocate(2);
  ASSERT_TRUE(orphan.ok());
  auto report = FsckObjects(&sys_, {{id, mgr.get()}});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->issues.size(), 1u);
  const std::string text = report->ToString();
  EXPECT_NE(text.find("leaked-extent"), std::string::npos) << text;
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST_F(FsckTest, FsckDoesNotPerturbMeteredCosts) {
  auto mgr = MakeManager(1);
  const ObjectId id = Build(mgr.get());
  const IoStats before = sys_.stats();
  auto report = FsckObjects(&sys_, {{id, mgr.get()}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(sys_.stats().read_calls, before.read_calls);
  EXPECT_EQ(sys_.stats().write_calls, before.write_calls);
}

}  // namespace
}  // namespace lob
