// Reads a LOB_GUARDED_BY member without holding its mutex: GCC compiles
// this (annotations are no-ops), Clang -Wthread-safety must reject it.

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class BadGuardedRead {
 public:
  // BAD: no lock held, no LOB_REQUIRES — clang: "reading variable
  // 'total_' requires holding mutex 'mu_'".
  int total() const { return total_; }

 private:
  mutable Mutex mu_{LockRank::kCampaign};
  int total_ LOB_GUARDED_BY(mu_) = 0;
};

int Use() {
  BadGuardedRead b;
  return b.total();
}

}  // namespace lob
