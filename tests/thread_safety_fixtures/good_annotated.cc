// Fully annotated locking: must compile warning-free under GCC and under
// clang++ -Wthread-safety -Werror=thread-safety. This is the reference
// shape every mutex-holding class in the tree follows.

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class Annotated {
 public:
  void Add(int v) LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    total_ += v;
  }

  int total() const LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return total_;
  }

  void AddLocked(int v) LOB_REQUIRES(mu_) { total_ += v; }

  void AddViaHelper(int v) LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    AddLocked(v);
  }

 private:
  mutable Mutex mu_{LockRank::kCampaign};
  int total_ LOB_GUARDED_BY(mu_) = 0;
};

int Use() {
  Annotated a;
  a.Add(1);
  a.AddViaHelper(2);
  return a.total();
}

}  // namespace lob
