// Calls an LOB_REQUIRES(mu_) method without holding the lock: Clang must
// reject the call site ("calling function ... requires holding mutex").

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class BadRequiresUnheld {
 public:
  void AddLocked(int v) LOB_REQUIRES(mu_) { total_ += v; }

  void Add(int v) {
    AddLocked(v);  // BAD: mu_ not held
  }

 private:
  Mutex mu_{LockRank::kCampaign};
  int total_ LOB_GUARDED_BY(mu_) = 0;
};

void Use() {
  BadRequiresUnheld b;
  b.Add(1);
}

}  // namespace lob
