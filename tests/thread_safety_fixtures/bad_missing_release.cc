// Manual Lock() with a return path that never unlocks: Clang's capability
// analysis must reject the function for failing to release `mu_` (and for
// the inconsistent lock state across the early return).

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class BadMissingRelease {
 public:
  void Add(int v) LOB_EXCLUDES(mu_) {
    mu_.Lock();
    if (v < 0) return;  // BAD: still holding mu_
    total_ += v;
    mu_.Unlock();
  }

 private:
  Mutex mu_{LockRank::kCampaign};
  int total_ LOB_GUARDED_BY(mu_) = 0;
};

void Use() {
  BadMissingRelease b;
  b.Add(-1);
}

}  // namespace lob
