// Targeted error-path regressions: every structural operation of every
// engine, failed at *every* attributed I/O depth, must leave storage
// fsck-clean — no leaked extents, no broken invariants. These are the
// unit-level counterparts of the campaign matrix: one operation per run
// (instead of a whole trace), so a regression pinpoints the op.
//
// The operations are chosen to hit the allocation-heavy paths the
// seed code leaked on: Starburst doubling growth and tail rebuilds,
// ESM leaf splits, EOS segment shuffles/merges, and shadowed replaces.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/fsck.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "iomodel/fault_model.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

using OpFn = std::function<Status(LargeObjectManager*, ObjectId)>;

struct NamedOp {
  const char* name;
  OpFn run;
};

std::vector<NamedOp> StructuralOps() {
  return {
      // Growth: segment doubling (Starburst), leaf splits (ESM/EOS).
      {"append", [](LargeObjectManager* m, ObjectId id) {
         return m->Append(id, Pattern(50, 40000));
       }},
      // Interior insert: tail rebuild / node splits / shuffles.
      {"insert", [](LargeObjectManager* m, ObjectId id) {
         return m->Insert(id, 9000, Pattern(51, 12000));
       }},
      // Delete: merges, shuffles, tail rebuilds.
      {"delete", [](LargeObjectManager* m, ObjectId id) {
         return m->Delete(id, 5000, 15000);
       }},
      // Replace: shadowing of whole segments.
      {"replace", [](LargeObjectManager* m, ObjectId id) {
         return m->Replace(id, 3000, Pattern(52, 10000));
       }},
      // Trim: frees growth slack (Starburst/EOS).
      {"trim", [](LargeObjectManager* m, ObjectId id) {
         return m->Trim(id);
       }},
      // Destroy: frees everything; a fault must not strand half of it.
      {"destroy", [](LargeObjectManager* m, ObjectId id) {
         return m->Destroy(id);
       }},
  };
}

class FaultRecoveryTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<LargeObjectManager> MakeManager(StorageSystem* sys) {
    switch (GetParam()) {
      case 0:
        return CreateEsmManager(sys, 4);
      case 1:
        return CreateStarburstManager(sys);
      default:
        return CreateEosManager(sys, 4);
    }
  }

  /// Builds the standard pre-state: ~44K in mixed appends (several
  /// segments in every engine).
  ObjectId Build(LargeObjectManager* mgr) {
    auto id = mgr->Create();
    LOB_CHECK_OK(id.status());
    LOB_CHECK_OK(mgr->Append(*id, Pattern(40, 12000)));
    LOB_CHECK_OK(mgr->Append(*id, Pattern(41, 32000)));
    return *id;
  }
};

TEST_P(FaultRecoveryTest, EveryOpIsFsckCleanAtEveryFaultDepth) {
  for (const NamedOp& op : StructuralOps()) {
    // Fault-free run: count the attributed I/O calls the op issues.
    uint64_t op_calls = 0;
    {
      StorageSystem sys;
      auto mgr = MakeManager(&sys);
      const ObjectId id = Build(mgr.get());
      const uint64_t before = sys.disk()->foreground_calls();
      ASSERT_TRUE(op.run(mgr.get(), id).ok()) << op.name;
      op_calls = sys.disk()->foreground_calls() - before;
    }
    // Some ops are free for some engines (e.g. Trim is a no-op on ESM);
    // nothing to inject into then.
    if (op_calls == 0) continue;

    // Fail the op at every depth; storage must stay consistent.
    for (uint64_t k = 0; k < op_calls; ++k) {
      StorageSystem sys;
      auto mgr = MakeManager(&sys);
      const ObjectId id = Build(mgr.get());

      // Countdowns are relative to arming: k foreground calls into the
      // op succeed, the (k+1)-th fails.
      FaultSpec fault;
      fault.kind = FaultKind::kOneShot;
      fault.after_calls = k;
      fault.message = "recovery fault";
      sys.disk()->ArmFault(fault);
      const Status s = op.run(mgr.get(), id);
      sys.disk()->ClearFaults();

      // A destroyed object no longer exists; everything else must still
      // pass its own fsck. Either way the allocator sweep must find no
      // strand.
      std::vector<std::pair<ObjectId, LargeObjectManager*>> objects;
      const bool destroyed = std::string(op.name) == "destroy" && s.ok();
      if (!destroyed) objects.emplace_back(id, mgr.get());
      auto report = FsckObjects(&sys, objects);
      ASSERT_TRUE(report.ok())
          << op.name << " k=" << k << ": " << report.status().ToString();
      EXPECT_FALSE(report->HasLeaks())
          << op.name << " k=" << k << " (op status: " << s.ToString()
          << ")\n"
          << report->ToString();
      EXPECT_FALSE(report->HasCorruption())
          << op.name << " k=" << k << " (op status: " << s.ToString()
          << ")\n"
          << report->ToString();
    }
  }
}

TEST_P(FaultRecoveryTest, FailedCreateLeaksNothing) {
  // Create allocates the root/descriptor page; failing any of its I/O
  // calls must release it.
  uint64_t create_calls = 0;
  {
    StorageSystem sys;
    auto mgr = MakeManager(&sys);
    const uint64_t before = sys.disk()->foreground_calls();
    ASSERT_TRUE(mgr->Create().ok());
    create_calls = sys.disk()->foreground_calls() - before;
  }
  for (uint64_t k = 0; k <= create_calls; ++k) {
    StorageSystem sys;
    auto mgr = MakeManager(&sys);
    FaultSpec fault;
    fault.after_calls = k;
    sys.disk()->ArmFault(fault);
    auto id = mgr->Create();
    sys.disk()->ClearFaults();

    std::vector<std::pair<ObjectId, LargeObjectManager*>> objects;
    if (id.ok()) objects.emplace_back(*id, mgr.get());
    auto report = FsckObjects(&sys, objects);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean())
        << "k=" << k << " (create: " << id.status().ToString() << ")\n"
        << report->ToString();
  }
}

std::string EngineLabel(const ::testing::TestParamInfo<int>& info) {
  return info.param == 0 ? "Esm" : info.param == 1 ? "Starburst" : "Eos";
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultRecoveryTest,
                         ::testing::Values(0, 1, 2), EngineLabel);

}  // namespace
}  // namespace lob
