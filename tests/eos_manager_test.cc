#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/storage_system.h"
#include "eos/eos_manager.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

class EosTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  EosTest() {
    cfg_.buddy_space_order = 12;
    sys_ = std::make_unique<StorageSystem>(cfg_);
    EosOptions opt;
    opt.threshold_pages = GetParam();
    opt.limits.root_capacity = 16;
    opt.limits.internal_capacity = 16;
    mgr_ = std::make_unique<EosManager>(sys_.get(), opt);
    auto id = mgr_->Create();
    LOB_CHECK_OK(id.status());
    id_ = *id;
  }

  void ExpectContent(const std::string& oracle) {
    auto size = mgr_->Size(id_);
    ASSERT_TRUE(size.ok());
    ASSERT_EQ(*size, oracle.size());
    std::string got;
    ASSERT_TRUE(mgr_->Read(id_, 0, oracle.size(), &got).ok());
    ASSERT_EQ(got, oracle);
    ASSERT_TRUE(mgr_->Validate(id_).ok());
  }

  StorageConfig cfg_;
  std::unique_ptr<StorageSystem> sys_;
  std::unique_ptr<EosManager> mgr_;
  ObjectId id_ = 0;
};

TEST_P(EosTest, EmptyObject) {
  auto size = mgr_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST_P(EosTest, AppendGrowsLikeStarburst) {
  // 3K appends: doubling segments 1,2,4,8,16 pages for 120000 bytes.
  std::string oracle;
  for (int i = 0; i < 40; ++i) {
    std::string c = Pattern(static_cast<uint64_t>(i), 3000);
    ASSERT_TRUE(mgr_->Append(id_, c).ok());
    oracle += c;
  }
  ExpectContent(oracle);
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments, 5u);
  EXPECT_EQ(stats->leaf_pages, 31u);
  EXPECT_EQ(stats->tree_height, 1) << "EOS build trees are level 1";
}

TEST_P(EosTest, RandomRangeReads) {
  std::string oracle;
  for (int i = 0; i < 30; ++i) {
    std::string c = Pattern(static_cast<uint64_t>(i), 10000);
    ASSERT_TRUE(mgr_->Append(id_, c).ok());
    oracle += c;
  }
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    const uint64_t off = rng.Uniform(0, oracle.size() - 1);
    const uint64_t n = rng.Uniform(1, oracle.size() - off);
    std::string got;
    ASSERT_TRUE(mgr_->Read(id_, off, n, &got).ok());
    ASSERT_EQ(got, oracle.substr(off, n));
  }
}

TEST_P(EosTest, InsertSplitsSegmentInPlace) {
  std::string oracle = Pattern(1, 100000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  // Page-aligned insert: the split costs no data copying of the right
  // part (it stays in place).
  const std::string ins = Pattern(2, 5000);
  ASSERT_TRUE(mgr_->Insert(id_, 8192, ins).ok());
  oracle.insert(8192, ins);
  ExpectContent(oracle);
}

TEST_P(EosTest, InsertUnalignedCopiesRightPart) {
  std::string oracle = Pattern(3, 100000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  const std::string ins = Pattern(4, 5000);
  ASSERT_TRUE(mgr_->Insert(id_, 10001, ins).ok());
  oracle.insert(10001, ins);
  ExpectContent(oracle);
}

TEST_P(EosTest, NewBytesGoInAsFewSegmentsAsPossible) {
  // Paper 4.4.2: a 100K insert lands in one 25-page leaf even when the
  // threshold is smaller.
  std::string oracle = Pattern(5, 500000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  auto before = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(before.ok());
  const std::string ins = Pattern(6, 100 * 1024);
  ASSERT_TRUE(mgr_->Insert(id_, 200000, ins).ok());
  oracle.insert(200000, ins);
  ExpectContent(oracle);
  auto after = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(after.ok());
  // At most 3 extra segments: left split remainder, the new 25-page leaf,
  // right split part (merging may reduce this).
  EXPECT_LE(after->segments, before->segments + 3);
}

TEST_P(EosTest, DeleteRanges) {
  std::string oracle = Pattern(7, 300000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  ASSERT_TRUE(mgr_->Delete(id_, 100000, 50000).ok());
  oracle.erase(100000, 50000);
  ExpectContent(oracle);
  ASSERT_TRUE(mgr_->Delete(id_, 0, 4096).ok());  // aligned prefix
  oracle.erase(0, 4096);
  ExpectContent(oracle);
  ASSERT_TRUE(mgr_->Delete(id_, oracle.size() - 5000, 5000).ok());  // suffix
  oracle.erase(oracle.size() - 5000, 5000);
  ExpectContent(oracle);
}

TEST_P(EosTest, DeleteEverything) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(8, 150000)).ok());
  ASSERT_TRUE(mgr_->Delete(id_, 0, 150000).ok());
  ExpectContent("");
  EXPECT_EQ(sys_->leaf_area()->allocated_pages(), 0u);
  ASSERT_TRUE(mgr_->Append(id_, "again").ok());
  ExpectContent("again");
}

TEST_P(EosTest, ThresholdMergesSmallNeighbors) {
  if (GetParam() < 2) GTEST_SKIP() << "T=1 never merges";
  // Many tiny inserts fragment the object; the threshold rule must keep
  // adjacent small segments merged (no two adjacent < T when combined
  // bytes fit into T pages).
  std::string oracle = Pattern(9, 40 * 4096);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  Rng rng(10);
  for (int i = 0; i < 60; ++i) {
    const uint64_t off = rng.Uniform(0, oracle.size() - 1);
    std::string ins = Pattern(rng.Next(), 200);
    ASSERT_TRUE(mgr_->Insert(id_, off, ins).ok()) << "insert " << i;
    oracle.insert(off, ins);
  }
  ExpectContent(oracle);
  // Check the invariant over the final structure.
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  const double avg_pages =
      static_cast<double>(stats->leaf_pages) / stats->segments;
  EXPECT_GE(avg_pages, 1.0);
  // With larger T, fewer/larger segments.
  if (GetParam() >= 16) {
    EXPECT_GE(avg_pages, 4.0) << "large thresholds keep segments large";
  }
}

TEST_P(EosTest, UtilizationImprovesWithThreshold) {
  // Paper Figure 8: larger segment size threshold -> better utilization
  // because only the last page of each segment can be partially full.
  std::string oracle = Pattern(11, 100 * 4096);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const uint64_t off = rng.Uniform(0, oracle.size() - 1);
    std::string ins = Pattern(rng.Next(), rng.Uniform(50, 150));
    ASSERT_TRUE(mgr_->Insert(id_, off, ins).ok());
    oracle.insert(off, ins);
    const uint64_t del = rng.Uniform(0, oracle.size() - ins.size());
    ASSERT_TRUE(mgr_->Delete(id_, del, ins.size()).ok());
    oracle.erase(del, ins.size());
  }
  ExpectContent(oracle);
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  const double util = stats->Utilization(4096);
  if (GetParam() >= 16) {
    EXPECT_GT(util, 0.9);
  } else {
    EXPECT_GT(util, 0.4);
  }
}

TEST_P(EosTest, ReplaceRange) {
  std::string oracle = Pattern(13, 120000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  const std::string rep = Pattern(14, 20000);
  ASSERT_TRUE(mgr_->Replace(id_, 30000, rep).ok());
  oracle.replace(30000, rep.size(), rep);
  ExpectContent(oracle);
}

TEST_P(EosTest, RejectsOutOfRange) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(15, 1000)).ok());
  std::string out;
  EXPECT_EQ(mgr_->Read(id_, 500, 600, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr_->Insert(id_, 1001, "x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr_->Delete(id_, 900, 200).code(), StatusCode::kOutOfRange);
}

TEST_P(EosTest, DestroyFreesEverything) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(16, 400000)).ok());
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mgr_->Insert(id_, rng.Uniform(0, 100000),
                             Pattern(rng.Next(), 5000))
                    .ok());
  }
  ASSERT_GT(sys_->leaf_area()->allocated_pages(), 0u);
  ASSERT_TRUE(mgr_->Destroy(id_).ok());
  EXPECT_EQ(sys_->leaf_area()->allocated_pages(), 0u);
  EXPECT_EQ(sys_->meta_area()->allocated_pages(), 0u);
}

// Property test: random op mix against a std::string oracle.
TEST_P(EosTest, RandomOpsMatchOracle) {
  std::string oracle;
  Rng rng(4242 + GetParam());
  for (int step = 0; step < 300; ++step) {
    const double p = rng.NextDouble();
    if (oracle.empty() || p < 0.35) {
      std::string data = Pattern(rng.Next(), rng.Uniform(1, 50000));
      if (oracle.empty() || rng.Bernoulli(0.5)) {
        ASSERT_TRUE(mgr_->Append(id_, data).ok()) << "step " << step;
        oracle += data;
      } else {
        const uint64_t off = rng.Uniform(0, oracle.size());
        ASSERT_TRUE(mgr_->Insert(id_, off, data).ok()) << "step " << step;
        oracle.insert(off, data);
      }
    } else if (p < 0.6) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n =
          rng.Uniform(1, std::min<uint64_t>(oracle.size() - off, 40000));
      ASSERT_TRUE(mgr_->Delete(id_, off, n).ok()) << "step " << step;
      oracle.erase(off, n);
    } else if (p < 0.8) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      std::string got;
      ASSERT_TRUE(mgr_->Read(id_, off, n, &got).ok()) << "step " << step;
      ASSERT_EQ(got, oracle.substr(off, n)) << "step " << step;
    } else {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      const uint64_t n = rng.Uniform(1, oracle.size() - off);
      std::string data = Pattern(rng.Next(), n);
      ASSERT_TRUE(mgr_->Replace(id_, off, data).ok()) << "step " << step;
      oracle.replace(off, n, data);
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(mgr_->Validate(id_).ok()) << "step " << step;
    }
  }
  ExpectContent(oracle);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EosTest,
                         ::testing::Values(1u, 4u, 16u, 64u),
                         [](const auto& param_info) {
                           return "T" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace lob
