// Multi-seed differential fuzzing: replay the same generated trace on all
// seven engine configurations and require byte-identical content plus
// structural validity everywhere. Each seed is its own parameterized test
// so failures name the offending seed directly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/storage_system.h"
#include "workload/trace.h"

namespace lob {
namespace {

struct Config {
  const char* name;
  std::unique_ptr<LargeObjectManager> (*make)(StorageSystem*);
};

std::vector<Config> Configs() {
  return {
      {"esm-1", [](StorageSystem* s) { return CreateEsmManager(s, 1); }},
      {"esm-4", [](StorageSystem* s) { return CreateEsmManager(s, 4); }},
      {"esm-16", [](StorageSystem* s) { return CreateEsmManager(s, 16); }},
      {"starburst",
       [](StorageSystem* s) { return CreateStarburstManager(s); }},
      {"eos-1", [](StorageSystem* s) { return CreateEosManager(s, 1); }},
      {"eos-4", [](StorageSystem* s) { return CreateEosManager(s, 4); }},
      {"eos-16", [](StorageSystem* s) { return CreateEosManager(s, 16); }},
  };
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, TraceReplayAgreesEverywhere) {
  MixSpec mix;
  mix.mean_op_bytes = 3000 + (GetParam() % 5) * 4000;  // 3 K .. 19 K
  mix.total_ops = 250;
  mix.seed = GetParam();
  const Trace trace =
      GenerateUpdateMixTrace(150000 + (GetParam() % 3) * 70000,
                             7000 + (GetParam() % 7) * 3000, mix);
  const std::string expect = ExpectedContent(trace);
  for (const Config& config : Configs()) {
    StorageSystem sys;
    auto mgr = config.make(&sys);
    auto id = mgr->Create();
    ASSERT_TRUE(id.ok()) << config.name;
    auto io = ApplyTrace(&sys, mgr.get(), *id, trace);
    ASSERT_TRUE(io.ok()) << config.name << ": " << io.status().ToString();
    ASSERT_TRUE(VerifyTrace(mgr.get(), *id, trace).ok()) << config.name;
    ASSERT_TRUE(mgr->Validate(*id).ok()) << config.name;
    // Random range spot-checks against the in-memory expectation.
    Rng rng(GetParam() ^ 0xF00Dull);
    std::string got;
    for (int i = 0; i < 20 && !expect.empty(); ++i) {
      const uint64_t off = rng.Uniform(0, expect.size() - 1);
      const uint64_t n = rng.Uniform(1, expect.size() - off);
      ASSERT_TRUE(mgr->Read(*id, off, n, &got).ok()) << config.name;
      ASSERT_EQ(got, expect.substr(off, n))
          << config.name << " seed " << GetParam();
    }
    // Tear down cleanly: Destroy must return every allocated page.
    ASSERT_TRUE(mgr->Destroy(*id).ok()) << config.name;
    EXPECT_EQ(sys.leaf_area()->allocated_pages(), 0u) << config.name;
    EXPECT_EQ(sys.meta_area()->allocated_pages(), 0u) << config.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1ull, 7ull, 42ull, 1001ull,
                                           31337ull, 77777ull, 424242ull,
                                           20260707ull),
                         [](const auto& param_info) {
                           return "Seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace lob
