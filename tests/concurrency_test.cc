// Multi-client concurrency: the modeled disk queue, the deterministic
// scheduler, and their interaction with fault injection and fsck.
//
// The load-bearing properties pinned here:
//   * per-op queueing delay is >= 0 always, exactly 0 for one client,
//     and grows monotonically with the client count (the contention
//     signal the ext_concurrency bench reports);
//   * a (spec, seed) pair reproduces the identical run — costs, windows,
//     queue stats — on a fresh system (byte-determinism foundation);
//   * the storage structures come out of a concurrent mixed workload
//     fsck-clean on all three engines;
//   * fault countdowns tick on *issue* order: an armed fault fires at
//     the same scheduled operation on every run of a seed, and the
//     failed call is charged no queue wait (it "never happened");
//   * queue metrics appear in MetricsSnapshot/ObsRegistry exports only
//     for queue-model runs, so every pre-existing export is unchanged.

#include "workload/multi_client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/fsck.h"
#include "core/factory.h"
#include "core/metrics_snapshot.h"
#include "core/storage_system.h"
#include "iomodel/fault_model.h"

namespace lob {
namespace {

MultiClientSpec SmallSpec(uint32_t clients) {
  MultiClientSpec spec;
  spec.clients = clients;
  spec.total_ops = 200;
  spec.window_ops = 50;
  spec.object_bytes = 64 * 1024;
  spec.build_append_bytes = 32 * 1024;
  spec.mean_op_bytes = 8000;
  spec.seed = 42;
  return spec;
}

TEST(MultiClientTest, SingleClientHasNoQueueDelay) {
  StorageSystem sys;
  auto mgr = CreateEsmManager(&sys, 4);
  auto run = RunMultiClient(&sys, mgr.get(), SmallSpec(1));
  ASSERT_TRUE(run.status().ok()) << run.status().ToString();
  EXPECT_EQ(run->ops, 200u);
  // One client never waits for itself: the arm is always free when its
  // next op arrives.
  EXPECT_EQ(run->queue_ms, 0.0);
  EXPECT_EQ(run->max_queue_ms, 0.0);
  for (const auto& w : run->windows) EXPECT_EQ(w.avg_queue_ms, 0.0);
  EXPECT_EQ(sys.disk()->queue_stats().delayed_calls, 0u);
}

// Acceptance gate: per-op queueing delay is >= 0 and grows monotonically
// with N on this engine/mix cell.
TEST(MultiClientTest, QueueDelayGrowsMonotonicallyWithClients) {
  double prev_avg = -1.0;
  for (uint32_t clients : {1u, 4u, 16u}) {
    StorageSystem sys;
    auto mgr = CreateEsmManager(&sys, 4);
    auto run = RunMultiClient(&sys, mgr.get(), SmallSpec(clients));
    ASSERT_TRUE(run.status().ok()) << run.status().ToString();
    ASSERT_EQ(run->ops, 200u);
    EXPECT_GE(run->queue_ms, 0.0);
    EXPECT_GE(run->max_queue_ms, 0.0);
    EXPECT_EQ(run->queue_hist.count(), run->ops);
    const double avg = run->queue_ms / run->ops;
    EXPECT_GE(avg, prev_avg) << "avg queue delay shrank at N=" << clients;
    prev_avg = avg;
    if (clients == 16) {
      EXPECT_GT(avg, 0.0) << "16 clients produced no contention";
      EXPECT_GT(sys.disk()->queue_stats().max_depth, 0u);
    }
  }
}

TEST(MultiClientTest, SameSeedReproducesIdenticalRun) {
  auto once = [] {
    struct Out {
      MultiClientResult run;
      IoStats stats;
      SimDisk::DiskQueueStats queue;
      std::string snapshot;
    } out;
    StorageSystem sys;
    auto mgr = CreateEosManager(&sys, 4);
    MultiClientSpec spec = SmallSpec(4);
    spec.policy = SchedulePolicy::kWeighted;
    spec.weights = {3.0, 1.0, 1.0, 1.0};
    auto run = RunMultiClient(&sys, mgr.get(), spec);
    EXPECT_TRUE(run.status().ok()) << run.status().ToString();
    out.run = *run;
    out.stats = sys.stats();
    out.queue = sys.disk()->queue_stats();
    out.snapshot = MetricsSnapshot::Collect(&sys).ToJson();
    return out;
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.run.ops, b.run.ops);
  EXPECT_EQ(a.run.reads, b.run.reads);
  EXPECT_EQ(a.run.inserts, b.run.inserts);
  EXPECT_EQ(a.run.deletes, b.run.deletes);
  EXPECT_EQ(a.run.service_ms, b.run.service_ms);
  EXPECT_EQ(a.run.queue_ms, b.run.queue_ms);
  EXPECT_EQ(a.run.makespan_ms, b.run.makespan_ms);
  ASSERT_EQ(a.run.windows.size(), b.run.windows.size());
  for (size_t i = 0; i < a.run.windows.size(); ++i) {
    EXPECT_EQ(a.run.windows[i].avg_service_ms, b.run.windows[i].avg_service_ms);
    EXPECT_EQ(a.run.windows[i].avg_queue_ms, b.run.windows[i].avg_queue_ms);
  }
  EXPECT_EQ(a.stats.ms, b.stats.ms);
  EXPECT_EQ(a.stats.queue_ms, b.stats.queue_ms);
  EXPECT_EQ(a.queue.queued_calls, b.queue.queued_calls);
  EXPECT_EQ(a.queue.delayed_calls, b.queue.delayed_calls);
  EXPECT_EQ(a.queue.max_depth, b.queue.max_depth);
  EXPECT_EQ(a.snapshot, b.snapshot);
}

TEST(MultiClientTest, FsckCleanAfterConcurrentMixOnAllThreeEngines) {
  struct Engine {
    const char* name;
    std::unique_ptr<LargeObjectManager> (*make)(StorageSystem*);
  };
  const Engine engines[] = {
      {"esm", [](StorageSystem* s) { return CreateEsmManager(s, 4); }},
      {"starburst",
       [](StorageSystem* s) { return CreateStarburstManager(s); }},
      {"eos", [](StorageSystem* s) { return CreateEosManager(s, 4); }},
  };
  for (const Engine& e : engines) {
    SCOPED_TRACE(e.name);
    StorageSystem sys;
    auto mgr = e.make(&sys);
    auto run = RunMultiClient(&sys, mgr.get(), SmallSpec(4));
    ASSERT_TRUE(run.status().ok()) << run.status().ToString();
    std::vector<std::pair<ObjectId, LargeObjectManager*>> objects;
    for (ObjectId id : run->objects) objects.emplace_back(id, mgr.get());
    auto report = FsckObjects(&sys, objects);
    ASSERT_TRUE(report.status().ok()) << report.status().ToString();
    EXPECT_TRUE(report->clean()) << report->ToString();
    // Queue charging must not break attribution conservation.
    EXPECT_TRUE(sys.obs()->ConservationHolds(sys.stats()));
  }
}

// Satellite: fault countdowns tick on issue order. Because ops execute
// strictly serially in schedule order, an armed countdown fault fires at
// the same scheduled call on every run of a seed — even though sixteen
// clients' streams interleave. Pin it by running the same armed spec
// twice and requiring identical failure state and costs.
TEST(MultiClientFaultTest, SeededFaultFiresAtSameIssuePointEveryRun) {
  auto once = [] {
    struct Out {
      bool failed = false;
      uint64_t foreground_calls = 0;
      uint64_t faults_fired = 0;
      IoStats stats;
      SimDisk::DiskQueueStats queue;
    } out;
    StorageSystem sys;
    auto mgr = CreateEsmManager(&sys, 4);
    FaultSpec fault;
    fault.kind = FaultKind::kOneShot;
    fault.after_calls = 5;
    fault.op_prefix = "esm.insert";  // skips the build-phase appends
    // Reads only: a failed read always propagates out of the insert,
    // while some directory *writes* are deliberately absorbed by the
    // allocator's deferred-sync recovery path.
    fault.match_writes = false;
    sys.disk()->ArmFault(fault);
    auto run = RunMultiClient(&sys, mgr.get(), SmallSpec(16));
    out.failed = !run.status().ok();
    out.foreground_calls = sys.disk()->foreground_calls();
    out.faults_fired = sys.disk()->faults_fired();
    out.stats = sys.stats();
    out.queue = sys.disk()->queue_stats();
    return out;
  };
  const auto a = once();
  const auto b = once();
  EXPECT_TRUE(a.failed) << "fault never fired within the mix";
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.faults_fired, 1u);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  // Identical issue order: the fault interrupted both runs at the same
  // call, so the success counters and all modeled costs agree exactly.
  EXPECT_EQ(a.foreground_calls, b.foreground_calls);
  EXPECT_EQ(a.stats.ms, b.stats.ms);
  EXPECT_EQ(a.stats.queue_ms, b.stats.queue_ms);
  // The failed call "never happened": it advanced no queue state.
  EXPECT_EQ(a.queue.queued_calls, b.queue.queued_calls);
  EXPECT_EQ(a.queue.queue_ms, b.queue.queue_ms);
}

TEST(MultiClientTest, QueueMetricsAppearOnlyInQueueModelRuns) {
  // Queue run: snapshot carries the disk_queue section and per-op
  // queue percentiles.
  {
    StorageSystem sys;
    auto mgr = CreateEsmManager(&sys, 4);
    auto run = RunMultiClient(&sys, mgr.get(), SmallSpec(4));
    ASSERT_TRUE(run.status().ok());
    const std::string json = MetricsSnapshot::Collect(&sys).ToJson();
    EXPECT_NE(json.find("\"disk_queue\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_p99_ms\""), std::string::npos);
  }
  // Plain run: neither key exists, so pre-queue exports are unchanged.
  {
    StorageSystem sys;
    auto mgr = CreateEsmManager(&sys, 4);
    auto id = mgr->Create();
    ASSERT_TRUE(id.status().ok());
    ASSERT_TRUE(mgr->Append(*id, std::string(4096, 'x')).ok());
    const std::string json = MetricsSnapshot::Collect(&sys).ToJson();
    EXPECT_EQ(json.find("\"disk_queue\""), std::string::npos);
    EXPECT_EQ(json.find("queue_p99_ms"), std::string::npos);
    EXPECT_EQ(sys.obs()->histograms().count("esm.append.queue_ms"), 0u);
  }
}

}  // namespace
}  // namespace lob
