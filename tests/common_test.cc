#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"

namespace lob {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NoSpace("pool full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNoSpace);
  EXPECT_EQ(s.message(), "pool full");
  EXPECT_EQ(s.ToString(), "NoSpace: pool full");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kNoSpace, StatusCode::kCorruption,
        StatusCode::kInternal, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::Corruption("bad page"); };
  auto outer = [&]() -> Status {
    LOB_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kCorruption);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e(Status::NotFound("x"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrDeathTest, RejectsConstructionFromOkStatus) {
  // A StatusOr built from an OK Status would be valueless (ok() false)
  // while status().ok() is true -- an unhandleable state. The converting
  // constructor LOB_CHECKs against it.
  EXPECT_DEATH(
      { StatusOr<int> bad((Status())); }, "LOB_CHECK");
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
  EXPECT_EQ(CeilDiv(10u * 1024 * 1024, 4096), 2560u);
}

TEST(MathTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(RoundUpPowerOfTwo(1), 1u);
  EXPECT_EQ(RoundUpPowerOfTwo(3), 4u);
  EXPECT_EQ(RoundUpPowerOfTwo(4), 4u);
  EXPECT_EQ(RoundUpPowerOfTwo(5), 8u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(8), 3u);
  EXPECT_EQ(CeilLog2(9), 4u);
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(8), 3u);
  EXPECT_EQ(FloorLog2(9), 3u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Uniform(50, 150);
    EXPECT_GE(v, 50u);
    EXPECT_LE(v, 150u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformMeanIsCentered) {
  // The paper varies operation sizes uniformly +/-50% about the mean; the
  // sample mean must converge to the configured mean.
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Uniform(5000, 15000));
  }
  EXPECT_NEAR(sum / n, 10000.0, 50.0);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.4);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.4, 0.01);
}

TEST(ConfigTest, PaperDefaultsMatchTable1) {
  StorageConfig cfg;
  EXPECT_EQ(cfg.page_size, 4096u);
  EXPECT_EQ(cfg.buffer_pool_pages, 12u);
  EXPECT_EQ(cfg.max_pool_segment_pages, 4u);
  EXPECT_DOUBLE_EQ(cfg.seek_ms, 33.0);
  EXPECT_DOUBLE_EQ(cfg.transfer_kb_per_ms, 1.0);
  // 4K page at 1K/ms -> 4 ms per page; a 3-block read costs 33+12=45 ms,
  // the paper's worked example.
  EXPECT_DOUBLE_EQ(cfg.PageTransferMs(), 4.0);
  EXPECT_DOUBLE_EQ(cfg.seek_ms + 3 * cfg.PageTransferMs(), 45.0);
}

}  // namespace
}  // namespace lob
