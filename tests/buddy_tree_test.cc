#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "buddy/buddy_tree.h"
#include "common/rng.h"

namespace lob {
namespace {

TEST(BuddyTreeTest, FreshSpaceIsFullyFree) {
  BuddyTree tree(4);
  EXPECT_EQ(tree.total_blocks(), 16u);
  EXPECT_EQ(tree.free_blocks(), 16u);
  EXPECT_EQ(tree.LargestFree(), 16u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BuddyTreeTest, AllocatePowerOfTwo) {
  BuddyTree tree(4);
  auto a = tree.Allocate(4);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a % 4, 0u) << "buddy chunks are aligned";
  EXPECT_EQ(tree.free_blocks(), 12u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BuddyTreeTest, AllocateTrimsNonPowerOfTwo) {
  BuddyTree tree(4);
  auto a = tree.Allocate(5);  // carved from an 8-chunk, 3 trimmed
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(tree.free_blocks(), 11u);
  // The trimmed tail is immediately reusable.
  auto b = tree.Allocate(3);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(tree.free_blocks(), 8u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BuddyTreeTest, AllocationsNeverOverlap) {
  BuddyTree tree(6);
  std::vector<bool> owned(64, false);
  Rng rng(3);
  while (true) {
    uint32_t want = static_cast<uint32_t>(rng.Uniform(1, 7));
    auto a = tree.Allocate(want);
    if (!a.ok()) break;
    for (uint32_t b = *a; b < *a + want; ++b) {
      EXPECT_FALSE(owned[b]) << "block " << b << " double-allocated";
      owned[b] = true;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BuddyTreeTest, FreeWholeSegmentCoalesces) {
  BuddyTree tree(4);
  auto a = tree.Allocate(16);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(tree.LargestFree(), 0u);
  ASSERT_TRUE(tree.Free(*a, 16).ok());
  EXPECT_EQ(tree.LargestFree(), 16u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BuddyTreeTest, BuddiesCoalesceAcrossFrees) {
  BuddyTree tree(4);
  auto a = tree.Allocate(8);
  auto b = tree.Allocate(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(tree.LargestFree(), 0u);
  ASSERT_TRUE(tree.Free(*a, 8).ok());
  EXPECT_EQ(tree.LargestFree(), 8u);
  ASSERT_TRUE(tree.Free(*b, 8).ok());
  EXPECT_EQ(tree.LargestFree(), 16u) << "buddies must merge";
}

TEST(BuddyTreeTest, PartialFreeOfSegment) {
  // Paper 3.1: "a client may selectively free any portion of a previously
  // allocated segment, not necessarily the whole segment."
  BuddyTree tree(4);
  auto a = tree.Allocate(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(tree.Free(*a + 5, 3).ok());  // trim the tail
  EXPECT_EQ(tree.free_blocks(), 11u);
  EXPECT_TRUE(tree.CheckInvariants());
  // The freed tail can serve a new small allocation.
  auto b = tree.Allocate(2);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BuddyTreeTest, DoubleFreeIsCorruption) {
  BuddyTree tree(4);
  auto a = tree.Allocate(4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(tree.Free(*a, 4).ok());
  EXPECT_EQ(tree.Free(*a, 4).code(), StatusCode::kCorruption);
}

TEST(BuddyTreeTest, RejectsBadRequests) {
  BuddyTree tree(4);
  EXPECT_EQ(tree.Allocate(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.Allocate(17).status().code(), StatusCode::kNoSpace);
  EXPECT_EQ(tree.Free(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.Free(15, 2).code(), StatusCode::kInvalidArgument);
}

TEST(BuddyTreeTest, ExhaustionReturnsNoSpace) {
  BuddyTree tree(3);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(tree.Allocate(1).ok());
  EXPECT_EQ(tree.Allocate(1).status().code(), StatusCode::kNoSpace);
}

TEST(BuddyTreeTest, FragmentationRespectsAlignment) {
  // With blocks 0 and 8 allocated, no aligned 8-chunk exists even though
  // 14 blocks are free: classic buddy behaviour.
  BuddyTree tree(4);
  auto a = tree.Allocate(8);
  auto b = tree.Allocate(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(tree.Free(*a + 1, 7).ok());
  ASSERT_TRUE(tree.Free(*b + 1, 7).ok());
  EXPECT_EQ(tree.free_blocks(), 14u);
  EXPECT_EQ(tree.LargestFree(), 4u);
  EXPECT_EQ(tree.Allocate(8).status().code(), StatusCode::kNoSpace);
}

TEST(BuddyTreeTest, BitmapRoundTrip) {
  BuddyTree tree(6);
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    auto a = tree.Allocate(static_cast<uint32_t>(rng.Uniform(1, 6)));
    ASSERT_TRUE(a.ok());
  }
  std::vector<char> bitmap(tree.BitmapBytes());
  tree.SerializeBitmap(bitmap.data());
  BuddyTree loaded = BuddyTree::FromBitmap(6, bitmap.data());
  EXPECT_EQ(loaded.free_blocks(), tree.free_blocks());
  EXPECT_EQ(loaded.LargestFree(), tree.LargestFree());
  for (uint32_t b = 0; b < 64; ++b) {
    EXPECT_EQ(loaded.IsFree(b), tree.IsFree(b));
  }
  EXPECT_TRUE(loaded.CheckInvariants());
}

// Property test: random allocate/free against a reference bitmap model.
TEST(BuddyTreeProperty, RandomOpsMatchReferenceModel) {
  BuddyTree tree(8);  // 256 blocks
  std::map<uint32_t, uint32_t> live;  // start -> size
  std::vector<bool> model(256, false);
  Rng rng(99);
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      uint32_t want = static_cast<uint32_t>(rng.Uniform(1, 16));
      auto a = tree.Allocate(want);
      if (a.ok()) {
        for (uint32_t b = *a; b < *a + want; ++b) {
          ASSERT_FALSE(model[b]);
          model[b] = true;
        }
        live[*a] = want;
      } else {
        EXPECT_EQ(a.status().code(), StatusCode::kNoSpace);
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Uniform(0, live.size() - 1)));
      ASSERT_TRUE(tree.Free(it->first, it->second).ok());
      for (uint32_t b = it->first; b < it->first + it->second; ++b) {
        model[b] = false;
      }
      live.erase(it);
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "at step " << step;
      for (uint32_t b = 0; b < 256; ++b) {
        ASSERT_EQ(tree.IsFree(b), !model[b]) << "block " << b;
      }
    }
  }
  // Free everything: the space must coalesce back to one 256-chunk.
  for (const auto& [start, size] : live) {
    ASSERT_TRUE(tree.Free(start, size).ok());
  }
  EXPECT_EQ(tree.LargestFree(), 256u);
  EXPECT_EQ(tree.free_blocks(), 256u);
}

}  // namespace
}  // namespace lob
