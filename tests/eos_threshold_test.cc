// Focused tests of the EOS segment size threshold mechanics (paper 2.3):
// the adjacency rule, merging, page shuffling, split-in-place behaviour
// and the straddle-byte copies.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/storage_system.h"
#include "eos/eos_manager.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

class EosThresholdTest : public ::testing::Test {
 protected:
  std::unique_ptr<EosManager> Make(uint32_t t) {
    EosOptions opt;
    opt.threshold_pages = t;
    return std::make_unique<EosManager>(&sys_, opt);
  }

  StorageSystem sys_;
};

TEST_F(EosThresholdTest, PaperExampleOneAndAHalfPages) {
  // Paper 2.3: with T=8, an object 1.5 pages long is kept in 2 pages, not
  // 8 - the threshold does not impose fixed or minimum segment sizes.
  auto mgr = Make(8);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  // Build it via two appends so two segments would naively exist, then an
  // insert triggers threshold enforcement.
  ASSERT_TRUE(mgr->Append(*id, Pattern(1, 4096)).ok());
  ASSERT_TRUE(mgr->Append(*id, Pattern(2, 2048)).ok());
  ASSERT_TRUE(mgr->Insert(*id, 3000, "xy").ok());
  auto stats = mgr->GetStorageStats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments, 1u) << "merged into one segment";
  EXPECT_EQ(stats->leaf_pages, 2u) << "kept in 2 pages, not 8";
}

TEST_F(EosThresholdTest, NoViolationsAfterUpdates) {
  // After any update burst, no adjacent pair may have a side below T
  // pages' worth while the pair could be reorganized to reach it.
  for (uint32_t t : {2u, 4u, 8u}) {
    StorageSystem sys;
    EosOptions opt;
    opt.threshold_pages = t;
    EosManager mgr(&sys, opt);
    auto id = mgr.Create();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(mgr.Append(*id, Pattern(3, 60 * 4096)).ok());
    Rng rng(4);
    std::string oracle = Pattern(3, 60 * 4096);
    for (int i = 0; i < 80; ++i) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      std::string ins = Pattern(rng.Next(), rng.Uniform(10, 3000));
      ASSERT_TRUE(mgr.Insert(*id, off, ins).ok());
      oracle.insert(off, ins);
    }
    // Inspect adjacent pairs through the public stats: every segment must
    // hold at least T pages' worth of bytes OR be un-mergeable with its
    // neighbors. We verify the stronger aggregate property the paper
    // relies on: average segment size is at least ~T pages.
    auto stats = mgr.GetStorageStats(*id);
    ASSERT_TRUE(stats.ok());
    const double avg_pages =
        static_cast<double>(stats->leaf_pages) / stats->segments;
    EXPECT_GE(avg_pages, static_cast<double>(t) * 0.8)
        << "T=" << t << ": segments should average about T pages";
  }
}

TEST_F(EosThresholdTest, AlignedInsertMovesNoData) {
  // An insert at a page boundary splits a segment purely by repointing:
  // no leaf bytes are read or written except the new bytes themselves.
  auto mgr = Make(1);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  const std::string base = Pattern(5, 64 * 4096);
  ASSERT_TRUE(mgr->Append(*id, base).ok());
  sys_.ResetStats();
  const std::string ins = Pattern(6, 10 * 4096);
  ASSERT_TRUE(mgr->Insert(*id, 32 * 4096, ins).ok());
  const IoStats stats = sys_.stats();
  // Only the 10 fresh data pages plus a handful of 1-page index/shadow
  // writes; crucially, none of the 64 existing data pages move.
  EXPECT_LE(stats.pages_written, 14u) << stats.ToString();
  EXPECT_GE(stats.pages_written, 10u) << stats.ToString();
  std::string out;
  ASSERT_TRUE(mgr->Read(*id, 0, base.size() + ins.size(), &out).ok());
  std::string expect = base;
  expect.insert(32 * 4096, ins);
  EXPECT_EQ(out, expect);
}

TEST_F(EosThresholdTest, UnalignedInsertCopiesOnlyStraddlingPage) {
  // Paper 4.4.2: EOS inserts 10K of new data into a 3-page (12K) leaf.
  // The straddling bytes of the split page ride along; the right part's
  // whole pages stay put.
  auto mgr = Make(1);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  const std::string base = Pattern(7, 256 * 4096);  // one 1MB segment
  ASSERT_TRUE(mgr->Append(*id, base).ok());
  sys_.ResetStats();
  const std::string ins = Pattern(8, 10000);
  ASSERT_TRUE(mgr->Insert(*id, 100 * 4096 + 1234, ins).ok());
  const IoStats stats = sys_.stats();
  // Data moved: ~10000 bytes of new data + <4096 straddling bytes => at
  // most 4 data pages written. Far below the ~156 pages a whole
  // right-part copy would need.
  EXPECT_LE(stats.pages_written, 8u) << stats.ToString();
  std::string out;
  ASSERT_TRUE(mgr->Read(*id, 0, base.size() + ins.size(), &out).ok());
  std::string expect = base;
  expect.insert(100 * 4096 + 1234, ins);
  EXPECT_EQ(out, expect);
}

TEST_F(EosThresholdTest, LargeThresholdShufflesPages) {
  // With T=16 a small leftover piece must be topped up to ~16 pages by
  // shuffling from its neighbor; verify the structure converges to
  // threshold-sized segments under a burst of small inserts.
  auto mgr = Make(16);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  std::string oracle = Pattern(9, 200 * 4096);
  ASSERT_TRUE(mgr->Append(*id, oracle).ok());
  Rng rng(10);
  for (int i = 0; i < 120; ++i) {
    const uint64_t off = rng.Uniform(0, oracle.size() - 1);
    std::string ins = Pattern(rng.Next(), 100);
    ASSERT_TRUE(mgr->Insert(*id, off, ins).ok()) << "insert " << i;
    oracle.insert(off, ins);
  }
  std::string out;
  ASSERT_TRUE(mgr->Read(*id, 0, oracle.size(), &out).ok());
  ASSERT_EQ(out, oracle);
  auto stats = mgr->GetStorageStats(*id);
  ASSERT_TRUE(stats.ok());
  const double avg_pages =
      static_cast<double>(stats->leaf_pages) / stats->segments;
  EXPECT_GE(avg_pages, 14.0);
  EXPECT_GT(stats->Utilization(4096), 0.95);
}

TEST_F(EosThresholdTest, ThresholdOneNeverTouchesBigNeighbors) {
  // T=1 must not reorganize large segments: a tiny insert into a big
  // object costs a bounded number of pages regardless of segment sizes.
  auto mgr = Make(1);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Append(*id, Pattern(11, 4 * 1024 * 1024)).ok());
  sys_.ResetStats();
  ASSERT_TRUE(mgr->Insert(*id, 1234567, "tiny").ok());
  EXPECT_LE(sys_.stats().PagesTransferred(), 16u)
      << sys_.stats().ToString();
}

TEST_F(EosThresholdTest, UpdateCostGrowsWithThreshold) {
  // Paper 4.4.3 / Figure 12: above T=4 the insert cost rises because of
  // page reshuffling.
  double cost[3] = {0, 0, 0};
  const uint32_t ts[3] = {1, 4, 64};
  for (int k = 0; k < 3; ++k) {
    StorageSystem sys;
    EosOptions opt;
    opt.threshold_pages = ts[k];
    EosManager mgr(&sys, opt);
    auto id = mgr.Create();
    LOB_CHECK_OK(id.status());
    std::string oracle = Pattern(12, 2 * 1024 * 1024);
    LOB_CHECK_OK(mgr.Append(*id, oracle));
    Rng rng(13);
    IoStats before = sys.stats();
    for (int i = 0; i < 100; ++i) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      LOB_CHECK_OK(mgr.Insert(*id, off, Pattern(rng.Next(), 200)));
      LOB_CHECK_OK(mgr.Delete(*id, off, 200));
    }
    cost[k] = (sys.stats() - before).ms / 200;
  }
  EXPECT_LT(cost[0], cost[2]) << "T=64 must cost more than T=1";
  EXPECT_LT(cost[1], cost[2]) << "T=64 must cost more than T=4";
}

}  // namespace
}  // namespace lob
