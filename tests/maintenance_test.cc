#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "workload/maintenance.h"
#include "workload/workload.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

class MaintenanceTest : public ::testing::TestWithParam<int> {
 protected:
  MaintenanceTest() {
    switch (GetParam()) {
      case 0:
        mgr_ = CreateEsmManager(&sys_, 4);
        break;
      case 1:
        mgr_ = CreateStarburstManager(&sys_);
        break;
      default:
        mgr_ = CreateEosManager(&sys_, 4);
        break;
    }
    auto id = mgr_->Create();
    LOB_CHECK_OK(id.status());
    id_ = *id;
  }

  StorageSystem sys_;
  std::unique_ptr<LargeObjectManager> mgr_;
  ObjectId id_ = 0;
};

TEST_P(MaintenanceTest, VisitSegmentsCoversEveryByte) {
  std::string oracle = Pattern(1, 300000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  uint64_t bytes = 0, pages = 0, segments = 0;
  ASSERT_TRUE(mgr_->VisitSegments(id_, [&](uint64_t b, uint32_t p) {
    bytes += b;
    pages += p;
    segments++;
    return Status::OK();
  }).ok());
  EXPECT_EQ(bytes, oracle.size());
  EXPECT_GE(pages * 4096, bytes);
  auto stats = mgr_->GetStorageStats(id_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(segments, stats->segments);
  EXPECT_EQ(pages, stats->leaf_pages);
}

TEST_P(MaintenanceTest, TrimReleasesGrowthSlack) {
  // Appends over-allocate under doubling growth (Starburst/EOS).
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(mgr_->Append(id_, Pattern(static_cast<uint64_t>(i), 9000)).ok());
  }
  const uint64_t before = sys_.leaf_area()->allocated_pages();
  ASSERT_TRUE(mgr_->Trim(id_).ok());
  const uint64_t after = sys_.leaf_area()->allocated_pages();
  EXPECT_LE(after, before);
  if (GetParam() != 0) {
    EXPECT_LT(after, before) << "doubling growth must have left slack";
  }
  // Content unharmed and object still appendable.
  std::string oracle;
  for (int i = 0; i < 20; ++i) oracle += Pattern(static_cast<uint64_t>(i), 9000);
  std::string got;
  ASSERT_TRUE(mgr_->Read(id_, 0, oracle.size(), &got).ok());
  EXPECT_EQ(got, oracle);
  ASSERT_TRUE(mgr_->Append(id_, "more").ok());
  ASSERT_TRUE(mgr_->Validate(id_).ok());
}

TEST_P(MaintenanceTest, CompactPreservesContent) {
  std::string oracle = Pattern(2, 400000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  Rng rng(3);
  // Degrade with updates (skip for Starburst: it never degrades and its
  // updates are whole-field copies).
  if (GetParam() != 1) {
    for (int i = 0; i < 40; ++i) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 1);
      std::string ins = Pattern(rng.Next(), 500);
      ASSERT_TRUE(mgr_->Insert(id_, off, ins).ok());
      oracle.insert(off, ins);
    }
  }
  auto cost = CompactObject(&sys_, mgr_.get(), id_);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(cost->ms, 0.0);
  std::string got;
  ASSERT_TRUE(mgr_->Read(id_, 0, oracle.size(), &got).ok());
  EXPECT_EQ(got, oracle);
  ASSERT_TRUE(mgr_->Validate(id_).ok());
}

TEST_P(MaintenanceTest, CompactRestoresUtilization) {
  std::string oracle = Pattern(4, 400000);
  ASSERT_TRUE(mgr_->Append(id_, oracle).ok());
  if (GetParam() != 1) {
    Rng rng(5);
    for (int i = 0; i < 60; ++i) {
      const uint64_t off = rng.Uniform(0, oracle.size() - 2000);
      ASSERT_TRUE(mgr_->Delete(id_, off, 1000).ok());
      oracle.erase(off, 1000);
    }
  }
  ASSERT_TRUE(CompactObject(&sys_, mgr_.get(), id_).ok());
  auto util = CurrentUtilization(&sys_, mgr_.get(), id_);
  ASSERT_TRUE(util.ok());
  EXPECT_GT(*util, 0.95) << "compacted object should be near-perfectly packed";
}

TEST_P(MaintenanceTest, HistogramAndMeanAgree) {
  ASSERT_TRUE(mgr_->Append(id_, Pattern(6, 200000)).ok());
  auto hist = SegmentHistogram(mgr_.get(), id_);
  auto mean = MeanSegmentPages(mgr_.get(), id_);
  ASSERT_TRUE(hist.ok());
  ASSERT_TRUE(mean.ok());
  uint64_t pages = 0, segments = 0;
  for (const auto& [p, c] : *hist) {
    pages += static_cast<uint64_t>(p) * c;
    segments += c;
  }
  ASSERT_GT(segments, 0u);
  EXPECT_DOUBLE_EQ(*mean, static_cast<double>(pages) /
                              static_cast<double>(segments));
}

TEST_P(MaintenanceTest, CompactEmptyObjectIsNoop) {
  auto cost = CompactObject(&sys_, mgr_.get(), id_);
  ASSERT_TRUE(cost.ok());
  auto size = mgr_->Size(id_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

std::string EngineName2(const ::testing::TestParamInfo<int>& param_info) {
  return param_info.param == 0   ? "Esm"
         : param_info.param == 1 ? "Starburst"
                                 : "Eos";
}

INSTANTIATE_TEST_SUITE_P(Engines, MaintenanceTest, ::testing::Values(0, 1, 2),
                         EngineName2);

}  // namespace
}  // namespace lob
