// Tests for the hierarchical cost flamegraph: ledger labels like
// "esm.insert.esm.append" roll up under their longest observed dotted
// prefix, folded-stack output is deterministic and speedscope-parsable,
// and the conservation checks catch both structural and span/ledger
// mismatches.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "obs/flame.h"
#include "obs/obs_registry.h"

namespace lob {
namespace {

IoStats MakeIo(double ms, uint64_t reads) {
  IoStats io;
  io.read_calls = reads;
  io.pages_read = reads;
  io.ms = ms;
  return io;
}

/// One finished op: the metered call lands in the ledger
/// (AttributeCall) and the op end feeds the histograms (RecordOpEnd) —
/// the same pairing OpScope produces.
void Record(ObsRegistry* obs, const char* label, double ms, uint64_t reads) {
  const IoStats io = MakeIo(ms, reads);
  obs->AttributeCall(label, io);
  obs->RecordOpEnd(label, io);
}

TEST(FlameGraphTest, BuildsTreeFromDottedLabels) {
  ObsRegistry obs;
  Record(&obs, "esm.insert", 100, 2);
  Record(&obs, "esm.insert.esm.append", 40, 1);
  Record(&obs, "eos.read", 30, 1);

  const FlameGraph g = FlameGraph::Build(obs);
  ASSERT_EQ(g.roots().size(), 2u);
  const FlameNode& insert = g.roots().at("esm.insert");
  EXPECT_DOUBLE_EQ(insert.self_ms, 100.0);
  // The nested label hangs under its parent, keyed by the label suffix.
  ASSERT_EQ(insert.children.size(), 1u);
  const FlameNode& nested = insert.children.at("esm.append");
  EXPECT_EQ(nested.label, "esm.insert.esm.append");
  EXPECT_DOUBLE_EQ(nested.self_ms, 40.0);
  EXPECT_DOUBLE_EQ(insert.TotalMs(), 140.0);
  EXPECT_DOUBLE_EQ(g.TotalMs(), 170.0);
}

TEST(FlameGraphTest, ParentIsLongestObservedPrefix) {
  // "a.b.c" must attach under "a.b" (the longest prefix), not "a".
  ObsRegistry obs;
  Record(&obs, "a", 1, 1);
  Record(&obs, "a.b", 2, 1);
  Record(&obs, "a.b.c", 4, 1);
  const FlameGraph g = FlameGraph::Build(obs);
  const FlameNode& a = g.roots().at("a");
  ASSERT_EQ(a.children.count("b"), 1u);
  const FlameNode& b = a.children.at("b");
  ASSERT_EQ(b.children.count("c"), 1u);
  EXPECT_DOUBLE_EQ(a.TotalMs(), 7.0);
}

TEST(FlameGraphTest, DotInLabelWithoutObservedParentStaysARoot) {
  // "esm.insert" with no plain "esm" entry is a root: the prefix rule
  // only splits on labels the ledger actually observed.
  ObsRegistry obs;
  Record(&obs, "esm.insert", 5, 1);
  const FlameGraph g = FlameGraph::Build(obs);
  ASSERT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.roots().count("esm.insert"), 1u);
}

TEST(FlameGraphTest, FoldedOutputIsSortedAndSemicolonJoined) {
  ObsRegistry obs;
  Record(&obs, "esm.insert", 100, 2);
  Record(&obs, "esm.insert.esm.append", 40, 1);
  Record(&obs, "eos.read", 30, 1);
  const FlameGraph g = FlameGraph::Build(obs);
  // Folded lines carry exclusive (self) cost in integer microseconds.
  EXPECT_EQ(g.ToFolded(),
            "eos.read 30000\n"
            "esm.insert 100000\n"
            "esm.insert;esm.append 40000\n");
}

TEST(FlameGraphTest, CheckStructurePassesWhenTotalsMatchLedger) {
  ObsRegistry obs;
  Record(&obs, "x", 10, 1);
  Record(&obs, "x.y", 5, 1);
  const FlameGraph g = FlameGraph::Build(obs);
  const FlameGraph::Check ok = g.CheckStructure(15.0);
  EXPECT_TRUE(ok.ok) << (ok.problems.empty() ? "" : ok.problems[0]);
  const FlameGraph::Check bad = g.CheckStructure(99.0);
  EXPECT_FALSE(bad.ok);
  ASSERT_FALSE(bad.problems.empty());
}

TEST(FlameGraphTest, CheckConservationComparesSpansPerLabel) {
  ObsRegistry obs;
  Record(&obs, "x", 10, 1);
  Record(&obs, "x.y", 5, 1);
  const FlameGraph g = FlameGraph::Build(obs);
  std::map<std::string, double> spans = {{"x", 10.0}, {"x.y", 5.0}};
  EXPECT_TRUE(g.CheckConservation(spans).ok);
  spans["x.y"] = 4.0;  // span disagrees with ledger
  EXPECT_FALSE(g.CheckConservation(spans).ok);
  spans["x.y"] = 5.0;
  spans["ghost"] = 1.0;  // span with no ledger entry
  EXPECT_FALSE(g.CheckConservation(spans).ok);
}

TEST(FlameGraphTest, RealWorkloadConservesAgainstTheLedger) {
  // End to end: run a small mixed workload on the real engine and check
  // the flamegraph total equals the attribution ledger total.
  StorageSystem sys;
  auto mgr = CreateEsmManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  Rng rng(7);
  std::string data(20000, 'x');
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(mgr->Append(*id, data).ok());
  std::string buf;
  ASSERT_TRUE(mgr->Read(*id, 1000, 5000, &buf).ok());
  ASSERT_TRUE(mgr->Insert(*id, 500, data.substr(0, 3000)).ok());
  ASSERT_TRUE(mgr->Delete(*id, 200, 1000).ok());

  const FlameGraph g = FlameGraph::Build(*sys.obs());
  const FlameGraph::Check c =
      g.CheckStructure(sys.obs()->AttributedTotal().ms);
  EXPECT_TRUE(c.ok) << (c.problems.empty() ? "" : c.problems[0]);
  EXPECT_GT(g.TotalMs(), 0.0);
  EXPECT_FALSE(g.ToFolded().empty());
}

}  // namespace
}  // namespace lob
