// Tests for the unified per-cell MetricsSnapshot: op percentile rows,
// pool hit/miss/eviction rates, buddy free-extent stats, fault counters,
// and the sorted-key embeddable JSON contract (schema v2).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/json.h"
#include "core/factory.h"
#include "core/metrics_snapshot.h"
#include "core/storage_system.h"

namespace lob {
namespace {

TEST(MetricsSnapshotTest, CollectCapturesOpsPoolAndAreas) {
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  std::string data(50000, 'x');
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(mgr->Append(*id, data).ok());
  std::string buf;
  ASSERT_TRUE(mgr->Read(*id, 0, 20000, &buf).ok());

  const MetricsSnapshot snap = MetricsSnapshot::Collect(&sys);
  EXPECT_TRUE(snap.has_substrate);
  ASSERT_EQ(snap.ops.count("eos.read"), 1u);
  const auto& read = snap.ops.at("eos.read");
  EXPECT_EQ(read.count, 1u);
  EXPECT_TRUE(read.has_histogram);
  EXPECT_GT(read.mean_ms, 0.0);
  EXPECT_GT(read.p50_ms, 0.0);
  EXPECT_LE(read.p50_ms, read.p99_ms);
  EXPECT_LE(read.p99_ms, static_cast<double>(read.max_ms));
  // Pool counters were published into the registry and summarized.
  EXPECT_GT(snap.pool.hits + snap.pool.misses, 0u);
  EXPECT_GE(snap.pool.hit_rate, 0.0);
  EXPECT_LE(snap.pool.hit_rate, 1.0);
  EXPECT_EQ(snap.counters.count("pool.fix_hits"), 1u);
  // Both areas are present with allocator state.
  ASSERT_EQ(snap.areas.count("leaf"), 1u);
  ASSERT_EQ(snap.areas.count("meta"), 1u);
  EXPECT_GT(snap.areas.at("leaf").allocated_pages, 0u);
  // No faults armed, none fired.
  EXPECT_EQ(snap.faults.armed, 0u);
  EXPECT_EQ(snap.faults.fired, 0u);
}

TEST(MetricsSnapshotTest, JsonParsesAndHasSortedSchemaV2Shape) {
  StorageSystem sys;
  auto mgr = CreateEsmManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Append(*id, std::string(30000, 'y')).ok());

  const MetricsSnapshot snap = MetricsSnapshot::Collect(&sys);
  const std::string json = snap.ToJson("  ");
  EXPECT_EQ(json.back(), '}') << "embeddable: no trailing newline";

  auto v = JsonValue::Parse(json);
  ASSERT_TRUE(v.ok()) << v.status().ToString() << "\n" << json;
  EXPECT_DOUBLE_EQ(v->NumberOr("schema_version", 0), 2.0);
  const JsonValue* ops = v->Find("ops");
  ASSERT_NE(ops, nullptr);
  const JsonValue* append = ops->Find("esm.append");
  ASSERT_NE(append, nullptr);
  for (const char* key :
       {"count", "max_ms", "mean_ms", "ms", "p50_ms", "p90_ms", "p99_ms",
        "pages", "seeks"}) {
    EXPECT_NE(append->Find(key), nullptr) << key;
  }
  ASSERT_NE(v->Find("pool"), nullptr);
  ASSERT_NE(v->Find("areas"), nullptr);
  ASSERT_NE(v->Find("faults"), nullptr);
}

TEST(MetricsSnapshotTest, FromRegistryIsOpsAndCountersOnly) {
  ObsRegistry obs;
  IoStats call;
  call.read_calls = 1;
  call.pages_read = 4;
  call.ms = 49.0;
  obs.AttributeCall("eos.read", call);
  obs.RecordOpEnd("eos.read", call);
  obs.Counter("pool.fix_hits") = 3;

  const MetricsSnapshot snap = MetricsSnapshot::FromRegistry(obs);
  EXPECT_FALSE(snap.has_substrate);
  ASSERT_EQ(snap.ops.count("eos.read"), 1u);
  EXPECT_DOUBLE_EQ(snap.ops.at("eos.read").mean_ms, 49.0);
  EXPECT_EQ(snap.counters.at("pool.fix_hits"), 3u);
  // Registry-only snapshots omit the substrate sections entirely.
  const std::string json = snap.ToJson();
  EXPECT_EQ(json.find("\"pool\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"areas\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"faults\""), std::string::npos) << json;
  auto v = JsonValue::Parse(json);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
}

TEST(MetricsSnapshotTest, SnapshotIsDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    StorageSystem sys;
    auto mgr = CreateEosManager(&sys, 4);
    auto id = mgr->Create();
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(mgr->Append(*id, std::string(40000, 'z')).ok());
    std::string buf;
    EXPECT_TRUE(mgr->Read(*id, 100, 10000, &buf).ok());
    return MetricsSnapshot::Collect(&sys).ToJson("    ");
  };
  EXPECT_EQ(run(), run());
}

TEST(MetricsSnapshotTest, FaultCountersSurfaceInSnapshot) {
  StorageSystem sys;
  FaultSpec spec;
  spec.kind = FaultKind::kOneShot;
  spec.after_calls = 0;
  spec.message = "injected";
  sys.disk()->ArmFault(spec);
  const MetricsSnapshot armed = MetricsSnapshot::Collect(&sys);
  EXPECT_EQ(armed.faults.armed, 1u);
  EXPECT_EQ(armed.faults.fired, 0u);
  // The very next metered call fires the one-shot fault.
  const AreaId area = sys.disk()->CreateArea();
  std::string page(4096, 'w');
  EXPECT_FALSE(sys.disk()->Write(area, 0, 1, page.data()).ok());
  // The one-shot is exhausted: the retry succeeds and counts as a
  // foreground call (the fired call itself "never happened").
  EXPECT_TRUE(sys.disk()->Write(area, 0, 1, page.data()).ok());
  const MetricsSnapshot snap = MetricsSnapshot::Collect(&sys);
  EXPECT_EQ(snap.faults.fired, 1u);
  EXPECT_GT(snap.faults.foreground_calls, 0u);
}

}  // namespace
}  // namespace lob
