// Tests for the FillBytes hot path: the NoZeroInit overload must produce
// exactly the byte stream (and Rng consumption) of the plain overload for
// every size/alignment combination, while retaining buffer capacity
// across shrink/grow cycles.

#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "workload/workload.h"

namespace lob {
namespace {

TEST(FillBytesTest, NoZeroInitMatchesPlainOverload) {
  // Cover word-aligned sizes, byte tails, empty, and block boundaries.
  const std::vector<uint64_t> sizes = {0,    1,    7,    8,    9,   63,
                                       64,   65,   100,  1023, 1024, 1025,
                                       4096, 10000};
  for (uint64_t n : sizes) {
    Rng a(123), b(123);
    std::string plain, fast;
    FillBytes(&a, n, &plain);
    FillBytes(&b, n, &fast, NoZeroInit{});
    EXPECT_EQ(plain, fast) << "n=" << n;
    // Identical Rng consumption: the next value must agree.
    EXPECT_EQ(a.Next(), b.Next()) << "n=" << n;
  }
}

TEST(FillBytesTest, NoZeroInitMatchesWhenReusingBuffer) {
  // Grow, shrink, regrow: the reused buffer must still match a fresh
  // buffer byte-for-byte at every step.
  Rng a(9), b(9);
  std::string reused;
  const std::vector<uint64_t> sequence = {100, 5000, 17, 0, 2048, 2049, 31};
  for (uint64_t n : sequence) {
    std::string fresh;
    FillBytes(&a, n, &fresh);
    FillBytes(&b, n, &reused, NoZeroInit{});
    EXPECT_EQ(fresh, reused) << "n=" << n;
  }
}

TEST(FillBytesTest, NoZeroInitRetainsCapacityAcrossShrink) {
  Rng rng(1);
  std::string buf;
  FillBytes(&rng, 8192, &buf, NoZeroInit{});
  const size_t cap = buf.capacity();
  EXPECT_GE(cap, 8192u);
  FillBytes(&rng, 16, &buf, NoZeroInit{});
  EXPECT_EQ(buf.size(), 16u);
  EXPECT_EQ(buf.capacity(), cap);  // shrink must not release capacity
  FillBytes(&rng, 8192, &buf, NoZeroInit{});
  EXPECT_EQ(buf.size(), 8192u);
  EXPECT_EQ(buf.capacity(), cap);  // regrow fits into retained capacity
}

}  // namespace
}  // namespace lob
