#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "buddy/database_area.h"
#include "common/rng.h"

namespace lob {
namespace {

class DatabaseAreaTest : public ::testing::Test {
 protected:
  DatabaseAreaTest() {
    cfg_.buddy_space_order = 6;  // tiny 64-block spaces for tests
    disk_ = std::make_unique<SimDisk>(cfg_);
    pool_ = std::make_unique<BufferPool>(disk_.get(), cfg_);
    area_id_ = disk_->CreateArea();
    area_ = std::make_unique<DatabaseArea>(pool_.get(), area_id_, cfg_);
  }

  StorageConfig cfg_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<BufferPool> pool_;
  AreaId area_id_ = 0;
  std::unique_ptr<DatabaseArea> area_;
};

TEST_F(DatabaseAreaTest, FirstAllocationCreatesASpace) {
  EXPECT_EQ(area_->num_spaces(), 0u);
  auto seg = area_->Allocate(4);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(area_->num_spaces(), 1u);
  EXPECT_EQ(seg->pages, 4u);
  // Data pages start after the directory block (page 0 of the space).
  EXPECT_GE(seg->first_page, 1u);
}

TEST_F(DatabaseAreaTest, SegmentsDoNotOverlap) {
  std::vector<Segment> segs;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    auto seg = area_->Allocate(static_cast<uint32_t>(rng.Uniform(1, 9)));
    ASSERT_TRUE(seg.ok());
    segs.push_back(*seg);
  }
  std::map<PageId, PageId> spans;  // first -> end
  for (const auto& s : segs) {
    for (const auto& [first, end] : spans) {
      EXPECT_FALSE(s.first_page < end && first < s.first_page + s.pages)
          << "overlap";
    }
    spans[s.first_page] = s.first_page + s.pages;
  }
  EXPECT_TRUE(area_->CheckInvariants());
}

TEST_F(DatabaseAreaTest, GrowsAcrossSpacesWhenFull) {
  // A 64-block space can hold two 32-page segments; the third must open a
  // new space.
  ASSERT_TRUE(area_->Allocate(32).ok());
  ASSERT_TRUE(area_->Allocate(32).ok());
  EXPECT_EQ(area_->num_spaces(), 1u);
  ASSERT_TRUE(area_->Allocate(32).ok());
  EXPECT_EQ(area_->num_spaces(), 2u);
}

TEST_F(DatabaseAreaTest, SuperdirectorySkipsFullSpaces) {
  ASSERT_TRUE(area_->Allocate(64).ok());  // space 0 completely full
  EXPECT_EQ(area_->SuperdirectoryHint(0), 0u);
  ASSERT_TRUE(area_->Allocate(64).ok());  // space 1
  EXPECT_EQ(area_->num_spaces(), 2u);
  // Allocating again must not touch space 0's directory: evict it from the
  // pool first and verify no read happens for it.
  ASSERT_TRUE(pool_->FlushAll().ok());
  ASSERT_TRUE(pool_->Invalidate(area_id_, 0, 1).ok());
  disk_->ResetStats();
  ASSERT_TRUE(area_->Allocate(4).ok());
  EXPECT_FALSE(pool_->IsCached(area_id_, 0))
      << "directory of the full space 0 must not have been visited";
}

TEST_F(DatabaseAreaTest, FreeMakesSpaceReusable) {
  auto seg = area_->Allocate(32);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(area_->Allocate(32).ok());
  ASSERT_TRUE(area_->Free(*seg).ok());
  auto seg2 = area_->Allocate(32);
  ASSERT_TRUE(seg2.ok());
  EXPECT_EQ(area_->num_spaces(), 1u) << "freed space reused, no growth";
  EXPECT_EQ(seg2->first_page, seg->first_page);
}

TEST_F(DatabaseAreaTest, PartialFreeOfSegment) {
  auto seg = area_->Allocate(10);
  ASSERT_TRUE(seg.ok());
  // Trim the last 3 pages only.
  ASSERT_TRUE(area_->Free(seg->first_page + 7, 3).ok());
  EXPECT_EQ(area_->allocated_pages(), 7u);
  EXPECT_TRUE(area_->IsAllocated(seg->first_page));
  EXPECT_FALSE(area_->IsAllocated(seg->first_page + 7));
  EXPECT_TRUE(area_->CheckInvariants());
}

TEST_F(DatabaseAreaTest, RejectsBadFrees) {
  auto seg = area_->Allocate(4);
  ASSERT_TRUE(seg.ok());
  EXPECT_FALSE(area_->Free(seg->first_page, 0).ok());
  EXPECT_FALSE(area_->Free(10000, 1).ok());
  // Page 0 of a space is its directory block.
  EXPECT_FALSE(area_->Free(0, 1).ok());
}

TEST_F(DatabaseAreaTest, RejectsOversizedSegments) {
  EXPECT_EQ(area_->Allocate(65).status().code(), StatusCode::kNoSpace);
  EXPECT_EQ(area_->max_segment_pages(), 64u);
}

TEST_F(DatabaseAreaTest, SteadyStateAllocationCostIsAtMostOneAccess) {
  // Paper 3.1: on steady state, allocating from a buddy space costs at most
  // one disk access. With the directory hot in the pool it costs none.
  ASSERT_TRUE(area_->Allocate(4).ok());
  disk_->ResetStats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(area_->Allocate(2).ok());
  }
  EXPECT_EQ(disk_->stats().read_calls, 0u)
      << "hot directory: no I/O for allocation";
}

TEST_F(DatabaseAreaTest, DirectoryPersistedOnFlush) {
  auto seg = area_->Allocate(8);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(pool_->FlushAll().ok());
  // Read the directory block straight from disk and check the bitmap marks
  // the allocated blocks as used (bit=1 means free).
  std::vector<char> dir(4096);
  ASSERT_TRUE(disk_->Read(area_id_, 0, 1, dir.data()).ok());
  const uint32_t b0 = seg->first_page - 1;  // block index within space
  for (uint32_t b = b0; b < b0 + 8; ++b) {
    EXPECT_EQ((dir[b / 8] >> (b % 8)) & 1, 0) << "block " << b;
  }
}

TEST_F(DatabaseAreaTest, AllocatedPagesTracksUsage) {
  EXPECT_EQ(area_->allocated_pages(), 0u);
  auto a = area_->Allocate(5);
  auto b = area_->Allocate(7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(area_->allocated_pages(), 12u);
  ASSERT_TRUE(area_->Free(*a).ok());
  EXPECT_EQ(area_->allocated_pages(), 7u);
}

}  // namespace
}  // namespace lob
