// LOBLINT-FIXTURE-PATH: src/workload/fake_stats.cc
// The compliant version: lookups stay O(1) in the hash map, but anything
// that iterates goes through a sorted copy (or an ordered container).
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lob {

std::string DumpCounts(const std::unordered_map<int, int>& counts) {
  std::vector<std::pair<int, int>> rows(counts.begin(), counts.end());
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& kv : rows) {
    out += std::to_string(kv.first) + "," + std::to_string(kv.second) + "\n";
  }
  return out;
}

std::string DumpOrdered(const std::map<int, int>& counts) {
  std::string out;
  for (const auto& kv : counts) {
    out += std::to_string(kv.first) + "\n";
  }
  return out;
}

}  // namespace lob
