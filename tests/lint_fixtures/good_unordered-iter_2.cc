// LOBLINT-FIXTURE-PATH: src/obs/fake_flame.cc
// The compliant flame/diff exporter shape: sorted std::map at every
// level, so folded-stack lines and diff rows come out in key order no
// matter how the inputs were produced.
#include <cstdint>
#include <map>
#include <string>

namespace lob {

struct FakeFlameNode {
  uint64_t self_us = 0;
  std::map<std::string, FakeFlameNode> children;
};

std::string ToFolded(const std::map<std::string, FakeFlameNode>& roots,
                     const std::string& prefix) {
  std::string out;
  for (const auto& kv : roots) {
    const std::string path =
        prefix.empty() ? kv.first : prefix + ";" + kv.first;
    out += path + " " + std::to_string(kv.second.self_us) + "\n";
    out += ToFolded(kv.second.children, path);
  }
  return out;
}

}  // namespace lob
