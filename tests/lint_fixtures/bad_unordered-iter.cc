// LOBLINT-FIXTURE-PATH: src/workload/fake_stats.cc
// Iterating a hash map straight into an output string: row order depends
// on the hash function and becomes a --jobs / libstdc++-version lottery.
#include <string>
#include <unordered_map>

namespace lob {

std::string DumpCounts(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> counts = unused;
  std::string out;
  for (const auto& kv : counts) {
    out += std::to_string(kv.first) + "," + std::to_string(kv.second) + "\n";
  }
  return out;
}

}  // namespace lob
