// LOBLINT-FIXTURE-PATH: src/esm/bad_rank.h
//
// A lob::Mutex declared without naming its LockRank: the run-time order
// checker cannot place it in the acquisition order, so a deadlock cycle
// through it would go undetected.

#ifndef LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_H_
#define LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_H_

#include "common/lock_order.h"

namespace lob {

class BadRank {
 private:
  Mutex mu_;  // BAD: no LockRank named
};

}  // namespace lob

#endif  // LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_H_
