// LOBLINT-FIXTURE-PATH: src/esm/good_extent.cc
//
// The guarded forms: ScopedExtent rolls the allocation back on every error
// path until Commit(), and a justified suppression covers the rare site
// that manages its own rollback.

#include "buddy/scoped_extent.h"

namespace lob {

Status GrowLeaf(DatabaseArea* leaf_area, BufferPool* pool) {
  auto seg = ScopedExtent::Allocate(leaf_area, pool, 4);
  if (!seg.ok()) return seg.status();
  // ... fallible writes; an early return rolls the extent back ...
  seg->Commit();
  return Status::OK();
}

Status GrowLeafManualRollback(DatabaseArea* leaf_area) {
  // LOBLINT(extent-guard): freed on every path below via FreeOnError
  auto seg = leaf_area->Allocate(4);
  if (!seg.ok()) return seg.status();
  return Status::OK();
}

}  // namespace lob
