// Compliant span sites: nullary accessor chains and string literals only,
// exactly what every production LOB_TRACE_SPAN site looks like.
#include "trace/trace_span.h"

namespace lob {

struct FakeTree {
  struct {
    void* pool;
  } config_;
  SimDisk* disk_ = nullptr;

  void Walk(SimDisk* (*accessor)());
};

void Descend(SimDisk* disk) { LOB_TRACE_SPAN(disk, "tree.descend"); }

struct FakePool {
  SimDisk* disk() const { return nullptr; }
};

void Evict(FakePool* pool) { LOB_TRACE_SPAN(pool->disk(), "pool.evict"); }

}  // namespace lob
