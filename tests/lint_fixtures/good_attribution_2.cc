// LOBLINT-FIXTURE-PATH: src/workload/fake_audit.cc
// A justified direct call: persistence/audit walks outside the metered
// path may suppress the rule with a reviewed reason.
#include "iomodel/sim_disk.h"

namespace lob {

Status SnapshotPage(SimDisk* disk, AreaId area, PageId page, char* dst) {
  // LOBLINT(attribution): audit-only path, always wrapped in
  // StorageSystem::UnmeteredSection by the single caller, so no attributed
  // cost exists to conserve.
  return disk->Read(area, page, 1, dst);
}

}  // namespace lob
