// LOBLINT-FIXTURE-PATH: src/esm/bad_extent.cc
//
// Raw DatabaseArea allocation in engine code: if WritePages (or any later
// step) fails, nothing frees the segment -- the exact leak class the
// fault-injection campaign classifies as a `leak` cell.

#include "buddy/database_area.h"

namespace lob {

Status GrowLeaf(DatabaseArea* leaf_area) {
  auto seg = leaf_area->Allocate(4);  // BAD: unguarded extent
  if (!seg.ok()) return seg.status();
  // ... a fallible write here would leak `seg` on its error path ...
  return Status::OK();
}

}  // namespace lob
