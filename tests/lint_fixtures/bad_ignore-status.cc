// LOB_IGNORE_STATUS with no justification: the whole point of the
// [[nodiscard]] Status discipline is that dropped errors carry a written,
// reviewable reason (the OpContext::Finish state leak was a silent drop).
#include "common/status.h"

namespace lob {

Status Cleanup();

void Teardown() {
  LOB_IGNORE_STATUS(Cleanup());
}

}  // namespace lob
