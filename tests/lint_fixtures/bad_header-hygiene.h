// A header with no include guard and a file-scope using-directive: the
// first breaks double inclusion, the second leaks names into every
// translation unit that includes it.
#include <string>

using namespace std;

namespace lob {

inline string Shout(const string& s) { return s + "!"; }

}  // namespace lob
