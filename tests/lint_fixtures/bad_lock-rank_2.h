// LOBLINT-FIXTURE-PATH: src/esm/bad_guard.h
//
// A mutable member sitting next to a mutex with no LOB_GUARDED_BY: either
// the lock protects it (annotate it) or something else does (say what,
// with a LOBLINT(lock-rank) suppression). Silent is not an option.

#ifndef LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_2_H_
#define LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_2_H_

#include <cstdint>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class BadGuard {
 private:
  Mutex mu_{LockRank::kBufferPool};
  uint64_t hits_ = 0;  // BAD: shared mutable state, no LOB_GUARDED_BY
};

}  // namespace lob

#endif  // LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_2_H_
