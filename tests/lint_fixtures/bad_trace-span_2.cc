// A function call with arguments inside LOB_TRACE_SPAN: even if it is pure
// today, the OFF build cannot prove it, so the zero-cost-off contract
// forbids it. Only nullary accessor chains are allowed.
#include "trace/trace_span.h"

namespace lob {

SimDisk* PickDisk(int which);

void Splice(int which) {
  LOB_TRACE_SPAN(PickDisk(which), "sb.splice");
}

}  // namespace lob
