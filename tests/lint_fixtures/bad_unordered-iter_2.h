// LOBLINT-FIXTURE-PATH: src/trace/fake_exporter.h
// Exporter-scoped code may not even *declare* unordered containers: the
// temptation to iterate one into CSV/JSON is how ordering leaks are born.
#ifndef LOB_TESTS_LINT_FIXTURES_BAD_UNORDERED_2_H_
#define LOB_TESTS_LINT_FIXTURES_BAD_UNORDERED_2_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace lob {

class FakeExporter {
 public:
  void Note(const std::string& label, uint64_t ms) { totals_[label] += ms; }

 private:
  std::unordered_map<std::string, uint64_t> totals_;
};

}  // namespace lob

#endif  // LOB_TESTS_LINT_FIXTURES_BAD_UNORDERED_2_H_
