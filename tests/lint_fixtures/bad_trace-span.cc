// Side effects inside LOB_TRACE_SPAN arguments: under -DLOB_TRACING=OFF
// the macro expands to ((void)0), so the increment would only happen in
// tracing builds -- breaking the byte-identical OFF/ON contract.
#include "trace/trace_span.h"

namespace lob {

void Descend(SimDisk* disk, int* depth) {
  LOB_TRACE_SPAN(disk, ("tree.level", (*depth)++) ? "a" : "b");
}

}  // namespace lob
