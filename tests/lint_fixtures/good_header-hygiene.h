// A well-formed header: guarded, no using-directives, qualified names.
#ifndef LOB_TESTS_LINT_FIXTURES_GOOD_HEADER_HYGIENE_H_
#define LOB_TESTS_LINT_FIXTURES_GOOD_HEADER_HYGIENE_H_

#include <string>

namespace lob {

inline std::string Shout(const std::string& s) { return s + "!"; }

}  // namespace lob

#endif  // LOB_TESTS_LINT_FIXTURES_GOOD_HEADER_HYGIENE_H_
