// LOBLINT-FIXTURE-PATH: src/exec/fake_profile.cc
// src/exec is the bench-profile allowlist: measuring the simulator's own
// wall-clock cost is that layer's whole job.
#include <chrono>

namespace lob {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace lob
