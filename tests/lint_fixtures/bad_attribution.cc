// LOBLINT-FIXTURE-PATH: src/esm/fake_fastpath.cc
// A manager bypassing the buffer pool and talking to SimDisk directly:
// the I/O is still metered globally but is no longer charged under the
// operation's OpScope label, silently breaking the conservation invariant
// sum(attributed) == global that obs_test enforces on all three engines.
#include "iomodel/sim_disk.h"

namespace lob {

Status FastBulkRead(SimDisk* disk, AreaId area, PageId first, uint32_t n,
                    char* dst) {
  return disk->Read(area, first, n, dst);
}

}  // namespace lob
