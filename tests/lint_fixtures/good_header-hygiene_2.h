// #pragma once is accepted as a guard too.
#pragma once

#include <cstdint>

namespace lob {

inline uint32_t NextPow2(uint32_t x) {
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace lob
