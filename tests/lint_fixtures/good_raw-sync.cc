// LOBLINT-FIXTURE-PATH: src/common/fake_sync.cc
//
// src/common/ is the one place raw primitives are allowed: it is where
// the ranked lob::Mutex wrappers themselves are implemented.

#include <mutex>

namespace lob {

int Counter() {
  static std::mutex mu;
  static int count = 0;
  std::lock_guard<std::mutex> lock(mu);
  return ++count;
}

}  // namespace lob
