// LOBLINT-FIXTURE-PATH: src/core/fake_report.cc
// Pointer-identity output (%p) and ambient entropy (rand) in library code:
// ASLR makes addresses differ every run, rand() is unseeded host state.
#include <cstdio>
#include <cstdlib>

namespace lob {

void DumpNode(const void* node) {
  std::printf("node at %p picked %d\n", node, rand());
}

}  // namespace lob
