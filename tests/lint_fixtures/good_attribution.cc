// LOBLINT-FIXTURE-PATH: src/esm/fake_fastpath.cc
// The compliant version: the manager reads through the BufferPool, whose
// SimDisk calls are charged to whatever OpScope label the caller holds.
#include "buffer/buffer_pool.h"

namespace lob {

Status BulkRead(BufferPool* pool, AreaId area, PageId first,
                uint64_t valid_bytes, uint64_t off, uint64_t n, char* dst) {
  return pool->ReadSegmentRange(area, first, valid_bytes, off, n, dst);
}

}  // namespace lob
