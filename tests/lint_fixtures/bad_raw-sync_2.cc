// LOBLINT-FIXTURE-PATH: tools/bad_sync_tool.cc
//
// Tools are in scope too: a condition_variable wait in a tool is exactly
// as invisible to the rank checker as one in the library.

#include <condition_variable>
#include <mutex>

namespace lob {

struct Waiter {
  std::mutex mu;                // BAD
  std::condition_variable cv;   // BAD: raw condvar, use lob::CondVar
  bool ready = false;
};

}  // namespace lob
