// LOBLINT-FIXTURE-PATH: src/lobtree/good_latch.h
//
// The reader-writer latch shape the concurrency model introduced (see
// PositionalTree and DatabaseArea): a SharedMutex naming its rank from
// the table, members guarded by it, and shared-lock method contracts
// spelled with LOB_REQUIRES_SHARED. Must produce zero findings.

#ifndef LOB_TESTS_LINT_FIXTURES_GOOD_LOCK_RANK_2_H_
#define LOB_TESTS_LINT_FIXTURES_GOOD_LOCK_RANK_2_H_

#include <cstdint>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class GoodLatch {
 public:
  uint64_t Size() const LOB_EXCLUDES(latch_) {
    ReaderMutexLock lock(&latch_);
    return SizeLocked();
  }

  void Grow(uint64_t n) LOB_EXCLUDES(latch_) {
    WriterMutexLock lock(&latch_);
    leaves_.push_back(n);
    ++height_;
  }

 private:
  uint64_t SizeLocked() const LOB_REQUIRES_SHARED(latch_) {
    return leaves_.size();
  }

  mutable SharedMutex latch_{LockRank::kLobTree};
  std::vector<uint64_t> leaves_ LOB_GUARDED_BY(latch_);
  uint32_t height_ LOB_GUARDED_BY(latch_) = 0;
};

}  // namespace lob

#endif  // LOB_TESTS_LINT_FIXTURES_GOOD_LOCK_RANK_2_H_
