// LOBLINT-FIXTURE-PATH: src/esm/good_sync.cc
//
// The sanctioned form: a ranked lob::Mutex with an RAII MutexLock. The
// acquisition is order-checked at run time and analyzable by Clang.

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class GoodCounter {
 public:
  int Next() LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return ++count_;
  }

 private:
  Mutex mu_{LockRank::kCampaign};
  int count_ LOB_GUARDED_BY(mu_) = 0;
};

}  // namespace lob
