// LOBLINT-FIXTURE-PATH: src/esm/bad_sync.cc
//
// Raw std synchronization in library code: the acquisition carries no
// LockRank, bypasses the run-time order checker, and is invisible to
// Clang -Wthread-safety. Lock through lob::Mutex / MutexLock instead.

#include <mutex>

namespace lob {

int Counter() {
  static std::mutex mu;  // BAD: unranked raw mutex
  static int count = 0;
  std::lock_guard<std::mutex> lock(mu);  // BAD: raw lock
  return ++count;
}

}  // namespace lob
