// LOBLINT-FIXTURE-PATH: src/workload/fake_mix.cc
// A modeled-clock path consulting the host clock: the classic determinism
// leak. Results would differ run to run and machine to machine.
#include <chrono>

namespace lob {

double MeasureOp() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace lob
