// LOBLINT-FIXTURE-PATH: src/esm/good_rank.h
//
// The compliant shape: the mutex names its rank, every mutable member is
// annotated with the lock that protects it, immutable and lock/condvar
// members are exempt, and the one genuinely confined member carries a
// justified suppression.

#ifndef LOB_TESTS_LINT_FIXTURES_GOOD_LOCK_RANK_H_
#define LOB_TESTS_LINT_FIXTURES_GOOD_LOCK_RANK_H_

#include <cstdint>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class GoodRank {
 public:
  void Add(uint64_t v) LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    values_.push_back(v);
    ++count_;
  }

 private:
  const uint32_t capacity_ = 16;  // immutable: exempt
  mutable Mutex mu_{LockRank::kObsRegistry};
  CondVar cv_;
  std::vector<uint64_t> values_ LOB_GUARDED_BY(mu_);
  uint64_t count_ LOB_GUARDED_BY(mu_) = 0;
  // LOBLINT(lock-rank): owner-thread confined — written before any worker
  // starts and never mutated afterwards.
  uint64_t epoch_ = 0;
};

}  // namespace lob

#endif  // LOB_TESTS_LINT_FIXTURES_GOOD_LOCK_RANK_H_
