// LOBLINT-FIXTURE-PATH: src/workload/fake_seeding.cc
// A justified suppression: the reason is mandatory and reviewed.
#include <chrono>

namespace lob {

unsigned DebugOnlySeed() {
  return static_cast<unsigned>(
      // LOBLINT(wallclock): debug-only helper, never reachable from bench
      // output; gated behind LOB_DEBUG_SEED at the single call site.
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace lob
