// LOBLINT-FIXTURE-PATH: src/buddy/bad_latch.h
//
// A SharedMutex declared without naming its LockRank. Reader-writer
// latches participate in the same acquisition order as plain mutexes
// (a writer hold is a hold); leaving the rank off hides the latch from
// the order checker exactly like an unranked Mutex would.

#ifndef LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_3_H_
#define LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_3_H_

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

class BadLatch {
 private:
  mutable SharedMutex latch_;  // BAD: no LockRank named
};

}  // namespace lob

#endif  // LOB_TESTS_LINT_FIXTURES_BAD_LOCK_RANK_3_H_
