// A justified discard: best-effort cleanup on a path already returning a
// different error, with the reason written at the call site.
#include "common/status.h"

namespace lob {

Status Cleanup();
Status DoWork();

Status Run() {
  Status work = DoWork();
  if (!work.ok()) {
    // Best-effort: we are already failing with the DoWork error, and
    // Cleanup failure cannot be acted on here (the caller retries the
    // whole operation, which re-runs cleanup).
    LOB_IGNORE_STATUS(Cleanup());
    return work;
  }
  return Cleanup();
}

}  // namespace lob
