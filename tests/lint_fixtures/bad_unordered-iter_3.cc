// LOBLINT-FIXTURE-PATH: src/core/metrics_snapshot.cc
// The metrics-snapshot exporter is in LOB002's exporter scope: even
// declaring an unordered container here is banned, because the snapshot
// JSON must be byte-identical for any --jobs and any libstdc++.
#include <cstdint>
#include <string>
#include <unordered_map>

namespace lob {

struct FakeSnapshot {
  std::unordered_map<std::string, uint64_t> ops;

  std::string ToJson() const {
    std::string out = "{";
    for (const auto& kv : ops) {
      out += "\"" + kv.first + "\": " + std::to_string(kv.second) + ",";
    }
    out += "}";
    return out;
  }
};

}  // namespace lob
