// LOBLINT-FIXTURE-PATH: src/workload/fake_mix.cc
// The compliant version: cost comes off the modeled clock and randomness
// from the seeded lob::Rng, so output is a pure function of the seed.
#include "common/rng.h"
#include "iomodel/sim_disk.h"

namespace lob {

double MeasureOp(SimDisk* disk, Rng* rng) {
  const double before = disk->stats().ms;
  (void)rng->Uniform(0, 100);
  return disk->stats().ms - before;
}

}  // namespace lob
