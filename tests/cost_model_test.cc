// End-to-end modeled-cost regression tests: pin the reproduction to the
// paper's quantitative anchors so refactoring cannot silently change the
// simulated performance characteristics the study is about.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "core/factory.h"
#include "starburst/starburst_manager.h"
#include "core/storage_system.h"
#include "workload/workload.h"

namespace lob {
namespace {

constexpr uint64_t kMb = 1024 * 1024;

TEST(CostAnchors, StarburstReadsMatchTable2) {
  // Paper Table 2: 37 / 54 / 201 ms for 100 B / 10 K / 100 K reads on a
  // 10 M-byte long field. We require our measurements within 15%.
  StorageSystem sys;
  auto mgr = CreateStarburstManager(&sys);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      BuildObject(&sys, mgr.get(), *id, 10 * kMb, 100 * 1024).ok());
  const double paper[] = {37, 54, 201};
  const uint64_t sizes[] = {100, 10000, 100000};
  for (int k = 0; k < 3; ++k) {
    Rng rng(sizes[k]);
    std::string buf;
    double total = 0;
    const int reads = 500;
    for (int i = 0; i < reads; ++i) {
      uint64_t n = rng.Uniform(sizes[k] / 2, sizes[k] * 3 / 2);
      const uint64_t off = rng.Uniform(0, 10 * kMb - n);
      const IoStats before = sys.stats();
      ASSERT_TRUE(mgr->Read(*id, off, n, &buf).ok());
      total += (sys.stats() - before).ms;
    }
    const double measured = total / reads;
    EXPECT_NEAR(measured, paper[k], paper[k] * 0.15)
        << "mean op size " << sizes[k];
  }
}

TEST(CostAnchors, StarburstFullCopyUpdateMatchesTable3) {
  // Paper Table 3: 22.3 s per insert/delete on the 10 M-byte object,
  // independent of operation size. Within 10% in kFullCopy mode.
  StorageSystem sys;
  StarburstOptions opt;
  opt.copy_mode = UpdateCopyMode::kFullCopy;
  auto mgr = std::make_unique<StarburstManager>(&sys, opt);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      BuildObject(&sys, mgr.get(), *id, 10 * kMb, 100 * 1024).ok());
  Rng rng(5);
  std::string data(10000, 'x');
  double total = 0;
  const int ops = 6;
  for (int i = 0; i < ops; ++i) {
    const uint64_t off = rng.Uniform(0, 10 * kMb - 1);
    const IoStats before = sys.stats();
    ASSERT_TRUE(mgr->Insert(*id, off, data).ok());
    total += (sys.stats() - before).ms;
    ASSERT_TRUE(mgr->Delete(*id, off, data.size()).ok());
  }
  const double seconds = total / ops / 1000.0;
  EXPECT_NEAR(seconds, 22.3, 2.3);
}

TEST(CostAnchors, EsmExactFitBuildMatchesFigure5) {
  // Paper Figure 5: building 10 MB with 4K appends into 1-page leaves
  // costs ~170 s. Our model books one leaf write plus one shadowed index
  // write per append: 2560 * 74 ms = 189 s. Accept 155-200 s.
  StorageSystem sys;
  auto mgr = CreateEsmManager(&sys, 1);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  auto r = BuildObject(&sys, mgr.get(), *id, 10 * kMb, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->Seconds(), 155.0);
  EXPECT_LT(r->Seconds(), 200.0);
}

TEST(CostAnchors, SequentialScanApproachesTransferRate) {
  // Paper 4.3: with 1 KB/ms the best possible 10 MB scan is ~10 s;
  // Starburst/EOS large-chunk scans should be within 15% of it.
  for (int engine = 0; engine < 2; ++engine) {
    StorageSystem sys;
    auto mgr = engine == 0 ? CreateStarburstManager(&sys)
                           : CreateEosManager(&sys, 4);
    auto id = mgr->Create();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(
        BuildObject(&sys, mgr.get(), *id, 10 * kMb, 512 * 1024).ok());
    auto scan = SequentialScan(&sys, mgr.get(), *id, 512 * 1024);
    ASSERT_TRUE(scan.ok());
    EXPECT_LT(scan->Seconds(), 11.5);
    EXPECT_GT(scan->Seconds(), 10.0);
  }
}

TEST(CostAnchors, EsmOnePageLeafScanIsSeekBound) {
  // Every 1-page leaf is a separate segment: 2560 seeks at 37 ms each.
  StorageSystem sys;
  auto mgr = CreateEsmManager(&sys, 1);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(BuildObject(&sys, mgr.get(), *id, 10 * kMb, 65536).ok());
  auto scan = SequentialScan(&sys, mgr.get(), *id, 65536);
  ASSERT_TRUE(scan.ok());
  EXPECT_NEAR(scan->Seconds(), 2560 * 0.037, 3.0);
}

TEST(CostAnchors, ThreeStepReadCostOnLargeSegment) {
  // Paper 4.1 + 3.2: a 100K read from one large segment costs 3 calls
  // (boundary pages through the pool, middle direct): 3 seeks + ~26 pages
  // = about 203 ms.
  StorageSystem sys;
  auto mgr = CreateStarburstManager(&sys);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(BuildObject(&sys, mgr.get(), *id, 4 * kMb, 4 * kMb).ok());
  std::string buf;
  sys.ResetStats();
  ASSERT_TRUE(mgr->Read(*id, 123456, 100000, &buf).ok());
  EXPECT_EQ(sys.stats().read_calls, 3u);
  EXPECT_NEAR(sys.stats().ms, 33 * 3 + 26 * 4, 12.0);
}

TEST(CostAnchors, BufferedReadIsSingleCall) {
  // A <=4-page range is read into the pool with one I/O call: 33+4n ms.
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(BuildObject(&sys, mgr.get(), *id, kMb, kMb).ok());
  // Write back build-time dirty pages (root, buddy directories) so the
  // measurement sees only the read itself.
  ASSERT_TRUE(sys.FlushAll().ok());
  std::string buf;
  sys.ResetStats();
  ASSERT_TRUE(mgr->Read(*id, 8192, 3 * 4096, &buf).ok());
  EXPECT_EQ(sys.stats().read_calls, 1u);
  EXPECT_EQ(sys.stats().write_calls, 0u);
  EXPECT_DOUBLE_EQ(sys.stats().ms, 33 + 12);
}

TEST(CostAnchors, StarburstEqualsEosWithoutLengthChanges) {
  // Paper 4.6: "when no length-changing updates are applied on the large
  // object, Starburst and EOS perform exactly the same" - builds, scans
  // and random reads must produce identical modeled costs.
  StorageSystem sb_sys, eos_sys;
  auto sb = CreateStarburstManager(&sb_sys);
  auto eos = CreateEosManager(&eos_sys, 64);
  auto sb_id = sb->Create();
  auto eos_id = eos->Create();
  ASSERT_TRUE(sb_id.ok());
  ASSERT_TRUE(eos_id.ok());
  for (int i = 0; i < 40; ++i) {
    std::string chunk(50000, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(sb->Append(*sb_id, chunk).ok());
    ASSERT_TRUE(eos->Append(*eos_id, chunk).ok());
  }
  Rng rng(9);
  std::string buf;
  sb_sys.ResetStats();
  eos_sys.ResetStats();
  for (int i = 0; i < 100; ++i) {
    const uint64_t off = rng.Uniform(0, 2000000 - 10000);
    ASSERT_TRUE(sb->Read(*sb_id, off, 10000, &buf).ok());
    ASSERT_TRUE(eos->Read(*eos_id, off, 10000, &buf).ok());
  }
  EXPECT_NEAR(sb_sys.stats().ms, eos_sys.stats().ms,
              sb_sys.stats().ms * 0.02);
}

TEST(CostAnchors, AppendsAreIndexFreeForLevelOneTrees) {
  // Paper 4.2: Starburst/EOS builds have no index pages to write; a
  // steady-state append costs exactly one data write call.
  StorageSystem sys;
  auto mgr = CreateEosManager(&sys, 4);
  auto id = mgr->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Append(*id, std::string(512 * 1024, 'x')).ok());
  sys.ResetStats();
  ASSERT_TRUE(mgr->Append(*id, std::string(4096, 'y')).ok());
  EXPECT_EQ(sys.stats().write_calls, 1u) << sys.stats().ToString();
  EXPECT_EQ(sys.stats().read_calls, 0u);
}

}  // namespace
}  // namespace lob
