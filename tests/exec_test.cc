// Tests for the parallel experiment engine: ThreadPool (ordering,
// exception propagation, degenerate worker counts) and ParallelRunner
// (deterministic result/text ordering, timing capture).

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/parallel_runner.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"

namespace lob {
namespace {

TEST(ThreadPoolTest, DefaultWorkersIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultWorkers(), 1u);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnSubmittingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  const std::thread::id main_id = std::this_thread::get_id();
  auto future = pool.Submit([main_id] {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    return 42;
  });
  // With zero workers the task has already run by the time Submit returns.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SingleWorkerExecutesInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;  // only the worker thread touches it
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ManyWorkersCompleteEveryTask) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.workers(), 8u);
  std::atomic<int> done{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([i, &done] {
      done.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit([]() -> int {
    throw std::runtime_error("job failed");
  });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, PendingTasksRunBeforeDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
    // Destructor must drain the queue, not drop it.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, DrainSubmitDuringShutdownStillRuns) {
  // The shutdown contract's legal side: a task body may submit follow-up
  // work even while the destructor is joining. The submitting worker
  // cannot be joined mid-task and workers only exit once the queue is
  // empty, so the drain-submit must run — silently dropping it was the
  // bug this pins down.
  std::atomic<int> chain{0};
  {
    ThreadPool pool(1);
    pool.Submit([&pool, &chain] {
      // Give the destructor a head start so stop_ is (very likely)
      // already set when the inner Submit happens; correctness must not
      // depend on winning this race either way.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      chain.fetch_add(1);
      pool.Submit([&pool, &chain] {
        chain.fetch_add(1);
        pool.Submit([&chain] { chain.fetch_add(1); });
      });
    });
    // Destructor begins shutdown while the first task body is running.
  }
  EXPECT_EQ(chain.load(), 3);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndSubmitBeforeItWorks) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 11; });
  EXPECT_EQ(f.get(), 11);
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  // Destructor will call Shutdown() a third time; still fine.
}

TEST(JobOutputTest, PrintfAppendsFormattedText) {
  JobOutput out;
  out.Printf("a=%d ", 1);
  out.Printf("b=%s\n", "two");
  EXPECT_EQ(out.text(), "a=1 b=two\n");
  out.SetModeledMs(12.5);
  EXPECT_DOUBLE_EQ(out.modeled_ms(), 12.5);
}

TEST(ParallelRunnerTest, ResultsAndTextsComeBackInSubmissionOrder) {
  for (unsigned workers : {0u, 1u, 4u}) {
    ThreadPool pool(workers);
    ParallelRunner runner(&pool);
    const size_t n = 24;
    Mapped<size_t> mapped = runner.Map<size_t>(
        n, [](size_t i, JobOutput* out) {
          // Stagger finish times so out-of-order completion is likely.
          std::this_thread::sleep_for(
              std::chrono::microseconds((13 * (i % 7)) % 50));
          out->Printf("job %zu", i);
          out->SetModeledMs(static_cast<double>(i));
          return i * 10;
        });
    ASSERT_EQ(mapped.values.size(), n);
    ASSERT_EQ(mapped.texts.size(), n);
    ASSERT_EQ(mapped.stats.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(mapped.values[i], i * 10) << "workers=" << workers;
      EXPECT_EQ(mapped.texts[i], "job " + std::to_string(i));
      EXPECT_DOUBLE_EQ(mapped.stats[i].modeled_ms,
                       static_cast<double>(i));
      EXPECT_GE(mapped.stats[i].wall_ms, 0.0);
    }
  }
}

TEST(ParallelRunnerTest, JobExceptionRethrownAtItsIndex) {
  ThreadPool pool(4);
  ParallelRunner runner(&pool);
  EXPECT_THROW(
      runner.Map<int>(16,
                      [](size_t i, JobOutput*) -> int {
                        if (i == 5) throw std::runtime_error("cell 5");
                        return static_cast<int>(i);
                      }),
      std::runtime_error);
}

}  // namespace
}  // namespace lob
