#!/usr/bin/env bash
# Determinism gate for the parallel experiment engine: the fan-out must
# produce byte-identical stdout for any worker count. Enforced here for
# two converted benches — a mix-figure bench in machine-readable CSV mode
# and the fig5 build-time table — by diffing --jobs=1 against --jobs=4.
# Also checks --window flag validation.
# Usage: bench_determinism_test.sh <fig9_binary> <fig5_binary>
set -euo pipefail

FIG9="$1"
FIG5="$2"

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# 1. Mix-figure CSV output: --jobs=4 vs --jobs=1 must be byte-identical.
"$FIG9" --quick --csv --jobs=1 > "$tmpdir/fig9_j1.csv"
"$FIG9" --quick --csv --jobs=4 > "$tmpdir/fig9_j4.csv"
cmp "$tmpdir/fig9_j1.csv" "$tmpdir/fig9_j4.csv" \
  || fail "fig9 --csv output differs between --jobs=1 and --jobs=4"

# 2. Same check with the --obs attribution ledger interleaved.
"$FIG9" --quick --obs --jobs=1 > "$tmpdir/fig9_obs_j1.txt"
"$FIG9" --quick --obs --jobs=4 > "$tmpdir/fig9_obs_j4.txt"
cmp "$tmpdir/fig9_obs_j1.txt" "$tmpdir/fig9_obs_j4.txt" \
  || fail "fig9 --obs output differs between --jobs=1 and --jobs=4"

# 3. fig5 table output: --jobs=4 and inline --jobs=0 vs --jobs=1.
"$FIG5" --quick --jobs=1 > "$tmpdir/fig5_j1.txt"
"$FIG5" --quick --jobs=4 > "$tmpdir/fig5_j4.txt"
"$FIG5" --quick --jobs=0 > "$tmpdir/fig5_j0.txt"
cmp "$tmpdir/fig5_j1.txt" "$tmpdir/fig5_j4.txt" \
  || fail "fig5 output differs between --jobs=1 and --jobs=4"
cmp "$tmpdir/fig5_j1.txt" "$tmpdir/fig5_j0.txt" \
  || fail "fig5 output differs between --jobs=1 and --jobs=0 (inline)"

# 4. --bench-json emits a profile with one cell per grid configuration.
"$FIG5" --quick --jobs=4 --bench-json="$tmpdir/BENCH_fig5.json" > /dev/null
grep -q '"bench": "fig5_build_time"' "$tmpdir/BENCH_fig5.json" \
  || fail "BENCH_fig5.json missing bench name"
grep -q '"wall_ms"' "$tmpdir/BENCH_fig5.json" \
  || fail "BENCH_fig5.json missing per-cell wall_ms"
grep -q '"modeled_ms"' "$tmpdir/BENCH_fig5.json" \
  || fail "BENCH_fig5.json missing per-cell modeled_ms"

# 5. Schema v2: the modeled payload of BENCH_*.json — cell configs,
# modeled_ms, and the embedded per-cell metrics_snapshot percentile
# tables — must be byte-identical for any --jobs. (Wall-clock fields
# differ run to run, so the comparison strips them.)
"$FIG9" --quick --csv --jobs=1 --bench-json="$tmpdir/BENCH_fig9_j1.json" \
  > /dev/null
"$FIG9" --quick --csv --jobs=4 --bench-json="$tmpdir/BENCH_fig9_j4.json" \
  > /dev/null
python3 - "$tmpdir/BENCH_fig9_j1.json" "$tmpdir/BENCH_fig9_j4.json" <<'EOF'
import json, sys

a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["schema_version"] == 2, a.get("schema_version")
assert b["schema_version"] == 2, b.get("schema_version")

def modeled_cells(profile):
    return [
        {
            "config": c["config"],
            "modeled_ms": c["modeled_ms"],
            "metrics_snapshot": c.get("metrics_snapshot"),
        }
        for c in profile["cells"]
    ]

ca, cb = modeled_cells(a), modeled_cells(b)
assert ca == cb, "modeled cell payloads differ between --jobs=1 and --jobs=4"
snaps = [c["metrics_snapshot"] for c in ca if c["metrics_snapshot"]]
assert snaps, "no cell carries a metrics_snapshot"
ops = snaps[0]["ops"]
assert ops, "snapshot has no op percentile table"
row = next(iter(ops.values()))
for key in ("p50_ms", "p90_ms", "p99_ms", "max_ms", "mean_ms"):
    assert key in row, f"snapshot op row missing {key}: {sorted(row)}"
EOF

# 6. --window validation: out-of-range values must be rejected.
if "$FIG9" --quick --ops=100 --window=0 > /dev/null 2>&1; then
  fail "--window=0 was accepted"
fi
if "$FIG9" --quick --ops=100 --window=101 > /dev/null 2>&1; then
  fail "--window=101 (> ops) was accepted"
fi
"$FIG9" --quick --ops=100 --window=50 --csv --jobs=2 > /dev/null \
  || fail "valid --window=50 rejected"

echo "PASS: parallel bench output is byte-deterministic"
