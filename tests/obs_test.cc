// Tests for the observability layer: histogram bucketing, the per-operation
// attribution ledger, and — the load-bearing property — the conservation
// invariant: the sum of per-operation attributed IoStats equals the SimDisk
// global IoStats across a mixed workload, for all three engines.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/factory.h"
#include "core/storage_system.h"
#include "obs/obs_registry.h"
#include "obs/op_scope.h"

namespace lob {
namespace {

std::string Pattern(uint64_t seed, size_t n) {
  std::string out(n, '\0');
  Rng rng(seed);
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(0, 25));
  return out;
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketIndexIsLogTwo) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  // Everything at or above 2^32 lands in the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(1ull << 32), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i)
        << "bucket " << i;
  }
}

TEST(HistogramTest, BucketBoundaryValuesLandInTheRightBucket) {
  // Every bucket boundary: 2^i goes to bucket i+1 (its lower bound),
  // 2^i - 1 stays in bucket i. Plus the extremes 0, 1, UINT64_MAX.
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "2^" << (i - 1);
    if (lo > 1) {
      EXPECT_EQ(Histogram::BucketIndex(lo - 1), i - 1)
          << "2^" << (i - 1) << " - 1";
    }
  }
  // At and above the top bucket's lower bound everything is clamped.
  const uint64_t top = Histogram::BucketLowerBound(Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(top - 1), Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::BucketIndex(top), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(HistogramTest, SummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  for (uint64_t v : {5u, 0u, 1000u, 3u}) h.Add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 1008u);
  EXPECT_DOUBLE_EQ(h.Mean(), 252.0);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(0)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(1000)), 1u);
}

TEST(HistogramTest, SumIsExactBeyondDoublePrecision) {
  // Regression: sum_ was a double, so adding 1 after 2^53 dropped the 1
  // (2^53 + 1 is not representable). The integer accumulator is exact.
  Histogram h;
  h.Add(uint64_t{1} << 53);
  h.Add(1);
  EXPECT_EQ(h.sum(), (uint64_t{1} << 53) + 1);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram one;
  one.Add(37);
  // Single sample: every quantile is that sample.
  EXPECT_DOUBLE_EQ(one.Quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 37.0);
  EXPECT_DOUBLE_EQ(one.Quantile(0.99), 37.0);
  EXPECT_DOUBLE_EQ(one.Quantile(1.0), 37.0);

  // All samples in one bucket: results interpolate inside the bucket but
  // never escape the observed [min, max] range.
  Histogram same;
  for (int i = 0; i < 100; ++i) same.Add(33);  // bucket [32, 64)
  EXPECT_DOUBLE_EQ(same.Quantile(0.5), 33.0);
  EXPECT_DOUBLE_EQ(same.Quantile(0.99), 33.0);

  // Zero-valued samples sit in the dedicated bucket 0.
  Histogram zeros;
  for (int i = 0; i < 10; ++i) zeros.Add(0);
  EXPECT_DOUBLE_EQ(zeros.Quantile(0.9), 0.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndOrdered) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Add(v);
  const double p50 = h.Quantile(0.5);
  const double p90 = h.Quantile(0.9);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_GE(p50, static_cast<double>(h.min()));
  // Log2 buckets are coarse, but the uniform 1..1000 stream should put
  // p50 somewhere in the right octave.
  EXPECT_GT(p50, 256.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(HistogramTest, SubBucketsSharpenQuantiles) {
  Histogram coarse;
  Histogram fine;
  fine.EnableSubBuckets();
  EXPECT_TRUE(fine.sub_buckets_enabled());
  // 1000 samples at 520 and one outlier at 1020 — same log2 bucket
  // [512, 1024). The coarse histogram has to interpolate across the whole
  // bucket; the fine one pins the mass near 520.
  for (int i = 0; i < 1000; ++i) {
    coarse.Add(520);
    fine.Add(520);
  }
  coarse.Add(1020);
  fine.Add(1020);
  const double coarse_p50 = coarse.Quantile(0.5);
  const double fine_p50 = fine.Quantile(0.5);
  EXPECT_NEAR(fine_p50, 520.0, 32.0);  // within one sub-bucket width
  EXPECT_LE(std::abs(fine_p50 - 520.0), std::abs(coarse_p50 - 520.0));
}

TEST(HistogramTest, SubBucketEnableIsBeforeFirstSampleOnly) {
  Histogram h;
  h.Add(7);
  h.EnableSubBuckets();  // too late: ignored, stays coarse
  EXPECT_FALSE(h.sub_buckets_enabled());
}

TEST(HistogramTest, MergeFromCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  for (uint64_t v : {1u, 10u, 100u}) a.Add(v);
  for (uint64_t v : {5u, 5000u}) b.Add(v);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 1u + 10u + 100u + 5u + 5000u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 5000u);
  // Merging from an empty histogram changes nothing.
  Histogram empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.min(), 1u);
}

TEST(HistogramTest, MergeFromDegradesMixedResolutionToCoarse) {
  Histogram fine;
  fine.EnableSubBuckets();
  fine.Add(100);
  Histogram coarse;
  coarse.Add(200);
  fine.MergeFrom(coarse);  // coarse side has samples: sub table is invalid
  EXPECT_FALSE(fine.sub_buckets_enabled());
  EXPECT_EQ(fine.count(), 2u);
  // An empty destination adopts the source's sub-bucket table.
  Histogram fresh;
  Histogram fine2;
  fine2.EnableSubBuckets();
  fine2.Add(100);
  fresh.MergeFrom(fine2);
  EXPECT_TRUE(fresh.sub_buckets_enabled());
  EXPECT_EQ(fresh.count(), 1u);
}

// ---------------------------------------------------------------------------
// Registry basics

TEST(ObsRegistryTest, CountersAndHistosCreatedOnFirstUse) {
  ObsRegistry obs;
  obs.Counter("x") += 3;
  obs.Counter("x") += 2;
  obs.Histo("h").Add(16);
  EXPECT_EQ(obs.counters().at("x"), 5u);
  EXPECT_EQ(obs.histograms().at("h").count(), 1u);
  obs.Reset();
  EXPECT_TRUE(obs.counters().empty());
  EXPECT_TRUE(obs.histograms().empty());
  EXPECT_TRUE(obs.ops().empty());
}

TEST(ObsRegistryTest, MergeFromAccumulatesAcrossRegistries) {
  ObsRegistry a;
  ObsRegistry b;
  IoStats call;
  call.read_calls = 1;
  call.pages_read = 2;
  call.ms = 41.0;
  a.AttributeCall("eos.read", call);
  a.RecordOpEnd("eos.read", call);
  a.Counter("pool.fix_hits") = 10;
  b.AttributeCall("eos.read", call);
  b.AttributeCall("esm.insert", call);
  b.RecordOpEnd("eos.read", call);
  b.RecordOpEnd("esm.insert", call);
  b.Counter("pool.fix_hits") = 5;
  a.MergeFrom(b);
  EXPECT_EQ(a.ops().at("eos.read").io.read_calls, 2u);
  EXPECT_EQ(a.ops().at("eos.read").count, 2u);
  EXPECT_EQ(a.ops().at("esm.insert").io.read_calls, 1u);
  EXPECT_EQ(a.counters().at("pool.fix_hits"), 15u);
  EXPECT_EQ(a.histograms().at("eos.read.ms").count(), 2u);
  EXPECT_EQ(a.histograms().at("esm.insert.ms").count(), 1u);
}

TEST(ObsRegistryTest, JsonExportCarriesQuantiles) {
  ObsRegistry obs;
  IoStats call;
  call.read_calls = 1;
  call.ms = 41.0;
  obs.RecordOpEnd("eos.read", call);
  const std::string json = obs.ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p90\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(ObsRegistryTest, AttributionLedgerAccumulatesPerLabel) {
  ObsRegistry obs;
  IoStats call;
  call.read_calls = 1;
  call.pages_read = 4;
  call.ms = 49.0;
  obs.AttributeCall("a.read", call);
  obs.AttributeCall("a.read", call);
  obs.AttributeCall("b.write", call);
  EXPECT_EQ(obs.ops().at("a.read").io.read_calls, 2u);
  EXPECT_EQ(obs.ops().at("a.read").io.pages_read, 8u);
  EXPECT_EQ(obs.ops().at("b.write").io.read_calls, 1u);
  IoStats total = obs.AttributedTotal();
  EXPECT_EQ(total.read_calls, 3u);
  EXPECT_EQ(total.pages_read, 12u);
  EXPECT_TRUE(obs.ConservationHolds(total));
  IoStats off = total;
  off.read_calls += 1;
  EXPECT_FALSE(obs.ConservationHolds(off));
}

TEST(ObsRegistryTest, RecordOpEndFeedsHistograms) {
  ObsRegistry obs;
  IoStats delta;
  delta.read_calls = 2;
  delta.write_calls = 1;
  delta.pages_read = 5;
  delta.pages_written = 3;
  delta.ms = 131.0;
  obs.RecordOpEnd("esm.append", delta);
  EXPECT_EQ(obs.ops().at("esm.append").count, 1u);
  EXPECT_EQ(obs.histograms().at("esm.append.ms").count(), 1u);
  EXPECT_EQ(obs.histograms().at("esm.append.seeks").max(), 3u);
  EXPECT_EQ(obs.histograms().at("esm.append.pages").max(), 8u);
}

TEST(ObsRegistryTest, JsonAndCsvExportShape) {
  ObsRegistry obs;
  IoStats call;
  call.write_calls = 1;
  call.pages_written = 2;
  call.ms = 41.0;
  obs.AttributeCall("eos.append", call);
  obs.RecordOpEnd("eos.append", call);
  obs.Counter("objects_created") = 7;
  const std::string json = obs.ToJson();
  EXPECT_NE(json.find("\"ops\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"eos.append\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"objects_created\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  const std::string csv = obs.ToCsv();
  EXPECT_EQ(csv.find("op,count,read_calls,write_calls,pages_read,"
                     "pages_written,seeks,pages,ms"),
            0u)
      << csv;
  EXPECT_NE(csv.find("eos.append,1,0,1,0,2,"), std::string::npos) << csv;
}

// ---------------------------------------------------------------------------
// OpScope wiring on a bare disk

TEST(OpScopeTest, NestedScopesComposeChildLabels) {
  // A scope opened while another is active charges its I/O to the
  // composed `parent.child` label, so nested helper ops (e.g. an insert
  // that internally appends) stay distinguishable from the same helper
  // invoked at top level instead of silently absorbing its parent's name.
  StorageConfig cfg;
  ObsRegistry obs;
  SimDisk disk(cfg);
  disk.set_obs(&obs);
  const AreaId area = disk.CreateArea();
  std::string page(cfg.page_size, 'x');
  {
    OpScope outer(&disk, "outer");
    ASSERT_TRUE(disk.Write(area, 0, 1, page.data()).ok());
    {
      OpScope inner(&disk, "inner");
      EXPECT_STREQ(inner.label(), "outer.inner");
      ASSERT_TRUE(disk.Write(area, 1, 1, page.data()).ok());
    }
    ASSERT_TRUE(disk.Write(area, 2, 1, page.data()).ok());
  }
  EXPECT_EQ(obs.ops().at("outer").io.write_calls, 2u);
  EXPECT_EQ(obs.ops().at("outer.inner").io.write_calls, 1u);
  EXPECT_EQ(obs.ops().count("inner"), 0u);
  // The outer op's histograms cover the whole op, nested I/O included.
  EXPECT_EQ(obs.histograms().at("outer.seeks").max(), 3u);
  EXPECT_EQ(obs.histograms().at("outer.inner.seeks").max(), 1u);
  EXPECT_TRUE(obs.ConservationHolds(disk.stats()));
}

TEST(OpScopeTest, DeepNestingComposesEveryLevel) {
  StorageConfig cfg;
  ObsRegistry obs;
  SimDisk disk(cfg);
  disk.set_obs(&obs);
  const AreaId area = disk.CreateArea();
  std::string page(cfg.page_size, 'x');
  {
    OpScope a(&disk, "a");
    OpScope b(&disk, "b");
    OpScope c(&disk, "c");
    EXPECT_STREQ(c.label(), "a.b.c");
    ASSERT_TRUE(disk.Write(area, 0, 1, page.data()).ok());
  }
  EXPECT_EQ(obs.ops().at("a.b.c").io.write_calls, 1u);
  // Sibling scopes after the nested one re-compose from the parent, not
  // from the departed sibling.
  {
    OpScope a(&disk, "a");
    { OpScope b(&disk, "b"); }
    OpScope d(&disk, "d");
    EXPECT_STREQ(d.label(), "a.d");
  }
  EXPECT_TRUE(obs.ConservationHolds(disk.stats()));
}

TEST(OpScopeTest, IoOutsideAnyScopeIsUnattributed) {
  StorageConfig cfg;
  ObsRegistry obs;
  SimDisk disk(cfg);
  disk.set_obs(&obs);
  const AreaId area = disk.CreateArea();
  std::string page(cfg.page_size, 'x');
  ASSERT_TRUE(disk.Write(area, 0, 1, page.data()).ok());
  ASSERT_EQ(obs.ops().count(ObsRegistry::kUnattributed), 1u);
  EXPECT_EQ(obs.ops().at(ObsRegistry::kUnattributed).io.write_calls, 1u);
  EXPECT_TRUE(obs.ConservationHolds(disk.stats()));
}

TEST(OpScopeTest, ResetStatsResetsAttributionLedgerToo) {
  StorageConfig cfg;
  ObsRegistry obs;
  SimDisk disk(cfg);
  disk.set_obs(&obs);
  const AreaId area = disk.CreateArea();
  std::string page(cfg.page_size, 'x');
  ASSERT_TRUE(disk.Write(area, 0, 1, page.data()).ok());
  ASSERT_FALSE(obs.ops().empty());
  disk.ResetStats();
  EXPECT_TRUE(obs.ops().empty());
  EXPECT_TRUE(obs.ConservationHolds(disk.stats()));
  // Conservation keeps holding for I/O issued after the reset.
  ASSERT_TRUE(disk.Write(area, 1, 1, page.data()).ok());
  EXPECT_TRUE(obs.ConservationHolds(disk.stats()));
}

// ---------------------------------------------------------------------------
// Conservation across a mixed workload, all three engines

class ObsConservationTest : public ::testing::TestWithParam<int> {
 protected:
  ObsConservationTest() {
    switch (GetParam()) {
      case 0:
        mgr_ = CreateEsmManager(&sys_, 4);
        break;
      case 1:
        mgr_ = CreateStarburstManager(&sys_);
        break;
      default:
        mgr_ = CreateEosManager(&sys_, 4);
        break;
    }
  }

  void ExpectConservation(const char* where) {
    const ObsRegistry* obs = sys_.obs();
    const IoStats& global = sys_.stats();
    EXPECT_TRUE(obs->ConservationHolds(global)) << where;
    const IoStats total = obs->AttributedTotal();
    EXPECT_EQ(total.read_calls, global.read_calls) << where;
    EXPECT_EQ(total.write_calls, global.write_calls) << where;
    EXPECT_EQ(total.pages_read, global.pages_read) << where;
    EXPECT_EQ(total.pages_written, global.pages_written) << where;
    EXPECT_NEAR(total.ms, global.ms, 1e-6 * (1.0 + global.ms)) << where;
  }

  StorageSystem sys_;
  std::unique_ptr<LargeObjectManager> mgr_;
};

TEST_P(ObsConservationTest, MixedWorkloadSumsToGlobal) {
  auto id = mgr_->Create();
  ASSERT_TRUE(id.ok());
  ExpectConservation("after create");

  // Build ~600K in mid-sized appends.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        mgr_->Append(*id, Pattern(static_cast<uint64_t>(i), 50000)).ok());
  }
  ExpectConservation("after appends");

  // Mixed reads, inserts, deletes, replaces at varied offsets/sizes.
  Rng rng(42);
  std::string buf;
  for (int i = 0; i < 30; ++i) {
    auto size = mgr_->Size(*id);
    ASSERT_TRUE(size.ok());
    const uint64_t sz = *size;
    const uint64_t off = sz == 0 ? 0 : rng.Next() % sz;
    switch (i % 4) {
      case 0:
        ASSERT_TRUE(
            mgr_->Read(*id, off, std::min<uint64_t>(9000, sz - off), &buf)
                .ok());
        break;
      case 1:
        ASSERT_TRUE(mgr_->Insert(*id, off, Pattern(rng.Next(), 3000)).ok());
        break;
      case 2:
        ASSERT_TRUE(
            mgr_->Delete(*id, off, std::min<uint64_t>(2000, sz - off)).ok());
        break;
      default: {
        const uint64_t len = std::min<uint64_t>(1500, sz - off);
        ASSERT_TRUE(mgr_->Replace(*id, off, Pattern(rng.Next(), len)).ok());
        break;
      }
    }
  }
  ExpectConservation("after update mix");

  // Every metered byte should be attributed to an engine-tagged label;
  // nothing in this workload runs outside an OpScope.
  const ObsRegistry* obs = sys_.obs();
  EXPECT_EQ(obs->ops().count(ObsRegistry::kUnattributed), 0u);
  EXPECT_GE(obs->ops().size(), 5u) << "expected per-op labels for the mix";
  for (const auto& [label, rec] : obs->ops()) {
    EXPECT_GT(rec.count, 0u) << label;
  }

  ASSERT_TRUE(sys_.FlushAll().ok());
  // FlushAll runs outside any scope: charged to (unattributed), and the
  // invariant still holds.
  ExpectConservation("after FlushAll");

  ASSERT_TRUE(mgr_->Destroy(*id).ok());
  ExpectConservation("after destroy");
}

TEST_P(ObsConservationTest, UnmeteredSectionPreservesConservation) {
  auto id = mgr_->Create();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr_->Append(*id, Pattern(9, 200000)).ok());
  ASSERT_TRUE(sys_.FlushAll().ok());
  ExpectConservation("before section");
  const IoStats before = sys_.stats();
  {
    StorageSystem::UnmeteredSection unmetered(&sys_);
    std::string buf;
    ASSERT_TRUE(mgr_->Read(*id, 0, 200000, &buf).ok());
  }
  const IoStats after = sys_.stats();
  EXPECT_EQ(after.Seeks(), before.Seeks()) << "section must not be metered";
  ExpectConservation("after section");
}

std::string EngineName3(const ::testing::TestParamInfo<int>& param_info) {
  return param_info.param == 0   ? "Esm"
         : param_info.param == 1 ? "Starburst"
                                 : "Eos";
}

INSTANTIATE_TEST_SUITE_P(Engines, ObsConservationTest,
                         ::testing::Values(0, 1, 2), EngineName3);

}  // namespace
}  // namespace lob
