// lobtool: command line shell around a lobstore database image.
//
//   lobtool <db.img> init
//   lobtool <db.img> create <name> <esm|starburst|eos> [param]
//   lobtool <db.img> put <name> <file>            append file contents
//   lobtool <db.img> cat <name> [offset [bytes]]  object bytes to stdout
//   lobtool <db.img> insert <name> <offset> <file>
//   lobtool <db.img> delete <name> <offset> <bytes>
//   lobtool <db.img> ls
//   lobtool <db.img> rm <name>
//   lobtool <db.img> stat <name>
//   lobtool <db.img> info
//   lobtool <db.img> fsck [param]
//       cross-engine consistency check: per-object structural invariants,
//       extent cross-referencing against the buddy allocator (leaks,
//       double allocations, dangling references) and byte accounting.
//       `param` is the structural parameter for ESM/EOS objects (leaf
//       pages / threshold; default 4). Exit 1 when issues are found.
//   lobtool <db.img> stats [name] [table|json|csv]
//       per-operation I/O attribution ledger for this invocation. With a
//       name, the object is first scanned sequentially through its engine
//       so the ledger shows attributed read costs; image-load I/O shows up
//       under "(unattributed)". json/csv select the export format
//       (--json is accepted as an alias for json). The table and json
//       formats include the schema-v2 metrics snapshot: per-op
//       p50/p90/p99/max modeled ms, pool hit/miss/eviction rates, buddy
//       free-extent stats and fault counters.
//   lobtool trace <op-script> [esm|starburst|eos] [param] [--json=FILE]
//       replays the op script (workload/trace.h text format: one
//       "<kind> <offset> <size> <seed>" per line) against a fresh
//       in-memory system of the chosen engine (default eos) with span
//       tracing attached, then prints the aggregated span tree with
//       per-phase modeled-ms rollups. --json additionally writes the raw
//       Chrome trace-event / Perfetto JSON stream.
//   lobtool flame <op-script> [esm|starburst|eos] [param] [--out=FILE]
//       replays the op script like `trace`, rolls the per-op attribution
//       ledger up into the parent.child label tree and emits folded-stack
//       flamegraph text (one "path;to;label <modeled-us>" line per node;
//       feed to speedscope or inferno-flamegraph). Runs the span<->ledger
//       conservation check per tree node (root total == ledger total,
//       children never exceed their parent, every node's exclusive cost
//       matches the trace's disk.io attribution); check results go to
//       stderr and a violation exits 1.
//   lobtool bench-diff <baseline.json> <new.json> [--gate=FILE]
//       [--format=table|csv|json] [--neutral-band=FRACTION]
//       per-metric drift report between two BENCH_*.json profiles (or any
//       JSON documents): both sides are flattened to dotted metric paths
//       and every numeric leaf becomes one row with abs/rel delta and a
//       regression/improvement/neutral classification. --gate loads
//       thresholds (see scripts/perf_gates.json) and turns the report
//       into a CI gate: exit 0 clean, 1 on gate violations, 2 on bad
//       input. A run diffed against itself reports zero drift.
//   lobtool locks
//       dumps the lock-rank table (common/lock_order.h): enumerator,
//       numeric rank, dotted id and what each lock protects. Ranks must
//       be acquired in strictly increasing order; the table is the
//       documented deadlock-freedom contract (docs/ARCHITECTURE.md).
//
// Every mutating command reopens the image, applies the change, and saves
// it back - a deliberately simple single-shot model matching the
// simulated (volatile) disk underneath.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/fsck.h"
#include "common/json.h"
#include "common/lock_order.h"
#include "core/database.h"
#include "core/factory.h"
#include "core/metrics_snapshot.h"
#include "obs/bench_diff.h"
#include "obs/flame.h"
#include "trace/trace_session.h"
#include "trace/tracing.h"
#include "workload/trace.h"

using namespace lob;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "lobtool: %s\n", s.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: lobtool <db.img> "
               "init|create|put|cat|insert|delete|ls|rm|stat|info|stats"
               "|fsck ...\n"
               "       lobtool trace <op-script> [esm|starburst|eos] "
               "[param] [--json=FILE]\n"
               "       lobtool flame <op-script> [esm|starburst|eos] "
               "[param] [--out=FILE]\n"
               "       lobtool bench-diff <baseline.json> <new.json> "
               "[--gate=FILE] [--format=table|csv|json]\n"
               "       lobtool locks\n");
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    out.append(buf, n);
  }
  return out;
}

StatusOr<Engine> ParseEngine(const std::string& name) {
  if (name == "esm") return Engine::kEsm;
  if (name == "starburst") return Engine::kStarburst;
  if (name == "eos") return Engine::kEos;
  return Status::InvalidArgument("unknown engine (esm|starburst|eos)");
}

/// `lobtool trace <op-script> [engine] [param] [--json=FILE]`: replay with
/// span tracing attached and print the per-phase modeled-ms rollup.
int RunTrace(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string script = argv[2];
  std::string engine_name = "eos";
  uint32_t param = 0;
  std::string json_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "esm" || arg == "starburst" || arg == "eos") {
      engine_name = arg;
    } else {
      param = static_cast<uint32_t>(std::strtoul(arg.c_str(), nullptr, 10));
    }
  }

  auto trace = LoadTrace(script);
  if (!trace.ok()) return Fail(trace.status());

  StorageSystem sys;
  TraceSession session;
  sys.disk()->set_trace(&session);
  std::unique_ptr<LargeObjectManager> mgr;
  if (engine_name == "esm") {
    mgr = CreateEsmManager(&sys, param == 0 ? 4 : param);
  } else if (engine_name == "starburst") {
    mgr = CreateStarburstManager(&sys);
  } else {
    mgr = CreateEosManager(&sys, param == 0 ? 4 : param);
  }
  auto id = mgr->Create();
  if (!id.ok()) return Fail(id.status());
  auto io = ApplyTrace(&sys, mgr.get(), *id, *trace);
  if (!io.ok()) return Fail(io.status());
  sys.disk()->set_trace(nullptr);

  std::printf("replayed %zu ops (%s) from %s\n", trace->ops.size(),
              engine_name.c_str(), script.c_str());
  std::printf("modeled I/O: %s\n\n", io->ToString().c_str());
#if !LOB_TRACING
  std::printf("note: span tracing compiled out (LOB_TRACING=OFF); the\n"
              "summary below is empty. Rebuild with -DLOB_TRACING=ON.\n");
#endif
  TraceSession::PrintSummary(session.Summarize(), stdout);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::NotFound("cannot write " + json_path));
    }
    const std::string json = TraceSession::ChromeTraceJson(
        {{engine_name + " replay of " + script, &session}});
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s (open in https://ui.perfetto.dev)\n",
                json_path.c_str());
  }
  return 0;
}

/// `lobtool flame <op-script> [engine] [param] [--out=FILE]`: replay the
/// script, roll the attribution ledger up into the label tree and emit
/// folded-stack flamegraph text. Conservation check results go to stderr.
int RunFlame(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string script = argv[2];
  std::string engine_name = "eos";
  uint32_t param = 0;
  std::string out_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "esm" || arg == "starburst" || arg == "eos") {
      engine_name = arg;
    } else {
      param = static_cast<uint32_t>(std::strtoul(arg.c_str(), nullptr, 10));
    }
  }

  auto trace = LoadTrace(script);
  if (!trace.ok()) return Fail(trace.status());

  StorageSystem sys;
  TraceSession session;
  sys.disk()->set_trace(&session);
  std::unique_ptr<LargeObjectManager> mgr;
  if (engine_name == "esm") {
    mgr = CreateEsmManager(&sys, param == 0 ? 4 : param);
  } else if (engine_name == "starburst") {
    mgr = CreateStarburstManager(&sys);
  } else {
    mgr = CreateEosManager(&sys, param == 0 ? 4 : param);
  }
  auto id = mgr->Create();
  if (!id.ok()) return Fail(id.status());
  auto io = ApplyTrace(&sys, mgr.get(), *id, *trace);
  if (!io.ok()) return Fail(io.status());
  sys.disk()->set_trace(nullptr);

  const FlameGraph graph = FlameGraph::Build(*sys.obs());
  const std::string folded = graph.ToFolded();
  if (out_path.empty()) {
    std::fputs(folded.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Fail(Status::NotFound("cannot write " + out_path));
    std::fwrite(folded.data(), 1, folded.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (feed to speedscope or inferno)\n",
                 out_path.c_str());
  }

  // Conservation: structure always; span comparison only when the build
  // records spans at all.
  bool ok = true;
  const FlameGraph::Check structure =
      graph.CheckStructure(sys.obs()->AttributedTotal().ms);
  for (const auto& p : structure.problems) {
    std::fprintf(stderr, "flame structure: %s\n", p.c_str());
  }
  ok = ok && structure.ok;
#if LOB_TRACING
  const FlameGraph::Check spans = graph.CheckConservation(session.IoMsByOp());
  for (const auto& p : spans.problems) {
    std::fprintf(stderr, "flame span<->ledger: %s\n", p.c_str());
  }
  ok = ok && spans.ok;
  std::fprintf(stderr, "flame conservation: %s (root total %.3f ms)\n",
               ok ? "OK" : "VIOLATED", graph.TotalMs());
#else
  std::fprintf(stderr,
               "flame conservation: structure %s (root total %.3f ms); "
               "span check skipped (LOB_TRACING=OFF)\n",
               ok ? "OK" : "VIOLATED", graph.TotalMs());
#endif
  return ok ? 0 : 1;
}

/// `lobtool bench-diff <baseline.json> <new.json> [--gate=FILE]
/// [--format=table|csv|json] [--neutral-band=F]`.
int RunBenchDiff(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string base_path = argv[2];
  const std::string new_path = argv[3];
  std::string gate_path;
  std::string format = "table";
  double neutral_band = 0.01;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--gate=", 0) == 0) {
      gate_path = arg.substr(7);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg.rfind("--neutral-band=", 0) == 0) {
      neutral_band = std::strtod(arg.c_str() + 15, nullptr);
    } else {
      std::fprintf(stderr, "lobtool bench-diff: unknown argument %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (format != "table" && format != "csv" && format != "json") {
    std::fprintf(stderr, "lobtool bench-diff: bad --format=%s\n",
                 format.c_str());
    return 2;
  }

  // Bad input (unreadable or malformed JSON, bad gate spec) exits 2 so
  // callers can tell "regression" (1) from "couldn't compare" (2).
  auto base = JsonValue::ParseFile(base_path);
  if (!base.ok()) return Fail(base.status()), 2;
  auto fresh = JsonValue::ParseFile(new_path);
  if (!fresh.ok()) return Fail(fresh.status()), 2;
  JsonValue gates;
  bool have_gates = false;
  if (!gate_path.empty()) {
    auto parsed = JsonValue::ParseFile(gate_path);
    if (!parsed.ok()) return Fail(parsed.status()), 2;
    gates = std::move(*parsed);
    have_gates = true;
  }

  auto diff = BenchDiff::Compare(*base, *fresh,
                                 have_gates ? &gates : nullptr, neutral_band);
  if (!diff.ok()) return Fail(diff.status()), 2;
  if (format == "csv") {
    std::fputs(diff->ToCsv().c_str(), stdout);
  } else if (format == "json") {
    std::fputs(diff->ToJson().c_str(), stdout);
  } else {
    std::fputs(diff->ToTable().c_str(), stdout);
  }
  if (diff->HasViolations()) {
    for (const auto& v : diff->violations()) {
      std::fprintf(stderr, "bench-diff: VIOLATION: %s\n", v.c_str());
    }
    return 1;
  }
  return 0;
}

/// `lobtool locks`: dump the lock-rank table (common/lock_order.h). The
/// table is a documented contract — docs/ARCHITECTURE.md "Lock-rank
/// table" — and this is its runtime source of truth.
int RunLocks() {
  std::printf("%-14s %5s  %-18s %s\n", "enumerator", "rank", "id",
              "protects");
  for (const LockRankRow& row : kLockRankRows) {
    std::printf("%-14s %5d  %-18s %s\n", row.name, row.rank, row.id,
                row.description);
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "locks") return RunLocks();
  if (argc < 3) return Usage();
  const std::string image = argv[1];
  const std::string cmd = argv[2];

  if (image == "trace") return RunTrace(argc, argv);
  if (image == "flame") return RunFlame(argc, argv);
  if (image == "bench-diff") return RunBenchDiff(argc, argv);

  if (cmd == "init") {
    auto db = Database::Create();
    if (!db.ok()) return Fail(db.status());
    if (Status s = (*db)->Save(image); !s.ok()) return Fail(s);
    std::printf("initialized %s\n", image.c_str());
    return 0;
  }

  auto db = Database::Open(image);
  if (!db.ok()) return Fail(db.status());

  if (cmd == "create") {
    if (argc < 5) return Usage();
    auto engine = ParseEngine(argv[4]);
    if (!engine.ok()) return Fail(engine.status());
    const uint32_t param =
        argc > 5 ? static_cast<uint32_t>(std::strtoul(argv[5], nullptr, 10))
                 : 4;
    auto id = (*db)->CreateObject(argv[3], *engine, param);
    if (!id.ok()) return Fail(id.status());
    if (Status s = (*db)->Save(image); !s.ok()) return Fail(s);
    std::printf("created %s (%s, id %u)\n", argv[3], argv[4], *id);
    return 0;
  }

  if (cmd == "put" || cmd == "insert") {
    if (argc < (cmd == "put" ? 5 : 6)) return Usage();
    auto id = (*db)->Lookup(argv[3]);
    if (!id.ok()) return Fail(id.status());
    auto mgr = (*db)->ManagerForObject(*id);
    if (!mgr.ok()) return Fail(mgr.status());
    auto data = ReadFile(argv[cmd == "put" ? 4 : 5]);
    if (!data.ok()) return Fail(data.status());
    Status s;
    if (cmd == "put") {
      s = (*mgr)->Append(*id, *data);
    } else {
      const uint64_t off = std::strtoull(argv[4], nullptr, 10);
      s = (*mgr)->Insert(*id, off, *data);
    }
    if (!s.ok()) return Fail(s);
    if (Status saved = (*db)->Save(image); !saved.ok()) return Fail(saved);
    std::printf("%s %zu bytes into %s\n",
                cmd == "put" ? "appended" : "inserted", data->size(),
                argv[3]);
    return 0;
  }

  if (cmd == "cat") {
    if (argc < 4) return Usage();
    auto id = (*db)->Lookup(argv[3]);
    if (!id.ok()) return Fail(id.status());
    auto mgr = (*db)->ManagerForObject(*id);
    if (!mgr.ok()) return Fail(mgr.status());
    auto size = (*mgr)->Size(*id);
    if (!size.ok()) return Fail(size.status());
    const uint64_t off =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;
    const uint64_t n = argc > 5 ? std::strtoull(argv[5], nullptr, 10)
                                : (*size > off ? *size - off : 0);
    std::string out;
    if (Status s = (*mgr)->Read(*id, off, n, &out); !s.ok()) return Fail(s);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }

  if (cmd == "delete") {
    if (argc < 6) return Usage();
    auto id = (*db)->Lookup(argv[3]);
    if (!id.ok()) return Fail(id.status());
    auto mgr = (*db)->ManagerForObject(*id);
    if (!mgr.ok()) return Fail(mgr.status());
    const uint64_t off = std::strtoull(argv[4], nullptr, 10);
    const uint64_t n = std::strtoull(argv[5], nullptr, 10);
    if (Status s = (*mgr)->Delete(*id, off, n); !s.ok()) return Fail(s);
    if (Status saved = (*db)->Save(image); !saved.ok()) return Fail(saved);
    std::printf("deleted %llu bytes at %llu from %s\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(off), argv[3]);
    return 0;
  }

  if (cmd == "ls") {
    auto list = (*db)->catalog()->List();
    if (!list.ok()) return Fail(list.status());
    for (const auto& [name, id] : *list) {
      auto engine = (*db)->ObjectEngine(id);
      auto mgr = (*db)->ManagerForObject(id);
      uint64_t size = 0;
      if (mgr.ok()) {
        auto s = (*mgr)->Size(id);
        if (s.ok()) size = *s;
      }
      std::printf("%-32s %-10s %12llu bytes\n", name.c_str(),
                  engine.ok() ? EngineName(*engine) : "?",
                  static_cast<unsigned long long>(size));
    }
    return 0;
  }

  if (cmd == "rm") {
    if (argc < 4) return Usage();
    if (Status s = (*db)->DropObject(argv[3]); !s.ok()) return Fail(s);
    if (Status saved = (*db)->Save(image); !saved.ok()) return Fail(saved);
    std::printf("removed %s\n", argv[3]);
    return 0;
  }

  if (cmd == "stat") {
    if (argc < 4) return Usage();
    auto id = (*db)->Lookup(argv[3]);
    if (!id.ok()) return Fail(id.status());
    auto mgr = (*db)->ManagerForObject(*id);
    if (!mgr.ok()) return Fail(mgr.status());
    auto stats = (*mgr)->GetStorageStats(*id);
    if (!stats.ok()) return Fail(stats.status());
    auto engine = (*db)->ObjectEngine(*id);
    std::printf("name:        %s\n", argv[3]);
    std::printf("engine:      %s\n",
                engine.ok() ? EngineName(*engine) : "?");
    std::printf("size:        %llu bytes\n",
                static_cast<unsigned long long>(stats->object_bytes));
    std::printf("segments:    %u\n", stats->segments);
    std::printf("leaf pages:  %llu\n",
                static_cast<unsigned long long>(stats->leaf_pages));
    std::printf("index pages: %llu\n",
                static_cast<unsigned long long>(stats->index_pages));
    std::printf("tree height: %u\n", stats->tree_height);
    std::printf("utilization: %.1f%%\n",
                stats->Utilization((*db)->sys()->config().page_size) * 100);
    return 0;
  }

  if (cmd == "stats") {
    StorageSystem* sys = (*db)->sys();
    std::string fmt = "table";
    std::string name;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "table" || arg == "json" || arg == "csv") {
        fmt = arg;
      } else if (arg == "--json") {
        fmt = "json";
      } else {
        name = arg;
      }
    }
    if (!name.empty()) {
      // Scan the named object through its engine so the ledger contains
      // attributed per-op rows, not just the unattributed image load.
      auto id = (*db)->Lookup(name);
      if (!id.ok()) return Fail(id.status());
      auto mgr = (*db)->ManagerForObject(*id);
      if (!mgr.ok()) return Fail(mgr.status());
      auto size = (*mgr)->Size(*id);
      if (!size.ok()) return Fail(size.status());
      std::string chunk;
      const uint64_t step = 256 * 1024;
      for (uint64_t off = 0; off < *size; off += step) {
        const uint64_t n = std::min<uint64_t>(step, *size - off);
        if (Status s = (*mgr)->Read(*id, off, n, &chunk); !s.ok()) {
          return Fail(s);
        }
      }
    }
    // Surface the pool counters before any export so every format (and
    // the snapshot below) sees pool.fix_hits / pool.fix_misses /
    // pool.evictions.
    sys->pool()->PublishCounters(sys->obs());
    const ObsRegistry* obs = sys->obs();
    if (fmt == "json") {
      // Two views of the same registry: "registry" is the raw ledger +
      // histogram export (stable since schema v1), "snapshot" the v2
      // per-cell MetricsSnapshot with op percentiles, pool rates, buddy
      // free-extent stats and fault counters.
      std::printf("{\n\"registry\": ");
      std::fputs(obs->ToJson().c_str(), stdout);
      std::printf(",\n\"snapshot\": ");
      std::fputs(MetricsSnapshot::Collect(sys).ToJson("").c_str(), stdout);
      std::printf("\n}\n");
      return 0;
    }
    if (fmt == "csv") {
      std::fputs(obs->ToCsv().c_str(), stdout);
      return 0;
    }
    std::printf("%-24s %10s %10s %10s %10s %12s %9s %9s %9s\n", "op", "count",
                "reads", "writes", "pages", "ms", "p50", "p90", "p99");
    for (const auto& [label, rec] : obs->ops()) {
      std::printf("%-24s %10llu %10llu %10llu %10llu %12.1f", label.c_str(),
                  static_cast<unsigned long long>(rec.count),
                  static_cast<unsigned long long>(rec.io.read_calls),
                  static_cast<unsigned long long>(rec.io.write_calls),
                  static_cast<unsigned long long>(rec.io.PagesTransferred()),
                  rec.io.ms);
      const auto& hists = obs->histograms();
      auto h = hists.find(label + ".ms");
      if (h != hists.end() && h->second.count() > 0) {
        std::printf(" %9.1f %9.1f %9.1f\n", h->second.Quantile(0.5),
                    h->second.Quantile(0.9), h->second.Quantile(0.99));
      } else {
        std::printf(" %9s %9s %9s\n", "-", "-", "-");
      }
    }
    std::printf("global: %s\n", sys->stats().ToString().c_str());
    std::printf("conservation: %s\n",
                obs->ConservationHolds(sys->stats()) ? "OK" : "VIOLATED");
    return 0;
  }

  if (cmd == "fsck") {
    const uint32_t param =
        argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
                 : 4;
    auto report = FsckDatabase(db->get(), param);
    if (!report.ok()) return Fail(report.status());
    std::fputs(report->ToString().c_str(), stdout);
    return report->clean() ? 0 : 1;
  }

  if (cmd == "info") {
    StorageSystem* sys = (*db)->sys();
    auto count = (*db)->catalog()->Size();
    std::printf("objects:          %llu\n",
                static_cast<unsigned long long>(count.ok() ? *count : 0));
    std::printf("meta area pages:  %llu allocated (%u buddy spaces)\n",
                static_cast<unsigned long long>(
                    sys->meta_area()->allocated_pages()),
                sys->meta_area()->num_spaces());
    std::printf("leaf area pages:  %llu allocated (%u buddy spaces)\n",
                static_cast<unsigned long long>(
                    sys->leaf_area()->allocated_pages()),
                sys->leaf_area()->num_spaces());
    std::printf("allocated bytes:  %llu\n",
                static_cast<unsigned long long>(sys->AllocatedBytes()));
    return 0;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
