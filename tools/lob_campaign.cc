// lob_campaign: fault-injection campaign CLI.
//
//   lob_campaign <trace-file|--demo> [--jobs=N] [--stride=K] [--progress]
//                [--format=csv|json] [--out=FILE]
//
// Replays the trace against all three engines, once per fault point k
// (fail the (k+1)-th attributed I/O call), runs fsck over each outcome and
// emits the (engine, op, k) classification matrix. The matrix is
// byte-identical for any --jobs value. --progress reports completed-cell
// counts on stderr as workers finish (off by default: completion order is
// wall-clock-dependent, so it stays away from byte-compare runs). Exit
// status: 0 when every cell is clean-pass or clean-fail, 1 when any leak
// or corrupt cell exists, 2 on usage/setup errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/campaign.h"
#include "workload/trace.h"

using namespace lob;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lob_campaign <trace-file|--demo> [--jobs=N] "
               "[--stride=K] [--progress] [--format=csv|json] "
               "[--out=FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string source;
  CampaignOptions options;
  std::string format = "csv";
  std::string out_path;
  bool demo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs =
          static_cast<uint32_t>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--stride=", 0) == 0) {
      options.stride =
          static_cast<uint32_t>(std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      source = arg;
    }
  }
  if (!demo && source.empty()) return Usage();
  if (format != "csv" && format != "json") return Usage();

  Trace trace;
  if (demo) {
    trace = DemoCampaignTrace();
  } else {
    auto loaded = LoadTrace(source);
    if (!loaded.ok()) {
      std::fprintf(stderr, "lob_campaign: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    trace = std::move(*loaded);
  }

  auto result = RunCampaign(trace, options);
  if (!result.ok()) {
    std::fprintf(stderr, "lob_campaign: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }

  const std::string rendered =
      format == "json" ? result->ToJson() : result->ToCsv();
  if (out_path.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "lob_campaign: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
  }

  std::fprintf(stderr,
               "campaign: %zu cells | clean-pass %llu, clean-fail %llu, "
               "leak %llu, corrupt %llu\n",
               result->cells.size(),
               static_cast<unsigned long long>(
                   result->CountOutcome(CellOutcome::kCleanPass)),
               static_cast<unsigned long long>(
                   result->CountOutcome(CellOutcome::kCleanFail)),
               static_cast<unsigned long long>(
                   result->CountOutcome(CellOutcome::kLeak)),
               static_cast<unsigned long long>(
                   result->CountOutcome(CellOutcome::kCorrupt)));
  return (result->HasLeaks() || result->HasCorruption()) ? 1 : 0;
}
