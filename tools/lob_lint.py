#!/usr/bin/env python3
"""lob_lint: project-contract static analysis for the lobstore tree.

The repo carries three determinism- and conservation-critical contracts that
generic tooling cannot check:

  * byte-identical bench output for any --jobs (the parallel experiment
    engine),
  * span<->ledger I/O conservation (per-operation attribution), and
  * zero-cost-off tracing (LOB_TRACING=OFF must compile every hook out).

This linter rejects, at review time, the code patterns that historically
break them. Rules (stable IDs, see RULES below):

  LOB001 wallclock        No wall-clock / ambient-entropy / pointer-identity
                          output outside the src/exec bench-profile layer.
                          std::chrono, time(), clock(), rand(), srand(),
                          std::random_device and %p / streamed void* all leak
                          host state into output that must be a pure function
                          of the modeled clock and the seeded lob::Rng.
  LOB002 unordered-iter   No iteration over std::unordered_{map,set} -- hash
                          order is implementation- and run-dependent, so any
                          walk that reaches CSV/JSON/timeline/trace output
                          (or any I/O sequence) is a nondeterminism leak.
                          Exporter-scoped files (src/trace, src/obs, tools,
                          src/common/csv.h) may not even declare unordered
                          containers.
  LOB003 trace-span       LOB_TRACE_SPAN arguments must be side-effect-free:
                          the macro expands to nothing under -DLOB_TRACING=OFF,
                          so any mutation or non-nullary call in its arguments
                          would make behavior differ between builds (the
                          zero-cost-off contract is proven byte-for-byte by
                          scripts/check.sh pass 3).
  LOB004 attribution      Direct SimDisk Read/Write call sites in src/ are
                          restricted to an allowlist of mediator files whose
                          callers hold a labeled OpScope (buffer_pool.cc) or
                          are explicitly outside the metered path
                          (disk_image.cc persistence). Any new direct call
                          site would bypass per-operation attribution and
                          break the conservation invariant
                          sum(attributed) == global.
  LOB005 header-hygiene   Headers carry an include guard (#ifndef/#define or
                          #pragma once) and never `using namespace` at file
                          scope.
  LOB006 ignore-status    LOB_IGNORE_STATUS(...) must carry a justification
                          comment on the same or the preceding line; Status
                          is [[nodiscard]] precisely so silent drops are
                          impossible.
  LOB007 extent-guard     Engine/core code must not call DatabaseArea
                          Allocate directly: a raw allocation followed by a
                          fallible step leaks the extent on the error path
                          (the exact bug class the fault-injection campaign
                          hunts). Acquire extents through ScopedExtent --
                          rollback on error, Commit() after the durable
                          install. Allocator internals (src/buddy) and code
                          outside the engines are exempt.
  LOB008 raw-sync         No raw std synchronization primitives (std::mutex
                          family, lock_guard/unique_lock/scoped_lock,
                          condition_variable, call_once) outside src/common/.
                          All locking goes through lob::Mutex / MutexLock /
                          CondVar (common/lock_order.h) so every acquisition
                          carries a LockRank, is order-checked at run time,
                          and is visible to Clang -Wthread-safety.
  LOB009 lock-rank        Every lob::Mutex / SharedMutex declaration names
                          its rank (LockRank::k...) from the table in
                          common/lock_order.h, and mutable members of a
                          mutex-holding class carry LOB_GUARDED_BY /
                          LOB_PT_GUARDED_BY (const/static members, the
                          mutex itself and CondVars are exempt; genuinely
                          unguarded state needs a LOBLINT(lock-rank)
                          suppression stating the confinement argument).

Suppressions
------------
  // LOBLINT(rule): reason        -- same line or the immediately preceding
                                     comment-only line; reason is mandatory.
  // LOBLINT-FILE(rule): reason   -- anywhere in the first 40 lines; whole
                                     file.

Fixtures under tests/lint_fixtures/ self-test every rule; they may pin a
pretend path with a first-line `// LOBLINT-FIXTURE-PATH: src/...` marker so
path-scoped rules fire deterministically.

Usage:
  tools/lob_lint.py [--root DIR]            # lint the production tree
  tools/lob_lint.py --self-test [--root DIR]
  tools/lob_lint.py --list-rules
  tools/lob_lint.py FILE...                 # lint specific files
"""

import argparse
import os
import re
import sys

RULES = {
    "wallclock": "LOB001",
    "unordered-iter": "LOB002",
    "trace-span": "LOB003",
    "attribution": "LOB004",
    "header-hygiene": "LOB005",
    "ignore-status": "LOB006",
    "extent-guard": "LOB007",
    "raw-sync": "LOB008",
    "lock-rank": "LOB009",
}

# ----------------------------------------------------------------- scoping

# Files that legitimately consult the host clock: the bench-profile layer
# measures the simulator's own wall-clock cost by design.
WALLCLOCK_ALLOW_PREFIXES = ("src/exec/",)

# The determinism rule guards library + bench + tool output paths. Tests and
# examples may do what they like with the host environment.
WALLCLOCK_SCOPE_PREFIXES = ("src/", "bench/", "tools/")

UNORDERED_SCOPE_PREFIXES = ("src/", "bench/", "tools/")

# Exporter scope: code whose whole job is producing ordered text output.
EXPORTER_PREFIXES = ("src/trace/", "src/obs/", "tools/")
EXPORTER_FILES = (
    "src/common/csv.h",
    "src/common/json.h",
    "src/common/json.cc",
    "src/core/metrics_snapshot.h",
    "src/core/metrics_snapshot.cc",
)

# Direct SimDisk Read/Write mediators. buffer_pool.cc is charged through the
# OpScope its manager callers hold; disk_image.cc is the persistence path
# (save/load walks outside the measured workload); sim_disk.cc is the device.
ATTRIBUTION_ALLOW = (
    "src/iomodel/sim_disk.cc",
    "src/iomodel/sim_disk.h",
    "src/iomodel/disk_image.cc",
    "src/buffer/buffer_pool.cc",
)
ATTRIBUTION_SCOPE_PREFIXES = ("src/",)

# Extent-guard scope: the engines and the core layer, where every allocated
# extent must survive an error on any later step. The buddy allocator itself
# (including ScopedExtent) is the mediator and exempt.
EXTENT_GUARD_SCOPE_PREFIXES = (
    "src/esm/", "src/starburst/", "src/eos/", "src/lobtree/", "src/core/")

# Raw-sync scope: the library, bench and tool trees must lock through the
# ranked lob::Mutex wrappers; src/common/ is where the wrappers live.
RAW_SYNC_SCOPE_PREFIXES = ("src/", "bench/", "tools/")
RAW_SYNC_ALLOW_PREFIXES = ("src/common/",)

LOCK_RANK_SCOPE_PREFIXES = ("src/", "bench/", "tools/")

SCAN_DIRS = ("src", "bench", "tools", "examples", "tests")
SCAN_EXTS = (".h", ".cc", ".cpp")
# thread_safety_fixtures are deliberately-broken clang compile-fail inputs.
EXCLUDE_PARTS = ("lint_fixtures", "thread_safety_fixtures")

FIXTURE_PATH_RE = re.compile(r"LOBLINT-FIXTURE-PATH:\s*(\S+)")
SUPPRESS_RE = re.compile(r"LOBLINT\(([\w-]+)\)\s*:\s*(\S.*)")
SUPPRESS_FILE_RE = re.compile(r"LOBLINT-FILE\(([\w-]+)\)\s*:\s*(\S.*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: %s[%s]: %s" % (
            self.path, self.line, RULES[self.rule], self.rule, self.message)


# ------------------------------------------------------- comment stripping

def split_lines(text):
    """Returns (code_lines, comment_lines, string_lines).

    code_lines[i]  : line i with comments and string/char literals blanked.
    comment_lines[i]: concatenated comment text on line i.
    string_lines[i]: concatenated string-literal contents on line i.
    Block comments and (crudely) raw strings are tracked across lines.
    """
    code, comments, strings = [], [], []
    in_block = False
    in_raw = False
    for line in text.split("\n"):
        code_chars = []
        comment_chars = []
        string_chars = []
        i = 0
        n = len(line)
        in_str = False
        in_chr = False
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_raw:
                if c == ")" and line[i:].startswith(')"'):
                    in_raw = False
                    code_chars.append("  ")
                    i += 2
                    continue
                string_chars.append(c)
                code_chars.append(" ")
                i += 1
                continue
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    code_chars.append("  ")
                    i += 2
                    continue
                comment_chars.append(c)
                code_chars.append(" ")
                i += 1
                continue
            if in_str:
                if c == "\\":
                    string_chars.append(line[i:i + 2])
                    code_chars.append("  ")
                    i += 2
                    continue
                if c == '"':
                    in_str = False
                    code_chars.append('"')
                    i += 1
                    continue
                string_chars.append(c)
                code_chars.append(" ")
                i += 1
                continue
            if in_chr:
                if c == "\\":
                    code_chars.append("  ")
                    i += 2
                    continue
                if c == "'":
                    in_chr = False
                    code_chars.append("'")
                    i += 1
                    continue
                code_chars.append(" ")
                i += 1
                continue
            if c == "/" and nxt == "/":
                comment_chars.append(line[i + 2:])
                code_chars.append(" " * (n - i))
                break
            if c == "/" and nxt == "*":
                in_block = True
                code_chars.append("  ")
                i += 2
                continue
            if c == "R" and line[i:i + 3] == 'R"(':
                in_raw = True
                code_chars.append("   ")
                i += 3
                continue
            if c == '"':
                in_str = True
                code_chars.append('"')
                i += 1
                continue
            if c == "'":
                # Digit separators ("1'000") are not char literals.
                prev = line[i - 1] if i > 0 else ""
                if prev.isdigit() and nxt.isdigit():
                    code_chars.append(c)
                    i += 1
                    continue
                in_chr = True
                code_chars.append("'")
                i += 1
                continue
            code_chars.append(c)
            i += 1
        # Unterminated ordinary string/char at EOL: clamp (not legal C++).
        in_str = False
        in_chr = False
        code.append("".join(code_chars))
        comments.append("".join(comment_chars))
        strings.append("".join(string_chars))
    return code, comments, strings


# ------------------------------------------------------------- rule checks

WALLCLOCK_TOKENS = [
    (re.compile(r"\bstd\s*::\s*chrono\b"), "std::chrono"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "high_resolution_clock"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0|&)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\brandom_device\b"), "random_device"),
    (re.compile(r"<<\s*(?:static_cast<\s*(?:const\s+)?void\s*\*\s*>|"
                r"\(\s*(?:const\s+)?void\s*\*\s*\))"),
     "streamed pointer value"),
]
POINTER_FMT_RE = re.compile(r"%p\b")


def check_wallclock(path, code, strings, findings):
    in_scope = path.startswith(WALLCLOCK_SCOPE_PREFIXES)
    if not in_scope or path.startswith(WALLCLOCK_ALLOW_PREFIXES):
        return
    for idx, line in enumerate(code, start=1):
        for rx, what in WALLCLOCK_TOKENS:
            if rx.search(line):
                findings.append(Finding(
                    path, idx, "wallclock",
                    "%s leaks host state into a modeled-clock path; use the "
                    "simulated clock (SimDisk::stats().ms) or lob::Rng, or "
                    "move the code into src/exec/" % what))
    for idx, lit in enumerate(strings, start=1):
        if POINTER_FMT_RE.search(lit):
            findings.append(Finding(
                path, idx, "wallclock",
                "%p formats a pointer value; addresses differ run to run "
                "(ASLR) so output is nondeterministic"))


UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
# `std::unordered_map<K, V> name` / `... name_;` / `... name = ...`
UNORDERED_NAMED_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(\w+)\s*(?:;|=|\{)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*&?\s*([\w.>\-]+)\s*\)")


def unordered_names(text_by_line):
    names = set()
    joined = "\n".join(text_by_line)
    for m in UNORDERED_NAMED_RE.finditer(joined):
        names.add(m.group(1))
    return names


def check_unordered(path, code, findings, extra_decl_names=()):
    if not path.startswith(UNORDERED_SCOPE_PREFIXES):
        return
    exporter = path.startswith(EXPORTER_PREFIXES) or path in EXPORTER_FILES
    if exporter:
        for idx, line in enumerate(code, start=1):
            if UNORDERED_DECL_RE.search(line):
                findings.append(Finding(
                    path, idx, "unordered-iter",
                    "unordered container declared in exporter-scoped code; "
                    "exporters must use std::map / std::set / sorted vectors "
                    "so output order is deterministic"))
    names = unordered_names(code)
    names.update(extra_decl_names)
    if not names:
        return
    for idx, line in enumerate(code, start=1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        target = m.group(1).split("->")[-1].split(".")[-1]
        if target in names:
            findings.append(Finding(
                path, idx, "unordered-iter",
                "range-for over unordered container '%s'; hash order is "
                "run-dependent -- iterate a sorted copy or switch to an "
                "ordered container" % target))


TRACE_SPAN_RE = re.compile(r"\bLOB_TRACE_SPAN\s*\(")
MUTATION_RE = re.compile(
    r"(\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])|\+=|-=|\*=|/=|%=|&=|\|=|\^=|"
    r"<<=|>>=)")
CALL_WITH_ARGS_RE = re.compile(r"\w\s*\(\s*[^)\s]")


def extract_balanced(text, start):
    """Returns the argument text of the call whose '(' is at text[start]."""
    depth = 0
    i = start
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
        i += 1
    return None


def check_trace_span(path, code, findings):
    joined = "\n".join(code)
    line_starts = [0]
    for line in code:
        line_starts.append(line_starts[-1] + len(line) + 1)

    def line_of(pos):
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    for m in TRACE_SPAN_RE.finditer(joined):
        lineno = line_of(m.start())
        # Skip the macro's own definition.
        line_text = code[lineno - 1].lstrip()
        if line_text.startswith("#"):
            continue
        args = extract_balanced(joined, m.end() - 1)
        if args is None:
            findings.append(Finding(path, lineno, "trace-span",
                                    "unbalanced LOB_TRACE_SPAN call"))
            continue
        if MUTATION_RE.search(args):
            findings.append(Finding(
                path, lineno, "trace-span",
                "LOB_TRACE_SPAN argument mutates state; the macro compiles "
                "to nothing under -DLOB_TRACING=OFF, so side effects here "
                "change behavior between builds"))
            continue
        if CALL_WITH_ARGS_RE.search(args):
            findings.append(Finding(
                path, lineno, "trace-span",
                "LOB_TRACE_SPAN argument calls a function with arguments; "
                "only nullary accessors (e.g. pool->disk()) are allowed so "
                "the OFF build provably elides all work"))


DISK_IO_RE = re.compile(
    r"\bdisk\w*\s*(?:\(\s*\))?\s*(?:\.|->)\s*(?:Read|Write)\s*\(")


def check_attribution(path, code, findings):
    if not path.startswith(ATTRIBUTION_SCOPE_PREFIXES):
        return
    if path in ATTRIBUTION_ALLOW:
        return
    for idx, line in enumerate(code, start=1):
        if DISK_IO_RE.search(line):
            findings.append(Finding(
                path, idx, "attribution",
                "direct SimDisk Read/Write outside the mediator allowlist; "
                "route I/O through BufferPool (charged under the caller's "
                "OpScope) so per-operation attribution stays conserved"))


GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+\w")


def check_header_hygiene(path, code, findings):
    if not path.endswith(".h"):
        return
    has_guard = False
    guard_name = None
    for idx, line in enumerate(code, start=1):
        if PRAGMA_ONCE_RE.match(line):
            has_guard = True
        m = GUARD_IFNDEF_RE.match(line)
        if m and not has_guard and guard_name is None:
            guard_name = m.group(1)
            # The matching #define must follow within a few lines.
            for follow in code[idx:idx + 3]:
                if re.match(r"^\s*#\s*define\s+%s\b" % re.escape(guard_name),
                            follow):
                    has_guard = True
                    break
        if USING_NAMESPACE_RE.match(line):
            findings.append(Finding(
                path, idx, "header-hygiene",
                "`using namespace` in a header leaks into every includer"))
    if not has_guard:
        findings.append(Finding(
            path, 1, "header-hygiene",
            "header lacks an include guard (#ifndef/#define pair or "
            "#pragma once)"))


RAW_ALLOCATE_RE = re.compile(r"(?:->|\.)\s*Allocate\s*\(")


def check_extent_guard(path, code, findings):
    if not path.startswith(EXTENT_GUARD_SCOPE_PREFIXES):
        return
    for idx, line in enumerate(code, start=1):
        if not RAW_ALLOCATE_RE.search(line):
            continue
        if "ScopedExtent" in line:
            continue  # the guarded form
        findings.append(Finding(
            path, idx, "extent-guard",
            "raw DatabaseArea Allocate in engine/core code; a fault on any "
            "later step leaks the extent -- acquire it through "
            "ScopedExtent::Allocate and Commit() after the durable install"))


IGNORE_STATUS_RE = re.compile(r"\bLOB_IGNORE_STATUS\s*\(")


def check_ignore_status(path, code, comments, findings):
    for idx, line in enumerate(code, start=1):
        if not IGNORE_STATUS_RE.search(line):
            continue
        if line.lstrip().startswith("#"):
            continue  # the macro definition itself
        here = comments[idx - 1].strip()
        above = comments[idx - 2].strip() if idx >= 2 else ""
        if not here and not above:
            findings.append(Finding(
                path, idx, "ignore-status",
                "LOB_IGNORE_STATUS without a justification comment; say why "
                "losing this error is sound (same or preceding line)"))


RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|recursive_mutex|recursive_timed_mutex|timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any|call_once|"
    r"once_flag)\b")


def check_raw_sync(path, code, findings):
    if not path.startswith(RAW_SYNC_SCOPE_PREFIXES):
        return
    if path.startswith(RAW_SYNC_ALLOW_PREFIXES):
        return
    for idx, line in enumerate(code, start=1):
        m = RAW_SYNC_RE.search(line)
        if m:
            findings.append(Finding(
                path, idx, "raw-sync",
                "raw std::%s outside src/common/; lock through lob::Mutex / "
                "MutexLock / CondVar (common/lock_order.h) so the "
                "acquisition carries a LockRank, is order-checked, and is "
                "visible to Clang -Wthread-safety" % m.group(1)))


# A lob Mutex/SharedMutex variable declaration: type, name, then an
# initializer bracket or a bare `;`. `MutexLock`, `Mutex*`, `Mutex&` and
# constructor declarations (`Mutex(` with no name) do not match.
MUTEX_DECL_RE = re.compile(r"\b(Mutex|SharedMutex)\s+(\w+)\s*[({;]")
# A data member with the project's trailing-underscore naming, terminated
# by `;`, `=` or a brace initializer.
MEMBER_RE = re.compile(r"\b([A-Za-z]\w*_)\s*(?:;|=[^=]|\{)")
MEMBER_EXEMPT_RE = re.compile(
    r"\b(const|static|constexpr|friend|using|typedef|return|"
    r"Mutex|SharedMutex|CondVar)\b")


def _line_start_depths(code):
    """depths[i] = brace depth at the start of line i+1 (code text only)."""
    depths = []
    depth = 0
    for line in code:
        depths.append(depth)
        depth += line.count("{") - line.count("}")
    return depths


def check_lock_rank(path, code, findings):
    if not path.startswith(LOCK_RANK_SCOPE_PREFIXES):
        return
    depths = _line_start_depths(code)
    ranked_decl_lines = []
    for idx, line in enumerate(code, start=1):
        m = MUTEX_DECL_RE.search(line)
        if not m:
            continue
        if "LockRank::" in line:
            ranked_decl_lines.append(idx)
        else:
            findings.append(Finding(
                path, idx, "lock-rank",
                "%s '%s' declared without a LockRank; every lock names its "
                "rank from the table in common/lock_order.h so acquisition "
                "order is checkable" % (m.group(1), m.group(2))))

    # Members of a mutex-holding scope must be guarded: shared mutable state
    # next to a lock is either protected by it (annotate LOB_GUARDED_BY) or
    # confined by some other argument (suppress with LOBLINT(lock-rank)).
    flagged = set()
    for decl_line in ranked_decl_lines:
        d = depths[decl_line - 1]
        if d < 1:
            continue  # namespace/file scope: nothing to pair it with
        lo = decl_line - 1  # 0-based index of the decl line
        while lo > 0 and depths[lo - 1] >= d:
            lo -= 1
        hi = decl_line
        while hi < len(code) and depths[hi] >= d:
            hi += 1
        for idx in range(lo + 1, hi + 1):  # 1-based line numbers
            if depths[idx - 1] != d or idx in flagged:
                continue
            line = code[idx - 1]
            if "LOB_GUARDED_BY" in line or "LOB_PT_GUARDED_BY" in line:
                continue
            if MEMBER_EXEMPT_RE.search(line):
                continue
            mm = MEMBER_RE.search(line)
            if not mm:
                continue
            if "(" in line[:mm.start(1)]:
                continue  # method signature / call, not a data member
            flagged.add(idx)
            findings.append(Finding(
                path, idx, "lock-rank",
                "member '%s' in a mutex-holding scope lacks LOB_GUARDED_BY; "
                "annotate which lock protects it (or justify confinement "
                "with a LOBLINT(lock-rank) suppression)" % mm.group(1)))


# --------------------------------------------------------------- the driver

def lint_text(path, text):
    code, comments, strings = split_lines(text)

    # Fixture path override (self-test only; harmless elsewhere).
    m = FIXTURE_PATH_RE.search(comments[0] if comments else "")
    effective = m.group(1) if m else path

    findings = []
    check_wallclock(effective, code, strings, findings)

    # When linting a .cc, fold in unordered members declared in its header so
    # `for (auto& kv : map_)` in the .cc is caught.
    extra = ()
    if path.endswith(".cc"):
        header = os.path.splitext(path)[0] + ".h"
        if os.path.isfile(header):
            with open(header, encoding="utf-8", errors="replace") as f:
                hcode, _, _ = split_lines(f.read())
            extra = unordered_names(hcode)
    check_unordered(effective, code, findings, extra_decl_names=extra)
    check_trace_span(effective, code, findings)
    check_attribution(effective, code, findings)
    check_header_hygiene(effective, code, findings)
    check_ignore_status(effective, code, comments, findings)
    check_extent_guard(effective, code, findings)
    check_raw_sync(effective, code, findings)
    check_lock_rank(effective, code, findings)

    # Apply suppressions.
    file_suppressed = set()
    for c in comments[:40]:
        for sm in SUPPRESS_FILE_RE.finditer(c):
            if sm.group(1) in RULES:
                file_suppressed.add(sm.group(1))
    line_suppressed = {}
    comment_only = set()
    for idx, c in enumerate(comments, start=1):
        for sm in SUPPRESS_RE.finditer(c):
            if sm.group(1) in RULES:
                line_suppressed.setdefault(idx, set()).add(sm.group(1))
        if c.strip() and not code[idx - 1].strip():
            comment_only.add(idx)

    kept = []
    for f in findings:
        if f.rule in file_suppressed:
            continue
        if f.rule in line_suppressed.get(f.line, set()):
            continue
        # Walk the contiguous comment-only block immediately above the
        # finding: a suppression anywhere in it covers the line below.
        above = f.line - 1
        covered = False
        while above in comment_only:
            if f.rule in line_suppressed.get(above, set()):
                covered = True
                break
            above -= 1
        if covered:
            continue
        kept.append(f)
    return kept


def lint_file(root, rel):
    full = os.path.join(root, rel)
    with open(full, encoding="utf-8", errors="replace") as f:
        text = f.read()
    old = os.getcwd()
    os.chdir(root)
    try:
        return lint_text(rel.replace(os.sep, "/"), text)
    finally:
        os.chdir(old)


def production_files(root):
    out = []
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                x for x in dirnames if x not in EXCLUDE_PARTS)
            for name in sorted(filenames):
                if name.endswith(SCAN_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    out.append(rel.replace(os.sep, "/"))
    return out


def run_self_test(root):
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print("self-test: no fixture directory at %s" % fixture_dir)
        return 1
    failures = 0
    cases = 0
    for name in sorted(os.listdir(fixture_dir)):
        full = os.path.join(fixture_dir, name)
        if not name.endswith(SCAN_EXTS) or not os.path.isfile(full):
            continue
        m = re.match(r"(bad|good)_([a-z-]+?)(?:_\d+)?\.(?:h|cc|cpp)$", name)
        if not m:
            print("self-test: unrecognized fixture name %s "
                  "(want bad_<rule>[_N].cc / good_<rule>[_N].cc)" % name)
            failures += 1
            continue
        kind, rule = m.group(1), m.group(2)
        if rule not in RULES:
            print("self-test: fixture %s names unknown rule '%s'"
                  % (name, rule))
            failures += 1
            continue
        cases += 1
        with open(full, encoding="utf-8", errors="replace") as f:
            findings = lint_text(full, f.read())
        rules_hit = {f.rule for f in findings}
        if kind == "bad":
            if rule not in rules_hit:
                print("self-test FAIL: %s did not trigger %s[%s] "
                      "(triggered: %s)"
                      % (name, RULES[rule], rule, sorted(rules_hit) or "none"))
                failures += 1
        else:
            if findings:
                print("self-test FAIL: %s expected clean, got:" % name)
                for f in findings:
                    print("  %s" % f)
                failures += 1
    if failures:
        print("self-test: %d/%d fixture case(s) failed" % (failures, cases))
        return 1
    print("self-test: %d fixture case(s) passed" % cases)
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture self-test instead of linting")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("files", nargs="*",
                    help="specific files to lint (default: whole tree)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, rid in sorted(RULES.items(), key=lambda kv: kv[1]):
            print("%s  %s" % (rid, rule))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)

    if args.self_test:
        return run_self_test(root)

    if args.files:
        rels = [os.path.relpath(os.path.abspath(f), root) for f in args.files]
    else:
        rels = production_files(root)

    all_findings = []
    for rel in rels:
        all_findings.extend(lint_file(root, rel))
    for f in all_findings:
        print(f)
    if all_findings:
        print("lob_lint: %d finding(s) in %d file(s) scanned"
              % (len(all_findings), len(rels)))
        return 1
    print("lob_lint: clean (%d files scanned)" % len(rels))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
