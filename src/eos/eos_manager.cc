#include "eos/eos_manager.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "trace/trace_span.h"
#include "common/math_util.h"

namespace lob {

EosManager::EosManager(StorageSystem* sys, const EosOptions& options)
    : sys_(sys), options_(options) {
  LOB_CHECK_GE(options_.threshold_pages, 1u);
  options_.max_segment_pages = std::min(options_.max_segment_pages,
                                        sys->leaf_area()->max_segment_pages());
  TreeConfig tc;
  tc.pool = sys_->pool();
  tc.meta_area = sys_->meta_area();
  tc.limits = options_.limits;
  tc.shadowing = sys_->config().shadowing;
  tree_ = std::make_unique<PositionalTree>(tc);
}

StatusOr<ObjectId> EosManager::Create() {
  OpScope obs_scope(sys_->disk(), "eos.create");
  auto id = tree_->CreateObject(static_cast<uint8_t>(Engine::kEos));
  if (!id.ok()) return id;
  LOB_RETURN_IF_ERROR(tree_->SetAux(*id, 0));
  return id;
}

StatusOr<uint64_t> EosManager::Size(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "eos.size");
  return tree_->Size(id);
}

Status EosManager::ReadLeaf(const PositionalTree::LeafInfo& leaf,
                            uint64_t off, uint64_t n, char* dst) {
  return sys_->pool()->ReadSegmentRange(leaf_area_id(), leaf.page, leaf.bytes,
                                        off, n, dst);
}

Status EosManager::FreePages(PageId page, uint32_t pages) {
  if (pages == 0) return Status::OK();
  LOB_RETURN_IF_ERROR(sys_->pool()->Invalidate(leaf_area_id(), page, pages));
  return sys_->leaf_area()->Free(page, pages);
}

StatusOr<ScopedExtent> EosManager::WriteNewSegment(std::string_view content,
                                                   OpContext* ctx) {
  LOB_CHECK(!content.empty());
  const uint32_t pages = PagesFor(content.size());
  LOB_CHECK_LE(pages, options_.max_segment_pages);
  auto ext = ScopedExtent::Allocate(sys_->leaf_area(), sys_->pool(), pages);
  if (!ext.ok()) return ext.status();
  (void)ctx;
  // A failed write rolls the allocation back via the guard.
  LOB_RETURN_IF_ERROR(sys_->pool()->WriteFreshSegment(
      leaf_area_id(), ext->first_page(), content.data(), content.size()));
  return ext;
}

Status EosManager::Destroy(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "eos.destroy");
  OpContext ctx(sys_->pool(), sys_->arena());
  LOB_RETURN_IF_ERROR(TrimLastSlack(id, &ctx));
  std::vector<std::pair<PageId, uint32_t>> segs;
  LOB_RETURN_IF_ERROR(tree_->VisitLeaves(id, [&](const auto& leaf) {
    segs.push_back({leaf.page, PagesFor(leaf.bytes)});
    return Status::OK();
  }));
  // Destroy the index first: if its walk fails, the object is still
  // well-formed and the destroy can be retried. The segment frees after
  // it cannot fail under I/O faults.
  LOB_RETURN_IF_ERROR(tree_->DestroyObject(id));
  for (const auto& [page, pages] : segs) {
    LOB_RETURN_IF_ERROR(FreePages(page, pages));
  }
  return ctx.Finish();
}

Status EosManager::Read(ObjectId id, uint64_t offset, uint64_t n,
                        std::string* out) {
  OpScope obs_scope(sys_->disk(), "eos.read");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset + n > *size) return Status::OutOfRange("read past object end");
  out->resize(n);
  uint64_t done = 0;
  while (done < n) {
    auto leaf = tree_->FindLeaf(id, offset + done);
    if (!leaf.ok()) return leaf.status();
    const uint64_t local = offset + done - leaf->start;
    const uint64_t take = std::min<uint64_t>(leaf->bytes - local, n - done);
    LOB_RETURN_IF_ERROR(ReadLeaf(*leaf, local, take, out->data() + done));
    done += take;
  }
  return Status::OK();
}

Status EosManager::Append(ObjectId id, std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "eos.append");
  OpContext ctx(sys_->pool(), sys_->arena());
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  const uint64_t P = page_size();
  uint64_t pos = 0;
  uint32_t last_alloc = 0;

  if (*size > 0) {
    auto aux = tree_->GetAux(id);
    if (!aux.ok()) return aux.status();
    auto last = tree_->LastLeaf(id);
    if (!last.ok()) return last.status();
    // aux == 0 means every segment is exactly sized (no growth slack).
    last_alloc = *aux != 0 ? *aux : PagesFor(last->bytes);
    LOB_CHECK_GE(static_cast<uint64_t>(last_alloc) * P, last->bytes);
    const uint64_t space = static_cast<uint64_t>(last_alloc) * P - last->bytes;
    if (space > 0) {
      // Fill the rightmost page / remaining allocation in place; the
      // segment is not shadowed for pure appends (paper 3.3).
      const uint64_t take = std::min<uint64_t>(space, data.size());
      LOB_RETURN_IF_ERROR(sys_->pool()->WriteSegmentRange(
          leaf_area_id(), last->page, last->bytes, last->bytes, take,
          data.data()));
      const PageId p0 = last->page + static_cast<PageId>(last->bytes / P);
      const PageId p1 =
          last->page + static_cast<PageId>((last->bytes + take - 1) / P);
      ctx.DeferFlush(leaf_area_id(), p0, p1 - p0 + 1);
      LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
          id, last->start, static_cast<int64_t>(take), kInvalidPage, &ctx));
      pos = take;
    }
  }

  // Starburst-pattern growth: each new segment doubles the previous
  // allocation, capped at the maximum; the first is sized by the first
  // append.
  uint64_t at = *size + pos;
  while (pos < data.size()) {
    const uint64_t rem = data.size() - pos;
    uint32_t pages;
    if (last_alloc == 0) {
      pages = static_cast<uint32_t>(
          std::min<uint64_t>(CeilDiv(rem, P), options_.max_segment_pages));
    } else {
      pages = std::min(last_alloc * 2, options_.max_segment_pages);
    }
    auto ext = ScopedExtent::Allocate(sys_->leaf_area(), sys_->pool(), pages);
    if (!ext.ok()) return ext.status();
    const uint64_t take = std::min<uint64_t>(
        static_cast<uint64_t>(pages) * P, rem);
    LOB_RETURN_IF_ERROR(sys_->pool()->WriteFreshSegment(
        leaf_area_id(), ext->first_page(), data.data() + pos, take));
    LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
        id, at, {static_cast<uint32_t>(take), ext->first_page()}, &ctx));
    ext->Commit();
    // Keep the aux word (allocated pages of the last segment) in step with
    // every inserted segment: if a later iteration fails, the object's
    // accounting still describes exactly what the tree references. The
    // root is hot, so this costs no I/O.
    LOB_RETURN_IF_ERROR(tree_->SetAux(id, pages));
    last_alloc = pages;
    at += take;
    pos += take;
  }
  LOB_RETURN_IF_ERROR(tree_->SetAux(id, last_alloc));
  return ctx.Finish();
}

Status EosManager::TrimLastSlack(ObjectId id, OpContext* ctx) {
  (void)ctx;
  // aux == 0 is the common post-update state: every segment exactly sized,
  // nothing to trim and no rightmost-path lookup needed.
  auto aux = tree_->GetAux(id);
  if (!aux.ok()) return aux.status();
  if (*aux == 0) return Status::OK();
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (*size == 0) return tree_->SetAux(id, 0);
  auto last = tree_->LastLeaf(id);
  if (!last.ok()) return last.status();
  const uint32_t needed = PagesFor(last->bytes);
  // Commit the new accounting (aux = 0: exactly sized) before releasing
  // the slack pages. In the old order a fault between the free and the
  // SetAux left aux claiming pages the allocator had already reclaimed —
  // a double-allocation waiting to happen once they were reused. The
  // frees themselves cannot fail under I/O faults.
  LOB_RETURN_IF_ERROR(tree_->SetAux(id, 0));
  if (*aux > needed) {
    LOB_RETURN_IF_ERROR(FreePages(last->page + needed, *aux - needed));
  }
  return Status::OK();
}

Status EosManager::RefreshAux(ObjectId id) {
  // Structural updates leave every segment exactly sized.
  return tree_->SetAux(id, 0);
}

Status EosManager::InsertFreshSegments(ObjectId id, uint64_t at,
                                       std::string_view data,
                                       OpContext* ctx) {
  // New bytes go into as few segments as possible (paper 4.4.2: a 100K
  // insert lands in one 25-page leaf regardless of the threshold).
  uint64_t pos = 0;
  const uint64_t max_bytes =
      static_cast<uint64_t>(options_.max_segment_pages) * page_size();
  while (pos < data.size()) {
    const uint64_t take = std::min<uint64_t>(data.size() - pos, max_bytes);
    auto ext = WriteNewSegment(data.substr(pos, take), ctx);
    if (!ext.ok()) return ext.status();
    LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
        id, at, {static_cast<uint32_t>(take), ext->first_page()}, ctx));
    ext->Commit();
    at += take;
    pos += take;
  }
  return Status::OK();
}

Status EosManager::Insert(ObjectId id, uint64_t offset,
                          std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "eos.insert");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset > *size) return Status::OutOfRange("insert past object end");
  if (offset == *size) return Append(id, data);

  OpContext ctx(sys_->pool(), sys_->arena());
  LOB_RETURN_IF_ERROR(TrimLastSlack(id, &ctx));
  auto leaf = tree_->FindLeaf(id, offset);
  if (!leaf.ok()) return leaf.status();
  const uint64_t P = page_size();
  const uint64_t local = offset - leaf->start;
  const uint64_t tp = static_cast<uint64_t>(options_.threshold_pages) * P;

  if (leaf->bytes + data.size() <= 2 * tp + 2 * P &&
      leaf->bytes + data.size() <=
          static_cast<uint64_t>(options_.max_segment_pages) * P) {
    // Small result: splitting would immediately trigger a threshold merge
    // back into one segment, so splice-rewrite the segment directly (one
    // read, one shadowed write).
    std::string content(leaf->bytes, '\0');
    LOB_RETURN_IF_ERROR(ReadLeaf(*leaf, 0, leaf->bytes, content.data()));
    content.insert(local, data.data(), data.size());
    // Install the rewritten segment in the tree before freeing the old
    // one: freeing first left the tree pointing at reclaimed pages if the
    // repoint failed.
    auto np = WriteNewSegment(content, &ctx);
    if (!np.ok()) return np.status();
    LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
        id, leaf->start, static_cast<int64_t>(data.size()),
        np->first_page(), &ctx));
    np->Commit();
    LOB_RETURN_IF_ERROR(FreePages(leaf->page, PagesFor(leaf->bytes)));
    LOB_RETURN_IF_ERROR(
        EnforceThreshold(id, offset, offset + data.size(), &ctx));
    LOB_RETURN_IF_ERROR(RefreshAux(id));
    return ctx.Finish();
  }

  if (local > 0 && local % P != 0) {
    // Unaligned split. Only the bytes that straddle the split page have to
    // move: the left part keeps its pages in place (its last page now ends
    // mid-page), the whole pages after the split page stay in place as
    // their own segment, and the new bytes plus the straddling bytes are
    // written together into fresh segments. This is why a 10K insert
    // creates a 3-page (12K) leaf in the paper's 4.4.2 discussion, and why
    // EOS utilization at T=1 matches 1-page ESM leaves (4.4.1).
    const uint64_t split_page_end = CeilDiv(local, P) * P;
    const uint64_t straddle =
        std::min<uint64_t>(split_page_end, leaf->bytes) - local;
    const uint64_t right_pages_bytes =
        leaf->bytes > split_page_end ? leaf->bytes - split_page_end : 0;
    std::string moved(data.size() + straddle, '\0');
    std::memcpy(moved.data(), data.data(), data.size());
    LOB_RETURN_IF_ERROR(
        ReadLeaf(*leaf, local, straddle, moved.data() + data.size()));
    // Shrink the original leaf to the left part (pages stay put).
    LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
        id, leaf->start, -static_cast<int64_t>(straddle + right_pages_bytes),
        kInvalidPage, &ctx));
    // Whole pages right of the split page become their own segment.
    if (right_pages_bytes > 0) {
      const PageId right_page =
          leaf->page + static_cast<PageId>(split_page_end / P);
      LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
          id, leaf->start + local,
          {static_cast<uint32_t>(right_pages_bytes), right_page}, &ctx));
    }
    // New bytes followed by the straddling bytes, in fresh segments.
    LOB_RETURN_IF_ERROR(
        InsertFreshSegments(id, leaf->start + local, moved, &ctx));
  } else {
    if (local > 0) {
      // Page-aligned split: the right part stays in place as its own
      // segment; no data moves.
      const uint64_t rbytes = leaf->bytes - local;
      const PageId right_page = leaf->page + static_cast<PageId>(local / P);
      LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
          id, leaf->start, -static_cast<int64_t>(rbytes), kInvalidPage,
          &ctx));
      LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
          id, leaf->start + local,
          {static_cast<uint32_t>(rbytes), right_page}, &ctx));
    }
    // New bytes go before the right part (or before the untouched leaf
    // when local == 0), in as few segments as possible.
    LOB_RETURN_IF_ERROR(InsertFreshSegments(id, offset, data, &ctx));
  }
  LOB_RETURN_IF_ERROR(
      EnforceThreshold(id, offset, offset + data.size(), &ctx));
  LOB_RETURN_IF_ERROR(RefreshAux(id));
  return ctx.Finish();
}

Status EosManager::Delete(ObjectId id, uint64_t offset, uint64_t n) {
  if (n == 0) return Status::OK();
  OpScope obs_scope(sys_->disk(), "eos.delete");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset + n > *size) return Status::OutOfRange("delete past object end");

  OpContext ctx(sys_->pool(), sys_->arena());
  LOB_RETURN_IF_ERROR(TrimLastSlack(id, &ctx));
  const uint64_t P = page_size();
  uint64_t remaining = n;
  while (remaining > 0) {
    auto leaf = tree_->FindLeaf(id, offset);
    if (!leaf.ok()) return leaf.status();
    const uint64_t local = offset - leaf->start;
    const uint64_t take = std::min<uint64_t>(leaf->bytes - local, remaining);
    const uint32_t old_pages = PagesFor(leaf->bytes);

    if (local == 0 && take == leaf->bytes) {
      // Whole segment disappears.
      auto removed = tree_->RemoveLeaf(id, leaf->start, &ctx);
      if (!removed.ok()) return removed.status();
      LOB_RETURN_IF_ERROR(FreePages(removed->page, old_pages));
    } else if (local + take == leaf->bytes) {
      // Suffix removal: trim tail pages in place.
      const uint32_t keep = PagesFor(local);
      LOB_RETURN_IF_ERROR(FreePages(leaf->page + keep, old_pages - keep));
      LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
          id, leaf->start, -static_cast<int64_t>(take), kInvalidPage, &ctx));
    } else if (local == 0) {
      // Prefix removal: whole surviving pages stay in place; only the
      // bytes straddling the first surviving page move.
      if (take % P == 0) {
        const uint32_t drop = static_cast<uint32_t>(take / P);
        LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
            id, leaf->start, -static_cast<int64_t>(take),
            leaf->page + drop, &ctx));
        LOB_RETURN_IF_ERROR(FreePages(leaf->page, drop));
      } else {
        const uint64_t boundary = CeilDiv(take, P) * P;
        const uint64_t straddle =
            std::min<uint64_t>(boundary, leaf->bytes) - take;
        const uint64_t right_pages_bytes =
            leaf->bytes > boundary ? leaf->bytes - boundary : 0;
        std::string moved(straddle, '\0');
        LOB_RETURN_IF_ERROR(ReadLeaf(*leaf, take, straddle, moved.data()));
        auto np = WriteNewSegment(moved, &ctx);
        if (!np.ok()) return np.status();
        LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
            id, leaf->start,
            -static_cast<int64_t>(take + right_pages_bytes),
            np->first_page(), &ctx));
        np->Commit();
        if (right_pages_bytes > 0) {
          LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
              id, leaf->start + straddle,
              {static_cast<uint32_t>(right_pages_bytes),
               leaf->page + static_cast<PageId>(boundary / P)},
              &ctx));
        }
        // Pages up to and including the straddle page are gone.
        LOB_RETURN_IF_ERROR(
            FreePages(leaf->page, static_cast<uint32_t>(boundary / P)));
      }
    } else if (leaf->bytes - take <=
               2 * static_cast<uint64_t>(options_.threshold_pages) * P +
                   2 * P) {
      // Small remainder: rewriting the segment directly beats splitting
      // and re-merging under the threshold rule.
      std::string content(leaf->bytes, '\0');
      LOB_RETURN_IF_ERROR(ReadLeaf(*leaf, 0, leaf->bytes, content.data()));
      content.erase(local, take);
      // Repoint the tree first, then free the old pages (see Insert).
      auto np = WriteNewSegment(content, &ctx);
      if (!np.ok()) return np.status();
      LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
          id, leaf->start, -static_cast<int64_t>(take), np->first_page(),
          &ctx));
      np->Commit();
      LOB_RETURN_IF_ERROR(FreePages(leaf->page, old_pages));
    } else {
      // Removal strictly inside one segment: the left part stays; the
      // right part's whole pages stay in place and only the bytes
      // straddling the page where the removed range ends are copied out.
      const uint64_t end = local + take;
      const uint32_t keep = PagesFor(local);
      if (end % P == 0) {
        const uint64_t rbytes = leaf->bytes - end;
        const PageId right_page =
            leaf->page + static_cast<PageId>(end / P);
        const uint32_t right_first = static_cast<uint32_t>(end / P);
        if (right_first > keep) {
          LOB_RETURN_IF_ERROR(
              FreePages(leaf->page + keep, right_first - keep));
        }
        LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
            id, leaf->start, -static_cast<int64_t>(take + rbytes),
            kInvalidPage, &ctx));
        LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
            id, leaf->start + local,
            {static_cast<uint32_t>(rbytes), right_page}, &ctx));
      } else {
        const uint64_t boundary = CeilDiv(end, P) * P;
        const uint64_t straddle =
            std::min<uint64_t>(boundary, leaf->bytes) - end;
        const uint64_t right_pages_bytes =
            leaf->bytes > boundary ? leaf->bytes - boundary : 0;
        std::string moved(straddle, '\0');
        LOB_RETURN_IF_ERROR(ReadLeaf(*leaf, end, straddle, moved.data()));
        LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
            id, leaf->start,
            -static_cast<int64_t>(take + straddle + right_pages_bytes),
            kInvalidPage, &ctx));
        if (right_pages_bytes > 0) {
          LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
              id, leaf->start + local,
              {static_cast<uint32_t>(right_pages_bytes),
               leaf->page + static_cast<PageId>(boundary / P)},
              &ctx));
        }
        if (!moved.empty()) {
          auto np = WriteNewSegment(moved, &ctx);
          if (!np.ok()) return np.status();
          LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
              id, leaf->start + local,
              {static_cast<uint32_t>(straddle), np->first_page()}, &ctx));
          np->Commit();
        }
        // Free the pages between the left part and the right pages
        // (including the straddle page, whose live bytes moved out).
        const uint32_t middle_end = static_cast<uint32_t>(boundary / P);
        const uint32_t middle_cap =
            std::min(middle_end, old_pages);
        if (middle_cap > keep) {
          LOB_RETURN_IF_ERROR(
              FreePages(leaf->page + keep, middle_cap - keep));
        }
      }
    }
    remaining -= take;
  }
  LOB_RETURN_IF_ERROR(EnforceThreshold(id, offset, offset, &ctx));
  LOB_RETURN_IF_ERROR(RefreshAux(id));
  return ctx.Finish();
}

Status EosManager::ShuffleLeaves(ObjectId id,
                                 const PositionalTree::LeafInfo& a,
                                 const PositionalTree::LeafInfo& b,
                                 OpContext* ctx) {
  LOB_TRACE_SPAN(sys_->disk(), "seg.shuffle");
  const uint64_t P = page_size();
  const uint64_t tp = static_cast<uint64_t>(options_.threshold_pages) * P;
  if (a.bytes < tp) {
    // Left is small: absorb whole pages off the right neighbor's front so
    // the remainder of b stays page-aligned in place.
    const uint64_t m = CeilDiv(tp - a.bytes, P) * P;
    LOB_CHECK_LT(m, b.bytes);
    std::string content(a.bytes + m, '\0');
    LOB_RETURN_IF_ERROR(ReadLeaf(a, 0, a.bytes, content.data()));
    LOB_RETURN_IF_ERROR(ReadLeaf(b, 0, m, content.data() + a.bytes));
    auto np = WriteNewSegment(content, ctx);
    if (!np.ok()) return np.status();
    LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
        id, a.start, static_cast<int64_t>(m), np->first_page(), ctx));
    np->Commit();
    // b shrank by m from the front; identify it by an offset inside it.
    LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
        id, a.start + a.bytes + m, -static_cast<int64_t>(m),
        b.page + static_cast<PageId>(m / P), ctx));
    LOB_RETURN_IF_ERROR(FreePages(a.page, PagesFor(a.bytes)));
    return FreePages(b.page, static_cast<uint32_t>(m / P));
  }
  // Right is small: absorb the tail of the left neighbor (any byte amount;
  // the left segment trims in place to a partial last page).
  const uint64_t m = tp - b.bytes;
  LOB_CHECK_LT(m, a.bytes);
  std::string content(m + b.bytes, '\0');
  LOB_RETURN_IF_ERROR(ReadLeaf(a, a.bytes - m, m, content.data()));
  LOB_RETURN_IF_ERROR(ReadLeaf(b, 0, b.bytes, content.data() + m));
  auto np = WriteNewSegment(content, ctx);
  if (!np.ok()) return np.status();
  LOB_RETURN_IF_ERROR(
      tree_->UpdateLeaf(id, a.start, -static_cast<int64_t>(m), kInvalidPage,
                        ctx));
  const uint32_t keep = PagesFor(a.bytes - m);
  LOB_RETURN_IF_ERROR(FreePages(a.page + keep, PagesFor(a.bytes) - keep));
  LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
      id, a.start + a.bytes - m, static_cast<int64_t>(m), np->first_page(),
      ctx));
  np->Commit();  // the tree references the new segment now
  return FreePages(b.page, PagesFor(b.bytes));
}

Status EosManager::MergeLeaves(ObjectId id,
                               const PositionalTree::LeafInfo& a,
                               const PositionalTree::LeafInfo& b,
                               OpContext* ctx) {
  LOB_TRACE_SPAN(sys_->disk(), "seg.merge");
  std::string content(a.bytes + b.bytes, '\0');
  LOB_RETURN_IF_ERROR(ReadLeaf(a, 0, a.bytes, content.data()));
  LOB_RETURN_IF_ERROR(ReadLeaf(b, 0, b.bytes, content.data() + a.bytes));
  auto np = WriteNewSegment(content, ctx);
  if (!np.ok()) return np.status();
  auto removed = tree_->RemoveLeaf(id, b.start, ctx);
  if (!removed.ok()) return removed.status();
  // Repoint a's entry at the merged segment before freeing either old
  // segment: if the repoint fails mid-way the tree still references live
  // pages (the guard reclaims the merged copy) instead of freed ones.
  LOB_RETURN_IF_ERROR(tree_->UpdateLeaf(
      id, a.start, static_cast<int64_t>(b.bytes), np->first_page(), ctx));
  np->Commit();
  LOB_RETURN_IF_ERROR(FreePages(removed->page, PagesFor(b.bytes)));
  return FreePages(a.page, PagesFor(a.bytes));
}

Status EosManager::EnforceThreshold(ObjectId id, uint64_t lo, uint64_t hi,
                                    OpContext* ctx) {
  LOB_TRACE_SPAN(sys_->disk(), "seg.threshold");
  const uint64_t T = options_.threshold_pages;
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (*size == 0) return Status::OK();

  // Scan adjacent leaf pairs overlapping [lo, hi], widened by one leaf on
  // the left; merge whenever one side is below T pages and the combined
  // bytes fit in a segment of at most T pages.
  uint64_t cur;
  {
    const uint64_t probe = std::min(lo, *size - 1);
    auto first = tree_->FindLeaf(id, probe);
    if (!first.ok()) return first.status();
    cur = first->start;
    if (cur > 0) {
      auto prev = tree_->FindLeaf(id, cur - 1);
      if (!prev.ok()) return prev.status();
      cur = prev->start;
    }
  }
  const uint64_t bound = std::min(hi, *size == 0 ? 0 : *size - 1);
  while (true) {
    auto a = tree_->FindLeaf(id, std::min(cur, *size - 1));
    if (!a.ok()) return a.status();
    const uint64_t next = a->start + a->bytes;
    if (next >= *size) break;
    auto b = tree_->FindLeaf(id, next);
    if (!b.ok()) return b.status();
    // A segment is below threshold when it holds fewer than T pages' worth
    // of bytes. Violations are repaired by merging the pair into one
    // segment when the combined bytes are modest, or by shuffling whole
    // pages from the bigger neighbor so both sides reach T pages (paper
    // 2.3: "pages in neighboring segments have to be shuffled").
    const uint64_t P = page_size();
    const uint64_t tp = static_cast<uint64_t>(T) * P;
    const uint64_t combined =
        static_cast<uint64_t>(a->bytes) + static_cast<uint64_t>(b->bytes);
    if (a->bytes < tp || b->bytes < tp) {
      if (combined <= 2 * tp + 2 * P) {
        LOB_RETURN_IF_ERROR(MergeLeaves(id, *a, *b, ctx));
        // Re-examine the merged leaf against its new right neighbor.
        cur = a->start;
        continue;
      }
      LOB_RETURN_IF_ERROR(ShuffleLeaves(id, *a, *b, ctx));
      cur = a->start;
      continue;
    }
    if (b->start > bound) break;
    cur = b->start;
  }
  return Status::OK();
}

Status EosManager::Replace(ObjectId id, uint64_t offset,
                           std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "eos.replace");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset + data.size() > *size) {
    return Status::OutOfRange("replace past object end");
  }
  OpContext ctx(sys_->pool(), sys_->arena());
  LOB_RETURN_IF_ERROR(TrimLastSlack(id, &ctx));
  uint64_t done = 0;
  while (done < data.size()) {
    auto leaf = tree_->FindLeaf(id, offset + done);
    if (!leaf.ok()) return leaf.status();
    const uint64_t local = offset + done - leaf->start;
    const uint64_t take =
        std::min<uint64_t>(leaf->bytes - local, data.size() - done);
    if (sys_->config().shadowing) {
      // Whole-segment shadow (paper 3.3).
      std::string content(leaf->bytes, '\0');
      LOB_RETURN_IF_ERROR(ReadLeaf(*leaf, 0, leaf->bytes, content.data()));
      content.replace(local, take, data.substr(done, take));
      auto np = WriteNewSegment(content, &ctx);
      if (!np.ok()) return np.status();
      LOB_RETURN_IF_ERROR(
          tree_->UpdateLeaf(id, leaf->start, 0, np->first_page(), &ctx));
      np->Commit();
      LOB_RETURN_IF_ERROR(FreePages(leaf->page, PagesFor(leaf->bytes)));
    } else {
      LOB_RETURN_IF_ERROR(sys_->pool()->WriteSegmentRange(
          leaf_area_id(), leaf->page, leaf->bytes, local, take,
          data.data() + done));
      const PageId p0 =
          leaf->page + static_cast<PageId>(local / page_size());
      const PageId p1 = leaf->page + static_cast<PageId>(
                                         (local + take - 1) / page_size());
      ctx.DeferFlush(leaf_area_id(), p0, p1 - p0 + 1);
    }
    done += take;
  }
  LOB_RETURN_IF_ERROR(RefreshAux(id));
  return ctx.Finish();
}

StatusOr<ObjectStorageStats> EosManager::GetStorageStats(ObjectId id) {
  auto tree_stats = tree_->Validate(id);
  if (!tree_stats.ok()) return tree_stats.status();
  auto aux = tree_->GetAux(id);
  if (!aux.ok()) return aux.status();
  ObjectStorageStats out;
  out.object_bytes = tree_stats->bytes;
  out.index_pages = tree_stats->index_pages;
  out.segments = tree_stats->leaves;
  out.tree_height = tree_stats->height;
  uint64_t pages = 0;
  uint64_t last_bytes = 0;
  LOB_RETURN_IF_ERROR(tree_->VisitLeaves(id, [&](const auto& leaf) {
    pages += PagesFor(leaf.bytes);
    last_bytes = leaf.bytes;
    return Status::OK();
  }));
  if (tree_stats->leaves > 0 && *aux > PagesFor(last_bytes)) {
    pages += *aux - PagesFor(last_bytes);  // growth slack in the last leaf
  }
  out.leaf_pages = pages;
  return out;
}

Status EosManager::Trim(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "eos.trim");
  OpContext ctx(sys_->pool(), sys_->arena());
  LOB_RETURN_IF_ERROR(TrimLastSlack(id, &ctx));
  return ctx.Finish();
}

Status EosManager::VisitSegments(
    ObjectId id, const std::function<Status(uint64_t, uint32_t)>& fn) {
  auto aux = tree_->GetAux(id);
  if (!aux.ok()) return aux.status();
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  const uint64_t total = *size;
  return tree_->VisitLeaves(id, [&](const auto& leaf) {
    const bool is_last = leaf.start + leaf.bytes == total;
    const uint32_t pages =
        is_last && *aux != 0 ? *aux : PagesFor(leaf.bytes);
    return fn(leaf.bytes, pages);
  });
}

Status EosManager::VisitOwnedExtents(
    ObjectId id, const std::function<Status(const OwnedExtent&)>& fn) {
  LOB_RETURN_IF_ERROR(tree_->VisitIndexPages(id, [&](PageId page) {
    return fn({sys_->meta_area()->id(), page, 1});
  }));
  auto aux = tree_->GetAux(id);
  if (!aux.ok()) return aux.status();
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  const uint64_t total = *size;
  return tree_->VisitLeaves(id, [&](const auto& leaf) {
    // The last segment may carry growth slack; the aux word records its
    // allocated page count (0 = exactly sized).
    const bool is_last = leaf.start + leaf.bytes == total;
    const uint32_t pages =
        is_last && *aux != 0 ? *aux : PagesFor(leaf.bytes);
    return fn({leaf_area_id(), leaf.page, pages});
  });
}

Status EosManager::Validate(ObjectId id) {
  auto tree_stats = tree_->Validate(id);
  if (!tree_stats.ok()) return tree_stats.status();
  Status leaf_check = Status::OK();
  const uint64_t max_bytes =
      static_cast<uint64_t>(options_.max_segment_pages) * page_size();
  LOB_RETURN_IF_ERROR(tree_->VisitLeaves(id, [&](const auto& leaf) {
    if (leaf.bytes == 0 || leaf.bytes > max_bytes) {
      leaf_check = Status::Corruption("leaf byte count out of range");
    }
    if (!sys_->leaf_area()->IsAllocated(leaf.page)) {
      leaf_check = Status::Corruption("leaf segment not allocated");
    }
    return Status::OK();
  }));
  return leaf_check;
}

}  // namespace lob
