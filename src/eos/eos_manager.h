// EosManager: the EOS large object structure (paper 2.3; Biliris 1992).
//
// A generalization of ESM and Starburst: large objects are stored in a
// sequence of *variable-size* segments of physically contiguous pages,
// allocated by the buddy system and indexed by the same positional tree as
// ESM (identical internal nodes). A segment has no holes: every page is
// full except possibly the last one.
//
// Appends grow exactly like Starburst (doubling segment allocations from
// the first append size up to the maximum), so a freshly built object has
// the identical physical layout in both systems. Byte-range inserts and
// deletes split segments: the bytes to the left of the split point stay in
// place (their pages are merely trimmed), the new bytes go into as few
// fresh segments as possible, and the bytes to the right either stay in
// place (when the split falls on a page boundary) or are copied into a
// fresh segment.
//
// The *segment size threshold* T bounds fragmentation: a segment holding
// fewer than T pages' worth of bytes next to a logically adjacent segment
// is a violation when the bytes could be reorganized into segments of at
// least T pages. Violations are repaired by merging the pair into one
// segment when the combined bytes are small, or by shuffling whole pages
// from the bigger neighbor until both sides reach the threshold ("pages in
// neighboring segments have to be shuffled", paper 2.3). Updated regions
// therefore degrade toward segments of about T pages. Larger T gives
// better utilization and read cost at higher update cost - the paper's
// central EOS trade-off.

#ifndef LOB_EOS_EOS_MANAGER_H_
#define LOB_EOS_EOS_MANAGER_H_

#include <memory>
#include <vector>

#include "buddy/scoped_extent.h"
#include "core/large_object.h"
#include "core/storage_system.h"
#include "lobtree/positional_tree.h"

namespace lob {

struct EosOptions {
  /// Segment size threshold T, in pages (1, 4, 16, 64 in the study).
  uint32_t threshold_pages = 4;

  /// Cap on segment size. 8192 pages = 32 M-byte segments.
  uint32_t max_segment_pages = 8192;

  /// Tree fan-out; tests shrink it.
  TreeLimits limits;
};

/// EOS large object manager over a StorageSystem.
class EosManager : public LargeObjectManager {
 public:
  EosManager(StorageSystem* sys, const EosOptions& options);

  [[nodiscard]] StatusOr<ObjectId> Create() override;
  [[nodiscard]] Status Destroy(ObjectId id) override;
  [[nodiscard]] StatusOr<uint64_t> Size(ObjectId id) override;
  [[nodiscard]] Status Read(ObjectId id, uint64_t offset, uint64_t n,
              std::string* out) override;
  [[nodiscard]] Status Append(ObjectId id, std::string_view data) override;
  [[nodiscard]]
  Status Insert(ObjectId id, uint64_t offset, std::string_view data) override;
  [[nodiscard]]
  Status Delete(ObjectId id, uint64_t offset, uint64_t n) override;
  [[nodiscard]]
  Status Replace(ObjectId id, uint64_t offset, std::string_view data) override;
  [[nodiscard]]
  StatusOr<ObjectStorageStats> GetStorageStats(ObjectId id) override;
  [[nodiscard]] Status Validate(ObjectId id) override;
  [[nodiscard]] Status VisitSegments(
      ObjectId id,
      const std::function<Status(uint64_t, uint32_t)>& fn) override;
  [[nodiscard]] Status VisitOwnedExtents(
      ObjectId id,
      const std::function<Status(const OwnedExtent&)>& fn) override;
  [[nodiscard]] Status Trim(ObjectId id) override;
  Engine engine() const override { return Engine::kEos; }

  const EosOptions& options() const { return options_; }

 private:
  AreaId leaf_area_id() const { return sys_->leaf_area()->id(); }
  uint32_t page_size() const { return sys_->config().page_size; }

  /// Pages needed to hold `bytes` (exact allocation of non-last segments).
  uint32_t PagesFor(uint64_t bytes) const {
    return static_cast<uint32_t>((bytes + page_size() - 1) / page_size());
  }

  [[nodiscard]]
  Status ReadLeaf(const PositionalTree::LeafInfo& leaf, uint64_t off,
                  uint64_t n, char* dst);

  /// Frees `pages` pages of a segment starting at `page`.
  [[nodiscard]] Status FreePages(PageId page, uint32_t pages);

  /// Allocates a fresh segment of exactly PagesFor(content) pages under
  /// guard and writes `content` into it. The caller must Commit() the
  /// extent once the tree references it; otherwise the guard releases the
  /// segment on scope exit (no leak on error paths).
  [[nodiscard]]
  StatusOr<ScopedExtent> WriteNewSegment(std::string_view content,
                                         OpContext* ctx);

  /// Frees the allocated-but-unused tail pages of the last segment so
  /// that, for the duration of a structural update, every segment is
  /// exactly PagesFor(bytes) pages long.
  [[nodiscard]] Status TrimLastSlack(ObjectId id, OpContext* ctx);

  /// Recomputes the root aux word (= allocated pages of the last leaf)
  /// after a structural update.
  [[nodiscard]] Status RefreshAux(ObjectId id);

  /// Inserts `data` as new leaf segments starting at object offset `at`
  /// (as few segments as possible).
  [[nodiscard]]
  Status InsertFreshSegments(ObjectId id, uint64_t at, std::string_view data,
                             OpContext* ctx);

  /// Repairs threshold violations among adjacent leaves overlapping
  /// [lo, hi].
  [[nodiscard]] Status EnforceThreshold(ObjectId id, uint64_t lo, uint64_t hi,
                          OpContext* ctx);

  /// Merges leaf `b` into leaf `a` (logically adjacent, a before b).
  [[nodiscard]]
  Status MergeLeaves(ObjectId id, const PositionalTree::LeafInfo& a,
                     const PositionalTree::LeafInfo& b, OpContext* ctx);

  /// Moves bytes between the adjacent leaves `a` and `b` (exactly one of
  /// which is below T pages' worth) so both reach the threshold: whole
  /// pages off b's front when a is small, the tail of a when b is small.
  [[nodiscard]]
  Status ShuffleLeaves(ObjectId id, const PositionalTree::LeafInfo& a,
                       const PositionalTree::LeafInfo& b, OpContext* ctx);

  StorageSystem* sys_;
  EosOptions options_;
  std::unique_ptr<PositionalTree> tree_;
};

}  // namespace lob

#endif  // LOB_EOS_EOS_MANAGER_H_
