// PageTable: flat open-addressing hash table from page keys to frame slots.
//
// The buffer pool's lookup table is consulted on every FixPage and on
// every page of every run operation; std::unordered_map's node-per-entry
// layout makes that a pointer chase plus an allocation per insert. This
// table is a single flat array with robin-hood probing (displacement-
// ordered, so probe sequences stay short even near the load limit) and
// backward-shift deletion (no tombstones, so lookups never degrade).
//
// Iteration order is deliberately not exposed: the pool's only sanctioned
// enumeration is BufferPool::CachedPagesSorted(), which walks the frame
// table and sorts (lint rule LOB002 keeps unordered iteration out of
// exporters). Copyable, so BufferPool::State can snapshot it.

#ifndef LOB_BUFFER_PAGE_TABLE_H_
#define LOB_BUFFER_PAGE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace lob {

/// Open-addressing map from 64-bit keys to frame slot indices.
class PageTable {
 public:
  PageTable() : buckets_(kMinBuckets) {}

  /// Slot stored for `key`, or -1 when absent.
  int Find(uint64_t key) const {
    const size_t mask = buckets_.size() - 1;
    size_t i = Hash(key) & mask;
    uint32_t dist = 0;
    while (true) {
      const Bucket& b = buckets_[i];
      if (!b.used || dist > b.dist) return -1;
      if (b.key == key) return static_cast<int>(b.slot);
      i = (i + 1) & mask;
      ++dist;
    }
  }

  /// Inserts `key` -> `slot`, overwriting an existing mapping.
  void Insert(uint64_t key, uint32_t slot) {
    if ((size_ + 1) * 8 >= buckets_.size() * 7) Rehash(buckets_.size() * 2);
    InsertNoRehash(key, slot);
  }

  /// Removes `key`; returns false when absent.
  bool Erase(uint64_t key) {
    const size_t mask = buckets_.size() - 1;
    size_t i = Hash(key) & mask;
    uint32_t dist = 0;
    while (true) {
      Bucket& b = buckets_[i];
      if (!b.used || dist > b.dist) return false;
      if (b.key == key) break;
      i = (i + 1) & mask;
      ++dist;
    }
    // Backward-shift the following displaced entries into the hole.
    size_t hole = i;
    while (true) {
      const size_t next = (hole + 1) & mask;
      Bucket& n = buckets_[next];
      if (!n.used || n.dist == 0) break;
      buckets_[hole] = n;
      buckets_[hole].dist--;
      hole = next;
    }
    buckets_[hole] = Bucket{};
    --size_;
    return true;
  }

  void Clear() {
    for (Bucket& b : buckets_) b = Bucket{};
    size_ = 0;
  }

  size_t size() const { return size_; }

 private:
  struct Bucket {
    uint64_t key = 0;
    uint32_t slot = 0;
    uint32_t dist = 0;  ///< probe distance from the key's home bucket
    bool used = false;
  };

  static constexpr size_t kMinBuckets = 16;  // power of two

  /// splitmix64 finalizer: full-avalanche mix of the (area, page) key.
  static size_t Hash(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  void InsertNoRehash(uint64_t key, uint32_t slot) {
    const size_t mask = buckets_.size() - 1;
    uint64_t k = key;
    uint32_t s = slot;
    uint32_t dist = 0;
    bool carrying_original = true;
    size_t i = Hash(k) & mask;
    while (true) {
      Bucket& b = buckets_[i];
      if (!b.used) {
        b.key = k;
        b.slot = s;
        b.dist = dist;
        b.used = true;
        ++size_;
        return;
      }
      if (carrying_original && b.key == k) {
        b.slot = s;  // overwrite existing mapping
        return;
      }
      if (b.dist < dist) {  // rob the rich: displace the closer entry
        std::swap(k, b.key);
        std::swap(s, b.slot);
        std::swap(dist, b.dist);
        carrying_original = false;
      }
      i = (i + 1) & mask;
      ++dist;
    }
  }

  void Rehash(size_t n_buckets) {
    LOB_CHECK_EQ(n_buckets & (n_buckets - 1), size_t{0});
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(n_buckets, Bucket{});
    size_ = 0;
    for (const Bucket& b : old) {
      if (b.used) InsertNoRehash(b.key, b.slot);
    }
  }

  std::vector<Bucket> buckets_;
  size_t size_ = 0;
};

}  // namespace lob

#endif  // LOB_BUFFER_PAGE_TABLE_H_
