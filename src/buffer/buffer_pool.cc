#include "buffer/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/math_util.h"
#include "obs/obs_registry.h"
#include "trace/trace_span.h"

namespace lob {

// ---------------------------------------------------------------- PageGuard

PageGuard::PageGuard(BufferPool* pool, uint32_t slot)
    : pool_(pool), slot_(slot) {}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), slot_(other.slot_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    slot_ = other.slot_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

const char* PageGuard::data() const {
  LOB_CHECK(pool_ != nullptr);
  ReaderMutexLock lock(&pool_->mu_);
  // The returned pointer outlives the latch but not the pin: frame slots
  // and borrowed page images are stable while the pin count is non-zero.
  return pool_->FrameDataLocked(slot_);
}

char* PageGuard::mutable_data() {
  LOB_CHECK(pool_ != nullptr);
  WriterMutexLock lock(&pool_->mu_);
  return pool_->MaterializeSlotLocked(slot_);
}

void PageGuard::MarkDirty() {
  LOB_CHECK(pool_ != nullptr);
  WriterMutexLock lock(&pool_->mu_);
  pool_->MaterializeSlotLocked(slot_);
  pool_->frames_[slot_].dirty = true;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(slot_);
    pool_ = nullptr;
  }
}

// --------------------------------------------------------------- BufferPool

BufferPool::BufferPool(SimDisk* disk, const StorageConfig& config)
    : disk_(disk), config_(config) {
  LOB_CHECK_GE(config_.buffer_pool_pages, 2u);
  LOB_CHECK_LE(config_.max_pool_segment_pages, config_.buffer_pool_pages);
  arena_.resize(static_cast<size_t>(config_.buffer_pool_pages) *
                config_.page_size);
  frames_.resize(config_.buffer_pool_pages);
}

int BufferPool::FindSlot(AreaId area, PageId page) const {
  return map_.Find(Key(area, page));
}

char* BufferPool::MaterializeSlotLocked(uint32_t slot) {
  Frame& f = frames_[slot];
  if (f.borrow != nullptr) {
    std::memcpy(SlotData(slot), f.borrow, config_.page_size);
    f.borrow = nullptr;
  }
  return SlotData(slot);
}

void BufferPool::UnpinLocked(uint32_t slot) {
  Frame& f = frames_[slot];
  LOB_CHECK_GT(f.pins, 0u);
  f.pins--;
}

void BufferPool::Unpin(uint32_t slot) {
  WriterMutexLock lock(&mu_);
  UnpinLocked(slot);
}

Status BufferPool::EvictSlot(uint32_t slot) {
  Frame& f = frames_[slot];
  if (!f.valid) return Status::OK();
  if (f.pins != 0) return Status::Internal("evicting pinned page");
  evictions_++;
  if (f.dirty) {
    LOB_TRACE_SPAN(disk_, "pool.evict");
    LOB_RETURN_IF_ERROR(disk_->Write(f.area, f.page, 1, SlotData(slot)));
  }
  map_.Erase(Key(f.area, f.page));
  f.valid = false;
  f.dirty = false;
  f.borrow = nullptr;
  return Status::OK();
}

StatusOr<uint32_t> BufferPool::GetFreeSlot() {
  // Invalid frame first; then LRU among unpinned clean frames; then LRU
  // among unpinned dirty frames (paper 3.2: free least recently used clean
  // pages followed by dirty pages).
  int best_invalid = -1;
  int best_clean = -1;
  int best_dirty = -1;
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (!f.valid) {
      best_invalid = static_cast<int>(i);
      break;
    }
    if (f.pins != 0) continue;
    if (!f.dirty) {
      if (best_clean < 0 || f.lru < frames_[static_cast<uint32_t>(
                                         best_clean)].lru) {
        best_clean = static_cast<int>(i);
      }
    } else {
      if (best_dirty < 0 || f.lru < frames_[static_cast<uint32_t>(
                                         best_dirty)].lru) {
        best_dirty = static_cast<int>(i);
      }
    }
  }
  int victim = best_invalid >= 0 ? best_invalid
               : best_clean >= 0 ? best_clean
                                 : best_dirty;
  if (victim < 0) return Status::NoSpace("all buffer frames are pinned");
  LOB_RETURN_IF_ERROR(EvictSlot(static_cast<uint32_t>(victim)));
  return static_cast<uint32_t>(victim);
}

StatusOr<PageGuard> BufferPool::FixPage(AreaId area, PageId page,
                                        FixMode mode) {
  WriterMutexLock lock(&mu_);
  auto slot_or = FixSlotLocked(area, page, mode);
  if (!slot_or.ok()) return slot_or.status();
  return PageGuard(this, *slot_or);
}

StatusOr<uint32_t> BufferPool::FixSlotLocked(AreaId area, PageId page,
                                             FixMode mode) {
  int existing = FindSlot(area, page);
  if (existing >= 0) {
    uint32_t slot = static_cast<uint32_t>(existing);
    Frame& f = frames_[slot];
    f.pins++;
    f.lru = ++tick_;
    hits_++;
    return slot;
  }
  auto slot_or = GetFreeSlot();
  if (!slot_or.ok()) return slot_or.status();
  uint32_t slot = *slot_or;
  Frame& f = frames_[slot];
  if (mode == FixMode::kRead) {
    PageRef ref;
    {
      LOB_TRACE_SPAN(disk_, "pool.miss");
      LOB_RETURN_IF_ERROR(disk_->ReadRun(area, page, 1, &ref));
    }
    if (ref.data != nullptr && config_.pool_zero_copy) {
      f.borrow = ref.data;
    } else if (ref.data != nullptr) {
      std::memcpy(SlotData(slot), ref.data, config_.page_size);
      f.borrow = nullptr;
    } else {
      // Never-written page: reads as zeros.
      std::memset(SlotData(slot), 0, config_.page_size);
      f.borrow = nullptr;
    }
    misses_++;
  } else {
    std::memset(SlotData(slot), 0, config_.page_size);
    f.borrow = nullptr;
  }
  f.area = area;
  f.page = page;
  f.valid = true;
  f.dirty = false;
  f.pins = 1;
  f.lru = ++tick_;
  map_.Insert(Key(area, page), slot);
  return slot;
}

Status BufferPool::FlushAndDropRange(AreaId area, PageId first,
                                     uint32_t n_pages) {
  for (uint32_t i = 0; i < n_pages; ++i) {
    int s = FindSlot(area, first + i);
    if (s < 0) continue;
    Frame& f = frames_[static_cast<uint32_t>(s)];
    if (f.pins != 0) return Status::Internal("page pinned during drop");
    LOB_RETURN_IF_ERROR(EvictSlot(static_cast<uint32_t>(s)));
  }
  return Status::OK();
}

Status BufferPool::ReadSegmentRange(AreaId area, PageId seg_first,
                                    uint64_t seg_valid_bytes,
                                    uint64_t byte_off, uint64_t n_bytes,
                                    char* dst) {
  if (n_bytes == 0) return Status::OK();
  if (byte_off + n_bytes > seg_valid_bytes) {
    return Status::OutOfRange("read past segment valid bytes");
  }
  WriterMutexLock lock(&mu_);
  const uint64_t P = config_.page_size;
  const PageId p0 = seg_first + static_cast<PageId>(byte_off / P);
  const PageId p1 =
      seg_first + static_cast<PageId>((byte_off + n_bytes - 1) / P);
  const uint32_t np = p1 - p0 + 1;

  if (np <= config_.max_pool_segment_pages) {
    // Buffered path: make sure the run is cached. If any page misses, the
    // whole run is (re)fetched with a single I/O call into a contiguous
    // frame window; if no window can be freed, fall back to page-at-a-time.
    bool all_cached = true;
    for (PageId p = p0; p <= p1; ++p) {
      if (FindSlot(area, p) < 0) {
        all_cached = false;
        break;
      }
    }
    if (!all_cached) {
      Status loaded = Status::NoSpace("");
      // Find a window of np contiguous unpinned slots. (Borrowed frames
      // no longer need slot contiguity, but the window search — and so
      // the eviction sequence — is kept identical to the copying pool.)
      for (uint32_t w = 0; w + np <= frames_.size(); ++w) {
        bool usable = true;
        for (uint32_t i = 0; i < np; ++i) {
          if (frames_[w + i].pins != 0) {
            usable = false;
            break;
          }
        }
        if (!usable) continue;
        LOB_RETURN_IF_ERROR(FlushAndDropRange(area, p0, np));
        for (uint32_t i = 0; i < np; ++i) {
          LOB_RETURN_IF_ERROR(EvictSlot(w + i));
        }
        ScratchMark sm(&scratch_);
        PageRef* refs = scratch_.AllocArray<PageRef>(np);
        {
          LOB_TRACE_SPAN(disk_, "pool.refetch");
          LOB_RETURN_IF_ERROR(disk_->ReadRun(area, p0, np, refs));
        }
        misses_++;
        for (uint32_t i = 0; i < np; ++i) {
          Frame& f = frames_[w + i];
          if (refs[i].data != nullptr && config_.pool_zero_copy) {
            f.borrow = refs[i].data;
          } else if (refs[i].data != nullptr) {
            std::memcpy(SlotData(w + i), refs[i].data, config_.page_size);
            f.borrow = nullptr;
          } else {
            std::memset(SlotData(w + i), 0, config_.page_size);
            f.borrow = nullptr;
          }
          f.area = area;
          f.page = p0 + i;
          f.valid = true;
          f.dirty = false;
          f.pins = 0;
          f.lru = ++tick_;
          map_.Insert(Key(area, p0 + i), w + i);
        }
        loaded = Status::OK();
        break;
      }
      if (!loaded.ok()) {
        // Degenerate fallback: everything else is pinned; fetch page by
        // page (one seek each), copying while the pin is held since a
        // later fetch may evict an earlier page again.
        uint64_t copied = 0;
        for (PageId p = p0; p <= p1; ++p) {
          auto s_or = FixSlotLocked(area, p, FixMode::kRead);
          if (!s_or.ok()) return s_or.status();
          const uint64_t page_begin =
              static_cast<uint64_t>(p - seg_first) * P;
          const uint64_t lo = std::max(byte_off, page_begin);
          const uint64_t hi = std::min(byte_off + n_bytes, page_begin + P);
          std::memcpy(dst + (lo - byte_off),
                      FrameDataLocked(*s_or) + (lo - page_begin), hi - lo);
          copied += hi - lo;
          UnpinLocked(*s_or);
        }
        LOB_CHECK_EQ(copied, n_bytes);
        return Status::OK();
      }
    }
    // Copy the requested bytes out of the frames.
    uint64_t copied = 0;
    for (PageId p = p0; p <= p1; ++p) {
      int s = FindSlot(area, p);
      LOB_CHECK_GE(s, 0);
      frames_[static_cast<uint32_t>(s)].lru = ++tick_;
      const uint64_t page_begin = static_cast<uint64_t>(p - seg_first) * P;
      const uint64_t lo = std::max(byte_off, page_begin);
      const uint64_t hi = std::min(byte_off + n_bytes, page_begin + P);
      std::memcpy(dst + (lo - byte_off),
                  FrameDataLocked(static_cast<uint32_t>(s)) +
                      (lo - page_begin),
                  hi - lo);
      copied += hi - lo;
    }
    LOB_CHECK_EQ(copied, n_bytes);
    return Status::OK();
  }

  // Unbuffered path with 3-step boundary handling (paper Figure 4).
  uint64_t remaining = n_bytes;
  char* out = dst;
  PageId mid_first = p0;
  PageId mid_last = p1;
  if (byte_off % P != 0) {
    // Partial first block travels through the pool.
    auto s_or = FixSlotLocked(area, p0, FixMode::kRead);
    if (!s_or.ok()) return s_or.status();
    const uint64_t in_page = byte_off % P;
    const uint64_t take = std::min(P - in_page, remaining);
    std::memcpy(out, FrameDataLocked(*s_or) + in_page, take);
    UnpinLocked(*s_or);
    out += take;
    remaining -= take;
    mid_first = p0 + 1;
  }
  const bool tail_partial = (byte_off + n_bytes) % P != 0 && remaining > 0;
  uint64_t tail_take = 0;
  if (tail_partial) {
    tail_take = (byte_off + n_bytes) % P;
    mid_last = p1 - 1;
  }
  if (mid_first <= mid_last && remaining > tail_take) {
    const uint32_t count = mid_last - mid_first + 1;
    // Keep direct I/O coherent with the pool: write back any dirty cached
    // copies first (clean cached copies already match the disk image).
    for (uint32_t i = 0; i < count; ++i) {
      int s = FindSlot(area, mid_first + i);
      if (s >= 0 && frames_[static_cast<uint32_t>(s)].dirty) {
        Frame& f = frames_[static_cast<uint32_t>(s)];
        LOB_RETURN_IF_ERROR(
            disk_->Write(f.area, f.page, 1, SlotData(static_cast<uint32_t>(s))));
        f.dirty = false;
      }
    }
    {
      LOB_TRACE_SPAN(disk_, "pool.read_run");
      LOB_RETURN_IF_ERROR(disk_->Read(area, mid_first, count, out));
    }
    const uint64_t moved = static_cast<uint64_t>(count) * P;
    out += moved;
    remaining -= moved;
  }
  if (remaining > 0) {
    // Partial last block through the pool.
    LOB_CHECK_EQ(remaining, tail_take);
    auto s_or = FixSlotLocked(area, p1, FixMode::kRead);
    if (!s_or.ok()) return s_or.status();
    std::memcpy(out, FrameDataLocked(*s_or), remaining);
    UnpinLocked(*s_or);
  }
  return Status::OK();
}

Status BufferPool::WriteSegmentRange(AreaId area, PageId seg_first,
                                     uint64_t seg_valid_bytes,
                                     uint64_t byte_off, uint64_t n_bytes,
                                     const char* src) {
  if (n_bytes == 0) return Status::OK();
  WriterMutexLock lock(&mu_);
  const uint64_t P = config_.page_size;
  const PageId p0 = seg_first + static_cast<PageId>(byte_off / P);
  const PageId p1 =
      seg_first + static_cast<PageId>((byte_off + n_bytes - 1) / P);
  const uint32_t np = p1 - p0 + 1;

  // Does page p (absolute) hold valid bytes outside the written interval?
  auto needs_read = [&](PageId p) {
    const uint64_t page_begin = static_cast<uint64_t>(p - seg_first) * P;
    const uint64_t valid_hi = std::min(seg_valid_bytes, page_begin + P);
    if (valid_hi <= page_begin) return false;  // no valid bytes on the page
    const uint64_t w_lo = std::max(byte_off, page_begin);
    const uint64_t w_hi = std::min(byte_off + n_bytes, page_begin + P);
    return page_begin < w_lo || w_hi < valid_hi;
  };

  if (np <= config_.max_pool_segment_pages) {
    // Buffered: stage into frames; the caller flushes at operation end.
    for (PageId p = p0; p <= p1; ++p) {
      auto s_or = FixSlotLocked(
          area, p, needs_read(p) ? FixMode::kRead : FixMode::kNew);
      if (!s_or.ok()) return s_or.status();
      const uint64_t page_begin = static_cast<uint64_t>(p - seg_first) * P;
      const uint64_t lo = std::max(byte_off, page_begin);
      const uint64_t hi = std::min(byte_off + n_bytes, page_begin + P);
      std::memcpy(MaterializeSlotLocked(*s_or) + (lo - page_begin),
                  src + (lo - byte_off), hi - lo);
      frames_[*s_or].dirty = true;
      UnpinLocked(*s_or);
    }
    return Status::OK();
  }

  // Unbuffered: gather-write the full run with one I/O call. Middle pages
  // are fully covered by `src` and go straight from the caller's buffer;
  // boundary pages that keep valid bytes outside the write travel through
  // the pool (3-step I/O, paper Figure 4) into an arena staging page.
  ScratchMark sm(&scratch_);
  const char** srcs = scratch_.AllocArray<const char*>(np);
  for (PageId p = p0; p <= p1; ++p) {
    const uint64_t page_begin = static_cast<uint64_t>(p - seg_first) * P;
    const uint32_t i = p - p0;
    if (page_begin >= byte_off && page_begin + P <= byte_off + n_bytes) {
      srcs[i] = src + (page_begin - byte_off);
      continue;
    }
    char* stage = scratch_.Allocate(P);
    if (needs_read(p)) {
      auto s_or = FixSlotLocked(area, p, FixMode::kRead);
      if (!s_or.ok()) return s_or.status();
      std::memcpy(stage, FrameDataLocked(*s_or), P);
      UnpinLocked(*s_or);
    } else {
      std::memset(stage, 0, P);
    }
    const uint64_t lo = std::max(byte_off, page_begin);
    const uint64_t hi = std::min(byte_off + n_bytes, page_begin + P);
    std::memcpy(stage + (lo - page_begin), src + (lo - byte_off), hi - lo);
    srcs[i] = stage;
  }
  MutPageRef* imgs = scratch_.AllocArray<MutPageRef>(np);
  {
    LOB_TRACE_SPAN(disk_, "pool.write_run");
    LOB_RETURN_IF_ERROR(disk_->WriteRun(area, p0, np, srcs, imgs));
  }
  // Refresh any cached copies so the pool stays coherent: re-borrow the
  // freshly written images instead of copying them back.
  for (PageId p = p0; p <= p1; ++p) {
    int s = FindSlot(area, p);
    if (s < 0) continue;
    Frame& f = frames_[static_cast<uint32_t>(s)];
    if (config_.pool_zero_copy) {
      f.borrow = imgs[p - p0].data;
    } else {
      std::memcpy(SlotData(static_cast<uint32_t>(s)), imgs[p - p0].data, P);
      f.borrow = nullptr;
    }
    f.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::WriteFreshSegment(AreaId area, PageId first,
                                     const char* data, uint64_t n_bytes) {
  if (n_bytes == 0) return Status::OK();
  WriterMutexLock lock(&mu_);
  const uint64_t P = config_.page_size;
  const uint32_t np = static_cast<uint32_t>((n_bytes + P - 1) / P);
  // Full pages gather straight from the caller's buffer; only a partial
  // last page is staged (zero-padded) in the arena.
  ScratchMark sm(&scratch_);
  const char** srcs = scratch_.AllocArray<const char*>(np);
  const uint32_t full_pages = static_cast<uint32_t>(n_bytes / P);
  for (uint32_t i = 0; i < full_pages; ++i) {
    srcs[i] = data + static_cast<size_t>(i) * P;
  }
  if (full_pages < np) {
    char* stage = scratch_.Allocate(P);
    const uint64_t tail = n_bytes - static_cast<uint64_t>(full_pages) * P;
    std::memcpy(stage, data + static_cast<size_t>(full_pages) * P, tail);
    std::memset(stage + tail, 0, P - tail);
    srcs[full_pages] = stage;
  }
  MutPageRef* imgs = scratch_.AllocArray<MutPageRef>(np);
  {
    LOB_TRACE_SPAN(disk_, "pool.write_fresh");
    LOB_RETURN_IF_ERROR(disk_->WriteRun(area, first, np, srcs, imgs));
  }
  for (uint32_t i = 0; i < np; ++i) {
    int s = FindSlot(area, first + i);
    if (s < 0) continue;
    Frame& f = frames_[static_cast<uint32_t>(s)];
    if (config_.pool_zero_copy) {
      f.borrow = imgs[i].data;
    } else {
      std::memcpy(SlotData(static_cast<uint32_t>(s)), imgs[i].data, P);
      f.borrow = nullptr;
    }
    f.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushRun(AreaId area, PageId first, uint32_t n_pages) {
  WriterMutexLock lock(&mu_);
  return FlushRunLocked(area, first, n_pages);
}

Status BufferPool::FlushRunLocked(AreaId area, PageId first,
                                  uint32_t n_pages) {
  uint32_t i = 0;
  while (i < n_pages) {
    int s = FindSlot(area, first + i);
    if (s < 0 || !frames_[static_cast<uint32_t>(s)].dirty) {
      ++i;
      continue;
    }
    // Maximal contiguous dirty run starting at first + i, gathered
    // directly from the frames (dirty frames are never borrows, so their
    // bytes live in the pool slots).
    ScratchMark sm(&scratch_);
    ArenaVec<uint32_t> slots(&scratch_);
    slots.push_back(static_cast<uint32_t>(s));
    uint32_t j = i + 1;
    while (j < n_pages) {
      int sj = FindSlot(area, first + j);
      if (sj < 0 || !frames_[static_cast<uint32_t>(sj)].dirty) break;
      slots.push_back(static_cast<uint32_t>(sj));
      ++j;
    }
    const uint32_t count = j - i;
    const char** srcs = scratch_.AllocArray<const char*>(count);
    for (uint32_t k = 0; k < count; ++k) {
      LOB_CHECK(frames_[slots[k]].borrow == nullptr);
      srcs[k] = SlotData(slots[k]);
    }
    {
      LOB_TRACE_SPAN(disk_, "pool.flush");
      LOB_RETURN_IF_ERROR(disk_->WriteRun(area, first + i, count, srcs));
    }
    for (uint32_t k = 0; k < count; ++k) {
      frames_[slots[k]].dirty = false;
    }
    i = j;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  WriterMutexLock lock(&mu_);
  // Collect dirty pages, sorted, and flush maximal contiguous runs.
  std::vector<std::pair<uint64_t, uint32_t>> dirty;  // (key, slot)
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.valid && f.dirty) dirty.emplace_back(Key(f.area, f.page), i);
  }
  std::sort(dirty.begin(), dirty.end());
  size_t i = 0;
  while (i < dirty.size()) {
    size_t j = i + 1;
    while (j < dirty.size() && dirty[j].first == dirty[j - 1].first + 1) ++j;
    const Frame& f0 = frames_[dirty[i].second];
    LOB_RETURN_IF_ERROR(
        FlushRunLocked(f0.area, f0.page, static_cast<uint32_t>(j - i)));
    i = j;
  }
  return Status::OK();
}

Status BufferPool::Invalidate(AreaId area, PageId first, uint32_t n_pages) {
  WriterMutexLock lock(&mu_);
  for (uint32_t i = 0; i < n_pages; ++i) {
    int s = FindSlot(area, first + i);
    if (s < 0) continue;
    Frame& f = frames_[static_cast<uint32_t>(s)];
    if (f.pins != 0) return Status::Internal("invalidating pinned page");
    map_.Erase(Key(f.area, f.page));
    f.valid = false;
    f.dirty = false;
    f.borrow = nullptr;
  }
  return Status::OK();
}

std::vector<BufferPool::CachedPage> BufferPool::CachedPagesSorted() const {
  // Walk the frame table (a vector, slot order) rather than the hash
  // lookup table, then pin the ordering explicitly: the result must be a
  // pure function of *which* pages are cached, never of insertion order
  // or hash seeding.
  ReaderMutexLock lock(&mu_);
  std::vector<CachedPage> out;
  out.reserve(frames_.size());
  for (const Frame& f : frames_) {
    if (f.valid) out.push_back({f.area, f.page, f.dirty});
  }
  std::sort(out.begin(), out.end(),
            [](const CachedPage& a, const CachedPage& b) {
              return a.area != b.area ? a.area < b.area : a.page < b.page;
            });
  return out;
}

bool BufferPool::IsCached(AreaId area, PageId page) const {
  ReaderMutexLock lock(&mu_);
  return FindSlot(area, page) >= 0;
}

bool BufferPool::IsDirty(AreaId area, PageId page) const {
  ReaderMutexLock lock(&mu_);
  int s = FindSlot(area, page);
  return s >= 0 && frames_[static_cast<uint32_t>(s)].dirty;
}

BufferPool::State BufferPool::SaveState() const {
  ReaderMutexLock lock(&mu_);
  for (const Frame& f : frames_) LOB_CHECK_EQ(f.pins, 0u);
  State state;
  state.arena = arena_;
  state.frames = frames_;
  state.map = map_;
  state.tick = tick_;
  state.hits = hits_;
  state.misses = misses_;
  state.evictions = evictions_;
  return state;
}

void BufferPool::RestoreState(const State& state) {
  WriterMutexLock lock(&mu_);
  for (const Frame& f : frames_) LOB_CHECK_EQ(f.pins, 0u);
  // A read-only walk can still have *written* to disk (evicting a dirty
  // victim); restoring the frame's dirty bit afterwards is safe because
  // the content did not change, so the eventual re-write is identical.
  arena_ = state.arena;
  frames_ = state.frames;
  map_ = state.map;
  tick_ = state.tick;
  hits_ = state.hits;
  misses_ = state.misses;
  evictions_ = state.evictions;
}

void BufferPool::PublishCounters(ObsRegistry* obs) const {
  ReaderMutexLock lock(&mu_);
  obs->Counter("pool.fix_hits") = hits_;
  obs->Counter("pool.fix_misses") = misses_;
  obs->Counter("pool.evictions") = evictions_;
}

}  // namespace lob
