// OpContext: per-operation write scheduling (paper 3.3).
//
// The three managers share the same recovery discipline: updates on index
// pages (except the root) are shadowed, and "the new copy that contains the
// update is flushed out to disk at the end of the operation that caused the
// update"; dirty leaf pages of in-place appends are likewise flushed at the
// end of the operation. An OpContext collects the pages to flush and
// remembers which pages were already relocated during the current
// operation so a page is shadowed at most once per operation.
//
// Bookkeeping lives in a ScratchArena (usually the owning StorageSystem's):
// contexts are constructed on the hot path of every operation, and arena
// backing makes that allocation-free in steady state. Nested contexts on
// one arena follow mark/rewind stack discipline — the destructor rewinds
// to the construction point, so inner contexts must die before outer ones
// (they do: they are scoped locals).

#ifndef LOB_BUFFER_OP_CONTEXT_H_
#define LOB_BUFFER_OP_CONTEXT_H_

#include <cstdint>
#include <memory>

#include "buffer/buffer_pool.h"
#include "common/arena.h"
#include "common/status.h"

namespace lob {

/// Deferred-flush and shadow bookkeeping for one logical object operation.
class OpContext {
 public:
  /// Uses `arena` for scratch lists; owns a private arena when none is
  /// given (tests, standalone use).
  explicit OpContext(BufferPool* pool, ScratchArena* arena = nullptr)
      : pool_(pool),
        own_(arena == nullptr ? std::make_unique<ScratchArena>() : nullptr),
        arena_(arena != nullptr ? arena : own_.get()),
        mark_(arena_->mark()),
        deferred_(arena_),
        shadowed_(arena_) {}

  ~OpContext() { arena_->Rewind(mark_); }

  OpContext(const OpContext&) = delete;
  OpContext& operator=(const OpContext&) = delete;

  /// True if `page` is a shadow copy created during this operation (and so
  /// must not be shadowed again). Linear scan: operations shadow at most a
  /// handful of pages, so a flat list beats a hash set.
  bool AlreadyShadowed(AreaId area, PageId page) const {
    const uint64_t key = Key(area, page);
    for (uint64_t k : shadowed_) {
      if (k == key) return true;
    }
    return false;
  }

  /// Records that `page` is a fresh shadow copy.
  void NoteShadowed(AreaId area, PageId page) {
    shadowed_.push_back(Key(area, page));
  }

  /// Schedules [first, first+n_pages) of `area` for write-back when the
  /// operation finishes. Duplicate registrations are fine: FlushRun skips
  /// clean pages.
  void DeferFlush(AreaId area, PageId first, uint32_t n_pages) {
    deferred_.push_back({area, first, n_pages});
  }

  /// Flushes every deferred range (one sequential I/O call per maximal
  /// contiguous dirty run) and clears the context for reuse. On failure
  /// the remaining ranges are still attempted (best-effort durability),
  /// the first error is returned, and the context is cleared regardless:
  /// a context reused after a failed operation must not re-flush stale
  /// ranges or suppress legitimate shadowing of the next operation.
  [[nodiscard]] Status Finish() {
    Status first_error = Status::OK();
    for (const auto& d : deferred_) {
      Status s = pool_->FlushRun(d.area, d.first, d.pages);
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    Clear();
    return first_error;
  }

  /// Abandons the operation: drops the deferred ranges and shadow marks
  /// without writing anything. Call when an operation fails before its
  /// end-of-operation flush so a reused context starts clean.
  void Abort() { Clear(); }

  /// True while ranges are scheduled or pages are marked shadowed.
  bool has_pending() const {
    return !deferred_.empty() || !shadowed_.empty();
  }

  BufferPool* pool() const { return pool_; }

 private:
  struct Deferred {
    AreaId area;
    PageId first;
    uint32_t pages;
  };

  static uint64_t Key(AreaId area, PageId page) {
    return (static_cast<uint64_t>(area) << 32) | page;
  }

  void Clear() {
    deferred_.clear();
    shadowed_.clear();
  }

  BufferPool* pool_;
  std::unique_ptr<ScratchArena> own_;  ///< fallback when no arena is shared
  ScratchArena* arena_;
  ScratchArena::Mark mark_;
  ArenaVec<Deferred> deferred_;
  ArenaVec<uint64_t> shadowed_;
};

}  // namespace lob

#endif  // LOB_BUFFER_OP_CONTEXT_H_
