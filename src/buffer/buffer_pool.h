// BufferPool: the paper's hybrid buffering scheme for large objects (3.2).
//
// A small pool of page frames (12 pages in the study) backed by SimDisk.
// Single pages are fixed/unfixed with pin counts and an LRU policy that
// frees least-recently-used *clean* pages before dirty ones. Multi-block
// segments of up to `max_pool_segment_pages` (4 in the study) physically
// adjacent pages can be read into contiguous frames with one I/O call.
// Larger segments bypass the pool: byte ranges that do not match block
// boundaries use the 3-step I/O of Figure 4 — the partial first and last
// blocks travel through the pool, the full middle blocks move directly
// between disk and the caller's buffer.
//
// Writes mirror reads: small runs are written into frames, marked dirty and
// flushed by the caller at operation end (one sequential I/O call per
// contiguous dirty run); large runs go directly to disk in one call.
//
// Zero-copy contract: clean frames *borrow* the SimDisk page image instead
// of holding a private copy (Frame::borrow; page images are stable for the
// life of the disk). A frame materializes — copies the image into its pool
// slot — the moment a caller takes a mutable view (PageGuard::mutable_data
// or MarkDirty), so dirty content lives only in the pool until flushed and
// an injected fault can never leak unflushed bytes into the disk image.
// Invariant: a borrowing frame is never dirty. `StorageConfig::
// pool_zero_copy = false` materializes every fetch immediately (the
// differential tests run both modes and demand identical images and
// modeled costs). None of this changes the metered call sequence: borrow
// vs copy is a wall-clock concern only.

#ifndef LOB_BUFFER_BUFFER_POOL_H_
#define LOB_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/config.h"
#include "common/lock_order.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "buffer/page_table.h"
#include "iomodel/sim_disk.h"

namespace lob {

class BufferPool;
class ObsRegistry;

/// RAII pin on one page frame. Movable, not copyable; unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint32_t slot);
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }

  /// Read-only view of the page. May point directly at the disk image
  /// (borrowed frame); valid while the pin is held.
  const char* data() const;

  /// Mutable view of the page; materializes a borrowed frame first so
  /// writes land in the pool, not the disk image. Does not mark dirty —
  /// call MarkDirty once the modification is real.
  char* mutable_data();

  /// Marks the pinned page dirty (materializing it if borrowed); it will
  /// be written back on flush/eviction.
  void MarkDirty();

  /// Explicitly unpins; the guard becomes invalid.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t slot_ = 0;
};

/// How a page is fixed.
enum class FixMode {
  kRead,  ///< load from disk on miss
  kNew,   ///< do not load: caller will overwrite the whole page
};

/// Buffer pool over a SimDisk, the first latch point of the multi-client
/// serving arc (ROADMAP item 1): shared state is guarded by an annotated
/// reader-writer latch at LockRank::kBufferPool. Mutating entry points
/// (fix, segment I/O, flush, invalidate) take the writer side; pure
/// inspection (IsCached/IsDirty, counters, CachedPagesSorted, SaveState,
/// PageGuard::data) takes the reader side, so concurrent readers of a
/// warm pool never serialize on each other. The real work happens in
/// `*Locked` private helpers that statically require the latch
/// (LOB_REQUIRES_SHARED for const inspection, exclusive for mutation).
/// SimDisk I/O (and through it the obs/trace charging at ranks 40/50)
/// runs under the pool latch, which is why kBufferPool sits below
/// kObsRegistry/kTraceSession in the rank table. Frame pointers handed
/// out via PageGuard stay valid while the pin is held — the pin, not the
/// latch, is the lifetime contract.
class BufferPool {
 public:
  BufferPool(SimDisk* disk, const StorageConfig& config);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins `page` of `area` in the pool. With kRead the page is fetched on a
  /// miss (one 1-page I/O call); with kNew the frame is zero-initialized.
  [[nodiscard]]
  StatusOr<PageGuard> FixPage(AreaId area, PageId page, FixMode mode)
      LOB_EXCLUDES(mu_);

  /// Reads `n_bytes` starting `byte_off` bytes into the segment that begins
  /// at page `seg_first`, into `dst`, applying the hybrid policy above.
  /// `seg_valid_bytes` is the number of meaningful bytes in the segment
  /// (bytes past it read as zero without validation).
  [[nodiscard]] Status ReadSegmentRange(AreaId area, PageId seg_first,
                          uint64_t seg_valid_bytes, uint64_t byte_off,
                          uint64_t n_bytes, char* dst) LOB_EXCLUDES(mu_);

  /// Writes `n_bytes` at `byte_off` into the segment starting at
  /// `seg_first`. Boundary pages that intersect `seg_valid_bytes` and are
  /// only partially overwritten are read-modified-written; pages entirely
  /// past the valid bytes are not read. Small runs stay dirty in the pool
  /// (flush with FlushRun at operation end); large runs are written to disk
  /// immediately in one call.
  [[nodiscard]] Status WriteSegmentRange(AreaId area, PageId seg_first,
                           uint64_t seg_valid_bytes, uint64_t byte_off,
                           uint64_t n_bytes, const char* src)
      LOB_EXCLUDES(mu_);

  /// Writes `n_bytes` into a freshly allocated segment starting at `first`
  /// with a single I/O call, bypassing the pool (zero-padding the last
  /// page). Cached copies of the covered pages are refreshed. Use for
  /// shadow copies and newly created segments: "copy, update, flush" with
  /// one sequential write (paper 3.3/3.4).
  [[nodiscard]]
  Status WriteFreshSegment(AreaId area, PageId first, const char* data,
                           uint64_t n_bytes) LOB_EXCLUDES(mu_);

  /// Writes back every dirty cached page in [first, first+n_pages) using one
  /// I/O call per maximal contiguous dirty run; pages stay cached clean.
  [[nodiscard]] Status FlushRun(AreaId area, PageId first, uint32_t n_pages)
      LOB_EXCLUDES(mu_);

  /// Writes back all dirty pages (one call per page run per area).
  [[nodiscard]] Status FlushAll() LOB_EXCLUDES(mu_);

  /// Drops cached copies of [first, first+n_pages): dirty pages are *not*
  /// written back (their content is superseded); pinned pages are an error.
  [[nodiscard]] Status Invalidate(AreaId area, PageId first, uint32_t n_pages)
      LOB_EXCLUDES(mu_);

  /// True if the page currently resides in the pool.
  bool IsCached(AreaId area, PageId page) const LOB_EXCLUDES(mu_);
  bool IsDirty(AreaId area, PageId page) const LOB_EXCLUDES(mu_);

  uint32_t pool_pages() const { return config_.buffer_pool_pages; }
  uint32_t page_size() const { return config_.page_size; }
  SimDisk* disk() const { return disk_; }

  /// Number of FixPage calls served without disk I/O (for tests/metrics).
  uint64_t hits() const LOB_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return hits_;
  }
  uint64_t misses() const LOB_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return misses_;
  }
  /// Number of valid frames evicted to make room (dirty or clean).
  uint64_t evictions() const LOB_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return evictions_;
  }

  /// Copies the pool counters into `obs` as the `pool.fix_hits`,
  /// `pool.fix_misses` and `pool.evictions` counters (overwriting, not
  /// accumulating, so repeated exports stay idempotent). The counters
  /// live here as plain fields to keep FixPage off the registry's map
  /// lookups; exporters call this at snapshot time instead.
  void PublishCounters(ObsRegistry* obs) const LOB_EXCLUDES(mu_);

  /// One entry of the ordered cached-page enumeration below.
  struct CachedPage {
    AreaId area = 0;
    PageId page = kInvalidPage;
    bool dirty = false;

    bool operator==(const CachedPage& o) const {
      return area == o.area && page == o.page && dirty == o.dirty;
    }
  };

  /// Ordered enumeration of the cached pages, sorted by (area, page).
  ///
  /// This is the only sanctioned way to walk the pool's contents for
  /// stats/timeline/trace output: the internal lookup table is an
  /// open-addressing hash table whose bucket order is hash- and history-
  /// dependent, so enumerating it directly would leak nondeterministic
  /// ordering into exporters (tools/lob_lint.py rule LOB002/unordered-iter
  /// rejects such iteration; the buffer_pool_test permutation test pins
  /// this function's insertion-order independence).
  std::vector<CachedPage> CachedPagesSorted() const LOB_EXCLUDES(mu_);

 private:
  friend class PageGuard;

  struct Frame {
    AreaId area = 0;
    PageId page = kInvalidPage;
    /// Borrowed disk page image backing a clean frame; nullptr when the
    /// frame's pool slot holds the bytes. Never set while dirty.
    const char* borrow = nullptr;
    bool valid = false;
    bool dirty = false;
    uint32_t pins = 0;
    uint64_t lru = 0;
  };

  char* SlotData(uint32_t slot) LOB_REQUIRES(mu_) {
    return arena_.data() + static_cast<size_t>(slot) * config_.page_size;
  }
  const char* SlotData(uint32_t slot) const LOB_REQUIRES_SHARED(mu_) {
    return arena_.data() + static_cast<size_t>(slot) * config_.page_size;
  }

  /// The frame's current bytes: the borrowed image or the pool slot.
  const char* FrameDataLocked(uint32_t slot) const LOB_REQUIRES_SHARED(mu_) {
    const Frame& f = frames_[slot];
    return f.borrow != nullptr ? f.borrow : SlotData(slot);
  }

  /// Copies a borrowed image into the frame's pool slot (no-op when
  /// already materialized) and returns the now-private slot bytes.
  char* MaterializeSlotLocked(uint32_t slot) LOB_REQUIRES(mu_);

  static uint64_t Key(AreaId area, PageId page) {
    return (static_cast<uint64_t>(area) << 32) | page;
  }

  int FindSlot(AreaId area, PageId page) const LOB_REQUIRES_SHARED(mu_);

  /// Core of FixPage: pins (area, page) and returns its slot. The public
  /// wrapper turns the slot into a PageGuard; segment-range internals use
  /// the slot directly (paired with UnpinLocked) so they can fix pages
  /// without dropping and re-taking the pool latch.
  [[nodiscard]]
  StatusOr<uint32_t> FixSlotLocked(AreaId area, PageId page, FixMode mode)
      LOB_REQUIRES(mu_);

  /// Picks a victim frame (unpinned; clean preferred, then LRU), writing a
  /// dirty victim back. Returns slot or error if everything is pinned.
  [[nodiscard]] StatusOr<uint32_t> GetFreeSlot() LOB_REQUIRES(mu_);

  /// Evicts whatever lives in `slot` (must be unpinned), flushing if dirty.
  [[nodiscard]] Status EvictSlot(uint32_t slot) LOB_REQUIRES(mu_);

  /// Flushes (if dirty) and drops any cached pages within the range.
  /// Fails if one of them is pinned.
  [[nodiscard]]
  Status FlushAndDropRange(AreaId area, PageId first, uint32_t n_pages)
      LOB_REQUIRES(mu_);

  [[nodiscard]]
  Status FlushRunLocked(AreaId area, PageId first, uint32_t n_pages)
      LOB_REQUIRES(mu_);

  void UnpinLocked(uint32_t slot) LOB_REQUIRES(mu_);
  void Unpin(uint32_t slot) LOB_EXCLUDES(mu_);

  /// Pool latch (LockRank::kBufferPool), reader-writer. `mutable` so
  /// const inspection entry points (IsCached, CachedPagesSorted,
  /// SaveState, counters) can take the shared side.
  mutable SharedMutex mu_{LockRank::kBufferPool};
  SimDisk* const disk_;
  const StorageConfig config_;
  std::vector<char> arena_ LOB_GUARDED_BY(mu_);
  std::vector<Frame> frames_ LOB_GUARDED_BY(mu_);
  PageTable map_ LOB_GUARDED_BY(mu_);
  /// Staging for run I/O gather/scatter arrays.
  ScratchArena scratch_ LOB_GUARDED_BY(mu_);
  uint64_t tick_ LOB_GUARDED_BY(mu_) = 0;
  uint64_t hits_ LOB_GUARDED_BY(mu_) = 0;
  uint64_t misses_ LOB_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ LOB_GUARDED_BY(mu_) = 0;

 public:
  /// Opaque snapshot of the cached state: page contents, frame table,
  /// lookup map, LRU clock and hit/miss counters. Audit walks (e.g.
  /// timeline sampling, which reads index pages through the pool inside
  /// an UnmeteredSection) bracket themselves with SaveState/RestoreState
  /// so inspecting storage state cannot perturb the eviction order — and
  /// therefore the measured cost — of the operations that follow. Both
  /// calls require every frame to be unpinned. Borrowed frames snapshot
  /// by pointer: page images never move or disappear, and a read-only
  /// walk can only write a page image by evicting a dirty frame for it —
  /// which cannot coexist with a borrowed frame for the same page.
  struct State {
   private:
    friend class BufferPool;
    std::vector<char> arena;
    std::vector<Frame> frames;
    PageTable map;
    uint64_t tick = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  State SaveState() const LOB_EXCLUDES(mu_);
  void RestoreState(const State& state) LOB_EXCLUDES(mu_);
};

}  // namespace lob

#endif  // LOB_BUFFER_BUFFER_POOL_H_
