// ObsRegistry: per-operation I/O attribution and general-purpose metrics.
//
// The paper's methodology is per-operation modeled I/O cost (one 33 ms seek
// per I/O call plus 4 ms per 4K page, 4.1). The registry turns that from a
// hand-subtracted global counter into an attributed ledger: an OpScope (see
// op_scope.h) tags the current logical operation ("esm.append",
// "eos.insert", ...) on the SimDisk, and every metered Read/Write call is
// charged to exactly one operation label. I/O issued outside any scope is
// charged to kUnattributed, so the conservation invariant
//
//   sum over labels of attributed IoStats == SimDisk global IoStats
//
// holds at every point outside an UnmeteredSection (tests/obs_test.cc
// enforces it across a mixed workload for all three engines).
//
// Besides attribution the registry keeps named monotonic counters and
// log2-bucketed histograms (per-op modeled ms, seeks and pages transferred
// are recorded by OpScope), and exports everything as JSON or CSV for the
// bench harness and `lobtool stats`.

#ifndef LOB_OBS_OBS_REGISTRY_H_
#define LOB_OBS_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"
#include "iomodel/io_stats.h"

namespace lob {

/// Power-of-two bucketed histogram of non-negative integer samples.
/// Bucket 0 holds value 0; bucket i >= 1 holds values in [2^(i-1), 2^i).
///
/// Samples are integer modeled units (ms, seeks, pages), so the running
/// sum accumulates in uint64_t — exact for any count, where a double
/// would silently round once the sum crosses 2^53.
class Histogram {
 public:
  static constexpr int kBuckets = 34;  // 0 plus exponents up to 2^32 and over
  /// Linear sub-buckets per log2 bucket in the opt-in high-resolution
  /// mode (EnableSubBuckets); tightens quantile interpolation error from
  /// ~bucket-width to ~bucket-width/16.
  static constexpr int kSubBuckets = 16;

  void Add(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  uint64_t bucket(int i) const { return buckets_[i]; }

  /// Opts this histogram into fixed-resolution sub-bucket tracking
  /// (kSubBuckets linear sub-buckets per log2 bucket). Must be called
  /// before the first sample; a late call is ignored so existing samples
  /// can never be inconsistent with the sub-bucket table.
  void EnableSubBuckets();
  bool sub_buckets_enabled() const { return !sub_.empty(); }

  /// Interpolated quantile, q in [0, 1] (clamped). Uses the continuous
  /// rank q*(count-1); interpolates linearly inside the containing log2
  /// bucket (or linear sub-bucket when enabled) and clamps the result to
  /// [min, max], so q=0, q=1 and single-sample histograms are exact.
  /// Returns 0 on an empty histogram. Deterministic: pure integer/IEEE
  /// arithmetic over the bucket table.
  double Quantile(double q) const;

  /// Adds every sample of `other` into this histogram. Sub-bucket
  /// resolution survives the merge only when both sides carry it (or one
  /// side is empty); a coarse-only side degrades the merged histogram to
  /// log2 resolution.
  void MergeFrom(const Histogram& other);

  /// Bucket a value falls into.
  static int BucketIndex(uint64_t value);

  /// Smallest value belonging to bucket `i`.
  static uint64_t BucketLowerBound(int i);

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  /// kBuckets * kSubBuckets linear sub-bucket counts; empty = disabled.
  std::vector<uint64_t> sub_;
};

/// Named counters, histograms and the per-operation I/O ledger.
///
/// Locking: the mutating entry points used on the measurement path
/// (AttributeCall/AttributeTo/RecordOpEnd) and the exporters take the
/// registry latch (LockRank::kObsRegistry — above the pool latch, since
/// SimDisk charges the ledger while BufferPool holds rank 30). The
/// reference-returning accessors (Counter, Histo, ops(), ...) are
/// thread-*compatible*, not thread-safe: they hand out pointers into
/// guarded maps for single-threaded setup and quiesced export phases, and
/// are marked LOB_UNLOCKED_ACCESS with that contract.
class ObsRegistry {
 public:
  /// Label charged for I/O issued outside any OpScope.
  static constexpr const char* kUnattributed = "(unattributed)";

  /// Attribution ledger entry for one operation label.
  struct OpRecord {
    uint64_t count = 0;  ///< finished operations (OpScope destructions)
    IoStats io;          ///< I/O charged to the label by SimDisk
  };

  /// Named monotonic counter (created on first use). Thread-compatible
  /// accessor: the returned reference escapes the latch, so callers must
  /// be single-threaded with respect to this registry (setup, per-worker
  /// registries, quiesced export).
  uint64_t& Counter(const std::string& name) LOB_UNLOCKED_ACCESS {
    return counters_[name];
  }

  /// When set, per-op `.ms` histograms created from here on opt into
  /// fixed-resolution sub-buckets (see Histogram::EnableSubBuckets) for
  /// tighter tail quantiles. Off by default: 34*16 extra counters per
  /// label are only worth it when percentile precision matters.
  void set_high_res_op_histograms(bool v) LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    high_res_ops_ = v;
  }
  bool high_res_op_histograms() const LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return high_res_ops_;
  }

  /// Named histogram (created on first use). Thread-compatible accessor —
  /// same escaping-reference contract as Counter().
  Histogram& Histo(const std::string& name) LOB_UNLOCKED_ACCESS {
    return histograms_[name];
  }

  /// Charges one metered I/O call to `label`. Called by SimDisk.
  void AttributeCall(const char* label, const IoStats& call)
      LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ops_[label].io += call;
  }

  /// Charges one metered I/O call to a cached ledger record — SimDisk's
  /// hot path (one latched add per call, no map lookup). Runs under the
  /// BufferPool latch (rank 30), which is why kObsRegistry ranks above it.
  void AttributeTo(OpRecord* rec, const IoStats& call) LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    rec->io += call;
  }

  /// Ledger record for `label` (created on first use). SimDisk caches the
  /// returned pointer for the duration of an operation so attribution is
  /// one map lookup per op instead of one per metered call; the pointer is
  /// map-node-stable until the ledger is reset, which bumps the generation
  /// below. Charge through AttributeTo, not the raw pointer.
  OpRecord* AttributionRecord(const char* label) LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return &ops_[label];
  }

  /// Incremented whenever the ledger is cleared; invalidates cached
  /// AttributionRecord pointers.
  uint64_t attribution_generation() const LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return attr_gen_;
  }

  /// Records the end of one operation: bumps the label's count and feeds
  /// the per-op histograms (<label>.ms / .seeks / .pages). `op_delta` is
  /// the global-IoStats delta across the operation (nested scopes
  /// included). With `record_queue` set (OpScope passes the disk's
  /// queue-model flag) the op's modeled queueing delay additionally feeds
  /// a <label>.queue_ms histogram — queue-disabled runs create no such
  /// histograms, keeping their export bytes unchanged. Called by OpScope.
  void RecordOpEnd(const char* label, const IoStats& op_delta,
                   bool record_queue = false) LOB_EXCLUDES(mu_);

  /// Thread-compatible map views (escaping references; quiesced readers
  /// only — exporters, tests, post-join aggregation).
  const std::map<std::string, OpRecord>& ops() const LOB_UNLOCKED_ACCESS {
    return ops_;
  }
  const std::map<std::string, uint64_t>& counters() const
      LOB_UNLOCKED_ACCESS {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const
      LOB_UNLOCKED_ACCESS {
    return histograms_;
  }

  /// Sum of attributed I/O over every label (the conservation invariant
  /// compares this against the SimDisk global stats).
  IoStats AttributedTotal() const LOB_EXCLUDES(mu_);

  /// True when the attributed total matches `global` exactly (counters) and
  /// within rounding (modeled ms).
  bool ConservationHolds(const IoStats& global) const LOB_EXCLUDES(mu_);

  /// Drops the attribution ledger only (SimDisk::ResetStats calls this so
  /// the conservation invariant survives stats resets). Counters and
  /// histograms are kept: they are observability, not conservation state.
  void ResetAttribution() LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ops_.clear();
    op_end_memo_.clear();
    ++attr_gen_;
  }

  /// Adds another registry's ledger, counters and histograms into this
  /// one (counts and I/O accumulate; histograms MergeFrom). Used to
  /// aggregate per-cell registries into one suite-level view.
  /// Analysis off: `other` must be quiesced (its workers joined) — the
  /// same-rank kObsRegistry latch cannot be taken twice, so the source
  /// side is read without locking by contract.
  void MergeFrom(const ObsRegistry& other) LOB_NO_THREAD_SAFETY_ANALYSIS;

  /// Drops everything.
  void Reset() LOB_EXCLUDES(mu_);

  /// Exports ops, counters and histograms as a JSON object.
  std::string ToJson() const LOB_EXCLUDES(mu_);

  /// Exports the per-op ledger as CSV
  /// (label,count,read_calls,write_calls,pages_read,pages_written,seeks,pages,ms).
  std::string ToCsv() const LOB_EXCLUDES(mu_);

 private:
  /// Histo() under the latch (RecordOpEnd resolves label destinations).
  Histogram& HistoLocked(const std::string& name) LOB_REQUIRES(mu_) {
    return histograms_[name];
  }

  /// Resolved destinations of one label's RecordOpEnd: the ledger record
  /// plus the three per-op histograms. All pointers are map-node-stable;
  /// the memo is cleared whenever ops_ is (Reset/ResetAttribution).
  struct OpEndEntry {
    OpRecord* rec = nullptr;
    Histogram* ms = nullptr;
    Histogram* seeks = nullptr;
    Histogram* pages = nullptr;
    Histogram* queue = nullptr;  ///< resolved lazily, queue-model runs only
  };

  /// Registry latch (LockRank::kObsRegistry); mutable for const
  /// exporters and generation reads.
  mutable Mutex mu_{LockRank::kObsRegistry};
  std::map<std::string, OpRecord> ops_ LOB_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> counters_ LOB_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ LOB_GUARDED_BY(mu_);
  std::map<std::string, OpEndEntry, std::less<>> op_end_memo_
      LOB_GUARDED_BY(mu_);
  uint64_t attr_gen_ LOB_GUARDED_BY(mu_) = 0;
  bool high_res_ops_ LOB_GUARDED_BY(mu_) = false;
};

}  // namespace lob

#endif  // LOB_OBS_OBS_REGISTRY_H_
