// OpScope: RAII tag for per-operation I/O attribution and op-span tracing.
//
// A manager entry point constructs an OpScope naming the logical operation
// ("<engine>.<op>", e.g. "esm.append"). While the scope is alive, every
// metered SimDisk Read/Write call — including buffer pool misses,
// evictions and the deferred end-of-operation flushes issued through
// OpContext::Finish — is charged to that label in the disk's ObsRegistry.
// On destruction the scope records the operation's total modeled ms, seeks
// and pages transferred into the registry's log2 histograms.
//
// Scopes nest with explicit child labels: when an operation delegates to
// another entry point (e.g. Insert calling Append at the end of the
// object), the inner scope's effective label is "<outer>.<inner>"
// ("esm.insert.esm.append"), so the inner work is visibly attributed to
// its call path instead of silently merging into the outer label or
// masquerading as a top-level operation. Every I/O call is still charged
// to exactly one — the innermost — label, so the conservation invariant
// (sum of attributed stats == global stats) holds regardless of nesting,
// and the outer scope's histograms still cover the full operation.
//
// When a TraceSession is attached to the disk (LOB_TRACING builds), the
// scope also brackets the operation with a kOp span carrying the same
// effective label the ledger charges, which is what lets the span<->op
// conservation invariant (sum of child disk.io span ms == attributed ms)
// be checked label by label.

#ifndef LOB_OBS_OP_SCOPE_H_
#define LOB_OBS_OP_SCOPE_H_

#include <cstring>
#include <memory>
#include <string>

#include "iomodel/sim_disk.h"
#include "obs/obs_registry.h"
#include "trace/trace_session.h"
#include "trace/tracing.h"

namespace lob {

/// Tags `disk`'s current operation for the lifetime of the scope.
class OpScope {
 public:
  /// `label` must outlive the scope; use string literals.
  OpScope(SimDisk* disk, const char* label)
      : disk_(disk), prev_(disk->current_op()), start_(disk->stats()) {
    if (prev_ != nullptr) {
      // Nested scope: compose the call path into the effective label.
      // Composition happens once per op on the hot path, so the common
      // case lands in the inline buffer; only pathologically deep
      // nesting pays for heap backing.
      const size_t prev_len = std::char_traits<char>::length(prev_);
      const size_t label_len = std::char_traits<char>::length(label);
      const size_t total = prev_len + 1 + label_len;
      char* buf = inline_buf_;
      if (total + 1 > sizeof(inline_buf_)) {
        heap_buf_ = std::make_unique<char[]>(total + 1);
        buf = heap_buf_.get();
      }
      std::memcpy(buf, prev_, prev_len);
      buf[prev_len] = '.';
      std::memcpy(buf + prev_len + 1, label, label_len);
      buf[total] = '\0';
      label_ = buf;
    } else {
      label_ = label;
    }
    disk_->set_current_op(label_);
#if LOB_TRACING
    if (TraceSession* t = disk_->active_trace()) {
      session_ = t;
      span_ = t->BeginSpan(label_, SpanKind::kOp, start_.ms);
    }
#endif
  }

  ~OpScope() {
    disk_->set_current_op(prev_);
#if LOB_TRACING
    if (session_ != nullptr) session_->EndSpan(span_, disk_->stats().ms);
#endif
    ObsRegistry* obs = disk_->obs();
    if (obs == nullptr) return;
    obs->RecordOpEnd(label_, IoStats::Delta(start_, disk_->stats()),
                     /*record_queue=*/disk_->queue_enabled());
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Effective (possibly composed) label this scope attributes to.
  const char* label() const { return label_; }

 private:
  SimDisk* disk_;
  const char* label_;
  const char* prev_;
  /// Backing store for nested "parent.child" labels: inline for typical
  /// depths, heap only when the composed path outgrows the buffer.
  char inline_buf_[128];
  std::unique_ptr<char[]> heap_buf_;
  IoStats start_;
#if LOB_TRACING
  TraceSession* session_ = nullptr;
  size_t span_ = 0;
#endif
};

}  // namespace lob

#endif  // LOB_OBS_OP_SCOPE_H_
