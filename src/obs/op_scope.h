// OpScope: RAII tag for per-operation I/O attribution.
//
// A manager entry point constructs an OpScope naming the logical operation
// ("<engine>.<op>", e.g. "esm.append"). While the scope is alive, every
// metered SimDisk Read/Write call — including buffer pool misses,
// evictions and the deferred end-of-operation flushes issued through
// OpContext::Finish — is charged to that label in the disk's ObsRegistry.
// On destruction the scope records the operation's total modeled ms, seeks
// and pages transferred into the registry's log2 histograms.
//
// Scopes nest: an inner scope (e.g. Insert delegating to Append at the end
// of the object) takes over attribution for its duration, so every I/O
// call is charged to exactly one — the innermost — operation, and the
// conservation invariant (sum of attributed stats == global stats) holds
// regardless of nesting. The outer scope's histograms still cover the full
// operation, nested work included.

#ifndef LOB_OBS_OP_SCOPE_H_
#define LOB_OBS_OP_SCOPE_H_

#include "iomodel/sim_disk.h"
#include "obs/obs_registry.h"

namespace lob {

/// Tags `disk`'s current operation for the lifetime of the scope.
class OpScope {
 public:
  /// `label` must outlive the scope; use string literals.
  OpScope(SimDisk* disk, const char* label)
      : disk_(disk),
        label_(label),
        prev_(disk->current_op()),
        start_(disk->stats()) {
    disk_->set_current_op(label_);
  }

  ~OpScope() {
    disk_->set_current_op(prev_);
    ObsRegistry* obs = disk_->obs();
    if (obs == nullptr) return;
    obs->RecordOpEnd(label_, IoStats::Delta(start_, disk_->stats()));
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  SimDisk* disk_;
  const char* label_;
  const char* prev_;
  IoStats start_;
};

}  // namespace lob

#endif  // LOB_OBS_OP_SCOPE_H_
