// Cross-run regression analysis over two BENCH_*.json profiles (or any
// pair of JSON documents with numeric leaves).
//
// Both documents are flattened to dotted metric paths
// ("metrics.cells_per_sec", "metrics_snapshot.ops.esm.append.p99_ms",
// array elements by index), every numeric leaf present in either side
// becomes one row with absolute and relative delta, and each row is
// classified regression / improvement / neutral from the metric's
// direction (gated direction wins; otherwise a name heuristic: *_ms /
// misses / evictions / fired are lower-better, *per_sec / hits /
// hit_rate / utilization are higher-better). An optional gate file
//
//   {"gates": [{"name": "cell-throughput",
//               "metric": "metrics.cells_per_sec",
//               "direction": "higher",        // or "lower"
//               "max_regression": 0.20}]}
//
// turns the report into a CI gate: a gated metric moving against its
// direction by more than max_regression is a violation, and a gate
// pattern ('*' matches any characters, dots included) matching no
// metric at all is a violation too — a gate that silently stops
// matching is a rotted gate, not a passing one.
//
// A gate may additionally set "report_only": true. Such a gate is
// evaluated exactly like an enforcing one, but everything it would flag
// (regressions, metrics missing from one side, a pattern matching
// nothing) lands in notes() instead of violations(), so it never fails
// CI. This is the on-ramp for metrics that newer runs emit but the
// pinned baseline predates — e.g. the queue-wait percentiles the
// concurrency model added — until the baseline is refreshed and the
// gate can be promoted to enforcing.
//
// Wall-clock metrics (*wall_ms*, *_per_sec, host fields) differ between
// runs on real hardware; modeled metrics are deterministic. Diffing a
// run against itself therefore reports zero drift on every row, which
// tests/lobtool_test.sh pins. All output iterates sorted containers
// (LOB002): byte-identical report for byte-identical inputs.

#ifndef LOB_OBS_BENCH_DIFF_H_
#define LOB_OBS_BENCH_DIFF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace lob {

/// Flattens every numeric leaf of `v` into dotted paths under `prefix`.
/// Booleans count as 0/1 numerics; strings and nulls are skipped.
void FlattenJsonNumbers(const JsonValue& v, const std::string& prefix,
                        std::map<std::string, double>* out);

/// Glob match where '*' matches any run of characters (including '.')
/// and '?' any single character. No character classes.
bool GlobMatch(const std::string& pattern, const std::string& text);

/// The drift report.
class BenchDiff {
 public:
  enum class Direction { kHigherBetter, kLowerBetter, kUnknown };
  enum class Class { kNeutral, kImprovement, kRegression };

  struct Row {
    std::string metric;
    bool in_a = false, in_b = false;
    double a = 0, b = 0;
    double abs_delta = 0;  ///< b - a
    double rel_delta = 0;  ///< (b - a) / |a|; capped at +/-999.999 when a==0
    Direction direction = Direction::kUnknown;
    Class cls = Class::kNeutral;
    bool gated = false;
    bool violation = false;
    std::string gate_name;  ///< name of the matching gate, if any
  };

  /// Compares two parsed documents. `gates` may be null (report only).
  /// `neutral_band` is the fractional |rel delta| below which a known-
  /// direction metric still classifies as neutral (default 1%).
  static StatusOr<BenchDiff> Compare(const JsonValue& a, const JsonValue& b,
                                     const JsonValue* gates,
                                     double neutral_band = 0.01);

  const std::vector<Row>& rows() const { return rows_; }  ///< sorted by metric
  int gates_checked() const { return gates_checked_; }
  const std::vector<std::string>& violations() const { return violations_; }
  /// Findings from report_only gates: same wording as violations, but
  /// informational — they never make HasViolations() true.
  const std::vector<std::string>& notes() const { return notes_; }
  bool HasViolations() const { return !violations_.empty(); }
  /// True when every row has abs_delta == 0 (a run diffed against itself).
  bool ZeroDrift() const;

  /// Human-readable table plus a summary line.
  std::string ToTable() const;
  /// metric,in_a,in_b,a,b,abs_delta,rel_delta,class,gate,violation
  std::string ToCsv() const;
  /// Full machine-readable report.
  std::string ToJson() const;

  static const char* ClassName(Class c);

 private:
  std::vector<Row> rows_;
  int gates_checked_ = 0;
  std::vector<std::string> violations_;
  std::vector<std::string> notes_;
};

}  // namespace lob

#endif  // LOB_OBS_BENCH_DIFF_H_
