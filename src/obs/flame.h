// Hierarchical cost attribution: rolls the flat per-op ledger
// (ObsRegistry::ops()) up into a tree using the OpScope label grammar.
//
// Nested OpScopes compose labels with '.' — an append issued inside an
// insert is charged to "esm.insert.esm.append", never double-counted
// against the parent "esm.insert" (SimDisk charges each metered call to
// the innermost scope only). That makes every ledger entry an
// *exclusive* (self) cost, and the label set a prefix code: the parent
// of label L is the longest other observed label P with L == P + "." +
// anything. FlameGraph::Build reconstructs that tree, so
//
//   node.TotalMs() == node.self_ms + sum over children of TotalMs()
//
// and the sum of TotalMs over the roots equals the ledger-wide total —
// the span <-> ledger conservation invariant, checked per node by
// CheckConservation against TraceSession::IoMsByOp() (which attributes
// disk.io spans to the nearest enclosing op span, i.e. reconstructs the
// same exclusive costs from the trace side).
//
// ToFolded() emits the classic folded-stack text ("a;b;c <count>\n",
// one line per node, integer modeled microseconds) consumed by
// speedscope, inferno and flamegraph.pl. Output iterates sorted maps
// only: byte-identical for any --jobs.

#ifndef LOB_OBS_FLAME_H_
#define LOB_OBS_FLAME_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/obs_registry.h"

namespace lob {

/// One node of the rolled-up label tree.
struct FlameNode {
  std::string label;    ///< full ledger label ("esm.insert.esm.append")
  uint64_t count = 0;   ///< finished operations recorded under the label
  double self_ms = 0;   ///< exclusive modeled ms (the ledger entry)
  IoStats self_io;      ///< exclusive I/O charged to the label
  /// Children keyed by their label suffix relative to this node
  /// ("esm.append" for the example above).
  std::map<std::string, FlameNode> children;

  /// Inclusive modeled ms: self plus all descendants.
  double TotalMs() const;
};

/// The rolled-up tree plus its exporters and conservation checks.
class FlameGraph {
 public:
  /// Builds the tree from the registry's attribution ledger. The
  /// kUnattributed pseudo-label becomes its own root when present.
  static FlameGraph Build(const ObsRegistry& obs);

  const std::map<std::string, FlameNode>& roots() const { return roots_; }

  /// Sum of inclusive cost over all roots == ledger-wide attributed ms.
  double TotalMs() const;

  /// Folded-stack text: one "path;to;node <microseconds>\n" line per
  /// node with nonzero exclusive cost, in sorted label order.
  std::string ToFolded() const;

  /// Result of a conservation check.
  struct Check {
    bool ok = true;
    std::vector<std::string> problems;  ///< human-readable, sorted order
  };

  /// Structural invariant: for every node, inclusive cost >= the sum of
  /// its children's inclusive costs (equivalently self_ms >= 0), and the
  /// roots' inclusive total equals `ledger_total_ms` within rounding.
  Check CheckStructure(double ledger_total_ms) const;

  /// Span <-> ledger conservation: for every node, the exclusive ledger
  /// ms must match the disk.io span ms attributed to the same label by
  /// TraceSession::IoMsByOp(). Labels seen by only one side are
  /// violations (a cost that exists in the ledger but not the trace, or
  /// vice versa, is unaccounted time).
  Check CheckConservation(const std::map<std::string, double>& span_io_ms) const;

 private:
  std::map<std::string, FlameNode> roots_;
};

}  // namespace lob

#endif  // LOB_OBS_FLAME_H_
