#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "common/csv.h"

namespace lob {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Direction heuristic from the metric name (used when no gate covers
/// the metric). Wall-clock throughput and hit counters are higher-
/// better; latencies, misses and failure counters are lower-better.
BenchDiff::Direction GuessDirection(const std::string& metric) {
  if (metric.find("per_sec") != std::string::npos ||
      EndsWith(metric, "hits") || EndsWith(metric, "hit_rate") ||
      EndsWith(metric, "utilization")) {
    return BenchDiff::Direction::kHigherBetter;
  }
  if (EndsWith(metric, "_ms") || EndsWith(metric, ".ms") ||
      EndsWith(metric, "misses") || EndsWith(metric, "evictions") ||
      EndsWith(metric, "fired")) {
    return BenchDiff::Direction::kLowerBetter;
  }
  return BenchDiff::Direction::kUnknown;
}

const char* DirectionName(BenchDiff::Direction d) {
  switch (d) {
    case BenchDiff::Direction::kHigherBetter: return "higher";
    case BenchDiff::Direction::kLowerBetter: return "lower";
    case BenchDiff::Direction::kUnknown: return "unknown";
  }
  return "unknown";
}

struct Gate {
  std::string name;
  std::string pattern;
  BenchDiff::Direction direction = BenchDiff::Direction::kUnknown;
  double max_regression = 0.0;
  bool report_only = false;
  int matched = 0;
};

}  // namespace

void FlattenJsonNumbers(const JsonValue& v, const std::string& prefix,
                        std::map<std::string, double>* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNumber:
      (*out)[prefix] = v.as_number();
      break;
    case JsonValue::Kind::kBool:
      (*out)[prefix] = v.as_bool() ? 1.0 : 0.0;
      break;
    case JsonValue::Kind::kArray: {
      size_t i = 0;
      for (const auto& elem : v.as_array()) {
        FlattenJsonNumbers(elem, prefix + "." + std::to_string(i), out);
        ++i;
      }
      break;
    }
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : v.as_object()) {
        FlattenJsonNumbers(member, prefix.empty() ? key : prefix + "." + key,
                           out);
      }
      break;
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString:
      break;
  }
}

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative glob with single-star backtracking.
  size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

StatusOr<BenchDiff> BenchDiff::Compare(const JsonValue& a, const JsonValue& b,
                                       const JsonValue* gates,
                                       double neutral_band) {
  std::map<std::string, double> flat_a;
  std::map<std::string, double> flat_b;
  FlattenJsonNumbers(a, "", &flat_a);
  FlattenJsonNumbers(b, "", &flat_b);

  std::vector<Gate> parsed_gates;
  if (gates != nullptr) {
    const JsonValue* list = gates->Find("gates");
    if (list == nullptr || !list->is_array()) {
      return Status::InvalidArgument(
          "gate file has no top-level \"gates\" array");
    }
    for (const auto& g : list->as_array()) {
      Gate gate;
      gate.pattern = g.StringOr("metric", "");
      if (gate.pattern.empty()) {
        return Status::InvalidArgument("gate entry missing \"metric\"");
      }
      gate.name = g.StringOr("name", gate.pattern);
      const std::string dir = g.StringOr("direction", "");
      if (dir == "higher") {
        gate.direction = Direction::kHigherBetter;
      } else if (dir == "lower") {
        gate.direction = Direction::kLowerBetter;
      } else {
        return Status::InvalidArgument("gate " + gate.name +
                                       ": direction must be "
                                       "\"higher\" or \"lower\"");
      }
      gate.max_regression = g.NumberOr("max_regression", 0.0);
      if (gate.max_regression < 0) {
        return Status::InvalidArgument("gate " + gate.name +
                                       ": negative max_regression");
      }
      gate.report_only = g.BoolOr("report_only", false);
      parsed_gates.push_back(gate);
    }
  }

  // Union of metric paths, sorted (both inputs are sorted maps).
  std::map<std::string, int> all;
  for (const auto& [k, v] : flat_a) all[k] |= 1;
  for (const auto& [k, v] : flat_b) all[k] |= 2;

  BenchDiff d;
  for (const auto& [metric, mask] : all) {
    Row row;
    row.metric = metric;
    row.in_a = (mask & 1) != 0;
    row.in_b = (mask & 2) != 0;
    row.a = row.in_a ? flat_a[metric] : 0.0;
    row.b = row.in_b ? flat_b[metric] : 0.0;
    row.abs_delta = row.b - row.a;
    if (row.a != 0.0) {
      row.rel_delta = row.abs_delta / std::fabs(row.a);
    } else {
      row.rel_delta = row.abs_delta == 0.0
                          ? 0.0
                          : (row.abs_delta > 0 ? 999.999 : -999.999);
    }
    row.direction = GuessDirection(metric);

    for (auto& gate : parsed_gates) {
      if (!GlobMatch(gate.pattern, metric)) continue;
      ++gate.matched;
      ++d.gates_checked_;
      row.gated = true;
      row.gate_name = gate.name;
      row.direction = gate.direction;
      if (!row.in_a || !row.in_b) {
        const std::string msg =
            "gate " + gate.name + ": metric " + metric +
            (row.in_a ? " missing from new run" : " missing from baseline");
        if (gate.report_only) {
          d.notes_.push_back(msg);
        } else {
          row.violation = true;
          d.violations_.push_back(msg);
        }
        continue;
      }
      const bool bad =
          gate.direction == Direction::kHigherBetter
              ? row.b < row.a * (1.0 - gate.max_regression)
              : row.b > row.a * (1.0 + gate.max_regression);
      if (bad) {
        char msg[256];
        std::snprintf(msg, sizeof(msg),
                      "gate %s: %s %.6g -> %.6g (%+.2f%%, allowed %.0f%%)",
                      gate.name.c_str(), metric.c_str(), row.a, row.b,
                      row.rel_delta * 100.0, gate.max_regression * 100.0);
        if (gate.report_only) {
          d.notes_.push_back(msg);
        } else {
          row.violation = true;
          d.violations_.push_back(msg);
        }
      }
    }

    // Classification: within the neutral band, or direction unknown,
    // stays neutral; otherwise the sign against direction decides.
    if (row.direction != Direction::kUnknown && row.in_a && row.in_b &&
        std::fabs(row.rel_delta) > neutral_band) {
      const bool worse = row.direction == Direction::kHigherBetter
                             ? row.abs_delta < 0
                             : row.abs_delta > 0;
      row.cls = worse ? Class::kRegression : Class::kImprovement;
    }
    d.rows_.push_back(std::move(row));
  }

  for (const auto& gate : parsed_gates) {
    if (gate.matched == 0) {
      const std::string msg = "gate " + gate.name + ": pattern \"" +
                              gate.pattern + "\" matched no metric in "
                              "either run (rotted gate)";
      if (gate.report_only) {
        d.notes_.push_back(msg);
      } else {
        d.violations_.push_back(msg);
      }
    }
  }
  return d;
}

bool BenchDiff::ZeroDrift() const {
  for (const auto& row : rows_) {
    if (row.abs_delta != 0.0 || !row.in_a || !row.in_b) return false;
  }
  return true;
}

const char* BenchDiff::ClassName(Class c) {
  switch (c) {
    case Class::kNeutral: return "neutral";
    case Class::kImprovement: return "improvement";
    case Class::kRegression: return "regression";
  }
  return "neutral";
}

std::string BenchDiff::ToTable() const {
  std::string out;
  size_t width = 6;
  for (const auto& row : rows_) width = std::max(width, row.metric.size());
  AppendF(&out, "%-*s %14s %14s %12s %10s  %-11s %s\n",
          static_cast<int>(width), "metric", "baseline", "new", "abs", "rel",
          "class", "gate");
  int regressions = 0, improvements = 0;
  for (const auto& row : rows_) {
    if (row.cls == Class::kRegression) ++regressions;
    if (row.cls == Class::kImprovement) ++improvements;
    char a_buf[32], b_buf[32];
    if (row.in_a) {
      std::snprintf(a_buf, sizeof(a_buf), "%.6g", row.a);
    } else {
      std::snprintf(a_buf, sizeof(a_buf), "-");
    }
    if (row.in_b) {
      std::snprintf(b_buf, sizeof(b_buf), "%.6g", row.b);
    } else {
      std::snprintf(b_buf, sizeof(b_buf), "-");
    }
    AppendF(&out, "%-*s %14s %14s %12.6g %9.2f%%  %-11s %s%s\n",
            static_cast<int>(width), row.metric.c_str(), a_buf, b_buf,
            row.abs_delta, row.rel_delta * 100.0, ClassName(row.cls),
            row.gate_name.c_str(), row.violation ? " VIOLATION" : "");
  }
  AppendF(&out,
          "%zu metrics, %d regressions, %d improvements, %d gate checks, "
          "%zu violations",
          rows_.size(), regressions, improvements, gates_checked_,
          violations_.size());
  out += ZeroDrift() ? " (zero drift)\n" : "\n";
  for (const auto& v : violations_) out += "VIOLATION: " + v + "\n";
  for (const auto& n : notes_) out += "REPORT: " + n + "\n";
  return out;
}

std::string BenchDiff::ToCsv() const {
  std::string out =
      "metric,in_baseline,in_new,baseline,new,abs_delta,rel_delta,class,"
      "gate,violation\n";
  for (const auto& row : rows_) {
    AppendF(&out, "%s,%d,%d,%.9g,%.9g,%.9g,%.6f,%s,%s,%d\n",
            CsvEscape(row.metric).c_str(), row.in_a ? 1 : 0, row.in_b ? 1 : 0,
            row.a, row.b, row.abs_delta, row.rel_delta, ClassName(row.cls),
            CsvEscape(row.gate_name).c_str(), row.violation ? 1 : 0);
  }
  return out;
}

std::string BenchDiff::ToJson() const {
  std::string out = "{\n  \"rows\": [";
  bool first = true;
  for (const auto& row : rows_) {
    AppendF(&out,
            "%s\n    {\"metric\": \"%s\", \"in_baseline\": %s, "
            "\"in_new\": %s, \"baseline\": %.9g, \"new\": %.9g, "
            "\"abs_delta\": %.9g, \"rel_delta\": %.6f, \"class\": \"%s\", "
            "\"direction\": \"%s\", \"gate\": \"%s\", \"violation\": %s}",
            first ? "" : ",", JsonEscape(row.metric).c_str(),
            row.in_a ? "true" : "false", row.in_b ? "true" : "false", row.a,
            row.b, row.abs_delta, row.rel_delta, ClassName(row.cls),
            DirectionName(row.direction), JsonEscape(row.gate_name).c_str(),
            row.violation ? "true" : "false");
    first = false;
  }
  AppendF(&out,
          "\n  ],\n  \"gates_checked\": %d,\n  \"zero_drift\": %s,\n"
          "  \"violations\": [",
          gates_checked_, ZeroDrift() ? "true" : "false");
  first = true;
  for (const auto& v : violations_) {
    AppendF(&out, "%s\n    \"%s\"", first ? "" : ",", JsonEscape(v).c_str());
    first = false;
  }
  out += "\n  ],\n  \"notes\": [";
  first = true;
  for (const auto& n : notes_) {
    AppendF(&out, "%s\n    \"%s\"", first ? "" : ",", JsonEscape(n).c_str());
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace lob
