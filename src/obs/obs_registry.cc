#include "obs/obs_registry.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string_view>

#include "common/csv.h"

namespace lob {

namespace {

/// Escapes a string for inclusion in JSON (labels are plain ASCII today;
/// quotes and backslashes are escaped defensively).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

void Histogram::Add(uint64_t value) {
  const int b = BucketIndex(value);
  buckets_[b]++;
  count_++;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  if (!sub_.empty()) {
    int j = 0;
    if (b > 0) {
      // Bucket b >= 1 spans [2^(b-1), 2^b), i.e. width == its lower
      // bound. Double math avoids (value - lo) * kSubBuckets overflow in
      // the top catch-all bucket; values beyond the nominal width clamp
      // into the last sub-bucket.
      const uint64_t lo = BucketLowerBound(b);
      j = static_cast<int>(static_cast<double>(value - lo) /
                           static_cast<double>(lo) * kSubBuckets);
      if (j >= kSubBuckets) j = kSubBuckets - 1;
    }
    sub_[static_cast<size_t>(b) * kSubBuckets + static_cast<size_t>(j)]++;
  }
}

void Histogram::EnableSubBuckets() {
  if (!sub_.empty() || count_ > 0) return;
  sub_.assign(static_cast<size_t>(kBuckets) * kSubBuckets, 0);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  const double target = q * static_cast<double>(count_ - 1);
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t n = buckets_[i];
    if (n == 0) continue;
    if (target < static_cast<double>(cum) + static_cast<double>(n)) {
      double lo = static_cast<double>(BucketLowerBound(i));
      double hi = i == 0 ? 1.0
                  : i == kBuckets - 1
                      ? static_cast<double>(max_) + 1.0
                      : static_cast<double>(uint64_t{1} << i);
      double pos = target - static_cast<double>(cum);
      double in_range = static_cast<double>(n);
      // The top catch-all bucket's sub-bucket geometry (nominal doubling
      // width) does not match its actual [2^32, max] extent, so the
      // narrowing is skipped there.
      if (!sub_.empty() && i > 0 && i < kBuckets - 1) {
        const double width = (hi - lo) / kSubBuckets;
        uint64_t cum2 = 0;
        for (int j = 0; j < kSubBuckets; ++j) {
          const uint64_t m =
              sub_[static_cast<size_t>(i) * kSubBuckets + static_cast<size_t>(j)];
          if (m == 0) continue;
          if (pos < static_cast<double>(cum2) + static_cast<double>(m)) {
            lo += width * j;
            hi = lo + width;
            pos -= static_cast<double>(cum2);
            in_range = static_cast<double>(m);
            break;
          }
          cum2 += m;
        }
      }
      double v = lo + (hi - lo) * (pos / in_range);
      if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
      if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
      return v;
    }
    cum += n;
  }
  return static_cast<double>(max_);
}

void Histogram::MergeFrom(const Histogram& other) {
  if (!other.sub_.empty() && sub_.empty() && count_ == 0) {
    sub_ = other.sub_;
  } else if (!sub_.empty() && !other.sub_.empty()) {
    for (size_t i = 0; i < sub_.size(); ++i) sub_[i] += other.sub_[i];
  } else if (!sub_.empty() && other.count_ > 0) {
    sub_.clear();  // coarse-only side: degrade to log2 resolution
  }
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

int Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  int i = 1;
  while (value > 1 && i < kBuckets - 1) {
    value >>= 1;
    ++i;
  }
  return i;
}

uint64_t Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  return uint64_t{1} << (i - 1);
}

void ObsRegistry::RecordOpEnd(const char* label, const IoStats& op_delta,
                              bool record_queue) {
  MutexLock lock(&mu_);
  // One heterogeneous lookup per op end; the label's ledger record and
  // histogram destinations are resolved (and their name strings built)
  // only the first time the label is seen.
  auto it = op_end_memo_.find(std::string_view(label));
  if (it == op_end_memo_.end()) {
    const std::string base(label);
    OpEndEntry e;
    e.rec = &ops_[base];
    e.ms = &HistoLocked(base + ".ms");
    if (high_res_ops_) e.ms->EnableSubBuckets();
    e.seeks = &HistoLocked(base + ".seeks");
    e.pages = &HistoLocked(base + ".pages");
    it = op_end_memo_.emplace(base, e).first;
  }
  OpEndEntry& e = it->second;
  e.rec->count++;
  e.ms->Add(
      static_cast<uint64_t>(std::llround(op_delta.ms < 0 ? 0 : op_delta.ms)));
  e.seeks->Add(op_delta.Seeks());
  e.pages->Add(op_delta.PagesTransferred());
  if (record_queue) {
    if (e.queue == nullptr) {
      e.queue = &HistoLocked(std::string(label) + ".queue_ms");
      if (high_res_ops_) e.queue->EnableSubBuckets();
    }
    e.queue->Add(static_cast<uint64_t>(
        std::llround(op_delta.queue_ms < 0 ? 0 : op_delta.queue_ms)));
  }
}

IoStats ObsRegistry::AttributedTotal() const {
  MutexLock lock(&mu_);
  IoStats total;
  for (const auto& [label, rec] : ops_) total += rec.io;
  return total;
}

bool ObsRegistry::ConservationHolds(const IoStats& global) const {
  const IoStats sum = AttributedTotal();
  return sum.read_calls == global.read_calls &&
         sum.write_calls == global.write_calls &&
         sum.pages_read == global.pages_read &&
         sum.pages_written == global.pages_written &&
         std::fabs(sum.ms - global.ms) < 1e-6 * (1.0 + std::fabs(global.ms)) &&
         std::fabs(sum.queue_ms - global.queue_ms) <
             1e-6 * (1.0 + std::fabs(global.queue_ms));
}

void ObsRegistry::MergeFrom(const ObsRegistry& other) {
  // Destination latch only; `other` is read bare under the quiesced-source
  // contract (see the header) since kObsRegistry cannot nest with itself.
  MutexLock lock(&mu_);
  for (const auto& [label, rec] : other.ops_) {
    OpRecord& mine = ops_[label];
    mine.count += rec.count;
    mine.io += rec.io;
  }
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].MergeFrom(h);
  }
}

void ObsRegistry::Reset() {
  MutexLock lock(&mu_);
  ops_.clear();
  counters_.clear();
  histograms_.clear();
  op_end_memo_.clear();
  ++attr_gen_;
}

std::string ObsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\n  \"ops\": {";
  bool first = true;
  for (const auto& [label, rec] : ops_) {
    AppendF(&out,
            "%s\n    \"%s\": {\"count\": %llu, \"read_calls\": %llu, "
            "\"write_calls\": %llu, \"pages_read\": %llu, "
            "\"pages_written\": %llu, \"ms\": %.3f}",
            first ? "" : ",", JsonEscape(label).c_str(),
            static_cast<unsigned long long>(rec.count),
            static_cast<unsigned long long>(rec.io.read_calls),
            static_cast<unsigned long long>(rec.io.write_calls),
            static_cast<unsigned long long>(rec.io.pages_read),
            static_cast<unsigned long long>(rec.io.pages_written),
            rec.io.ms);
    first = false;
  }
  out += "\n  },\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters_) {
    AppendF(&out, "%s\n    \"%s\": %llu", first ? "" : ",",
            JsonEscape(name).c_str(), static_cast<unsigned long long>(value));
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    AppendF(&out,
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, \"p50\": %.3f, \"p90\": %.3f, "
            "\"p99\": %.3f, \"buckets\": [",
            first ? "" : ",", JsonEscape(name).c_str(),
            static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.sum()),
            static_cast<unsigned long long>(h.min()),
            static_cast<unsigned long long>(h.max()), h.Quantile(0.5),
            h.Quantile(0.9), h.Quantile(0.99));
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      AppendF(&out, "%s[%llu, %llu]", first_bucket ? "" : ", ",
              static_cast<unsigned long long>(Histogram::BucketLowerBound(i)),
              static_cast<unsigned long long>(h.bucket(i)));
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::string ObsRegistry::ToCsv() const {
  MutexLock lock(&mu_);
  std::string out =
      "op,count,read_calls,write_calls,pages_read,pages_written,seeks,pages,"
      "ms\n";
  for (const auto& [label, rec] : ops_) {
    // RFC-4180 escaping: labels (and future span names) may contain
    // commas or quotes; shared with the timeline CSV exporter.
    AppendF(&out, "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.3f\n",
            CsvEscape(label).c_str(),
            static_cast<unsigned long long>(rec.count),
            static_cast<unsigned long long>(rec.io.read_calls),
            static_cast<unsigned long long>(rec.io.write_calls),
            static_cast<unsigned long long>(rec.io.pages_read),
            static_cast<unsigned long long>(rec.io.pages_written),
            static_cast<unsigned long long>(rec.io.Seeks()),
            static_cast<unsigned long long>(rec.io.PagesTransferred()),
            rec.io.ms);
  }
  return out;
}

}  // namespace lob
