#include "obs/obs_registry.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string_view>

#include "common/csv.h"

namespace lob {

namespace {

/// Escapes a string for inclusion in JSON (labels are plain ASCII today;
/// quotes and backslashes are escaped defensively).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

void Histogram::Add(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  count_++;
  sum_ += static_cast<double>(value);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

int Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  int i = 1;
  while (value > 1 && i < kBuckets - 1) {
    value >>= 1;
    ++i;
  }
  return i;
}

uint64_t Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  return uint64_t{1} << (i - 1);
}

void ObsRegistry::RecordOpEnd(const char* label, const IoStats& op_delta) {
  // One heterogeneous lookup per op end; the label's ledger record and
  // histogram destinations are resolved (and their name strings built)
  // only the first time the label is seen.
  auto it = op_end_memo_.find(std::string_view(label));
  if (it == op_end_memo_.end()) {
    const std::string base(label);
    OpEndEntry e;
    e.rec = &ops_[base];
    e.ms = &Histo(base + ".ms");
    e.seeks = &Histo(base + ".seeks");
    e.pages = &Histo(base + ".pages");
    it = op_end_memo_.emplace(base, e).first;
  }
  const OpEndEntry& e = it->second;
  e.rec->count++;
  e.ms->Add(
      static_cast<uint64_t>(std::llround(op_delta.ms < 0 ? 0 : op_delta.ms)));
  e.seeks->Add(op_delta.Seeks());
  e.pages->Add(op_delta.PagesTransferred());
}

IoStats ObsRegistry::AttributedTotal() const {
  IoStats total;
  for (const auto& [label, rec] : ops_) total += rec.io;
  return total;
}

bool ObsRegistry::ConservationHolds(const IoStats& global) const {
  const IoStats sum = AttributedTotal();
  return sum.read_calls == global.read_calls &&
         sum.write_calls == global.write_calls &&
         sum.pages_read == global.pages_read &&
         sum.pages_written == global.pages_written &&
         std::fabs(sum.ms - global.ms) < 1e-6 * (1.0 + std::fabs(global.ms));
}

void ObsRegistry::Reset() {
  ops_.clear();
  counters_.clear();
  histograms_.clear();
  op_end_memo_.clear();
  ++attr_gen_;
}

std::string ObsRegistry::ToJson() const {
  std::string out = "{\n  \"ops\": {";
  bool first = true;
  for (const auto& [label, rec] : ops_) {
    AppendF(&out,
            "%s\n    \"%s\": {\"count\": %llu, \"read_calls\": %llu, "
            "\"write_calls\": %llu, \"pages_read\": %llu, "
            "\"pages_written\": %llu, \"ms\": %.3f}",
            first ? "" : ",", JsonEscape(label).c_str(),
            static_cast<unsigned long long>(rec.count),
            static_cast<unsigned long long>(rec.io.read_calls),
            static_cast<unsigned long long>(rec.io.write_calls),
            static_cast<unsigned long long>(rec.io.pages_read),
            static_cast<unsigned long long>(rec.io.pages_written),
            rec.io.ms);
    first = false;
  }
  out += "\n  },\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters_) {
    AppendF(&out, "%s\n    \"%s\": %llu", first ? "" : ",",
            JsonEscape(name).c_str(), static_cast<unsigned long long>(value));
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    AppendF(&out,
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %.1f, "
            "\"min\": %llu, \"max\": %llu, \"buckets\": [",
            first ? "" : ",", JsonEscape(name).c_str(),
            static_cast<unsigned long long>(h.count()), h.sum(),
            static_cast<unsigned long long>(h.min()),
            static_cast<unsigned long long>(h.max()));
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      AppendF(&out, "%s[%llu, %llu]", first_bucket ? "" : ", ",
              static_cast<unsigned long long>(Histogram::BucketLowerBound(i)),
              static_cast<unsigned long long>(h.bucket(i)));
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::string ObsRegistry::ToCsv() const {
  std::string out =
      "op,count,read_calls,write_calls,pages_read,pages_written,seeks,pages,"
      "ms\n";
  for (const auto& [label, rec] : ops_) {
    // RFC-4180 escaping: labels (and future span names) may contain
    // commas or quotes; shared with the timeline CSV exporter.
    AppendF(&out, "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.3f\n",
            CsvEscape(label).c_str(),
            static_cast<unsigned long long>(rec.count),
            static_cast<unsigned long long>(rec.io.read_calls),
            static_cast<unsigned long long>(rec.io.write_calls),
            static_cast<unsigned long long>(rec.io.pages_read),
            static_cast<unsigned long long>(rec.io.pages_written),
            static_cast<unsigned long long>(rec.io.Seeks()),
            static_cast<unsigned long long>(rec.io.PagesTransferred()),
            rec.io.ms);
  }
  return out;
}

}  // namespace lob
