#include "obs/flame.h"

#include <cmath>
#include <cstdio>

namespace lob {

namespace {

/// Walks the tree in sorted order, visiting every node with its
/// semicolon-joined path.
template <typename Fn>
void Visit(const std::map<std::string, FlameNode>& nodes,
           const std::string& prefix, Fn&& fn) {
  for (const auto& [suffix, node] : nodes) {
    const std::string path =
        prefix.empty() ? suffix : prefix + ";" + suffix;
    fn(path, node);
    Visit(node.children, path, fn);
  }
}

/// Collects every node keyed by full ledger label.
void CollectByLabel(const std::map<std::string, FlameNode>& nodes,
                    std::map<std::string, const FlameNode*>* out) {
  for (const auto& [suffix, node] : nodes) {
    (*out)[node.label] = &node;
    CollectByLabel(node.children, out);
  }
}

}  // namespace

double FlameNode::TotalMs() const {
  double total = self_ms;
  for (const auto& [suffix, child] : children) total += child.TotalMs();
  return total;
}

FlameGraph FlameGraph::Build(const ObsRegistry& obs) {
  FlameGraph g;
  // ops() is sorted, so every proper dotted prefix of a label sorts
  // before it: by the time L is placed, its parent chain already exists
  // in the tree and node_by_label resolves the longest observed prefix.
  std::map<std::string, FlameNode*> node_by_label;
  for (const auto& [label, rec] : obs.ops()) {
    // Longest observed label P such that label == P + "." + suffix.
    FlameNode* parent = nullptr;
    std::string::size_type best = 0;
    for (const auto& [plabel, pnode] : node_by_label) {
      if (plabel.size() > best && plabel.size() < label.size() &&
          label.compare(0, plabel.size(), plabel) == 0 &&
          label[plabel.size()] == '.') {
        parent = pnode;
        best = plabel.size();
      }
    }
    const std::string suffix =
        parent == nullptr ? label : label.substr(best + 1);
    FlameNode& node =
        parent == nullptr ? g.roots_[suffix] : parent->children[suffix];
    node.label = label;
    node.count = rec.count;
    node.self_ms = rec.io.ms;
    node.self_io = rec.io;
    node_by_label[label] = &node;
  }
  return g;
}

double FlameGraph::TotalMs() const {
  double total = 0;
  for (const auto& [suffix, root] : roots_) total += root.TotalMs();
  return total;
}

std::string FlameGraph::ToFolded() const {
  std::string out;
  Visit(roots_, "", [&out](const std::string& path, const FlameNode& node) {
    const auto us = static_cast<long long>(std::llround(node.self_ms * 1000.0));
    if (us <= 0 && node.count == 0) return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %lld\n", us);
    out += path;
    out += buf;
  });
  return out;
}

FlameGraph::Check FlameGraph::CheckStructure(double ledger_total_ms) const {
  Check c;
  Visit(roots_, "", [&c](const std::string& /*path*/, const FlameNode& node) {
    double child_total = 0;
    for (const auto& [suffix, child] : node.children) {
      child_total += child.TotalMs();
    }
    const double total = node.TotalMs();
    if (child_total > total + 1e-6) {
      c.ok = false;
      c.problems.push_back("node " + node.label + ": children total " +
                           std::to_string(child_total) +
                           " ms exceeds inclusive total " +
                           std::to_string(total) + " ms");
    }
  });
  const double total = TotalMs();
  if (std::fabs(total - ledger_total_ms) >
      1e-6 * (1.0 + std::fabs(ledger_total_ms))) {
    c.ok = false;
    c.problems.push_back("roots total " + std::to_string(total) +
                         " ms != ledger total " +
                         std::to_string(ledger_total_ms) + " ms");
  }
  return c;
}

FlameGraph::Check FlameGraph::CheckConservation(
    const std::map<std::string, double>& span_io_ms) const {
  Check c;
  std::map<std::string, const FlameNode*> by_label;
  CollectByLabel(roots_, &by_label);
  for (const auto& [label, node] : by_label) {
    auto it = span_io_ms.find(label);
    const double span_ms = it == span_io_ms.end() ? 0.0 : it->second;
    if (std::fabs(node->self_ms - span_ms) >
        1e-6 * (1.0 + std::fabs(node->self_ms))) {
      c.ok = false;
      c.problems.push_back(
          "label " + label + ": ledger " + std::to_string(node->self_ms) +
          " ms vs span " + std::to_string(span_ms) + " ms");
    }
  }
  for (const auto& [label, ms] : span_io_ms) {
    if (by_label.find(label) == by_label.end() && ms > 1e-6) {
      c.ok = false;
      c.problems.push_back("label " + label + ": " + std::to_string(ms) +
                           " span ms with no ledger entry");
    }
  }
  return c;
}

}  // namespace lob
