#include "iomodel/fault_model.h"

#include <cstdio>

namespace lob {

namespace {

/// SplitMix64 (Steele, Lea & Flood): tiny, statistically solid, and —
/// crucially for campaign replay — identical on every platform.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOneShot:
      return "one-shot";
    case FaultKind::kSticky:
      return "sticky";
    case FaultKind::kTransient:
      return "transient";
  }
  return "?";
}

}  // namespace

std::string FaultSpec::ToString() const {
  char buf[256];
  const char* dir = match_reads ? (match_writes ? "rw" : "r") : "w";
  int n = std::snprintf(buf, sizeof(buf), "%s %s after=%llu", KindName(kind),
                        dir, static_cast<unsigned long long>(after_calls));
  if (kind == FaultKind::kTransient) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " fail_calls=%u", fail_calls);
  }
  if (!op_prefix.empty()) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " op=%s*", op_prefix.c_str());
  }
  if (match_range) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                  " pages=%u:[%u,%u]", area, first_page, last_page);
  }
  return buf;
}

FaultPlan FaultPlan::RandomOneShots(uint64_t seed, uint32_t count,
                                    uint64_t max_after_calls) {
  FaultPlan plan;
  plan.seed = seed;
  uint64_t state = seed;
  plan.faults.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FaultSpec spec;
    spec.kind = FaultKind::kOneShot;
    // Unbiased enough for fault scheduling; the modulo bias over a 64-bit
    // draw is negligible for any practical max_after_calls.
    spec.after_calls = SplitMix64Next(&state) % (max_after_calls + 1);
    plan.faults.push_back(std::move(spec));
  }
  return plan;
}

}  // namespace lob
