// Fault model for SimDisk: declarative descriptions of injected I/O
// failures.
//
// The original failure-injection knob was a single global countdown
// (`InjectFailureAfter(k)`: fail every call after k successes). That is
// enough to prove "errors propagate as Status", but not to *search* the
// failure space: a campaign needs one-shot faults (fail exactly the k-th
// call, then heal), transient faults (fail a few calls, then heal),
// faults scoped to one logical operation (reusing the per-op attribution
// labels of OpScope) or to one page range, and a seedable plan so a whole
// schedule of faults replays deterministically.
//
// A FaultSpec matches *attributed foreground* I/O calls only: calls made
// while attribution is suspended (StorageSystem::UnmeteredSection — audit
// walks, fsck, timeline sampling) neither fire faults nor advance any
// fault countdown. See sim_disk.h for the full countdown contract.

#ifndef LOB_IOMODEL_FAULT_MODEL_H_
#define LOB_IOMODEL_FAULT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lob {

/// How long an armed fault keeps firing once its countdown expires.
enum class FaultKind : uint8_t {
  kOneShot,    ///< fails exactly one matching call, then is exhausted
  kSticky,     ///< fails every matching call until ClearFaults()
  kTransient,  ///< fails `fail_calls` matching calls, then auto-clears
};

/// One injected fault. Default-constructed, a spec matches every metered
/// foreground call and fails the very first one (after_calls == 0).
struct FaultSpec {
  FaultKind kind = FaultKind::kOneShot;

  /// Number of *matching* foreground calls that must succeed before the
  /// fault arms. 0 means the first matching call fails.
  uint64_t after_calls = 0;

  /// For kTransient: how many matching calls fail before the fault
  /// auto-clears. Ignored for kOneShot (always 1) and kSticky.
  uint32_t fail_calls = 1;

  /// Which directions the fault applies to.
  bool match_reads = true;
  bool match_writes = true;

  /// Operation-label filter: the fault only considers calls whose current
  /// OpScope label starts with this prefix. Empty matches everything,
  /// including unlabeled calls (a null current_op is treated as "").
  std::string op_prefix;

  /// Optional page-range filter: when true, the fault only considers
  /// calls that touch [first_page, last_page] of `area` (inclusive; a
  /// call matches if its page run intersects the range).
  bool match_range = false;
  uint32_t area = 0;
  uint32_t first_page = 0;
  uint32_t last_page = 0;

  /// Message carried by the injected Status::Internal.
  std::string message = "injected I/O failure";

  /// Human-readable one-line description (for logs and campaign output).
  std::string ToString() const;
};

/// A deterministic, seedable schedule of faults. Arm with
/// SimDisk::ArmPlan; the same plan always produces the same failures for
/// the same workload.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  /// Builds a plan of `count` one-shot global faults whose countdowns are
  /// drawn uniformly from [0, max_after_calls] using a SplitMix64 stream
  /// seeded with `seed`. Identical (seed, count, max_after_calls) always
  /// yields an identical plan.
  static FaultPlan RandomOneShots(uint64_t seed, uint32_t count,
                                  uint64_t max_after_calls);
};

}  // namespace lob

#endif  // LOB_IOMODEL_FAULT_MODEL_H_
