#include "iomodel/sim_disk.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/obs_registry.h"
#include "trace/trace_session.h"

namespace lob {

std::string IoStats::ToString() const {
  char buf[200];
  int n = std::snprintf(
      buf, sizeof(buf),
      "reads=%llu writes=%llu pages_r=%llu pages_w=%llu ms=%.1f",
      static_cast<unsigned long long>(read_calls),
      static_cast<unsigned long long>(write_calls),
      static_cast<unsigned long long>(pages_read),
      static_cast<unsigned long long>(pages_written), ms);
  if (queue_ms > 0 && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
    // Only queue-model runs carry waits; everyone else keeps the old form.
    std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                  " queue_ms=%.1f", queue_ms);
  }
  return buf;
}

SimDisk::SimDisk(const StorageConfig& config) : config_(config) {
  LOB_CHECK_GT(config_.page_size, 0u);
}

AreaId SimDisk::CreateArea() {
  areas_.emplace_back();
  return static_cast<AreaId>(areas_.size() - 1);
}

void SimDisk::ResetStats() {
  stats_ = IoStats();
  if (obs_ != nullptr) obs_->ResetAttribution();
}

void SimDisk::BeginQueuedOp(double arrival_ms) {
  if (!queue_enabled_) return;
  LOB_CHECK(!queued_op_open_);  // brackets must not nest
  queued_op_open_ = true;
  op_clock_ms_ = arrival_ms;
}

double SimDisk::EndQueuedOp() {
  if (!queue_enabled_) return 0.0;
  LOB_CHECK(queued_op_open_);
  queued_op_open_ = false;
  return op_clock_ms_;
}

void SimDisk::AccountCall(bool is_read, uint32_t n_pages) {
  IoStats call;
  if (is_read) {
    call.read_calls = 1;
    call.pages_read = n_pages;
  } else {
    call.write_calls = 1;
    call.pages_written = n_pages;
  }
  call.ms = config_.seek_ms + n_pages * config_.PageTransferMs();
#if LOB_TRACING
  const double start_ms = stats_.ms;  // modeled clock before this call
#endif
  if (queue_enabled_ && queued_op_open_ && attribution_suspended_ == 0) {
    // Discrete-event queue: the request arrives at the op's logical clock
    // and waits while the arm is still serving earlier requests. Waits are
    // charged to queue_ms only — call.ms stays pure seek+transfer, so the
    // paper's isolated-op figures are untouched.
    const double start = std::max(op_clock_ms_, arm_free_at_ms_);
    call.queue_ms = start - op_clock_ms_;
    // Backlog depth at issue: accepted requests still in service after
    // this request's arrival, plus this request.
    while (!inflight_completions_.empty() &&
           inflight_completions_.front() <= op_clock_ms_) {
      inflight_completions_.pop_front();
    }
    const double completion = start + call.ms;
    inflight_completions_.push_back(completion);
    const auto depth = static_cast<uint32_t>(inflight_completions_.size());
    op_clock_ms_ = completion;
    arm_free_at_ms_ = completion;
    ++queue_stats_.queued_calls;
    if (call.queue_ms > 0) ++queue_stats_.delayed_calls;
    queue_stats_.queue_ms += call.queue_ms;
    if (call.queue_ms > queue_stats_.max_wait_ms) {
      queue_stats_.max_wait_ms = call.queue_ms;
    }
    if (depth > queue_stats_.max_depth) queue_stats_.max_depth = depth;
  }
  stats_ += call;
  if (attribution_suspended_ == 0) {
    if (obs_ != nullptr) {
      if (attr_rec_ == nullptr || attr_gen_ != obs_->attribution_generation()) {
        attr_rec_ = obs_->AttributionRecord(
            current_op_ != nullptr ? current_op_ : ObsRegistry::kUnattributed);
        attr_gen_ = obs_->attribution_generation();
      }
      // Charge through the registry latch: AccountCall can run under the
      // BufferPool latch (rank 30 < kObsRegistry 40, so the order holds).
      obs_->AttributeTo(static_cast<ObsRegistry::OpRecord*>(attr_rec_), call);
    }
#if LOB_TRACING
    if (trace_ != nullptr) {
      if (call.queue_ms > 0) {
        // Queue-wait annotation: a closed phase leaf spanning the wait,
        // recorded just before the io leaf it delayed. kIo-only rollups
        // (span<->ledger conservation) are unaffected.
        const size_t span =
            trace_->BeginSpan("disk.queue_wait", SpanKind::kPhase, start_ms);
        trace_->EndSpan(span, start_ms + call.queue_ms);
      }
      trace_->RecordIo(is_read, n_pages, start_ms, call.ms);
    }
#endif
  }
}

void SimDisk::ArmFault(const FaultSpec& spec) {
  ArmedFault armed;
  armed.spec = spec;
  faults_.push_back(std::move(armed));
}

void SimDisk::ArmPlan(const FaultPlan& plan) {
  for (const FaultSpec& spec : plan.faults) ArmFault(spec);
}

uint32_t SimDisk::armed_faults() const {
  uint32_t n = 0;
  for (const ArmedFault& f : faults_) {
    if (!f.exhausted) ++n;
  }
  return n;
}

void SimDisk::InjectFailureAfter(int64_t calls) {
  faults_.erase(std::remove_if(faults_.begin(), faults_.end(),
                               [](const ArmedFault& f) { return f.legacy; }),
                faults_.end());
  if (calls < 0) return;
  ArmedFault armed;
  armed.spec.kind = FaultKind::kSticky;
  armed.spec.after_calls = static_cast<uint64_t>(calls);
  armed.legacy = true;
  faults_.push_back(std::move(armed));
}

Status SimDisk::CheckFaults(bool is_read, AreaId area, PageId first,
                            uint32_t n_pages) {
  // Unmetered sections (audit walks, fsck, timeline sampling) are outside
  // the fault model entirely: they neither fire faults nor advance any
  // countdown. See the contract in sim_disk.h.
  if (attribution_suspended_ != 0) return Status::OK();
  if (faults_.empty()) {
    ++foreground_calls_;
    return Status::OK();
  }
  const PageId last = first + n_pages - 1;
  const char* op = current_op_ != nullptr ? current_op_ : "";
  auto matches = [&](const FaultSpec& s) {
    if (is_read ? !s.match_reads : !s.match_writes) return false;
    if (!s.op_prefix.empty() &&
        std::strncmp(op, s.op_prefix.c_str(), s.op_prefix.size()) != 0) {
      return false;
    }
    if (s.match_range &&
        (s.area != area || last < s.first_page || first > s.last_page)) {
      return false;
    }
    return true;
  };
  // First pass: does an armed, due fault fire on this call? Earliest-armed
  // wins; a fired call advances no counters (it "never happened" in the
  // cost model).
  for (ArmedFault& f : faults_) {
    if (f.exhausted || !matches(f.spec)) continue;
    if (f.matched_calls < f.spec.after_calls) continue;
    ++f.fired;
    switch (f.spec.kind) {
      case FaultKind::kOneShot:
        f.exhausted = true;
        break;
      case FaultKind::kTransient:
        if (f.fired >= f.spec.fail_calls) f.exhausted = true;
        break;
      case FaultKind::kSticky:
        break;
    }
    ++faults_fired_;
    return Status::Internal(f.spec.message);
  }
  // Second pass: the call succeeds; advance every matching countdown.
  for (ArmedFault& f : faults_) {
    if (!f.exhausted && matches(f.spec)) ++f.matched_calls;
  }
  ++foreground_calls_;
  return Status::OK();
}

Status SimDisk::CheckRange(AreaId area, PageId first, uint32_t n_pages) const {
  if (area >= areas_.size()) {
    return Status::InvalidArgument("no such area");
  }
  if (n_pages == 0) {
    return Status::InvalidArgument("zero-page I/O call");
  }
  if (first == kInvalidPage || first > kInvalidPage - n_pages) {
    return Status::InvalidArgument("page range overflow");
  }
  return Status::OK();
}

char* SimDisk::PageData(Area& area, PageId page, bool create) {
  if (page >= area.pages.size()) {
    if (!create) return nullptr;
    if (page >= area.pages.capacity()) {
      // Geometric growth: append-heavy workloads extend the area one page
      // at a time, and per-element reallocation is quadratic on standard
      // libraries that only guarantee amortized growth for push_back.
      area.pages.reserve(
          std::max<size_t>(size_t{page} + 1, area.pages.capacity() * 2));
    }
    area.pages.resize(page + 1);
  }
  auto& slot = area.pages[page];
  if (slot == nullptr) {
    if (!create) return nullptr;
    slot = std::make_unique<char[]>(config_.page_size);
    std::memset(slot.get(), 0, config_.page_size);
  }
  return slot.get();
}

Status SimDisk::Read(AreaId area, PageId first, uint32_t n_pages, void* dst) {
  LOB_RETURN_IF_ERROR(CheckRange(area, first, n_pages));
  LOB_RETURN_IF_ERROR(CheckFaults(/*is_read=*/true, area, first, n_pages));
  char* out = static_cast<char*>(dst);
  Area& a = areas_[area];
  for (uint32_t i = 0; i < n_pages; ++i) {
    const char* src = PageData(a, first + i, /*create=*/false);
    if (src == nullptr) {
      std::memset(out, 0, config_.page_size);
    } else {
      std::memcpy(out, src, config_.page_size);
    }
    out += config_.page_size;
  }
  AccountCall(/*is_read=*/true, n_pages);
  return Status::OK();
}

Status SimDisk::Write(AreaId area, PageId first, uint32_t n_pages,
                      const void* src) {
  LOB_RETURN_IF_ERROR(CheckRange(area, first, n_pages));
  LOB_RETURN_IF_ERROR(CheckFaults(/*is_read=*/false, area, first, n_pages));
  const char* in = static_cast<const char*>(src);
  Area& a = areas_[area];
  for (uint32_t i = 0; i < n_pages; ++i) {
    char* dst = PageData(a, first + i, /*create=*/true);
    std::memcpy(dst, in, config_.page_size);
    in += config_.page_size;
  }
  AccountCall(/*is_read=*/false, n_pages);
  return Status::OK();
}

Status SimDisk::ReadRun(AreaId area, PageId first, uint32_t n_pages,
                        PageRef* refs) {
  LOB_RETURN_IF_ERROR(CheckRange(area, first, n_pages));
  LOB_RETURN_IF_ERROR(CheckFaults(/*is_read=*/true, area, first, n_pages));
  Area& a = areas_[area];
  for (uint32_t i = 0; i < n_pages; ++i) {
    refs[i].data = PageData(a, first + i, /*create=*/false);
  }
  AccountCall(/*is_read=*/true, n_pages);
  return Status::OK();
}

Status SimDisk::WriteRun(AreaId area, PageId first, uint32_t n_pages,
                         const char* const* srcs, MutPageRef* imgs) {
  LOB_RETURN_IF_ERROR(CheckRange(area, first, n_pages));
  LOB_RETURN_IF_ERROR(CheckFaults(/*is_read=*/false, area, first, n_pages));
  Area& a = areas_[area];
  for (uint32_t i = 0; i < n_pages; ++i) {
    char* dst = PageData(a, first + i, /*create=*/true);
    if (srcs[i] == nullptr) {
      std::memset(dst, 0, config_.page_size);
    } else if (srcs[i] != dst) {  // a borrowed self-view needs no copy
      std::memcpy(dst, srcs[i], config_.page_size);
    }
    if (imgs != nullptr) imgs[i].data = dst;
  }
  AccountCall(/*is_read=*/false, n_pages);
  return Status::OK();
}

const char* SimDisk::PeekPage(AreaId area, PageId page) const {
  if (area >= areas_.size()) return nullptr;
  const Area& a = areas_[area];
  if (page >= a.pages.size() || a.pages[page] == nullptr) return nullptr;
  return a.pages[page].get();
}

PageId SimDisk::AreaHighWater(AreaId area) const {
  if (area >= areas_.size()) return 0;
  return static_cast<PageId>(areas_[area].pages.size());
}

}  // namespace lob
