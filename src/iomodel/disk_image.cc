#include "iomodel/disk_image.h"

#include <cstdio>
#include <memory>
#include <vector>

namespace lob {

namespace {

constexpr uint32_t kImageMagic = 0x4C4F4246;  // "LOBF"
constexpr uint32_t kImageVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, 4, 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, 4, 1, f) == 1;
}

}  // namespace

Status SaveDiskImage(const SimDisk& disk, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::Internal("cannot open image for writing");
  if (!WriteU32(f.get(), kImageMagic) || !WriteU32(f.get(), kImageVersion) ||
      !WriteU32(f.get(), disk.page_size()) ||
      !WriteU32(f.get(), disk.num_areas())) {
    return Status::Internal("image header write failed");
  }
  for (AreaId area = 0; area < disk.num_areas(); ++area) {
    const PageId high = disk.AreaHighWater(area);
    uint32_t present = 0;
    for (PageId p = 0; p < high; ++p) {
      if (disk.PeekPage(area, p) != nullptr) present++;
    }
    if (!WriteU32(f.get(), present)) {
      return Status::Internal("image area header write failed");
    }
    for (PageId p = 0; p < high; ++p) {
      const char* data = disk.PeekPage(area, p);
      if (data == nullptr) continue;
      if (!WriteU32(f.get(), p) ||
          std::fwrite(data, disk.page_size(), 1, f.get()) != 1) {
        return Status::Internal("image page write failed");
      }
    }
  }
  if (std::fflush(f.get()) != 0) {
    return Status::Internal("image flush failed");
  }
  return Status::OK();
}

Status LoadDiskImage(SimDisk* disk, const std::string& path) {
  for (AreaId a = 0; a < disk->num_areas(); ++a) {
    if (disk->AreaHighWater(a) != 0) {
      return Status::InvalidArgument("load requires a fresh disk");
    }
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("no such image file");
  uint32_t magic = 0, version = 0, page_size = 0, n_areas = 0;
  if (!ReadU32(f.get(), &magic) || !ReadU32(f.get(), &version) ||
      !ReadU32(f.get(), &page_size) || !ReadU32(f.get(), &n_areas)) {
    return Status::Corruption("truncated image header");
  }
  if (magic != kImageMagic) return Status::Corruption("bad image magic");
  if (version != kImageVersion) {
    return Status::Corruption("unsupported image version");
  }
  if (page_size != disk->page_size()) {
    return Status::InvalidArgument("image page size mismatch");
  }
  if (disk->num_areas() != 0 && disk->num_areas() != n_areas) {
    return Status::InvalidArgument("image area count mismatch");
  }
  const bool create_areas = disk->num_areas() == 0;
  std::vector<char> buf(page_size);
  for (uint32_t a = 0; a < n_areas; ++a) {
    const AreaId area = create_areas ? disk->CreateArea() : a;
    uint32_t present = 0;
    if (!ReadU32(f.get(), &present)) {
      return Status::Corruption("truncated area header");
    }
    for (uint32_t i = 0; i < present; ++i) {
      uint32_t page = 0;
      if (!ReadU32(f.get(), &page) ||
          std::fread(buf.data(), page_size, 1, f.get()) != 1) {
        return Status::Corruption("truncated page record");
      }
      LOB_RETURN_IF_ERROR(disk->Write(area, page, 1, buf.data()));
    }
  }
  disk->ResetStats();  // restoring the image is not simulated work
  return Status::OK();
}

}  // namespace lob
