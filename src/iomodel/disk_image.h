// Disk image persistence: serialize a SimDisk to a real file and back.
//
// The paper assigned each database area to a UNIX file (3.1); the
// simulated disk does the equivalent by dumping its page images. Only
// pages that were ever written are stored (sparse format). Loading
// restores the page images verbatim; allocator state is recovered
// separately from the on-disk directory blocks
// (DatabaseArea::RecoverSpaces).
//
// File format (little endian):
//   u32 magic 'LOBF'   u32 version   u32 page_size   u32 n_areas
//   per area: u32 n_present_pages, then n times { u32 page_no, page bytes }

#ifndef LOB_IOMODEL_DISK_IMAGE_H_
#define LOB_IOMODEL_DISK_IMAGE_H_

#include <string>

#include "common/status.h"
#include "iomodel/sim_disk.h"

namespace lob {

/// Writes every present page of every area to `path` (overwrites).
[[nodiscard]]
Status SaveDiskImage(const SimDisk& disk, const std::string& path);

/// Loads an image into `disk`, which must have the same page size and
/// either no areas (they are created) or exactly the image's area count
/// with nothing written yet. Restores the pages; I/O counters are reset
/// afterwards (loading is not simulated work).
[[nodiscard]] Status LoadDiskImage(SimDisk* disk, const std::string& path);

}  // namespace lob

#endif  // LOB_IOMODEL_DISK_IMAGE_H_
