// SimDisk: an in-memory multi-area page store metered by the paper's cost
// model.
//
// The paper ran its leaf-data area without actually touching the disk,
// "simply keeping track of the number of disk I/O calls (to count disk
// seeks) and the number of pages involved in each access" (4.1). SimDisk is
// the same idea taken one step further: every area stores real bytes in
// memory so correctness is testable, and every Read/Write call is charged
// `seek_ms + n_pages * PageTransferMs()`.
//
// An I/O call always covers physically adjacent pages of one area; callers
// that need scattered pages issue multiple calls (and pay multiple seeks),
// exactly as the simulated systems would on a real device.

#ifndef LOB_IOMODEL_SIM_DISK_H_
#define LOB_IOMODEL_SIM_DISK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "iomodel/fault_model.h"
#include "iomodel/io_stats.h"
#include "trace/tracing.h"

namespace lob {

class ObsRegistry;
class TraceSession;

/// Identifies a database area (the paper uses two: one for leaf segments,
/// one for everything else).
using AreaId = uint32_t;

/// Page number within an area.
using PageId = uint32_t;

constexpr PageId kInvalidPage = UINT32_MAX;

/// Borrowed read-only view of one page image, returned by ReadRun.
///
/// Stability contract: page images never move or disappear for the life of
/// the disk, so the pointer stays valid indefinitely. The bytes are the
/// *live* image — a later Write to the page shows through the view. A null
/// `data` means the page was never written and reads as zeros.
struct PageRef {
  const char* data = nullptr;
};

/// Borrowed mutable view of one page image, filled in by WriteRun so
/// callers (the buffer pool) can re-borrow freshly written pages without
/// copying them back out. Same stability contract as PageRef.
struct MutPageRef {
  char* data = nullptr;
};

/// In-memory simulated disk with per-call cost accounting.
class SimDisk {
 public:
  explicit SimDisk(const StorageConfig& config);

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Creates a new (empty, unbounded) database area and returns its id.
  AreaId CreateArea();

  /// Number of areas created so far.
  uint32_t num_areas() const { return static_cast<uint32_t>(areas_.size()); }

  /// Reads `n_pages` physically adjacent pages starting at `first` into
  /// `dst` (which must hold n_pages * page_size bytes). One I/O call:
  /// costs one seek plus n_pages transfers. Pages never written read as
  /// zeros.
  [[nodiscard]]
  Status Read(AreaId area, PageId first, uint32_t n_pages, void* dst);

  /// Writes `n_pages` physically adjacent pages from `src`. One I/O call.
  [[nodiscard]]
  Status Write(AreaId area, PageId first, uint32_t n_pages, const void* src);

  /// Zero-copy read of `n_pages` physically adjacent pages: fills `refs`
  /// with borrowed views of the page images instead of copying them out.
  /// Metered and fault-checked exactly like Read of the same range (one
  /// call: one seek + n_pages transfers).
  [[nodiscard]]
  Status ReadRun(AreaId area, PageId first, uint32_t n_pages, PageRef* refs);

  /// Gather-write of `n_pages` physically adjacent pages: page i is copied
  /// from `srcs[i]` (null = zero-fill; a pointer aliasing the page's own
  /// image is a no-op, letting coherence refreshes pass borrowed views
  /// back). When `imgs` is non-null it receives borrowed views of the
  /// written images. Metered and fault-checked exactly like Write of the
  /// same range.
  [[nodiscard]]
  Status WriteRun(AreaId area, PageId first, uint32_t n_pages,
                  const char* const* srcs, MutPageRef* imgs = nullptr);

  /// Accumulated I/O counters since construction or the last ResetStats().
  const IoStats& stats() const { return stats_; }

  /// Zeroes the global counters. The attached registry's attribution
  /// ledger (if any) is reset with them so the conservation invariant
  /// "sum of attributed stats == global stats" keeps holding.
  void ResetStats();

  /// Restores a previously captured snapshot. Lets experiment harnesses run
  /// bookkeeping I/O (validation walks, audits) without perturbing the
  /// metered cost of the workload under study.
  void SetStats(const IoStats& stats) { stats_ = stats; }

  const StorageConfig& config() const { return config_; }
  uint32_t page_size() const { return config_.page_size; }

  /// Highest page index ever written in `area` plus one (0 if none).
  PageId AreaHighWater(AreaId area) const;

  /// Unmetered direct access to a page image for persistence and tests;
  /// nullptr when the page was never written. Not part of the simulated
  /// I/O path.
  const char* PeekPage(AreaId area, PageId page) const;

  // ---- Modeled disk queue (multi-client concurrency) ----
  //
  // The paper's cost model charges each op in isolation. When many logical
  // clients share one database the single disk arm serializes their
  // requests, so requests also *wait*. The queue model is a discrete-event
  // simulation layered on the existing accounting: the scheduler brackets
  // each op with BeginQueuedOp(arrival)/EndQueuedOp(), and every metered
  // call issued inside the bracket is charged
  //
  //   queue_ms = max(0, arm_free_at - op_clock)
  //
  // separately from its seek+transfer service time (IoStats::ms is
  // untouched, so all single-client figures are unchanged). The op clock
  // then advances past the wait and the service, and the arm stays busy
  // until the call completes — later requests from any client queue
  // behind it. Everything is a pure function of the issue order, so output
  // stays byte-identical per seed at any --jobs. Disabled by default;
  // when disabled (or outside a bracket, or while attribution is
  // suspended) behaviour is bit-identical to the pre-queue disk.

  /// Aggregate queue-model counters (never reset; observability only).
  struct DiskQueueStats {
    uint64_t queued_calls = 0;   ///< metered calls issued inside queued ops
    uint64_t delayed_calls = 0;  ///< of those, calls that actually waited
    double queue_ms = 0.0;       ///< total modeled wait, milliseconds
    double max_wait_ms = 0.0;    ///< largest single-call wait
    uint32_t max_depth = 0;      ///< deepest arm backlog seen at issue time
  };

  /// Turns the queue model on for the life of the disk.
  void EnableQueue() { queue_enabled_ = true; }
  bool queue_enabled() const { return queue_enabled_; }

  /// Opens a queued op whose first request arrives at modeled time
  /// `arrival_ms` (the issuing client's logical clock). Brackets must not
  /// nest. No-op unless EnableQueue() was called.
  void BeginQueuedOp(double arrival_ms);

  /// Closes the current queued op and returns its completion time: the
  /// moment its last I/O call finished service (its arrival time if it
  /// issued none). The caller advances the client's logical clock to it.
  double EndQueuedOp();

  /// Modeled time at which the arm finishes its last accepted request.
  double arm_free_at_ms() const { return arm_free_at_ms_; }

  const DiskQueueStats& queue_stats() const { return queue_stats_; }

  // ---- Failure injection (see iomodel/fault_model.h) ----
  //
  // Countdown contract: a fault's `after_calls` counts *attributed
  // foreground* I/O calls only — calls made while attribution is
  // suspended (StorageSystem::UnmeteredSection: audit walks, fsck,
  // timeline sampling) neither fire faults nor advance any countdown,
  // and always succeed even while a sticky fault is live. BufferPool
  // flushes (FlushRun/FlushAll) issued on behalf of an operation are
  // ordinary foreground calls and do count. The countdown is
  // off-by-one-free: `after_calls == k` means exactly k matching calls
  // succeed and the (k+1)-th matching call fails. A fired fault does not
  // advance the match counters of other armed faults or the
  // foreground-call counter (the failed call "never happened" in the
  // cost model — CheckRange validation errors likewise do not count).

  /// Arms one fault in addition to any already armed. When several armed
  /// faults are due on the same call, the earliest-armed one fires.
  void ArmFault(const FaultSpec& spec);

  /// Arms every fault of `plan` (in order) in addition to any already
  /// armed.
  void ArmPlan(const FaultPlan& plan);

  /// Disarms all faults, including any armed via InjectFailureAfter.
  void ClearFaults() { faults_.clear(); }

  /// Number of armed faults that have not yet exhausted (a sticky fault
  /// never exhausts; a one-shot fault exhausts after firing once).
  uint32_t armed_faults() const;

  /// Attributed foreground I/O calls that *succeeded* since construction
  /// (never reset; unaffected by ResetStats/SetStats). Campaign baselines
  /// read this to size their fault sweeps. Note that each fault's
  /// `after_calls` countdown is *relative to its arming* (it counts
  /// matching successful calls from ArmFault on), not against this
  /// absolute clock: arming a one-shot fault with `after_calls == k`
  /// fails the (k+1)-th subsequent matching call, wherever the global
  /// clock stands.
  uint64_t foreground_calls() const { return foreground_calls_; }

  /// Armed faults that have fired (failed a foreground call) since
  /// construction. Like foreground_calls() this is never reset; the
  /// metrics snapshot exports it so fault-campaign cells show their
  /// injected-failure count alongside the cost numbers.
  uint64_t faults_fired() const { return faults_fired_; }

  /// Legacy single-knob injection (tests): after `calls` further
  /// attributed foreground I/O calls, every such call fails with
  /// Internal until cleared with a negative value. Implemented as a
  /// sticky FaultSpec; a negative `calls` removes only faults armed
  /// through this entry point (faults armed via ArmFault/ArmPlan stay).
  /// See the countdown contract above for exactly which calls count.
  void InjectFailureAfter(int64_t calls);

  // ---- Per-operation attribution (see obs/obs_registry.h) ----

  /// Attaches a metrics registry; every subsequent metered call is charged
  /// to the current operation label (or ObsRegistry::kUnattributed).
  /// Pass nullptr to detach. The registry must outlive the disk.
  void set_obs(ObsRegistry* obs) {
    obs_ = obs;
    attr_rec_ = nullptr;
  }
  ObsRegistry* obs() const { return obs_; }

  /// Current logical-operation label; managed by OpScope (nullptr when no
  /// operation is active). Switching labels drops the cached attribution
  /// record so the ledger entry is resolved once per operation, not once
  /// per metered call.
  const char* current_op() const { return current_op_; }
  void set_current_op(const char* label) {
    current_op_ = label;
    attr_rec_ = nullptr;
  }

  /// Re-entrant attribution suspension. While suspended, calls are metered
  /// into the global stats but not charged to any label; used by
  /// StorageSystem::UnmeteredSection, which restores the global stats on
  /// exit — so conservation is preserved on both sides of the section.
  /// Span recording is suspended with attribution: a section's I/O (whose
  /// cost is about to be un-happened by SetStats) must not appear in the
  /// trace either.
  void SuspendAttribution() { ++attribution_suspended_; }
  void ResumeAttribution() { --attribution_suspended_; }

  // ---- Modeled-clock span tracing (see trace/trace_session.h) ----

  /// Attaches a trace session; every metered call is then recorded as a
  /// "disk.io" span timestamped with the modeled clock, and OpScope /
  /// LOB_TRACE_SPAN sites open op and phase spans around it. Pass nullptr
  /// to detach. The session must outlive the disk's use of it. In
  /// LOB_TRACING=0 builds the pointer is stored but never consulted: all
  /// recording hooks are compiled out.
  void set_trace(TraceSession* trace) { trace_ = trace; }
  TraceSession* trace() const { return trace_; }

  /// The session span sites should record into right now: the attached
  /// session, or nullptr while attribution (and hence tracing) is
  /// suspended by an UnmeteredSection.
  TraceSession* active_trace() const {
    return attribution_suspended_ == 0 ? trace_ : nullptr;
  }

 private:
  struct Area {
    // Lazily allocated page images; a null entry reads as zeros.
    std::vector<std::unique_ptr<char[]>> pages;
  };

  /// One armed fault: the spec plus its progress counters.
  struct ArmedFault {
    FaultSpec spec;
    uint64_t matched_calls = 0;  ///< matching calls that succeeded so far
    uint32_t fired = 0;          ///< matching calls this fault failed
    bool exhausted = false;
    bool legacy = false;  ///< armed via InjectFailureAfter
  };

  [[nodiscard]]
  Status CheckRange(AreaId area, PageId first, uint32_t n_pages) const;
  char* PageData(Area& area, PageId page, bool create);

  /// Fault gate for one metered call. Returns a non-OK Status when an
  /// armed fault fires; otherwise advances the countdowns of all
  /// matching faults (and foreground_calls_) and returns OK. No-op while
  /// attribution is suspended.
  [[nodiscard]]
  Status CheckFaults(bool is_read, AreaId area, PageId first,
                     uint32_t n_pages);

  /// Meters one successful call: accumulates into the global stats and
  /// charges the current operation in the attached registry.
  void AccountCall(bool is_read, uint32_t n_pages);

  StorageConfig config_;
  std::vector<Area> areas_;
  IoStats stats_;
  // Queue-model state (see the section comment above). The in-flight
  // deque holds completion times of accepted requests, monotone
  // increasing; entries at or before a new request's arrival are dropped
  // so its size is the arm backlog depth at issue.
  bool queue_enabled_ = false;
  bool queued_op_open_ = false;
  double op_clock_ms_ = 0.0;
  double arm_free_at_ms_ = 0.0;
  DiskQueueStats queue_stats_;
  std::deque<double> inflight_completions_;
  std::vector<ArmedFault> faults_;
  uint64_t foreground_calls_ = 0;
  uint64_t faults_fired_ = 0;
  ObsRegistry* obs_ = nullptr;
  TraceSession* trace_ = nullptr;
  const char* current_op_ = nullptr;
  uint32_t attribution_suspended_ = 0;
  // Attribution memo: ledger record of the current op, resolved on the
  // first metered call after a label change (see set_current_op) and
  // dropped when the registry resets its ledger (generation check).
  void* attr_rec_ = nullptr;
  uint64_t attr_gen_ = 0;
};

}  // namespace lob

#endif  // LOB_IOMODEL_SIM_DISK_H_
