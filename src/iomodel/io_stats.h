// I/O accounting: the study's performance metric.
//
// The paper measures modeled I/O time, not wall-clock: every disk access
// (an I/O call touching one or more physically adjacent pages) costs one
// seek (33 ms) plus transfer time (4 ms per 4K page). IoStats accumulates
// calls, pages, and modeled milliseconds; experiments subtract snapshots to
// get per-operation or per-window costs.

#ifndef LOB_IOMODEL_IO_STATS_H_
#define LOB_IOMODEL_IO_STATS_H_

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace lob {

/// Accumulated I/O counters. Value type; supports snapshot arithmetic.
struct IoStats {
  uint64_t read_calls = 0;    ///< disk accesses that fetched pages
  uint64_t write_calls = 0;   ///< disk accesses that stored pages
  uint64_t pages_read = 0;    ///< total pages transferred by reads
  uint64_t pages_written = 0; ///< total pages transferred by writes
  double ms = 0.0;            ///< modeled service time (seek + transfer), ms
  /// Modeled queueing delay: time calls spent waiting behind earlier
  /// requests for the single disk arm. Zero unless the disk's queue model
  /// is enabled (SimDisk::EnableQueue) and clients actually contend.
  /// Charged separately from `ms` so the paper's isolated-op cost model
  /// is unchanged: total latency = ms + queue_ms.
  double queue_ms = 0.0;

  /// Total disk accesses; the paper counts one seek per access.
  uint64_t Seeks() const { return read_calls + write_calls; }
  uint64_t PagesTransferred() const { return pages_read + pages_written; }

  IoStats& operator+=(const IoStats& o) {
    read_calls += o.read_calls;
    write_calls += o.write_calls;
    pages_read += o.pages_read;
    pages_written += o.pages_written;
    ms += o.ms;
    queue_ms += o.queue_ms;
    return *this;
  }

  /// Snapshot subtraction. The counters are unsigned and snapshots are
  /// monotone between resets, so subtracting in the wrong order silently
  /// underflows; debug builds abort instead. Prefer Delta(before, after),
  /// which names the order.
  friend IoStats operator-(IoStats a, const IoStats& b) {
#ifndef NDEBUG
    LOB_CHECK_GE(a.read_calls, b.read_calls);
    LOB_CHECK_GE(a.write_calls, b.write_calls);
    LOB_CHECK_GE(a.pages_read, b.pages_read);
    LOB_CHECK_GE(a.pages_written, b.pages_written);
#endif
    a.read_calls -= b.read_calls;
    a.write_calls -= b.write_calls;
    a.pages_read -= b.pages_read;
    a.pages_written -= b.pages_written;
    a.ms -= b.ms;
    a.queue_ms -= b.queue_ms;
    return a;
  }

  /// I/O accumulated between two snapshots: `after - before`, with the
  /// argument order made explicit (the counters underflow when swapped).
  static IoStats Delta(const IoStats& before, const IoStats& after) {
    return after - before;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) {
    a += b;
    return a;
  }

  std::string ToString() const;
};

}  // namespace lob

#endif  // LOB_IOMODEL_IO_STATS_H_
