#include "exec/parallel_runner.h"

#include <cstdio>

namespace lob {

void JobOutput::Printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return;
  }
  const size_t old_size = text_.size();
  text_.resize(old_size + static_cast<size_t>(needed));
  // vsnprintf writes the terminating NUL over one past the formatted text;
  // format into a region that includes that byte, then drop it.
  std::vsnprintf(text_.data() + old_size, static_cast<size_t>(needed) + 1,
                 fmt, args_copy);
  va_end(args_copy);
}

}  // namespace lob
