// ParallelRunner: deterministic fan-out of independent experiment cells.
//
// The bench grids (engine config x mean-op-size x append-size) are
// embarrassingly parallel: every cell owns a private StorageSystem (its
// own SimDisk, BufferPool, ObsRegistry) and a private Rng, so cells never
// share mutable state. What *is* shared is stdout. The runner therefore
// hands every job a JobOutput buffer instead of the terminal: anything the
// job wants printed (the --obs attribution ledger, per-cell banners) goes
// into the buffer, and the caller emits the buffers in submission order
// after the fan-out completes. Result values, captured text and per-job
// wall/modeled timings all come back indexed by submission order, so the
// bytes written to stdout are identical for any worker count — including
// the single-worker case, which executes cells in exactly the order the
// old serial loops did.
//
// Job isolation contract (see docs/ARCHITECTURE.md): a job must build its
// own StorageSystem and Rng, must not touch globals, and must route all
// text through its JobOutput. Exceptions thrown by a job are rethrown on
// the caller's thread, at the failing job's position in submission order.

#ifndef LOB_EXEC_PARALLEL_RUNNER_H_
#define LOB_EXEC_PARALLEL_RUNNER_H_

#include <chrono>
#include <cstdarg>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace lob {

/// Per-job text sink plus the job's self-reported modeled cost. Jobs print
/// through this instead of stdout so parallel runs stay byte-deterministic.
///
/// Thread-confinement contract (why this class carries no Mutex): each
/// JobOutput is constructed inside Map's task lambda, touched only by the
/// one worker running that job, and read by the submitting thread strictly
/// after the job's future resolves — the future's release/acquire edge
/// orders the accesses. It must never be shared across jobs; shared
/// cross-worker state belongs behind an annotated Mutex with a rank
/// (see campaign.cc's progress counter for the pattern).
class JobOutput {
 public:
  /// printf into the buffer.
#if defined(__GNUC__)
  __attribute__((format(printf, 2, 3)))
#endif
  void Printf(const char* fmt, ...);

  void Append(const std::string& s) { text_ += s; }

  /// Modeled I/O milliseconds of this cell (reported next to the measured
  /// wall clock in BENCH_*.json).
  void SetModeledMs(double ms) { modeled_ms_ = ms; }

  const std::string& text() const { return text_; }
  std::string* mutable_text() { return &text_; }
  double modeled_ms() const { return modeled_ms_; }

 private:
  std::string text_;
  double modeled_ms_ = 0;
};

/// Per-job timing, measured by the runner (wall) and the job (modeled).
struct JobStats {
  double wall_ms = 0;     ///< real elapsed time of the job body
  double modeled_ms = 0;  ///< cost-model milliseconds the job reported
};

/// Results of one fan-out, all indexed by submission order.
template <typename T>
struct Mapped {
  std::vector<T> values;
  std::vector<std::string> texts;  ///< captured per-job output
  std::vector<JobStats> stats;
};

/// Fans indexed jobs out across a ThreadPool and collects results in
/// deterministic submission order.
class ParallelRunner {
 public:
  explicit ParallelRunner(ThreadPool* pool) : pool_(pool) {}

  /// Runs fn(i, &out) for every i in [0, n) on the pool and returns
  /// values/texts/timings in index order. Rethrows the first (by index)
  /// job exception after every job has been scheduled.
  template <typename T>
  Mapped<T> Map(size_t n, const std::function<T(size_t, JobOutput*)>& fn) {
    struct Slot {
      T value;
      std::string text;
      JobStats stats;
    };
    std::vector<std::future<Slot>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(pool_->Submit([i, &fn] {
        JobOutput out;
        const auto t0 = std::chrono::steady_clock::now();
        T value = fn(i, &out);
        const auto t1 = std::chrono::steady_clock::now();
        Slot slot{std::move(value), std::move(*out.mutable_text()),
                  JobStats{std::chrono::duration<double, std::milli>(t1 - t0)
                               .count(),
                           out.modeled_ms()}};
        return slot;
      }));
    }
    Mapped<T> mapped;
    mapped.values.reserve(n);
    mapped.texts.reserve(n);
    mapped.stats.reserve(n);
    for (auto& future : futures) {
      Slot slot = future.get();  // rethrows job exceptions in index order
      mapped.values.push_back(std::move(slot.value));
      mapped.texts.push_back(std::move(slot.text));
      mapped.stats.push_back(slot.stats);
    }
    return mapped;
  }

  ThreadPool* pool() { return pool_; }

 private:
  ThreadPool* pool_;
};

}  // namespace lob

#endif  // LOB_EXEC_PARALLEL_RUNNER_H_
