// ThreadPool: fixed-size worker pool for the parallel experiment engine.
//
// Tasks are submitted as callables and return std::futures; exceptions
// thrown inside a task are captured by the future and rethrown at get().
// Tasks are executed in FIFO submission order (a single worker therefore
// reproduces the exact execution order of a serial loop, which is what
// makes `--jobs=1` bit-identical to the pre-parallel harness).
//
// workers == 0 is the degenerate inline mode: Submit runs the task on the
// calling thread before returning. workers == 1 runs everything on one
// background thread in submission order. Shutdown (or destruction, which
// calls it) drains the queue — pending tasks still run — and joins every
// worker.
//
// Shutdown contract: a task submitted from *inside* a running task (a
// drain-submit) is guaranteed to run, even when shutdown has already
// begun — the submitting worker cannot be joined while its task body is
// executing, and workers only exit once the queue is empty. A Submit from
// any *other* thread after shutdown has begun is a programming error that
// aborts with a diagnostic rather than letting the task vanish into a
// destructed queue (tests/thread_safety_test.cc death-tests both sides of
// the contract).

#ifndef LOB_EXEC_THREAD_POOL_H_
#define LOB_EXEC_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

/// Fixed-size FIFO thread pool with future-based submission.
class ThreadPool {
 public:
  /// hardware_concurrency, clamped to at least 1.
  static unsigned DefaultWorkers();

  explicit ThreadPool(unsigned workers = DefaultWorkers());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return workers_; }

  /// True when the calling thread is one of this pool's workers (i.e. a
  /// task body is submitting follow-up work).
  bool InWorkerThread() const;

  /// Begins shutdown and joins every worker: pending tasks (including
  /// drain-submits they make) still run. Idempotent; the destructor calls
  /// it. Calling from inside a task body would self-join and aborts.
  void Shutdown() LOB_EXCLUDES(mu_);

  /// Enqueues `fn` and returns the future of its result. With zero
  /// workers the task runs inline on the calling thread. Submitting after
  /// Shutdown has begun is legal only from inside a running task (the
  /// drain-submit guarantee above); from any other thread it aborts.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>&>>
  std::future<R> Submit(F&& fn) LOB_EXCLUDES(mu_) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_ == 0) {
      (*task)();
      return future;
    }
    {
      MutexLock lock(&mu_);
      if (stop_ && !InWorkerThread()) DieSubmitAfterShutdown();
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return future;
  }

 private:
  void WorkerLoop() LOB_EXCLUDES(mu_);
  [[noreturn]] static void DieSubmitAfterShutdown();

  const unsigned workers_;
  // LOBLINT(lock-rank): owner-thread confined — written only by the
  // constructor and joined by Shutdown; workers never touch it.
  std::vector<std::thread> threads_;
  Mutex mu_{LockRank::kThreadPool};
  std::deque<std::function<void()>> queue_ LOB_GUARDED_BY(mu_);
  CondVar cv_;
  bool stop_ LOB_GUARDED_BY(mu_) = false;
  bool joined_ = false;  // LOBLINT(lock-rank): owner-thread confined
};

}  // namespace lob

#endif  // LOB_EXEC_THREAD_POOL_H_
