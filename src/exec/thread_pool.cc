#include "exec/thread_pool.h"

namespace lob {

unsigned ThreadPool::DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned workers) : workers_(workers) {
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;  // drained: pending tasks always run
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace lob
