#include "exec/thread_pool.h"

#include <cstdio>
#include <cstdlib>

namespace lob {

namespace {
// Which pool (if any) the current thread is a worker of. Lets Submit
// distinguish a legal drain-submit (task body enqueuing follow-up work
// during shutdown) from a foreign thread racing destruction.
thread_local const ThreadPool* tls_worker_of = nullptr;
}  // namespace

unsigned ThreadPool::DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned workers) : workers_(workers) {
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::InWorkerThread() const { return tls_worker_of == this; }

void ThreadPool::DieSubmitAfterShutdown() {
  std::fprintf(stderr,
               "ThreadPool::Submit after Shutdown began: the task would "
               "never run (only a worker's own task may drain-submit)\n");
  std::abort();
}

void ThreadPool::Shutdown() {
  if (InWorkerThread()) {
    std::fprintf(stderr,
                 "ThreadPool::Shutdown from inside a task body would "
                 "self-join\n");
    std::abort();
  }
  if (joined_) return;
  joined_ = true;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  tls_worker_of = this;
  for (;;) {
    std::function<void()> task;
    {
      // Explicit wait loop (not a predicate lambda): Clang's thread-safety
      // analysis cannot see the held capability inside a lambda body, so
      // the canonical while-form keeps the guarded reads checkable.
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) {
        if (stop_) break;  // drained: pending tasks always run
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  tls_worker_of = nullptr;
}

}  // namespace lob
