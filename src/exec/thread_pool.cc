#include "exec/thread_pool.h"

namespace lob {

unsigned ThreadPool::DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned workers) : workers_(workers) {
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      // Explicit wait loop (not a predicate lambda): Clang's thread-safety
      // analysis cannot see the held capability inside a lambda body, so
      // the canonical while-form keeps the guarded reads checkable.
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) {
        if (stop_) return;  // drained: pending tasks always run
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace lob
