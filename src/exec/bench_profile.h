// BenchProfile: wall-clock self-profiling of a bench run.
//
// Every converted bench records, for each grid cell it executed, the
// measured wall milliseconds next to the cost-model milliseconds the cell
// simulated, plus the worker count used for the fan-out. The profile
// exports as BENCH_<name>.json (via --bench-json=PATH); scripts/
// bench_wall.sh assembles the per-bench files into BENCH_suite.json, the
// repo's perf trajectory record.

#ifndef LOB_EXEC_BENCH_PROFILE_H_
#define LOB_EXEC_BENCH_PROFILE_H_

#include <string>
#include <utility>
#include <vector>

namespace lob {

/// Collects per-cell wall/modeled timings for one bench run and exports
/// them as JSON. Single-threaded: the harness records cells on the main
/// thread after the fan-out completes, in submission order.
class BenchProfile {
 public:
  /// BENCH_*.json schema version. v2 added "schema_version" itself plus
  /// the optional embedded metrics-snapshot blocks (per cell and
  /// profile-level); v1 files simply lack those keys, so v1 consumers
  /// keep working and bench-diff reports the new keys as one-sided.
  static constexpr int kSchemaVersion = 2;

  struct Cell {
    std::string config;  ///< e.g. "mean_op=10000/ESM leaf=4"
    double wall_ms = 0;
    double modeled_ms = 0;
    /// Raw MetricsSnapshot::ToJson output (optional; "" = absent).
    /// Purely modeled state: byte-identical for any --jobs.
    std::string snapshot_json;
  };

  /// `hardware_concurrency` and the optional host note (from the
  /// LOB_BENCH_HOST_NOTE environment variable, see MakeHostNote) are
  /// embedded in the JSON so committed BENCH_*.json artifacts are
  /// self-explaining: a 0.94x single-core suite result carries the
  /// machine context that produced it.
  BenchProfile(std::string bench, unsigned jobs, unsigned hardware_concurrency,
               std::string host_note)
      : bench_(std::move(bench)),
        jobs_(jobs),
        hardware_concurrency_(hardware_concurrency),
        host_note_(std::move(host_note)) {}

  /// Host note for the current process: the LOB_BENCH_HOST_NOTE
  /// environment variable, or "" when unset.
  static std::string MakeHostNote();

  void AddCell(std::string config, double wall_ms, double modeled_ms) {
    cells_.push_back(Cell{std::move(config), wall_ms, modeled_ms, ""});
  }

  /// Attaches a metrics-snapshot JSON block to cell `index` (as added,
  /// in submission order). The string must be a complete JSON value.
  void SetCellSnapshot(size_t index, std::string snapshot_json) {
    cells_[index].snapshot_json = std::move(snapshot_json);
  }

  /// Profile-level aggregate snapshot (e.g. all cells' registries merged).
  void set_snapshot_json(std::string snapshot_json) {
    snapshot_json_ = std::move(snapshot_json);
  }

  /// Named scalar metric (e.g. "cells_per_sec") emitted under "metrics".
  /// Profiles with no metrics keep their prior JSON shape byte-for-byte.
  void AddMetric(std::string name, double value) {
    metrics_.emplace_back(std::move(name), value);
  }

  /// Total wall clock of the whole bench process (flag parsing, fan-out,
  /// table printing), as opposed to the sum of cell walls.
  void set_suite_wall_ms(double ms) { suite_wall_ms_ = ms; }

  const std::vector<Cell>& cells() const { return cells_; }
  unsigned jobs() const { return jobs_; }
  unsigned hardware_concurrency() const { return hardware_concurrency_; }
  const std::string& host_note() const { return host_note_; }

  double CellWallMsTotal() const;
  double CellModeledMsTotal() const;

  /// {"bench":..., "jobs":..., "hardware_concurrency":..., "host_note":...,
  ///  "suite_wall_ms":..., totals, "cells":[...]}
  std::string ToJson() const;

  /// Writes ToJson() to `path`; returns false (with a diagnostic on
  /// stderr) when the file cannot be written.
  bool WriteJson(const std::string& path) const;

 private:
  std::string bench_;
  unsigned jobs_;
  unsigned hardware_concurrency_ = 0;
  std::string host_note_;
  double suite_wall_ms_ = 0;
  std::vector<Cell> cells_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::string snapshot_json_;
};

}  // namespace lob

#endif  // LOB_EXEC_BENCH_PROFILE_H_
