// BenchProfile: wall-clock self-profiling of a bench run.
//
// Every converted bench records, for each grid cell it executed, the
// measured wall milliseconds next to the cost-model milliseconds the cell
// simulated, plus the worker count used for the fan-out. The profile
// exports as BENCH_<name>.json (via --bench-json=PATH); scripts/
// bench_wall.sh assembles the per-bench files into BENCH_suite.json, the
// repo's perf trajectory record.

#ifndef LOB_EXEC_BENCH_PROFILE_H_
#define LOB_EXEC_BENCH_PROFILE_H_

#include <string>
#include <vector>

namespace lob {

/// Collects per-cell wall/modeled timings for one bench run and exports
/// them as JSON. Single-threaded: the harness records cells on the main
/// thread after the fan-out completes, in submission order.
class BenchProfile {
 public:
  struct Cell {
    std::string config;  ///< e.g. "mean_op=10000/ESM leaf=4"
    double wall_ms = 0;
    double modeled_ms = 0;
  };

  BenchProfile(std::string bench, unsigned jobs)
      : bench_(std::move(bench)), jobs_(jobs) {}

  void AddCell(std::string config, double wall_ms, double modeled_ms) {
    cells_.push_back(Cell{std::move(config), wall_ms, modeled_ms});
  }

  /// Total wall clock of the whole bench process (flag parsing, fan-out,
  /// table printing), as opposed to the sum of cell walls.
  void set_suite_wall_ms(double ms) { suite_wall_ms_ = ms; }

  const std::vector<Cell>& cells() const { return cells_; }
  unsigned jobs() const { return jobs_; }

  double CellWallMsTotal() const;
  double CellModeledMsTotal() const;

  /// {"bench":..., "jobs":..., "suite_wall_ms":..., totals, "cells":[...]}
  std::string ToJson() const;

  /// Writes ToJson() to `path`; returns false (with a diagnostic on
  /// stderr) when the file cannot be written.
  bool WriteJson(const std::string& path) const;

 private:
  std::string bench_;
  unsigned jobs_;
  double suite_wall_ms_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace lob

#endif  // LOB_EXEC_BENCH_PROFILE_H_
