#include "exec/campaign.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "check/fsck.h"
#include "common/lock_order.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "core/factory.h"
#include "exec/parallel_runner.h"
#include "exec/thread_pool.h"
#include "iomodel/fault_model.h"
#include "workload/workload.h"

namespace lob {

namespace {

std::unique_ptr<LargeObjectManager> MakeManager(
    StorageSystem* sys, Engine engine, const CampaignOptions& options) {
  switch (engine) {
    case Engine::kEsm:
      return CreateEsmManager(sys, options.esm_leaf_pages);
    case Engine::kStarburst:
      return CreateStarburstManager(sys);
    case Engine::kEos:
      return CreateEosManager(sys, options.eos_threshold_pages);
  }
  return nullptr;
}

/// What happened when the trace was replayed against one system.
struct ReplayOutcome {
  bool failed = false;
  std::string failed_op = "-";  ///< "create" or "op<i>"
  std::string op_kind = "-";
  std::string error;
  bool created = false;
  ObjectId id = kInvalidPage;
};

/// Mirrors ApplyTrace (workload/trace.cc) exactly — same per-op content
/// RNG — but stops at the first error instead of wrapping it, so the
/// campaign can attribute the failure to one op.
ReplayOutcome Replay(LargeObjectManager* mgr, const Trace& trace) {
  ReplayOutcome out;
  auto id = mgr->Create();
  if (!id.ok()) {
    out.failed = true;
    out.failed_op = "create";
    out.error = id.status().ToString();
    return out;
  }
  out.created = true;
  out.id = *id;
  std::string buf;
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    const TraceOp& op = trace.ops[i];
    const bool writes = op.kind == TraceOp::Kind::kAppend ||
                        op.kind == TraceOp::Kind::kInsert ||
                        op.kind == TraceOp::Kind::kReplace;
    if (writes) {
      Rng content(op.seed);
      FillBytes(&content, op.size, &buf);
    }
    Status s;
    switch (op.kind) {
      case TraceOp::Kind::kAppend:
        s = mgr->Append(*id, buf);
        break;
      case TraceOp::Kind::kInsert:
        s = mgr->Insert(*id, op.offset, buf);
        break;
      case TraceOp::Kind::kReplace:
        s = mgr->Replace(*id, op.offset, buf);
        break;
      case TraceOp::Kind::kDelete:
        s = mgr->Delete(*id, op.offset, op.size);
        break;
      case TraceOp::Kind::kRead:
        s = mgr->Read(*id, op.offset, op.size, &buf);
        break;
    }
    if (!s.ok()) {
      out.failed = true;
      out.failed_op = "op" + std::to_string(i);
      out.op_kind = TraceOpKindName(op.kind);
      out.error = s.ToString();
      return out;
    }
  }
  return out;
}

std::string Sanitize(std::string s) {
  std::replace(s.begin(), s.end(), ',', ';');
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '"', '\'');
  return s;
}

CampaignCell RunCell(Engine engine, uint64_t k, const Trace& trace,
                     const CampaignOptions& options) {
  StorageSystem sys(options.config);
  auto mgr = MakeManager(&sys, engine, options);
  FaultSpec fault;
  fault.kind = FaultKind::kOneShot;
  fault.after_calls = k;
  fault.message = "campaign fault k=" + std::to_string(k);
  sys.disk()->ArmFault(fault);

  ReplayOutcome replay = Replay(mgr.get(), trace);
  sys.disk()->ClearFaults();

  CampaignCell cell;
  cell.engine = engine;
  cell.fail_after = k;
  cell.failed_op = replay.failed_op;
  cell.op_kind = replay.op_kind;

  std::vector<std::pair<ObjectId, LargeObjectManager*>> objects;
  if (replay.created) objects.emplace_back(replay.id, mgr.get());
  auto fsck = FsckObjects(&sys, objects);
  if (!fsck.ok()) {
    // The checker itself could not complete: treat as corruption.
    cell.outcome = CellOutcome::kCorrupt;
    cell.detail = Sanitize("fsck aborted: " + fsck.status().ToString());
    return cell;
  }
  if (fsck->HasCorruption()) {
    cell.outcome = CellOutcome::kCorrupt;
    cell.detail = Sanitize(fsck->issues.front().ToString());
  } else if (fsck->HasLeaks()) {
    cell.outcome = CellOutcome::kLeak;
    cell.detail = Sanitize(fsck->issues.front().ToString());
  } else if (replay.failed) {
    cell.outcome = CellOutcome::kCleanFail;
    cell.detail = Sanitize(replay.error);
  } else {
    cell.outcome = CellOutcome::kCleanPass;
    cell.detail = "-";
  }
  return cell;
}

}  // namespace

const char* CellOutcomeName(CellOutcome outcome) {
  switch (outcome) {
    case CellOutcome::kCleanPass:
      return "clean-pass";
    case CellOutcome::kCleanFail:
      return "clean-fail";
    case CellOutcome::kLeak:
      return "leak";
    case CellOutcome::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

uint64_t CampaignResult::CountOutcome(CellOutcome outcome) const {
  return static_cast<uint64_t>(
      std::count_if(cells.begin(), cells.end(), [&](const CampaignCell& c) {
        return c.outcome == outcome;
      }));
}

std::string CampaignResult::ToCsv() const {
  std::string out = "engine,fail_after,failed_op,op_kind,outcome,detail\n";
  char row[512];
  for (const CampaignCell& c : cells) {
    std::snprintf(row, sizeof(row), "%s,%" PRIu64 ",%s,%s,%s,%s\n",
                  EngineName(c.engine), c.fail_after, c.failed_op.c_str(),
                  c.op_kind.c_str(), CellOutcomeName(c.outcome),
                  c.detail.c_str());
    out += row;
  }
  return out;
}

std::string CampaignResult::ToJson() const {
  std::string out = "{\n  \"baselines\": {";
  for (size_t i = 0; i < baselines.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64,
                  i == 0 ? "" : ", ", EngineName(baselines[i].first),
                  baselines[i].second);
    out += buf;
  }
  out += "},\n  \"totals\": {";
  const CellOutcome kinds[] = {CellOutcome::kCleanPass,
                               CellOutcome::kCleanFail, CellOutcome::kLeak,
                               CellOutcome::kCorrupt};
  for (size_t i = 0; i < 4; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64,
                  i == 0 ? "" : ", ", CellOutcomeName(kinds[i]),
                  CountOutcome(kinds[i]));
    out += buf;
  }
  out += "},\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CampaignCell& c = cells[i];
    char buf[640];
    std::snprintf(buf, sizeof(buf),
                  "    {\"engine\": \"%s\", \"fail_after\": %" PRIu64
                  ", \"failed_op\": \"%s\", \"op_kind\": \"%s\", "
                  "\"outcome\": \"%s\", \"detail\": \"%s\"}%s\n",
                  EngineName(c.engine), c.fail_after, c.failed_op.c_str(),
                  c.op_kind.c_str(), CellOutcomeName(c.outcome),
                  c.detail.c_str(), i + 1 < cells.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

StatusOr<CampaignResult> RunCampaign(const Trace& trace,
                                     const CampaignOptions& options) {
  if (options.stride == 0) {
    return Status::InvalidArgument("stride must be >= 1");
  }
  const Engine engines[] = {Engine::kEsm, Engine::kStarburst, Engine::kEos};
  CampaignResult result;

  // Fault-free baselines: N attributed foreground calls per engine.
  std::vector<std::pair<Engine, uint64_t>> points;
  for (Engine engine : engines) {
    StorageSystem sys(options.config);
    auto mgr = MakeManager(&sys, engine, options);
    // Count calls from the point RunCell arms its fault (right after
    // construction), so every k in [0, n) is a reachable fault position.
    const uint64_t start = sys.disk()->foreground_calls();
    ReplayOutcome base = Replay(mgr.get(), trace);
    if (base.failed) {
      return Status::Internal("fault-free baseline failed (" +
                              std::string(EngineName(engine)) +
                              "): " + base.error);
    }
    const uint64_t n = sys.disk()->foreground_calls() - start;
    result.baselines.emplace_back(engine, n);
    for (uint64_t k = 0; k < n; k += options.stride) {
      points.emplace_back(engine, k);
    }
  }

  // Fan the cells out; Map returns values in submission order, which is
  // already (engine, fail_after)-sorted, so output is deterministic for
  // any worker count.
  ThreadPool pool(options.jobs == 0 ? 1 : options.jobs);
  ParallelRunner runner(&pool);
  // Opt-in progress meter: the one piece of state the cell workers share.
  // Guarded by an annotated Mutex at LockRank::kCampaign; cells hold no
  // other lock when they finish, so the rank never composes with the
  // storage-layer ranks inside RunCell (each cell owns a private system).
  struct Progress {
    Mutex mu{LockRank::kCampaign};
    size_t done LOB_GUARDED_BY(mu) = 0;
  } progress;
  const size_t total = points.size();
  auto mapped = runner.Map<CampaignCell>(
      points.size(), [&](size_t i, JobOutput* /*out*/) {
        CampaignCell cell =
            RunCell(points[i].first, points[i].second, trace, options);
        if (options.progress) {
          MutexLock lock(&progress.mu);
          ++progress.done;
          std::fprintf(stderr, "campaign: %zu/%zu cells\n", progress.done,
                       total);
        }
        return cell;
      });
  result.cells = std::move(mapped.values);
  return result;
}

Trace DemoCampaignTrace() {
  // Build ~56K in doubling-friendly appends, then exercise every
  // structural path: interior insert (splits), delete (merges/shuffles),
  // replace (shadowing) and a read.
  Trace t;
  auto add = [&](TraceOp::Kind kind, uint64_t offset, uint64_t size,
                 uint64_t seed) {
    t.ops.push_back({kind, offset, size, seed});
  };
  add(TraceOp::Kind::kAppend, 0, 12000, 101);
  add(TraceOp::Kind::kAppend, 0, 20000, 102);
  add(TraceOp::Kind::kAppend, 0, 24000, 103);
  add(TraceOp::Kind::kInsert, 7000, 9000, 104);
  add(TraceOp::Kind::kRead, 2000, 30000, 0);
  add(TraceOp::Kind::kDelete, 21000, 11000, 0);
  add(TraceOp::Kind::kReplace, 15000, 6000, 105);
  add(TraceOp::Kind::kInsert, 30001, 500, 106);
  add(TraceOp::Kind::kDelete, 100, 3000, 0);
  add(TraceOp::Kind::kAppend, 0, 8000, 107);
  return t;
}

}  // namespace lob
