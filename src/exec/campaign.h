// Fault-injection campaign engine.
//
// For a workload trace and each fault point k in 0..N-1 (N = number of
// attributed foreground I/O calls of the fault-free baseline), replay the
// trace on a fresh system with a one-shot fault armed to fire on the
// (k+1)-th I/O call, then run fsck (src/check) over the wreckage and
// classify the cell:
//
//   clean-pass  the operation absorbed the fault (e.g. a directory write
//               deferred by an infallible Free) and the trace completed
//   clean-fail  an error surfaced and fsck found nothing wrong
//   leak        structures consistent but allocated extents are orphaned
//   corrupt     an engine invariant or cross-reference check is broken
//
// Every cell owns a private StorageSystem, so cells fan out across the
// ThreadPool (PR-2) with byte-identical results for any worker count. The
// resulting (engine, op, k) matrix is the repo's regression instrument:
// the ctest gate holds every future change to "zero corrupt and zero leak
// cells on the standard trace".

#ifndef LOB_EXEC_CAMPAIGN_H_
#define LOB_EXEC_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "workload/trace.h"

namespace lob {

struct CampaignOptions {
  /// Worker threads for the cell fan-out.
  uint32_t jobs = 1;

  /// Sample every `stride`-th fault point (1 = exhaustive). The matrix is
  /// identical to the exhaustive run restricted to the sampled rows.
  uint32_t stride = 1;

  /// When set, workers report "campaign: <done>/<total> cells" on stderr
  /// as cells finish, through a latched shared counter
  /// (LockRank::kCampaign). Off by default: completion order is
  /// wall-clock-dependent, so progress stays off the deterministic
  /// stdout formats and off by default for byte-compare runs.
  bool progress = false;

  /// Structural parameters of the three engines under test.
  uint32_t esm_leaf_pages = 4;
  uint32_t eos_threshold_pages = 4;

  /// Per-cell storage configuration.
  StorageConfig config;
};

enum class CellOutcome : uint8_t {
  kCleanPass,
  kCleanFail,
  kLeak,
  kCorrupt,
};

const char* CellOutcomeName(CellOutcome outcome);

/// One (engine, fail-at-k) experiment.
struct CampaignCell {
  Engine engine;
  uint64_t fail_after = 0;   ///< k: I/O calls that succeed before the fault
  std::string failed_op;     ///< "create", "op<i>", or "-" when none failed
  std::string op_kind;       ///< trace op kind of the failing op, or "-"
  CellOutcome outcome = CellOutcome::kCleanPass;
  std::string detail;        ///< first fsck issue / error text, or "-"
};

struct CampaignResult {
  std::vector<CampaignCell> cells;  ///< sorted by (engine, fail_after)

  /// Fault-free baseline I/O call count per engine, in run order
  /// (esm, starburst, eos).
  std::vector<std::pair<Engine, uint64_t>> baselines;

  uint64_t CountOutcome(CellOutcome outcome) const;
  bool HasLeaks() const { return CountOutcome(CellOutcome::kLeak) > 0; }
  bool HasCorruption() const {
    return CountOutcome(CellOutcome::kCorrupt) > 0;
  }

  /// Deterministic CSV: header + one row per cell, sorted. Commas inside
  /// details are replaced so rows stay machine-splittable.
  std::string ToCsv() const;

  /// Deterministic JSON with baselines, outcome totals and cells.
  std::string ToJson() const;
};

/// Runs the campaign for all three engines over `trace`.
[[nodiscard]]
StatusOr<CampaignResult> RunCampaign(const Trace& trace,
                                     const CampaignOptions& options);

/// The small built-in trace the smoke test and `lob_campaign --demo` use:
/// a doubling build phase plus an insert/read/delete/replace update mix
/// touching every structural path (overflow appends, splits, merges).
Trace DemoCampaignTrace();

}  // namespace lob

#endif  // LOB_EXEC_CAMPAIGN_H_
