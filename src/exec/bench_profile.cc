#include "exec/bench_profile.h"

#include <cstdio>
#include <cstdlib>

namespace lob {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void AppendNumber(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

std::string BenchProfile::MakeHostNote() {
  const char* note = std::getenv("LOB_BENCH_HOST_NOTE");
  return note == nullptr ? std::string() : std::string(note);
}

double BenchProfile::CellWallMsTotal() const {
  double total = 0;
  for (const Cell& c : cells_) total += c.wall_ms;
  return total;
}

double BenchProfile::CellModeledMsTotal() const {
  double total = 0;
  for (const Cell& c : cells_) total += c.modeled_ms;
  return total;
}

std::string BenchProfile::ToJson() const {
  std::string out = "{\n  \"bench\": \"";
  AppendEscaped(bench_, &out);
  out += "\",\n  \"schema_version\": " + std::to_string(kSchemaVersion);
  out += ",\n  \"jobs\": " + std::to_string(jobs_);
  out += ",\n  \"hardware_concurrency\": " +
         std::to_string(hardware_concurrency_);
  out += ",\n  \"host_note\": \"";
  AppendEscaped(host_note_, &out);
  out += "\",\n  \"suite_wall_ms\": ";
  AppendNumber(suite_wall_ms_, &out);
  out += ",\n  \"cell_wall_ms_total\": ";
  AppendNumber(CellWallMsTotal(), &out);
  out += ",\n  \"cell_modeled_ms_total\": ";
  AppendNumber(CellModeledMsTotal(), &out);
  if (!metrics_.empty()) {
    out += ",\n  \"metrics\": {";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out += i == 0 ? "" : ", ";
      out += "\"";
      AppendEscaped(metrics_[i].first, &out);
      out += "\": ";
      AppendNumber(metrics_[i].second, &out);
    }
    out += "}";
  }
  if (!snapshot_json_.empty()) {
    out += ",\n  \"metrics_snapshot\": " + snapshot_json_;
  }
  out += ",\n  \"cells\": [";
  for (size_t i = 0; i < cells_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"config\": \"";
    AppendEscaped(cells_[i].config, &out);
    out += "\", \"wall_ms\": ";
    AppendNumber(cells_[i].wall_ms, &out);
    out += ", \"modeled_ms\": ";
    AppendNumber(cells_[i].modeled_ms, &out);
    if (!cells_[i].snapshot_json.empty()) {
      out += ", \"metrics_snapshot\": " + cells_[i].snapshot_json;
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool BenchProfile::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchProfile: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace lob
