#include "starburst/starburst_manager.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "trace/trace_span.h"
#include "common/math_util.h"

namespace lob {

namespace {

constexpr uint32_t kDescriptorMagic = 0x4C4F4244;  // "LOBD"
constexpr uint32_t kHeaderBytes = 20;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

}  // namespace

StarburstManager::StarburstManager(StorageSystem* sys,
                                   const StarburstOptions& options)
    : sys_(sys), options_(options) {
  LOB_CHECK_GE(options_.max_segment_pages, 1u);
  options_.max_segment_pages = std::min(
      options_.max_segment_pages, sys->leaf_area()->max_segment_pages());
}

uint32_t StarburstManager::PatternPages(uint32_t first_pages,
                                        uint32_t i) const {
  if (first_pages == 0) return 0;
  if (i >= 31) return options_.max_segment_pages;
  const uint64_t pages = static_cast<uint64_t>(first_pages) << i;
  return static_cast<uint32_t>(
      std::min<uint64_t>(pages, options_.max_segment_pages));
}

StatusOr<ObjectId> StarburstManager::Create() {
  OpScope obs_scope(sys_->disk(), "starburst.create");
  auto ext =
      ScopedExtent::Allocate(sys_->meta_area(), sys_->pool(), 1);
  if (!ext.ok()) return ext.status();
  auto g = sys_->pool()->FixPage(sys_->meta_area()->id(), ext->first_page(),
                                 FixMode::kNew);
  if (!g.ok()) return g.status();  // guard reclaims the descriptor page
  StoreU32(g->mutable_data(), kDescriptorMagic);
  g->MarkDirty();
  ext->Commit();
  return ext->first_page();
}

StatusOr<StarburstManager::Descriptor> StarburstManager::Load(ObjectId id) {
  auto g = sys_->pool()->FixPage(sys_->meta_area()->id(), id, FixMode::kRead);
  if (!g.ok()) return g.status();
  const char* p = g->data();
  if (LoadU32(p) != kDescriptorMagic) {
    return Status::Corruption("bad long field descriptor magic");
  }
  Descriptor d;
  d.used_bytes = LoadU32(p + 4);
  d.first_pages = LoadU32(p + 8);
  d.last_alloc_pages = LoadU32(p + 12);
  const uint32_t nsegs = LoadU32(p + 16);
  const uint32_t cap = (page_size() - kHeaderBytes) / 4;
  if (nsegs > cap) return Status::Corruption("descriptor segment overflow");
  d.ptrs.resize(nsegs);
  for (uint32_t i = 0; i < nsegs; ++i) {
    d.ptrs[i] = LoadU32(p + kHeaderBytes + 4 * i);
  }
  return d;
}

Status StarburstManager::Save(ObjectId id, const Descriptor& d) {
  const uint32_t cap = (page_size() - kHeaderBytes) / 4;
  if (d.ptrs.size() > cap) {
    return Status::NoSpace("long field descriptor full");
  }
  auto g = sys_->pool()->FixPage(sys_->meta_area()->id(), id, FixMode::kRead);
  if (!g.ok()) return g.status();
  char* p = g->mutable_data();
  StoreU32(p, kDescriptorMagic);
  StoreU32(p + 4, d.used_bytes);
  StoreU32(p + 8, d.first_pages);
  StoreU32(p + 12, d.last_alloc_pages);
  StoreU32(p + 16, static_cast<uint32_t>(d.ptrs.size()));
  for (size_t i = 0; i < d.ptrs.size(); ++i) {
    StoreU32(p + kHeaderBytes + 4 * i, d.ptrs[i]);
  }
  g->MarkDirty();  // descriptor reaches disk on eviction or FlushAll
  return Status::OK();
}

std::vector<StarburstManager::SegInfo> StarburstManager::MapSegments(
    const Descriptor& d) const {
  std::vector<SegInfo> map;
  map.reserve(d.ptrs.size());
  uint64_t at = 0;
  for (uint32_t i = 0; i < d.ptrs.size(); ++i) {
    SegInfo seg;
    seg.page = d.ptrs[i];
    seg.start = at;
    if (i + 1 < d.ptrs.size()) {
      seg.alloc = PatternPages(d.first_pages, i);
      seg.bytes = static_cast<uint64_t>(seg.alloc) * page_size();
    } else {
      seg.alloc = d.last_alloc_pages;
      seg.bytes = d.used_bytes - at;
    }
    at += seg.bytes;
    map.push_back(seg);
  }
  return map;
}

Status StarburstManager::ReadRange(const std::vector<SegInfo>& map,
                                   uint64_t off, uint64_t n, char* dst) {
  uint64_t done = 0;
  for (const SegInfo& seg : map) {
    if (done == n) break;
    const uint64_t seg_end = seg.start + seg.bytes;
    if (seg_end <= off + done) continue;
    const uint64_t local = off + done - seg.start;
    const uint64_t take = std::min(seg.bytes - local, n - done);
    // One I/O call per copy-buffer-sized chunk within the segment.
    uint64_t part = 0;
    while (part < take) {
      const uint64_t chunk =
          std::min<uint64_t>(take - part, sys_->config().copy_buffer_bytes);
      LOB_RETURN_IF_ERROR(sys_->pool()->ReadSegmentRange(
          leaf_area_id(), seg.page, seg.bytes, local + part, chunk,
          dst + done + part));
      part += chunk;
    }
    done += take;
  }
  if (done != n) return Status::OutOfRange("read past long field end");
  return Status::OK();
}

Status StarburstManager::Read(ObjectId id, uint64_t offset, uint64_t n,
                              std::string* out) {
  OpScope obs_scope(sys_->disk(), "starburst.read");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  if (offset + n > d->used_bytes) {
    return Status::OutOfRange("read past object end");
  }
  out->resize(n);
  if (n == 0) return Status::OK();
  // User reads are not chunked by the copy buffer: read whole ranges per
  // segment (the copy buffer only stages update copying, paper 3.5).
  auto map = MapSegments(*d);
  uint64_t done = 0;
  for (const SegInfo& seg : map) {
    if (done == n) break;
    const uint64_t seg_end = seg.start + seg.bytes;
    if (seg_end <= offset + done) continue;
    const uint64_t local = offset + done - seg.start;
    const uint64_t take = std::min(seg.bytes - local, n - done);
    LOB_RETURN_IF_ERROR(sys_->pool()->ReadSegmentRange(
        leaf_area_id(), seg.page, seg.bytes, local, take, out->data() + done));
    done += take;
  }
  return Status::OK();
}

Status StarburstManager::AppendLocked(ObjectId id, Descriptor* d,
                                      std::string_view data, OpContext* ctx,
                                      std::vector<ScopedExtent>* fresh,
                                      std::vector<Segment>* to_free) {
  (void)id;
  uint64_t pos = 0;
  const uint64_t P = page_size();
  // 1. Fill whatever allocated space the last segment still has.
  if (!d->ptrs.empty()) {
    auto map = MapSegments(*d);
    const SegInfo& last = map.back();
    const uint64_t capacity = static_cast<uint64_t>(last.alloc) * P;
    if (last.bytes < capacity) {
      const uint64_t take = std::min<uint64_t>(capacity - last.bytes,
                                               data.size());
      LOB_RETURN_IF_ERROR(sys_->pool()->WriteSegmentRange(
          leaf_area_id(), last.page, last.bytes, last.bytes, take,
          data.data()));
      const PageId p0 = last.page + static_cast<PageId>(last.bytes / P);
      const PageId p1 =
          last.page + static_cast<PageId>((last.bytes + take - 1) / P);
      ctx->DeferFlush(leaf_area_id(), p0, p1 - p0 + 1);
      d->used_bytes += static_cast<uint32_t>(take);
      pos = take;
    }
  }
  if (pos == data.size()) return Status::OK();

  // 2. The pattern's first segment size is set by the first append.
  if (d->ptrs.empty() && d->first_pages == 0) {
    d->first_pages = static_cast<uint32_t>(std::min<uint64_t>(
        CeilDiv(data.size() - pos, P), options_.max_segment_pages));
  }

  // 3. A trimmed last segment that overflowed is rebuilt to pattern size
  //    together with the remaining data (keeps intermediate sizes
  //    implicit). The old last segment is only *queued* for freeing: if
  //    the rebuild fails part-way the on-disk descriptor still references
  //    it, so releasing it here would be corruption, not cleanup.
  if (!d->ptrs.empty()) {
    const uint32_t last_idx = static_cast<uint32_t>(d->ptrs.size() - 1);
    if (d->last_alloc_pages != PatternPages(d->first_pages, last_idx)) {
      auto map = MapSegments(*d);
      const SegInfo& last = map.back();
      std::string tail(last.bytes, '\0');
      LOB_RETURN_IF_ERROR(ReadRange(map, last.start, last.bytes,
                                    tail.data()));
      tail.append(data.substr(pos));
      to_free->push_back(Segment{last.page, last.alloc});
      d->ptrs.pop_back();
      d->used_bytes -= static_cast<uint32_t>(last.bytes);
      return RebuildTail(d, d->ptrs.size(), tail, ctx, fresh);
    }
  }

  // 4. Allocate pattern-sized successors until the data is stored. The
  //    last segment keeps its full pattern allocation and is filled by
  //    subsequent appends; trimming happens when updates reorganize it.
  //    Each segment stays armed until the caller saves the descriptor.
  while (pos < data.size()) {
    const uint32_t idx = static_cast<uint32_t>(d->ptrs.size());
    const uint32_t pattern = PatternPages(d->first_pages, idx);
    if (pattern == 0) return Status::Internal("empty growth pattern");
    const uint64_t rem = data.size() - pos;
    const uint32_t pages = pattern;
    auto seg = ScopedExtent::Allocate(sys_->leaf_area(), sys_->pool(), pages);
    if (!seg.ok()) return seg.status();
    const uint64_t take = std::min<uint64_t>(
        static_cast<uint64_t>(pages) * P, rem);
    LOB_RETURN_IF_ERROR(sys_->pool()->WriteFreshSegment(
        leaf_area_id(), seg->first_page(), data.data() + pos, take));
    d->ptrs.push_back(seg->first_page());
    fresh->push_back(std::move(*seg));
    d->last_alloc_pages = pages;
    d->used_bytes += static_cast<uint32_t>(take);
    pos += take;
  }
  return Status::OK();
}

Status StarburstManager::Append(ObjectId id, std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "starburst.append");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  OpContext ctx(sys_->pool(), sys_->arena());
  std::vector<ScopedExtent> fresh;
  std::vector<Segment> to_free;
  LOB_RETURN_IF_ERROR(AppendLocked(id, &d.value(), data, &ctx, &fresh,
                                   &to_free));
  // Save() is the commit point: once the descriptor references the new
  // segments the guards disarm and the replaced ones are released.
  LOB_RETURN_IF_ERROR(Save(id, *d));
  LOB_RETURN_IF_ERROR(CommitAndFree(&fresh, to_free));
  return ctx.Finish();
}

Status StarburstManager::RebuildTail(Descriptor* d, size_t k,
                                     std::string_view tail, OpContext* ctx,
                                     std::vector<ScopedExtent>* fresh) {
  LOB_TRACE_SPAN(sys_->disk(), "sb.rebuild_tail");
  const uint64_t P = page_size();
  LOB_CHECK_LE(k, d->ptrs.size());
  d->ptrs.resize(k);
  // Segments [0, k) are middles: pattern-sized and full by invariant.
  uint64_t prefix = 0;
  for (size_t i = 0; i < k; ++i) {
    prefix += static_cast<uint64_t>(
                  PatternPages(d->first_pages, static_cast<uint32_t>(i))) *
              P;
  }
  d->used_bytes = static_cast<uint32_t>(prefix);

  if (tail.empty()) {
    if (k == 0) {
      d->first_pages = 0;
      d->last_alloc_pages = 0;
    } else {
      d->last_alloc_pages =
          PatternPages(d->first_pages, static_cast<uint32_t>(k - 1));
    }
    return Status::OK();
  }
  if (d->first_pages == 0) {
    d->first_pages = static_cast<uint32_t>(
        std::min<uint64_t>(CeilDiv(tail.size(), P),
                           options_.max_segment_pages));
  }
  uint64_t pos = 0;
  while (pos < tail.size()) {
    const uint32_t idx = static_cast<uint32_t>(d->ptrs.size());
    const uint32_t pattern = PatternPages(d->first_pages, idx);
    const uint64_t rem = tail.size() - pos;
    const uint32_t pages = static_cast<uint32_t>(
        std::min<uint64_t>(pattern, CeilDiv(rem, P)));
    auto seg = ScopedExtent::Allocate(sys_->leaf_area(), sys_->pool(), pages);
    if (!seg.ok()) return seg.status();
    const uint64_t take =
        std::min<uint64_t>(static_cast<uint64_t>(pages) * P, rem);
    // Write through copy-buffer-sized chunks (paper 3.5). Chunks are
    // page-aligned, so each lands in fresh pages with one sequential call.
    uint64_t part = 0;
    while (part < take) {
      const uint64_t chunk =
          std::min<uint64_t>(take - part, sys_->config().copy_buffer_bytes);
      LOB_RETURN_IF_ERROR(sys_->pool()->WriteFreshSegment(
          leaf_area_id(), seg->first_page() + static_cast<PageId>(part / P),
          tail.data() + pos + part, chunk));
      part += chunk;
    }
    (void)ctx;
    d->ptrs.push_back(seg->first_page());
    fresh->push_back(std::move(*seg));
    d->last_alloc_pages = pages;
    d->used_bytes += static_cast<uint32_t>(take);
    pos += take;
  }
  return Status::OK();
}

Status StarburstManager::CommitAndFree(std::vector<ScopedExtent>* fresh,
                                       const std::vector<Segment>& to_free) {
  for (ScopedExtent& ext : *fresh) ext.Commit();
  fresh->clear();
  for (const Segment& seg : to_free) {
    // Invalidate before Free so a reuse of the pages cannot observe stale
    // cached content or pay for a stale flush.
    LOB_RETURN_IF_ERROR(
        sys_->pool()->Invalidate(leaf_area_id(), seg.first_page, seg.pages));
    LOB_RETURN_IF_ERROR(sys_->leaf_area()->Free(seg));
  }
  return Status::OK();
}

Status StarburstManager::SpliceBytes(ObjectId id, uint64_t offset,
                                     std::string_view inserted,
                                     uint64_t deleted) {
  LOB_TRACE_SPAN(sys_->disk(), "sb.splice");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  if (offset + deleted > d->used_bytes) {
    return Status::OutOfRange("update past object end");
  }
  OpContext ctx(sys_->pool(), sys_->arena());
  auto map = MapSegments(*d);
  // Segment containing the start byte (tail copy) or 0 (full copy).
  size_t k = 0;
  if (options_.copy_mode == UpdateCopyMode::kTailCopy) {
    while (k + 1 < map.size() &&
           map[k].start + map[k].bytes <= offset) {
      ++k;
    }
  }
  const uint64_t prefix = map.empty() ? 0 : map[k].start;
  const uint64_t size = d->used_bytes;

  // Assemble the new tail through copy-buffer-sized reads.
  std::string tail;
  tail.reserve(size - prefix - deleted + inserted.size());
  if (offset > prefix) {
    const size_t at = tail.size();
    tail.resize(at + (offset - prefix));
    LOB_RETURN_IF_ERROR(ReadRange(map, prefix, offset - prefix, &tail[at]));
  }
  tail.append(inserted);
  if (offset + deleted < size) {
    const size_t at = tail.size();
    tail.resize(at + (size - offset - deleted));
    LOB_RETURN_IF_ERROR(ReadRange(map, offset + deleted,
                                  size - offset - deleted, &tail[at]));
  }
  // Build the new tail first; the old segments stay allocated (and
  // referenced by the on-disk descriptor) until Save() commits, so a fault
  // anywhere in the rebuild leaves the object readable and fsck-clean.
  std::vector<ScopedExtent> fresh;
  std::vector<Segment> to_free;
  for (size_t i = k; i < map.size(); ++i) {
    to_free.push_back(Segment{map[i].page, map[i].alloc});
  }
  LOB_RETURN_IF_ERROR(RebuildTail(&d.value(), k, tail, &ctx, &fresh));
  LOB_RETURN_IF_ERROR(Save(id, *d));
  LOB_RETURN_IF_ERROR(CommitAndFree(&fresh, to_free));
  return ctx.Finish();
}

Status StarburstManager::Insert(ObjectId id, uint64_t offset,
                                std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "starburst.insert");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  if (offset > d->used_bytes) {
    return Status::OutOfRange("insert past object end");
  }
  if (offset == d->used_bytes) return Append(id, data);
  return SpliceBytes(id, offset, data, 0);
}

Status StarburstManager::Delete(ObjectId id, uint64_t offset, uint64_t n) {
  if (n == 0) return Status::OK();
  OpScope obs_scope(sys_->disk(), "starburst.delete");
  return SpliceBytes(id, offset, {}, n);
}

Status StarburstManager::Replace(ObjectId id, uint64_t offset,
                                 std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "starburst.replace");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  if (offset + data.size() > d->used_bytes) {
    return Status::OutOfRange("replace past object end");
  }
  OpContext ctx(sys_->pool(), sys_->arena());
  auto map = MapSegments(*d);
  std::vector<ScopedExtent> fresh;
  std::vector<Segment> to_free;
  uint64_t done = 0;
  for (size_t i = 0; i < map.size() && done < data.size(); ++i) {
    SegInfo& seg = map[i];
    const uint64_t seg_end = seg.start + seg.bytes;
    if (seg_end <= offset + done) continue;
    const uint64_t local = offset + done - seg.start;
    const uint64_t take = std::min(seg.bytes - local, data.size() - done);
    if (sys_->config().shadowing) {
      // Shadow the whole segment (paper 3.3): copy to a new segment with
      // the replaced bytes applied. The shadow stays armed and the old
      // segment stays live until the descriptor commits below — a fault
      // while shadowing a later segment must leave every earlier old
      // segment intact, since the on-disk descriptor still points there.
      std::string content(seg.bytes, '\0');
      LOB_RETURN_IF_ERROR(sys_->pool()->ReadSegmentRange(
          leaf_area_id(), seg.page, seg.bytes, 0, seg.bytes, content.data()));
      content.replace(local, take, data.substr(done, take));
      auto ns =
          ScopedExtent::Allocate(sys_->leaf_area(), sys_->pool(), seg.alloc);
      if (!ns.ok()) return ns.status();
      const uint64_t P2 = page_size();
      uint64_t part = 0;
      while (part < content.size()) {
        const uint64_t chunk = std::min<uint64_t>(
            content.size() - part, sys_->config().copy_buffer_bytes);
        LOB_RETURN_IF_ERROR(sys_->pool()->WriteFreshSegment(
            leaf_area_id(), ns->first_page() + static_cast<PageId>(part / P2),
            content.data() + part, chunk));
        part += chunk;
      }
      to_free.push_back(Segment{seg.page, seg.alloc});
      d->ptrs[i] = ns->first_page();
      seg.page = ns->first_page();
      fresh.push_back(std::move(*ns));
    } else {
      LOB_RETURN_IF_ERROR(sys_->pool()->WriteSegmentRange(
          leaf_area_id(), seg.page, seg.bytes, local, take,
          data.data() + done));
      const PageId p0 = seg.page + static_cast<PageId>(local / page_size());
      const PageId p1 = seg.page + static_cast<PageId>((local + take - 1) /
                                                       page_size());
      ctx.DeferFlush(leaf_area_id(), p0, p1 - p0 + 1);
    }
    done += take;
  }
  LOB_RETURN_IF_ERROR(Save(id, *d));
  LOB_RETURN_IF_ERROR(CommitAndFree(&fresh, to_free));
  return ctx.Finish();
}

StatusOr<uint64_t> StarburstManager::Size(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "starburst.size");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  return static_cast<uint64_t>(d->used_bytes);
}

Status StarburstManager::Destroy(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "starburst.destroy");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  for (const SegInfo& seg : MapSegments(*d)) {
    LOB_RETURN_IF_ERROR(sys_->leaf_area()->Free(seg.page, seg.alloc));
    LOB_RETURN_IF_ERROR(
        sys_->pool()->Invalidate(leaf_area_id(), seg.page, seg.alloc));
  }
  LOB_RETURN_IF_ERROR(sys_->pool()->Invalidate(sys_->meta_area()->id(), id, 1));
  return sys_->meta_area()->Free(id, 1);
}

Status StarburstManager::TrimLast(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "starburst.trim");
  auto d = Load(id);
  if (!d.ok()) return d.status();
  if (d->ptrs.empty()) return Status::OK();
  auto map = MapSegments(*d);
  const SegInfo& last = map.back();
  const uint32_t needed =
      static_cast<uint32_t>(CeilDiv(last.bytes, page_size()));
  if (needed < last.alloc) {
    // Commit the shrunken allocation in the descriptor first: if the
    // trimmed pages were freed before the descriptor said so, a fault in
    // Save would leave the descriptor claiming pages the allocator has
    // already handed back (double-allocation hazard). Free itself is
    // infallible under I/O faults, so this order cannot leak.
    d->last_alloc_pages = needed;
    LOB_RETURN_IF_ERROR(Save(id, *d));
    LOB_RETURN_IF_ERROR(sys_->leaf_area()->Free(last.page + needed,
                                                last.alloc - needed));
  }
  return Status::OK();
}

StatusOr<ObjectStorageStats> StarburstManager::GetStorageStats(ObjectId id) {
  auto d = Load(id);
  if (!d.ok()) return d.status();
  ObjectStorageStats out;
  out.object_bytes = d->used_bytes;
  out.index_pages = 1;  // the descriptor
  out.segments = static_cast<uint32_t>(d->ptrs.size());
  for (const SegInfo& seg : MapSegments(*d)) out.leaf_pages += seg.alloc;
  out.tree_height = 1;
  return out;
}

Status StarburstManager::VisitSegments(
    ObjectId id, const std::function<Status(uint64_t, uint32_t)>& fn) {
  auto d = Load(id);
  if (!d.ok()) return d.status();
  for (const SegInfo& seg : MapSegments(*d)) {
    LOB_RETURN_IF_ERROR(fn(seg.bytes, seg.alloc));
  }
  return Status::OK();
}

Status StarburstManager::VisitOwnedExtents(
    ObjectId id, const std::function<Status(const OwnedExtent&)>& fn) {
  auto d = Load(id);
  if (!d.ok()) return d.status();
  LOB_RETURN_IF_ERROR(fn({sys_->meta_area()->id(), id, 1}));
  for (const SegInfo& seg : MapSegments(*d)) {
    LOB_RETURN_IF_ERROR(fn({leaf_area_id(), seg.page, seg.alloc}));
  }
  return Status::OK();
}

Status StarburstManager::Validate(ObjectId id) {
  auto d = Load(id);
  if (!d.ok()) return d.status();
  auto map = MapSegments(*d);
  uint64_t total = 0;
  for (size_t i = 0; i < map.size(); ++i) {
    const SegInfo& seg = map[i];
    if (i + 1 < map.size()) {
      if (seg.bytes != static_cast<uint64_t>(seg.alloc) * page_size()) {
        return Status::Corruption("middle segment not full");
      }
    } else {
      if (seg.bytes == 0 && map.size() > 0 && d->used_bytes != total) {
        return Status::Corruption("empty last segment");
      }
      if (CeilDiv(seg.bytes, page_size()) > seg.alloc) {
        return Status::Corruption("last segment bytes exceed allocation");
      }
    }
    total += seg.bytes;
  }
  if (total != d->used_bytes) {
    return Status::Corruption("segment bytes do not sum to object size");
  }
  return Status::OK();
}

}  // namespace lob
