// StarburstManager: the Starburst long field manager (paper 2.2, 3.5;
// Lehman & Lindsay 1989).
//
// Extent-based allocation through the binary buddy system. When the
// eventual size of a long field is not known in advance, successive
// segments double in size - first append size, 2x, 4x, ... - until the
// maximum segment size is reached, after which maximum-size segments are
// used; the last segment is trimmed. The long field descriptor holds the
// size of the first and last segments plus an array of pointers to all
// segments; intermediate sizes are implicit in the pattern of growth.
//
// Sequential/random reads, appends and byte-range replaces are efficient.
// Inserting or deleting bytes in the middle necessarily changes the field
// length and, because of the implicit-size descriptor, forces the field
// from the affected segment onward (or, in kFullCopy mode, the entire
// field) to be copied into a new set of segments. The prototype copies
// through a 512 K-byte staging buffer whose allocation cost is not
// modeled, exactly as in paper 3.5.

#ifndef LOB_STARBURST_STARBURST_MANAGER_H_
#define LOB_STARBURST_STARBURST_MANAGER_H_

#include <vector>

#include "buddy/scoped_extent.h"
#include "core/large_object.h"
#include "core/storage_system.h"

namespace lob {

/// How much of the long field an insert/delete rewrites.
enum class UpdateCopyMode {
  /// Copy from the segment containing the start byte through the end
  /// (the implementation described in paper 3.5).
  kTailCopy,
  /// Copy the entire field ("the entire long field ... must be copied",
  /// paper 2.2). Matches Table 3's flat 22.3 s per update on a 10 M-byte
  /// object.
  kFullCopy,
};

struct StarburstOptions {
  /// Cap on segment size (pages). Doubling stops here. 8192 pages = 32
  /// M-byte segments with 4K pages, the paper's buddy-system maximum.
  uint32_t max_segment_pages = 8192;

  UpdateCopyMode copy_mode = UpdateCopyMode::kTailCopy;
};

/// Starburst-style long field manager over a StorageSystem.
class StarburstManager : public LargeObjectManager {
 public:
  StarburstManager(StorageSystem* sys, const StarburstOptions& options);

  [[nodiscard]] StatusOr<ObjectId> Create() override;
  [[nodiscard]] Status Destroy(ObjectId id) override;
  [[nodiscard]] StatusOr<uint64_t> Size(ObjectId id) override;
  [[nodiscard]] Status Read(ObjectId id, uint64_t offset, uint64_t n,
              std::string* out) override;
  [[nodiscard]] Status Append(ObjectId id, std::string_view data) override;
  [[nodiscard]]
  Status Insert(ObjectId id, uint64_t offset, std::string_view data) override;
  [[nodiscard]]
  Status Delete(ObjectId id, uint64_t offset, uint64_t n) override;
  [[nodiscard]]
  Status Replace(ObjectId id, uint64_t offset, std::string_view data) override;
  [[nodiscard]]
  StatusOr<ObjectStorageStats> GetStorageStats(ObjectId id) override;
  [[nodiscard]] Status Validate(ObjectId id) override;
  [[nodiscard]] Status VisitSegments(
      ObjectId id,
      const std::function<Status(uint64_t, uint32_t)>& fn) override;
  [[nodiscard]] Status VisitOwnedExtents(
      ObjectId id,
      const std::function<Status(const OwnedExtent&)>& fn) override;
  [[nodiscard]] Status Trim(ObjectId id) override { return TrimLast(id); }
  Engine engine() const override { return Engine::kStarburst; }

  const StarburstOptions& options() const { return options_; }

  /// Frees the unused whole pages at the right end of the last segment
  /// ("the last segment is trimmed", paper 2.2). Appending afterwards
  /// first refills the trimmed segment's partial page and then rebuilds it
  /// to its pattern size.
  [[nodiscard]] Status TrimLast(ObjectId id);

 private:
  /// Decoded long field descriptor.
  struct Descriptor {
    uint32_t used_bytes = 0;
    uint32_t first_pages = 0;      ///< size of the first segment, pages
    uint32_t last_alloc_pages = 0; ///< allocated size of the last segment
    std::vector<PageId> ptrs;
  };

  /// Location of one segment, derived from the descriptor.
  struct SegInfo {
    PageId page;
    uint64_t start;    ///< object-relative offset of its first byte
    uint64_t bytes;    ///< useful bytes
    uint32_t alloc;    ///< allocated pages
  };

  AreaId leaf_area_id() const { return sys_->leaf_area()->id(); }
  uint32_t page_size() const { return sys_->config().page_size; }

  /// Pattern size (pages) of the segment at position `i`.
  uint32_t PatternPages(uint32_t first_pages, uint32_t i) const;

  [[nodiscard]] StatusOr<Descriptor> Load(ObjectId id);
  [[nodiscard]] Status Save(ObjectId id, const Descriptor& d);

  /// Expands the descriptor into per-segment locations.
  std::vector<SegInfo> MapSegments(const Descriptor& d) const;

  /// Reads object bytes [off, off+n) into dst, one I/O call per
  /// (segment, copy-buffer chunk) intersection.
  [[nodiscard]]
  Status ReadRange(const std::vector<SegInfo>& map, uint64_t off, uint64_t n,
                   char* dst);

  /// Appends `data`, filling the last segment then allocating
  /// pattern-sized successors. Freshly allocated segments are handed back
  /// armed in `fresh`; segments the new descriptor no longer references
  /// are appended to `to_free`. The caller must Save() the descriptor (the
  /// single durable commit point), then CommitAndFree(); until then an
  /// error path rolls the guards back and the on-disk object is untouched.
  [[nodiscard]]
  Status AppendLocked(ObjectId id, Descriptor* d, std::string_view data,
                      OpContext* ctx, std::vector<ScopedExtent>* fresh,
                      std::vector<Segment>* to_free);

  /// Replaces segments [k, end) with segments holding `tail` (already in
  /// memory), following the pattern sizes for positions k, k+1, ...;
  /// writes go through copy-buffer-sized chunks. Same guard protocol as
  /// AppendLocked: new segments stay armed in `fresh` until the caller
  /// saves the descriptor. The *caller* queues the replaced segments for
  /// freeing — this function only builds.
  [[nodiscard]]
  Status RebuildTail(Descriptor* d, size_t k, std::string_view tail,
                     OpContext* ctx, std::vector<ScopedExtent>* fresh);

  /// After a successful Save(): disarms every guard in `fresh` and frees
  /// the replaced segments in `to_free` (dropping their cached pages).
  /// Free is infallible under I/O faults, so this cannot strand the
  /// now-committed descriptor.
  [[nodiscard]]
  Status CommitAndFree(std::vector<ScopedExtent>* fresh,
                       const std::vector<Segment>& to_free);

  /// Shared implementation of Insert/Delete: splice the byte stream.
  [[nodiscard]]
  Status SpliceBytes(ObjectId id, uint64_t offset, std::string_view inserted,
                     uint64_t deleted);

  StorageSystem* sys_;
  StarburstOptions options_;
};

}  // namespace lob

#endif  // LOB_STARBURST_STARBURST_MANAGER_H_
