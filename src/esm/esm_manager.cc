#include "esm/esm_manager.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "trace/trace_span.h"
#include "common/math_util.h"

namespace lob {

namespace {

// Append-style distribution (paper 4.2): all but the last two leaves full;
// the remainder split evenly between the last two, each at least half full.
std::vector<uint64_t> DistributeAppend(uint64_t total, uint64_t cap) {
  std::vector<uint64_t> sizes;
  if (total == 0) return sizes;
  if (total <= cap) {
    sizes.push_back(total);
    return sizes;
  }
  uint64_t rem = total;
  while (rem > 2 * cap) {
    sizes.push_back(cap);
    rem -= cap;
  }
  sizes.push_back((rem + 1) / 2);
  sizes.push_back(rem / 2);
  return sizes;
}

// Basic-insert distribution (Carey et al.): bytes spread evenly over
// ceil(total/cap) leaves.
std::vector<uint64_t> DistributeEven(uint64_t total, uint64_t cap) {
  std::vector<uint64_t> sizes;
  if (total == 0) return sizes;
  const uint64_t k = CeilDiv(total, cap);
  uint64_t rem = total;
  for (uint64_t i = 0; i < k; ++i) {
    const uint64_t take = CeilDiv(rem, k - i);
    sizes.push_back(take);
    rem -= take;
  }
  return sizes;
}

}  // namespace

EsmManager::EsmManager(StorageSystem* sys, const EsmOptions& options)
    : sys_(sys), options_(options), page_size_(sys->config().page_size) {
  LOB_CHECK_GE(options_.leaf_pages, 1u);
  LOB_CHECK_LE(options_.leaf_pages, sys->leaf_area()->max_segment_pages());
  TreeConfig tc;
  tc.pool = sys_->pool();
  tc.meta_area = sys_->meta_area();
  tc.limits = options_.limits;
  tc.shadowing = sys_->config().shadowing;
  tree_ = std::make_unique<PositionalTree>(tc);
}

StatusOr<ObjectId> EsmManager::Create() {
  OpScope obs_scope(sys_->disk(), "esm.create");
  return tree_->CreateObject(static_cast<uint8_t>(Engine::kEsm));
}

Status EsmManager::Destroy(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "esm.destroy");
  std::vector<PageId> leaves;
  LOB_RETURN_IF_ERROR(tree_->VisitLeaves(id, [&](const auto& leaf) {
    leaves.push_back(leaf.page);
    return Status::OK();
  }));
  // Destroy the index first: if the tree walk fails part-way through, the
  // object is still well-formed (leaves intact) and the destroy can be
  // retried. The leaf frees afterwards cannot fail under I/O faults.
  LOB_RETURN_IF_ERROR(tree_->DestroyObject(id));
  for (PageId p : leaves) LOB_RETURN_IF_ERROR(FreeLeaf(p));
  return Status::OK();
}

StatusOr<uint64_t> EsmManager::Size(ObjectId id) {
  OpScope obs_scope(sys_->disk(), "esm.size");
  return tree_->Size(id);
}

Status EsmManager::ReadLeaf(PageId page, uint64_t bytes, uint64_t off,
                            uint64_t n, char* dst) {
  return sys_->pool()->ReadSegmentRange(leaf_area_id(), page, bytes, off, n,
                                        dst);
}

StatusOr<ScopedExtent> EsmManager::WriteNewLeaf(std::string_view content,
                                                OpContext* ctx) {
  LOB_CHECK_LE(content.size(), LeafCapacity());
  auto ext = ScopedExtent::Allocate(sys_->leaf_area(), sys_->pool(),
                                    options_.leaf_pages);
  if (!ext.ok()) return ext.status();
  (void)ctx;
  // A failed write rolls the allocation back via the guard.
  LOB_RETURN_IF_ERROR(sys_->pool()->WriteFreshSegment(
      leaf_area_id(), ext->first_page(), content.data(), content.size()));
  return ext;
}

Status EsmManager::FreeLeaf(PageId page) {
  LOB_RETURN_IF_ERROR(
      sys_->pool()->Invalidate(leaf_area_id(), page, options_.leaf_pages));
  return sys_->leaf_area()->Free(page, options_.leaf_pages);
}

Status EsmManager::Read(ObjectId id, uint64_t offset, uint64_t n,
                        std::string* out) {
  OpScope obs_scope(sys_->disk(), "esm.read");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset + n > *size) return Status::OutOfRange("read past object end");
  out->resize(n);
  uint64_t done = 0;
  while (done < n) {
    auto leaf = tree_->FindLeaf(id, offset + done);
    if (!leaf.ok()) return leaf.status();
    const uint64_t local = offset + done - leaf->start;
    const uint64_t take = std::min<uint64_t>(leaf->bytes - local, n - done);
    LOB_RETURN_IF_ERROR(
        ReadLeaf(leaf->page, leaf->bytes, local, take, out->data() + done));
    done += take;
  }
  return Status::OK();
}

Status EsmManager::AppendInPlace(ObjectId id,
                                 const PositionalTree::LeafInfo& last,
                                 std::string_view data, OpContext* ctx) {
  LOB_RETURN_IF_ERROR(sys_->pool()->WriteSegmentRange(
      leaf_area_id(), last.page, last.bytes, last.bytes, data.size(),
      data.data()));
  const PageId first_touched =
      last.page + static_cast<PageId>(last.bytes / page_size_);
  const PageId last_touched =
      last.page +
      static_cast<PageId>((last.bytes + data.size() - 1) / page_size_);
  ctx->DeferFlush(leaf_area_id(), first_touched,
                  last_touched - first_touched + 1);
  return tree_->UpdateLeaf(id, last.start,
                           static_cast<int64_t>(data.size()), kInvalidPage,
                           ctx);
}

Status EsmManager::AppendWithRedistribution(
    ObjectId id, std::vector<PositionalTree::LeafInfo> parts,
    std::string_view data, OpContext* ctx) {
  LOB_TRACE_SPAN(sys_->disk(), "esm.redistribute");
  const uint64_t cap = LeafCapacity();
  uint64_t total = data.size();
  for (const auto& p : parts) total += p.bytes;
  std::vector<uint64_t> sizes = DistributeAppend(total, cap);

  // Leading leaves whose assigned size equals their current size keep
  // identical content; leave them untouched (this is what makes appends
  // whose size exactly matches the leaf size cheap).
  size_t skip = 0;
  while (skip < parts.size() && skip < sizes.size() &&
         sizes[skip] == parts[skip].bytes) {
    ++skip;
  }
  parts.erase(parts.begin(), parts.begin() + static_cast<long>(skip));
  sizes.erase(sizes.begin(), sizes.begin() + static_cast<long>(skip));

  // Gather the bytes being redistributed: surviving participants + data.
  std::string content;
  content.reserve(total);
  for (const auto& p : parts) {
    const size_t at = content.size();
    content.resize(at + p.bytes);
    LOB_RETURN_IF_ERROR(ReadLeaf(p.page, p.bytes, 0, p.bytes, &content[at]));
  }
  content.append(data);

  // Drop the participants from the tree and free their segments
  // (shadowing: rewritten leaves move to fresh segments).
  uint64_t insert_at;
  if (parts.empty()) {
    // Pure extension: new leaves go after the current end.
    auto size = tree_->Size(id);
    if (!size.ok()) return size.status();
    insert_at = *size;
  } else {
    insert_at = parts.front().start;
  }
  for (const auto& p : parts) {
    auto removed = tree_->RemoveLeaf(id, insert_at, ctx);
    if (!removed.ok()) return removed.status();
    LOB_CHECK_EQ(removed->page, p.page);
    LOB_RETURN_IF_ERROR(FreeLeaf(p.page));
  }

  // Write the redistributed leaves. Each fresh segment stays under guard
  // until the tree references it, so a failure part-way through the loop
  // releases the in-flight segment instead of leaking it.
  uint64_t src = 0;
  for (uint64_t sz : sizes) {
    auto ext = WriteNewLeaf(std::string_view(content).substr(src, sz), ctx);
    if (!ext.ok()) return ext.status();
    LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
        id, insert_at, {static_cast<uint32_t>(sz), ext->first_page()}, ctx));
    ext->Commit();
    insert_at += sz;
    src += sz;
  }
  LOB_CHECK_EQ(src, content.size());
  return Status::OK();
}

Status EsmManager::Append(ObjectId id, std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "esm.append");
  OpContext ctx(sys_->pool(), sys_->arena());
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  Status s;
  if (*size == 0) {
    s = AppendWithRedistribution(id, {}, data, &ctx);
  } else {
    auto last = tree_->LastLeaf(id);
    if (!last.ok()) return last.status();
    if (last->bytes + data.size() <= LeafCapacity()) {
      s = AppendInPlace(id, *last, data, &ctx);
    } else {
      std::vector<PositionalTree::LeafInfo> parts;
      if (last->start > 0) {
        auto left = tree_->FindLeaf(id, last->start - 1);
        if (!left.ok()) return left.status();
        if (left->bytes < LeafCapacity()) parts.push_back(*left);
      }
      parts.push_back(*last);
      s = AppendWithRedistribution(id, std::move(parts), data, &ctx);
    }
  }
  LOB_RETURN_IF_ERROR(s);
  return ctx.Finish();
}

Status EsmManager::RewriteLeaf(ObjectId id,
                               const PositionalTree::LeafInfo& leaf,
                               std::string_view content, OpContext* ctx) {
  LOB_CHECK(!content.empty());
  const int64_t delta = static_cast<int64_t>(content.size()) -
                        static_cast<int64_t>(leaf.bytes);
  if (sys_->config().shadowing) {
    // Write the shadow leaf, repoint the tree at it, and only then free
    // the old segment. A failure before the repoint rolls the shadow back
    // via its guard; freeing first would leave the tree referencing a
    // freed segment if the repoint failed.
    auto ext = WriteNewLeaf(content, ctx);
    if (!ext.ok()) return ext.status();
    LOB_RETURN_IF_ERROR(
        tree_->UpdateLeaf(id, leaf.start, delta, ext->first_page(), ctx));
    ext->Commit();
    return FreeLeaf(leaf.page);
  }
  LOB_RETURN_IF_ERROR(sys_->pool()->WriteSegmentRange(
      leaf_area_id(), leaf.page, leaf.bytes, 0, content.size(),
      content.data()));
  ctx->DeferFlush(leaf_area_id(), leaf.page,
                  static_cast<uint32_t>(CeilDiv(content.size(), page_size_)));
  return tree_->UpdateLeaf(id, leaf.start, delta, kInvalidPage, ctx);
}

Status EsmManager::Insert(ObjectId id, uint64_t offset,
                          std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "esm.insert");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset > *size) return Status::OutOfRange("insert past object end");
  if (offset == *size) return Append(id, data);

  OpContext ctx(sys_->pool(), sys_->arena());
  const uint64_t cap = LeafCapacity();
  auto leaf = tree_->FindLeaf(id, offset);
  if (!leaf.ok()) return leaf.status();
  const uint64_t local = offset - leaf->start;

  if (leaf->bytes + data.size() <= cap) {
    // Fits in the leaf: shadowed rewrite with the bytes spliced in.
    std::string content(leaf->bytes, '\0');
    LOB_RETURN_IF_ERROR(
        ReadLeaf(leaf->page, leaf->bytes, 0, leaf->bytes, content.data()));
    content.insert(local, data.data(), data.size());
    LOB_RETURN_IF_ERROR(RewriteLeaf(id, *leaf, content, &ctx));
    return ctx.Finish();
  }

  // Overflow. Improved algorithm: redistribute with one neighbor when that
  // avoids creating a new leaf.
  if (options_.improved_insert) {
    const uint64_t combined = leaf->bytes + data.size();
    StatusOr<PositionalTree::LeafInfo> left = Status::NotFound("");
    StatusOr<PositionalTree::LeafInfo> right = Status::NotFound("");
    if (leaf->start > 0) left = tree_->FindLeaf(id, leaf->start - 1);
    if (leaf->start + leaf->bytes < *size) {
      right = tree_->FindLeaf(id, leaf->start + leaf->bytes);
    }
    const PositionalTree::LeafInfo* nb = nullptr;
    if (left.ok() && combined + left->bytes <= 2 * cap) {
      nb = &left.value();
    } else if (right.ok() && combined + right->bytes <= 2 * cap) {
      nb = &right.value();
    }
    if (nb != nullptr) {
      const bool nb_is_left = nb->start < leaf->start;
      std::string content;
      content.reserve(combined + nb->bytes);
      auto read_whole = [&](const PositionalTree::LeafInfo& l) -> Status {
        const size_t at = content.size();
        content.resize(at + l.bytes);
        return ReadLeaf(l.page, l.bytes, 0, l.bytes, &content[at]);
      };
      if (nb_is_left) LOB_RETURN_IF_ERROR(read_whole(*nb));
      {
        const size_t at = content.size();
        content.resize(at + leaf->bytes);
        LOB_RETURN_IF_ERROR(
            ReadLeaf(leaf->page, leaf->bytes, 0, leaf->bytes, &content[at]));
        content.insert(at + local, data.data(), data.size());
      }
      if (!nb_is_left) LOB_RETURN_IF_ERROR(read_whole(*nb));

      const uint64_t base = std::min(nb->start, leaf->start);
      const uint64_t left_sz = (content.size() + 1) / 2;
      const uint64_t right_sz = content.size() - left_sz;
      LOB_CHECK_LE(left_sz, cap);
      // Replace the two leaves with two rewritten ones.
      for (int i = 0; i < 2; ++i) {
        auto removed = tree_->RemoveLeaf(id, base, &ctx);
        if (!removed.ok()) return removed.status();
        LOB_RETURN_IF_ERROR(FreeLeaf(removed->page));
      }
      auto lp = WriteNewLeaf(std::string_view(content).substr(0, left_sz),
                             &ctx);
      if (!lp.ok()) return lp.status();
      LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
          id, base, {static_cast<uint32_t>(left_sz), lp->first_page()},
          &ctx));
      lp->Commit();
      auto rp = WriteNewLeaf(std::string_view(content).substr(left_sz), &ctx);
      if (!rp.ok()) return rp.status();
      LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
          id, base + left_sz,
          {static_cast<uint32_t>(right_sz), rp->first_page()}, &ctx));
      rp->Commit();
      return ctx.Finish();
    }
  }

  // Basic algorithm: spread the leaf's bytes plus the new bytes evenly
  // over ceil(total/cap) fresh leaves.
  std::string content(leaf->bytes, '\0');
  LOB_RETURN_IF_ERROR(
      ReadLeaf(leaf->page, leaf->bytes, 0, leaf->bytes, content.data()));
  content.insert(local, data.data(), data.size());
  auto removed = tree_->RemoveLeaf(id, leaf->start, &ctx);
  if (!removed.ok()) return removed.status();
  LOB_RETURN_IF_ERROR(FreeLeaf(removed->page));
  uint64_t at = leaf->start;
  uint64_t src = 0;
  for (uint64_t sz : DistributeEven(content.size(), cap)) {
    auto ext = WriteNewLeaf(std::string_view(content).substr(src, sz), &ctx);
    if (!ext.ok()) return ext.status();
    LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
        id, at, {static_cast<uint32_t>(sz), ext->first_page()}, &ctx));
    ext->Commit();
    at += sz;
    src += sz;
  }
  return ctx.Finish();
}

Status EsmManager::Delete(ObjectId id, uint64_t offset, uint64_t n) {
  if (n == 0) return Status::OK();
  OpScope obs_scope(sys_->disk(), "esm.delete");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset + n > *size) return Status::OutOfRange("delete past object end");

  OpContext ctx(sys_->pool(), sys_->arena());
  uint64_t remaining = n;
  while (remaining > 0) {
    auto leaf = tree_->FindLeaf(id, offset);
    if (!leaf.ok()) return leaf.status();
    const uint64_t local = offset - leaf->start;
    const uint64_t take = std::min<uint64_t>(leaf->bytes - local, remaining);
    if (local == 0 && take == leaf->bytes) {
      auto removed = tree_->RemoveLeaf(id, leaf->start, &ctx);
      if (!removed.ok()) return removed.status();
      LOB_RETURN_IF_ERROR(FreeLeaf(removed->page));
    } else {
      std::string content(leaf->bytes, '\0');
      LOB_RETURN_IF_ERROR(
          ReadLeaf(leaf->page, leaf->bytes, 0, leaf->bytes, content.data()));
      content.erase(local, take);
      LOB_RETURN_IF_ERROR(RewriteLeaf(id, *leaf, content, &ctx));
    }
    remaining -= take;
  }
  LOB_RETURN_IF_ERROR(FixupUnderflow(id, offset, &ctx));
  return ctx.Finish();
}

Status EsmManager::FixupUnderflow(ObjectId id, uint64_t offset,
                                  OpContext* ctx) {
  LOB_TRACE_SPAN(sys_->disk(), "esm.fixup");
  const uint64_t cap = LeafCapacity();
  const uint64_t half = cap / 2;
  for (int round = 0; round < 4; ++round) {
    auto size = tree_->Size(id);
    if (!size.ok()) return size.status();
    if (*size == 0) return Status::OK();
    const uint64_t probe = std::min(offset, *size - 1);
    auto leaf = tree_->FindLeaf(id, probe);
    if (!leaf.ok()) return leaf.status();
    // Candidates: the leaf at the deletion boundary and its left neighbor.
    PositionalTree::LeafInfo cand = *leaf;
    if (cand.bytes >= half && cand.start > 0) {
      auto left = tree_->FindLeaf(id, cand.start - 1);
      if (!left.ok()) return left.status();
      cand = *left;
    }
    if (cand.bytes >= half) return Status::OK();

    // Pick a sibling: prefer left, else right; none -> single leaf, done.
    StatusOr<PositionalTree::LeafInfo> sib = Status::NotFound("");
    if (cand.start > 0) {
      sib = tree_->FindLeaf(id, cand.start - 1);
    } else if (cand.start + cand.bytes < *size) {
      sib = tree_->FindLeaf(id, cand.start + cand.bytes);
    }
    if (!sib.ok()) return Status::OK();

    const PositionalTree::LeafInfo& a =
        sib->start < cand.start ? *sib : cand;
    const PositionalTree::LeafInfo& b =
        sib->start < cand.start ? cand : *sib;
    std::string content(a.bytes + b.bytes, '\0');
    LOB_RETURN_IF_ERROR(ReadLeaf(a.page, a.bytes, 0, a.bytes, content.data()));
    LOB_RETURN_IF_ERROR(
        ReadLeaf(b.page, b.bytes, 0, b.bytes, content.data() + a.bytes));

    for (int i = 0; i < 2; ++i) {
      auto removed = tree_->RemoveLeaf(id, a.start, ctx);
      if (!removed.ok()) return removed.status();
      LOB_RETURN_IF_ERROR(FreeLeaf(removed->page));
    }
    if (content.size() <= cap) {
      // Merge into one leaf.
      auto ext = WriteNewLeaf(content, ctx);
      if (!ext.ok()) return ext.status();
      LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
          id, a.start,
          {static_cast<uint32_t>(content.size()), ext->first_page()}, ctx));
      ext->Commit();
      continue;  // the merged leaf may itself be underfull
    }
    // Borrow: split evenly (both at least half full since total > cap).
    const uint64_t left_sz = (content.size() + 1) / 2;
    auto lp = WriteNewLeaf(std::string_view(content).substr(0, left_sz), ctx);
    if (!lp.ok()) return lp.status();
    LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
        id, a.start, {static_cast<uint32_t>(left_sz), lp->first_page()},
        ctx));
    lp->Commit();
    auto rp = WriteNewLeaf(std::string_view(content).substr(left_sz), ctx);
    if (!rp.ok()) return rp.status();
    LOB_RETURN_IF_ERROR(tree_->InsertLeaf(
        id, a.start + left_sz,
        {static_cast<uint32_t>(content.size() - left_sz), rp->first_page()},
        ctx));
    rp->Commit();
    // Both halves are at least half full; one more round re-checks the
    // other deletion boundary.
  }
  return Status::OK();
}

Status EsmManager::Replace(ObjectId id, uint64_t offset,
                           std::string_view data) {
  if (data.empty()) return Status::OK();
  OpScope obs_scope(sys_->disk(), "esm.replace");
  auto size = tree_->Size(id);
  if (!size.ok()) return size.status();
  if (offset + data.size() > *size) {
    return Status::OutOfRange("replace past object end");
  }
  OpContext ctx(sys_->pool(), sys_->arena());
  uint64_t done = 0;
  while (done < data.size()) {
    auto leaf = tree_->FindLeaf(id, offset + done);
    if (!leaf.ok()) return leaf.status();
    const uint64_t local = offset + done - leaf->start;
    const uint64_t take =
        std::min<uint64_t>(leaf->bytes - local, data.size() - done);
    if (sys_->config().shadowing) {
      std::string content(leaf->bytes, '\0');
      LOB_RETURN_IF_ERROR(
          ReadLeaf(leaf->page, leaf->bytes, 0, leaf->bytes, content.data()));
      content.replace(local, take, data.substr(done, take));
      LOB_RETURN_IF_ERROR(RewriteLeaf(id, *leaf, content, &ctx));
    } else {
      LOB_RETURN_IF_ERROR(sys_->pool()->WriteSegmentRange(
          leaf_area_id(), leaf->page, leaf->bytes, local, take,
          data.data() + done));
      const PageId p0 = leaf->page + static_cast<PageId>(local / page_size_);
      const PageId p1 =
          leaf->page + static_cast<PageId>((local + take - 1) / page_size_);
      ctx.DeferFlush(leaf_area_id(), p0, p1 - p0 + 1);
    }
    done += take;
  }
  return ctx.Finish();
}

StatusOr<ObjectStorageStats> EsmManager::GetStorageStats(ObjectId id) {
  auto tree_stats = tree_->Validate(id);
  if (!tree_stats.ok()) return tree_stats.status();
  ObjectStorageStats out;
  out.object_bytes = tree_stats->bytes;
  out.index_pages = tree_stats->index_pages;
  out.leaf_pages =
      static_cast<uint64_t>(tree_stats->leaves) * options_.leaf_pages;
  out.segments = tree_stats->leaves;
  out.tree_height = tree_stats->height;
  return out;
}

Status EsmManager::VisitSegments(
    ObjectId id, const std::function<Status(uint64_t, uint32_t)>& fn) {
  return tree_->VisitLeaves(id, [&](const auto& leaf) {
    return fn(leaf.bytes, options_.leaf_pages);
  });
}

Status EsmManager::VisitOwnedExtents(
    ObjectId id, const std::function<Status(const OwnedExtent&)>& fn) {
  LOB_RETURN_IF_ERROR(tree_->VisitIndexPages(id, [&](PageId page) {
    return fn({sys_->meta_area()->id(), page, 1});
  }));
  return tree_->VisitLeaves(id, [&](const auto& leaf) {
    return fn({leaf_area_id(), leaf.page, options_.leaf_pages});
  });
}

Status EsmManager::Validate(ObjectId id) {
  auto tree_stats = tree_->Validate(id);
  if (!tree_stats.ok()) return tree_stats.status();
  const uint64_t cap = LeafCapacity();
  Status leaf_check = Status::OK();
  LOB_RETURN_IF_ERROR(tree_->VisitLeaves(id, [&](const auto& leaf) {
    if (leaf.bytes == 0 || leaf.bytes > cap) {
      leaf_check = Status::Corruption("leaf byte count out of range");
    }
    return Status::OK();
  }));
  return leaf_check;
}

}  // namespace lob
