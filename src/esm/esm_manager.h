// EsmManager: the EXODUS Storage Manager large object structure (paper
// 2.1, 3.4; Carey et al. 1986).
//
// Large objects are B-tree-like positional trees whose leaves are
// fixed-size segments of `leaf_pages` physically adjacent disk blocks
// (1, 4, 16 and 64 pages in the study). Reads fetch only the pages that
// contain the requested bytes. Updates follow the shadowing discipline: any
// update that overwrites useful bytes of a leaf allocates a new leaf of the
// same size and performs the update there; pure appends are done in place.
// Only the blocks of a leaf that are actually dirty are written, in one
// sequential I/O call.
//
// Appends implement the redistribution rule of paper 4.2: when the
// rightmost leaf overflows, the new bytes, the bytes of the rightmost leaf
// and the bytes of its left neighbor (if it has free space) are
// redistributed so that all but the two rightmost leaves are full and the
// remaining bytes are split evenly between the last two (each at least
// half full). Byte-range inserts implement both the *basic* and the
// *improved* algorithm of Carey et al.; the improved one (the default, used
// for the paper's results) redistributes with a neighbor when that avoids
// creating a new leaf.

#ifndef LOB_ESM_ESM_MANAGER_H_
#define LOB_ESM_ESM_MANAGER_H_

#include <memory>
#include <vector>

#include "buddy/scoped_extent.h"
#include "core/large_object.h"
#include "core/storage_system.h"
#include "lobtree/positional_tree.h"

namespace lob {

/// Tuning knobs for the ESM structure.
struct EsmOptions {
  /// Fixed leaf segment size in pages; the client hint of [Care86].
  uint32_t leaf_pages = 4;

  /// Use the improved insert algorithm (redistribute with a neighbor to
  /// avoid a new leaf). False selects the basic algorithm (ablation).
  bool improved_insert = true;

  /// Tree fan-out; tests shrink it, experiments use the paper's defaults.
  TreeLimits limits;
};

/// EXODUS-style large object manager over a StorageSystem.
class EsmManager : public LargeObjectManager {
 public:
  EsmManager(StorageSystem* sys, const EsmOptions& options);

  [[nodiscard]] StatusOr<ObjectId> Create() override;
  [[nodiscard]] Status Destroy(ObjectId id) override;
  [[nodiscard]] StatusOr<uint64_t> Size(ObjectId id) override;
  [[nodiscard]] Status Read(ObjectId id, uint64_t offset, uint64_t n,
              std::string* out) override;
  [[nodiscard]] Status Append(ObjectId id, std::string_view data) override;
  [[nodiscard]]
  Status Insert(ObjectId id, uint64_t offset, std::string_view data) override;
  [[nodiscard]]
  Status Delete(ObjectId id, uint64_t offset, uint64_t n) override;
  [[nodiscard]]
  Status Replace(ObjectId id, uint64_t offset, std::string_view data) override;
  [[nodiscard]]
  StatusOr<ObjectStorageStats> GetStorageStats(ObjectId id) override;
  [[nodiscard]] Status Validate(ObjectId id) override;
  [[nodiscard]] Status VisitSegments(
      ObjectId id,
      const std::function<Status(uint64_t, uint32_t)>& fn) override;
  [[nodiscard]] Status VisitOwnedExtents(
      ObjectId id,
      const std::function<Status(const OwnedExtent&)>& fn) override;
  [[nodiscard]] Status Trim(ObjectId id) override {
    OpScope obs_scope(sys_->disk(), "esm.trim");
    return tree_->Size(id).status();  // fixed-size leaves: nothing to trim
  }
  Engine engine() const override { return Engine::kEsm; }

  const EsmOptions& options() const { return options_; }

 private:
  uint64_t LeafCapacity() const {
    return static_cast<uint64_t>(options_.leaf_pages) * page_size_;
  }

  AreaId leaf_area_id() const { return sys_->leaf_area()->id(); }

  /// Reads `n` bytes at `off` within a leaf holding `bytes` useful bytes.
  [[nodiscard]]
  Status ReadLeaf(PageId page, uint64_t bytes, uint64_t off, uint64_t n,
                  char* dst);

  /// Allocates a leaf segment under guard and writes `content` into its
  /// first pages with one sequential I/O. The caller must Commit() the
  /// returned extent once the tree references the leaf; otherwise the
  /// guard releases the segment on scope exit (no leak on error paths).
  [[nodiscard]]
  StatusOr<ScopedExtent> WriteNewLeaf(std::string_view content,
                                      OpContext* ctx);

  /// Frees a leaf segment, dropping any buffered copies of its pages.
  [[nodiscard]] Status FreeLeaf(PageId page);

  /// Appends within the rightmost leaf (no overflow). In place: the leaf is
  /// not shadowed (paper 3.3).
  [[nodiscard]]
  Status AppendInPlace(ObjectId id, const PositionalTree::LeafInfo& last,
                       std::string_view data, OpContext* ctx);

  /// Overflow append: redistribution per paper 4.2.
  [[nodiscard]] Status AppendWithRedistribution(ObjectId id,
                                  std::vector<PositionalTree::LeafInfo> parts,
                                  std::string_view data, OpContext* ctx);

  /// Rewrites one leaf with new content of equal-or-different size
  /// (shadowed). `delta` = content.size() - old bytes.
  [[nodiscard]]
  Status RewriteLeaf(ObjectId id, const PositionalTree::LeafInfo& leaf,
                     std::string_view content, OpContext* ctx);

  /// Merges/borrows the underfull leaf at `offset` with a sibling.
  [[nodiscard]]
  Status FixupUnderflow(ObjectId id, uint64_t offset, OpContext* ctx);

  StorageSystem* sys_;
  EsmOptions options_;
  uint32_t page_size_;
  std::unique_ptr<PositionalTree> tree_;
};

}  // namespace lob

#endif  // LOB_ESM_ESM_MANAGER_H_
