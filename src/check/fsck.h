// Fsck: cross-engine storage consistency checker.
//
// The paper's structures rely on shadowing for consistency, but a fault in
// the middle of a structural update can still strand state: an extent the
// allocator thinks is taken but no object references (a *leak*), a page
// two structures claim at once (*double allocation*), or an object whose
// index no longer matches its bytes (*corruption*). Fsck makes every such
// state detectable after any prefix of writes:
//
//   1. Per-object structure: the engine's own Validate() (ESM positional
//      tree counts vs. leaf contents, Starburst descriptor doubling /
//      middle-segments-full / last-trim rules, EOS no-holes), plus an
//      optional EOS segment-size-threshold audit.
//   2. Reference validity: every extent an object reports through
//      VisitOwnedExtents must be allocated in the owning DatabaseArea
//      (else the object references freed pages) and claimed by exactly
//      one owner (else two structures share pages).
//   3. Byte accounting: the sum of per-segment useful bytes reported by
//      VisitSegments must equal the object's logical size.
//   4. Allocator sweep: every allocated non-directory page of both areas
//      must be claimed by some object (or the database superblock /
//      catalog chain); an unclaimed allocated extent is a leak.
//
// The walk runs inside StorageSystem::UnmeteredSection, so it neither
// perturbs measured I/O costs nor trips armed fault injections - fsck can
// examine a system whose disk still has a sticky fault armed.

#ifndef LOB_CHECK_FSCK_H_
#define LOB_CHECK_FSCK_H_

#include <string>
#include <utility>
#include <vector>

#include "core/large_object.h"
#include "core/storage_system.h"

namespace lob {

class Database;

struct FsckOptions {
  /// When non-zero, audit EOS objects against this segment size threshold
  /// T (pages): an adjacent pair of segments where one side holds fewer
  /// than T pages' worth of bytes and the pair is small enough to merge is
  /// reported as a structure issue. Opt-in because freshly appended
  /// objects legitimately carry sub-threshold doubling segments (the
  /// invariant only holds for regions EnforceThreshold has repaired).
  uint32_t eos_threshold_pages = 0;
};

enum class FsckIssueKind : uint8_t {
  kStructure,             ///< engine invariant broken (corruption)
  kUnallocatedReference,  ///< object references pages the allocator freed
  kDoubleAllocated,       ///< one page claimed by two owners
  kByteDrift,             ///< segment byte sum != logical object size
  kLeakedExtent,          ///< allocated pages no owner claims
};

const char* FsckIssueKindName(FsckIssueKind kind);

struct FsckIssue {
  FsckIssueKind kind;
  AreaId area = 0;
  PageId page = kInvalidPage;  ///< first affected page (if page-scoped)
  uint32_t pages = 0;          ///< run length (if page-scoped)
  ObjectId object = kInvalidPage;  ///< offending object (if object-scoped)
  std::string detail;

  std::string ToString() const;
};

struct FsckReport {
  std::vector<FsckIssue> issues;

  bool clean() const { return issues.empty(); }

  /// Any issue other than a leaked extent: the structures themselves are
  /// wrong, not merely wasteful.
  bool HasCorruption() const;

  /// Allocated-but-unreferenced extents exist.
  bool HasLeaks() const;

  /// One line per issue, deterministic order.
  std::string ToString() const;
};

/// Checks the given objects (each with the manager that owns it) and
/// sweeps both allocator areas. `extra_meta_pages` lists meta-area pages
/// that are legitimately allocated but belong to no object (superblock,
/// catalog chain); pass {} when checking bare StorageSystem setups.
[[nodiscard]] StatusOr<FsckReport> FsckObjects(
    StorageSystem* sys,
    const std::vector<std::pair<ObjectId, LargeObjectManager*>>& objects,
    const std::vector<PageId>& extra_meta_pages = {},
    const FsckOptions& options = FsckOptions());

/// Whole-database check: superblock + catalog chain + every cataloged
/// object (resolved to its engine's manager with `parameter`).
[[nodiscard]] StatusOr<FsckReport> FsckDatabase(
    Database* db, uint32_t parameter = 4,
    const FsckOptions& options = FsckOptions());

}  // namespace lob

#endif  // LOB_CHECK_FSCK_H_
