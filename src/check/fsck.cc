#include "check/fsck.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "common/logging.h"
#include "core/database.h"

namespace lob {

namespace {

uint64_t PageKey(AreaId area, PageId page) {
  return (static_cast<uint64_t>(area) << 32) | page;
}

std::string Sprintf(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}

/// Claims every page of `ext` for `owner`, reporting double claims and
/// references to pages the allocator does not consider allocated.
void ClaimExtent(DatabaseArea* area_obj, AreaId area, ObjectId owner,
                 const LargeObjectManager::OwnedExtent& ext,
                 std::unordered_map<uint64_t, ObjectId>* claims,
                 std::vector<FsckIssue>* issues) {
  for (uint32_t i = 0; i < ext.pages; ++i) {
    const PageId page = ext.first_page + i;
    if (!area_obj->IsAllocated(page)) {
      issues->push_back(
          {FsckIssueKind::kUnallocatedReference, area, page, 1, owner,
           Sprintf("object %u references page %u:%u which the allocator "
                   "reports free",
                   owner, area, page)});
      continue;
    }
    auto [it, inserted] = claims->emplace(PageKey(area, page), owner);
    if (!inserted) {
      issues->push_back(
          {FsckIssueKind::kDoubleAllocated, area, page, 1, owner,
           Sprintf("page %u:%u claimed by object %u and object %u", area,
                   page, it->second, owner)});
    }
  }
}

/// Sweeps one area for allocated non-directory pages nobody claimed,
/// reporting each maximal run as one leak.
void SweepArea(DatabaseArea* area_obj, AreaId area,
               const std::unordered_map<uint64_t, ObjectId>& claims,
               std::vector<FsckIssue>* issues) {
  const uint32_t stride = area_obj->blocks_per_space() + 1;
  const PageId end = area_obj->num_spaces() * stride;
  PageId run_start = kInvalidPage;
  uint32_t run_len = 0;
  auto flush_run = [&]() {
    if (run_len == 0) return;
    issues->push_back(
        {FsckIssueKind::kLeakedExtent, area, run_start, run_len,
         kInvalidPage,
         Sprintf("pages %u:[%u,+%u) allocated but referenced by no object",
                 area, run_start, run_len)});
    run_len = 0;
  };
  for (PageId page = 0; page < end; ++page) {
    const bool leaked = !area_obj->IsDirectoryPage(page) &&
                        area_obj->IsAllocated(page) &&
                        claims.count(PageKey(area, page)) == 0;
    if (leaked) {
      if (run_len == 0) run_start = page;
      ++run_len;
    } else {
      flush_run();
    }
  }
  flush_run();
}

/// Opt-in EOS threshold audit: an adjacent segment pair with one side
/// below T pages' worth of bytes that is small enough to merge into
/// segments of at least T pages is a violation (paper 2.3).
Status AuditEosThreshold(LargeObjectManager* mgr, ObjectId id,
                         uint32_t threshold_pages, uint32_t page_size,
                         std::vector<FsckIssue>* issues) {
  std::vector<uint64_t> seg_bytes;
  LOB_RETURN_IF_ERROR(mgr->VisitSegments(
      id, [&](uint64_t bytes, uint32_t /*pages*/) {
        seg_bytes.push_back(bytes);
        return Status::OK();
      }));
  const uint64_t tp = static_cast<uint64_t>(threshold_pages) * page_size;
  for (size_t i = 0; i + 1 < seg_bytes.size(); ++i) {
    const uint64_t a = seg_bytes[i];
    const uint64_t b = seg_bytes[i + 1];
    if ((a < tp || b < tp) && a + b <= 2 * tp + 2 * page_size) {
      issues->push_back(
          {FsckIssueKind::kStructure, 0, kInvalidPage, 0, id,
           Sprintf("object %u: segments %zu (%" PRIu64 " B) and %zu "
                   "(%" PRIu64 " B) violate threshold T=%u pages",
                   id, i, a, i + 1, b, threshold_pages)});
    }
  }
  return Status::OK();
}

}  // namespace

const char* FsckIssueKindName(FsckIssueKind kind) {
  switch (kind) {
    case FsckIssueKind::kStructure:
      return "structure";
    case FsckIssueKind::kUnallocatedReference:
      return "unallocated-reference";
    case FsckIssueKind::kDoubleAllocated:
      return "double-allocated";
    case FsckIssueKind::kByteDrift:
      return "byte-drift";
    case FsckIssueKind::kLeakedExtent:
      return "leaked-extent";
  }
  return "unknown";
}

std::string FsckIssue::ToString() const {
  return std::string(FsckIssueKindName(kind)) + ": " + detail;
}

bool FsckReport::HasCorruption() const {
  return std::any_of(issues.begin(), issues.end(), [](const FsckIssue& i) {
    return i.kind != FsckIssueKind::kLeakedExtent;
  });
}

bool FsckReport::HasLeaks() const {
  return std::any_of(issues.begin(), issues.end(), [](const FsckIssue& i) {
    return i.kind == FsckIssueKind::kLeakedExtent;
  });
}

std::string FsckReport::ToString() const {
  if (issues.empty()) return "fsck: clean\n";
  std::string out;
  for (const FsckIssue& i : issues) {
    out += i.ToString();
    out += '\n';
  }
  return out;
}

StatusOr<FsckReport> FsckObjects(
    StorageSystem* sys,
    const std::vector<std::pair<ObjectId, LargeObjectManager*>>& objects,
    const std::vector<PageId>& extra_meta_pages, const FsckOptions& options) {
  // The whole walk is an audit: do not meter it, do not let it trip armed
  // fault injections (suspended sections are exempt; see sim_disk.h).
  StorageSystem::UnmeteredSection unmetered(sys);
  FsckReport report;
  std::unordered_map<uint64_t, ObjectId> claims;
  const AreaId meta = sys->meta_area()->id();
  const AreaId leaf = sys->leaf_area()->id();

  for (PageId page : extra_meta_pages) {
    ClaimExtent(sys->meta_area(), meta, kInvalidPage, {meta, page, 1},
                &claims, &report.issues);
  }

  for (const auto& [id, mgr] : objects) {
    // 1. Engine-specific structural invariants.
    Status valid = mgr->Validate(id);
    if (!valid.ok()) {
      report.issues.push_back(
          {FsckIssueKind::kStructure, 0, kInvalidPage, 0, id,
           Sprintf("object %u (%s): %s", id, EngineName(mgr->engine()),
                   valid.ToString().c_str())});
      continue;  // reference walks on a broken structure are unreliable
    }

    // 2. Every owned extent must be allocated and singly claimed.
    Status walked = mgr->VisitOwnedExtents(
        id, [&](const LargeObjectManager::OwnedExtent& ext) {
          DatabaseArea* area_obj =
              ext.area == meta ? sys->meta_area() : sys->leaf_area();
          ClaimExtent(area_obj, ext.area, id, ext, &claims, &report.issues);
          return Status::OK();
        });
    LOB_RETURN_IF_ERROR(walked);

    // 3. Byte accounting: segment bytes must sum to the logical size.
    uint64_t seg_sum = 0;
    LOB_RETURN_IF_ERROR(mgr->VisitSegments(
        id, [&](uint64_t bytes, uint32_t /*pages*/) {
          seg_sum += bytes;
          return Status::OK();
        }));
    auto size = mgr->Size(id);
    if (!size.ok()) return size.status();
    if (seg_sum != *size) {
      report.issues.push_back(
          {FsckIssueKind::kByteDrift, 0, kInvalidPage, 0, id,
           Sprintf("object %u: segments hold %" PRIu64
                   " bytes but the object claims %" PRIu64,
                   id, seg_sum, *size)});
    }

    // 4. Optional EOS threshold audit.
    if (options.eos_threshold_pages > 0 && mgr->engine() == Engine::kEos) {
      LOB_RETURN_IF_ERROR(AuditEosThreshold(mgr, id,
                                            options.eos_threshold_pages,
                                            sys->config().page_size,
                                            &report.issues));
    }
  }

  // 5. Allocator sweep: anything allocated that nobody claimed is a leak.
  SweepArea(sys->meta_area(), meta, claims, &report.issues);
  SweepArea(sys->leaf_area(), leaf, claims, &report.issues);
  return report;
}

StatusOr<FsckReport> FsckDatabase(Database* db, uint32_t parameter,
                                  const FsckOptions& options) {
  auto catalog_pages = db->catalog()->Pages();
  if (!catalog_pages.ok()) return catalog_pages.status();
  std::vector<PageId> extra = *catalog_pages;
  extra.push_back(db->superblock());

  auto bindings = db->catalog()->List();
  if (!bindings.ok()) return bindings.status();
  std::vector<std::pair<ObjectId, LargeObjectManager*>> objects;
  for (const auto& [name, id] : *bindings) {
    auto mgr = db->ManagerForObject(id, parameter);
    if (!mgr.ok()) return mgr.status();
    objects.emplace_back(id, *mgr);
  }
  return FsckObjects(db->sys(), objects, extra, options);
}

}  // namespace lob
