#include "core/storage_system.h"

namespace lob {

StorageSystem::StorageSystem(const StorageConfig& config) : config_(config) {
  obs_ = std::make_unique<ObsRegistry>();
  obs_->set_high_res_op_histograms(config_.obs_high_res_quantiles);
  disk_ = std::make_unique<SimDisk>(config_);
  disk_->set_obs(obs_.get());
  pool_ = std::make_unique<BufferPool>(disk_.get(), config_);
  const AreaId meta_id = disk_->CreateArea();
  const AreaId leaf_id = disk_->CreateArea();
  meta_area_ = std::make_unique<DatabaseArea>(pool_.get(), meta_id, config_);
  leaf_area_ = std::make_unique<DatabaseArea>(pool_.get(), leaf_id, config_);
}

}  // namespace lob
