// LargeObjectManager: the public byte-level interface all three storage
// structures implement.
//
// The paper's requirement list (1): create/destroy objects of virtually
// unlimited size; read or replace a random byte range; insert or delete
// bytes at arbitrary positions; append bytes at the end. Objects are
// identified by the page number of their root / descriptor page, which
// lives alone in its own page of the meta area.

#ifndef LOB_CORE_LARGE_OBJECT_H_
#define LOB_CORE_LARGE_OBJECT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "iomodel/sim_disk.h"

namespace lob {

/// Object identity: the meta-area page holding its root or descriptor.
using ObjectId = PageId;

/// The storage structure behind a manager.
enum class Engine : uint8_t {
  kEsm = 1,        ///< EXODUS: fixed-size leaves under a positional tree
  kStarburst = 2,  ///< Starburst: doubling extents, descriptor array
  kEos = 3,        ///< EOS: variable-size segments under a positional tree
};

const char* EngineName(Engine engine);

/// Per-object storage accounting (the paper's utilization metric).
struct ObjectStorageStats {
  uint64_t object_bytes = 0;  ///< logical size
  uint64_t leaf_pages = 0;    ///< pages allocated to data segments
  uint64_t index_pages = 0;   ///< root/descriptor plus internal nodes
  uint32_t segments = 0;      ///< number of leaf segments
  uint16_t tree_height = 1;

  /// object size / space required to store it, index pages included.
  double Utilization(uint32_t page_size) const {
    const uint64_t total = (leaf_pages + index_pages) * page_size;
    return total == 0 ? 1.0
                      : static_cast<double>(object_bytes) /
                            static_cast<double>(total);
  }
};

/// Abstract large object manager. Implementations are not thread-safe (the
/// study simulates a single-user system).
class LargeObjectManager {
 public:
  virtual ~LargeObjectManager() = default;

  /// Creates an empty object and returns its id.
  [[nodiscard]] virtual StatusOr<ObjectId> Create() = 0;

  /// Destroys the object, freeing every page it owns.
  [[nodiscard]] virtual Status Destroy(ObjectId id) = 0;

  /// Logical size in bytes.
  [[nodiscard]] virtual StatusOr<uint64_t> Size(ObjectId id) = 0;

  /// Reads `n` bytes at `offset` into `out` (resized to `n`).
  [[nodiscard]] virtual Status Read(ObjectId id, uint64_t offset, uint64_t n,
                      std::string* out) = 0;

  /// Appends `data` at the end of the object.
  [[nodiscard]] virtual Status Append(ObjectId id, std::string_view data) = 0;

  /// Inserts `data` before byte `offset` (offset == size appends).
  [[nodiscard]] virtual Status Insert(ObjectId id, uint64_t offset,
                        std::string_view data) = 0;

  /// Deletes `n` bytes starting at `offset`.
  [[nodiscard]]
  virtual Status Delete(ObjectId id, uint64_t offset, uint64_t n) = 0;

  /// Overwrites bytes [offset, offset + data.size()) without changing the
  /// object length.
  [[nodiscard]] virtual Status Replace(ObjectId id, uint64_t offset,
                         std::string_view data) = 0;

  /// Walks the object's structure and reports storage accounting. Intended
  /// for audits/tests; wrap in StorageSystem::UnmeteredSection when the
  /// walk must not count toward measured I/O.
  [[nodiscard]]
  virtual StatusOr<ObjectStorageStats> GetStorageStats(ObjectId id) = 0;

  /// Structural self-check (invariants of the specific engine).
  [[nodiscard]] virtual Status Validate(ObjectId id) = 0;

  /// Calls `fn(bytes, pages)` for every data segment of the object, left
  /// to right (`bytes` = useful bytes, `pages` = allocated pages). Useful
  /// for analyzing how updates degrade segment sizes (paper 4.4.2).
  [[nodiscard]] virtual Status VisitSegments(
      ObjectId id,
      const std::function<Status(uint64_t bytes, uint32_t pages)>& fn) = 0;

  /// One extent the object owns, as reported by VisitOwnedExtents.
  struct OwnedExtent {
    AreaId area = 0;
    PageId first_page = kInvalidPage;
    uint32_t pages = 0;
  };

  /// Calls `fn` for every extent of every area the object owns: its data
  /// segments (with their *allocated* page counts, slack included) and its
  /// index/descriptor pages, the root page included. This is the ground
  /// truth the consistency checker (src/check) cross-references against
  /// the allocator: a page allocated but never reported is a leak; a page
  /// reported twice or reported-but-free is corruption.
  [[nodiscard]] virtual Status VisitOwnedExtents(
      ObjectId id, const std::function<Status(const OwnedExtent&)>& fn) = 0;

  /// Releases growth slack: frees allocated-but-unused whole pages at the
  /// right end of the object ("the last segment is trimmed", paper 2.2).
  /// A no-op for engines without over-allocation (ESM).
  [[nodiscard]] virtual Status Trim(ObjectId id) = 0;

  virtual Engine engine() const = 0;
};

}  // namespace lob

#endif  // LOB_CORE_LARGE_OBJECT_H_
