// StorageSystem: the assembled substrate the three large object managers
// run on.
//
// Mirrors the paper's setup (4.1): one simulated disk, a buffer pool
// (Table 1 parameters), and two buddy-managed database areas - one for the
// leaf segments holding the bytes of large objects, and one for everything
// else (roots, index nodes, long field descriptors, buddy directories).

#ifndef LOB_CORE_STORAGE_SYSTEM_H_
#define LOB_CORE_STORAGE_SYSTEM_H_

#include <memory>

#include "buddy/database_area.h"
#include "buffer/buffer_pool.h"
#include "common/arena.h"
#include "buffer/op_context.h"
#include "common/config.h"
#include "iomodel/sim_disk.h"
#include "obs/obs_registry.h"
#include "obs/op_scope.h"

namespace lob {

/// Owns the simulated disk, buffer pool and the two database areas.
class StorageSystem {
 public:
  explicit StorageSystem(const StorageConfig& config = StorageConfig());

  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  SimDisk* disk() { return disk_.get(); }
  BufferPool* pool() { return pool_.get(); }

  /// Shared per-operation scratch arena. Engines hand it to OpContext (and
  /// any other short-lived hot-path bookkeeping) so steady-state operations
  /// allocate nothing; nested users follow mark/rewind stack discipline.
  ScratchArena* arena() { return &arena_; }

  /// Metrics registry: named counters/histograms plus the per-operation
  /// I/O attribution ledger fed by OpScope tags on the disk.
  ObsRegistry* obs() { return obs_.get(); }
  const ObsRegistry* obs() const { return obs_.get(); }

  /// Area for roots, index pages, descriptors ("everything else", 4.1).
  DatabaseArea* meta_area() { return meta_area_.get(); }

  /// Area for the leaf segments holding large object bytes.
  DatabaseArea* leaf_area() { return leaf_area_.get(); }

  const StorageConfig& config() const { return config_; }

  /// Accumulated modeled I/O since construction / ResetStats().
  const IoStats& stats() const { return disk_->stats(); }
  void ResetStats() { disk_->ResetStats(); }

  /// Writes back every dirty buffered page (roots included).
  [[nodiscard]] Status FlushAll() { return pool_->FlushAll(); }

  /// Bytes of disk space currently allocated to segments (leaf area plus
  /// meta area); the denominator of the paper's storage utilization metric.
  uint64_t AllocatedBytes() const {
    return (leaf_area_->allocated_pages() + meta_area_->allocated_pages()) *
           config_.page_size;
  }

  /// RAII helper: restores the I/O counters on destruction so audits and
  /// validation walks do not perturb measured costs. Attribution is
  /// suspended for the section's duration: the restored global stats and
  /// the untouched per-op ledger stay consistent, preserving the
  /// conservation invariant (sum of attributed stats == global stats).
  class UnmeteredSection {
   public:
    explicit UnmeteredSection(StorageSystem* sys)
        : sys_(sys), saved_(sys->stats()) {
      sys_->disk()->SuspendAttribution();
    }
    ~UnmeteredSection() {
      sys_->disk()->ResumeAttribution();
      sys_->disk()->SetStats(saved_);
    }
    UnmeteredSection(const UnmeteredSection&) = delete;
    UnmeteredSection& operator=(const UnmeteredSection&) = delete;

   private:
    StorageSystem* sys_;
    IoStats saved_;
  };

 private:
  StorageConfig config_;
  ScratchArena arena_;
  std::unique_ptr<ObsRegistry> obs_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<DatabaseArea> meta_area_;
  std::unique_ptr<DatabaseArea> leaf_area_;
};

}  // namespace lob

#endif  // LOB_CORE_STORAGE_SYSTEM_H_
