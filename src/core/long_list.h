// LongList: an "insertable array" on top of a large object manager.
//
// The paper's introduction motivates large objects with general-purpose
// data modeling constructs "such as long lists or insertable arrays" - O2
// stored large lists of any element type through the WiSS large object
// manager. LongList provides that layer: a positional sequence of
// fixed-size elements mapped onto byte-range operations, so every list
// operation inherits the performance profile of the underlying storage
// structure (ESM, Starburst or EOS).

#ifndef LOB_CORE_LONG_LIST_H_
#define LOB_CORE_LONG_LIST_H_

#include <cstdint>
#include <string>

#include "core/large_object.h"

namespace lob {

/// Positional list of fixed-size elements stored in one large object.
/// Element indexes are 0-based; all operations are O(one byte-range op).
class LongList {
 public:
  /// `element_size` is fixed for the list's lifetime (bytes, >= 1).
  LongList(LargeObjectManager* mgr, uint32_t element_size);

  /// Creates an empty list and returns its object id.
  [[nodiscard]] StatusOr<ObjectId> Create();

  /// Destroys the underlying object.
  [[nodiscard]] Status Destroy(ObjectId id);

  /// Number of elements.
  [[nodiscard]] StatusOr<uint64_t> Size(ObjectId id);

  /// Appends one element (`elem` points at element_size bytes).
  [[nodiscard]] Status PushBack(ObjectId id, const void* elem);

  /// Appends `count` packed elements.
  [[nodiscard]]
  Status AppendMany(ObjectId id, const void* elems, uint64_t count);

  /// Inserts one element before position `index` (index == size appends).
  [[nodiscard]] Status Insert(ObjectId id, uint64_t index, const void* elem);

  /// Removes the element at `index`.
  [[nodiscard]] Status Remove(ObjectId id, uint64_t index);

  /// Reads the element at `index` into `out` (element_size bytes).
  [[nodiscard]] Status Get(ObjectId id, uint64_t index, void* out);

  /// Reads `count` consecutive elements starting at `first`.
  [[nodiscard]]
  Status GetRange(ObjectId id, uint64_t first, uint64_t count, void* out);

  /// Overwrites the element at `index`.
  [[nodiscard]] Status Set(ObjectId id, uint64_t index, const void* elem);

  uint32_t element_size() const { return element_size_; }
  LargeObjectManager* manager() const { return mgr_; }

 private:
  LargeObjectManager* mgr_;
  uint32_t element_size_;
};

}  // namespace lob

#endif  // LOB_CORE_LONG_LIST_H_
