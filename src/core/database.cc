#include "core/database.h"

#include <cstring>

#include "buddy/scoped_extent.h"
#include "common/logging.h"
#include "iomodel/disk_image.h"

namespace lob {

namespace {

constexpr uint32_t kSuperblockMagic = 0x4C4F4253;  // "LOBS"
constexpr uint32_t kSuperblockVersion = 1;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

}  // namespace

StatusOr<std::unique_ptr<Database>> Database::Create(
    const StorageConfig& config) {
  std::unique_ptr<Database> db(new Database());
  db->sys_ = std::make_unique<StorageSystem>(config);
  LOB_RETURN_IF_ERROR(db->InitFresh());
  return db;
}

Status Database::InitFresh() {
  // The superblock is the very first allocation of the meta area, which
  // deterministically lands on the first data page of space 0. It stays
  // under guard until it is durably formatted: a failure while creating
  // the catalog must not strand the page.
  auto ext = ScopedExtent::Allocate(sys_->meta_area(), sys_->pool(), 1);
  if (!ext.ok()) return ext.status();
  superblock_ = ext->first_page();
  catalog_ = std::make_unique<ObjectCatalog>(sys_.get());
  auto head = catalog_->Create();
  if (!head.ok()) return head.status();
  auto g = sys_->pool()->FixPage(sys_->meta_area()->id(), superblock_,
                                 FixMode::kNew);
  if (!g.ok()) return g.status();
  char* p = g->mutable_data();
  StoreU32(p, kSuperblockMagic);
  StoreU32(p + 4, kSuperblockVersion);
  StoreU32(p + 8, *head);
  g->MarkDirty();
  LOB_RETURN_IF_ERROR(
      sys_->pool()->FlushRun(sys_->meta_area()->id(), superblock_, 1));
  ext->Commit();
  return Status::OK();
}

StatusOr<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const StorageConfig& config) {
  std::unique_ptr<Database> db(new Database());
  db->sys_ = std::make_unique<StorageSystem>(config);
  // The storage system starts with two empty areas; the image is loaded
  // into them, then allocator state is recovered from the directory
  // blocks it contains.
  LOB_RETURN_IF_ERROR(LoadDiskImage(db->sys_->disk(), path));
  LOB_RETURN_IF_ERROR(db->InitFromImage());
  return db;
}

Status Database::InitFromImage() {
  LOB_RETURN_IF_ERROR(sys_->meta_area()->RecoverSpaces(*sys_->disk()));
  LOB_RETURN_IF_ERROR(sys_->leaf_area()->RecoverSpaces(*sys_->disk()));
  // Superblock = first data page of meta space 0 (page 1: page 0 is the
  // buddy directory).
  superblock_ = 1;
  auto g = sys_->pool()->FixPage(sys_->meta_area()->id(), superblock_,
                                 FixMode::kRead);
  if (!g.ok()) return g.status();
  if (LoadU32(g->data()) != kSuperblockMagic) {
    return Status::Corruption("bad superblock magic");
  }
  if (LoadU32(g->data() + 4) != kSuperblockVersion) {
    return Status::Corruption("unsupported superblock version");
  }
  const PageId head = LoadU32(g->data() + 8);
  catalog_ = std::make_unique<ObjectCatalog>(sys_.get());
  return catalog_->Open(head);
}

Status Database::Save(const std::string& path) {
  // Re-sync any buddy directory blocks whose rewrite was absorbed by an
  // infallible Free (see DatabaseArea::Free): the saved image must carry
  // allocator state an Open() can recover from.
  LOB_RETURN_IF_ERROR(sys_->meta_area()->SyncDirectories());
  LOB_RETURN_IF_ERROR(sys_->leaf_area()->SyncDirectories());
  LOB_RETURN_IF_ERROR(sys_->FlushAll());
  return SaveDiskImage(*sys_->disk(), path);
}

StatusOr<ObjectId> Database::CreateObject(std::string_view name,
                                          Engine engine, uint32_t parameter) {
  auto mgr = ManagerFor(engine, parameter);
  if (!mgr.ok()) return mgr.status();
  auto id = (*mgr)->Create();
  if (!id.ok()) return id;
  Status bound = catalog_->Put(name, *id);
  if (!bound.ok()) {
    // Best-effort rollback: the operation already fails with the catalog
    // error. A rollback failure additionally leaks the fresh object's
    // pages — survivable, but it must not pass silently.
    Status rollback = (*mgr)->Destroy(*id);
    if (!rollback.ok()) {
      LOB_LOG_WARN("CreateObject rollback failed, object %u leaked: %s",
                   *id, rollback.ToString().c_str());
    }
    return bound;
  }
  return id;
}

StatusOr<ObjectId> Database::Lookup(std::string_view name) {
  return catalog_->Get(name);
}

Status Database::DropObject(std::string_view name) {
  auto id = catalog_->Get(name);
  if (!id.ok()) return id.status();
  auto engine = ObjectEngine(*id);
  if (!engine.ok()) return engine.status();
  auto mgr = ManagerFor(*engine);
  if (!mgr.ok()) return mgr.status();
  LOB_RETURN_IF_ERROR((*mgr)->Destroy(*id));
  return catalog_->Remove(name);
}

StatusOr<Engine> Database::ObjectEngine(ObjectId id) {
  auto g = sys_->pool()->FixPage(sys_->meta_area()->id(), id, FixMode::kRead);
  if (!g.ok()) return g.status();
  const uint32_t magic = LoadU32(g->data());
  if (magic == 0x4C4F4244) return Engine::kStarburst;  // long field desc
  if (magic == 0x4C4F4252) {  // positional tree root: engine byte at 4
    const uint8_t e = static_cast<uint8_t>(g->data()[4]);
    if (e == static_cast<uint8_t>(Engine::kEsm)) return Engine::kEsm;
    if (e == static_cast<uint8_t>(Engine::kEos)) return Engine::kEos;
  }
  return Status::Corruption("page is not an object root");
}

StatusOr<LargeObjectManager*> Database::ManagerFor(Engine engine,
                                                   uint32_t parameter) {
  if (engine == Engine::kStarburst) parameter = 0;
  if (engine != Engine::kStarburst && parameter == 0) {
    return Status::InvalidArgument("leaf size / threshold must be >= 1");
  }
  const auto key = std::make_pair(static_cast<uint8_t>(engine), parameter);
  auto it = managers_.find(key);
  if (it != managers_.end()) return it->second.get();
  std::unique_ptr<LargeObjectManager> mgr;
  switch (engine) {
    case Engine::kEsm:
      mgr = CreateEsmManager(sys_.get(), parameter);
      break;
    case Engine::kStarburst:
      mgr = CreateStarburstManager(sys_.get());
      break;
    case Engine::kEos:
      mgr = CreateEosManager(sys_.get(), parameter);
      break;
  }
  if (mgr == nullptr) return Status::InvalidArgument("unknown engine");
  LargeObjectManager* raw = mgr.get();
  managers_[key] = std::move(mgr);
  return raw;
}

StatusOr<LargeObjectManager*> Database::ManagerForObject(
    ObjectId id, uint32_t parameter) {
  auto engine = ObjectEngine(id);
  if (!engine.ok()) return engine.status();
  return ManagerFor(*engine, parameter);
}

}  // namespace lob
