// ObjectCatalog: a named directory of large objects.
//
// The paper's storage managers identify an object by the page number of
// its root or descriptor; real clients need a way to find that page again.
// The catalog is a chain of meta-area pages mapping UTF-8 names to object
// ids - the role the file/directory layer plays above EXODUS or Starburst.
//
// Layout of a catalog page (4 KB):
//   [0]  u32 magic 'LOBC'
//   [4]  u32 next page (kInvalidPage when last in chain)
//   [8]  u16 entry count
//   [10] u16 bytes used by entries
//   [12] entries: { u8 name_len, name bytes, u32 object id } packed
//
// Entries never span pages; a page that cannot fit a new entry links to a
// freshly allocated successor. Removal compacts the page in place.

#ifndef LOB_CORE_OBJECT_CATALOG_H_
#define LOB_CORE_OBJECT_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/large_object.h"
#include "core/storage_system.h"

namespace lob {

/// Name -> ObjectId directory stored in the meta area.
class ObjectCatalog {
 public:
  explicit ObjectCatalog(StorageSystem* sys);

  /// Allocates and formats an empty catalog; returns its head page.
  [[nodiscard]] StatusOr<PageId> Create();

  /// Opens an existing catalog rooted at `head` (validates the magic).
  [[nodiscard]] Status Open(PageId head);

  /// Binds `name` to `id`. Fails with InvalidArgument if the name is
  /// empty, longer than 255 bytes, or already bound.
  [[nodiscard]] Status Put(std::string_view name, ObjectId id);

  /// Looks a name up.
  [[nodiscard]] StatusOr<ObjectId> Get(std::string_view name);

  /// Removes a binding (NotFound if absent). The object itself is not
  /// destroyed - the catalog only stores references.
  [[nodiscard]] Status Remove(std::string_view name);

  /// True if the name is bound.
  [[nodiscard]] StatusOr<bool> Contains(std::string_view name);

  /// All bindings, in chain order.
  [[nodiscard]] StatusOr<std::vector<std::pair<std::string, ObjectId>>> List();

  /// Number of bindings.
  [[nodiscard]] StatusOr<uint64_t> Size();

  /// Frees every catalog page (bindings only; objects survive).
  [[nodiscard]] Status Drop();

  /// The meta-area pages of the catalog chain, head first. Ground truth
  /// for the consistency checker (src/check), which must account for
  /// every allocated meta page.
  [[nodiscard]] StatusOr<std::vector<PageId>> Pages();

  PageId head() const { return head_; }

 private:
  struct Entry {
    std::string name;
    ObjectId id;
  };

  AreaId area_id() const { return sys_->meta_area()->id(); }

  /// Parses the entries of one catalog page.
  [[nodiscard]]
  Status ReadPage(PageId page, std::vector<Entry>* entries, PageId* next);

  /// Rewrites one catalog page from an entry list (must fit).
  [[nodiscard]] Status WritePage(PageId page, const std::vector<Entry>& entries,
                   PageId next);

  /// Bytes an entry occupies on the page.
  static size_t EntryBytes(std::string_view name) { return 1 + name.size() + 4; }

  StorageSystem* sys_;
  PageId head_ = kInvalidPage;
};

}  // namespace lob

#endif  // LOB_CORE_OBJECT_CATALOG_H_
