#include "core/large_object.h"

namespace lob {

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kEsm:
      return "ESM";
    case Engine::kStarburst:
      return "Starburst";
    case Engine::kEos:
      return "EOS";
  }
  return "?";
}

}  // namespace lob
