// Database: the top-level convenience wrapper - a storage system, a
// superblock, a named object catalog, and save/reopen of the whole disk
// image.
//
// The paper's storage managers are libraries inside a database system;
// Database supplies the minimal surrounding shell: create named large
// objects with any of the three engines, reopen the database later, and
// get back managers for the stored objects (each object's root records
// which engine owns it).

#ifndef LOB_CORE_DATABASE_H_
#define LOB_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/factory.h"
#include "core/large_object.h"
#include "core/object_catalog.h"
#include "core/storage_system.h"

namespace lob {

/// A database instance: storage system + superblock + catalog.
class Database {
 public:
  /// Creates a fresh, empty database.
  [[nodiscard]] static StatusOr<std::unique_ptr<Database>> Create(
      const StorageConfig& config = StorageConfig());

  /// Reopens a database previously saved with Save().
  [[nodiscard]] static StatusOr<std::unique_ptr<Database>> Open(
      const std::string& path, const StorageConfig& config = StorageConfig());

  /// Flushes all buffered state and writes the disk image to `path`.
  [[nodiscard]] Status Save(const std::string& path);

  /// Creates a named object with the given engine. `parameter` is the
  /// leaf size in pages for ESM, the segment size threshold for EOS, and
  /// ignored for Starburst.
  [[nodiscard]]
  StatusOr<ObjectId> CreateObject(std::string_view name, Engine engine,
                                  uint32_t parameter = 4);

  /// Looks up a named object.
  [[nodiscard]] StatusOr<ObjectId> Lookup(std::string_view name);

  /// Destroys a named object and unbinds it.
  [[nodiscard]] Status DropObject(std::string_view name);

  /// Which engine stores the object (read from its root/descriptor page).
  [[nodiscard]] StatusOr<Engine> ObjectEngine(ObjectId id);

  /// Manager able to operate on the given engine's objects. The manager
  /// is cached; ESM/EOS managers are instantiated per parameter value.
  [[nodiscard]] StatusOr<LargeObjectManager*> ManagerFor(Engine engine,
                                           uint32_t parameter = 4);

  /// Convenience: manager for a *named* object, resolved via its root.
  /// Note: the structural parameter (leaf size / threshold) is not stored
  /// per object; the default manager of the engine is returned. Pass the
  /// parameter explicitly for non-default configurations.
  [[nodiscard]] StatusOr<LargeObjectManager*> ManagerForObject(ObjectId id,
                                                 uint32_t parameter = 4);

  StorageSystem* sys() { return sys_.get(); }
  ObjectCatalog* catalog() { return catalog_.get(); }

  /// Meta-area page of the superblock (for consistency checks).
  PageId superblock() const { return superblock_; }

 private:
  Database() = default;

  [[nodiscard]] Status InitFresh();
  [[nodiscard]] Status InitFromImage();

  std::unique_ptr<StorageSystem> sys_;
  std::unique_ptr<ObjectCatalog> catalog_;
  PageId superblock_ = kInvalidPage;
  // Cache: key = (engine, parameter).
  std::map<std::pair<uint8_t, uint32_t>, std::unique_ptr<LargeObjectManager>>
      managers_;
};

}  // namespace lob

#endif  // LOB_CORE_DATABASE_H_
