#include "core/factory.h"

#include "eos/eos_manager.h"
#include "esm/esm_manager.h"
#include "starburst/starburst_manager.h"

namespace lob {

std::unique_ptr<LargeObjectManager> CreateEsmManager(StorageSystem* sys,
                                                     uint32_t leaf_pages) {
  EsmOptions opt;
  opt.leaf_pages = leaf_pages;
  return std::make_unique<EsmManager>(sys, opt);
}

std::unique_ptr<LargeObjectManager> CreateStarburstManager(
    StorageSystem* sys) {
  return std::make_unique<StarburstManager>(sys, StarburstOptions());
}

std::unique_ptr<LargeObjectManager> CreateEosManager(
    StorageSystem* sys, uint32_t threshold_pages) {
  EosOptions opt;
  opt.threshold_pages = threshold_pages;
  return std::make_unique<EosManager>(sys, opt);
}

}  // namespace lob
