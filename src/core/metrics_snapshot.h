// MetricsSnapshot: one unified, sorted-key JSON block of everything the
// simulator knows about a cell's health — the per-op percentile table
// (p50/p90/p99/max modeled ms from the registry's log2 histograms),
// buffer-pool hit/miss/eviction rates, buddy-allocator free-extent
// stats for both areas, and the fault-model fire counters.
//
// This is schema v2 of the bench metrics story: BenchProfile embeds one
// snapshot per cell (and bench drivers one aggregate) in BENCH_*.json,
// `lobtool stats` emits one next to the raw registry, and `lobtool
// bench-diff` flattens the block into gateable metric paths
// ("metrics_snapshot.ops.esm.append.p99_ms"). Every field derives from
// modeled state only, so a snapshot is byte-identical for any --jobs.
//
// The JSON writer iterates std::map exclusively (lob_lint LOB002 covers
// this file); keys appear in sorted order at every nesting level.

#ifndef LOB_CORE_METRICS_SNAPSHOT_H_
#define LOB_CORE_METRICS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "iomodel/io_stats.h"
#include "obs/obs_registry.h"

namespace lob {

class StorageSystem;

struct MetricsSnapshot {
  /// Percentile row for one op label, derived from the `<label>.ms`
  /// histogram plus the attribution ledger.
  struct OpStats {
    uint64_t count = 0;
    IoStats io;                  ///< exclusive attributed I/O
    double mean_ms = 0;          ///< io.ms / count (exact)
    double p50_ms = 0, p90_ms = 0, p99_ms = 0;
    uint64_t max_ms = 0;
    bool has_histogram = false;  ///< false for ledger-only labels
    /// Queue-wait percentiles from the `<label>.queue_ms` histogram.
    /// Present only in queue-model runs (multi-client concurrency); the
    /// keys are omitted from the JSON otherwise, so single-client
    /// snapshots are byte-identical to the pre-queue schema.
    bool has_queue = false;
    double queue_p50_ms = 0, queue_p99_ms = 0;
    uint64_t queue_max_ms = 0;
  };

  /// Buddy-allocator state of one database area.
  struct AreaStats {
    uint64_t allocated_pages = 0;
    uint64_t free_pages = 0;
    uint32_t num_spaces = 0;
    uint32_t largest_free_extent = 0;
    /// Free-chunk size histogram: chunk size in pages -> count.
    std::map<uint32_t, uint64_t> free_chunks;
  };

  struct PoolStats {
    uint64_t hits = 0, misses = 0, evictions = 0;
    /// hits / (hits + misses); 0 when no fixes happened.
    double hit_rate = 0;
  };

  struct FaultStats {
    uint32_t armed = 0;
    uint64_t fired = 0;
    uint64_t foreground_calls = 0;
  };

  /// Modeled disk-queue totals (SimDisk::queue_stats()). Emitted as a
  /// "disk_queue" section only when the queue model was enabled, keeping
  /// the baseline schema stable.
  struct QueueStats {
    bool enabled = false;
    uint64_t queued_calls = 0;
    uint64_t delayed_calls = 0;
    double queue_ms = 0;
    double max_wait_ms = 0;
    uint32_t max_depth = 0;
  };

  std::map<std::string, OpStats> ops;
  std::map<std::string, uint64_t> counters;
  PoolStats pool;
  FaultStats faults;
  QueueStats queue;
  std::map<std::string, AreaStats> areas;  ///< "leaf", "meta"
  /// True when pool/faults/areas were populated (Collect); a registry-
  /// only snapshot (FromRegistry) leaves them out of the JSON.
  bool has_substrate = false;

  /// Full snapshot of a live system. Publishes the pool counters into
  /// the registry first (so `lobtool stats` and --obs exports see them),
  /// then captures ops, counters, pool, allocator and fault state.
  static MetricsSnapshot Collect(StorageSystem* sys);

  /// Ops + counters only, from a bare registry (used for aggregate
  /// views merged across cells, where no single substrate exists).
  static MetricsSnapshot FromRegistry(const ObsRegistry& obs);

  /// Sorted-key JSON object. `indent` is the base indentation prefixed
  /// to every line but the first, so the block can be embedded at any
  /// nesting depth; the text never ends with a newline.
  std::string ToJson(const std::string& indent = "") const;
};

}  // namespace lob

#endif  // LOB_CORE_METRICS_SNAPSHOT_H_
