#include "core/metrics_snapshot.h"

#include <cstdarg>
#include <cstdio>

#include "buddy/database_area.h"
#include "buffer/buffer_pool.h"
#include "core/storage_system.h"
#include "iomodel/sim_disk.h"

namespace lob {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

MetricsSnapshot::AreaStats SnapshotArea(const DatabaseArea& area) {
  MetricsSnapshot::AreaStats s;
  s.allocated_pages = area.allocated_pages();
  s.free_pages = area.free_pages();
  s.num_spaces = area.num_spaces();
  s.largest_free_extent = area.LargestFreeExtent();
  area.AccumulateFreeChunks(&s.free_chunks);
  return s;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::FromRegistry(const ObsRegistry& obs) {
  MetricsSnapshot snap;
  for (const auto& [label, rec] : obs.ops()) {
    OpStats op;
    op.count = rec.count;
    op.io = rec.io;
    op.mean_ms =
        rec.count == 0 ? 0.0 : rec.io.ms / static_cast<double>(rec.count);
    auto it = obs.histograms().find(label + ".ms");
    if (it != obs.histograms().end() && it->second.count() > 0) {
      const Histogram& h = it->second;
      op.has_histogram = true;
      op.p50_ms = h.Quantile(0.5);
      op.p90_ms = h.Quantile(0.9);
      op.p99_ms = h.Quantile(0.99);
      op.max_ms = h.max();
    }
    auto qit = obs.histograms().find(label + ".queue_ms");
    if (qit != obs.histograms().end() && qit->second.count() > 0) {
      const Histogram& h = qit->second;
      op.has_queue = true;
      op.queue_p50_ms = h.Quantile(0.5);
      op.queue_p99_ms = h.Quantile(0.99);
      op.queue_max_ms = h.max();
    }
    snap.ops[label] = op;
  }
  snap.counters = obs.counters();
  return snap;
}

MetricsSnapshot MetricsSnapshot::Collect(StorageSystem* sys) {
  sys->pool()->PublishCounters(sys->obs());
  MetricsSnapshot snap = FromRegistry(*sys->obs());
  snap.has_substrate = true;
  snap.pool.hits = sys->pool()->hits();
  snap.pool.misses = sys->pool()->misses();
  snap.pool.evictions = sys->pool()->evictions();
  const uint64_t fixes = snap.pool.hits + snap.pool.misses;
  snap.pool.hit_rate =
      fixes == 0 ? 0.0
                 : static_cast<double>(snap.pool.hits) /
                       static_cast<double>(fixes);
  snap.faults.armed = sys->disk()->armed_faults();
  snap.faults.fired = sys->disk()->faults_fired();
  snap.faults.foreground_calls = sys->disk()->foreground_calls();
  if (sys->disk()->queue_enabled()) {
    const SimDisk::DiskQueueStats& q = sys->disk()->queue_stats();
    snap.queue.enabled = true;
    snap.queue.queued_calls = q.queued_calls;
    snap.queue.delayed_calls = q.delayed_calls;
    snap.queue.queue_ms = q.queue_ms;
    snap.queue.max_wait_ms = q.max_wait_ms;
    snap.queue.max_depth = q.max_depth;
  }
  snap.areas["leaf"] = SnapshotArea(*sys->leaf_area());
  snap.areas["meta"] = SnapshotArea(*sys->meta_area());
  return snap;
}

std::string MetricsSnapshot::ToJson(const std::string& indent) const {
  // One nesting level per line; `in` is the indentation of members.
  const std::string in = indent + "  ";
  const std::string in2 = in + "  ";
  std::string out = "{";
  bool first_section = true;
  auto section = [&](const char* name) {
    AppendF(&out, "%s\n%s\"%s\": ", first_section ? "" : ",", in.c_str(),
            name);
    first_section = false;
  };

  if (has_substrate) {
    section("areas");
    out += "{";
    bool first_area = true;
    for (const auto& [name, a] : areas) {
      AppendF(&out,
              "%s\n%s\"%s\": {\"allocated_pages\": %llu, "
              "\"free_chunks\": [",
              first_area ? "" : ",", in2.c_str(), JsonEscape(name).c_str(),
              static_cast<unsigned long long>(a.allocated_pages));
      bool first_chunk = true;
      for (const auto& [size, n] : a.free_chunks) {
        AppendF(&out, "%s[%u, %llu]", first_chunk ? "" : ", ", size,
                static_cast<unsigned long long>(n));
        first_chunk = false;
      }
      AppendF(&out,
              "], \"free_pages\": %llu, \"largest_free_extent\": %u, "
              "\"num_spaces\": %u}",
              static_cast<unsigned long long>(a.free_pages),
              a.largest_free_extent, a.num_spaces);
      first_area = false;
    }
    AppendF(&out, "\n%s}", in.c_str());
  }

  section("counters");
  out += "{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    AppendF(&out, "%s\n%s\"%s\": %llu", first ? "" : ",", in2.c_str(),
            JsonEscape(name).c_str(), static_cast<unsigned long long>(value));
    first = false;
  }
  AppendF(&out, "%s%s}", first ? "" : "\n", first ? "" : in.c_str());

  if (queue.enabled) {
    section("disk_queue");
    AppendF(&out,
            "{\"delayed_calls\": %llu, \"max_depth\": %u, "
            "\"max_wait_ms\": %.3f, \"queue_ms\": %.3f, "
            "\"queued_calls\": %llu}",
            static_cast<unsigned long long>(queue.delayed_calls),
            queue.max_depth, queue.max_wait_ms, queue.queue_ms,
            static_cast<unsigned long long>(queue.queued_calls));
  }

  if (has_substrate) {
    section("faults");
    AppendF(&out,
            "{\"armed\": %u, \"fired\": %llu, \"foreground_calls\": %llu}",
            faults.armed, static_cast<unsigned long long>(faults.fired),
            static_cast<unsigned long long>(faults.foreground_calls));
  }

  section("ops");
  out += "{";
  first = true;
  for (const auto& [label, op] : ops) {
    AppendF(&out,
            "%s\n%s\"%s\": {\"count\": %llu, \"max_ms\": %llu, "
            "\"mean_ms\": %.3f, \"ms\": %.3f, \"p50_ms\": %.3f, "
            "\"p90_ms\": %.3f, \"p99_ms\": %.3f, \"pages\": %llu",
            first ? "" : ",", in2.c_str(), JsonEscape(label).c_str(),
            static_cast<unsigned long long>(op.count),
            static_cast<unsigned long long>(op.max_ms), op.mean_ms, op.io.ms,
            op.p50_ms, op.p90_ms, op.p99_ms,
            static_cast<unsigned long long>(op.io.PagesTransferred()));
    if (op.has_queue) {
      // Queue-wait keys exist only in queue-model runs; they sort
      // between "pages" and "seeks" so the block stays sorted-key.
      AppendF(&out,
              ", \"queue_max_ms\": %llu, \"queue_ms\": %.3f, "
              "\"queue_p50_ms\": %.3f, \"queue_p99_ms\": %.3f",
              static_cast<unsigned long long>(op.queue_max_ms),
              op.io.queue_ms, op.queue_p50_ms, op.queue_p99_ms);
    }
    AppendF(&out, ", \"seeks\": %llu}",
            static_cast<unsigned long long>(op.io.Seeks()));
    first = false;
  }
  AppendF(&out, "%s%s}", first ? "" : "\n", first ? "" : in.c_str());

  if (has_substrate) {
    section("pool");
    AppendF(&out,
            "{\"evictions\": %llu, \"hit_rate\": %.6f, \"hits\": %llu, "
            "\"misses\": %llu}",
            static_cast<unsigned long long>(pool.evictions), pool.hit_rate,
            static_cast<unsigned long long>(pool.hits),
            static_cast<unsigned long long>(pool.misses));
  }

  section("schema_version");
  out += "2";
  AppendF(&out, "\n%s}", indent.c_str());
  return out;
}

}  // namespace lob
