#include "core/object_catalog.h"

#include <cstring>

#include "buddy/scoped_extent.h"
#include "buffer/op_context.h"
#include "common/logging.h"

namespace lob {

namespace {

constexpr uint32_t kCatalogMagic = 0x4C4F4243;  // "LOBC"
constexpr uint32_t kHeaderBytes = 12;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }

}  // namespace

ObjectCatalog::ObjectCatalog(StorageSystem* sys) : sys_(sys) {}

StatusOr<PageId> ObjectCatalog::Create() {
  auto ext = ScopedExtent::Allocate(sys_->meta_area(), sys_->pool(), 1);
  if (!ext.ok()) return ext.status();
  auto g = sys_->pool()->FixPage(area_id(), ext->first_page(), FixMode::kNew);
  if (!g.ok()) return g.status();  // guard reclaims the head page
  char* p = g->mutable_data();
  StoreU32(p, kCatalogMagic);
  StoreU32(p + 4, kInvalidPage);
  StoreU16(p + 8, 0);
  StoreU16(p + 10, 0);
  g->MarkDirty();
  ext->Commit();
  head_ = ext->first_page();
  return head_;
}

Status ObjectCatalog::Open(PageId head) {
  auto g = sys_->pool()->FixPage(area_id(), head, FixMode::kRead);
  if (!g.ok()) return g.status();
  if (LoadU32(g->data()) != kCatalogMagic) {
    return Status::Corruption("not a catalog page");
  }
  head_ = head;
  return Status::OK();
}

Status ObjectCatalog::ReadPage(PageId page, std::vector<Entry>* entries,
                               PageId* next) {
  auto g = sys_->pool()->FixPage(area_id(), page, FixMode::kRead);
  if (!g.ok()) return g.status();
  const char* p = g->data();
  if (LoadU32(p) != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  *next = LoadU32(p + 4);
  const uint16_t count = LoadU16(p + 8);
  const uint16_t used = LoadU16(p + 10);
  if (kHeaderBytes + used > sys_->config().page_size) {
    return Status::Corruption("catalog page overflows");
  }
  entries->clear();
  size_t at = kHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    const uint8_t len = static_cast<uint8_t>(p[at]);
    if (at + 1 + len + 4 > kHeaderBytes + used) {
      return Status::Corruption("catalog entry truncated");
    }
    Entry e;
    e.name.assign(p + at + 1, len);
    e.id = LoadU32(p + at + 1 + len);
    entries->push_back(std::move(e));
    at += 1 + len + 4;
  }
  return Status::OK();
}

Status ObjectCatalog::WritePage(PageId page, const std::vector<Entry>& entries,
                                PageId next) {
  auto g = sys_->pool()->FixPage(area_id(), page, FixMode::kRead);
  if (!g.ok()) return g.status();
  char* p = g->mutable_data();
  StoreU32(p, kCatalogMagic);
  StoreU32(p + 4, next);
  size_t at = kHeaderBytes;
  for (const Entry& e : entries) {
    LOB_CHECK_LE(e.name.size(), 255u);
    p[at] = static_cast<char>(e.name.size());
    std::memcpy(p + at + 1, e.name.data(), e.name.size());
    StoreU32(p + at + 1 + e.name.size(), e.id);
    at += EntryBytes(e.name);
  }
  LOB_CHECK_LE(at, sys_->config().page_size);
  StoreU16(p + 8, static_cast<uint16_t>(entries.size()));
  StoreU16(p + 10, static_cast<uint16_t>(at - kHeaderBytes));
  g->MarkDirty();
  // Catalog updates are flushed immediately: they are rare and must not
  // be lost behind large-object traffic evictions.
  return sys_->pool()->FlushRun(area_id(), page, 1);
}

Status ObjectCatalog::Put(std::string_view name, ObjectId id) {
  if (head_ == kInvalidPage) return Status::Internal("catalog not open");
  if (name.empty() || name.size() > 255) {
    return Status::InvalidArgument("catalog names are 1..255 bytes");
  }
  const size_t need = EntryBytes(name);
  PageId page = head_;
  while (true) {
    std::vector<Entry> entries;
    PageId next;
    LOB_RETURN_IF_ERROR(ReadPage(page, &entries, &next));
    size_t used = 0;
    for (const Entry& e : entries) {
      if (e.name == name) return Status::InvalidArgument("name already bound");
      used += EntryBytes(e.name);
    }
    if (kHeaderBytes + used + need <= sys_->config().page_size) {
      // Fits here; but the name may still exist further down the chain.
      PageId scan = next;
      while (scan != kInvalidPage) {
        std::vector<Entry> more;
        PageId next2;
        LOB_RETURN_IF_ERROR(ReadPage(scan, &more, &next2));
        for (const Entry& e : more) {
          if (e.name == name) {
            return Status::InvalidArgument("name already bound");
          }
        }
        scan = next2;
      }
      entries.push_back({std::string(name), id});
      return WritePage(page, entries, next);
    }
    if (next == kInvalidPage) {
      // Grow the chain. The fresh page is committed only once the current
      // tail's next pointer durably references it (WritePage flushes).
      auto ext = ScopedExtent::Allocate(sys_->meta_area(), sys_->pool(), 1);
      if (!ext.ok()) return ext.status();
      {
        auto g = sys_->pool()->FixPage(area_id(), ext->first_page(),
                                       FixMode::kNew);
        if (!g.ok()) return g.status();
        char* p = g->mutable_data();
        StoreU32(p, kCatalogMagic);
        StoreU32(p + 4, kInvalidPage);
        StoreU16(p + 8, 0);
        StoreU16(p + 10, 0);
        g->MarkDirty();
      }
      LOB_RETURN_IF_ERROR(WritePage(page, entries, ext->first_page()));
      ext->Commit();
      page = ext->first_page();
      continue;
    }
    page = next;
  }
}

StatusOr<ObjectId> ObjectCatalog::Get(std::string_view name) {
  if (head_ == kInvalidPage) return Status::Internal("catalog not open");
  PageId page = head_;
  while (page != kInvalidPage) {
    std::vector<Entry> entries;
    PageId next;
    LOB_RETURN_IF_ERROR(ReadPage(page, &entries, &next));
    for (const Entry& e : entries) {
      if (e.name == name) return e.id;
    }
    page = next;
  }
  return Status::NotFound("no such object name");
}

StatusOr<bool> ObjectCatalog::Contains(std::string_view name) {
  auto id = Get(name);
  if (id.ok()) return true;
  if (id.status().code() == StatusCode::kNotFound) return false;
  return id.status();
}

Status ObjectCatalog::Remove(std::string_view name) {
  if (head_ == kInvalidPage) return Status::Internal("catalog not open");
  PageId page = head_;
  while (page != kInvalidPage) {
    std::vector<Entry> entries;
    PageId next;
    LOB_RETURN_IF_ERROR(ReadPage(page, &entries, &next));
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].name == name) {
        entries.erase(entries.begin() + static_cast<long>(i));
        return WritePage(page, entries, next);
      }
    }
    page = next;
  }
  return Status::NotFound("no such object name");
}

StatusOr<std::vector<std::pair<std::string, ObjectId>>>
ObjectCatalog::List() {
  if (head_ == kInvalidPage) return Status::Internal("catalog not open");
  std::vector<std::pair<std::string, ObjectId>> out;
  PageId page = head_;
  while (page != kInvalidPage) {
    std::vector<Entry> entries;
    PageId next;
    LOB_RETURN_IF_ERROR(ReadPage(page, &entries, &next));
    for (Entry& e : entries) out.emplace_back(std::move(e.name), e.id);
    page = next;
  }
  return out;
}

StatusOr<uint64_t> ObjectCatalog::Size() {
  auto all = List();
  if (!all.ok()) return all.status();
  return static_cast<uint64_t>(all->size());
}

StatusOr<std::vector<PageId>> ObjectCatalog::Pages() {
  if (head_ == kInvalidPage) return Status::Internal("catalog not open");
  std::vector<PageId> out;
  PageId page = head_;
  while (page != kInvalidPage) {
    out.push_back(page);
    std::vector<Entry> entries;
    PageId next;
    LOB_RETURN_IF_ERROR(ReadPage(page, &entries, &next));
    page = next;
  }
  return out;
}

Status ObjectCatalog::Drop() {
  if (head_ == kInvalidPage) return Status::OK();
  PageId page = head_;
  while (page != kInvalidPage) {
    std::vector<Entry> entries;
    PageId next;
    LOB_RETURN_IF_ERROR(ReadPage(page, &entries, &next));
    LOB_RETURN_IF_ERROR(sys_->pool()->Invalidate(area_id(), page, 1));
    LOB_RETURN_IF_ERROR(sys_->meta_area()->Free(page, 1));
    page = next;
  }
  head_ = kInvalidPage;
  return Status::OK();
}

}  // namespace lob
