// Sequential streaming over large objects.
//
// The paper motivates piece-wise access with exactly these patterns (1):
// creating a very large object by successively appending sizable chunks,
// and consuming it sequentially "rather than access the whole chunk in one
// step - think of playing digital sound recordings". ObjectWriter and
// ObjectReader package those patterns: a cursor plus client-side chunking,
// so applications stream without managing offsets, while every underlying
// I/O remains an ordinary byte-range operation of the chosen engine.

#ifndef LOB_CORE_OBJECT_STREAM_H_
#define LOB_CORE_OBJECT_STREAM_H_

#include <string>
#include <string_view>

#include "core/large_object.h"

namespace lob {

/// Buffered sequential writer: accumulates small writes into
/// `chunk_bytes`-sized appends (the efficient way to build large objects).
class ObjectWriter {
 public:
  /// Appends at the current end of `id`. `chunk_bytes` controls how much
  /// is staged client-side before each Append call.
  ObjectWriter(LargeObjectManager* mgr, ObjectId id,
               uint64_t chunk_bytes = 256 * 1024);

  /// Flushes any staged bytes on destruction. A failure here cannot be
  /// returned, so it is recorded in last_status() and reported with a
  /// LOB_LOG_WARN; call Flush() explicitly before destruction to handle
  /// errors properly.
  ~ObjectWriter();

  ObjectWriter(const ObjectWriter&) = delete;
  ObjectWriter& operator=(const ObjectWriter&) = delete;

  /// Stages `data` for appending; issues Append calls as the staging
  /// buffer fills.
  [[nodiscard]] Status Write(std::string_view data);

  /// Appends everything staged so far.
  [[nodiscard]] Status Flush();

  /// Bytes accepted by Write so far (staged + appended).
  uint64_t bytes_written() const { return bytes_written_; }

  /// Sticky status: the first Append failure observed by Write, Flush or
  /// the destructor-of-a-previous-use. OK while nothing has failed. Lets
  /// callers detect lost appends even when the failing flush happened in
  /// a context that could not return a Status.
  const Status& last_status() const { return last_status_; }

 private:
  /// Records the first failure (later successes do not clear it).
  [[nodiscard]] Status Note(Status s) {
    if (!s.ok() && last_status_.ok()) last_status_ = s;
    return s;
  }

  LargeObjectManager* mgr_;
  ObjectId id_;
  uint64_t chunk_bytes_;
  std::string staged_;
  uint64_t bytes_written_ = 0;
  Status last_status_ = Status::OK();
};

/// Buffered sequential reader with a seekable cursor.
class ObjectReader {
 public:
  /// Reads from offset 0; `chunk_bytes` is the read-ahead granularity
  /// (one byte-range Read per chunk).
  ObjectReader(LargeObjectManager* mgr, ObjectId id,
               uint64_t chunk_bytes = 256 * 1024);

  ObjectReader(const ObjectReader&) = delete;
  ObjectReader& operator=(const ObjectReader&) = delete;

  /// Reads up to `n` bytes into `out` (resized to what was read; empty at
  /// end of object). Short reads happen only at the end.
  [[nodiscard]] Status Read(uint64_t n, std::string* out);

  /// Repositions the cursor (drops buffered read-ahead if outside it).
  [[nodiscard]] Status Seek(uint64_t offset);

  /// Cursor position.
  uint64_t Tell() const { return position_; }

  /// True when the cursor is at or past the end of the object.
  [[nodiscard]] StatusOr<bool> AtEnd();

 private:
  [[nodiscard]] Status FillBuffer();

  LargeObjectManager* mgr_;
  ObjectId id_;
  uint64_t chunk_bytes_;
  uint64_t position_ = 0;   ///< logical cursor
  uint64_t buf_start_ = 0;  ///< object offset of buffer_[0]
  std::string buffer_;
};

}  // namespace lob

#endif  // LOB_CORE_OBJECT_STREAM_H_
