#include "core/object_stream.h"

#include <algorithm>

#include "common/logging.h"

namespace lob {

ObjectWriter::ObjectWriter(LargeObjectManager* mgr, ObjectId id,
                           uint64_t chunk_bytes)
    : mgr_(mgr), id_(id), chunk_bytes_(chunk_bytes) {
  LOB_CHECK(mgr != nullptr);
  LOB_CHECK_GT(chunk_bytes, 0u);
  staged_.reserve(chunk_bytes);
}

ObjectWriter::~ObjectWriter() {
  Status s = Flush();
  if (!s.ok()) {
    // A destructor cannot return the error; make the lost append loud and
    // keep it queryable for anyone still holding a reference elsewhere.
    LOB_LOG_WARN("ObjectWriter dropped %zu staged bytes for object %u: %s",
                 staged_.size(), static_cast<unsigned>(id_),
                 s.ToString().c_str());
  }
}

Status ObjectWriter::Write(std::string_view data) {
  bytes_written_ += data.size();
  while (!data.empty()) {
    const uint64_t room = chunk_bytes_ - staged_.size();
    const uint64_t take = std::min<uint64_t>(room, data.size());
    staged_.append(data.substr(0, take));
    data.remove_prefix(take);
    if (staged_.size() == chunk_bytes_) {
      LOB_RETURN_IF_ERROR(Note(mgr_->Append(id_, staged_)));
      staged_.clear();
    }
  }
  return Status::OK();
}

Status ObjectWriter::Flush() {
  if (staged_.empty()) return Status::OK();
  Status s = Note(mgr_->Append(id_, staged_));
  if (s.ok()) staged_.clear();
  return s;
}

ObjectReader::ObjectReader(LargeObjectManager* mgr, ObjectId id,
                           uint64_t chunk_bytes)
    : mgr_(mgr), id_(id), chunk_bytes_(chunk_bytes) {
  LOB_CHECK(mgr != nullptr);
  LOB_CHECK_GT(chunk_bytes, 0u);
}

Status ObjectReader::FillBuffer() {
  auto size = mgr_->Size(id_);
  if (!size.ok()) return size.status();
  buffer_.clear();
  buf_start_ = position_;
  if (position_ >= *size) return Status::OK();
  const uint64_t take = std::min(chunk_bytes_, *size - position_);
  return mgr_->Read(id_, position_, take, &buffer_);
}

Status ObjectReader::Read(uint64_t n, std::string* out) {
  out->clear();
  while (out->size() < n) {
    if (position_ < buf_start_ ||
        position_ >= buf_start_ + buffer_.size()) {
      LOB_RETURN_IF_ERROR(FillBuffer());
      if (buffer_.empty()) break;  // end of object
    }
    const uint64_t in_buf = position_ - buf_start_;
    const uint64_t avail = buffer_.size() - in_buf;
    const uint64_t take = std::min<uint64_t>(avail, n - out->size());
    out->append(buffer_, in_buf, take);
    position_ += take;
  }
  return Status::OK();
}

Status ObjectReader::Seek(uint64_t offset) {
  auto size = mgr_->Size(id_);
  if (!size.ok()) return size.status();
  if (offset > *size) return Status::OutOfRange("seek past object end");
  position_ = offset;
  return Status::OK();
}

StatusOr<bool> ObjectReader::AtEnd() {
  auto size = mgr_->Size(id_);
  if (!size.ok()) return size.status();
  return position_ >= *size;
}

}  // namespace lob
