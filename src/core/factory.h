// Factory: creates a LargeObjectManager for a given engine.

#ifndef LOB_CORE_FACTORY_H_
#define LOB_CORE_FACTORY_H_

#include <memory>

#include "core/large_object.h"
#include "core/storage_system.h"

namespace lob {

struct EsmOptions;
struct StarburstOptions;
struct EosOptions;

/// Creates an ESM manager (fixed-size leaves of `leaf_pages`).
std::unique_ptr<LargeObjectManager> CreateEsmManager(StorageSystem* sys,
                                                     uint32_t leaf_pages);

/// Creates a Starburst long field manager.
std::unique_ptr<LargeObjectManager> CreateStarburstManager(StorageSystem* sys);

/// Creates an EOS manager with segment size threshold `threshold_pages`.
std::unique_ptr<LargeObjectManager> CreateEosManager(StorageSystem* sys,
                                                     uint32_t threshold_pages);

}  // namespace lob

#endif  // LOB_CORE_FACTORY_H_
