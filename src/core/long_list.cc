#include "core/long_list.h"

#include <cstring>
#include <string_view>

#include "common/logging.h"

namespace lob {

LongList::LongList(LargeObjectManager* mgr, uint32_t element_size)
    : mgr_(mgr), element_size_(element_size) {
  LOB_CHECK(mgr != nullptr);
  LOB_CHECK_GE(element_size, 1u);
}

StatusOr<ObjectId> LongList::Create() { return mgr_->Create(); }

Status LongList::Destroy(ObjectId id) { return mgr_->Destroy(id); }

StatusOr<uint64_t> LongList::Size(ObjectId id) {
  auto bytes = mgr_->Size(id);
  if (!bytes.ok()) return bytes.status();
  if (*bytes % element_size_ != 0) {
    return Status::Corruption("list bytes not a multiple of element size");
  }
  return *bytes / element_size_;
}

Status LongList::PushBack(ObjectId id, const void* elem) {
  return mgr_->Append(
      id, std::string_view(static_cast<const char*>(elem), element_size_));
}

Status LongList::AppendMany(ObjectId id, const void* elems, uint64_t count) {
  if (count == 0) return Status::OK();
  return mgr_->Append(id, std::string_view(static_cast<const char*>(elems),
                                           count * element_size_));
}

Status LongList::Insert(ObjectId id, uint64_t index, const void* elem) {
  auto size = Size(id);
  if (!size.ok()) return size.status();
  if (index > *size) return Status::OutOfRange("list insert past end");
  return mgr_->Insert(
      id, index * element_size_,
      std::string_view(static_cast<const char*>(elem), element_size_));
}

Status LongList::Remove(ObjectId id, uint64_t index) {
  auto size = Size(id);
  if (!size.ok()) return size.status();
  if (index >= *size) return Status::OutOfRange("list remove past end");
  return mgr_->Delete(id, index * element_size_, element_size_);
}

Status LongList::Get(ObjectId id, uint64_t index, void* out) {
  return GetRange(id, index, 1, out);
}

Status LongList::GetRange(ObjectId id, uint64_t first, uint64_t count,
                          void* out) {
  if (count == 0) return Status::OK();
  std::string buf;
  LOB_RETURN_IF_ERROR(
      mgr_->Read(id, first * element_size_, count * element_size_, &buf));
  std::memcpy(out, buf.data(), buf.size());
  return Status::OK();
}

Status LongList::Set(ObjectId id, uint64_t index, const void* elem) {
  auto size = Size(id);
  if (!size.ok()) return size.status();
  if (index >= *size) return Status::OutOfRange("list set past end");
  return mgr_->Replace(
      id, index * element_size_,
      std::string_view(static_cast<const char*>(elem), element_size_));
}

}  // namespace lob
