// TraceSpan: RAII phase span on the modeled clock.
//
// A span site names the sub-phase it brackets and the SimDisk whose
// modeled clock timestamps it:
//
//   Status PositionalTree::FindLeaf(...) {
//     LOB_TRACE_SPAN(disk, "tree.descend");
//     ...
//   }
//
// When no TraceSession is attached to the disk (the common case) the span
// is two pointer checks; when LOB_TRACING=0 the macro expands to nothing
// at all. Spans opened inside a StorageSystem::UnmeteredSection are
// dropped (active_trace() returns nullptr while attribution is
// suspended), keeping traces consistent with the restored stats.

#ifndef LOB_TRACE_TRACE_SPAN_H_
#define LOB_TRACE_TRACE_SPAN_H_

#include "iomodel/sim_disk.h"
#include "trace/trace_session.h"
#include "trace/tracing.h"

namespace lob {

#if LOB_TRACING

/// Opens a kPhase span on the disk's active trace for the scope lifetime.
class TraceSpan {
 public:
  TraceSpan(SimDisk* disk, const char* name) : disk_(disk) {
    TraceSession* t = disk->active_trace();
    if (t != nullptr) {
      session_ = t;
      index_ = t->BeginSpan(name, SpanKind::kPhase, disk->stats().ms);
    }
  }
  ~TraceSpan() {
    if (session_ != nullptr) session_->EndSpan(index_, disk_->stats().ms);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  SimDisk* disk_;
  TraceSession* session_ = nullptr;
  size_t index_ = 0;
};

#define LOB_TRACE_CONCAT_INNER(a, b) a##b
#define LOB_TRACE_CONCAT(a, b) LOB_TRACE_CONCAT_INNER(a, b)
#define LOB_TRACE_SPAN(disk, name) \
  ::lob::TraceSpan LOB_TRACE_CONCAT(lob_trace_span_, __LINE__)((disk), (name))

#else  // !LOB_TRACING

#define LOB_TRACE_SPAN(disk, name) ((void)0)

#endif  // LOB_TRACING

}  // namespace lob

#endif  // LOB_TRACE_TRACE_SPAN_H_
