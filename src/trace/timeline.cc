#include "trace/timeline.h"

#include <cstdio>

#include "common/csv.h"

namespace lob {

std::string TimelineSampler::CsvHeader() {
  return "config,ops,modeled_ms,object_bytes,allocated_bytes,utilization,"
         "segments,seg_bytes_min,seg_bytes_mean,seg_bytes_max,free_pages,"
         "largest_free_extent,free_extents\n";
}

void TimelineSampler::AppendCsv(const std::string& label,
                                std::string* out) const {
  MutexLock lock(&mu_);
  const std::string escaped = CsvEscape(label);
  for (const TimelineSample& s : samples_) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",%u,%.3f,%llu,%llu,%.6f,%llu,%llu,%.1f,%llu,%llu,%llu,",
                  s.ops_done, s.modeled_ms,
                  static_cast<unsigned long long>(s.object_bytes),
                  static_cast<unsigned long long>(s.allocated_bytes),
                  s.utilization, static_cast<unsigned long long>(s.segments),
                  static_cast<unsigned long long>(s.seg_bytes_min),
                  s.seg_bytes_mean,
                  static_cast<unsigned long long>(s.seg_bytes_max),
                  static_cast<unsigned long long>(s.free_pages),
                  static_cast<unsigned long long>(s.largest_free_extent));
    out->append(escaped);
    out->append(buf);
    // Histogram field: "pages:count;..." — ';' keeps it one CSV field.
    std::string histo;
    for (const auto& [pages, count] : s.free_extents) {
      if (!histo.empty()) histo.push_back(';');
      char pair_buf[48];
      std::snprintf(pair_buf, sizeof(pair_buf), "%u:%llu", pages,
                    static_cast<unsigned long long>(count));
      histo.append(pair_buf);
    }
    out->append(CsvEscape(histo));
    out->push_back('\n');
  }
}

}  // namespace lob
