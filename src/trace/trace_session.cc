#include "trace/trace_session.h"

#include <cstdarg>

#include "common/logging.h"

namespace lob {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* KindCategory(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOp:
      return "op";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kIo:
      return "io";
  }
  return "phase";
}

}  // namespace

uint32_t TraceSession::InternName(std::string_view name) {
  MutexLock lock(&mu_);
  return InternNameLocked(name);
}

uint32_t TraceSession::InternNameLocked(std::string_view name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

size_t TraceSession::BeginSpan(std::string_view name, SpanKind kind,
                               double now_ms) {
  MutexLock lock(&mu_);
  Event e;
  e.name_id = InternNameLocked(name);
  e.kind = kind;
  e.start_ms = now_ms;
  if (!stack_.empty()) {
    e.parent = static_cast<int32_t>(stack_.back());
    e.depth = static_cast<uint16_t>(events_[stack_.back()].depth + 1);
  }
  const size_t index = events_.size();
  events_.push_back(e);
  stack_.push_back(index);
  return index;
}

void TraceSession::EndSpan(size_t index, double now_ms) {
  MutexLock lock(&mu_);
  LOB_CHECK(!stack_.empty());
  // Spans are RAII scopes, so closes arrive strictly LIFO.
  LOB_CHECK_EQ(stack_.back(), index);
  stack_.pop_back();
  Event& e = events_[index];
  e.dur_ms = now_ms - e.start_ms;
  if (e.dur_ms < 0) e.dur_ms = 0;  // clock restored by UnmeteredSection
}

void TraceSession::RecordIo(bool is_read, uint32_t pages, double start_ms,
                            double dur_ms) {
  MutexLock lock(&mu_);
  if (io_name_id_ == UINT32_MAX) io_name_id_ = InternNameLocked("disk.io");
  Event e;
  e.name_id = io_name_id_;
  e.kind = SpanKind::kIo;
  e.is_read = is_read;
  e.pages = pages;
  e.start_ms = start_ms;
  e.dur_ms = dur_ms;
  if (!stack_.empty()) {
    e.parent = static_cast<int32_t>(stack_.back());
    e.depth = static_cast<uint16_t>(events_[stack_.back()].depth + 1);
  }
  events_.push_back(e);
}

std::map<std::string, double> TraceSession::IoMsByOp() const {
  MutexLock lock(&mu_);
  std::map<std::string, double> by_op;
  for (const Event& e : events_) {
    if (e.kind != SpanKind::kIo) continue;
    int32_t p = e.parent;
    while (p >= 0 && events_[static_cast<size_t>(p)].kind != SpanKind::kOp) {
      p = events_[static_cast<size_t>(p)].parent;
    }
    const std::string& label =
        p >= 0 ? Name(events_[static_cast<size_t>(p)].name_id)
               : std::string("(unattributed)");
    by_op[label] += e.dur_ms;
  }
  return by_op;
}

void TraceSession::AppendChromeTraceEvents(std::string* out, int pid,
                                           const std::string& process_name,
                                           bool* first) const {
  MutexLock lock(&mu_);
  auto sep = [&] {
    if (!*first) out->append(",\n");
    *first = false;
  };
  sep();
  AppendF(out,
          "  {\"ph\": \"M\", \"pid\": %d, \"tid\": 0, "
          "\"name\": \"process_name\", \"args\": {\"name\": \"%s\"}}",
          pid, JsonEscape(process_name).c_str());
  for (const Event& e : events_) {
    sep();
    // ts/dur in microseconds of the modeled clock; fixed %.3f keeps the
    // serialization deterministic.
    AppendF(out,
            "  {\"ph\": \"X\", \"pid\": %d, \"tid\": 0, \"name\": \"%s\", "
            "\"cat\": \"%s\", \"ts\": %.3f, \"dur\": %.3f",
            pid, JsonEscape(Name(e.name_id)).c_str(), KindCategory(e.kind),
            e.start_ms * 1000.0, e.dur_ms * 1000.0);
    if (e.kind == SpanKind::kIo) {
      AppendF(out, ", \"args\": {\"rw\": \"%s\", \"pages\": %u}",
              e.is_read ? "read" : "write", e.pages);
    }
    out->append("}");
  }
}

std::string TraceSession::ChromeTraceJson(
    const std::vector<std::pair<std::string, const TraceSession*>>&
        sessions) {
  std::string out =
      "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  int pid = 0;
  for (const auto& [label, session] : sessions) {
    session->AppendChromeTraceEvents(&out, pid, label, &first);
    ++pid;
  }
  out += "\n]\n}\n";
  return out;
}

TraceSession::SummaryNode TraceSession::Summarize() const {
  MutexLock lock(&mu_);
  SummaryNode root;
  // node_of[i] points at the summary node event i was merged into; events
  // are ordered so parents precede children.
  std::vector<SummaryNode*> node_of(events_.size(), nullptr);
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    SummaryNode* parent =
        e.parent < 0 ? &root : node_of[static_cast<size_t>(e.parent)];
    SummaryNode& node = parent->children[Name(e.name_id)];
    node.count++;
    node.total_ms += e.dur_ms;
    if (e.kind == SpanKind::kIo) {
      node.io_calls++;
      node.io_pages += e.pages;
    }
    node_of[i] = &node;
  }
  return root;
}

namespace {

void PrintSummaryNode(const std::string& name,
                      const TraceSession::SummaryNode& node, int depth,
                      std::FILE* f) {
  std::fprintf(f, "%*s%-*s %8llu %12.1f", depth * 2, "",
               36 - depth * 2 > 0 ? 36 - depth * 2 : 0, name.c_str(),
               static_cast<unsigned long long>(node.count), node.total_ms);
  if (node.io_calls > 0) {
    std::fprintf(f, "  (%llu calls, %llu pages)",
                 static_cast<unsigned long long>(node.io_calls),
                 static_cast<unsigned long long>(node.io_pages));
  }
  std::fprintf(f, "\n");
  for (const auto& [child_name, child] : node.children) {
    PrintSummaryNode(child_name, child, depth + 1, f);
  }
}

}  // namespace

void TraceSession::PrintSummary(const SummaryNode& root, std::FILE* f) {
  std::fprintf(f, "%-36s %8s %12s\n", "span", "count", "modeled ms");
  for (const auto& [name, node] : root.children) {
    PrintSummaryNode(name, node, 0, f);
  }
}

}  // namespace lob
