// TraceSession: structured span recording on the modeled clock.
//
// The paper's figures are endpoint numbers; the mechanisms behind them —
// tree descents, buddy splits, EOS shuffle/merge cascades, Starburst
// copy-to-end rewrites — are trajectories of modeled milliseconds. A
// TraceSession records them as a stream of strictly nested spans:
//
//   kOp    — a logical operation ("eos.insert"), opened by OpScope with
//            the same (possibly composed "parent.child") label the
//            attribution ledger charges;
//   kPhase — a sub-phase inside an op ("tree.descend", "buddy.alloc",
//            "seg.shuffle", "pool.miss", ...), opened by LOB_TRACE_SPAN;
//   kIo    — one metered SimDisk call ("disk.io"), a leaf with its
//            read/write direction and page count as payload.
//
// Timestamps are the SimDisk modeled clock (stats().ms), not wall time:
// a trace is a deterministic function of the workload, byte-identical
// across runs and across --jobs worker counts. Conservation extends one
// level below the ObsRegistry ledger: per op, the sum of child disk.io
// span ms equals the ms the ledger attributed to that op's label
// (IoMsByOp(), asserted in tests for all three engines).
//
// The session is single-threaded by design: one session per bench job,
// owned like JobOutput, merged in submission order by the harness.
//
// Exporters: Chrome trace-event / Perfetto JSON (ChromeTraceJson; open in
// https://ui.perfetto.dev or chrome://tracing) and an aggregated span-tree
// summary (Summarize/PrintSummary, used by `lobtool trace`).

#ifndef LOB_TRACE_TRACE_SESSION_H_
#define LOB_TRACE_TRACE_SESSION_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"
#include "trace/tracing.h"

namespace lob {

/// What a span represents; exported as the Chrome trace-event category.
enum class SpanKind : uint8_t { kOp, kPhase, kIo };

/// Records one job's span stream; see the file comment.
class TraceSession {
 public:
  /// One recorded span. Spans are strictly nested (RAII discipline);
  /// `parent` indexes into events() (-1 for roots) and events are ordered
  /// by start (then nesting), so a single forward pass rebuilds the tree.
  struct Event {
    uint32_t name_id = 0;  ///< index into names()
    int32_t parent = -1;   ///< enclosing span's event index, -1 = root
    uint16_t depth = 0;    ///< nesting depth (roots are 0)
    SpanKind kind = SpanKind::kPhase;
    bool is_read = false;  ///< kIo only
    uint32_t pages = 0;    ///< kIo only
    double start_ms = 0;   ///< modeled clock at open
    double dur_ms = 0;     ///< modeled ms spent inside the span
  };

  TraceSession() = default;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Interns `name`, returning a stable id for Event::name_id. Takes a
  /// view so the hot path (span sites passing literals or label buffers)
  /// allocates only on first sight of a name.
  uint32_t InternName(std::string_view name) LOB_EXCLUDES(mu_);
  /// Thread-compatible accessor (escaping reference): exporters read
  /// names from a quiesced session.
  const std::string& Name(uint32_t id) const LOB_UNLOCKED_ACCESS {
    return names_[id];
  }

  /// Opens a span at modeled time `now_ms`; returns its event index for
  /// the matching EndSpan. Spans must close in LIFO order (checked).
  size_t BeginSpan(std::string_view name, SpanKind kind, double now_ms)
      LOB_EXCLUDES(mu_);
  void EndSpan(size_t index, double now_ms) LOB_EXCLUDES(mu_);

  /// Records one metered disk call as a "disk.io" leaf under the
  /// currently open span (root level when none is open). Called by
  /// SimDisk::AccountCall, which can run under the BufferPool latch —
  /// hence kTraceSession ranks above kBufferPool.
  void RecordIo(bool is_read, uint32_t pages, double start_ms, double dur_ms)
      LOB_EXCLUDES(mu_);

  /// Thread-compatible accessor (escaping reference; quiesced readers).
  const std::vector<Event>& events() const LOB_UNLOCKED_ACCESS {
    return events_;
  }
  bool empty() const LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return events_.empty();
  }
  size_t open_spans() const LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stack_.size();
  }

  /// Sum of disk.io span ms grouped by the nearest enclosing kOp span's
  /// name ("(unattributed)" when the I/O happened outside any op). The
  /// conservation tests compare this map against the ObsRegistry ledger.
  std::map<std::string, double> IoMsByOp() const LOB_EXCLUDES(mu_);

  /// Appends this session's events as Chrome trace-event objects (ph "X"
  /// complete events, ts/dur in modeled microseconds) plus a process_name
  /// metadata record. `pid` distinguishes jobs in the merged file;
  /// `*first` tracks comma placement across sessions.
  void AppendChromeTraceEvents(std::string* out, int pid,
                               const std::string& process_name,
                               bool* first) const LOB_EXCLUDES(mu_);

  /// Merges the labeled sessions (in the given order — the harness passes
  /// submission order, making the bytes independent of --jobs) into one
  /// Chrome trace-event JSON document.
  static std::string ChromeTraceJson(
      const std::vector<std::pair<std::string, const TraceSession*>>&
          sessions);

  /// Aggregated span tree: spans with the same name under the same parent
  /// path are merged, accumulating counts, modeled ms and I/O payloads.
  struct SummaryNode {
    uint64_t count = 0;
    double total_ms = 0;
    uint64_t io_calls = 0;  ///< kIo spans merged into this node
    uint64_t io_pages = 0;
    std::map<std::string, SummaryNode> children;
  };
  SummaryNode Summarize() const LOB_EXCLUDES(mu_);

  /// Prints a summary tree as an indented per-phase modeled-ms rollup.
  static void PrintSummary(const SummaryNode& root, std::FILE* f);

 private:
  uint32_t InternNameLocked(std::string_view name) LOB_REQUIRES(mu_);

  /// Session latch (LockRank::kTraceSession). One session per job keeps
  /// contention nil today; the latch makes the recording entry points
  /// safe for the shared-session serving arc and lets RecordIo run under
  /// the pool latch without a rank inversion.
  mutable Mutex mu_{LockRank::kTraceSession};
  std::vector<std::string> names_ LOB_GUARDED_BY(mu_);
  std::map<std::string, uint32_t, std::less<>> name_ids_ LOB_GUARDED_BY(mu_);
  std::vector<Event> events_ LOB_GUARDED_BY(mu_);
  /// Indices of currently open spans.
  std::vector<size_t> stack_ LOB_GUARDED_BY(mu_);
  /// Interned "disk.io", lazily.
  uint32_t io_name_id_ LOB_GUARDED_BY(mu_) = UINT32_MAX;
};

}  // namespace lob

#endif  // LOB_TRACE_TRACE_SESSION_H_
