// Compile-time switch for the modeled-clock tracing subsystem.
//
// LOB_TRACING defaults to 1 (spans compiled in). Configuring the build
// with -DLOB_TRACING=OFF makes CMake define LOB_TRACING=0 globally, which
// compiles every span site — SimDisk's disk.io hook, OpScope's op spans,
// every LOB_TRACE_SPAN phase marker — down to nothing: no branch, no
// member, no code. The TraceSession class itself stays compiled (so
// signatures like SimDisk::set_trace remain stable and benches build
// unchanged), but it never receives events; scripts/check.sh proves the
// OFF build reproduces the tracing build's bench output byte for byte.

#ifndef LOB_TRACE_TRACING_H_
#define LOB_TRACE_TRACING_H_

#ifndef LOB_TRACING
#define LOB_TRACING 1
#endif

#endif  // LOB_TRACE_TRACING_H_
