// TimelineSampler: periodic storage-state snapshots on the modeled clock.
//
// Sears & van Ingen show that fragmentation and performance cliffs in
// large-object repositories are trajectories over a workload, not
// endpoints. The sampler turns the paper's Figure 7/8 endpoint
// utilization numbers into continuous per-engine timelines: every N
// operations of the update mix (and at the final op), RunUpdateMix
// snapshots utilization, the free-extent histogram from the buddy trees,
// the object's segment count/size distribution and the cumulative modeled
// ms, all gathered inside an UnmeteredSection so sampling never perturbs
// the measured costs.
//
// Unlike span tracing this is not compile-time gated: sampling only
// happens when a sampler is attached (MixSpec::timeline), which only the
// --timeline bench flag does.
//
// The CSV exporter shares RFC-4180 escaping with ObsRegistry::ToCsv; the
// free-extent histogram serializes as "pages:count;pages:count;...".

#ifndef LOB_TRACE_TIMELINE_H_
#define LOB_TRACE_TIMELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace lob {

/// One snapshot of storage state after `ops_done` mix operations.
struct TimelineSample {
  uint32_t ops_done = 0;
  double modeled_ms = 0;        ///< cumulative modeled I/O ms so far
  uint64_t object_bytes = 0;    ///< logical object size
  uint64_t allocated_bytes = 0; ///< disk bytes held by both areas
  double utilization = 0;       ///< object_bytes / allocated_bytes
  uint64_t segments = 0;        ///< leaf segments of the object
  uint64_t seg_bytes_min = 0;
  double seg_bytes_mean = 0;
  uint64_t seg_bytes_max = 0;
  uint64_t free_pages = 0;            ///< free blocks across all spaces
  uint64_t largest_free_extent = 0;   ///< largest free aligned chunk, pages
  /// Maximal free aligned chunks by size: (chunk pages -> count).
  std::map<uint32_t, uint64_t> free_extents;
};

/// Collects samples for one configuration run and exports them as CSV.
/// Single-threaded, one sampler per bench job (owned like JobOutput).
class TimelineSampler {
 public:
  /// Samples every `every_n` operations (plus the final op).
  explicit TimelineSampler(uint32_t every_n) : every_n_(every_n) {}

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  /// True when a sample is due after `ops_done` operations. The driver
  /// additionally samples at op 0 (post-build baseline) and the final op.
  bool WantsSample(uint32_t ops_done) const {
    return every_n_ > 0 && ops_done % every_n_ == 0;
  }

  void Add(const TimelineSample& sample) LOB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    samples_.push_back(sample);
  }

  /// Thread-compatible accessor (escaping reference; quiesced readers).
  const std::vector<TimelineSample>& samples() const LOB_UNLOCKED_ACCESS {
    return samples_;
  }
  uint32_t every_n() const { return every_n_; }

  /// Column header shared by every timeline CSV file.
  static std::string CsvHeader();

  /// Appends one row per sample, tagged with `label` (RFC-4180 escaped).
  void AppendCsv(const std::string& label, std::string* out) const
      LOB_EXCLUDES(mu_);

 private:
  /// Sampler latch (LockRank::kTimeline); mutable for the const exporter.
  mutable Mutex mu_{LockRank::kTimeline};
  const uint32_t every_n_;
  std::vector<TimelineSample> samples_ LOB_GUARDED_BY(mu_);
};

}  // namespace lob

#endif  // LOB_TRACE_TIMELINE_H_
