// On-page layout of positional tree nodes (paper 2.1, Figure 1).
//
// Every node holds a sequence of (count, page) pairs where count values are
// cumulative: c[i] is the number of bytes stored in children 0..i, so the
// bytes below child i alone are c[i] - c[i-1] (c[-1] = 0 by convention) and
// the rightmost count of the root is the object size. Counts and pointers
// are 4 bytes each; with 4K pages the root (which also carries the object
// header) holds up to 507 pairs and internal nodes 511, the numbers quoted
// in paper 4.1.
//
// The root of an object lives alone in its own page; its page number is the
// object's identity. Heights: a root of height 1 points directly at leaf
// segments (the "level 1" trees of the paper); height 2 adds one layer of
// internal nodes, and so on.

#ifndef LOB_LOBTREE_NODE_LAYOUT_H_
#define LOB_LOBTREE_NODE_LAYOUT_H_

#include <cstdint>
#include <cstring>

#include "common/logging.h"
#include "iomodel/sim_disk.h"

namespace lob {

/// One child reference: `bytes` stored below it and the page where the
/// child (internal node or first page of a leaf segment) lives.
struct LeafEntry {
  uint32_t bytes = 0;
  PageId page = kInvalidPage;
};

/// Tunable fan-out caps (defaults match the paper; tests shrink them to
/// exercise splits and merges cheaply).
struct TreeLimits {
  uint32_t root_capacity = 507;
  uint32_t internal_capacity = 511;

  /// Minimum pairs in a non-root node ("at least half full"). Based on the
  /// smaller of the two capacities because a root split hands each child
  /// about half the root's pairs.
  uint32_t MinFill() const {
    return (root_capacity < internal_capacity ? root_capacity
                                              : internal_capacity) /
           2;
  }
};

namespace node {

constexpr uint32_t kRootMagic = 0x4C4F4252;      // "LOBR"
constexpr uint32_t kInternalMagic = 0x4C4F4249;  // "LOBI"
constexpr uint32_t kRootHeaderBytes = 40;
constexpr uint32_t kInternalHeaderBytes = 8;

inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }

}  // namespace node

/// View over a tree node's page image. Cheap to construct; does not own
/// the underlying buffer (which normally lives in a buffer pool frame).
///
/// `CharT` is `char` (NodeView, mutable) or `const char` (ConstNodeView,
/// read-only). The mutating members are templates over the same CharT and
/// only instantiate when called, so constructing a ConstNodeView over a
/// borrowed page image compiles — but calling a mutator on it does not.
/// Read paths use ConstNodeView over PageGuard::data() and never force the
/// zero-copy pool to materialize a private page copy.
template <typename CharT>
class BasicNodeView {
 public:
  BasicNodeView(CharT* data, uint32_t page_size, bool is_root)
      : data_(data), page_size_(page_size), is_root_(is_root) {}

  /// Formats a fresh node in the buffer.
  void Init(uint16_t height, uint8_t engine = 0) {
    std::memset(data_, 0, page_size_);
    if (is_root_) {
      node::StoreU32(data_, node::kRootMagic);
      data_[4] = static_cast<char>(engine);
      node::StoreU16(data_ + 6, height);
      node::StoreU16(data_ + 8, 0);  // npairs
      node::StoreU32(data_ + 16, 0);  // aux (EOS last-segment allocation)
    } else {
      node::StoreU32(data_, node::kInternalMagic);
      node::StoreU16(data_ + 4, height);
      node::StoreU16(data_ + 6, 0);  // npairs
    }
  }

  bool IsValid() const {
    return node::LoadU32(data_) ==
           (is_root_ ? node::kRootMagic : node::kInternalMagic);
  }

  bool is_root() const { return is_root_; }

  uint16_t height() const {
    return node::LoadU16(data_ + (is_root_ ? 6 : 4));
  }
  void set_height(uint16_t h) {
    node::StoreU16(data_ + (is_root_ ? 6 : 4), h);
  }

  uint16_t npairs() const {
    return node::LoadU16(data_ + (is_root_ ? 8 : 6));
  }
  void set_npairs(uint16_t n) {
    node::StoreU16(data_ + (is_root_ ? 8 : 6), n);
  }

  uint8_t engine() const {
    LOB_CHECK(is_root_);
    return static_cast<uint8_t>(data_[4]);
  }

  /// Root-only auxiliary word; EOS stores the allocated page count of the
  /// last segment here (the segment may be larger than its used bytes
  /// while the object is being appended to).
  uint32_t aux() const {
    LOB_CHECK(is_root_);
    return node::LoadU32(data_ + 16);
  }
  void set_aux(uint32_t v) {
    LOB_CHECK(is_root_);
    node::StoreU32(data_ + 16, v);
  }

  /// Cumulative byte count of pair `i` (bytes of children 0..i).
  uint32_t Count(uint32_t i) const {
    LOB_CHECK_LT(i, npairs());
    return node::LoadU32(PairPtr(i));
  }
  PageId Page(uint32_t i) const {
    LOB_CHECK_LT(i, npairs());
    return node::LoadU32(PairPtr(i) + 4);
  }
  void SetCount(uint32_t i, uint32_t c) {
    LOB_CHECK_LT(i, npairs());
    node::StoreU32(PairPtr(i), c);
  }
  void SetPage(uint32_t i, PageId p) {
    LOB_CHECK_LT(i, npairs());
    node::StoreU32(PairPtr(i) + 4, p);
  }

  /// Bytes stored below child `i` alone (c[i] - c[i-1]).
  uint32_t SubtreeBytes(uint32_t i) const {
    return Count(i) - (i == 0 ? 0 : Count(i - 1));
  }

  /// Total bytes below this node (0 when empty).
  uint32_t TotalBytes() const {
    const uint16_t n = npairs();
    return n == 0 ? 0 : Count(n - 1);
  }

  /// First i such that offset < c[i]; requires offset < TotalBytes().
  uint32_t FindChild(uint32_t offset) const {
    const uint16_t n = npairs();
    LOB_CHECK_GT(n, 0);
    uint32_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (offset < Count(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    LOB_CHECK_LT(offset, Count(lo));
    return lo;
  }

  /// Inserts a pair before position `i` with `bytes` below it; following
  /// cumulative counts shift up by `bytes`.
  void InsertPair(uint32_t i, uint32_t bytes, PageId page) {
    const uint16_t n = npairs();
    LOB_CHECK_LE(i, n);
    CharT* at = PairPtr(i);
    std::memmove(at + 8, at, static_cast<size_t>(n - i) * 8);
    set_npairs(static_cast<uint16_t>(n + 1));
    const uint32_t base = i == 0 ? 0 : Count(i - 1);
    node::StoreU32(at, base + bytes);
    node::StoreU32(at + 4, page);
    for (uint32_t j = i + 1; j <= n; ++j) SetCount(j, Count(j) + bytes);
  }

  /// Removes pair `i`; following cumulative counts shift down by its bytes.
  void RemovePair(uint32_t i) {
    const uint16_t n = npairs();
    LOB_CHECK_LT(i, n);
    const uint32_t bytes = SubtreeBytes(i);
    CharT* at = PairPtr(i);
    std::memmove(at, at + 8, static_cast<size_t>(n - i - 1) * 8);
    set_npairs(static_cast<uint16_t>(n - 1));
    for (uint32_t j = i; j + 1 <= static_cast<uint32_t>(n - 1); ++j) {
      SetCount(j, Count(j) - bytes);
    }
  }

  /// Adds `delta` to the subtree bytes of child `i` (and so to every
  /// cumulative count from i on).
  void AddBytes(uint32_t i, int64_t delta) {
    const uint16_t n = npairs();
    LOB_CHECK_LT(i, n);
    for (uint32_t j = i; j < n; ++j) {
      SetCount(j, static_cast<uint32_t>(static_cast<int64_t>(Count(j)) +
                                        delta));
    }
  }

  /// Physical pair capacity of this page (layout bound; the logical cap in
  /// TreeLimits must not exceed it).
  uint32_t PhysicalCapacity() const {
    const uint32_t header =
        is_root_ ? node::kRootHeaderBytes : node::kInternalHeaderBytes;
    return (page_size_ - header) / 8;
  }

  const char* raw() const { return data_; }

 private:
  CharT* PairPtr(uint32_t i) const {
    const uint32_t header =
        is_root_ ? node::kRootHeaderBytes : node::kInternalHeaderBytes;
    return data_ + header + static_cast<size_t>(i) * 8;
  }

  CharT* data_;
  uint32_t page_size_;
  bool is_root_;
};

/// Mutable node view over a pool frame's private (materialized) bytes.
using NodeView = BasicNodeView<char>;

/// Read-only node view; safe over borrowed (zero-copy) page images.
using ConstNodeView = BasicNodeView<const char>;

}  // namespace lob

#endif  // LOB_LOBTREE_NODE_LAYOUT_H_
