#include "lobtree/positional_tree.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "buddy/scoped_extent.h"
#include "common/logging.h"
#include "trace/trace_span.h"

namespace lob {

namespace {

// Rewrites the pair array of a formatted node from a flat entry list.
void WriteEntries(NodeView* v, const std::vector<LeafEntry>& entries,
                  size_t first, size_t count) {
  v->set_npairs(0);
  uint32_t cum = 0;
  for (size_t i = 0; i < count; ++i) {
    const LeafEntry& e = entries[first + i];
    v->set_npairs(static_cast<uint16_t>(i + 1));
    cum += e.bytes;
    v->SetCount(static_cast<uint32_t>(i), cum);
    v->SetPage(static_cast<uint32_t>(i), e.page);
  }
}

template <typename View>
std::vector<LeafEntry> GatherEntries(const View& v) {
  std::vector<LeafEntry> out;
  out.reserve(v.npairs());
  for (uint32_t i = 0; i < v.npairs(); ++i) {
    out.push_back({v.SubtreeBytes(i), v.Page(i)});
  }
  return out;
}

uint32_t SumBytes(const std::vector<LeafEntry>& entries, size_t first,
                  size_t count) {
  uint32_t sum = 0;
  for (size_t i = 0; i < count; ++i) sum += entries[first + i].bytes;
  return sum;
}

}  // namespace

PositionalTree::PositionalTree(const TreeConfig& config) : config_(config) {
  LOB_CHECK(config_.pool != nullptr);
  LOB_CHECK(config_.meta_area != nullptr);
  const uint32_t page_size = config_.pool->page_size();
  LOB_CHECK_LE(config_.limits.root_capacity,
               (page_size - node::kRootHeaderBytes) / 8);
  LOB_CHECK_LE(config_.limits.internal_capacity,
               (page_size - node::kInternalHeaderBytes) / 8);
  LOB_CHECK_GE(config_.limits.root_capacity, 4u);
  LOB_CHECK_GE(config_.limits.internal_capacity, 4u);
}

StatusOr<PageId> PositionalTree::CreateObject(uint8_t engine) {
  WriterMutexLock lock(&latch_);
  LOB_TRACE_SPAN(config_.pool->disk(), "tree.create");
  auto ext = ScopedExtent::Allocate(config_.meta_area, config_.pool, 1);
  if (!ext.ok()) return ext.status();
  {
    auto g = config_.pool->FixPage(meta_area_id(), ext->first_page(),
                                   FixMode::kNew);
    if (!g.ok()) return g.status();  // ext rolls the root page back
    NodeView v(g->mutable_data(), config_.pool->page_size(), /*is_root=*/true);
    v.Init(/*height=*/1, engine);
    g->MarkDirty();
  }
  ext->Commit();
  return ext->first_page();
}

Status PositionalTree::FreeIndexPage(PageId page) {
  LOB_RETURN_IF_ERROR(config_.pool->Invalidate(meta_area_id(), page, 1));
  return config_.meta_area->Free(page, 1);
}

Status PositionalTree::DestroyObject(PageId root) {
  WriterMutexLock lock(&latch_);
  LOB_TRACE_SPAN(config_.pool->disk(), "tree.destroy");
  // Free internal nodes depth-first, then the root page itself.
  struct Walker {
    PositionalTree* tree;
    Status Free(PageId page, bool is_root) {
      std::vector<PageId> children;
      uint16_t height = 0;
      {
        auto g = tree->config_.pool->FixPage(tree->meta_area_id(), page,
                                             FixMode::kRead);
        if (!g.ok()) return g.status();
        ConstNodeView v(g->data(), tree->config_.pool->page_size(), is_root);
        if (!v.IsValid()) return Status::Corruption("bad node magic");
        height = v.height();
        if (height > 1) {
          for (uint32_t i = 0; i < v.npairs(); ++i) {
            children.push_back(v.Page(i));
          }
        }
      }
      for (PageId c : children) LOB_RETURN_IF_ERROR(Free(c, false));
      return tree->FreeIndexPage(page);
    }
  };
  Walker w{this};
  return w.Free(root, /*is_root=*/true);
}

StatusOr<uint64_t> PositionalTree::Size(PageId root) {
  ReaderMutexLock lock(&latch_);
  return SizeLocked(root);
}

StatusOr<uint64_t> PositionalTree::SizeLocked(PageId root) {
  auto g = config_.pool->FixPage(meta_area_id(), root, FixMode::kRead);
  if (!g.ok()) return g.status();
  ConstNodeView v(g->data(), config_.pool->page_size(), /*is_root=*/true);
  if (!v.IsValid()) return Status::Corruption("bad root magic");
  return static_cast<uint64_t>(v.TotalBytes());
}

StatusOr<PositionalTree::LeafInfo> PositionalTree::FindLeaf(PageId root,
                                                            uint64_t offset) {
  ReaderMutexLock lock(&latch_);
  return FindLeafLocked(root, offset);
}

StatusOr<PositionalTree::LeafInfo> PositionalTree::FindLeafLocked(
    PageId root, uint64_t offset) {
  LOB_TRACE_SPAN(config_.pool->disk(), "tree.descend");
  PageId page = root;
  bool is_root = true;
  uint64_t base = 0;
  uint64_t rel = offset;
  while (true) {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    if (!v.IsValid()) return Status::Corruption("bad node magic");
    if (v.npairs() == 0 || rel >= v.TotalBytes()) {
      return Status::OutOfRange("offset beyond object size");
    }
    const uint32_t idx = v.FindChild(static_cast<uint32_t>(rel));
    const uint64_t prefix = idx == 0 ? 0 : v.Count(idx - 1);
    if (v.height() == 1) {
      return LeafInfo{base + prefix, v.SubtreeBytes(idx), v.Page(idx)};
    }
    base += prefix;
    rel -= prefix;
    page = v.Page(idx);
    is_root = false;
  }
}

StatusOr<PositionalTree::LeafInfo> PositionalTree::LastLeaf(PageId root) {
  ReaderMutexLock lock(&latch_);
  auto size = SizeLocked(root);
  if (!size.ok()) return size.status();
  if (*size == 0) return Status::NotFound("empty object");
  return FindLeafLocked(root, *size - 1);
}

StatusOr<PageId> PositionalTree::PrepareModify(PageId page, OpContext* ctx) {
  LOB_CHECK(ctx != nullptr);
  if (!config_.shadowing) {
    ctx->DeferFlush(meta_area_id(), page, 1);
    return page;
  }
  if (ctx->AlreadyShadowed(meta_area_id(), page)) return page;
  auto ext = ScopedExtent::Allocate(config_.meta_area, config_.pool, 1);
  if (!ext.ok()) return ext.status();
  const PageId np = ext->first_page();
  {
    auto old_g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!old_g.ok()) return old_g.status();  // ext rolls the shadow back
    auto new_g = config_.pool->FixPage(meta_area_id(), np, FixMode::kNew);
    if (!new_g.ok()) return new_g.status();
    std::memcpy(new_g->mutable_data(), old_g->data(),
                config_.pool->page_size());
    new_g->MarkDirty();
  }
  // The shadow copy is complete: commit it, then retire the old page.
  // (Invalidate and Free cannot fail under injected I/O faults: the pins
  // are released and DatabaseArea::Free absorbs directory-write errors.)
  ext->Commit();
  LOB_RETURN_IF_ERROR(config_.pool->Invalidate(meta_area_id(), page, 1));
  LOB_RETURN_IF_ERROR(config_.meta_area->Free(page, 1));
  ctx->NoteShadowed(meta_area_id(), np);
  ctx->DeferFlush(meta_area_id(), np, 1);
  return np;
}

StatusOr<PageId> PositionalTree::NewInternalNode(uint16_t height,
                                                 OpContext* ctx) {
  auto ext = ScopedExtent::Allocate(config_.meta_area, config_.pool, 1);
  if (!ext.ok()) return ext.status();
  {
    auto g = config_.pool->FixPage(meta_area_id(), ext->first_page(),
                                   FixMode::kNew);
    if (!g.ok()) return g.status();  // ext rolls the node back
    NodeView v(g->mutable_data(), config_.pool->page_size(),
               /*is_root=*/false);
    v.Init(height);
    g->MarkDirty();
  }
  ext->Commit();
  ctx->NoteShadowed(meta_area_id(), ext->first_page());
  ctx->DeferFlush(meta_area_id(), ext->first_page(), 1);
  return ext->first_page();
}

StatusOr<PositionalTree::SplitResult> PositionalTree::InsertPairInNode(
    PageId page, bool is_root, uint32_t idx, uint32_t bytes, PageId child,
    OpContext* ctx) {
  std::vector<LeafEntry> entries;
  uint16_t height = 0;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    height = v.height();
    if (v.npairs() < CapacityOf(is_root)) {
      NodeView mv(g->mutable_data(), config_.pool->page_size(), is_root);
      mv.InsertPair(idx, bytes, child);
      g->MarkDirty();
      return SplitResult{};
    }
    entries = GatherEntries(v);
  }
  entries.insert(entries.begin() + idx, LeafEntry{bytes, child});
  const size_t total = entries.size();
  const size_t left_n = (total + 1) / 2;
  const size_t right_n = total - left_n;

  if (is_root) {
    // Grow the tree: the root keeps its page (it is the object's identity)
    // and repoints at two fresh internal nodes holding the halves.
    auto left_or = NewInternalNode(height, ctx);
    if (!left_or.ok()) return left_or.status();
    auto right_or = NewInternalNode(height, ctx);
    if (!right_or.ok()) return right_or.status();
    for (int side = 0; side < 2; ++side) {
      const PageId p = side == 0 ? *left_or : *right_or;
      auto g = config_.pool->FixPage(meta_area_id(), p, FixMode::kRead);
      if (!g.ok()) return g.status();
      NodeView v(g->mutable_data(), config_.pool->page_size(),
                 /*is_root=*/false);
      WriteEntries(&v, entries, side == 0 ? 0 : left_n,
                   side == 0 ? left_n : right_n);
      g->MarkDirty();
    }
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
    v.set_height(static_cast<uint16_t>(height + 1));
    std::vector<LeafEntry> top = {
        {SumBytes(entries, 0, left_n), *left_or},
        {SumBytes(entries, left_n, right_n), *right_or}};
    WriteEntries(&v, top, 0, 2);
    g->MarkDirty();
    return SplitResult{};
  }

  // Split a non-root node: keep the left half in place, move the right
  // half to a fresh sibling and report it to the caller.
  auto sib_or = NewInternalNode(height, ctx);
  if (!sib_or.ok()) return sib_or.status();
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(),
               /*is_root=*/false);
    WriteEntries(&v, entries, 0, left_n);
    g->MarkDirty();
  }
  {
    auto g = config_.pool->FixPage(meta_area_id(), *sib_or, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(),
               /*is_root=*/false);
    WriteEntries(&v, entries, left_n, right_n);
    g->MarkDirty();
  }
  return SplitResult{true, SumBytes(entries, left_n, right_n), *sib_or};
}

StatusOr<PositionalTree::SplitResult> PositionalTree::InsertRec(
    PageId page, bool is_root, uint64_t rel, const LeafEntry& entry,
    OpContext* ctx) {
  uint16_t height;
  uint32_t idx;
  uint64_t child_rel = 0;
  PageId child = kInvalidPage;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    if (!v.IsValid()) return Status::Corruption("bad node magic");
    height = v.height();
    const uint32_t total = v.TotalBytes();
    LOB_CHECK_LE(rel, total);
    if (height == 1) {
      if (rel == total) {
        idx = v.npairs();
      } else {
        idx = v.FindChild(static_cast<uint32_t>(rel));
        const uint32_t start = idx == 0 ? 0 : v.Count(idx - 1);
        if (rel != start) {
          return Status::Internal("leaf insert not on a leaf boundary");
        }
      }
    } else {
      idx = rel == total ? v.npairs() - 1
                         : v.FindChild(static_cast<uint32_t>(rel));
      const uint32_t prefix = idx == 0 ? 0 : v.Count(idx - 1);
      child_rel = rel - prefix;
      child = v.Page(idx);
    }
  }
  if (height == 1) {
    return InsertPairInNode(page, is_root, idx, entry.bytes, entry.page, ctx);
  }
  auto prepared = PrepareModify(child, ctx);
  if (!prepared.ok()) return prepared.status();
  if (*prepared != child) {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
    v.SetPage(idx, *prepared);
    g->MarkDirty();
  }
  auto res = InsertRec(*prepared, /*is_root=*/false, child_rel, entry, ctx);
  if (!res.ok()) return res.status();
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
    v.AddBytes(idx, entry.bytes);
    if (res->split) v.AddBytes(idx, -static_cast<int64_t>(res->right_bytes));
    g->MarkDirty();
  }
  if (!res->split) return SplitResult{};
  return InsertPairInNode(page, is_root, idx + 1, res->right_bytes,
                          res->right_page, ctx);
}

Status PositionalTree::InsertLeaf(PageId root, uint64_t at,
                                  const LeafEntry& entry, OpContext* ctx) {
  WriterMutexLock lock(&latch_);
  LOB_TRACE_SPAN(config_.pool->disk(), "tree.insert");
  if (entry.bytes == 0) return Status::InvalidArgument("empty leaf entry");
  auto size = SizeLocked(root);
  if (!size.ok()) return size.status();
  if (at > *size) return Status::OutOfRange("insert past object end");
  auto res = InsertRec(root, /*is_root=*/true, at, entry, ctx);
  if (!res.ok()) return res.status();
  LOB_CHECK(!res->split);
  return Status::OK();
}

StatusOr<LeafEntry> PositionalTree::RemoveRec(PageId page, bool is_root,
                                              uint64_t rel, OpContext* ctx) {
  uint16_t height;
  uint32_t idx;
  uint64_t child_rel = 0;
  PageId child = kInvalidPage;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    if (!v.IsValid()) return Status::Corruption("bad node magic");
    height = v.height();
    if (v.npairs() == 0 || rel >= v.TotalBytes()) {
      return Status::OutOfRange("remove beyond object size");
    }
    idx = v.FindChild(static_cast<uint32_t>(rel));
    const uint32_t prefix = idx == 0 ? 0 : v.Count(idx - 1);
    if (height == 1) {
      if (rel != prefix) {
        return Status::Internal("leaf remove not at a leaf start");
      }
      LeafEntry removed{v.SubtreeBytes(idx), v.Page(idx)};
      NodeView mv(g->mutable_data(), config_.pool->page_size(), is_root);
      mv.RemovePair(idx);
      g->MarkDirty();
      return removed;
    }
    child_rel = rel - prefix;
    child = v.Page(idx);
  }
  auto prepared = PrepareModify(child, ctx);
  if (!prepared.ok()) return prepared.status();
  if (*prepared != child) {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
    v.SetPage(idx, *prepared);
    g->MarkDirty();
  }
  auto removed = RemoveRec(*prepared, /*is_root=*/false, child_rel, ctx);
  if (!removed.ok()) return removed.status();
  uint32_t child_pairs;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
    v.AddBytes(idx, -static_cast<int64_t>(removed->bytes));
    g->MarkDirty();
    auto cg = config_.pool->FixPage(meta_area_id(), *prepared, FixMode::kRead);
    if (!cg.ok()) return cg.status();
    ConstNodeView cv(cg->data(), config_.pool->page_size(),
                     /*is_root=*/false);
    child_pairs = cv.npairs();
  }
  if (child_pairs < config_.limits.MinFill()) {
    LOB_RETURN_IF_ERROR(RebalanceChild(page, is_root, idx, ctx));
  }
  return removed;
}

Status PositionalTree::RebalanceChild(PageId page, bool is_root, uint32_t idx,
                                      OpContext* ctx) {
  uint32_t left_idx, right_idx;
  PageId left_page, right_page;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    if (v.npairs() <= 1) return Status::OK();  // no sibling to draw from
    const uint32_t sib = idx > 0 ? idx - 1 : idx + 1;
    left_idx = std::min(idx, sib);
    right_idx = std::max(idx, sib);
    left_page = v.Page(left_idx);
    right_page = v.Page(right_idx);
  }
  auto lp = PrepareModify(left_page, ctx);
  if (!lp.ok()) return lp.status();
  auto rp = PrepareModify(right_page, ctx);
  if (!rp.ok()) return rp.status();
  if (*lp != left_page || *rp != right_page) {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
    v.SetPage(left_idx, *lp);
    v.SetPage(right_idx, *rp);
    g->MarkDirty();
  }
  std::vector<LeafEntry> left_entries, right_entries;
  uint16_t child_height;
  {
    auto lg = config_.pool->FixPage(meta_area_id(), *lp, FixMode::kRead);
    if (!lg.ok()) return lg.status();
    ConstNodeView lv(lg->data(), config_.pool->page_size(),
                     /*is_root=*/false);
    left_entries = GatherEntries(lv);
    child_height = lv.height();
    auto rg = config_.pool->FixPage(meta_area_id(), *rp, FixMode::kRead);
    if (!rg.ok()) return rg.status();
    ConstNodeView rv(rg->data(), config_.pool->page_size(),
                     /*is_root=*/false);
    right_entries = GatherEntries(rv);
  }
  const uint32_t old_left_bytes = SumBytes(left_entries, 0,
                                           left_entries.size());
  const uint32_t old_right_bytes = SumBytes(right_entries, 0,
                                            right_entries.size());
  std::vector<LeafEntry> all = left_entries;
  all.insert(all.end(), right_entries.begin(), right_entries.end());

  if (all.size() <= config_.limits.internal_capacity) {
    // Merge everything into the left node; drop the right one.
    {
      auto lg = config_.pool->FixPage(meta_area_id(), *lp, FixMode::kRead);
      if (!lg.ok()) return lg.status();
      NodeView lv(lg->mutable_data(), config_.pool->page_size(),
                  /*is_root=*/false);
      WriteEntries(&lv, all, 0, all.size());
      lg->MarkDirty();
    }
    LOB_RETURN_IF_ERROR(FreeIndexPage(*rp));
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
    v.RemovePair(right_idx);
    v.AddBytes(left_idx, old_right_bytes);
    g->MarkDirty();
    (void)child_height;
    return Status::OK();
  }

  // Borrow: redistribute entries evenly across the two nodes.
  const size_t new_left_n = (all.size() + 1) / 2;
  {
    auto lg = config_.pool->FixPage(meta_area_id(), *lp, FixMode::kRead);
    if (!lg.ok()) return lg.status();
    NodeView lv(lg->mutable_data(), config_.pool->page_size(),
                /*is_root=*/false);
    WriteEntries(&lv, all, 0, new_left_n);
    lg->MarkDirty();
  }
  {
    auto rg = config_.pool->FixPage(meta_area_id(), *rp, FixMode::kRead);
    if (!rg.ok()) return rg.status();
    NodeView rv(rg->mutable_data(), config_.pool->page_size(),
                /*is_root=*/false);
    WriteEntries(&rv, all, new_left_n, all.size() - new_left_n);
    rg->MarkDirty();
  }
  const uint32_t new_left_bytes = SumBytes(all, 0, new_left_n);
  auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
  if (!g.ok()) return g.status();
  NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
  const int64_t delta = static_cast<int64_t>(new_left_bytes) -
                        static_cast<int64_t>(old_left_bytes);
  v.AddBytes(left_idx, delta);
  v.AddBytes(right_idx, -delta);
  g->MarkDirty();
  (void)old_right_bytes;
  return Status::OK();
}

Status PositionalTree::MaybeCollapseRoot(PageId root, OpContext* ctx) {
  while (true) {
    PageId child;
    {
      auto g = config_.pool->FixPage(meta_area_id(), root, FixMode::kRead);
      if (!g.ok()) return g.status();
      ConstNodeView v(g->data(), config_.pool->page_size(),
                      /*is_root=*/true);
      if (v.height() == 1 || v.npairs() != 1) return Status::OK();
      child = v.Page(0);
    }
    std::vector<LeafEntry> entries;
    uint16_t child_height;
    {
      auto cg = config_.pool->FixPage(meta_area_id(), child, FixMode::kRead);
      if (!cg.ok()) return cg.status();
      ConstNodeView cv(cg->data(), config_.pool->page_size(),
                       /*is_root=*/false);
      if (cv.npairs() > config_.limits.root_capacity) return Status::OK();
      entries = GatherEntries(cv);
      child_height = cv.height();
    }
    {
      auto g = config_.pool->FixPage(meta_area_id(), root, FixMode::kRead);
      if (!g.ok()) return g.status();
      NodeView v(g->mutable_data(), config_.pool->page_size(),
                 /*is_root=*/true);
      v.set_height(child_height);
      WriteEntries(&v, entries, 0, entries.size());
      g->MarkDirty();
    }
    LOB_RETURN_IF_ERROR(FreeIndexPage(child));
    (void)ctx;
  }
}

StatusOr<LeafEntry> PositionalTree::RemoveLeaf(PageId root,
                                               uint64_t leaf_start,
                                               OpContext* ctx) {
  WriterMutexLock lock(&latch_);
  LOB_TRACE_SPAN(config_.pool->disk(), "tree.remove");
  auto removed = RemoveRec(root, /*is_root=*/true, leaf_start, ctx);
  if (!removed.ok()) return removed;
  LOB_RETURN_IF_ERROR(MaybeCollapseRoot(root, ctx));
  return removed;
}

Status PositionalTree::UpdateRec(PageId page, bool is_root, uint64_t rel,
                                 int64_t delta, PageId new_page,
                                 OpContext* ctx) {
  uint16_t height;
  uint32_t idx;
  uint64_t child_rel = 0;
  PageId child = kInvalidPage;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    if (!v.IsValid()) return Status::Corruption("bad node magic");
    height = v.height();
    if (v.npairs() == 0 || rel >= v.TotalBytes()) {
      return Status::OutOfRange("update beyond object size");
    }
    idx = v.FindChild(static_cast<uint32_t>(rel));
    if (height == 1) {
      const int64_t new_bytes =
          static_cast<int64_t>(v.SubtreeBytes(idx)) + delta;
      if (new_bytes <= 0) {
        return Status::Internal("leaf update would empty the leaf");
      }
      NodeView mv(g->mutable_data(), config_.pool->page_size(), is_root);
      mv.AddBytes(idx, delta);
      if (new_page != kInvalidPage) mv.SetPage(idx, new_page);
      g->MarkDirty();
      return Status::OK();
    }
    const uint32_t prefix = idx == 0 ? 0 : v.Count(idx - 1);
    child_rel = rel - prefix;
    child = v.Page(idx);
  }
  auto prepared = PrepareModify(child, ctx);
  if (!prepared.ok()) return prepared.status();
  LOB_RETURN_IF_ERROR(
      UpdateRec(*prepared, /*is_root=*/false, child_rel, delta, new_page, ctx));
  auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
  if (!g.ok()) return g.status();
  NodeView v(g->mutable_data(), config_.pool->page_size(), is_root);
  if (*prepared != child) v.SetPage(idx, *prepared);
  v.AddBytes(idx, delta);
  g->MarkDirty();
  return Status::OK();
}

Status PositionalTree::UpdateLeaf(PageId root, uint64_t offset, int64_t delta,
                                  PageId new_page, OpContext* ctx) {
  WriterMutexLock lock(&latch_);
  LOB_TRACE_SPAN(config_.pool->disk(), "tree.update");
  return UpdateRec(root, /*is_root=*/true, offset, delta, new_page, ctx);
}

Status PositionalTree::VisitRec(
    PageId page, bool is_root, uint64_t base,
    const std::function<Status(const LeafInfo&)>& fn) {
  std::vector<LeafEntry> entries;
  uint16_t height;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    if (!v.IsValid()) return Status::Corruption("bad node magic");
    height = v.height();
    entries = GatherEntries(v);
  }
  uint64_t at = base;
  for (const LeafEntry& e : entries) {
    if (height == 1) {
      LOB_RETURN_IF_ERROR(fn(LeafInfo{at, e.bytes, e.page}));
    } else {
      LOB_RETURN_IF_ERROR(VisitRec(e.page, /*is_root=*/false, at, fn));
    }
    at += e.bytes;
  }
  return Status::OK();
}

Status PositionalTree::VisitLeaves(
    PageId root, const std::function<Status(const LeafInfo&)>& fn) {
  ReaderMutexLock lock(&latch_);
  return VisitRec(root, /*is_root=*/true, 0, fn);
}

Status PositionalTree::VisitIndexPages(
    PageId root, const std::function<Status(PageId)>& fn) {
  ReaderMutexLock lock(&latch_);
  struct Walker {
    PositionalTree* tree;
    const std::function<Status(PageId)>& fn;
    Status Visit(PageId page, bool is_root) {
      LOB_RETURN_IF_ERROR(fn(page));
      std::vector<PageId> children;
      {
        auto g = tree->config_.pool->FixPage(tree->meta_area_id(), page,
                                             FixMode::kRead);
        if (!g.ok()) return g.status();
        ConstNodeView v(g->data(), tree->config_.pool->page_size(), is_root);
        if (!v.IsValid()) return Status::Corruption("bad node magic");
        if (v.height() > 1) {
          for (uint32_t i = 0; i < v.npairs(); ++i) {
            children.push_back(v.Page(i));
          }
        }
      }
      for (PageId c : children) LOB_RETURN_IF_ERROR(Visit(c, false));
      return Status::OK();
    }
  };
  Walker w{this, fn};
  return w.Visit(root, /*is_root=*/true);
}

StatusOr<uint32_t> PositionalTree::GetAux(PageId root) {
  ReaderMutexLock lock(&latch_);
  auto g = config_.pool->FixPage(meta_area_id(), root, FixMode::kRead);
  if (!g.ok()) return g.status();
  ConstNodeView v(g->data(), config_.pool->page_size(), /*is_root=*/true);
  return v.aux();
}

Status PositionalTree::SetAux(PageId root, uint32_t value) {
  WriterMutexLock lock(&latch_);
  auto g = config_.pool->FixPage(meta_area_id(), root, FixMode::kRead);
  if (!g.ok()) return g.status();
  NodeView v(g->mutable_data(), config_.pool->page_size(), /*is_root=*/true);
  v.set_aux(value);
  g->MarkDirty();
  return Status::OK();
}

StatusOr<uint8_t> PositionalTree::GetEngine(PageId root) {
  ReaderMutexLock lock(&latch_);
  auto g = config_.pool->FixPage(meta_area_id(), root, FixMode::kRead);
  if (!g.ok()) return g.status();
  ConstNodeView v(g->data(), config_.pool->page_size(), /*is_root=*/true);
  if (!v.IsValid()) return Status::Corruption("bad root magic");
  return v.engine();
}

Status PositionalTree::ValidateRec(PageId page, bool is_root,
                                   uint16_t expect_height,
                                   TreeStatsInfo* stats) {
  std::vector<LeafEntry> entries;
  uint16_t height;
  {
    auto g = config_.pool->FixPage(meta_area_id(), page, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), is_root);
    if (!v.IsValid()) return Status::Corruption("bad node magic");
    height = v.height();
    if (height != expect_height) {
      return Status::Corruption("inconsistent node height");
    }
    if (!is_root && v.npairs() < config_.limits.MinFill()) {
      return Status::Corruption("internal node below minimum fill");
    }
    if (!is_root && v.npairs() > config_.limits.internal_capacity) {
      return Status::Corruption("internal node above capacity");
    }
    if (is_root && v.npairs() > config_.limits.root_capacity) {
      return Status::Corruption("root above capacity");
    }
    uint32_t prev = 0;
    for (uint32_t i = 0; i < v.npairs(); ++i) {
      if (v.Count(i) <= prev) {
        return Status::Corruption("cumulative counts not increasing");
      }
      prev = v.Count(i);
    }
    entries = GatherEntries(v);
  }
  stats->index_pages += 1;
  if (height == 1) {
    stats->leaves += static_cast<uint32_t>(entries.size());
    for (const LeafEntry& e : entries) stats->bytes += e.bytes;
    return Status::OK();
  }
  for (const LeafEntry& e : entries) {
    TreeStatsInfo child_stats;
    child_stats.index_pages = 0;
    LOB_RETURN_IF_ERROR(ValidateRec(e.page, /*is_root=*/false,
                                    static_cast<uint16_t>(height - 1),
                                    &child_stats));
    if (child_stats.bytes != e.bytes) {
      return Status::Corruption("pair count does not match subtree bytes");
    }
    stats->index_pages += child_stats.index_pages;
    stats->leaves += child_stats.leaves;
    stats->bytes += child_stats.bytes;
  }
  return Status::OK();
}

StatusOr<PositionalTree::TreeStatsInfo> PositionalTree::Validate(PageId root) {
  ReaderMutexLock lock(&latch_);
  TreeStatsInfo stats;
  stats.index_pages = 0;
  {
    auto g = config_.pool->FixPage(meta_area_id(), root, FixMode::kRead);
    if (!g.ok()) return g.status();
    ConstNodeView v(g->data(), config_.pool->page_size(), /*is_root=*/true);
    if (!v.IsValid()) return Status::Corruption("bad root magic");
    stats.height = v.height();
  }
  LOB_RETURN_IF_ERROR(ValidateRec(root, /*is_root=*/true, stats.height,
                                  &stats));
  return stats;
}

}  // namespace lob
