// PositionalTree: the count/pointer index shared by ESM and EOS (paper 2.1,
// 2.3).
//
// A B-tree-like structure over byte positions: internal nodes hold
// cumulative (count, page) pairs; the children of height-1 nodes are leaf
// segments owned by the storage manager using the tree. The tree neither
// allocates nor reads leaf segments - it only maintains the index - which is
// exactly the code sharing the paper describes ("the code that manipulates
// the tree nodes, other than the leaves, is shared between the two
// implementations"; 3.4).
//
// All index mutations honour the recovery discipline of paper 3.3: a
// non-root node is shadowed (relocated to a freshly allocated page) at most
// once per operation, the shadow copies are scheduled for write-back at the
// end of the operation via the OpContext, and the root is updated in place
// and only reaches disk when evicted or explicitly flushed.
//
// Non-root nodes are kept at least half full (borrow/merge on underflow),
// as required for ESM's structure; EOS reuses the identical node code.
//
// Concurrency: a reader-writer latch at LockRank::kLobTree serializes
// logical index operations — structural mutations (create/destroy,
// insert/remove/update, SetAux) take the writer side, descents and walks
// (Size, FindLeaf, visitors, Validate) the reader side. The latch ranks
// below the buddy (26) and pool (30) latches because an index op latches
// its tree first, then allocates index pages and fixes node pages.

#ifndef LOB_LOBTREE_POSITIONAL_TREE_H_
#define LOB_LOBTREE_POSITIONAL_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "buddy/database_area.h"
#include "buffer/buffer_pool.h"
#include "buffer/op_context.h"
#include "common/lock_order.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "lobtree/node_layout.h"

namespace lob {

/// Wiring for a PositionalTree.
struct TreeConfig {
  BufferPool* pool = nullptr;
  DatabaseArea* meta_area = nullptr;  ///< supplies root and index pages
  TreeLimits limits;
  bool shadowing = true;
};

/// Positional (count, pointer) tree. Objects are identified by the page
/// number of their root, which lives alone in its own page.
class PositionalTree {
 public:
  explicit PositionalTree(const TreeConfig& config);

  /// A leaf as seen from the index: the object-relative offset of its first
  /// byte, the bytes stored in it, and the page where the segment starts.
  struct LeafInfo {
    uint64_t start = 0;
    uint32_t bytes = 0;
    PageId page = kInvalidPage;
  };

  /// Collected by GetStats / Validate.
  struct TreeStatsInfo {
    uint16_t height = 1;
    uint32_t index_pages = 1;  ///< root + internal nodes
    uint32_t leaves = 0;
    uint64_t bytes = 0;
  };

  /// Allocates and formats a root page; `engine` tags the owning manager.
  [[nodiscard]] StatusOr<PageId> CreateObject(uint8_t engine);

  /// Frees all index pages (the caller must have freed / visited the leaf
  /// segments first, e.g. with VisitLeaves).
  [[nodiscard]] Status DestroyObject(PageId root);

  /// Total bytes indexed by the tree.
  [[nodiscard]] StatusOr<uint64_t> Size(PageId root);

  /// Leaf containing byte `offset` (0 <= offset < Size).
  [[nodiscard]] StatusOr<LeafInfo> FindLeaf(PageId root, uint64_t offset);

  /// Rightmost leaf; NotFound on an empty object.
  [[nodiscard]] StatusOr<LeafInfo> LastLeaf(PageId root);

  /// Inserts a new leaf whose first byte will sit at object offset `at`
  /// (which must be an existing leaf boundary or the object size).
  [[nodiscard]]
  Status InsertLeaf(PageId root, uint64_t at, const LeafEntry& entry,
                    OpContext* ctx);

  /// Removes the leaf starting at `leaf_start` and returns its entry.
  [[nodiscard]] StatusOr<LeafEntry> RemoveLeaf(PageId root, uint64_t leaf_start,
                                 OpContext* ctx);

  /// Updates the leaf containing `offset`: adds `delta` to its byte count
  /// and, when `new_page` != kInvalidPage, repoints it (leaf shadowed or
  /// rebuilt elsewhere).
  [[nodiscard]] Status UpdateLeaf(PageId root, uint64_t offset, int64_t delta,
                    PageId new_page, OpContext* ctx);

  /// Calls `fn` for every leaf, left to right.
  [[nodiscard]] Status VisitLeaves(PageId root,
                     const std::function<Status(const LeafInfo&)>& fn);

  /// Calls `fn` for every index page the tree owns (the root and every
  /// internal node), parents before children. Used by the consistency
  /// checker (src/check) to claim the tree's meta-area extents.
  [[nodiscard]] Status VisitIndexPages(PageId root,
                         const std::function<Status(PageId)>& fn);

  /// Root auxiliary word (EOS: allocated pages of the last segment).
  [[nodiscard]] StatusOr<uint32_t> GetAux(PageId root);
  [[nodiscard]] Status SetAux(PageId root, uint32_t value);

  [[nodiscard]] StatusOr<uint8_t> GetEngine(PageId root);

  /// Walks the whole tree checking structural invariants (magic numbers,
  /// cumulative counts, heights, minimum fill). Also returns stats.
  [[nodiscard]] StatusOr<TreeStatsInfo> Validate(PageId root);

  const TreeLimits& limits() const { return config_.limits; }
  AreaId meta_area_id() const { return config_.meta_area->id(); }

 private:
  struct SplitResult {
    bool split = false;
    uint32_t right_bytes = 0;
    PageId right_page = kInvalidPage;
  };

  uint32_t CapacityOf(bool is_root) const {
    return is_root ? config_.limits.root_capacity
                   : config_.limits.internal_capacity;
  }

  /// Bodies of Size/FindLeaf for callers already holding the latch
  /// (LastLeaf composes both; InsertLeaf validates against the size).
  [[nodiscard]]
  StatusOr<uint64_t> SizeLocked(PageId root) LOB_REQUIRES_SHARED(latch_);
  [[nodiscard]]
  StatusOr<LeafInfo> FindLeafLocked(PageId root, uint64_t offset)
      LOB_REQUIRES_SHARED(latch_);

  /// Shadows `page` (non-root, once per op) and schedules it for end-of-op
  /// flush; returns the page to modify (== `page` unless relocated).
  [[nodiscard]] StatusOr<PageId> PrepareModify(PageId page, OpContext* ctx);

  /// Frees an index page, dropping any cached copy first.
  [[nodiscard]] Status FreeIndexPage(PageId page);

  /// Allocates and formats a fresh internal node.
  [[nodiscard]]
  StatusOr<PageId> NewInternalNode(uint16_t height, OpContext* ctx);

  /// Inserts (bytes, child) before position idx of the node at `page`,
  /// splitting the node (or growing the root) when full.
  [[nodiscard]]
  StatusOr<SplitResult> InsertPairInNode(PageId page, bool is_root,
                                         uint32_t idx, uint32_t bytes,
                                         PageId child, OpContext* ctx);

  [[nodiscard]]
  StatusOr<SplitResult> InsertRec(PageId page, bool is_root, uint64_t rel,
                                  const LeafEntry& entry, OpContext* ctx);

  [[nodiscard]]
  StatusOr<LeafEntry> RemoveRec(PageId page, bool is_root, uint64_t rel,
                                OpContext* ctx);

  /// Rebalances child `idx` of the node at `page` after it fell below the
  /// minimum fill: borrow from or merge with an adjacent sibling.
  [[nodiscard]] Status RebalanceChild(PageId page, bool is_root, uint32_t idx,
                        OpContext* ctx);

  [[nodiscard]]
  Status UpdateRec(PageId page, bool is_root, uint64_t rel, int64_t delta,
                   PageId new_page, OpContext* ctx);

  /// Collapses a 1-pair tall root into its child where possible.
  [[nodiscard]] Status MaybeCollapseRoot(PageId root, OpContext* ctx);

  [[nodiscard]]
  Status ValidateRec(PageId page, bool is_root, uint16_t expect_height,
                     TreeStatsInfo* stats);

  [[nodiscard]] Status VisitRec(PageId page, bool is_root, uint64_t base,
                  const std::function<Status(const LeafInfo&)>& fn);

  /// Tree latch (LockRank::kLobTree), reader-writer; `mutable` would be
  /// unnecessary — every entry point is non-const. Serializes logical
  /// index ops; node pages themselves are protected by the pool latch
  /// the fixes take underneath.
  SharedMutex latch_{LockRank::kLobTree};
  TreeConfig config_;  // LOBLINT(lock-rank): construction-immutable
};

}  // namespace lob

#endif  // LOB_LOBTREE_POSITIONAL_TREE_H_
