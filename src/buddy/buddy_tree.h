// BuddyTree: binary buddy allocation state for one buddy space (paper 3.1).
//
// A buddy space is a fixed-length sequence of 2^order physically adjacent
// blocks whose allocation state is summarized in a 1-block directory. The
// tree tracks, for every aligned power-of-two region, the size of the
// largest free *aligned* power-of-two chunk inside it, so allocation is a
// single root-to-leaf descent.
//
// Two properties the paper calls out are supported directly:
//  * a client may request a segment of ANY size; the request is satisfied
//    from a rounded-up power-of-two chunk and the unused tail blocks are
//    immediately trimmed (freed), "down to the precision of one block";
//  * a client may selectively free any portion of a previously allocated
//    segment, not necessarily the whole segment.

#ifndef LOB_BUDDY_BUDDY_TREE_H_
#define LOB_BUDDY_BUDDY_TREE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"

namespace lob {

/// Allocation state of one buddy space. Purely in-memory; serializes to a
/// free-block bitmap that fits in the space's directory block.
class BuddyTree {
 public:
  /// Creates a fully free space of 2^order blocks.
  explicit BuddyTree(uint32_t order);

  /// Allocates `n_blocks` (any size in [1, 2^order]). Internally a
  /// power-of-two chunk is carved and its tail trimmed. On success returns
  /// the starting block. Fails with NoSpace when no aligned chunk of
  /// RoundUpPowerOfTwo(n_blocks) blocks is free.
  [[nodiscard]] StatusOr<uint32_t> Allocate(uint32_t n_blocks);

  /// Frees `n_blocks` starting at `start`. The range may be any sub-range
  /// of previously allocated blocks. Freeing a free block is Corruption.
  [[nodiscard]] Status Free(uint32_t start, uint32_t n_blocks);

  /// Size in blocks of the largest free aligned chunk (0 when full).
  uint32_t LargestFree() const { return longest_[1]; }

  uint32_t free_blocks() const { return free_blocks_; }
  uint32_t total_blocks() const { return n_blocks_; }
  uint32_t order() const { return order_; }

  /// True iff block `b` is free.
  bool IsFree(uint32_t b) const;

  /// Accumulates the space's maximal free aligned chunks into `acc`
  /// (chunk size in blocks -> count): a node whose region is entirely
  /// free counts once at its size and is not descended into, so the sum
  /// of size*count over `acc` equals free_blocks().
  void AccumulateFreeChunks(std::map<uint32_t, uint64_t>* acc) const;

  /// Writes the free-block bitmap (1 bit per block, LSB-first within each
  /// byte, 1 = free) into `out`, which must hold BitmapBytes() bytes.
  /// The bitmap is maintained incrementally alongside the leaves, so this
  /// is a straight copy — cheap enough to call on every allocate/free.
  void SerializeBitmap(char* out) const;

  /// Rebuilds allocation state from a bitmap produced by SerializeBitmap.
  static BuddyTree FromBitmap(uint32_t order, const char* bitmap);

  /// Bytes needed by the bitmap for a space of this order.
  size_t BitmapBytes() const { return (size_t{n_blocks_} + 7) / 8; }

  /// Recomputes the summary tree from the leaves and verifies it matches;
  /// used by tests.
  bool CheckInvariants() const;

 private:
  void SetRange(uint32_t lo, uint32_t hi, bool free);
  void RebuildAll();

  uint32_t order_;
  uint32_t n_blocks_;
  uint32_t free_blocks_;
  // Heap-shaped array; longest_[i] = largest free aligned chunk (in blocks)
  // within the region covered by node i. Node 1 is the root; leaves are
  // nodes [n_blocks_, 2 * n_blocks_).
  std::vector<uint32_t> longest_;
  // Free-block bitmap mirroring the leaves (1 = free, LSB-first within
  // each byte; unused high bits of the last byte stay zero). Updated bit
  // by bit in SetRange so SerializeBitmap is a memcpy rather than an
  // O(n_blocks) rebuild on every allocate/free.
  std::vector<char> bitmap_;
};

}  // namespace lob

#endif  // LOB_BUDDY_BUDDY_TREE_H_
