#include "buddy/database_area.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/math_util.h"
#include "trace/trace_span.h"

namespace lob {

DatabaseArea::DatabaseArea(BufferPool* pool, AreaId area,
                           const StorageConfig& config)
    : pool_(pool),
      area_(area),
      config_(config),
      blocks_per_space_(1u << config.buddy_space_order) {
  // The allocation bitmap of a full space must fit in the 1-block directory.
  LOB_CHECK_LE(blocks_per_space_ / 8, config_.page_size);
}

void DatabaseArea::AddSpace() {
  LOB_TRACE_SPAN(pool_->disk(), "buddy.add_space");
  const uint32_t space = static_cast<uint32_t>(spaces_.size());
  spaces_.push_back(std::make_unique<BuddyTree>(config_.buddy_space_order));
  hints_.push_back(blocks_per_space_);
  needs_sync_.push_back(false);
  // Initialize the on-disk directory (an all-free bitmap). A failure here
  // (e.g. an injected fault on the eviction write that frees a frame) is
  // absorbed: an all-free bitmap is all zeros, which is what an unwritten
  // page reads back as, and the space is re-synced on its next use.
  auto guard = pool_->FixPage(area_, DirectoryPage(space), FixMode::kNew);
  if (!guard.ok()) {
    LOB_LOG_WARN("buddy directory init deferred (space %u): %s", space,
                 guard.status().ToString().c_str());
    needs_sync_[space] = true;
    return;
  }
  spaces_[space]->SerializeBitmap(guard->mutable_data());
  guard->MarkDirty();
}

StatusOr<Segment> DatabaseArea::Allocate(uint32_t n_pages) {
  WriterMutexLock lock(&mu_);
  LOB_TRACE_SPAN(pool_->disk(), "buddy.alloc");
  if (n_pages == 0) return Status::InvalidArgument("zero-page segment");
  if (n_pages > blocks_per_space_) {
    return Status::NoSpace("segment exceeds buddy space capacity");
  }
  const uint32_t chunk = static_cast<uint32_t>(RoundUpPowerOfTwo(n_pages));
  for (uint32_t s = 0; s < spaces_.size(); ++s) {
    // Superdirectory check: skip spaces that cannot satisfy the request
    // without touching their directory block.
    if (hints_[s] < chunk) continue;
    // Visit the directory block (through the pool; cost emerges here).
    auto guard = pool_->FixPage(area_, DirectoryPage(s), FixMode::kRead);
    if (!guard.ok()) return guard.status();
    auto start_or = spaces_[s]->Allocate(n_pages);
    hints_[s] = spaces_[s]->LargestFree();
    if (!start_or.ok()) {
      // Wrong superdirectory guess; the hint is now corrected.
      continue;
    }
    spaces_[s]->SerializeBitmap(guard->mutable_data());
    guard->MarkDirty();
    needs_sync_[s] = false;
    return Segment{DataBase(s) + *start_or, n_pages};
  }
  // No existing space can hold the segment: extend the area.
  AddSpace();
  const uint32_t s = static_cast<uint32_t>(spaces_.size() - 1);
  auto guard = pool_->FixPage(area_, DirectoryPage(s), FixMode::kRead);
  if (!guard.ok()) return guard.status();
  auto start_or = spaces_[s]->Allocate(n_pages);
  if (!start_or.ok()) return start_or.status();
  hints_[s] = spaces_[s]->LargestFree();
  spaces_[s]->SerializeBitmap(guard->mutable_data());
  guard->MarkDirty();
  needs_sync_[s] = false;
  return Segment{DataBase(s) + *start_or, n_pages};
}

Status DatabaseArea::Free(PageId first_page, uint32_t n_pages) {
  WriterMutexLock lock(&mu_);
  LOB_TRACE_SPAN(pool_->disk(), "buddy.free");
  if (n_pages == 0) return Status::InvalidArgument("zero-page free");
  const uint32_t stride = blocks_per_space_ + 1;
  const uint32_t space = first_page / stride;
  if (space >= spaces_.size()) {
    return Status::InvalidArgument("free outside any buddy space");
  }
  if (first_page % stride == 0) {
    return Status::InvalidArgument("cannot free a directory block");
  }
  const uint32_t block = first_page - DataBase(space);
  if (block + n_pages > blocks_per_space_) {
    return Status::InvalidArgument("free range crosses buddy spaces");
  }
  // Update the authoritative in-memory tree first; a misuse error (double
  // free) surfaces here, before any I/O can interfere.
  LOB_RETURN_IF_ERROR(spaces_[space]->Free(block, n_pages));
  hints_[space] = spaces_[space]->LargestFree();
  // Best-effort directory rewrite: absorb I/O faults so rollback paths can
  // rely on Free never failing (see header contract). The lagging
  // directory self-heals on the space's next successful bitmap write or
  // via SyncDirectories.
  auto guard = pool_->FixPage(area_, DirectoryPage(space), FixMode::kRead);
  if (!guard.ok()) {
    LOB_LOG_WARN("buddy directory update deferred (space %u): %s", space,
                 guard.status().ToString().c_str());
    needs_sync_[space] = true;
    return Status::OK();
  }
  spaces_[space]->SerializeBitmap(guard->mutable_data());
  guard->MarkDirty();
  needs_sync_[space] = false;
  return Status::OK();
}

Status DatabaseArea::SyncDirectories() {
  WriterMutexLock lock(&mu_);
  Status first;
  for (uint32_t s = 0; s < spaces_.size(); ++s) {
    if (!needs_sync_[s]) continue;
    auto guard = pool_->FixPage(area_, DirectoryPage(s), FixMode::kRead);
    if (!guard.ok()) {
      if (first.ok()) first = guard.status();
      continue;
    }
    spaces_[s]->SerializeBitmap(guard->mutable_data());
    guard->MarkDirty();
    needs_sync_[s] = false;
  }
  return first;
}

bool DatabaseArea::NeedsDirectorySync() const {
  ReaderMutexLock lock(&mu_);
  for (bool b : needs_sync_) {
    if (b) return true;
  }
  return false;
}

Status DatabaseArea::RecoverSpaces(const SimDisk& disk) {
  WriterMutexLock lock(&mu_);
  if (!spaces_.empty()) {
    return Status::Internal("recover requires a fresh area");
  }
  const uint32_t stride = blocks_per_space_ + 1;
  const PageId high = disk.AreaHighWater(area_);
  const uint32_t n_spaces = (high + stride - 1) / stride;
  for (uint32_t s = 0; s < n_spaces; ++s) {
    auto guard = pool_->FixPage(area_, DirectoryPage(s), FixMode::kRead);
    if (!guard.ok()) return guard.status();
    spaces_.push_back(std::make_unique<BuddyTree>(
        BuddyTree::FromBitmap(config_.buddy_space_order, guard->data())));
    hints_.push_back(spaces_.back()->LargestFree());
    needs_sync_.push_back(false);
  }
  return Status::OK();
}

uint64_t DatabaseArea::allocated_pages() const {
  ReaderMutexLock lock(&mu_);
  uint64_t used = 0;
  for (const auto& space : spaces_) {
    used += space->total_blocks() - space->free_blocks();
  }
  return used;
}

bool DatabaseArea::IsAllocated(PageId page) const {
  ReaderMutexLock lock(&mu_);
  const uint32_t stride = blocks_per_space_ + 1;
  const uint32_t space = page / stride;
  if (space >= spaces_.size()) return false;
  if (page % stride == 0) return true;  // directory block
  return !spaces_[space]->IsFree(page - DataBase(space));
}

uint64_t DatabaseArea::free_pages() const {
  ReaderMutexLock lock(&mu_);
  uint64_t free = 0;
  for (const auto& space : spaces_) free += space->free_blocks();
  return free;
}

uint32_t DatabaseArea::LargestFreeExtent() const {
  ReaderMutexLock lock(&mu_);
  uint32_t largest = 0;
  for (const auto& space : spaces_) {
    largest = std::max(largest, space->LargestFree());
  }
  return largest;
}

void DatabaseArea::AccumulateFreeChunks(
    std::map<uint32_t, uint64_t>* acc) const {
  ReaderMutexLock lock(&mu_);
  for (const auto& space : spaces_) space->AccumulateFreeChunks(acc);
}

bool DatabaseArea::CheckInvariants() const {
  ReaderMutexLock lock(&mu_);
  for (const auto& space : spaces_) {
    if (!space->CheckInvariants()) return false;
  }
  return true;
}

}  // namespace lob
