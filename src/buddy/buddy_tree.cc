#include "buddy/buddy_tree.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/math_util.h"

namespace lob {

BuddyTree::BuddyTree(uint32_t order)
    : order_(order),
      n_blocks_(1u << order),
      free_blocks_(1u << order),
      longest_(size_t{2} << order, 0),
      bitmap_((size_t{1u << order} + 7) / 8, 0) {
  LOB_CHECK_GE(order, 1u);
  LOB_CHECK_LE(order, 24u);
  for (uint32_t b = 0; b < n_blocks_; ++b) {
    longest_[n_blocks_ + b] = 1;
    bitmap_[b / 8] = static_cast<char>(bitmap_[b / 8] | (1 << (b % 8)));
  }
  RebuildAll();
}

void BuddyTree::RebuildAll() {
  // Recompute every internal level bottom-up from the leaves.
  uint32_t node_size = 2;
  for (uint32_t i = n_blocks_ / 2;; i /= 2) {
    for (uint32_t j = i; j < 2 * i; ++j) {
      const uint32_t l = longest_[2 * j];
      const uint32_t r = longest_[2 * j + 1];
      longest_[j] = (l == node_size / 2 && r == node_size / 2)
                        ? node_size
                        : std::max(l, r);
    }
    node_size *= 2;
    if (i == 1) break;
  }
}

StatusOr<uint32_t> BuddyTree::Allocate(uint32_t n_blocks) {
  if (n_blocks == 0) return Status::InvalidArgument("zero-block segment");
  if (n_blocks > n_blocks_) {
    return Status::NoSpace("segment larger than buddy space");
  }
  const uint32_t chunk = static_cast<uint32_t>(RoundUpPowerOfTwo(n_blocks));
  if (longest_[1] < chunk) return Status::NoSpace("no free chunk");
  // Root-to-leaf descent; best fit (smaller sufficient child first) keeps
  // large chunks intact.
  uint32_t node = 1;
  uint32_t node_size = n_blocks_;
  while (node_size > chunk) {
    const uint32_t l = longest_[2 * node];
    const uint32_t r = longest_[2 * node + 1];
    const bool l_ok = l >= chunk;
    const bool r_ok = r >= chunk;
    LOB_CHECK(l_ok || r_ok);
    if (l_ok && (!r_ok || l <= r)) {
      node = 2 * node;
    } else {
      node = 2 * node + 1;
    }
    node_size /= 2;
  }
  LOB_CHECK_EQ(longest_[node], chunk);
  // Starting block covered by `node`: strip the leading 1 bit of the node
  // index and scale by the node size.
  const uint32_t level_index = node - (n_blocks_ / node_size);
  const uint32_t start = level_index * node_size;
  // Claim only the blocks requested; the tail of the chunk stays free
  // (trimming).
  SetRange(start, start + n_blocks, /*free=*/false);
  return start;
}

Status BuddyTree::Free(uint32_t start, uint32_t n_blocks) {
  if (n_blocks == 0) return Status::InvalidArgument("zero-block free");
  if (start >= n_blocks_ || n_blocks > n_blocks_ - start) {
    return Status::InvalidArgument("free range outside buddy space");
  }
  for (uint32_t b = start; b < start + n_blocks; ++b) {
    if (longest_[n_blocks_ + b] != 0) {
      return Status::Corruption("double free of block");
    }
  }
  SetRange(start, start + n_blocks, /*free=*/true);
  return Status::OK();
}

void BuddyTree::SetRange(uint32_t lo, uint32_t hi, bool free) {
  LOB_CHECK_LT(lo, hi);
  for (uint32_t b = lo; b < hi; ++b) {
    uint32_t& leaf = longest_[n_blocks_ + b];
    LOB_CHECK(free ? leaf == 0 : leaf == 1);
    leaf = free ? 1 : 0;
    if (free) {
      bitmap_[b / 8] = static_cast<char>(bitmap_[b / 8] | (1 << (b % 8)));
    } else {
      bitmap_[b / 8] = static_cast<char>(bitmap_[b / 8] & ~(1 << (b % 8)));
    }
  }
  free_blocks_ += free ? (hi - lo) : 0;
  free_blocks_ -= free ? 0 : (hi - lo);
  // Update ancestors of the touched leaves, level by level.
  uint32_t lo_i = (n_blocks_ + lo) / 2;
  uint32_t hi_i = (n_blocks_ + hi - 1) / 2;
  uint32_t node_size = 2;
  while (lo_i >= 1) {
    for (uint32_t j = lo_i; j <= hi_i; ++j) {
      const uint32_t l = longest_[2 * j];
      const uint32_t r = longest_[2 * j + 1];
      longest_[j] = (l == node_size / 2 && r == node_size / 2)
                        ? node_size
                        : std::max(l, r);
    }
    if (lo_i == 1) break;
    lo_i /= 2;
    hi_i /= 2;
    node_size *= 2;
  }
}

bool BuddyTree::IsFree(uint32_t b) const {
  LOB_CHECK_LT(b, n_blocks_);
  return longest_[n_blocks_ + b] == 1;
}

void BuddyTree::AccumulateFreeChunks(
    std::map<uint32_t, uint64_t>* acc) const {
  if (n_blocks_ == 1) {
    if (longest_[1] == 1) (*acc)[1]++;
    return;
  }
  // Iterative preorder walk over the heap array: a node whose region is
  // entirely free (longest_ == region size) is one maximal chunk; a leaf
  // with longest_ == 0 is allocated; anything else splits.
  std::vector<std::pair<uint32_t, uint32_t>> work;  // (node, node_size)
  work.emplace_back(1u, n_blocks_);
  while (!work.empty()) {
    const auto [node, node_size] = work.back();
    work.pop_back();
    const uint32_t longest = longest_[node];
    if (longest == node_size) {
      (*acc)[node_size]++;
      continue;
    }
    if (node_size == 1 || longest == 0) continue;  // allocated throughout
    work.emplace_back(2 * node, node_size / 2);
    work.emplace_back(2 * node + 1, node_size / 2);
  }
}

void BuddyTree::SerializeBitmap(char* out) const {
  std::memcpy(out, bitmap_.data(), BitmapBytes());
}

BuddyTree BuddyTree::FromBitmap(uint32_t order, const char* bitmap) {
  BuddyTree tree(order);
  uint32_t free_count = 0;
  for (uint32_t b = 0; b < tree.n_blocks_; ++b) {
    const bool free = (bitmap[b / 8] >> (b % 8)) & 1;
    tree.longest_[tree.n_blocks_ + b] = free ? 1 : 0;
    free_count += free ? 1 : 0;
    if (free) {
      tree.bitmap_[b / 8] =
          static_cast<char>(tree.bitmap_[b / 8] | (1 << (b % 8)));
    } else {
      tree.bitmap_[b / 8] =
          static_cast<char>(tree.bitmap_[b / 8] & ~(1 << (b % 8)));
    }
  }
  tree.free_blocks_ = free_count;
  tree.RebuildAll();
  return tree;
}

bool BuddyTree::CheckInvariants() const {
  uint32_t free_count = 0;
  std::vector<uint32_t> expect(longest_.size(), 0);
  for (uint32_t b = 0; b < n_blocks_; ++b) {
    expect[n_blocks_ + b] = longest_[n_blocks_ + b];
    if (expect[n_blocks_ + b] > 1) return false;
    free_count += expect[n_blocks_ + b];
    const bool bit = (bitmap_[b / 8] >> (b % 8)) & 1;
    if (bit != (longest_[n_blocks_ + b] == 1)) return false;
  }
  if (free_count != free_blocks_) return false;
  for (uint32_t b = n_blocks_; b < bitmap_.size() * 8; ++b) {
    if ((bitmap_[b / 8] >> (b % 8)) & 1) return false;  // stray high bit
  }
  uint32_t node_size = 2;
  for (uint32_t i = n_blocks_ / 2;; i /= 2) {
    for (uint32_t j = i; j < 2 * i; ++j) {
      const uint32_t l = expect[2 * j];
      const uint32_t r = expect[2 * j + 1];
      expect[j] = (l == node_size / 2 && r == node_size / 2)
                      ? node_size
                      : std::max(l, r);
      if (expect[j] != longest_[j]) return false;
    }
    node_size *= 2;
    if (i == 1) break;
  }
  return true;
}

}  // namespace lob
