// DatabaseArea: a disk area whose space is managed by the buddy system
// (paper 3.1).
//
// An area consists of a number of buddy spaces. Each space is a fixed-length
// sequence of physically adjacent blocks preceded by a 1-block directory
// holding the space's allocation bitmap. A main-memory *superdirectory*
// records (an upper bound on) the largest free segment in each space so
// that allocation requests skip spaces that cannot possibly satisfy them;
// in steady state an allocation or deallocation touches at most one
// directory block, regardless of the database size.
//
// Directory blocks are accessed through the buffer pool, so their I/O cost
// emerges naturally: a hot directory costs nothing, a cold one costs one
// page read, and modified directories are written back on eviction or
// flush.
//
// Concurrency: a reader-writer latch at LockRank::kBuddyDirectory covers
// the buddy trees, the superdirectory hints and the dirty-directory flags.
// Mutators (Allocate, Free, SyncDirectories, RecoverSpaces) take the
// writer side and hold it across their directory-block pool I/O — the
// latch ranks below the pool latch (26 < 30) precisely so that is legal.
// Readers (the stats/fsck surface) take the shared side. No DatabaseArea
// method ever calls into another DatabaseArea, so equal-rank nesting
// cannot occur.

#ifndef LOB_BUDDY_DATABASE_AREA_H_
#define LOB_BUDDY_DATABASE_AREA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "buddy/buddy_tree.h"
#include "buffer/buffer_pool.h"
#include "common/config.h"
#include "common/lock_order.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "iomodel/sim_disk.h"

namespace lob {

/// A run of physically adjacent pages returned by the allocator.
struct Segment {
  PageId first_page = kInvalidPage;  ///< area-relative page number
  uint32_t pages = 0;
};

/// Buddy-managed database area. Grows by appending buddy spaces on demand.
class DatabaseArea {
 public:
  /// `area` must be an id obtained from disk->CreateArea(). The pool is
  /// used for directory-block I/O.
  DatabaseArea(BufferPool* pool, AreaId area, const StorageConfig& config);

  DatabaseArea(const DatabaseArea&) = delete;
  DatabaseArea& operator=(const DatabaseArea&) = delete;

  /// Allocates a segment of exactly `n_pages` physically adjacent pages
  /// (internally a power-of-two chunk with the tail trimmed).
  [[nodiscard]] StatusOr<Segment> Allocate(uint32_t n_pages);

  /// Frees any sub-range of previously allocated pages.
  ///
  /// Free is *infallible under I/O faults*: the authoritative in-memory
  /// buddy tree is updated first, and a failure to rewrite the on-disk
  /// directory block is absorbed (the space is marked dirty and re-synced
  /// by the next successful Allocate/Free touching it, or explicitly by
  /// SyncDirectories). This is what lets error-path rollback release
  /// already-acquired extents unconditionally: if Free could fail midway
  /// through a rollback, a torn update would leak the extent forever.
  /// Misuse (double free, range outside any space, freeing a directory
  /// block) still returns an error.
  [[nodiscard]] Status Free(PageId first_page, uint32_t n_pages);

  /// Frees a whole segment.
  [[nodiscard]]
  Status Free(const Segment& seg) { return Free(seg.first_page, seg.pages); }

  /// Rewrites the on-disk directory of every space whose bitmap write was
  /// absorbed by a fault-tolerant Free (or a fault-tolerant AddSpace).
  /// Call before persisting the area (Database::Save does).
  [[nodiscard]] Status SyncDirectories();

  /// True if some space's on-disk directory lags the in-memory tree.
  bool NeedsDirectorySync() const;

  AreaId id() const { return area_; }

  /// Largest segment this area can ever allocate, in pages.
  uint32_t max_segment_pages() const { return 1u << config_.buddy_space_order; }

  /// Data blocks per buddy space (each space additionally owns one
  /// directory block, so spaces repeat with stride blocks_per_space()+1).
  uint32_t blocks_per_space() const { return blocks_per_space_; }

  /// True iff the area-relative page is a space's directory block.
  bool IsDirectoryPage(PageId page) const {
    return page % (blocks_per_space_ + 1) == 0;
  }

  uint32_t num_spaces() const {
    ReaderMutexLock lock(&mu_);
    return static_cast<uint32_t>(spaces_.size());
  }

  /// Pages currently allocated to segments (excludes directory blocks).
  uint64_t allocated_pages() const;

  /// Superdirectory entry for space `i` (largest free chunk, in blocks).
  uint32_t SuperdirectoryHint(uint32_t i) const {
    ReaderMutexLock lock(&mu_);
    return hints_[i];
  }

  /// Free blocks across every space (the area's free-page total).
  uint64_t free_pages() const;

  /// Largest free aligned chunk in any space, in blocks (0 when full).
  uint32_t LargestFreeExtent() const;

  /// Accumulates the area's maximal free aligned chunks into `acc`
  /// (chunk size in blocks -> count). This is the fragmentation histogram
  /// the timeline sampler snapshots: a heavily fragmented area shows many
  /// small chunks where a fresh one shows a single space-sized chunk.
  /// Pure in-memory walk of the buddy trees; no I/O.
  void AccumulateFreeChunks(std::map<uint32_t, uint64_t>* acc) const;

  /// True iff the area-relative page is currently allocated (test helper).
  bool IsAllocated(PageId page) const;

  /// Verifies every space's buddy tree invariants (test helper).
  bool CheckInvariants() const;

  /// Rebuilds allocator state from the directory blocks already present on
  /// the underlying disk (used when reopening a saved database image).
  /// Must be called on a freshly constructed area.
  [[nodiscard]] Status RecoverSpaces(const SimDisk& disk);

 private:
  PageId DirectoryPage(uint32_t space) const {
    return space * (blocks_per_space_ + 1);
  }
  PageId DataBase(uint32_t space) const { return DirectoryPage(space) + 1; }

  /// Creates space `spaces_.size()` with a fresh all-free directory.
  /// Infallible under I/O faults: a failed directory write is absorbed
  /// like in Free (an all-free bitmap is all zeros, which is exactly what
  /// an unwritten page reads back as, so recovery stays consistent).
  void AddSpace() LOB_REQUIRES(mu_);

  // LOBLINT(lock-rank): set at construction, never mutated — immutable
  // identity/config, readable without the latch.
  BufferPool* pool_;
  AreaId area_;         // LOBLINT(lock-rank): construction-immutable
  StorageConfig config_;  // LOBLINT(lock-rank): construction-immutable
  uint32_t blocks_per_space_;  // LOBLINT(lock-rank): construction-immutable
  /// Directory latch (LockRank::kBuddyDirectory): guards allocator
  /// bookkeeping; held across directory-block pool I/O (26 < 30).
  mutable SharedMutex mu_{LockRank::kBuddyDirectory};
  std::vector<std::unique_ptr<BuddyTree>> spaces_ LOB_GUARDED_BY(mu_);
  std::vector<uint32_t> hints_
      LOB_GUARDED_BY(mu_);  ///< superdirectory (main-memory only)
  std::vector<bool> needs_sync_
      LOB_GUARDED_BY(mu_);  ///< spaces with a lagging disk directory
};

}  // namespace lob

#endif  // LOB_BUDDY_DATABASE_AREA_H_
