// ScopedExtent: RAII ownership of a freshly allocated buddy segment.
//
// The campaign engine (src/exec/campaign.h) showed that every *leak* cell
// in the fault matrix came from the same shape of bug: an operation
// allocates one or more segments, a later I/O fails, and the error path
// returns without releasing what it already acquired. ScopedExtent makes
// that shape unrepresentable: the segment is freed (and its cached pages
// dropped) when the guard dies, unless the owning operation reached its
// durable commit point and called Commit().
//
// The rollback in the destructor cannot itself fail under I/O faults:
// DatabaseArea::Free absorbs directory-write failures (see
// database_area.h), and a failed Invalidate (a page still pinned —
// strictly a caller bug) is logged and skipped rather than leaking the
// extent.
//
// tools/lob_lint.py rule LOB007 flags raw DatabaseArea::Allocate calls in
// the manager/tree/core layers that bypass this guard.

#ifndef LOB_BUDDY_SCOPED_EXTENT_H_
#define LOB_BUDDY_SCOPED_EXTENT_H_

#include <utility>

#include "buddy/database_area.h"
#include "buffer/buffer_pool.h"
#include "common/logging.h"
#include "common/status.h"

namespace lob {

/// Move-only owner of an uncommitted segment. Destruction rolls the
/// allocation back; Commit() transfers ownership to the durable structure
/// that now references the pages.
class ScopedExtent {
 public:
  ScopedExtent() = default;

  /// Allocates `n_pages` from `area` under guard. `pool` is used to drop
  /// cached copies of the pages if the guard rolls back.
  [[nodiscard]]
  static StatusOr<ScopedExtent> Allocate(DatabaseArea* area, BufferPool* pool,
                                         uint32_t n_pages) {
    auto seg = area->Allocate(n_pages);
    if (!seg.ok()) return seg.status();
    return ScopedExtent(area, pool, *seg);
  }

  ScopedExtent(ScopedExtent&& other) noexcept
      : area_(std::exchange(other.area_, nullptr)),
        pool_(std::exchange(other.pool_, nullptr)),
        seg_(other.seg_) {}

  ScopedExtent& operator=(ScopedExtent&& other) noexcept {
    if (this != &other) {
      Rollback();
      area_ = std::exchange(other.area_, nullptr);
      pool_ = std::exchange(other.pool_, nullptr);
      seg_ = other.seg_;
    }
    return *this;
  }

  ScopedExtent(const ScopedExtent&) = delete;
  ScopedExtent& operator=(const ScopedExtent&) = delete;

  ~ScopedExtent() { Rollback(); }

  /// The operation's durable structures now reference the segment: disarm.
  void Commit() { area_ = nullptr; }

  bool armed() const { return area_ != nullptr; }
  PageId first_page() const { return seg_.first_page; }
  uint32_t pages() const { return seg_.pages; }
  const Segment& segment() const { return seg_; }

 private:
  ScopedExtent(DatabaseArea* area, BufferPool* pool, Segment seg)
      : area_(area), pool_(pool), seg_(seg) {}

  void Rollback() {
    if (area_ == nullptr) return;
    // Drop cached (possibly dirty) copies first so a later reuse of the
    // pages cannot observe stale content or pay for a stale flush.
    Status inv = pool_->Invalidate(area_->id(), seg_.first_page, seg_.pages);
    if (!inv.ok()) {
      LOB_LOG_WARN("extent rollback: invalidate [%u,+%u) failed: %s",
                   seg_.first_page, seg_.pages, inv.ToString().c_str());
    }
    Status freed = area_->Free(seg_);
    if (!freed.ok()) {
      LOB_LOG_WARN("extent rollback: free [%u,+%u) failed: %s",
                   seg_.first_page, seg_.pages, freed.ToString().c_str());
    }
    area_ = nullptr;
  }

  DatabaseArea* area_ = nullptr;
  BufferPool* pool_ = nullptr;
  Segment seg_;
};

}  // namespace lob

#endif  // LOB_BUDDY_SCOPED_EXTENT_H_
