// Clang thread-safety-analysis attribute macros (LOB_GUARDED_BY,
// LOB_REQUIRES, ...). Under Clang with -Wthread-safety these expand to the
// capability attributes so locking contracts are machine-checked at compile
// time; under other compilers they expand to nothing. The annotated
// primitives that carry the capabilities (Mutex, MutexLock, CondVar, lock
// ranks) live in common/lock_order.h — annotate with these macros, lock
// with those types. See CONTRIBUTING.md "Thread-safety & lock ranks".

#ifndef LOB_COMMON_THREAD_ANNOTATIONS_H_
#define LOB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LOB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LOB_THREAD_ANNOTATION
#define LOB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define LOB_CAPABILITY(x) LOB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define LOB_SCOPED_CAPABILITY LOB_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read/written while `x` is held.
#define LOB_GUARDED_BY(x) LOB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while `x` is held.
#define LOB_PT_GUARDED_BY(x) LOB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// leaves them held).
#define LOB_REQUIRES(...) \
  LOB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LOB_REQUIRES_SHARED(...) \
  LOB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (caller must not hold them).
#define LOB_ACQUIRE(...) LOB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LOB_ACQUIRE_SHARED(...) \
  LOB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (caller must hold them).
#define LOB_RELEASE(...) LOB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LOB_RELEASE_SHARED(...) \
  LOB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define LOB_TRY_ACQUIRE(b, ...) \
  LOB_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// self-locking methods).
#define LOB_EXCLUDES(...) LOB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held here.
#define LOB_ASSERT_CAPABILITY(x) \
  LOB_THREAD_ANNOTATION(assert_capability(x))

/// Expression form: read a guarded member without holding the guard.
#define LOB_TS_UNCHECKED(x) x

/// Escape hatch: disables analysis for one function. Every use must carry
/// a comment stating the out-of-band reason the access is safe (quiesced
/// source object, thread-confined caller, export after join, ...).
#define LOB_NO_THREAD_SAFETY_ANALYSIS \
  LOB_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Alias for accessors that intentionally hand out references to guarded
/// state (counters, histogram maps) for single-threaded setup/export
/// phases. Same semantics as LOB_NO_THREAD_SAFETY_ANALYSIS; the distinct
/// name documents *why* the analysis is off.
#define LOB_UNLOCKED_ACCESS LOB_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Return-value annotation: function returns a reference to a member
/// guarded by `x` (caller must hold `x` to dereference).
#define LOB_RETURN_CAPABILITY(x) LOB_THREAD_ANNOTATION(lock_returned(x))

#endif  // LOB_COMMON_THREAD_ANNOTATIONS_H_
