#include "common/status.h"

namespace lob {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lob
