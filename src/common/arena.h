// ScratchArena: bump allocator for per-operation scratch memory.
//
// The hot path allocates small, short-lived buffers constantly: deferred
// flush lists and shadow sets in OpContext, gather/scatter pointer arrays
// and boundary-page staging in BufferPool's run I/O. A bump allocator
// turns each of those into a pointer increment; memory is reclaimed in
// O(1) by rewinding to a mark (stack discipline — operations nest, so the
// RAII ScratchMark matches their lifetimes exactly). Blocks are retained
// across rewinds, so steady state performs no heap allocation at all.
//
// Not thread-safe; each single-threaded component (StorageSystem,
// BufferPool) owns its own arena.

#ifndef LOB_COMMON_ARENA_H_
#define LOB_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"

namespace lob {

/// Bump allocator with mark/rewind reclamation. See the file comment.
class ScratchArena {
 public:
  /// Position in the arena; allocations made after taking a mark are
  /// reclaimed by Rewind(mark).
  struct Mark {
    uint32_t block = 0;
    size_t used = 0;
  };

  explicit ScratchArena(size_t first_block_bytes = 16 * 1024)
      : first_block_bytes_(std::max<size_t>(first_block_bytes, 64)) {}

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns `n` bytes aligned to `align` (a power of two). Never fails
  /// (grows by adding geometrically larger blocks).
  char* Allocate(size_t n, size_t align = alignof(std::max_align_t)) {
    LOB_CHECK_EQ(align & (align - 1), size_t{0});
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      const size_t at = (b.used + align - 1) & ~(align - 1);
      if (at + n <= b.cap) {
        b.used = at + n;
        return b.data.get() + at;
      }
      // Current block exhausted; later blocks (retained by a rewind) may
      // still fit. Their used offsets are 0 by the rewind contract.
      ++cur_;
    }
    const size_t last_cap = blocks_.empty() ? first_block_bytes_ / 2
                                            : blocks_.back().cap;
    Block b;
    b.cap = std::max(n + align, last_cap * 2);
    b.data = std::make_unique<char[]>(b.cap);
    b.used = 0;
    blocks_.push_back(std::move(b));
    cur_ = static_cast<uint32_t>(blocks_.size() - 1);
    return Allocate(n, align);
  }

  /// Typed array helper for trivially copyable element types.
  template <typename T>
  T* AllocArray(size_t n) {
    return reinterpret_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  Mark mark() const {
    if (blocks_.empty()) return Mark{};
    return Mark{cur_, blocks_[cur_].used};
  }

  /// Releases everything allocated since `m` was taken. Blocks are kept
  /// for reuse. Marks must be rewound in LIFO order.
  void Rewind(const Mark& m) {
    if (blocks_.empty()) return;
    LOB_CHECK_LT(m.block, blocks_.size());
    for (size_t i = m.block + 1; i < blocks_.size(); ++i) {
      blocks_[i].used = 0;
    }
    blocks_[m.block].used = m.used;
    cur_ = m.block;
  }

  /// Rewinds to empty, keeping the blocks.
  void Reset() { Rewind(Mark{}); }

  /// Total capacity across blocks (test/metrics helper).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.cap;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t cap = 0;
    size_t used = 0;
  };

  size_t first_block_bytes_;
  std::vector<Block> blocks_;
  uint32_t cur_ = 0;
};

/// RAII mark: rewinds the arena to the construction point on destruction.
class ScratchMark {
 public:
  explicit ScratchMark(ScratchArena* arena)
      : arena_(arena), mark_(arena->mark()) {}
  ~ScratchMark() { arena_->Rewind(mark_); }

  ScratchMark(const ScratchMark&) = delete;
  ScratchMark& operator=(const ScratchMark&) = delete;

 private:
  ScratchArena* arena_;
  ScratchArena::Mark mark_;
};

/// Growable array of a trivially copyable T backed by a ScratchArena.
/// Growth abandons the old storage inside the arena (reclaimed wholesale
/// by the owner's rewind), so elements must not hold owning pointers.
template <typename T>
class ArenaVec {
 public:
  explicit ArenaVec(ScratchArena* arena) : arena_(arena) {}

  void push_back(const T& v) {
    if (size_ == cap_) Grow();
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }
  bool empty() const { return size_ == 0; }
  uint32_t size() const { return size_; }
  const T& operator[](uint32_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Grow() {
    const uint32_t ncap = cap_ == 0 ? 8 : cap_ * 2;
    T* nd = arena_->AllocArray<T>(ncap);
    if (size_ > 0) std::memcpy(nd, data_, size_t{size_} * sizeof(T));
    data_ = nd;
    cap_ = ncap;
  }

  ScratchArena* arena_;
  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
};

}  // namespace lob

#endif  // LOB_COMMON_ARENA_H_
