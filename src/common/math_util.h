// Small integer helpers shared across modules.

#ifndef LOB_COMMON_MATH_UTIL_H_
#define LOB_COMMON_MATH_UTIL_H_

#include <bit>
#include <cstdint>

#include "common/logging.h"

namespace lob {

/// ceil(a / b) for non-negative a, positive b.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// True iff `x` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1).
constexpr uint64_t RoundUpPowerOfTwo(uint64_t x) {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

/// floor(log2(x)) for x >= 1.
constexpr uint32_t FloorLog2(uint64_t x) {
  return static_cast<uint32_t>(63 - std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1; i.e. the buddy order whose block count covers x.
constexpr uint32_t CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : FloorLog2(x - 1) + 1;
}

}  // namespace lob

#endif  // LOB_COMMON_MATH_UTIL_H_
