// Deterministic pseudo-random number generator for workloads and tests.
//
// xoshiro256** seeded via splitmix64. Deterministic across platforms so that
// experiment runs and property tests are exactly reproducible from a seed.

#ifndef LOB_COMMON_RNG_H_
#define LOB_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace lob {

/// Deterministic, seedable RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    LOB_CHECK_LE(lo, hi);
    const uint64_t span = hi - lo + 1;
    if (span == 0) return Next();  // full 64-bit range
    // Debiased modulo via rejection sampling.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v = Next();
    while (v >= limit) v = Next();
    return lo + v % span;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace lob

#endif  // LOB_COMMON_RNG_H_
