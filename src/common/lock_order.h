// Ranked, capability-annotated synchronization primitives. Every lob::Mutex
// is constructed with a LockRank from the central table below; with
// LOB_LOCK_ORDER_CHECKS enabled (the default, including RelWithDebInfo)
// each thread keeps a held-rank stack and acquiring a mutex whose rank is
// not strictly greater than every rank already held aborts with a
// "lock-order violation" diagnostic. The rank order IS the documented
// acquisition order, so any two threads that respect it cannot deadlock on
// these mutexes (see docs/ARCHITECTURE.md "Lock-rank table").
//
// The types carry Clang capability annotations (common/thread_annotations.h)
// so -Wthread-safety checks guard discipline at compile time; the rank
// stack checks acquisition *order* at run time. Raw std::mutex /
// std::lock_guard outside src/common/ is a lint error (LOB008), and a
// Mutex declaration without a LockRank:: on the same line is too (LOB009).

#ifndef LOB_COMMON_LOCK_ORDER_H_
#define LOB_COMMON_LOCK_ORDER_H_

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

// Lock-order checking is cheap (a thread-local array walk per acquisition)
// and deterministic, so it stays on in every build type by default;
// define LOB_LOCK_ORDER_CHECKS=0 to compile it out entirely.
#ifndef LOB_LOCK_ORDER_CHECKS
#define LOB_LOCK_ORDER_CHECKS 1
#endif

namespace lob {

/// The central lock-rank table. Rank numbers grow inward: a thread may
/// only acquire a mutex whose rank is strictly greater than every rank it
/// already holds (equal-rank nesting is forbidden — merging between
/// same-rank objects must quiesce the source instead). Gaps are deliberate
/// so future locks can slot between existing ones without renumbering.
///
///   X(enumerator, rank, "dotted.id", "what the lock protects / ordering")
#define LOB_LOCK_RANK_TABLE(X)                                               \
  X(kThreadPool, 10, "exec.thread_pool",                                     \
    "ThreadPool queue + stop flag; never held while a task body runs")       \
  X(kCampaign, 20, "exec.campaign",                                          \
    "campaign progress counter; taken briefly by workers between cells")     \
  X(kLobTree, 24, "lobtree.positional",                                      \
    "PositionalTree node table + aux state; an op latches its tree before "  \
    "touching the allocator or the pool")                                    \
  X(kBuddyDirectory, 26, "buddy.directory",                                  \
    "DatabaseArea buddy directory + free tree; acquired under the tree "     \
    "latch and held across directory-block pool I/O (26 < 30, so "           \
    "allocator bookkeeping orders before frame latching)")                   \
  X(kBufferPool, 30, "buffer.pool",                                          \
    "BufferPool frame table, LRU clock, hit/miss counters; outermost "       \
    "storage-layer lock (SimDisk charges obs/trace beneath it)")             \
  X(kObsRegistry, 40, "obs.registry",                                        \
    "ObsRegistry op ledger, counters, histograms; acquired under the "       \
    "pool lock by SimDisk attribution")                                      \
  X(kTraceSession, 50, "trace.session",                                      \
    "TraceSession span stack + event buffer; spans open under the pool "     \
    "lock")                                                                  \
  X(kTimeline, 60, "trace.timeline",                                         \
    "TimelineSampler sample buffer")                                         \
  X(kLogSink, 100, "common.log_sink",                                        \
    "LOB_LOG_WARN stderr sink; innermost — warnings must be emittable "      \
    "while holding any other lock")

/// Ranks for every mutex in the tree. `lobtool locks` dumps this table;
/// docs/ARCHITECTURE.md documents it as a contract.
enum class LockRank : int {
#define LOB_LOCK_RANK_ENUM(name, rank, id, desc) name = rank,
  LOB_LOCK_RANK_TABLE(LOB_LOCK_RANK_ENUM)
#undef LOB_LOCK_RANK_ENUM
};

/// One row of the rank table, for introspection (`lobtool locks`).
struct LockRankRow {
  const char* name;         // enumerator, e.g. "kBufferPool"
  int rank;                 // numeric rank (acquisition order, ascending)
  const char* id;           // stable dotted id, e.g. "buffer.pool"
  const char* description;  // what it protects and why it sits here
};

inline constexpr LockRankRow kLockRankRows[] = {
#define LOB_LOCK_RANK_ROW(name, rank, id, desc) {#name, rank, id, desc},
    LOB_LOCK_RANK_TABLE(LOB_LOCK_RANK_ROW)
#undef LOB_LOCK_RANK_ROW
};

/// Dotted id for a rank ("buffer.pool"), or "?" for an unregistered value.
inline const char* LockRankName(LockRank r) {
  for (const LockRankRow& row : kLockRankRows) {
    if (row.rank == static_cast<int>(r)) return row.id;
  }
  return "?";
}

class Mutex;

namespace internal {

/// Per-thread stack of held (mutex, rank) pairs. Fixed capacity: the tree
/// holds at most a handful of locks at once; blowing the cap is a
/// programmer error, not a sizing problem.
struct HeldLockStack {
  static constexpr int kCapacity = 16;
  const void* mu[kCapacity];
  int rank[kCapacity];
  int depth = 0;
};

#if LOB_LOCK_ORDER_CHECKS
inline thread_local HeldLockStack g_held_locks;

[[noreturn]] inline void LockOrderViolation(int acquiring, int held) {
  std::fprintf(stderr,
               "lock-order violation: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d); ranks must strictly increase — "
               "see common/lock_order.h\n",
               LockRankName(static_cast<LockRank>(acquiring)), acquiring,
               LockRankName(static_cast<LockRank>(held)), held);
  std::abort();
}

/// Pre-acquisition check: every held rank must be strictly below the one
/// being acquired. Called before blocking so a would-be inversion aborts
/// even when it would not deadlock on this particular interleaving.
inline void CheckAcquireOrder(int rank) {
  HeldLockStack& s = g_held_locks;
  for (int i = 0; i < s.depth; ++i) {
    if (s.rank[i] >= rank) LockOrderViolation(rank, s.rank[i]);
  }
}

inline void PushHeld(const void* mu, int rank) {
  HeldLockStack& s = g_held_locks;
  if (s.depth >= HeldLockStack::kCapacity) {
    std::fprintf(stderr, "lock-order: held-lock stack overflow (%d locks)\n",
                 s.depth);
    std::abort();
  }
  s.mu[s.depth] = mu;
  s.rank[s.depth] = rank;
  ++s.depth;
}

/// Removes the topmost entry for `mu`. Unlocks are usually LIFO (RAII),
/// but hand-over-hand release is legal, so this scans from the top.
inline void PopHeld(const void* mu) {
  HeldLockStack& s = g_held_locks;
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.mu[i] != mu) continue;
    for (int j = i; j + 1 < s.depth; ++j) {
      s.mu[j] = s.mu[j + 1];
      s.rank[j] = s.rank[j + 1];
    }
    --s.depth;
    return;
  }
  std::fprintf(stderr, "lock-order: unlock of a mutex this thread does not "
                       "hold\n");
  std::abort();
}

inline bool IsHeld(const void* mu) {
  const HeldLockStack& s = g_held_locks;
  for (int i = 0; i < s.depth; ++i) {
    if (s.mu[i] == mu) return true;
  }
  return false;
}
#else   // !LOB_LOCK_ORDER_CHECKS
inline void CheckAcquireOrder(int) {}
inline void PushHeld(const void*, int) {}
inline void PopHeld(const void*) {}
inline bool IsHeld(const void*) { return true; }
#endif  // LOB_LOCK_ORDER_CHECKS

}  // namespace internal

/// Capability-annotated exclusive mutex with a mandatory rank. Prefer the
/// RAII MutexLock over manual Lock/Unlock.
class LOB_CAPABILITY("mutex") Mutex {
 public:
  constexpr explicit Mutex(LockRank rank)
      : rank_(static_cast<int>(rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LOB_ACQUIRE() {
    internal::CheckAcquireOrder(rank_);
    mu_.lock();
    internal::PushHeld(this, rank_);
  }

  void Unlock() LOB_RELEASE() {
    internal::PopHeld(this);
    mu_.unlock();
  }

  /// Non-blocking acquire. Rank order is enforced even though a try-lock
  /// cannot deadlock: an out-of-order TryLock is a latent design bug.
  bool TryLock() LOB_TRY_ACQUIRE(true) {
    internal::CheckAcquireOrder(rank_);
    if (!mu_.try_lock()) return false;
    internal::PushHeld(this, rank_);
    return true;
  }

  /// Runtime + static assertion that the calling thread holds this mutex.
  void AssertHeld() const LOB_ASSERT_CAPABILITY(this) {
#if LOB_LOCK_ORDER_CHECKS
    if (!internal::IsHeld(this)) {
      std::fprintf(stderr, "Mutex::AssertHeld: \"%s\" (rank %d) is not held "
                           "by this thread\n",
                   LockRankName(static_cast<LockRank>(rank_)), rank_);
      std::abort();
    }
#endif
  }

  LockRank rank() const { return static_cast<LockRank>(rank_); }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_;
};

/// RAII lock for Mutex (the annotated std::lock_guard analogue).
class LOB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LOB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LOB_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Capability-annotated reader/writer mutex with a mandatory rank. Shared
/// acquisition obeys the same rank order as exclusive acquisition.
class LOB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) : rank_(static_cast<int>(rank)) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() LOB_ACQUIRE() {
    internal::CheckAcquireOrder(rank_);
    mu_.lock();
    internal::PushHeld(this, rank_);
  }
  void Unlock() LOB_RELEASE() {
    internal::PopHeld(this);
    mu_.unlock();
  }
  void LockShared() LOB_ACQUIRE_SHARED() {
    internal::CheckAcquireOrder(rank_);
    mu_.lock_shared();
    internal::PushHeld(this, rank_);
  }
  void UnlockShared() LOB_RELEASE_SHARED() {
    internal::PopHeld(this);
    mu_.unlock_shared();
  }

  LockRank rank() const { return static_cast<LockRank>(rank_); }

 private:
  std::shared_mutex mu_;
  const int rank_;
};

/// RAII exclusive lock for SharedMutex.
class LOB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) LOB_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() LOB_RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock for SharedMutex.
class LOB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) LOB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() LOB_RELEASE_SHARED() { mu_->UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable for use with Mutex. No predicate overload on
/// purpose: Clang's analysis cannot see through a predicate lambda, so
/// callers write the canonical `while (!cond) cv.Wait(&mu);` loop, which
/// the analysis understands.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and waits; re-acquires `mu` before
  /// returning. Spurious wakeups happen — always wait in a loop. The
  /// held-rank stack is left untouched: the mutex is re-held on return,
  /// and a blocked thread acquires nothing in between.
  void Wait(Mutex* mu) LOB_REQUIRES(mu) {
    std::unique_lock<std::mutex> l(mu->mu_, std::adopt_lock);
    cv_.wait(l);
    l.release();  // ownership stays with the caller's Mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lob

#endif  // LOB_COMMON_LOCK_ORDER_H_
