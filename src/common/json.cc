#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lob {

namespace {

/// Cursor over the input text with 1-based line tracking for errors.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    JsonValue v;
    LOB_RETURN_IF_ERROR(ParseValue(&v));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at line " +
                                   std::to_string(line_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseLiteral(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) {
      return Error(std::string("expected '") + word + "'");
    }
    pos_ += n;
    return Status::OK();
  }

  Status ParseNull(JsonValue* out) {
    LOB_RETURN_IF_ERROR(ParseLiteral("null"));
    *out = JsonValue();
    return Status::OK();
  }

  Status ParseBool(JsonValue* out) {
    if (text_[pos_] == 't') {
      LOB_RETURN_IF_ERROR(ParseLiteral("true"));
      *out = JsonValue(true);
    } else {
      LOB_RETURN_IF_ERROR(ParseLiteral("false"));
      *out = JsonValue(false);
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || tok.empty()) {
      return Error("malformed number '" + tok + "'");
    }
    *out = JsonValue(d);
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    std::string s;
    LOB_RETURN_IF_ERROR(ParseRawString(&s));
    *out = JsonValue(std::move(s));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\n') return Error("newline inside string");
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // The exporters never emit \u escapes; decode the BMP code
            // point as UTF-8 anyway so foreign files round-trip.
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned int cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned int>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned int>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned int>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            if (cp < 0x80) {
              out->push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return Error(std::string("bad escape '\\") + esc + "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    if (!Consume('[')) return Error("expected '['");
    auto* arr = out->mutable_array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      LOB_RETURN_IF_ERROR(ParseValue(&v));
      arr->push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out) {
    if (!Consume('{')) return Error("expected '{'");
    auto* obj = out->mutable_object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      LOB_RETURN_IF_ERROR(ParseRawString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue v;
      LOB_RETURN_IF_ERROR(ParseValue(&v));
      (*obj)[key] = std::move(v);
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser p(text);
  return p.ParseDocument();
}

StatusOr<JsonValue> JsonValue::ParseFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  auto parsed = Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace lob
